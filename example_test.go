package hilp_test

import (
	"context"
	"fmt"

	"hilp"
)

// ExampleSolveModelContext reproduces the paper's Figure 2 running example: two
// applications, each with setup/compute/teardown phases, scheduled on an
// SoC with one CPU, one GPU, and one DSA.
func ExampleSolveModelContext() {
	cpu := func(sec float64) hilp.CustomOption { return hilp.CustomOption{Cluster: "cpu0", Sec: sec} }
	gpu := func(sec float64) hilp.CustomOption { return hilp.CustomOption{Cluster: "gpu0", Sec: sec} }
	dsa := func(sec float64) hilp.CustomOption { return hilp.CustomOption{Cluster: "dsa0", Sec: sec} }

	model := hilp.CustomModel{
		Name:     "fig2",
		Clusters: []hilp.CustomCluster{{Name: "cpu0"}, {Name: "gpu0"}, {Name: "dsa0"}},
		Tasks: []hilp.CustomTask{
			{Name: "m0", App: 0, Options: []hilp.CustomOption{cpu(1)}},
			{Name: "m1", App: 0, Deps: []hilp.CustomDep{{Task: "m0"}}, Options: []hilp.CustomOption{cpu(8), gpu(6), dsa(5)}},
			{Name: "m2", App: 0, Deps: []hilp.CustomDep{{Task: "m1"}}, Options: []hilp.CustomOption{cpu(1)}},
			{Name: "n0", App: 1, Options: []hilp.CustomOption{cpu(1)}},
			{Name: "n1", App: 1, Deps: []hilp.CustomDep{{Task: "n0"}}, Options: []hilp.CustomOption{cpu(5), gpu(3), dsa(2)}},
			{Name: "n2", App: 1, Deps: []hilp.CustomDep{{Task: "n1"}}, Options: []hilp.CustomOption{cpu(1)}},
		},
	}

	inst, res, err := hilp.SolveModelContext(context.Background(), model, 1, 40, hilp.SolverConfig{Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("makespan %d s (naive: 17 s)\n", res.Schedule.Makespan)
	fmt.Printf("average WLP %.2f\n", res.Schedule.WLP(inst.Problem))
	// Output:
	// makespan 7 s (naive: 17 s)
	// average WLP 1.71
}

// ExampleNewGraph builds the fork-join dependency graph of the paper's §VII
// extension and reports its critical path.
func ExampleNewGraph() {
	g := hilp.NewGraph("fork-join").
		Node("src", 0, hilp.CustomOption{Cluster: "dsa", Sec: 2}).
		Node("left", 0, hilp.CustomOption{Cluster: "cpu", Sec: 4}).
		Node("right", 0, hilp.CustomOption{Cluster: "gpu", Sec: 3}).
		Node("join", 0, hilp.CustomOption{Cluster: "cpu", Sec: 1}).
		Edge("src", "left").
		Edge("src", "right").
		Edge("left", "join").
		Edge("right", "join")

	cp, err := g.CriticalPathSec()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("critical path: %.0f s\n", cp)
	// Output:
	// critical path: 7 s
}

// ExampleSoC shows the paper's area model on its recommended SoC.
func ExampleSoC() {
	spec := hilp.SoC{
		CPUCores: 4,
		GPUSMs:   16,
		DSAs:     []hilp.DSA{{PEs: 16, Target: "LUD"}, {PEs: 16, Target: "HS"}},
	}
	fmt.Printf("%s: %.1f mm^2\n", spec.Label(), spec.AreaMM2())
	// Output:
	// (c4,g16,d2^16): 378.4 mm^2
}

// ExampleMultiAmdahl evaluates the MultiAmdahl baseline, which assumes a
// fixed sequential phase order and therefore always reports WLP = 1.
func ExampleMultiAmdahl() {
	res, err := hilp.MultiAmdahl(hilp.DefaultWorkload(), hilp.SoC{CPUCores: 1, GPUSMs: 64})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("WLP %.0f, speedup %.1fx (paper reports 18.2x)\n", res.WLP, res.Speedup)
	// Output:
	// WLP 1, speedup 18.7x (paper reports 18.2x)
}
