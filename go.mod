module hilp

go 1.22
