package hilp_test

// Ablation benchmarks for the design choices DESIGN.md calls out: solver
// portfolio stages, adaptive time-step resolution, DVFS alias clusters, and
// the parallel-CPU option. Run with `go test -bench=Ablation`.

import (
	"testing"

	"hilp/internal/experiments"
)

func BenchmarkAblationSolverPortfolio(b *testing.B) {
	var rows []experiments.AblationSolverRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSolverPortfolio(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	// Gap left by the heuristics-only stage on the first SoC vs the full
	// pipeline, as metrics.
	for _, r := range rows {
		if r.SoC == "(c4,g16,d2^16)" && r.Strategy == "heuristics" {
			b.ReportMetric(r.Gap, "heuristic_gap")
		}
		if r.SoC == "(c4,g16,d2^16)" && r.Strategy == "anneal+justify" {
			b.ReportMetric(r.Gap, "pipeline_gap")
		}
	}
	printResult("Ablation (solver portfolio)", experiments.RenderAblationSolver(rows))
}

func BenchmarkAblationResolution(b *testing.B) {
	var rows []experiments.AblationResolutionRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationResolution(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[0].Speedup, "speedup_coarse")
	b.ReportMetric(rows[len(rows)-1].Speedup, "speedup_adaptive")
	printResult("Ablation (resolution)", experiments.RenderAblationResolution(rows))
}

func BenchmarkAblationDVFS(b *testing.B) {
	var rows []experiments.AblationDVFSRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDVFS(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[0].Speedup, "speedup_1pt")
	b.ReportMetric(rows[len(rows)-1].Speedup, "speedup_full")
	printResult("Ablation (DVFS)", experiments.RenderAblationDVFS(rows))
}

func BenchmarkAblationCPUWidth(b *testing.B) {
	var rows []experiments.AblationCPUWidthRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCPUWidth(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[0].Speedup, "speedup_with")
	b.ReportMetric(rows[1].Speedup, "speedup_without")
	printResult("Ablation (parallel CPU)", experiments.RenderAblationCPUWidth(rows))
}

func BenchmarkSyntheticSensitivity(b *testing.B) {
	var rows []experiments.SyntheticRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.SyntheticSensitivity(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(float64(len(rows)), "rows")
	printResult("Sensitivity (workload shape)", experiments.RenderSynthetic(rows))
}
