package hilp

// This file collects every pre-context entry point kept for source
// compatibility. All of them are thin wrappers over the context-first API
// (Solve, Sweep, SolveInstanceContext, SolveModelContext) with
// context.Background(), so they cannot be cancelled, carry no deadline, and
// see none of the functional options. Nothing inside this module calls
// them; new code should not either. They may be removed in a future major
// version.

import (
	"context"

	"hilp/internal/dse"
	"hilp/internal/scheduler"
)

// Evaluate runs HILP on the workload and SoC with the DSE profile and
// default solver effort.
//
// Deprecated: use Solve, which takes a context and functional options.
func Evaluate(w Workload, spec SoC) (*Result, error) {
	return Solve(context.Background(), w, spec)
}

// EvaluateWith runs HILP with explicit resolution and solver settings.
//
// Deprecated: use Solve with WithProfile and WithSolver.
func EvaluateWith(w Workload, spec SoC, profile Profile, cfg SolverConfig) (*Result, error) {
	return Solve(context.Background(), w, spec, WithProfile(profile), WithSolver(cfg))
}

// Gables evaluates the workload with the parallel-mode Gables baseline
// (dependencies discarded, no power constraint).
//
// Deprecated: use Solve with WithBaseline(BaselineGables).
func Gables(w Workload, spec SoC, profile Profile, cfg SolverConfig) (*Result, error) {
	return Solve(context.Background(), w, spec,
		WithBaseline(BaselineGables), WithProfile(profile), WithSolver(cfg))
}

// SweepHILP evaluates every spec with HILP across worker goroutines
// (workers < 1 selects GOMAXPROCS).
//
// Deprecated: use Sweep with WithWorkers, WithProfile, and WithSolver — or
// SolveBatch to reuse work across the points.
//
//lint:legacy
func SweepHILP(w Workload, specs []SoC, workers int, profile Profile, cfg SolverConfig) []Point {
	return Sweep(context.Background(), w, specs,
		WithWorkers(workers), WithProfile(profile), WithSolver(cfg))
}

// SweepHILPObserved is SweepHILP with observability: sweep metrics, spans,
// and a live progress callback via opts.
//
// Deprecated: use Sweep with WithObs and WithProgress.
//
//lint:legacy
func SweepHILPObserved(w Workload, specs []SoC, opts SweepOptions, profile Profile, cfg SolverConfig) []Point {
	return dse.SweepOpts(context.Background(), specs, opts, dse.HILPEvaluator(w, profile, cfg))
}

// SolveInstance solves a built (possibly pinned) instance.
//
// Deprecated: use SolveInstanceContext so the solve can be cancelled.
//
//lint:legacy
func SolveInstance(in *Instance, cfg SolverConfig) (scheduler.Result, error) {
	return SolveInstanceContext(context.Background(), in, cfg)
}

// SolveModel builds and solves a custom model at the given time-step
// resolution, returning the instance (for rendering) and the schedule
// result.
//
// Deprecated: use SolveModelContext so the solve can be cancelled.
//
//lint:legacy
func SolveModel(m CustomModel, stepSec float64, horizon int, cfg SolverConfig) (*Instance, scheduler.Result, error) {
	return SolveModelContext(context.Background(), m, stepSec, horizon, cfg)
}
