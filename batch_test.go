package hilp_test

import (
	"context"
	"testing"

	"hilp"
)

func batchSpecs() []hilp.SoC {
	return []hilp.SoC{
		{CPUCores: 1},
		{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}, // canonical duplicate
		{CPUCores: 4, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
	}
}

func TestSolveBatchDefaults(t *testing.T) {
	// Cache and warm starts are on by default for batches; pruning is not.
	w := miniWorkload()
	res, err := hilp.SolveBatch(context.Background(), w, batchSpecs(),
		hilp.WithProfile(quickProfile),
		hilp.WithSolver(hilp.SolverConfig{Seed: 1, Effort: 0.2}),
		hilp.WithWorkers(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Err != nil {
			t.Fatalf("%s: %v", p.Label, p.Err)
		}
	}
	s := res.Stats
	if s.Points != 4 || s.CacheHits != 1 || s.Solved != 3 || s.Pruned != 0 {
		t.Errorf("stats = %+v, want 4 points / 3 solved / 1 cache hit / 0 pruned", s)
	}
	if s.WarmStarted == 0 {
		t.Error("no point warm-started on a single worker with default options")
	}
	if !res.Points[2].CacheHit {
		t.Error("duplicate spec not served from cache")
	}
	if res.Points[2].Speedup != res.Points[1].Speedup ||
		res.Points[2].MakespanSec != res.Points[1].MakespanSec {
		t.Error("cache hit not byte-identical to its owner")
	}
}

func TestSolveBatchOptOut(t *testing.T) {
	w := miniWorkload()
	res, err := hilp.SolveBatch(context.Background(), w, batchSpecs(),
		hilp.WithProfile(quickProfile),
		hilp.WithSolver(hilp.SolverConfig{Seed: 1, Effort: 0.2}),
		hilp.WithWorkers(1),
		hilp.WithCache(false),
		hilp.WithWarmStart(false),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Stats; s.CacheHits != 0 || s.WarmStarted != 0 || s.Solved != 4 {
		t.Errorf("opted-out batch still used the engine: %+v", s)
	}
}

func TestSolveBatchPruning(t *testing.T) {
	// A dominance ladder: the d2^16 rung meets the gap target and dominates
	// its d1^16 sub-rung; the cheap 1-core GPU point certifies that the
	// sub-rung's analytic speedup ceiling is already achieved at lower area.
	w := hilp.DefaultWorkload()
	specs := []hilp.SoC{
		{CPUCores: 1, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		{CPUCores: 2, DSAs: []hilp.DSA{{PEs: 16, Target: "BFS"}, {PEs: 16, Target: "HW"}}},
		{CPUCores: 2, DSAs: []hilp.DSA{{PEs: 16, Target: "BFS"}}},
	}
	res, err := hilp.SolveBatch(context.Background(), w, specs,
		hilp.WithSolver(hilp.SolverConfig{Seed: 1, Effort: 0.25, Restarts: 1}),
		hilp.WithWorkers(1),
		hilp.WithPruning(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pruned != 1 {
		t.Fatalf("stats = %+v, want exactly 1 pruned point", res.Stats)
	}
	p := res.Points[2]
	if !p.Pruned || p.PrunedBy != res.Points[1].Label || p.SpeedupBound <= 1 {
		t.Errorf("pruned point lacks its certificate: %+v", p)
	}
	// Pruned points never enter front or best selection.
	for _, fp := range hilp.ParetoFront(res.Points) {
		if fp.Pruned {
			t.Error("pruned point on the Pareto front")
		}
	}
}

func TestSolveBatchCancelled(t *testing.T) {
	w := miniWorkload()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := hilp.SolveBatch(ctx, w, batchSpecs(),
		hilp.WithProfile(quickProfile), hilp.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points, want 4 even when cancelled", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Err == nil && !p.Cancelled {
			t.Errorf("%s: neither failed nor cancelled under a dead context", p.Label)
		}
	}
}
