package hilp_test

import (
	"context"
	"testing"
	"time"

	"hilp"
)

func miniWorkload() hilp.Workload {
	w := hilp.DefaultWorkload()
	w.Apps = w.Apps[:3]
	w.Name = "mini"
	return w
}

var quickProfile = hilp.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 0, MaxRefinements: 0}

func TestSolveDefaultsMatchEvaluate(t *testing.T) {
	w := miniWorkload()
	spec := hilp.SoC{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}
	a, err := hilp.Solve(context.Background(), w, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hilp.Evaluate(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Speedup != b.Speedup || a.MakespanSec != b.MakespanSec {
		t.Errorf("Solve and its Evaluate wrapper disagree: %+v vs %+v", a, b)
	}
}

func TestSolveBaselines(t *testing.T) {
	w := miniWorkload()
	spec := hilp.SoC{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}
	opts := []hilp.Option{
		hilp.WithProfile(quickProfile),
		hilp.WithSolver(hilp.SolverConfig{Seed: 1, Effort: 0.2}),
	}

	hres, err := hilp.Solve(context.Background(), w, spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := hilp.Solve(context.Background(), w, spec,
		append(opts, hilp.WithBaseline(hilp.BaselineGables))...)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := hilp.Solve(context.Background(), w, spec,
		append(opts, hilp.WithBaseline(hilp.BaselineMultiAmdahl))...)
	if err != nil {
		t.Fatal(err)
	}
	// Gables solves the same discretized instance minus dependencies and the
	// power cap, so it is never slower than HILP at equal resolution.
	// (MultiAmdahl is analytic — unquantized — so no ordering holds against
	// it at this coarse test profile.)
	if gres.Speedup < hres.Speedup-1e-9 {
		t.Errorf("Gables %g slower than HILP %g", gres.Speedup, hres.Speedup)
	}
	if mres.Speedup <= 0 {
		t.Errorf("MultiAmdahl speedup %g, want > 0", mres.Speedup)
	}
	if mres.WLP != 1 {
		t.Errorf("MultiAmdahl WLP %g, want 1", mres.WLP)
	}
}

func TestSolveCancelledReturnsIncumbent(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := hilp.Solve(ctx, hilp.DefaultWorkload(), hilp.SoC{CPUCores: 4, GPUSMs: 64},
		hilp.WithSolver(hilp.SolverConfig{Seed: 1, Effort: 100}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Error("Cancelled not set")
	}
	if res.Speedup <= 0 || res.MakespanSec <= 0 {
		t.Errorf("no incumbent: speedup %g makespan %g", res.Speedup, res.MakespanSec)
	}
}

func TestSweepWithOptions(t *testing.T) {
	w := miniWorkload()
	specs := []hilp.SoC{
		{CPUCores: 1, GPUFrequenciesMHz: []float64{765}},
		{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
	}
	var progressCalls int
	points := hilp.Sweep(context.Background(), w, specs,
		hilp.WithProfile(quickProfile),
		hilp.WithSolver(hilp.SolverConfig{Seed: 1, Effort: 0.2}),
		hilp.WithWorkers(2),
		hilp.WithProgress(func(p hilp.SweepProgress) { progressCalls++ }),
	)
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	for i, p := range points {
		if p.Err != nil {
			t.Errorf("point %d: %v", i, p.Err)
		}
	}
	if progressCalls != 2 {
		t.Errorf("progress called %d times, want 2", progressCalls)
	}
	if points[1].Speedup <= points[0].Speedup {
		t.Errorf("GPU SoC %g not faster than CPU-only %g", points[1].Speedup, points[0].Speedup)
	}
}
