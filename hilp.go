// Package hilp is a from-scratch Go implementation of HILP, the
// workload-level-parallelism-aware early-stage design-space exploration
// approach for heterogeneous SoCs (Rogers, Eeckhout, Jahre - HPCA 2025).
//
// HILP's key observation is that scheduling a workload of independent
// multi-phase applications on a heterogeneous SoC is an instance of the
// job-shop scheduling problem, so it can be solved to near-optimality with
// integer linear programming. This package bundles the complete stack:
//
//   - a pure-Go optimization substrate (simplex/branch-and-bound MILP and an
//     RCPSP-style CP search with certified optimality gaps),
//   - the paper's SoC architecture template (CPUs, a DVFS-capable GPU, and
//     per-application DSAs) with its area, power, and bandwidth models,
//   - the Rodinia workload data of Table II/III and the three evaluation
//     workloads,
//   - baselines (MultiAmdahl and parallel-mode Gables), design-space sweeps,
//     and Pareto-front extraction,
//   - arbitrary dependency graphs with fork-join parallelism and initiation
//     intervals (the paper's §VII extension).
//
// Quick start:
//
//	w := hilp.DefaultWorkload()
//	spec := hilp.SoC{CPUCores: 4, GPUSMs: 16, DSAs: []hilp.DSA{{PEs: 16, Target: "LUD"}}}
//	res, err := hilp.Solve(context.Background(), w, spec)
//	if err != nil { ... }
//	fmt.Printf("speedup %.1fx, WLP %.2f, gap %.1f%%\n", res.Speedup, res.WLP, 100*res.Gap)
//
// Solve, Sweep, and SolveBatch are the context-first entry points:
// cancelling the context (or letting its deadline expire) stops the solve
// early and returns the best incumbent found so far with a valid
// optimality-gap certificate, never an error. Functional options
// (WithProfile, WithSolver, WithObs, WithBaseline, WithCache,
// WithWarmStart, WithPruning, ...) select resolution, solver effort,
// observability, the evaluation model, and the sweep engine's cross-point
// reuse. SolveBatch amortizes work across a batch of design points:
// canonical-model memoization, neighbor warm starts over the spec lattice,
// and certified dominance pruning. The pre-context entry points (Evaluate,
// EvaluateWith, SweepHILP, ...) remain as thin deprecated wrappers,
// collected in legacy.go.
package hilp

import (
	"context"

	"hilp/internal/baselines"
	"hilp/internal/core"
	"hilp/internal/dag"
	"hilp/internal/dse"
	"hilp/internal/obs"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
	"hilp/internal/workgen"
)

// Workload is a set of independent multi-phase applications (the paper's A).
type Workload = rodinia.Workload

// Application is one member of a workload.
type Application = rodinia.Application

// Benchmark is one of the ten profiled Rodinia benchmarks (Table II).
type Benchmark = rodinia.Benchmark

// SoC specifies a heterogeneous SoC in the paper's template (Fig. 4).
type SoC = soc.Spec

// DSA is a domain-specific accelerator dedicated to one application.
type DSA = soc.DSA

// SpaceConfig parameterizes design-space enumeration (§VI).
type SpaceConfig = soc.SpaceConfig

// Result is a complete HILP evaluation of one (workload, SoC) pair.
type Result = core.Result

// Profile controls the adaptive time-step resolution loop (§III-D).
type Profile = core.Profile

// SolverConfig tunes the scheduling search.
type SolverConfig = scheduler.Config

// Schedule is a start-time and placement assignment for every phase.
type Schedule = scheduler.Schedule

// Point is one evaluated SoC in a design-space sweep.
type Point = dse.Point

// Mix classifies an SoC's accelerator area mix.
type Mix = dse.Mix

// MAResult is a MultiAmdahl baseline evaluation.
type MAResult = baselines.MAResult

// CustomModel describes an arbitrary workload and SoC directly (§VII).
type CustomModel = core.CustomModel

// CustomCluster, CustomTask, CustomDep, and CustomOption are the pieces of a
// CustomModel.
type (
	CustomCluster = core.CustomCluster
	CustomTask    = core.CustomTask
	CustomDep     = core.CustomDep
	CustomOption  = core.CustomOption
)

// Graph builds arbitrary phase-dependency DAGs (§VII, Eq. 9).
type Graph = dag.Graph

// Instance is a built scheduling instance with rendering helpers.
type Instance = core.Instance

// ErrBadModel is the sentinel wrapped by every input-validation failure:
// NaN/Inf/negative fields, dimension mismatches, unknown references, empty
// compatibility rows, dependency cycles. Match with errors.Is; the individual
// problems are recovered with errors.As on *ValidationError.
var ErrBadModel = core.ErrBadModel

// FieldError addresses one invalid input field by JSON-style path (e.g.
// "tasks[2].options[1].sec") with a stable machine-readable code.
type FieldError = core.FieldError

// ValidationError aggregates every FieldError found in one validation pass.
type ValidationError = core.ValidationError

// PanicError is a solver panic converted into an error at one of the stack's
// recover boundaries (scheduler.Solve, sweep workers, Solve itself, the
// hilp-serve pool), with the goroutine stack attached.
type PanicError = scheduler.PanicError

// Accelerator mix classes (paper Fig. 7 color coding).
const (
	NoAccel      = dse.NoAccel
	GPUDominated = dse.GPUDominated
	DSADominated = dse.DSADominated
	MixedAccel   = dse.MixedAccel
)

// Adaptive-resolution profiles from the paper's §III-D.
var (
	// ValidationProfile: 2 s steps, 1,000-step horizon (paper §V).
	ValidationProfile = core.ValidationProfile
	// DSEProfile: 10 s steps, 200-step horizon (paper §VI).
	DSEProfile = core.DSEProfile
)

// RodiniaWorkload returns the paper's Rodinia workload (measured
// setup/teardown times).
func RodiniaWorkload() Workload { return rodinia.RodiniaWorkload() }

// DefaultWorkload returns the paper's Default workload (setup/teardown 5x
// smaller); it drives the §VI design-space exploration.
func DefaultWorkload() Workload { return rodinia.DefaultWorkload() }

// OptimizedWorkload returns the paper's Optimized workload (setup/teardown
// 20x smaller).
func OptimizedWorkload() Workload { return rodinia.OptimizedWorkload() }

// Benchmarks returns the paper's Table II.
func Benchmarks() []Benchmark { return rodinia.Benchmarks() }

// MultiAmdahl evaluates the workload with the MultiAmdahl baseline (fixed
// sequential phase order, WLP = 1). Unlike Solve with
// WithBaseline(BaselineMultiAmdahl), it returns the model's native result
// with per-phase placement choices.
func MultiAmdahl(w Workload, spec SoC) (MAResult, error) {
	return baselines.MultiAmdahl(w, spec)
}

// DesignSpace enumerates the §VI SoC design space for the workload (the
// paper's 372 configurations under the default SpaceConfig).
func DesignSpace(w Workload, cfg SpaceConfig) []SoC {
	return soc.DesignSpace(w, cfg)
}

// Observability re-exports: thread an *ObsContext through SolverConfig.Obs
// (and SweepOptions.Obs) to trace and meter the entire solve stack. See
// internal/obs for span and metric semantics.
type (
	// ObsContext carries tracing/metrics sinks through the solver layers.
	ObsContext = obs.Context
	// Tracer records hierarchical spans, exportable as Chrome trace JSON.
	Tracer = obs.Tracer
	// MetricsRegistry holds named counters, gauges, and histograms.
	MetricsRegistry = obs.Registry
	// Recorder is the solver flight recorder: it captures timestamped
	// incumbent/bound/temperature events per solve, yielding convergence
	// curves and final gap certificates for run reports.
	Recorder = obs.Recorder
	// SolveRecord is one solve's recorded event stream plus certificate.
	SolveRecord = obs.SolveRecord
	// GapCertificate is a solve's final incumbent/bound pair.
	GapCertificate = obs.Certificate
	// SweepOptions configures an observed design-space sweep.
	SweepOptions = dse.SweepOptions
	// SweepProgress is one live update of a running sweep.
	SweepProgress = dse.Progress
	// BatchResult is the outcome of SolveBatch: points in input order plus
	// the sweep engine's reuse statistics.
	BatchResult = dse.BatchResult
	// BatchStats counts what the sweep engine reused across one batch
	// (cache hits, warm-started solves, pruned points).
	BatchStats = dse.BatchStats
)

// NewTracer returns a wall-clock span tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewRecorder returns an empty solver flight recorder; attach it via
// ObsContext.Recorder to capture convergence events from a solve.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// ParetoFront extracts the (area, speedup) Pareto-optimal points.
func ParetoFront(points []Point) []Point { return dse.ParetoFront(points) }

// BestPoint returns the highest-speedup point of a sweep.
func BestPoint(points []Point) (Point, bool) { return dse.Best(points) }

// NewGraph starts a phase-dependency graph for custom workloads (§VII).
func NewGraph(name string) *Graph { return dag.New(name) }

// SDA builds the paper's §VII streaming-dataflow case study.
func SDA(cfg dag.SDAConfig) (CustomModel, error) { return dag.SDA(cfg) }

// SDAConfig parameterizes the SDA case study.
type SDAConfig = dag.SDAConfig

// WorkloadGenConfig shapes synthetic workload generation.
type WorkloadGenConfig = workgen.Config

// GenerateWorkload synthesizes a workload of multi-phase applications for
// stress tests and sensitivity studies beyond the Rodinia set.
func GenerateWorkload(cfg WorkloadGenConfig) (Workload, error) { return workgen.Generate(cfg) }

// HeavyTailedWorkload generates a workload where a few applications
// dominate compute time.
func HeavyTailedWorkload(seed int64, apps int) (Workload, error) {
	return workgen.HeavyTailed(seed, apps)
}

// UniformWorkload generates a workload of similarly sized applications.
func UniformWorkload(seed int64, apps int) (Workload, error) {
	return workgen.Uniform(seed, apps)
}

// BuildInstance expands a (workload, SoC) pair into a solvable instance at
// an explicit resolution, for what-if pinning (Instance.PinPhase and
// friends) before solving with SolveInstance.
func BuildInstance(w Workload, spec SoC, stepSec float64, horizon int) (*Instance, error) {
	return core.BuildInstance(w, spec, stepSec, horizon)
}

// SolveInstanceContext solves a built (possibly pinned) instance. Cancelling
// ctx returns the best incumbent found so far with Result.Cancelled set. The
// solve runs through the fault-tolerance chain: transient solver failures are
// retried and then degraded to the heuristic scheduler (Result.Degraded set)
// rather than surfaced as errors.
func SolveInstanceContext(ctx context.Context, in *Instance, cfg SolverConfig) (scheduler.Result, error) {
	return core.SolveProblem(ctx, in.Problem, cfg)
}

// SolveModelContext builds and solves a custom model at the given time-step
// resolution. Cancelling ctx returns the best incumbent found so far with
// Result.Cancelled set. Invalid models fail with an error wrapping
// ErrBadModel; transient solver failures are retried and then degraded to the
// heuristic scheduler (Result.Degraded set).
func SolveModelContext(ctx context.Context, m CustomModel, stepSec float64, horizon int, cfg SolverConfig) (*Instance, scheduler.Result, error) {
	inst, err := m.Build(stepSec, horizon)
	if err != nil {
		return nil, scheduler.Result{}, err
	}
	res, err := core.SolveProblem(ctx, inst.Problem, cfg)
	if err != nil {
		return nil, scheduler.Result{}, err
	}
	return inst, res, nil
}
