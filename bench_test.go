package hilp_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates the corresponding rows and, on its first run, prints them so
// `go test -bench=. -benchmem` reproduces the full evaluation. Key scalar
// outcomes are attached as custom benchmark metrics.

import (
	"fmt"
	"sync"
	"testing"

	"hilp/internal/dse"
	"hilp/internal/experiments"
	"hilp/internal/rodinia"
)

var benchOpts = experiments.Options{Seed: 1, Effort: 0.25}

var printOnce sync.Map

// printResult emits an experiment's rendered table exactly once per process.
func printResult(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", key, text)
	}
}

func BenchmarkFig2Example(b *testing.B) {
	var last *experiments.ExampleResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2and3Example(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.HILPMakespan), "makespan_s")
	b.ReportMetric(last.HILPWLP, "wlp")
	printResult("Figure 2 (example)", last.Render())
}

func BenchmarkFig3PowerCap(b *testing.B) {
	var last *experiments.ExampleResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2and3Example(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.PowerCapSpan), "capped_makespan_s")
	b.ReportMetric(last.PowerCapPeak, "peak_W")
}

func BenchmarkTable2Fits(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2Fits()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(float64(len(rows)), "benchmarks")
	printResult("Table II", experiments.RenderTable2(rows))
}

func BenchmarkTable3PowerScaling(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3PowerScaling()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(float64(len(rows)), "operating_points")
	printResult("Table III", experiments.RenderTable3(rows))
}

func BenchmarkFig5aAmdahl(b *testing.B) {
	var series []experiments.Fig5aSeries
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig5aAmdahl(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		series = s
	}
	// Saturated speedup of the 64-SM series.
	last := series[len(series)-1]
	b.ReportMetric(last.Rows[len(last.Rows)-1].Speedup, "speedup_64sm_8cpu")
	printResult("Figure 5a (Amdahl)", experiments.RenderFig5a(series))
}

func BenchmarkFig5bMemoryWall(b *testing.B) {
	var rows []experiments.ConstraintRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5bMemoryWall(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[len(rows)-1].Speedup, "speedup_64sm_400GBs")
	printResult("Figure 5b (memory wall)",
		experiments.RenderConstraintRows("Figure 5b - memory wall (Optimized, 4 CPUs)", "GB/s", rows))
}

func BenchmarkFig5cDarkSilicon(b *testing.B) {
	var rows []experiments.ConstraintRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5cDarkSilicon(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[len(rows)-1].Speedup, "speedup_64sm_400W")
	printResult("Figure 5c (dark silicon)",
		experiments.RenderConstraintRows("Figure 5c - dark silicon (Optimized, 4 CPUs)", "W", rows))
}

func BenchmarkFig6aWLPRodinia(b *testing.B) {
	var rows []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6WLP(rodinia.RodiniaWorkload(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[len(rows)-1].WLP, "gables_wlp_8cpu")
	printResult("Figure 6a (WLP, Rodinia)", experiments.RenderFig6("Figure 6a - Rodinia, 64-SM GPU", rows))
}

func BenchmarkFig6bWLPOptimized(b *testing.B) {
	var rows []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6WLP(rodinia.OptimizedWorkload(), benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[len(rows)-1].WLP, "gables_wlp_8cpu")
	printResult("Figure 6b (WLP, Optimized)", experiments.RenderFig6("Figure 6b - Optimized, 64-SM GPU", rows))
}

func BenchmarkFig7DesignSpace(b *testing.B) {
	var res *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7DesignSpace(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	if best, ok := dse.Best(res.HILP); ok {
		b.ReportMetric(best.Speedup, "hilp_best_speedup")
		b.ReportMetric(best.AreaMM2, "hilp_best_area_mm2")
	}
	printResult("Figure 7 (design space)", experiments.RenderFig7(res))
}

func BenchmarkFig8aPowerConstrained(b *testing.B) {
	var res *experiments.Fig8aResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8aPowerConstrained(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	if best, ok := dse.Best(res.Points[20]); ok {
		b.ReportMetric(best.Speedup, "best_speedup_20W")
	}
	printResult("Figure 8a (power-constrained)", experiments.RenderFig8a(res))
}

func BenchmarkFig8bDSAAdvantage(b *testing.B) {
	var res *experiments.Fig8bResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8bDSAAdvantage(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	if best, ok := dse.Best(res.Points[8]); ok {
		b.ReportMetric(best.Speedup, "best_speedup_8x")
	}
	printResult("Figure 8b (DSA advantage)", experiments.RenderFig8b(res))
}

func BenchmarkFig10Streaming(b *testing.B) {
	var res *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10Streaming(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Variants[0].MakespanSec, "baseline_makespan_s")
	printResult("Figure 10 (streaming dataflow)", res.Render())
}
