package hilp_test

import (
	"strings"
	"testing"

	"hilp"
)

func TestEvaluateQuickstart(t *testing.T) {
	w := hilp.DefaultWorkload()
	spec := hilp.SoC{
		CPUCores:          4,
		GPUSMs:            16,
		DSAs:              []hilp.DSA{{PEs: 16, Target: "LUD"}, {PEs: 16, Target: "HS"}},
		GPUFrequenciesMHz: []float64{765},
	}
	res, err := hilp.Evaluate(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's recommended SoC reaches ~45x on Default.
	if res.Speedup < 35 || res.Speedup > 55 {
		t.Errorf("speedup = %.1f, want ~45 (paper: 45.6)", res.Speedup)
	}
	if res.WLP < 1.5 {
		t.Errorf("WLP = %.2f, want > 1.5", res.WLP)
	}
	if err := res.Sched.Schedule.Validate(res.Instance.Problem); err != nil {
		t.Fatal(err)
	}
}

func TestModelOrdering(t *testing.T) {
	w := hilp.Workload{Name: "mini", Apps: hilp.DefaultWorkload().Apps[:4]}
	spec := hilp.SoC{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}
	cfg := hilp.SolverConfig{Seed: 1, Effort: 0.3}

	ma, err := hilp.MultiAmdahl(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hilp.EvaluateWith(w, spec, hilp.DSEProfile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gab, err := hilp.Gables(w, spec, hilp.DSEProfile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(ma.Speedup <= res.Speedup*1.05 && res.Speedup <= gab.Speedup*1.05) {
		t.Errorf("ordering violated: MA %.1f, HILP %.1f, Gables %.1f", ma.Speedup, res.Speedup, gab.Speedup)
	}
}

func TestDesignSpaceSweepFacade(t *testing.T) {
	w := hilp.DefaultWorkload()
	specs := hilp.DesignSpace(w, hilp.SpaceConfig{
		CPUCores: []int{1, 2},
		GPUSMs:   []int{0, 16},
		MaxDSAs:  1,
		DSAPEs:   []int{16},
	})
	for i := range specs {
		specs[i].GPUFrequenciesMHz = []float64{765}
	}
	pts := hilp.SweepHILP(w, specs, 1, hilp.DSEProfile, hilp.SolverConfig{Seed: 1, Effort: 0.15})
	front := hilp.ParetoFront(pts)
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	best, ok := hilp.BestPoint(pts)
	if !ok || best.Speedup <= 1 {
		t.Errorf("best point %+v", best)
	}
}

func TestCustomGraphFacade(t *testing.T) {
	g := hilp.NewGraph("pipeline").
		Node("produce", 0, hilp.CustomOption{Cluster: "cpu", Sec: 1}).
		Node("consume", 0, hilp.CustomOption{Cluster: "acc", Sec: 2}).
		Edge("produce", "consume")
	tasks, err := g.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	m := hilp.CustomModel{
		Name:     "pipeline",
		Clusters: []hilp.CustomCluster{{Name: "cpu"}, {Name: "acc"}},
		Tasks:    tasks,
	}
	inst, res, err := hilp.SolveModel(m, 1, 20, hilp.SolverConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan != 3 {
		t.Errorf("makespan = %d, want 3", res.Schedule.Makespan)
	}
	if !strings.Contains(inst.Gantt(res.Schedule, 40), "acc") {
		t.Error("Gantt missing cluster row")
	}
}

func TestSDAFacade(t *testing.T) {
	m, err := hilp.SDA(hilp.SDAConfig{Instances: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst, res, err := hilp.SolveModel(m, 0.5, 100, hilp.SolverConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan <= 0 {
		t.Error("empty SDA schedule")
	}
	if err := res.Schedule.Validate(inst.Problem); err != nil {
		t.Fatal(err)
	}
}
