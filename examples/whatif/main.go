// Whatif demonstrates the paper's §III-B compatibility-matrix analysis: the
// E_cap matrix can pin a phase to a specific compute unit (or forbid one) to
// quantify scheduling freedom. We evaluate the Default workload on an
// accelerated SoC three ways: unrestricted, with LUD's compute pinned to its
// DSA (no fallback to GPU/CPU), and with the GPU forbidden for HS's compute.
package main

import (
	"context"
	"fmt"
	"log"

	"hilp"
)

func main() {
	w := hilp.DefaultWorkload()
	spec := hilp.SoC{
		CPUCores:          4,
		GPUSMs:            16,
		DSAs:              []hilp.DSA{{PEs: 16, Target: "LUD"}, {PEs: 16, Target: "HS"}},
		GPUFrequenciesMHz: []float64{765},
	}
	const stepSec = 0.4
	cfg := hilp.SolverConfig{Seed: 1}

	evaluate := func(name string, mutate func(*hilp.Instance) error) {
		inst, err := hilp.BuildInstance(w, spec, stepSec, 1000)
		if err != nil {
			log.Fatal(err)
		}
		if mutate != nil {
			if err := mutate(inst); err != nil {
				log.Fatal(err)
			}
		}
		res, err := hilp.SolveInstanceContext(context.Background(), inst, cfg)
		if err != nil {
			log.Fatal(err)
		}
		makespan := float64(res.Schedule.Makespan) * stepSec
		stats := inst.ComputeStats(res.Schedule)
		fmt.Printf("%-34s makespan %6.1f s  speedup %5.1fx  gpu util %4.0f%%\n",
			name, makespan, w.SequentialSingleCoreSec()/makespan, 100*stats.GroupUtilization["gpu"])
	}

	evaluate("unrestricted", nil)
	evaluate("LUD.compute pinned to its DSA", func(in *hilp.Instance) error {
		return in.PinPhase("LUD.compute", "dsa-LUD")
	})
	evaluate("HS.compute forbidden on the GPU", func(in *hilp.Instance) error {
		return in.ForbidCluster("HS.compute", "gpu@765MHz")
	})
	evaluate("HS+LUD computes pinned to CPU", func(in *hilp.Instance) error {
		if err := in.PinPhase("HS.compute", "cpu0"); err != nil {
			return err
		}
		return in.PinPhase("LUD.compute", "cpu0")
	})

	fmt.Println("\nPinning phases away from their best units quantifies how much of the")
	fmt.Println("SoC's performance depends on scheduling freedom (the paper's E_cap what-if).")
}
