// Powercap reproduces the paper's Figures 2 and 3 interactively: the
// two-application example workload (matrix multiplication m and neural-net
// inference n) on a CPU+GPU+DSA SoC, first unconstrained and then under a
// 3 W power budget. The cap makes the 3 W GPU unusable alongside anything
// else, so the optimal schedule serializes both compute phases on the 2 W
// DSA.
package main

import (
	"context"
	"fmt"
	"log"

	"hilp"
)

func model(powerBudgetW float64) hilp.CustomModel {
	cpu := func(sec float64) hilp.CustomOption {
		return hilp.CustomOption{Cluster: "cpu0", Sec: sec, PowerW: 1}
	}
	gpu := func(sec float64) hilp.CustomOption {
		return hilp.CustomOption{Cluster: "gpu0", Sec: sec, PowerW: 3}
	}
	dsa := func(sec float64) hilp.CustomOption {
		return hilp.CustomOption{Cluster: "dsa0", Sec: sec, PowerW: 2}
	}
	return hilp.CustomModel{
		Name:         "fig2-example",
		Clusters:     []hilp.CustomCluster{{Name: "cpu0"}, {Name: "gpu0"}, {Name: "dsa0"}},
		PowerBudgetW: powerBudgetW,
		Tasks: []hilp.CustomTask{
			{Name: "m0", App: 0, Phase: 0, Options: []hilp.CustomOption{cpu(1)}},
			{Name: "m1", App: 0, Phase: 1, Deps: []hilp.CustomDep{{Task: "m0"}},
				Options: []hilp.CustomOption{cpu(8), gpu(6), dsa(5)}},
			{Name: "m2", App: 0, Phase: 2, Deps: []hilp.CustomDep{{Task: "m1"}},
				Options: []hilp.CustomOption{cpu(1)}},
			{Name: "n0", App: 1, Phase: 0, Options: []hilp.CustomOption{cpu(1)}},
			{Name: "n1", App: 1, Phase: 1, Deps: []hilp.CustomDep{{Task: "n0"}},
				Options: []hilp.CustomOption{cpu(5), gpu(3), dsa(2)}},
			{Name: "n2", App: 1, Phase: 2, Deps: []hilp.CustomDep{{Task: "n1"}},
				Options: []hilp.CustomOption{cpu(1)}},
		},
	}
}

func main() {
	cfg := hilp.SolverConfig{Seed: 1}

	// Unconstrained (Figure 2): m1 goes to the DSA, n1 to the GPU.
	inst, res, err := hilp.SolveModelContext(context.Background(), model(0), 1, 40, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Unconstrained optimum: %d s (naive all-CPU schedule: 17 s, speedup %.2fx), WLP %.2f\n",
		res.Schedule.Makespan, 17.0/float64(res.Schedule.Makespan), res.Schedule.WLP(inst.Problem))
	fmt.Print(inst.Gantt(res.Schedule, 60))

	// 3 W power cap (Figure 3): both compute phases serialize on the DSA.
	instC, resC, err := hilp.SolveModelContext(context.Background(), model(3), 1, 40, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3 W power cap: %d s, peak power %.1f W\n",
		resC.Schedule.Makespan, resC.Schedule.PeakResource(instC.Problem, instC.PowerRes))
	fmt.Print(instC.Gantt(resC.Schedule, 60))

	fmt.Println("\nPer-step power profile under the cap:")
	for step, watts := range resC.Schedule.ResourceProfile(instC.Problem, instC.PowerRes) {
		fmt.Printf("  t=%d  %.1f W\n", step, watts)
	}
}
