// Streaming reproduces the paper's §VII extensibility case study: a
// streaming-dataflow application (SDA) whose phases form a fork-join graph
// (Fig. 9) rather than a linear chain. Three data sources on dedicated DSAs
// feed a CPU data-fusion phase, which fans out to three compute phases that
// join in post-processing. Two samples are kept in flight; HILP decides how
// to overlap them on each candidate SoC (Fig. 10).
package main

import (
	"context"
	"fmt"
	"log"

	"hilp"
)

func main() {
	cfg := hilp.SolverConfig{Seed: 1}
	const stepSec = 0.25

	variants := []struct {
		name string
		sda  hilp.SDAConfig
	}{
		{"baseline (c1,g8,d3^1)", hilp.SDAConfig{Instances: 2}},
		{"what-if: 2x faster CPU", hilp.SDAConfig{Instances: 2, CPUSpeedup: 2}},
		{"what-if: 2x GPU SMs", hilp.SDAConfig{Instances: 2, GPUSMs: 16}},
	}

	for _, v := range variants {
		m, err := hilp.SDA(v.sda)
		if err != nil {
			log.Fatal(err)
		}
		inst, res, err := hilp.SolveModelContext(context.Background(), m, stepSec, 400, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: makespan %.2f s, avg WLP %.2f, gap %.1f%%\n",
			v.name, float64(res.Schedule.Makespan)*stepSec, res.Schedule.WLP(inst.Problem), 100*res.Gap())
		fmt.Print(inst.Gantt(res.Schedule, 72))
		fmt.Println()
	}

	// The same study with an explicit initiation interval: sample i+1's data
	// sources may start no earlier than 4 s after sample i's (a start-start
	// lag, the paper's "other extensions").
	m, err := hilp.SDA(hilp.SDAConfig{Instances: 3, SampleIntervalSec: 4})
	if err != nil {
		log.Fatal(err)
	}
	inst, res, err := hilp.SolveModelContext(context.Background(), m, stepSec, 600, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipelined, 3 samples at a 4 s initiation interval: makespan %.2f s\n",
		float64(res.Schedule.Makespan)*stepSec)
	fmt.Print(inst.Gantt(res.Schedule, 90))
}
