// Designspace runs a reduced version of the paper's §VI exploration: it
// enumerates SoCs combining CPU cores, a GPU, and per-application DSAs,
// evaluates each with HILP and with the MultiAmdahl and Gables baselines,
// and prints the three area/performance Pareto fronts - showing how the
// simplistic WLP treatments of MA (always sequential) and Gables (always
// parallel) recommend different, suboptimal SoCs.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"hilp"
	"hilp/internal/dse"
)

func main() {
	w := hilp.DefaultWorkload()

	// A reduced space so the example finishes in seconds: 2 CPU counts, 3
	// GPU options, up to 2 DSAs of 4 or 16 PEs -> 2*3*(1+2*2) = 30 SoCs.
	specs := hilp.DesignSpace(w, hilp.SpaceConfig{
		CPUCores: []int{1, 4},
		GPUSMs:   []int{0, 16, 64},
		MaxDSAs:  2,
		DSAPEs:   []int{4, 16},
	})
	for i := range specs {
		specs[i].GPUFrequenciesMHz = []float64{765}
	}
	fmt.Printf("evaluating %d SoC configurations on the %s workload...\n\n", len(specs), w.Name)

	cfg := hilp.SolverConfig{Seed: 1, Effort: 0.25, Restarts: 1}
	workers := runtime.NumCPU()

	// SolveBatch runs the sweep engine: canonically identical SoCs are
	// solved once and neighboring SoCs warm-start each other's search.
	batch, err := hilp.SolveBatch(context.Background(), w, specs,
		hilp.WithWorkers(workers), hilp.WithSolver(cfg))
	if err != nil {
		log.Fatal(err)
	}
	hilpPts := batch.Points
	maPts := dse.Sweep(context.Background(), specs, workers, dse.MAEvaluator(w))
	gabPts := dse.Sweep(context.Background(), specs, workers, dse.GablesEvaluator(w, hilp.DSEProfile, cfg))

	show := func(name string, pts []hilp.Point) {
		for _, p := range pts {
			if p.Err != nil {
				log.Fatalf("%s: %s: %v", name, p.Label, p.Err)
			}
		}
		front := hilp.ParetoFront(pts)
		fmt.Printf("%s Pareto front (%d of %d SoCs):\n", name, len(front), len(pts))
		for _, p := range front {
			fmt.Printf("  %-16s %7.1f mm^2  %6.1fx  %s\n", p.Label, p.AreaMM2, p.Speedup, p.Mix)
		}
		best, _ := hilp.BestPoint(pts)
		fmt.Printf("  -> best: %s at %.1fx\n\n", best.Label, best.Speedup)
	}

	show("MultiAmdahl", maPts)
	show("Gables", gabPts)
	show("HILP", hilpPts)

	fmt.Printf("sweep engine: %d points, %d solved, %d cache hits, %d warm-started\n\n",
		batch.Stats.Points, batch.Stats.Solved, batch.Stats.CacheHits, batch.Stats.WarmStarted)
	fmt.Println("Note how MA favors one big GPU, Gables favors many small accelerators,")
	fmt.Println("and HILP recommends a workload-matched mix (the paper's Key Insight 1).")
}
