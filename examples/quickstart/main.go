// Quickstart: evaluate the paper's recommended SoC - 4 CPU cores, a 16-SM
// GPU, and 16-PE DSAs for the two most accelerator-hungry applications (HS
// and LUD) - on the Default workload, and print the near-optimal schedule
// HILP finds.
package main

import (
	"context"
	"fmt"
	"log"

	"hilp"
)

func main() {
	workload := hilp.DefaultWorkload()

	// The paper's highest-performing Pareto-optimal SoC: (c4,g16,d2^16).
	spec := hilp.SoC{
		CPUCores: 4,
		GPUSMs:   16,
		DSAs: []hilp.DSA{
			{PEs: 16, Target: "LUD"},
			{PEs: 16, Target: "HS"},
		},
	}

	res, err := hilp.Solve(context.Background(), workload, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SoC %s - area %.1f mm^2\n", spec.Label(), spec.AreaMM2())
	fmt.Printf("workload %q (%d applications)\n\n", workload.Name, len(workload.Apps))
	fmt.Printf("makespan:         %.1f s\n", res.MakespanSec)
	fmt.Printf("speedup:          %.1fx over a single CPU core (paper reports 45.6x)\n", res.Speedup)
	fmt.Printf("average WLP:      %.2f concurrent phases\n", res.WLP)
	fmt.Printf("optimality gap:   %.1f%% (near-optimal means <= 10%%)\n", 100*res.Gap)
	fmt.Printf("final resolution: %.3g s/step after %d adaptive refinements\n\n", res.StepSec, res.Refinements)

	fmt.Println("Schedule (one row per device; GPU DVFS points share a row):")
	fmt.Print(res.Instance.Gantt(res.Sched.Schedule, 100))

	fmt.Println("\nPer-application view (segments labeled by the unit each phase ran on):")
	fmt.Print(res.Instance.GanttByApp(res.Sched.Schedule, 100))

	fmt.Println()
	fmt.Print(res.Instance.WLPHistogram(res.Sched.Schedule))

	stats := res.Instance.ComputeStats(res.Sched.Schedule)
	fmt.Printf("\nenergy %.0f J, peak power %.1f W (budget %.0f W), peak bandwidth %.0f GB/s (budget %.0f GB/s)\n",
		stats.EnergyJoules, stats.PeakPowerW, res.Instance.Spec.PowerBudgetWatts,
		stats.PeakBandwidthGBs, res.Instance.Spec.MemBandwidthGBs)
	fmt.Printf("device utilization: gpu %.0f%%, dsa-HS %.0f%%, dsa-LUD %.0f%%\n",
		100*stats.GroupUtilization["gpu"], 100*stats.GroupUtilization["dsa-HS"], 100*stats.GroupUtilization["dsa-LUD"])
}
