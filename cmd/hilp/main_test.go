package main

import (
	"context"
	"encoding/json"
	"testing"

	"hilp"
)

func TestDSAFlagsParsing(t *testing.T) {
	var d dsaFlags
	if err := d.Set("LUD:16"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("HS:4"); err != nil {
		t.Fatal(err)
	}
	if len(d.list) != 2 || d.list[0].Target != "LUD" || d.list[0].PEs != 16 || d.list[1].PEs != 4 {
		t.Errorf("parsed %v", d.list)
	}
	if got := d.String(); got != "LUD:16,HS:4" {
		t.Errorf("String = %q", got)
	}
	for _, bad := range []string{"", "LUD", "LUD:", ":4", "LUD:x", "LUD:0", "LUD:-3"} {
		var e dsaFlags
		if err := e.Set(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestWorkloadByName(t *testing.T) {
	for _, name := range []string{"Rodinia", "default", "OPTIMIZED"} {
		w, err := workloadByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(w.Apps) != 10 {
			t.Errorf("%s: %d apps", name, len(w.Apps))
		}
	}
	if _, err := workloadByName("bogus"); err == nil {
		t.Error("accepted unknown workload")
	}
}

// TestCustomModelJSONRoundTrip guards the -model input format: a model
// marshalled to JSON must unmarshal to an equivalent, solvable model.
func TestCustomModelJSONRoundTrip(t *testing.T) {
	m := hilp.CustomModel{
		Name:         "roundtrip",
		Clusters:     []hilp.CustomCluster{{Name: "cpu0"}, {Name: "gpu0", Group: "gpu"}},
		PowerBudgetW: 5,
		Tasks: []hilp.CustomTask{
			{Name: "a", App: 0, Options: []hilp.CustomOption{{Cluster: "cpu0", Sec: 2, PowerW: 1}}},
			{Name: "b", App: 0, Deps: []hilp.CustomDep{{Task: "a"}},
				Options: []hilp.CustomOption{{Cluster: "gpu0", Sec: 1, PowerW: 3}}},
		},
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back hilp.CustomModel
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	inst, res, err := hilp.SolveModelContext(context.Background(), back, 1, 20, hilp.SolverConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan != 3 {
		t.Errorf("makespan = %d, want 3", res.Schedule.Makespan)
	}
	if err := res.Schedule.Validate(inst.Problem); err != nil {
		t.Fatal(err)
	}
}
