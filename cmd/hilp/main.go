// Command hilp evaluates a workload on an SoC with HILP and prints the
// resulting schedule, speedup, WLP, and optimality gap.
//
// Two input modes:
//
//	hilp -workload Default -cpus 4 -gpu 16 -dsa LUD:16 -dsa HS:16
//	hilp -model model.json -step 1 -horizon 100
//
// The first mode evaluates one of the paper's Rodinia-derived workloads on
// an SoC from the paper's template. The second mode solves an arbitrary
// custom model (clusters, tasks, dependency DAG) from JSON; see
// examples/streaming for the equivalent programmatic API.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hilp"
	"hilp/internal/obs"
	"hilp/internal/report"
	"hilp/internal/wire"
)

func main() {
	var (
		workloadName = flag.String("workload", "Default", "built-in workload: Rodinia, Default, or Optimized")
		cpus         = flag.Int("cpus", 4, "number of CPU cores")
		gpuSMs       = flag.Int("gpu", 16, "GPU SM count (0 = no GPU)")
		powerW       = flag.Float64("power", 600, "power budget in watts")
		bwGBs        = flag.Float64("bandwidth", 800, "memory bandwidth budget in GB/s")
		advantage    = flag.Float64("dsa-advantage", 4, "DSA efficiency advantage over the GPU")
		modelPath    = flag.String("model", "", "path to a custom-model JSON file (overrides workload mode)")
		stepSec      = flag.Float64("step", 1, "custom mode: time-step resolution in seconds")
		horizon      = flag.Int("horizon", 200, "custom mode: scheduling horizon in steps")
		seed         = flag.Int64("seed", 1, "solver random seed")
		effort       = flag.Float64("effort", 1, "solver effort multiplier")
		showGantt    = flag.Bool("gantt", true, "print the schedule as an ASCII Gantt chart")
		byApp        = flag.Bool("by-app", false, "also print the per-application Gantt view")
		showWLP      = flag.Bool("wlp", false, "print the per-step WLP histogram")
		showTasks    = flag.Bool("tasks", false, "print per-task placements")
		exportPath   = flag.String("export", "", "write the schedule as JSON to this file")
		jsonOut      = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		reportPath   = flag.String("report", "", "write a self-contained HTML run report (plus a .json twin) to this path")
	)
	var dsas dsaFlags
	flag.Var(&dsas, "dsa", "DSA as TARGET:PEs (repeatable), e.g. -dsa LUD:16")
	var ocli obs.CLI
	ocli.Register(nil)
	flag.Parse()

	// Every run gets a correlation ID, exactly like a served request: log
	// lines, metric exemplars, and the OTLP root span (when -otlp-endpoint is
	// set) all carry it, so a CLI run and a server request are diagnosed the
	// same way.
	reqID := obs.NewRequestID()
	ocli.RequestID = reqID
	ctx := obs.WithRequestID(context.Background(), reqID)

	octx := ocli.Context()
	if octx != nil && ocli.Verbose {
		// A single evaluation is cheap to narrate in full: include the
		// per-refinement solver lines, not just top-level progress.
		octx.Verbosity = 2
	}
	var rec *obs.Recorder
	if *reportPath != "" {
		// The run report needs the flight recorder attached to the solve.
		rec = obs.NewRecorder()
		if octx == nil {
			octx = &obs.Context{}
		}
		octx.Recorder = rec
	}
	cfg := hilp.SolverConfig{Seed: *seed, Effort: *effort, Obs: octx}

	if *modelPath != "" {
		runCustom(ctx, *modelPath, *stepSec, *horizon, cfg, *showGantt, *showTasks, *jsonOut, *reportPath, rec)
		exitOn(ocli.Close())
		return
	}

	w, err := workloadByName(*workloadName)
	exitOn(err)
	spec := hilp.SoC{
		CPUCores:         *cpus,
		GPUSMs:           *gpuSMs,
		DSAs:             dsas.list,
		DSAAdvantage:     *advantage,
		PowerBudgetWatts: *powerW,
		MemBandwidthGBs:  *bwGBs,
	}
	res, err := hilp.Solve(ctx, w, spec, hilp.WithProfile(hilp.DSEProfile), hilp.WithSolver(cfg))
	exitOn(err)
	exitOn(ocli.Close())

	if *reportPath != "" {
		d, err := report.FromResult("HILP run report", res, rec)
		exitOn(err)
		jsonPath, err := report.Write(*reportPath, d)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "hilp: report written to %s (JSON twin %s)\n", *reportPath, jsonPath)
	}

	if *jsonOut {
		out := map[string]any{
			"soc":         spec.Label(),
			"areaMM2":     spec.AreaMM2(),
			"makespanSec": res.MakespanSec,
			"speedup":     res.Speedup,
			"wlp":         res.WLP,
			"gap":         res.Gap,
			"stepSec":     res.StepSec,
			"method":      res.Sched.Method,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(out))
		return
	}

	fmt.Printf("SoC %s  (area %.1f mm^2)\n", spec.Label(), spec.AreaMM2())
	fmt.Printf("workload %s: makespan %.4g s, speedup %.1fx, avg WLP %.2f, gap %.1f%% (%s)\n",
		w.Name, res.MakespanSec, res.Speedup, res.WLP, 100*res.Gap, res.Sched.Method)
	if *showGantt {
		fmt.Println()
		fmt.Print(res.Instance.Gantt(res.Sched.Schedule, 100))
	}
	if *byApp {
		fmt.Println()
		fmt.Print(res.Instance.GanttByApp(res.Sched.Schedule, 100))
	}
	if *showWLP {
		fmt.Println()
		fmt.Print(res.Instance.WLPHistogram(res.Sched.Schedule))
	}
	if *showTasks {
		fmt.Println()
		fmt.Print(res.Instance.DescribeSchedule(res.Sched.Schedule))
	}
	if *exportPath != "" {
		data, err := res.Instance.ExportSchedule(res.Sched.Schedule)
		exitOn(err)
		exitOn(os.WriteFile(*exportPath, data, 0o644))
		fmt.Printf("\nschedule exported to %s\n", *exportPath)
	}
}

func runCustom(ctx context.Context, path string, stepSec float64, horizon int, cfg hilp.SolverConfig, gantt, tasks, jsonOut bool, reportPath string, rec *obs.Recorder) {
	data, err := os.ReadFile(path)
	exitOn(err)
	m, err := wire.DecodeModel(data)
	exitOn(err)
	inst, res, err := hilp.SolveModelContext(ctx, m, stepSec, horizon, cfg)
	exitOn(err)

	if reportPath != "" {
		d, err := report.FromSchedule(fmt.Sprintf("model %s — run report", m.Name), inst, res, rec)
		exitOn(err)
		jsonPath, err := report.Write(reportPath, d)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "hilp: report written to %s (JSON twin %s)\n", reportPath, jsonPath)
	}

	if jsonOut {
		out := map[string]any{
			"model":       m.Name,
			"makespanSec": float64(res.Schedule.Makespan) * stepSec,
			"wlp":         res.Schedule.WLP(inst.Problem),
			"gap":         res.Gap(),
			"method":      res.Method,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(out))
		return
	}
	fmt.Printf("model %s: makespan %.4g s, avg WLP %.2f, gap %.1f%% (%s)\n",
		m.Name, float64(res.Schedule.Makespan)*stepSec, res.Schedule.WLP(inst.Problem), 100*res.Gap(), res.Method)
	if gantt {
		fmt.Println()
		fmt.Print(inst.Gantt(res.Schedule, 100))
	}
	if tasks {
		fmt.Println()
		fmt.Print(inst.DescribeSchedule(res.Schedule))
	}
}

func workloadByName(name string) (hilp.Workload, error) {
	switch strings.ToLower(name) {
	case "rodinia":
		return hilp.RodiniaWorkload(), nil
	case "default":
		return hilp.DefaultWorkload(), nil
	case "optimized":
		return hilp.OptimizedWorkload(), nil
	}
	return hilp.Workload{}, fmt.Errorf("unknown workload %q (want Rodinia, Default, or Optimized)", name)
}

// dsaFlags parses repeated -dsa TARGET:PEs flags.
type dsaFlags struct {
	list []hilp.DSA
}

func (d *dsaFlags) String() string {
	parts := make([]string, len(d.list))
	for i, dsa := range d.list {
		parts[i] = fmt.Sprintf("%s:%d", dsa.Target, dsa.PEs)
	}
	return strings.Join(parts, ",")
}

func (d *dsaFlags) Set(v string) error {
	target, peStr, ok := strings.Cut(v, ":")
	if !ok || target == "" {
		return fmt.Errorf("want TARGET:PEs, got %q", v)
	}
	pes, err := strconv.Atoi(peStr)
	if err != nil || pes < 1 {
		return fmt.Errorf("bad PE count in %q", v)
	}
	d.list = append(d.list, hilp.DSA{PEs: pes, Target: target})
	return nil
}

func exitOn(err error) {
	if err == nil {
		return
	}
	// Model-validation failures list every bad field with its path, so a
	// hand-written model JSON can be fixed in one pass instead of one error
	// at a time.
	var ve *hilp.ValidationError
	if errors.As(err, &ve) {
		fmt.Fprintln(os.Stderr, "hilp: invalid model:")
		for _, f := range ve.Fields {
			fmt.Fprintf(os.Stderr, "  %s: %s [%s]\n", f.Path, f.Msg, f.Code)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "hilp:", err)
	os.Exit(1)
}
