// Command hilp-lint runs the project's static-analysis suite (internal/lint)
// and the wire-schema compatibility gate over the module.
//
// Usage:
//
//	go run ./cmd/hilp-lint ./...              # human-readable findings
//	go run ./cmd/hilp-lint -json ./... > lint.json
//	go run ./cmd/hilp-lint -schema-snapshot   # regenerate internal/wire/schema.snapshot.json
//
// Exit status: 0 when clean, 1 when there are findings, 2 when packages
// fail to load.
package main

import (
	"flag"
	"fmt"
	"os"

	"hilp/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as one JSON report on stdout")
	snapshot := flag.Bool("schema-snapshot", false, "regenerate the wire schema snapshot and exit")
	noSchema := flag.Bool("no-schema", false, "skip the wire-schema compatibility gate")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hilp-lint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n\nFlags:\n", "wireschema",
			"internal/wire structs stay additive vs the committed snapshot")
		flag.PrintDefaults()
	}
	flag.Parse()

	wd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fail(err)
	}

	if *snapshot {
		if err := lint.WriteSchemaSnapshot(loader); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "hilp-lint: wrote %s\n", lint.SnapshotRelPath)
		return
	}

	pkgs, err := loader.LoadModule(flag.Args())
	if err != nil {
		fail(err)
	}
	diags := lint.RunAll(pkgs)
	if !*noSchema {
		schemaDiags, err := lint.CheckSchemaSnapshot(loader)
		if err != nil {
			fail(err)
		}
		diags = append(diags, schemaDiags...)
		lint.SortDiagnostics(diags)
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fail(err)
		}
	} else if err := lint.WriteText(os.Stdout, diags); err != nil {
		fail(err)
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "hilp-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "hilp-lint: %v\n", err)
	os.Exit(2)
}
