// Command hilp-dse sweeps an SoC design space with HILP (optionally also
// with the MultiAmdahl and Gables baselines) and reports the evaluated
// points and their area/performance Pareto front, reproducing the paper's
// §VI methodology from the command line.
//
// Sweeps run through the warm-start sweep engine: canonically identical
// SoCs are solved once (-cache), neighboring SoCs seed each other's search
// (-warm-start), and dominated SoCs can be skipped with a certified bound
// (-prune).
//
//	hilp-dse -workload Default -power 600                # the 372-SoC space
//	hilp-dse -cpus 1,2 -gpus 0,16 -max-dsas 2 -pareto    # a reduced space
//	hilp-dse -csv > points.csv                           # machine-readable
//	hilp-dse -prune -v                                   # engine stats live
//	hilp-dse -checkpoint ckpt/                           # journal every point
//	hilp-dse -checkpoint ckpt/ -resume                   # continue after a crash
//
// SIGINT/SIGTERM drain gracefully: in-flight solves return their best
// incumbents, the checkpoint (if any) gets a final flush, and the best
// incumbent so far is printed with its optimality-gap certificate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hilp"
	"hilp/internal/dse"
	"hilp/internal/faults"
	"hilp/internal/journal"
	"hilp/internal/obs"
	"hilp/internal/report"
	"hilp/internal/wire"
)

func main() {
	var (
		workloadName = flag.String("workload", "Default", "workload: Rodinia, Default, or Optimized")
		cpus         = flag.String("cpus", "1,2,4", "CPU-core counts to sweep")
		gpus         = flag.String("gpus", "0,4,16,64", "GPU SM counts to sweep (0 = none)")
		maxDSAs      = flag.Int("max-dsas", 10, "maximum number of DSAs (0 = none)")
		pes          = flag.String("pes", "1,4,16", "DSA PE counts to sweep")
		powerW       = flag.Float64("power", 600, "power budget in watts")
		advantage    = flag.Float64("dsa-advantage", 4, "DSA efficiency advantage")
		dvfs         = flag.String("dvfs", "210,300,420,600,765", "GPU DVFS points in MHz")
		workers      = flag.Int("workers", 0, "parallel evaluations (0 = GOMAXPROCS)")
		seed         = flag.Int64("seed", 1, "solver random seed")
		effort       = flag.Float64("effort", 0.25, "solver effort multiplier")
		paretoOnly   = flag.Bool("pareto", false, "print only the Pareto front")
		withBase     = flag.Bool("baselines", false, "also sweep MultiAmdahl and Gables")
		csv          = flag.Bool("csv", false, "emit CSV instead of a table")
		reportPath   = flag.String("report", "", "write an HTML run report (plus a .json twin): the sweep's Pareto front and a full re-evaluation of its best point")
		faultSpec    = flag.String("faults", "", "chaos-test fault injection spec, e.g. seed=1,rate=0.1,kinds=panic+timeout,sites=solve (empty disables)")
		follow       = flag.Bool("follow", false, "tail the live event bus to stderr: per-point completions, incumbent improvements, and solver stage transitions, one JSON line each")
		useCache     = flag.Bool("cache", true, "reuse solves across canonically identical SoCs (sweep engine)")
		warmStart    = flag.Bool("warm-start", true, "seed each point's search with its nearest solved neighbor's schedule (sweep engine)")
		prune        = flag.Bool("prune", false, "skip dominated SoCs with a certified speedup bound instead of solving them (sweep engine)")
		ckptDir      = flag.String("checkpoint", "", "crash-recovery journal directory: every completed point is journaled so an interrupted sweep can continue with -resume (empty disables)")
		doResume     = flag.Bool("resume", false, "replay the -checkpoint journal and skip its completed points (refused if the journal was recorded against different inputs)")
	)
	var ocli obs.CLI
	ocli.Register(nil)
	flag.Parse()
	octx := ocli.Context()

	// -follow attaches the telemetry bus and tails it from a goroutine: the
	// same event stream hilp-serve serves over SSE, printed as JSON lines.
	var followWait func()
	if *follow {
		if octx == nil {
			octx = &obs.Context{}
		}
		followWait = followBus(octx, os.Stderr)
	}

	w, err := workloadByName(*workloadName)
	exitOn(err)

	dsaLimit := *maxDSAs
	if dsaLimit == 0 {
		dsaLimit = -1 // CLI 0 means "no DSAs"; the library's 0 means default
	}
	space := hilp.SpaceConfig{
		CPUCores:  mustInts(*cpus),
		GPUSMs:    mustInts(*gpus),
		MaxDSAs:   dsaLimit,
		DSAPEs:    mustInts(*pes),
		PowerW:    *powerW,
		Advantage: *advantage,
	}
	specs := hilp.DesignSpace(w, space)
	freqs := mustFloats(*dvfs)
	for i := range specs {
		specs[i].GPUFrequenciesMHz = freqs
	}
	fmt.Fprintf(os.Stderr, "hilp-dse: evaluating %d SoCs on %s\n", len(specs), w.Name)

	ctx := context.Background()
	var injector *faults.Injector
	if *faultSpec != "" {
		fcfg, err := faults.ParseSpec(*faultSpec)
		exitOn(err)
		injector = faults.New(fcfg)
		ctx = faults.NewContext(ctx, injector)
		fmt.Fprintf(os.Stderr, "hilp-dse: CHAOS MODE: injecting faults (%s)\n", *faultSpec)
	}
	// SIGINT/SIGTERM cancel the sweep context: in-flight solves drain with
	// their best incumbents (anytime semantics), then the checkpoint journal
	// gets its final flush below.
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := hilp.SolverConfig{Seed: *seed, Effort: *effort, Restarts: 1, Obs: octx}
	solveOpts := []hilp.Option{
		hilp.WithProfile(hilp.DSEProfile),
		hilp.WithSolver(cfg),
		hilp.WithWorkers(*workers),
		hilp.WithObs(octx),
		hilp.WithCache(*useCache),
		hilp.WithWarmStart(*warmStart),
		hilp.WithPruning(*prune),
	}
	if ocli.Verbose {
		solveOpts = append(solveOpts, hilp.WithProgress(liveProgress(os.Stderr)))
	}

	if *doResume && *ckptDir == "" {
		exitOn(fmt.Errorf("-resume requires -checkpoint"))
	}
	var jnl *journal.Journal
	if *ckptDir != "" {
		modelKey := dseModelKey(w, specs, cfg)
		if *doResume {
			resume, err := resumeCheckpoint(*ckptDir, modelKey, specs)
			exitOn(err)
			fmt.Fprintf(os.Stderr, "hilp-dse: resuming from %s: %d/%d points recovered, %d to solve\n",
				*ckptDir, len(resume), len(specs), len(specs)-len(resume))
			if len(resume) > 0 {
				solveOpts = append(solveOpts, hilp.WithResume(resume))
			}
		}
		jnl, err = openCheckpoint(*ckptDir, modelKey, len(specs), octx)
		exitOn(err)
		solveOpts = append(solveOpts, hilp.WithCheckpoint(checkpointHook(jnl)))
	}

	batch, err := hilp.SolveBatch(ctx, w, specs, solveOpts...)
	exitOn(err)
	points := batch.Points
	if st := batch.Stats; st.CacheHits+st.WarmStarted+st.Pruned+st.Resumed > 0 {
		fmt.Fprintf(os.Stderr, "hilp-dse: engine: %d solved, %d cache hits, %d warm-started, %d pruned, %d resumed\n",
			st.Solved, st.CacheHits, st.WarmStarted, st.Pruned, st.Resumed)
	}

	interrupted := ctx.Err() != nil
	if jnl != nil {
		// A completed run closes its journal history; an interrupted one
		// leaves the job open so -resume picks it up. Either way Close flushes
		// every buffered point record to disk (the SIGTERM "final flush").
		if !interrupted {
			jnl.Append(wire.JournalRecord{
				Kind:  wire.JournalKindJobEnd,
				JobID: checkpointJobID,
				End:   &wire.JournalJobEnd{Status: "done"},
			})
		}
		exitOn(jnl.Close())
	}
	if interrupted {
		completed := 0
		for _, p := range points {
			if p.Err == nil {
				completed++
			}
		}
		msg := fmt.Sprintf("hilp-dse: interrupted: %d/%d points completed", completed, len(points))
		if best, ok := hilp.BestPoint(points); ok {
			msg += fmt.Sprintf("; best incumbent %s: %.1fx @ %.1f mm^2 (gap certificate %.1f%%)",
				best.Label, best.Speedup, best.AreaMM2, 100*best.Gap)
		}
		fmt.Fprintln(os.Stderr, msg)
		if jnl != nil {
			fmt.Fprintf(os.Stderr, "hilp-dse: checkpoint flushed; rerun with -checkpoint %s -resume to continue\n", *ckptDir)
		}
	}

	if injector != nil {
		failed, degraded := 0, 0
		for _, p := range points {
			switch {
			case p.Err != nil:
				failed++
			case p.Degraded:
				degraded++
			}
		}
		fmt.Fprintf(os.Stderr, "hilp-dse: chaos: %d faults fired on %d points; %d points failed, %d degraded to fallback\n",
			injector.FiredCount(), len(injector.FiredKeys()), failed, degraded)
	}

	var maPoints, gabPoints []hilp.Point
	if *withBase && !interrupted {
		maPoints = dse.Sweep(ctx, specs, *workers, dse.MAEvaluator(w))
		gabPoints = dse.Sweep(ctx, specs, *workers, dse.GablesEvaluator(w, hilp.DSEProfile, cfg))
	}
	if followWait != nil {
		followWait()
	}
	exitOn(ocli.Close())

	if *reportPath != "" {
		exitOn(writeSweepReport(*reportPath, w, points, cfg))
	}

	printPoints := func(model string, pts []hilp.Point) {
		out := pts
		if *paretoOnly {
			out = hilp.ParetoFront(pts)
		}
		if *csv {
			exitOn(dse.WriteCSV(os.Stdout, model, out))
			return
		}
		fmt.Printf("\n%s (%d points%s):\n", model, len(out), map[bool]string{true: ", Pareto only", false: ""}[*paretoOnly])
		fmt.Printf("%-18s %10s %9s %6s %6s  %s\n", "SoC", "area mm^2", "speedup", "WLP", "gap", "mix")
		for _, p := range out {
			if p.Err != nil {
				fmt.Printf("%-18s   failed: %v\n", p.Label, p.Err)
				continue
			}
			if p.Pruned {
				fmt.Printf("%-18s %10.1f   pruned: speedup <= %.1fx (dominated by %s)\n",
					p.Label, p.AreaMM2, p.SpeedupBound, p.PrunedBy)
				continue
			}
			mark := ""
			if p.Degraded {
				mark = " (degraded: " + p.FallbackReason + ")"
			}
			fmt.Printf("%-18s %10.1f %9.1f %6.2f %5.1f%%  %s%s\n", p.Label, p.AreaMM2, p.Speedup, p.WLP, 100*p.Gap, p.Mix, mark)
		}
		if best, ok := hilp.BestPoint(pts); ok {
			fmt.Printf("best: %s (%.1fx @ %.1f mm^2)\n", best.Label, best.Speedup, best.AreaMM2)
		}
	}

	printPoints("HILP", points)
	if *withBase && !interrupted {
		printPoints("MultiAmdahl", maPoints)
		printPoints("Gables", gabPoints)
	}
}

// followBus attaches a live-event bus to octx and tails it to w from a
// goroutine. The returned function closes the bus, waits for the tail to
// drain, and reports any drop-oldest losses.
func followBus(octx *obs.Context, w *os.File) func() {
	octx.Bus = obs.NewBus(0)
	sub := octx.Bus.Subscribe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		enc := json.NewEncoder(w)
		for ev := range sub.C {
			enc.Encode(ev)
		}
	}()
	return func() {
		octx.Bus.Close()
		<-done
		if n := sub.Dropped(); n > 0 {
			fmt.Fprintf(w, "hilp-dse: -follow: %d events dropped (terminal slower than the sweep)\n", n)
		}
		sub.Unsubscribe()
	}
}

// writeSweepReport renders the sweep's Pareto front to an HTML report. The
// sweep itself runs without a flight recorder (it is parallel, so recorded
// event interleavings would not be deterministic); instead the best point is
// re-evaluated once, single-threaded, with a recorder attached so the report
// also carries that point's schedule, utilization, and convergence traces.
func writeSweepReport(path string, w hilp.Workload, points []hilp.Point, cfg hilp.SolverConfig) error {
	title := fmt.Sprintf("hilp-dse sweep — %s", w.Name)
	var d *report.Data
	if best, ok := hilp.BestPoint(points); ok {
		rec := obs.NewRecorder()
		recCfg := cfg
		recCfg.Obs = &obs.Context{Recorder: rec}
		res, err := hilp.Solve(context.Background(), w, best.Spec, hilp.WithProfile(hilp.DSEProfile), hilp.WithSolver(recCfg))
		if err != nil {
			return err
		}
		d, err = report.FromResult(title, res, rec)
		if err != nil {
			return err
		}
		d.Subtitle = fmt.Sprintf("best point %s re-evaluated in detail; %d SoCs swept", best.Label, len(points))
	} else {
		d = report.New(title, fmt.Sprintf("%d SoCs swept; no feasible point found", len(points)))
	}
	d.AddSweep(points)
	jsonPath, err := report.Write(path, d)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hilp-dse: report written to %s (JSON twin %s)\n", path, jsonPath)
	return nil
}

// liveProgress returns a progress callback rendering a single self-updating
// status line: points evaluated, current best, and the extrapolated ETA.
func liveProgress(w *os.File) func(dse.Progress) {
	return func(p dse.Progress) {
		best := "best n/a"
		if p.HasBest {
			best = fmt.Sprintf("best %.1fx @ %.1f mm^2 gap %.1f%% (%s)",
				p.Best.Speedup, p.Best.AreaMM2, 100*p.Best.Gap, p.Best.Label)
			// The per-point correlation ID ties the best point to its log
			// lines and latency exemplar.
			if p.Best.RequestID != "" {
				best += " req " + p.Best.RequestID
			}
		}
		fmt.Fprintf(w, "\rhilp-dse: %d/%d (%d%%)  %s  eta %s   ",
			p.Done, p.Total, 100*p.Done/p.Total, best, p.ETA.Round(time.Second))
		if p.Done == p.Total {
			fmt.Fprintln(w)
		}
	}
}

func workloadByName(name string) (hilp.Workload, error) {
	switch strings.ToLower(name) {
	case "rodinia":
		return hilp.RodiniaWorkload(), nil
	case "default":
		return hilp.DefaultWorkload(), nil
	case "optimized":
		return hilp.OptimizedWorkload(), nil
	}
	return hilp.Workload{}, fmt.Errorf("unknown workload %q", name)
}

func mustInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		exitOn(err)
		out = append(out, v)
	}
	return out
}

func mustFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		exitOn(err)
		out = append(out, v)
	}
	return out
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hilp-dse:", err)
		os.Exit(1)
	}
}
