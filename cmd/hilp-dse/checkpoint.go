package main

import (
	"fmt"
	"os"

	"hilp"
	"hilp/internal/dse"
	"hilp/internal/journal"
	"hilp/internal/obs"
	"hilp/internal/wire"
)

// checkpointJobID names the single journaled "job" a hilp-dse run records.
// The journal format is shared with hilp-serve (which journals one job per
// submitted sweep); a CLI checkpoint directory holds exactly one.
const checkpointJobID = "hilp-dse"

// dseModelKey is the canonical identity of what this run computes: the
// workload, the resolved specs (after DVFS assignment), the profile, and the
// solver configuration. It is recorded with the checkpoint's jobStart record
// and compared on -resume, so a checkpoint taken against different flags is
// refused instead of spliced into the wrong result set.
func dseModelKey(w hilp.Workload, specs []hilp.SoC, cfg hilp.SolverConfig) string {
	type canonical struct {
		Workload wire.Workload     `json:"workload"`
		Specs    []wire.SoC        `json:"specs"`
		Profile  wire.Profile      `json:"profile"`
		Solver   wire.SolverConfig `json:"solver"`
	}
	ws := make([]wire.SoC, len(specs))
	for i, s := range specs {
		ws[i] = wire.FromSpec(s)
	}
	key, err := wire.CanonicalKey(canonical{
		Workload: wire.FromWorkload(w),
		Specs:    ws,
		Profile:  wire.FromProfile(hilp.DSEProfile),
		Solver:   wire.FromConfig(cfg),
	})
	if err != nil {
		return ""
	}
	return key
}

// resumeCheckpoint replays the checkpoint directory and returns the clean
// completed points keyed by input index, ready for hilp.WithResume. A torn
// final record (crash mid-write) is reported and its point re-solves; a
// model-key mismatch is a hard error (see dse.CheckResumeKey).
func resumeCheckpoint(dir, modelKey string, specs []hilp.SoC) (map[int]hilp.Point, error) {
	jobs, stats, err := journal.ReplayJobs(dir)
	if err != nil {
		return nil, err
	}
	if stats.Torn {
		fmt.Fprintf(os.Stderr, "hilp-dse: checkpoint: dropped a torn final record (crash mid-write); that point re-solves\n")
	}
	resume := map[int]hilp.Point{}
	for _, st := range jobs {
		if st.JobID != checkpointJobID || st.Start == nil {
			continue
		}
		if err := dse.CheckResumeKey(st.Start.ModelKey, modelKey); err != nil {
			return nil, err
		}
		for idx, wp := range st.Points {
			if idx < 0 || idx >= len(specs) || !dse.Resumable(wp) {
				continue
			}
			resume[idx] = dse.FromWirePoint(wp, specs[idx])
		}
	}
	return resume, nil
}

// openCheckpoint opens (or creates) the checkpoint journal and appends this
// run's jobStart record — synced immediately, so even an instant crash leaves
// a resumable journal. Replay keeps the first jobStart per job, so repeated
// resumed runs appending their own are harmless.
func openCheckpoint(dir, modelKey string, total int, octx *obs.Context) (*journal.Journal, error) {
	jnl, err := journal.Open(dir, journal.Options{Obs: octx})
	if err != nil {
		return nil, err
	}
	err = jnl.Append(wire.JournalRecord{
		Kind:  wire.JournalKindJobStart,
		JobID: checkpointJobID,
		Start: &wire.JournalJobStart{Total: total, ModelKey: modelKey},
	})
	if err == nil {
		err = jnl.Sync()
	}
	if err != nil {
		jnl.Close()
		return nil, err
	}
	return jnl, nil
}

// checkpointHook returns the per-point callback appending one journal record
// per completed point. Append failures are reported once but do not abort the
// sweep — a broken checkpoint disk should not kill a long run.
func checkpointHook(jnl *journal.Journal) func(int, hilp.Point) {
	warned := false
	return func(i int, p hilp.Point) {
		err := jnl.Append(wire.JournalRecord{
			Kind:  wire.JournalKindPoint,
			JobID: checkpointJobID,
			Point: &wire.JournalPoint{Index: i, Point: dse.ToWirePoint(p)},
		})
		if err != nil && !warned {
			warned = true
			fmt.Fprintf(os.Stderr, "hilp-dse: checkpoint: append failed, run continues unjournaled: %v\n", err)
		}
	}
}
