// Command hilp-benchgate enforces the observability layer's disabled-overhead
// contract in CI. It parses `go test -bench` output (possibly with -count
// repeats), keeps the minimum ns/op per benchmark (the least-noisy summary of
// a repeated run), computes the disabled-instrumentation overhead
//
//	(BenchmarkEvaluateObsDisabled - BenchmarkEvaluateBaseline) / BenchmarkEvaluateBaseline
//
// and exits non-zero when it exceeds the contract plus a noise allowance.
// It also writes a BENCH_obs.json-style artifact so every CI run leaves a
// machine-readable record next to the checked-in baseline.
//
//	go test -run - -bench 'BenchmarkEvaluate|BenchmarkObs' -benchmem -count 3 . | \
//	  hilp-benchgate -out artifacts/BENCH_obs.ci.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hilp/internal/benchgate"
)

func main() {
	var (
		in          = flag.String("in", "", "bench output file (empty = stdin)")
		out         = flag.String("out", "", "artifact path for the parsed results (empty = no artifact)")
		baseline    = flag.String("baseline", "BenchmarkEvaluateBaseline", "uninstrumented reference benchmark")
		disabled    = flag.String("disabled", "BenchmarkEvaluateObsDisabled", "disabled-instrumentation benchmark")
		contractPct = flag.Float64("contract-pct", 2.0, "disabled-overhead contract in percent")
		noisePct    = flag.Float64("noise-pct", 6.0, "measurement-noise allowance in percent added to the contract")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		r = f
	}

	results, err := benchgate.Parse(r)
	if err != nil {
		fatal("parse: %v", err)
	}
	report, err := benchgate.Check(results, benchgate.Config{
		Baseline:    *baseline,
		Disabled:    *disabled,
		ContractPct: *contractPct,
		NoisePct:    *noisePct,
	})
	if err != nil {
		fatal("%v", err)
	}

	if *out != "" {
		blob, err := report.MarshalArtifact()
		if err != nil {
			fatal("artifact: %v", err)
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal("artifact: %v", err)
		}
	}

	fmt.Printf("hilp-benchgate: disabled overhead %+.2f%% (contract %.1f%% + noise %.1f%%)\n",
		report.OverheadPct, *contractPct, *noisePct)
	if !report.Pass {
		fatal("disabled-path overhead %+.2f%% exceeds the %.1f%% contract (+%.1f%% noise allowance)",
			report.OverheadPct, *contractPct, *noisePct)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hilp-benchgate: "+format+"\n", args...)
	os.Exit(1)
}
