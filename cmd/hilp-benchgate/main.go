// Command hilp-benchgate enforces the observability layer's disabled-overhead
// contract in CI. It parses `go test -bench` output (possibly with -count
// repeats), keeps the minimum ns/op per benchmark (the least-noisy summary of
// a repeated run), computes the disabled-instrumentation overhead
//
//	(BenchmarkEvaluateObsDisabled - BenchmarkEvaluateBaseline) / BenchmarkEvaluateBaseline
//
// and exits non-zero when it exceeds the contract plus a noise allowance.
// It also writes a BENCH_obs.json-style artifact so every CI run leaves a
// machine-readable record next to the checked-in baseline.
//
//	go test -run - -bench 'BenchmarkEvaluate|BenchmarkObs' -benchmem -count 3 . | \
//	  hilp-benchgate -out artifacts/BENCH_obs.ci.json
//
// With -speedup it gates a throughput win instead: the fast benchmark must
// run at least -min-ratio times faster than the slow one. CI uses it to
// prove the warm-start sweep engine's advantage over a cold sweep:
//
//	go test -run - -bench BenchmarkSweep -count 3 . | \
//	  hilp-benchgate -speedup -fast BenchmarkSweepWarm -slow BenchmarkSweepCold \
//	    -min-ratio 1.3 -out artifacts/BENCH_sweep.ci.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hilp/internal/benchgate"
)

func main() {
	var (
		in          = flag.String("in", "", "bench output file (empty = stdin)")
		out         = flag.String("out", "", "artifact path for the parsed results (empty = no artifact)")
		baseline    = flag.String("baseline", "BenchmarkEvaluateBaseline", "uninstrumented reference benchmark")
		disabled    = flag.String("disabled", "BenchmarkEvaluateObsDisabled", "disabled-instrumentation benchmark")
		contractPct = flag.Float64("contract-pct", 2.0, "disabled-overhead contract in percent")
		noisePct    = flag.Float64("noise-pct", 6.0, "measurement-noise allowance in percent added to the contract")
		speedup     = flag.Bool("speedup", false, "gate a minimum speedup ratio (-fast over -slow) instead of the overhead contract")
		fastName    = flag.String("fast", "BenchmarkSweepWarm", "speedup mode: the benchmark that must be faster")
		slowName    = flag.String("slow", "BenchmarkSweepCold", "speedup mode: the reference benchmark")
		minRatio    = flag.Float64("min-ratio", 1.3, "speedup mode: minimum slow/fast ns/op ratio")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		r = f
	}

	results, err := benchgate.Parse(r)
	if err != nil {
		fatal("parse: %v", err)
	}

	if *speedup {
		report, err := benchgate.CheckSpeedup(results, benchgate.SpeedupConfig{
			Fast:     *fastName,
			Slow:     *slowName,
			MinRatio: *minRatio,
		})
		if err != nil {
			fatal("%v", err)
		}
		if *out != "" {
			blob, err := report.MarshalArtifact()
			if err != nil {
				fatal("artifact: %v", err)
			}
			if err := os.WriteFile(*out, blob, 0o644); err != nil {
				fatal("artifact: %v", err)
			}
		}
		fmt.Printf("hilp-benchgate: %s is %.2fx faster than %s (gate: >= %.2fx)\n",
			*fastName, report.Ratio, *slowName, *minRatio)
		if !report.Pass {
			fatal("speedup %.2fx below the %.2fx gate", report.Ratio, *minRatio)
		}
		return
	}

	report, err := benchgate.Check(results, benchgate.Config{
		Baseline:    *baseline,
		Disabled:    *disabled,
		ContractPct: *contractPct,
		NoisePct:    *noisePct,
	})
	if err != nil {
		fatal("%v", err)
	}

	if *out != "" {
		blob, err := report.MarshalArtifact()
		if err != nil {
			fatal("artifact: %v", err)
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal("artifact: %v", err)
		}
	}

	fmt.Printf("hilp-benchgate: disabled overhead %+.2f%% (contract %.1f%% + noise %.1f%%)\n",
		report.OverheadPct, *contractPct, *noisePct)
	if !report.Pass {
		fatal("disabled-path overhead %+.2f%% exceeds the %.1f%% contract (+%.1f%% noise allowance)",
			report.OverheadPct, *contractPct, *noisePct)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hilp-benchgate: "+format+"\n", args...)
	os.Exit(1)
}
