// Command hilp-exp regenerates every table and figure of the paper's
// evaluation and writes the full report to stdout (or a file). It is the
// batch driver behind EXPERIMENTS.md.
//
//	hilp-exp                       # everything (the Fig. 7/8 sweeps take minutes)
//	hilp-exp -only fig2,table2     # a subset
//	hilp-exp -effort 1 -out report.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hilp"
	"hilp/internal/experiments"
	"hilp/internal/obs"
	"hilp/internal/report"
	"hilp/internal/rodinia"
)

type experiment struct {
	name string
	desc string
	run  func(experiments.Options) (string, error)
}

var all = []experiment{
	{"fig2", "running example (Figures 2 and 3)", func(o experiments.Options) (string, error) {
		r, err := experiments.Fig2and3Example(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"table2", "benchmark profiles and power-law fits (Table II)", func(o experiments.Options) (string, error) {
		rows, err := experiments.Table2Fits()
		if err != nil {
			return "", err
		}
		return experiments.RenderTable2(rows), nil
	}},
	{"table3", "GPU power scaling (Table III)", func(o experiments.Options) (string, error) {
		rows, err := experiments.Table3PowerScaling()
		if err != nil {
			return "", err
		}
		return experiments.RenderTable3(rows), nil
	}},
	{"fig5a", "Amdahl's law validation (Figure 5a)", func(o experiments.Options) (string, error) {
		s, err := experiments.Fig5aAmdahl(o)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig5a(s), nil
	}},
	{"fig5b", "memory wall validation (Figure 5b)", func(o experiments.Options) (string, error) {
		rows, err := experiments.Fig5bMemoryWall(o)
		if err != nil {
			return "", err
		}
		return experiments.RenderConstraintRows("Figure 5b - memory wall (Optimized, 4 CPUs)", "GB/s", rows), nil
	}},
	{"fig5c", "dark silicon validation (Figure 5c)", func(o experiments.Options) (string, error) {
		rows, err := experiments.Fig5cDarkSilicon(o)
		if err != nil {
			return "", err
		}
		return experiments.RenderConstraintRows("Figure 5c - dark silicon (Optimized, 4 CPUs)", "W", rows), nil
	}},
	{"fig6a", "WLP and speedup, Rodinia (Figure 6a)", func(o experiments.Options) (string, error) {
		rows, err := experiments.Fig6WLP(rodinia.RodiniaWorkload(), o)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig6("Figure 6a - Rodinia, 64-SM GPU", rows), nil
	}},
	{"fig6b", "WLP and speedup, Optimized (Figure 6b)", func(o experiments.Options) (string, error) {
		rows, err := experiments.Fig6WLP(rodinia.OptimizedWorkload(), o)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig6("Figure 6b - Optimized, 64-SM GPU", rows), nil
	}},
	{"fig7", "372-SoC design space (Figure 7)", func(o experiments.Options) (string, error) {
		r, err := experiments.Fig7DesignSpace(o)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig7(r), nil
	}},
	{"fig8a", "power-constrained Pareto fronts (Figure 8a)", func(o experiments.Options) (string, error) {
		r, err := experiments.Fig8aPowerConstrained(o)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig8a(r), nil
	}},
	{"fig8b", "DSA efficiency advantage (Figure 8b)", func(o experiments.Options) (string, error) {
		r, err := experiments.Fig8bDSAAdvantage(o)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig8b(r), nil
	}},
	{"fig10", "streaming dataflow case study (Figure 10)", func(o experiments.Options) (string, error) {
		r, err := experiments.Fig10Streaming(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"ablate-solver", "ablation: solver portfolio stages", func(o experiments.Options) (string, error) {
		rows, err := experiments.AblationSolverPortfolio(o)
		if err != nil {
			return "", err
		}
		return experiments.RenderAblationSolver(rows), nil
	}},
	{"ablate-resolution", "ablation: time-step resolution", func(o experiments.Options) (string, error) {
		rows, err := experiments.AblationResolution(o)
		if err != nil {
			return "", err
		}
		return experiments.RenderAblationResolution(rows), nil
	}},
	{"ablate-dvfs", "ablation: DVFS operating points", func(o experiments.Options) (string, error) {
		rows, err := experiments.AblationDVFS(o)
		if err != nil {
			return "", err
		}
		return experiments.RenderAblationDVFS(rows), nil
	}},
	{"ablate-cpuwidth", "ablation: parallel-CPU option", func(o experiments.Options) (string, error) {
		rows, err := experiments.AblationCPUWidth(o)
		if err != nil {
			return "", err
		}
		return experiments.RenderAblationCPUWidth(rows), nil
	}},
	{"synthetic", "sensitivity: workload shape vs accelerator strategy", func(o experiments.Options) (string, error) {
		rows, err := experiments.SyntheticSensitivity(o)
		if err != nil {
			return "", err
		}
		return experiments.RenderSynthetic(rows), nil
	}},
}

func main() {
	var (
		only     = flag.String("only", "", "comma-separated experiment names (default: all); see -list")
		effort   = flag.Float64("effort", 0.25, "solver effort multiplier")
		seed     = flag.Int64("seed", 1, "solver random seed")
		outArg   = flag.String("out", "", "write the report to this file instead of stdout")
		markdown = flag.Bool("md", false, "emit Markdown sections (headings + code fences)")
		list     = flag.Bool("list", false, "list experiments and exit")
		repPath  = flag.String("report", "", "also write an HTML run report (plus a .json twin) for the Default workload on the paper's reference SoC, independent of -only")
	)
	var ocli obs.CLI
	ocli.Register(nil)
	flag.Parse()
	octx := ocli.Context()

	if *list {
		for _, e := range all {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(n))] = true
		}
	}

	var out io.Writer = os.Stdout
	if *outArg != "" {
		f, err := os.Create(*outArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hilp-exp:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	opts := experiments.Options{Seed: *seed, Effort: *effort, Obs: octx}
	failures := 0
	for _, e := range all {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "hilp-exp: running %s (%s)...\n", e.name, e.desc)
		start := time.Now()
		text, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hilp-exp: %s failed: %v\n", e.name, err)
			failures++
			continue
		}
		if *markdown {
			fmt.Fprintf(out, "## %s — %s\n\n_Regenerated in %s._\n\n```\n%s```\n\n",
				e.name, e.desc, time.Since(start).Round(time.Millisecond), text)
		} else {
			fmt.Fprintf(out, "===== %s: %s (took %s) =====\n%s\n", e.name, e.desc, time.Since(start).Round(time.Millisecond), text)
		}
	}
	if err := ocli.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hilp-exp:", err)
		failures++
	}
	if *repPath != "" {
		if err := writeRunReport(*repPath, *seed, *effort); err != nil {
			fmt.Fprintf(os.Stderr, "hilp-exp: report failed: %v\n", err)
			failures++
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// writeRunReport evaluates the Default workload on the paper's reference SoC
// (4 CPUs, a 16-SM GPU, 600 W, 800 GB/s) with the flight recorder attached
// and renders the full HTML report: schedule timeline, utilization
// accounting, and solver convergence traces.
func writeRunReport(path string, seed int64, effort float64) error {
	rec := obs.NewRecorder()
	cfg := hilp.SolverConfig{Seed: seed, Effort: effort, Obs: &obs.Context{Recorder: rec}}
	res, err := hilp.Solve(context.Background(), hilp.DefaultWorkload(), hilp.SoC{
		CPUCores:         4,
		GPUSMs:           16,
		PowerBudgetWatts: 600,
		MemBandwidthGBs:  800,
	}, hilp.WithProfile(hilp.DSEProfile), hilp.WithSolver(cfg))
	if err != nil {
		return err
	}
	d, err := report.FromResult("hilp-exp reference run", res, rec)
	if err != nil {
		return err
	}
	jsonPath, err := report.Write(path, d)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hilp-exp: report written to %s (JSON twin %s)\n", path, jsonPath)
	return nil
}
