// Command hilp-serve runs the HILP solve service: an HTTP JSON API over the
// whole evaluation stack.
//
//	hilp-serve -addr :8080 -workers 4 -default-timeout 30s
//
// Endpoints:
//
//	POST /v1/evaluate          solve one (workload, SoC) pair or a custom model
//	POST /v1/sweep             start an async design-space sweep, returns a job
//	GET  /v1/jobs/{id}         poll a sweep job
//	GET  /v1/jobs/{id}/events  stream the job's live telemetry (SSE)
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus text metrics
//
// Per-request timeouts map onto solver deadlines: a request that exceeds its
// budget still gets the best schedule found so far, with result.cancelled
// set and a valid optimality-gap certificate. Identical evaluate requests
// are served byte-identically from an LRU cache (see the X-HILP-Cache
// response header). SIGINT/SIGTERM drain in-flight solves before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hilp/internal/faults"
	"hilp/internal/obs"
	"hilp/internal/server"
)

// parseBuckets parses a comma-separated ascending list of bucket bounds in
// seconds, e.g. "0.01,0.05,0.25,1,5".
func parseBuckets(spec string) ([]float64, error) {
	parts := strings.Split(spec, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad bucket %q: %v", p, err)
		}
		if n := len(out); n > 0 && v <= out[n-1] {
			return nil, fmt.Errorf("buckets must ascend: %g after %g", v, out[n-1])
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		workers        = flag.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		queueDepth     = flag.Int("queue", 0, "waiting requests beyond running solves before 429 (0 = 2x workers)")
		cacheEntries   = flag.Int("cache", 128, "solve cache entries (negative disables)")
		defaultTimeout = flag.Duration("default-timeout", 30*time.Second, "solve budget when the request sets none")
		maxTimeout     = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested solve budgets")
		maxJobs        = flag.Int("max-jobs", 64, "retained async sweep jobs")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget")
		maxBody        = flag.Int64("max-body", 0, "request body limit in bytes before 413 (0 = 8 MiB)")
		jobRetries     = flag.Int("job-retries", 0, "retries for transiently failing sweep jobs (0 = 2, negative disables)")
		faultSpec      = flag.String("faults", "", "chaos-test fault injection spec, e.g. seed=1,rate=0.1,kinds=panic+timeout,sites=solve (empty disables)")
		verbose        = flag.Bool("v", false, "log requests and solver progress to stderr")
		logFormat      = flag.String("log-format", "text", "structured log format: text or json")
		logLevel       = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		logRing        = flag.Int("log-ring", 512, "recent structured-log records retained for GET /debug/logs")
		bucketSpec     = flag.String("latency-buckets", "", "request latency histogram buckets, comma-separated seconds ascending (empty = defaults)")
		otlpEndpoint   = flag.String("otlp-endpoint", "", "OTLP/HTTP trace endpoint receiving one span per request plus per-stage children (empty disables)")
		eventBuffer    = flag.Int("event-buffer", 0, "per-subscriber buffer for GET /v1/jobs/{id}/events, oldest events dropped beyond it (0 = 256)")
		journalDir     = flag.String("journal-dir", "", "crash-recovery journal directory: sweep jobs survive restarts and resume with completed points replayed (empty disables)")
	)
	flag.Parse()

	var injector *faults.Injector
	if *faultSpec != "" {
		cfg, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			log.Fatalf("hilp-serve: -faults: %v", err)
		}
		injector = faults.New(cfg)
		log.Printf("hilp-serve: CHAOS MODE: injecting faults (%s)", *faultSpec)
	}

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		log.Fatalf("hilp-serve: -log-level: %v", err)
	}
	var buckets []float64
	if *bucketSpec != "" {
		buckets, err = parseBuckets(*bucketSpec)
		if err != nil {
			log.Fatalf("hilp-serve: -latency-buckets: %v", err)
		}
	}

	// The structured logger fans every record into stderr and the bounded ring
	// behind GET /debug/logs. The ring captures all levels regardless of
	// -log-level, so debug context for a failed request is still retrievable.
	logBuf := obs.NewLogBuffer(*logRing)
	stderrHandler := obs.NewHandler(os.Stderr, *logFormat, level)
	logger := obs.NewLoggerHandler(obs.StampRequestID(obs.Fanout(stderrHandler, logBuf)), slog.LevelDebug)

	octx := &obs.Context{Metrics: obs.NewRegistry(), Logger: logger}
	if *verbose {
		octx.Verbosity = 1
		octx.LogWriter = os.Stderr
	}
	var exporter *obs.OTLPExporter
	if *otlpEndpoint != "" {
		exporter = obs.NewOTLPExporter(*otlpEndpoint, "hilp-serve")
		exporter.SetCounters(
			octx.Counter(obs.MOTLPSpansExported),
			octx.Counter(obs.MOTLPSpansFailed),
			octx.Counter(obs.MOTLPSpansDropped),
		)
		log.Printf("hilp-serve: exporting OTLP spans to %s", *otlpEndpoint)
	}
	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		MaxJobs:        *maxJobs,
		MaxBodyBytes:   *maxBody,
		JobRetries:     *jobRetries,
		Faults:         injector,
		Obs:            octx,
		LatencyBuckets: buckets,
		LogBuffer:      logBuf,
		EventBuffer:    *eventBuffer,
		OTLP:           exporter,
		JournalDir:     *journalDir,
	})
	if *journalDir != "" {
		rs, err := srv.Recover()
		if err != nil {
			log.Fatalf("hilp-serve: -journal-dir: %v", err)
		}
		log.Printf("hilp-serve: journal %s: replayed %d records (%d jobs: %d finished, %d resumed with %d points recovered, torn tail: %v)",
			*journalDir, rs.Records, rs.Jobs, rs.Terminal, rs.Resumed, rs.ResumedPoints, rs.Torn)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("hilp-serve: listening on %s", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("hilp-serve: %v", err)
	case got := <-sig:
		log.Printf("hilp-serve: %v, draining (budget %s)", got, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Release live SSE streams first (they would otherwise hold
	// http.Server.Shutdown open), then drain in-flight HTTP requests, then
	// cancel and collect jobs, then flush buffered spans.
	srv.Drain()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hilp-serve: http drain: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hilp-serve: job drain: %v\n", err)
	}
	if exporter != nil {
		if err := exporter.Flush(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "hilp-serve: otlp flush: %v\n", err)
		}
		exporter.Close()
	}
	log.Printf("hilp-serve: drained, bye")
}
