// Command hilp-serve runs the HILP solve service: an HTTP JSON API over the
// whole evaluation stack.
//
//	hilp-serve -addr :8080 -workers 4 -default-timeout 30s
//
// Endpoints:
//
//	POST /v1/evaluate   solve one (workload, SoC) pair or a custom model
//	POST /v1/sweep      start an async design-space sweep, returns a job
//	GET  /v1/jobs/{id}  poll a sweep job
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus text metrics
//
// Per-request timeouts map onto solver deadlines: a request that exceeds its
// budget still gets the best schedule found so far, with result.cancelled
// set and a valid optimality-gap certificate. Identical evaluate requests
// are served byte-identically from an LRU cache (see the X-HILP-Cache
// response header). SIGINT/SIGTERM drain in-flight solves before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hilp/internal/faults"
	"hilp/internal/obs"
	"hilp/internal/server"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		workers        = flag.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		queueDepth     = flag.Int("queue", 0, "waiting requests beyond running solves before 429 (0 = 2x workers)")
		cacheEntries   = flag.Int("cache", 128, "solve cache entries (negative disables)")
		defaultTimeout = flag.Duration("default-timeout", 30*time.Second, "solve budget when the request sets none")
		maxTimeout     = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested solve budgets")
		maxJobs        = flag.Int("max-jobs", 64, "retained async sweep jobs")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget")
		maxBody        = flag.Int64("max-body", 0, "request body limit in bytes before 413 (0 = 8 MiB)")
		jobRetries     = flag.Int("job-retries", 0, "retries for transiently failing sweep jobs (0 = 2, negative disables)")
		faultSpec      = flag.String("faults", "", "chaos-test fault injection spec, e.g. seed=1,rate=0.1,kinds=panic+timeout,sites=solve (empty disables)")
		verbose        = flag.Bool("v", false, "log requests and solver progress to stderr")
	)
	flag.Parse()

	var injector *faults.Injector
	if *faultSpec != "" {
		cfg, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			log.Fatalf("hilp-serve: -faults: %v", err)
		}
		injector = faults.New(cfg)
		log.Printf("hilp-serve: CHAOS MODE: injecting faults (%s)", *faultSpec)
	}

	octx := &obs.Context{Metrics: obs.NewRegistry()}
	if *verbose {
		octx.Verbosity = 1
		octx.LogWriter = os.Stderr
	}
	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		MaxJobs:        *maxJobs,
		MaxBodyBytes:   *maxBody,
		JobRetries:     *jobRetries,
		Faults:         injector,
		Obs:            octx,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("hilp-serve: listening on %s", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("hilp-serve: %v", err)
	case got := <-sig:
		log.Printf("hilp-serve: %v, draining (budget %s)", got, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain in-flight HTTP requests first, then cancel and collect jobs.
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hilp-serve: http drain: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hilp-serve: job drain: %v\n", err)
	}
	log.Printf("hilp-serve: drained, bye")
}
