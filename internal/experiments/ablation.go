package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"hilp/internal/core"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// The ablation studies quantify the design choices DESIGN.md calls out:
// the layered solver portfolio, the adaptive time-step resolution, DVFS
// alias clusters, and the parallel-CPU option (Eq. 8).

// AblationSolverRow compares search strategies on one instance.
type AblationSolverRow struct {
	SoC      string
	Strategy string
	Makespan int
	Gap      float64
	Elapsed  time.Duration
}

// ablationSpecs are the SoCs used by the solver and resolution ablations.
func ablationSpecs() []soc.Spec {
	return []soc.Spec{
		{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		{CPUCores: 4, GPUSMs: 16, GPUFrequenciesMHz: []float64{765},
			DSAs: []soc.DSA{{PEs: 16, Target: "LUD"}, {PEs: 16, Target: "HS"}}},
		{CPUCores: 4, GPUSMs: 64, GPUFrequenciesMHz: []float64{300, 765}, PowerBudgetWatts: 100},
	}
}

// AblationSolverPortfolio runs each search stage in isolation on the
// ablation SoCs (Default workload, fixed 2 s resolution) and reports
// makespan and time: heuristics only, simulated annealing, annealing plus
// double justification (the production pipeline), and tabu search.
func AblationSolverPortfolio(opts Options) ([]AblationSolverRow, error) {
	opts = opts.withDefaults()
	w := rodinia.DefaultWorkload()
	var rows []AblationSolverRow
	for _, spec := range ablationSpecs() {
		inst, err := core.BuildInstance(w, spec, 2, 1000)
		if err != nil {
			return nil, err
		}
		p := inst.Problem
		lb := scheduler.LowerBound(p)
		gap := func(makespan int) float64 {
			if makespan == 0 {
				return 0
			}
			return float64(makespan-lb) / float64(makespan)
		}
		run := func(name string, f func() (scheduler.Schedule, bool)) error {
			start := time.Now()
			s, ok := f()
			elapsed := time.Since(start)
			if !ok {
				return fmt.Errorf("experiments: %s found no schedule on %s", name, spec.Label())
			}
			if err := s.Validate(p); err != nil {
				return fmt.Errorf("experiments: %s produced an invalid schedule: %w", name, err)
			}
			rows = append(rows, AblationSolverRow{
				SoC: spec.Label(), Strategy: name, Makespan: s.Makespan, Gap: gap(s.Makespan), Elapsed: elapsed,
			})
			return nil
		}
		iters := int(opts.Effort * float64(2000+400*len(p.Tasks)))
		if err := run("heuristics", func() (scheduler.Schedule, bool) { return scheduler.HeuristicSchedule(p) }); err != nil {
			return nil, err
		}
		if err := run("anneal", func() (scheduler.Schedule, bool) {
			return scheduler.Anneal(context.Background(), p, scheduler.AnnealConfig{Seed: opts.Seed, Iterations: iters})
		}); err != nil {
			return nil, err
		}
		if err := run("anneal+justify", func() (scheduler.Schedule, bool) {
			s, ok := scheduler.Anneal(context.Background(), p, scheduler.AnnealConfig{Seed: opts.Seed, Iterations: iters})
			if !ok {
				return s, false
			}
			return scheduler.Justify(p, s), true
		}); err != nil {
			return nil, err
		}
		if err := run("tabu", func() (scheduler.Schedule, bool) {
			return scheduler.TabuSearch(context.Background(), p, scheduler.TabuConfig{Seed: opts.Seed, Iterations: iters / 2})
		}); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderAblationSolver formats the solver-portfolio ablation.
func RenderAblationSolver(rows []AblationSolverRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.SoC, r.Strategy, fmt.Sprint(r.Makespan), f2(r.Gap), r.Elapsed.Round(time.Millisecond).String()})
	}
	var b strings.Builder
	b.WriteString("Ablation - solver portfolio (Default, 2 s steps)\n")
	b.WriteString(renderTable([]string{"SoC", "strategy", "makespan (steps)", "gap", "time"}, out))
	return b.String()
}

// AblationResolutionRow compares time-step resolutions.
type AblationResolutionRow struct {
	StepSec  float64 // 0 marks the adaptive run
	Adaptive bool
	Speedup  float64
	Elapsed  time.Duration
}

// AblationResolution evaluates the paper's recommended SoC at fixed
// resolutions versus the adaptive §III-D loop, quantifying discretization
// error: coarse steps inflate phase times (ceiling) and depress speedup.
func AblationResolution(opts Options) ([]AblationResolutionRow, error) {
	opts = opts.withDefaults()
	w := rodinia.DefaultWorkload()
	spec := soc.Spec{
		CPUCores: 4, GPUSMs: 16,
		DSAs:              []soc.DSA{{PEs: 16, Target: "LUD"}, {PEs: 16, Target: "HS"}},
		GPUFrequenciesMHz: []float64{765},
	}
	cfg := opts.schedConfig()

	var rows []AblationResolutionRow
	for _, step := range []float64{10, 2, 0.4} {
		start := time.Now()
		profile := core.Profile{InitialStepSec: step, Horizon: 2000, RefineWhileBelow: 0, MaxRefinements: 0}
		res, err := core.Solve(context.Background(), w, spec, profile, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationResolutionRow{StepSec: step, Speedup: res.Speedup, Elapsed: time.Since(start)})
	}
	start := time.Now()
	res, err := core.Solve(context.Background(), w, spec, dseProfile(), cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationResolutionRow{StepSec: res.StepSec, Adaptive: true, Speedup: res.Speedup, Elapsed: time.Since(start)})
	return rows, nil
}

// RenderAblationResolution formats the resolution ablation.
func RenderAblationResolution(rows []AblationResolutionRow) string {
	var out [][]string
	for _, r := range rows {
		mode := "fixed"
		if r.Adaptive {
			mode = "adaptive"
		}
		out = append(out, []string{fmt.Sprintf("%.3g", r.StepSec), mode, f1(r.Speedup), r.Elapsed.Round(time.Millisecond).String()})
	}
	var b strings.Builder
	b.WriteString("Ablation - time-step resolution ((c4,g16,d2^16), Default)\n")
	b.WriteString(renderTable([]string{"step (s)", "mode", "speedup", "time"}, out))
	return b.String()
}

// AblationDVFSRow compares DVFS modeling depth under a power cap.
type AblationDVFSRow struct {
	Points  int
	Speedup float64
}

// AblationDVFS evaluates the power-capped 64-SM SoC of Fig. 5c with a
// single operating point versus the full Table III range: without DVFS
// aliases the big GPU cannot run under the cap at all, which is exactly the
// dark-silicon effect the paper models.
func AblationDVFS(opts Options) ([]AblationDVFSRow, error) {
	opts = opts.withDefaults()
	w := rodinia.OptimizedWorkload()
	var rows []AblationDVFSRow
	for _, freqs := range [][]float64{
		{765},
		{210, 765},
		nil, // full table
	} {
		spec := soc.Spec{
			CPUCores:          4,
			GPUSMs:            64,
			PowerBudgetWatts:  50,
			MemBandwidthGBs:   math.Inf(1),
			GPUFrequenciesMHz: freqs,
		}
		res, err := core.Solve(context.Background(), w, spec, dseProfile(), opts.schedConfig())
		if err != nil {
			return nil, err
		}
		n := len(freqs)
		if freqs == nil {
			n = len(rodinia.PowerTable())
		}
		rows = append(rows, AblationDVFSRow{Points: n, Speedup: res.Speedup})
	}
	return rows, nil
}

// RenderAblationDVFS formats the DVFS ablation.
func RenderAblationDVFS(rows []AblationDVFSRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{fmt.Sprint(r.Points), f1(r.Speedup)})
	}
	var b strings.Builder
	b.WriteString("Ablation - DVFS operating points (64-SM GPU, 50 W cap, Optimized)\n")
	b.WriteString(renderTable([]string{"operating points", "speedup"}, out))
	return b.String()
}

// AblationCPUWidthRow compares instance construction with and without the
// parallel-CPU compute option.
type AblationCPUWidthRow struct {
	ParallelCPU bool
	Speedup     float64
}

// AblationCPUWidth evaluates a GPU-less 4-CPU SoC on Rodinia with and
// without the Eq. 8 parallel-CPU option: without it a compute phase can use
// only one core and the SoC loses most of its multicore benefit.
func AblationCPUWidth(opts Options) ([]AblationCPUWidthRow, error) {
	opts = opts.withDefaults()
	w := rodinia.RodiniaWorkload()
	spec := soc.Spec{CPUCores: 4, GPUFrequenciesMHz: []float64{765}}
	var rows []AblationCPUWidthRow
	for _, disable := range []bool{false, true} {
		res, err := core.SolveAdaptive(context.Background(), func(stepSec float64, horizon int) (*core.Instance, error) {
			return core.BuildInstanceOpts(w, spec, stepSec, horizon, core.BuildOptions{DisableParallelCPU: disable})
		}, validationProfile(), opts.schedConfig())
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if res.MakespanSec > 0 {
			speedup = w.SequentialSingleCoreSec() / res.MakespanSec
		}
		rows = append(rows, AblationCPUWidthRow{ParallelCPU: !disable, Speedup: speedup})
	}
	return rows, nil
}

// RenderAblationCPUWidth formats the CPU-width ablation.
func RenderAblationCPUWidth(rows []AblationCPUWidthRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{fmt.Sprint(r.ParallelCPU), f1(r.Speedup)})
	}
	var b strings.Builder
	b.WriteString("Ablation - parallel-CPU compute option (4 CPUs, no GPU, Rodinia)\n")
	b.WriteString(renderTable([]string{"parallel CPU (Eq. 8)", "speedup"}, out))
	return b.String()
}
