package experiments

import (
	"context"
	"fmt"
	"strings"

	"hilp/internal/core"
	"hilp/internal/rodinia"
	"hilp/internal/soc"
	"hilp/internal/workgen"
)

// SyntheticRow is one (workload shape, SoC variant) evaluation of the
// sensitivity study.
type SyntheticRow struct {
	Workload string
	Variant  string
	Speedup  float64
	WLP      float64
}

// SyntheticSensitivity probes how the paper's accelerator insights depend on
// workload shape, using generated workloads instead of Rodinia: on a
// workload of uniform applications the shared GPU congests and per-app DSAs
// pay off; on a heavy-tailed workload the dominant application's chain
// limits makespan and extra DSAs buy little. This is a beyond-the-paper
// study enabled by the workgen substrate.
func SyntheticSensitivity(opts Options) ([]SyntheticRow, error) {
	opts = opts.withDefaults()
	heavy, err := workgen.HeavyTailed(opts.Seed+1, 8)
	if err != nil {
		return nil, err
	}
	uniform, err := workgen.Uniform(opts.Seed+1, 8)
	if err != nil {
		return nil, err
	}

	profile := core.Profile{InitialStepSec: 10, Horizon: 400, RefineWhileBelow: 20, MaxRefinements: 2}
	cfg := opts.schedConfig()

	var rows []SyntheticRow
	for _, w := range []rodinia.Workload{heavy, uniform} {
		order := w.ComputeCPUOrder()
		variants := []struct {
			name string
			spec soc.Spec
		}{
			{"base (c4,g16)", soc.Spec{CPUCores: 4, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}},
			{"+2 DSAs for top apps", soc.Spec{CPUCores: 4, GPUSMs: 16, GPUFrequenciesMHz: []float64{765},
				DSAs: []soc.DSA{
					{PEs: 16, Target: w.Apps[order[0]].Bench.Abbrev},
					{PEs: 16, Target: w.Apps[order[1]].Bench.Abbrev},
				}}},
			{"bigger GPU (c4,g64)", soc.Spec{CPUCores: 4, GPUSMs: 64, GPUFrequenciesMHz: []float64{765}}},
		}
		for _, v := range variants {
			res, err := core.Solve(context.Background(), w, v.spec, profile, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: synthetic %s on %s: %w", w.Name, v.name, err)
			}
			rows = append(rows, SyntheticRow{Workload: w.Name, Variant: v.name, Speedup: res.Speedup, WLP: res.WLP})
		}
	}
	return rows, nil
}

// RenderSynthetic formats the sensitivity study.
func RenderSynthetic(rows []SyntheticRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload, r.Variant, f1(r.Speedup), f2(r.WLP)})
	}
	var b strings.Builder
	b.WriteString("Sensitivity - workload shape vs accelerator strategy (synthetic workloads)\n")
	b.WriteString(renderTable([]string{"workload", "SoC variant", "speedup", "avg WLP"}, out))
	b.WriteString("\nDSAs pay off where the shared GPU congests (uniform); a dominant chain\n")
	b.WriteString("(heavy-tailed) caps the benefit of any extra accelerator - coverage is king.\n")
	return b.String()
}
