package experiments

import (
	"context"
	"fmt"
	"strings"

	"hilp/internal/dse"
	"hilp/internal/rodinia"
	"hilp/internal/soc"
)

// Fig7Result is the §VI design-space exploration: the same 372-SoC space
// evaluated by MA, Gables, and HILP (paper Fig. 7).
type Fig7Result struct {
	MA     []dse.Point
	Gables []dse.Point
	HILP   []dse.Point

	MAFront     []dse.Point
	GablesFront []dse.Point
	HILPFront   []dse.Point
}

// fig7Space enumerates the paper's 372-SoC design space, restricted to the
// experiment's DVFS subset and the given constraints.
func fig7Space(w rodinia.Workload, opts Options, powerW, advantage float64) []soc.Spec {
	cfg := soc.SpaceConfig{}
	if opts.Space != nil {
		cfg = *opts.Space
	}
	cfg.PowerW = powerW
	cfg.Advantage = advantage
	specs := soc.DesignSpace(w, cfg)
	for i := range specs {
		specs[i].GPUFrequenciesMHz = opts.DVFSPoints
	}
	return specs
}

// Fig7DesignSpace sweeps the full design space under the paper's 600 W
// budget with all three models.
func Fig7DesignSpace(opts Options) (*Fig7Result, error) {
	opts = opts.withDefaults()
	w := rodinia.DefaultWorkload()
	specs := fig7Space(w, opts, soc.DefaultPowerBudget, soc.DefaultDSAAdvantage)

	out := &Fig7Result{}
	out.MA = dse.Sweep(context.Background(), specs, opts.Workers, dse.MAEvaluator(w))
	out.Gables = dse.Sweep(context.Background(), specs, opts.Workers, dse.GablesEvaluator(w, dseProfile(), opts.schedConfig()))
	out.HILP = dse.Sweep(context.Background(), specs, opts.Workers, dse.HILPEvaluator(w, dseProfile(), opts.schedConfig()))
	for _, pts := range [][]dse.Point{out.MA, out.Gables, out.HILP} {
		for _, p := range pts {
			if p.Err != nil {
				return nil, fmt.Errorf("experiments: fig 7 point %s: %w", p.Label, p.Err)
			}
		}
	}
	out.MAFront = dse.ParetoFront(out.MA)
	out.GablesFront = dse.ParetoFront(out.Gables)
	out.HILPFront = dse.ParetoFront(out.HILP)
	return out, nil
}

// RenderFig7 formats the three Pareto fronts and the headline comparison.
func RenderFig7(r *Fig7Result) string {
	var b strings.Builder
	b.WriteString("Figure 7 - the 372-SoC design space for Default (600 W)\n\n")
	renderFront := func(name string, front []dse.Point) {
		var rows [][]string
		for _, p := range front {
			rows = append(rows, []string{p.Label, f1(p.AreaMM2), f1(p.Speedup), p.Mix.String()})
		}
		fmt.Fprintf(&b, "%s Pareto front (%d of 372 SoCs):\n", name, len(front))
		b.WriteString(renderTable([]string{"SoC", "area mm^2", "speedup", "mix"}, rows))
		b.WriteByte('\n')
	}
	renderFront("MultiAmdahl", r.MAFront)
	renderFront("Gables", r.GablesFront)
	renderFront("HILP", r.HILPFront)

	maBest, _ := dse.Best(r.MA)
	gabBest, _ := dse.Best(r.Gables)
	hilpBest, _ := dse.Best(r.HILP)
	fmt.Fprintf(&b, "Highest-performing SoCs: MA %s (%.1fx @ %.1f mm^2), Gables %s (%.1fx @ %.1f mm^2), HILP %s (%.1fx @ %.1f mm^2)\n",
		maBest.Label, maBest.Speedup, maBest.AreaMM2,
		gabBest.Label, gabBest.Speedup, gabBest.AreaMM2,
		hilpBest.Label, hilpBest.Speedup, hilpBest.AreaMM2)
	fmt.Fprintf(&b, "Paper: MA (c1,g64,d0^0) 18.2x @ 432.6; Gables (c4,g4,d3^4) 62.1x @ 170.4; HILP (c4,g16,d2^16) 45.6x @ 378.4\n")
	return b.String()
}

// Fig8aResult sweeps the design space with HILP under three power budgets
// (paper Fig. 8a: 20 W, 50 W, 600 W).
type Fig8aResult struct {
	Budgets []float64
	Points  map[float64][]dse.Point
	Fronts  map[float64][]dse.Point
}

// Fig8aPowerConstrained reproduces Fig. 8a.
func Fig8aPowerConstrained(opts Options) (*Fig8aResult, error) {
	opts = opts.withDefaults()
	w := rodinia.DefaultWorkload()
	out := &Fig8aResult{
		Budgets: []float64{20, 50, 600},
		Points:  map[float64][]dse.Point{},
		Fronts:  map[float64][]dse.Point{},
	}
	for _, budget := range out.Budgets {
		specs := fig7Space(w, opts, budget, soc.DefaultDSAAdvantage)
		pts := dse.Sweep(context.Background(), specs, opts.Workers, dse.HILPEvaluator(w, dseProfile(), opts.schedConfig()))
		for i := range pts {
			// Severely power-capped SoCs whose every unit exceeds the budget
			// are genuinely infeasible; keep them out of the front but do
			// not fail the sweep.
			if pts[i].Err != nil {
				pts[i].Speedup = 0
			}
		}
		out.Points[budget] = pts
		out.Fronts[budget] = dse.ParetoFront(pts)
	}
	return out, nil
}

// RenderFig8a formats the power-constrained fronts.
func RenderFig8a(r *Fig8aResult) string {
	var b strings.Builder
	b.WriteString("Figure 8a - Pareto fronts under power constraints (Default)\n")
	for _, budget := range r.Budgets {
		var rows [][]string
		for _, p := range r.Fronts[budget] {
			rows = append(rows, []string{p.Label, f1(p.AreaMM2), f1(p.Speedup), p.Mix.String()})
		}
		fmt.Fprintf(&b, "\n%.0f W front:\n", budget)
		b.WriteString(renderTable([]string{"SoC", "area mm^2", "speedup", "mix"}, rows))
		if best, ok := dse.Best(r.Points[budget]); ok {
			fmt.Fprintf(&b, "top performer: %s (%.1fx)\n", best.Label, best.Speedup)
		}
	}
	return b.String()
}

// Fig8bResult sweeps the design space with HILP at different DSA efficiency
// advantages (paper Fig. 8b: 2x, 4x, 8x) under the 600 W budget.
type Fig8bResult struct {
	Advantages []float64
	Points     map[float64][]dse.Point
	Fronts     map[float64][]dse.Point
}

// Fig8bDSAAdvantage reproduces Fig. 8b.
func Fig8bDSAAdvantage(opts Options) (*Fig8bResult, error) {
	opts = opts.withDefaults()
	w := rodinia.DefaultWorkload()
	out := &Fig8bResult{
		Advantages: []float64{2, 4, 8},
		Points:     map[float64][]dse.Point{},
		Fronts:     map[float64][]dse.Point{},
	}
	for _, adv := range out.Advantages {
		specs := fig7Space(w, opts, soc.DefaultPowerBudget, adv)
		pts := dse.Sweep(context.Background(), specs, opts.Workers, dse.HILPEvaluator(w, dseProfile(), opts.schedConfig()))
		for _, p := range pts {
			if p.Err != nil {
				return nil, fmt.Errorf("experiments: fig 8b point %s: %w", p.Label, p.Err)
			}
		}
		out.Points[adv] = pts
		out.Fronts[adv] = dse.ParetoFront(pts)
	}
	return out, nil
}

// RenderFig8b formats the DSA-advantage fronts.
func RenderFig8b(r *Fig8bResult) string {
	var b strings.Builder
	b.WriteString("Figure 8b - DSA efficiency advantage (Default, 600 W)\n")
	for _, adv := range r.Advantages {
		var rows [][]string
		for _, p := range r.Fronts[adv] {
			rows = append(rows, []string{p.Label, f1(p.AreaMM2), f1(p.Speedup), p.Mix.String()})
		}
		fmt.Fprintf(&b, "\n%gx advantage front:\n", adv)
		b.WriteString(renderTable([]string{"SoC", "area mm^2", "speedup", "mix"}, rows))
		if best, ok := dse.Best(r.Points[adv]); ok {
			fmt.Fprintf(&b, "top performer: %s (%.1fx)\n", best.Label, best.Speedup)
		}
	}
	return b.String()
}
