package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"hilp/internal/baselines"
	"hilp/internal/core"
	"hilp/internal/rodinia"
	"hilp/internal/soc"
)

// Fig5aRow is one point of the Amdahl's-law validation (Fig. 5a): speedup
// versus CPU count for a given GPU size on the Default workload,
// unconstrained.
type Fig5aRow struct {
	GPUSMs  int
	CPUs    int
	Speedup float64
	Gap     float64
}

// Fig5aSeries holds one GPU size's sweep plus its compute-limit asymptote
// (the paper's dotted line).
type Fig5aSeries struct {
	GPUSMs    int
	Rows      []Fig5aRow
	Asymptote float64
}

// fig5CPUCounts is the CPU-count sweep of Fig. 5a.
var fig5CPUCounts = []int{1, 2, 3, 4, 6, 8}

// fig5GPUs are the GPU sizes of Figs. 5a-c.
var fig5GPUs = []int{16, 32, 64}

// Fig5aAmdahl reproduces Fig. 5a: adding CPU cores lets the sequential
// setup/teardown phases overlap accelerator work, so speedup climbs and then
// saturates at the GPU's compute limit.
func Fig5aAmdahl(opts Options) ([]Fig5aSeries, error) {
	opts = opts.withDefaults()
	w := rodinia.DefaultWorkload()
	var series []Fig5aSeries
	for _, sms := range fig5GPUs {
		s := Fig5aSeries{GPUSMs: sms, Asymptote: gpuComputeLimit(w, sms)}
		for _, cpus := range fig5CPUCounts {
			spec := soc.Spec{
				CPUCores:          cpus,
				GPUSMs:            sms,
				PowerBudgetWatts:  math.Inf(1),
				MemBandwidthGBs:   math.Inf(1),
				GPUFrequenciesMHz: []float64{rodinia.BaseFrequencyMHz},
			}
			res, err := core.Solve(context.Background(), w, spec, dseProfile(), opts.schedConfig())
			if err != nil {
				return nil, err
			}
			s.Rows = append(s.Rows, Fig5aRow{GPUSMs: sms, CPUs: cpus, Speedup: res.Speedup, Gap: res.Gap})
		}
		series = append(series, s)
	}
	return series, nil
}

// gpuComputeLimit is the speedup ceiling of an SoC whose GPU must run every
// compute phase: with unlimited CPUs the makespan cannot drop below
// max(total GPU load, longest single application chain).
func gpuComputeLimit(w rodinia.Workload, sms int) float64 {
	gpuLoad := 0.0
	chainMax := 0.0
	for _, app := range w.Apps {
		t := soc.GPUTimeSec(app.Bench, sms, rodinia.BaseFrequencyMHz)
		gpuLoad += t
		chain := app.SetupSec() + t + app.TeardownSec()
		if chain > chainMax {
			chainMax = chain
		}
	}
	floor := math.Max(gpuLoad, chainMax)
	if floor <= 0 {
		return 0
	}
	return w.SequentialSingleCoreSec() / floor
}

// RenderFig5a formats the Amdahl validation.
func RenderFig5a(series []Fig5aSeries) string {
	var rows [][]string
	for _, s := range series {
		for _, r := range s.Rows {
			rows = append(rows, []string{fmt.Sprint(r.GPUSMs), fmt.Sprint(r.CPUs), f1(r.Speedup), f2(r.Gap)})
		}
		rows = append(rows, []string{fmt.Sprint(s.GPUSMs), "limit", f1(s.Asymptote), ""})
	}
	var b strings.Builder
	b.WriteString("Figure 5a - Amdahl's law: speedup vs CPU count (Default, unconstrained)\n")
	b.WriteString(renderTable([]string{"GPU SMs", "CPUs", "speedup", "gap"}, rows))
	return b.String()
}

// ConstraintRow is one point of the memory-wall (Fig. 5b) or dark-silicon
// (Fig. 5c) sweeps.
type ConstraintRow struct {
	GPUSMs  int
	Limit   float64 // GB/s for 5b, W for 5c
	Speedup float64
	Gap     float64
}

// Fig5bMemoryWall reproduces Fig. 5b: with 4 CPUs and the Optimized
// workload, sweeping the memory-bandwidth budget from 50 to 400 GB/s shows
// each GPU size transitioning from bandwidth-bound to compute-bound.
func Fig5bMemoryWall(opts Options) ([]ConstraintRow, error) {
	opts = opts.withDefaults()
	w := rodinia.OptimizedWorkload()
	var rows []ConstraintRow
	for _, sms := range fig5GPUs {
		for _, bw := range []float64{50, 100, 150, 200, 250, 300, 350, 400} {
			spec := soc.Spec{
				CPUCores:          4,
				GPUSMs:            sms,
				PowerBudgetWatts:  math.Inf(1),
				MemBandwidthGBs:   bw,
				GPUFrequenciesMHz: []float64{rodinia.BaseFrequencyMHz},
			}
			res, err := core.Solve(context.Background(), w, spec, dseProfile(), opts.schedConfig())
			if err != nil {
				return nil, err
			}
			rows = append(rows, ConstraintRow{GPUSMs: sms, Limit: bw, Speedup: res.Speedup, Gap: res.Gap})
		}
	}
	return rows, nil
}

// Fig5cDarkSilicon reproduces Fig. 5c: replacing the bandwidth constraint
// with a power budget from 50 to 400 W. Small budgets clamp the bigger GPUs'
// DVFS operating points (dark silicon); the full Table III frequency range
// is modeled so the 32-SM SoC can out-run the clamped 64-SM SoC at 50 W.
func Fig5cDarkSilicon(opts Options) ([]ConstraintRow, error) {
	opts = opts.withDefaults()
	w := rodinia.OptimizedWorkload()
	var rows []ConstraintRow
	for _, sms := range fig5GPUs {
		for _, budget := range []float64{50, 100, 150, 200, 300, 400} {
			spec := soc.Spec{
				CPUCores:         4,
				GPUSMs:           sms,
				PowerBudgetWatts: budget,
				MemBandwidthGBs:  math.Inf(1),
				// Full DVFS table: the clamping story needs every point.
			}
			res, err := core.Solve(context.Background(), w, spec, dseProfile(), opts.schedConfig())
			if err != nil {
				return nil, err
			}
			rows = append(rows, ConstraintRow{GPUSMs: sms, Limit: budget, Speedup: res.Speedup, Gap: res.Gap})
		}
	}
	return rows, nil
}

// RenderConstraintRows formats Fig. 5b/5c sweeps.
func RenderConstraintRows(title, unit string, rows []ConstraintRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{fmt.Sprint(r.GPUSMs), fmt.Sprintf("%.0f", r.Limit), f1(r.Speedup), f2(r.Gap)})
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString(renderTable([]string{"GPU SMs", unit, "speedup", "gap"}, out))
	return b.String()
}

// Fig6Row is one point of the MA/HILP/Gables comparison (Figs. 6a and 6b).
type Fig6Row struct {
	CPUs    int
	Model   string // "MA", "HILP", "Gables"
	WLP     float64
	Speedup float64
}

// Fig6WLP reproduces Fig. 6 for the given workload (Rodinia for 6a,
// Optimized for 6b): average WLP and speedup for MA, HILP, and Gables on an
// SoC with a 64-SM GPU as CPU count grows from 1 to 8.
func Fig6WLP(w rodinia.Workload, opts Options) ([]Fig6Row, error) {
	opts = opts.withDefaults()
	var rows []Fig6Row
	for _, cpus := range []int{1, 2, 4, 8} {
		spec := soc.Spec{
			CPUCores:          cpus,
			GPUSMs:            64,
			PowerBudgetWatts:  math.Inf(1),
			MemBandwidthGBs:   math.Inf(1),
			GPUFrequenciesMHz: []float64{rodinia.BaseFrequencyMHz},
		}
		ma, err := baselines.MultiAmdahl(w, spec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{CPUs: cpus, Model: "MA", WLP: ma.WLP, Speedup: ma.Speedup})

		hilp, err := core.Solve(context.Background(), w, spec, validationProfile(), opts.schedConfig())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{CPUs: cpus, Model: "HILP", WLP: hilp.WLP, Speedup: hilp.Speedup})

		gab, err := baselines.Gables(context.Background(), w, spec, validationProfile(), opts.schedConfig())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{CPUs: cpus, Model: "Gables", WLP: gab.WLP, Speedup: gab.Speedup})
	}
	return rows, nil
}

// RenderFig6 formats a Fig. 6 panel.
func RenderFig6(title string, rows []Fig6Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{fmt.Sprint(r.CPUs), r.Model, f2(r.WLP), f1(r.Speedup)})
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString(renderTable([]string{"CPUs", "model", "avg WLP", "speedup"}, out))
	return b.String()
}
