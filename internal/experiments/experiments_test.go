package experiments

import (
	"math"
	"strings"
	"testing"

	"hilp/internal/dse"
	"hilp/internal/rodinia"
	"hilp/internal/soc"
)

func TestFig2and3Example(t *testing.T) {
	r, err := Fig2and3Example(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.NaiveMakespan != 17 {
		t.Errorf("naive makespan = %d, want 17", r.NaiveMakespan)
	}
	if r.HILPMakespan != 7 {
		t.Errorf("HILP makespan = %d, want 7", r.HILPMakespan)
	}
	if math.Abs(r.Speedup-17.0/7.0) > 1e-9 {
		t.Errorf("speedup = %g, want 2.43", r.Speedup)
	}
	if math.Abs(r.HILPWLP-12.0/7.0) > 1e-9 {
		t.Errorf("HILP WLP = %g, want 1.71", r.HILPWLP)
	}
	if math.Abs(r.GablesWLP-2.4) > 1e-9 {
		t.Errorf("Gables WLP = %g, want 2.4", r.GablesWLP)
	}
	if r.PowerCapSpan != 9 {
		t.Errorf("power-capped makespan = %d, want 9", r.PowerCapSpan)
	}
	if r.PowerCapPeak > 3+1e-9 {
		t.Errorf("power-capped peak = %g, want <= 3", r.PowerCapPeak)
	}
	if r.UncappedPeak <= 3 {
		t.Errorf("unconstrained peak = %g, want > 3 (the cap must bind)", r.UncappedPeak)
	}
	if r.PowerCapCluster != "dsa0" {
		t.Errorf("capped compute ran on %s, paper says the DSA", r.PowerCapCluster)
	}
	if !strings.Contains(r.Render(), "Figure 2") {
		t.Error("Render missing header")
	}
}

func TestTable2Fits(t *testing.T) {
	rows, err := Table2Fits()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10", len(rows))
	}
	for _, r := range rows {
		// The refit must recover the published exponent wherever the
		// published fit was trustworthy.
		if r.PublishedTime.R2 >= 0.9 && math.Abs(r.RefitTime.B-r.PublishedTime.B) > 0.15 {
			t.Errorf("%s: refit time exponent %.3f, published %.3f", r.Benchmark, r.RefitTime.B, r.PublishedTime.B)
		}
		if r.PublishedBW.R2 >= 0.9 && math.Abs(r.RefitBW.B-r.PublishedBW.B) > 0.15 {
			t.Errorf("%s: refit BW exponent %.3f, published %.3f", r.Benchmark, r.RefitBW.B, r.PublishedBW.B)
		}
	}
	out := RenderTable2(rows)
	for _, want := range []string{"LUD", "HS", "Table II"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderTable2 missing %q", want)
		}
	}
}

func TestTable3PowerScaling(t *testing.T) {
	rows, err := Table3PowerScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("%d rows, want 11", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Refit.B-1) > 0.05 {
			t.Errorf("%g MHz: refit exponent %.3f, want ~1 (linear in SMs)", r.FrequencyMHz, r.Refit.B)
		}
	}
	if !strings.Contains(RenderTable3(rows), "765") {
		t.Error("RenderTable3 missing the base frequency")
	}
}

func TestFig5aAmdahl(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second validation sweep")
	}
	series, err := Fig5aAmdahl(Options{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series, want 3", len(series))
	}
	for _, s := range series {
		first := s.Rows[0].Speedup
		last := s.Rows[len(s.Rows)-1].Speedup
		if last < 1.5*first {
			t.Errorf("%d SMs: speedup barely grows with CPUs (%g -> %g)", s.GPUSMs, first, last)
		}
		// Saturation below the compute-limit asymptote (small tolerance for
		// discretization).
		for _, r := range s.Rows {
			if r.Speedup > s.Asymptote*1.08 {
				t.Errorf("%d SMs @ %d CPUs: speedup %g exceeds asymptote %g", s.GPUSMs, r.CPUs, r.Speedup, s.Asymptote)
			}
		}
	}
	// Bigger GPUs have higher compute limits.
	if !(series[0].Asymptote < series[1].Asymptote && series[1].Asymptote < series[2].Asymptote) {
		t.Error("asymptotes not ordered by GPU size")
	}
}

func TestFig5bMemoryWall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second validation sweep")
	}
	rows, err := Fig5bMemoryWall(Options{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	bySMs := map[int][]ConstraintRow{}
	for _, r := range rows {
		bySMs[r.GPUSMs] = append(bySMs[r.GPUSMs], r)
	}
	// Per GPU size, speedup must be (weakly) non-decreasing in bandwidth.
	for sms, rs := range bySMs {
		for i := 1; i < len(rs); i++ {
			if rs[i].Speedup < rs[i-1].Speedup*0.9 {
				t.Errorf("%d SMs: speedup drops from %g to %g as bandwidth grows", sms, rs[i-1].Speedup, rs[i].Speedup)
			}
		}
	}
	// At generous bandwidth the bigger GPU must win (compute-bound regime).
	last := func(sms int) float64 { rs := bySMs[sms]; return rs[len(rs)-1].Speedup }
	if !(last(16) < last(32) && last(32) < last(64)) {
		t.Errorf("saturated speedups not ordered: 16:%g 32:%g 64:%g", last(16), last(32), last(64))
	}
	// At 50 GB/s the big GPUs are bandwidth-starved relative to their
	// compute-bound performance (the memory wall).
	first := func(sms int) float64 { return bySMs[sms][0].Speedup }
	if first(64) > 0.5*last(64) {
		t.Errorf("64-SM SoC not bandwidth-bound at 50 GB/s: %g vs saturated %g", first(64), last(64))
	}
}

func TestFig5cDarkSilicon(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second validation sweep")
	}
	rows, err := Fig5cDarkSilicon(Options{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	bySMs := map[int]map[float64]float64{}
	for _, r := range rows {
		if bySMs[r.GPUSMs] == nil {
			bySMs[r.GPUSMs] = map[float64]float64{}
		}
		bySMs[r.GPUSMs][r.Limit] = r.Speedup
	}
	// The 16-SM SoC reaches its potential at every budget (paper: 50 W is
	// sufficient).
	if bySMs[16][50] < bySMs[16][400]*0.9 {
		t.Errorf("16-SM SoC power-bound at 50 W: %g vs %g", bySMs[16][50], bySMs[16][400])
	}
	// The paper's dark-silicon inversion: at 50 W the 32-SM SoC beats the
	// 64-SM SoC whose DVFS range is clamped.
	if bySMs[32][50] <= bySMs[64][50] {
		t.Errorf("no dark-silicon inversion at 50 W: 32-SM %g <= 64-SM %g", bySMs[32][50], bySMs[64][50])
	}
	// With ample power the 64-SM SoC wins.
	if bySMs[64][400] <= bySMs[32][400] {
		t.Errorf("64-SM SoC not fastest at 400 W: %g vs %g", bySMs[64][400], bySMs[32][400])
	}
}

func TestFig6WLP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second validation sweep")
	}
	rows, err := Fig6WLP(rodinia.RodiniaWorkload(), Options{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string][]Fig6Row{}
	for _, r := range rows {
		byModel[r.Model] = append(byModel[r.Model], r)
	}
	// MA: WLP identically 1, speedup flat in CPU count (paper: 4.9).
	for _, r := range byModel["MA"] {
		if r.WLP != 1 {
			t.Errorf("MA WLP = %g at %d CPUs, want 1", r.WLP, r.CPUs)
		}
		if math.Abs(r.Speedup-byModel["MA"][0].Speedup) > 1e-9 {
			t.Error("MA speedup not flat in CPU count")
		}
	}
	if s := byModel["MA"][0].Speedup; s < 4 || s > 6 {
		t.Errorf("MA Rodinia speedup = %g, paper reports 4.9", s)
	}
	// At every CPU count: WLP(MA) <= WLP(HILP) <= WLP(Gables) + slack.
	for i := range byModel["HILP"] {
		h, g := byModel["HILP"][i], byModel["Gables"][i]
		if h.WLP < 1-1e-9 {
			t.Errorf("HILP WLP %g < 1", h.WLP)
		}
		if g.WLP+0.25 < h.WLP {
			t.Errorf("%d CPUs: Gables WLP %g below HILP %g", h.CPUs, g.WLP, h.WLP)
		}
		if g.Speedup*1.1 < h.Speedup {
			t.Errorf("%d CPUs: Gables speedup %g below HILP %g", h.CPUs, g.Speedup, h.Speedup)
		}
	}
	// WLP grows with CPU count for HILP (more cores unlock overlap).
	hilp := byModel["HILP"]
	if hilp[len(hilp)-1].WLP <= hilp[0].WLP {
		t.Error("HILP WLP does not grow with CPU count")
	}
}

// tinySpace is a reduced design space for sweep-machinery tests.
func tinySpace() *soc.SpaceConfig {
	return &soc.SpaceConfig{
		CPUCores: []int{1, 4},
		GPUSMs:   []int{0, 16},
		MaxDSAs:  2,
		DSAPEs:   []int{16},
	}
}

func TestFig7DesignSpaceReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r, err := Fig7DesignSpace(Options{Seed: 1, Effort: 0.15, Space: tinySpace(), DVFSPoints: []float64{765}})
	if err != nil {
		t.Fatal(err)
	}
	// 2 CPU x 2 GPU x (1 + 2x1) = 12 SoCs per model.
	if len(r.HILP) != 12 || len(r.MA) != 12 || len(r.Gables) != 12 {
		t.Fatalf("sweep sizes %d/%d/%d, want 12", len(r.MA), len(r.Gables), len(r.HILP))
	}
	maBest, _ := dse.Best(r.MA)
	gabBest, _ := dse.Best(r.Gables)
	hilpBest, _ := dse.Best(r.HILP)
	if !(maBest.Speedup <= hilpBest.Speedup*1.05 && hilpBest.Speedup <= gabBest.Speedup*1.05) {
		t.Errorf("best speedups not ordered: MA %g, HILP %g, Gables %g", maBest.Speedup, hilpBest.Speedup, gabBest.Speedup)
	}
	if len(r.HILPFront) == 0 {
		t.Error("empty HILP Pareto front")
	}
	if !strings.Contains(RenderFig7(r), "Pareto front") {
		t.Error("RenderFig7 missing front sections")
	}
}

func TestFig8aReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r, err := Fig8aPowerConstrained(Options{Seed: 1, Effort: 0.15, Space: tinySpace(), DVFSPoints: []float64{210, 765}})
	if err != nil {
		t.Fatal(err)
	}
	// Tighter budgets can only hurt the best achievable speedup.
	best := func(budget float64) float64 {
		b, ok := dse.Best(r.Points[budget])
		if !ok {
			return 0
		}
		return b.Speedup
	}
	if best(20) > best(600)*1.05 {
		t.Errorf("20 W best %g exceeds 600 W best %g", best(20), best(600))
	}
	if !strings.Contains(RenderFig8a(r), "20 W") {
		t.Error("RenderFig8a missing budget sections")
	}
}

func TestFig8bReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r, err := Fig8bDSAAdvantage(Options{Seed: 1, Effort: 0.15, Space: tinySpace(), DVFSPoints: []float64{765}})
	if err != nil {
		t.Fatal(err)
	}
	// A larger DSA advantage can only improve the best achievable speedup.
	best := func(adv float64) float64 {
		b, _ := dse.Best(r.Points[adv])
		return b.Speedup
	}
	if best(8) < best(2)*0.95 {
		t.Errorf("8x advantage best %g below 2x best %g", best(8), best(2))
	}
	if !strings.Contains(RenderFig8b(r), "advantage front") {
		t.Error("RenderFig8b missing sections")
	}
}

func TestFig10Streaming(t *testing.T) {
	r, err := Fig10Streaming(Options{Seed: 1, Effort: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 3 {
		t.Fatalf("%d variants, want 3", len(r.Variants))
	}
	base, cpu, gpu := r.Variants[0], r.Variants[1], r.Variants[2]
	if base.MeetsTarget {
		t.Error("baseline SoC unexpectedly meets the objective (paper: it falls short)")
	}
	if !cpu.MeetsTarget || !gpu.MeetsTarget {
		t.Errorf("what-ifs must meet the objective: cpu=%v gpu=%v", cpu.MeetsTarget, gpu.MeetsTarget)
	}
	if cpu.MakespanSec >= base.MakespanSec || gpu.MakespanSec >= base.MakespanSec {
		t.Error("upgrades did not improve the makespan")
	}
	if !strings.Contains(r.Render(), "Figure 10") {
		t.Error("Render missing header")
	}
}

func TestAblationSolverPortfolio(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second ablation")
	}
	rows, err := AblationSolverPortfolio(Options{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	byStrategy := map[string]map[string]AblationSolverRow{}
	for _, r := range rows {
		if byStrategy[r.SoC] == nil {
			byStrategy[r.SoC] = map[string]AblationSolverRow{}
		}
		byStrategy[r.SoC][r.Strategy] = r
	}
	for socLabel, m := range byStrategy {
		// Annealing must not be worse than the heuristic seeds it starts
		// from, and justification must not be worse than annealing.
		if m["anneal"].Makespan > m["heuristics"].Makespan {
			t.Errorf("%s: anneal %d worse than heuristics %d", socLabel, m["anneal"].Makespan, m["heuristics"].Makespan)
		}
		if m["anneal+justify"].Makespan > m["anneal"].Makespan {
			t.Errorf("%s: justification worsened %d -> %d", socLabel, m["anneal"].Makespan, m["anneal+justify"].Makespan)
		}
	}
	if !strings.Contains(RenderAblationSolver(rows), "anneal+justify") {
		t.Error("render missing strategies")
	}
}

func TestAblationResolution(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second ablation")
	}
	rows, err := AblationResolution(Options{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	// Finer fixed resolution must not reduce measured speedup (ceiling
	// inflation shrinks), and the adaptive run must land near the finest.
	if rows[0].Speedup > rows[2].Speedup {
		t.Errorf("coarse resolution (%g) beat fine (%g)", rows[0].Speedup, rows[2].Speedup)
	}
	adaptive := rows[3]
	if !adaptive.Adaptive {
		t.Fatal("last row should be the adaptive run")
	}
	if adaptive.Speedup < rows[2].Speedup*0.9 {
		t.Errorf("adaptive speedup %g well below fine fixed %g", adaptive.Speedup, rows[2].Speedup)
	}
}

func TestAblationDVFS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second ablation")
	}
	rows, err := AblationDVFS(Options{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Modeling more operating points can only help under the power cap; the
	// single-point model must be drastically worse (the GPU exceeds 50 W at
	// base clock).
	if rows[0].Speedup*5 > rows[len(rows)-1].Speedup {
		t.Errorf("DVFS modeling had too little effect: 1pt %g vs full %g", rows[0].Speedup, rows[len(rows)-1].Speedup)
	}
}

func TestAblationCPUWidth(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second ablation")
	}
	rows, err := AblationCPUWidth(Options{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if rows[0].Speedup < rows[1].Speedup*0.95 {
		t.Errorf("parallel-CPU option hurt: with %g, without %g", rows[0].Speedup, rows[1].Speedup)
	}
}

func TestSyntheticSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	rows, err := SyntheticSensitivity(Options{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	get := func(workloadPrefix, variant string) float64 {
		for _, r := range rows {
			if strings.HasPrefix(r.Workload, workloadPrefix) && r.Variant == variant {
				return r.Speedup
			}
		}
		t.Fatalf("missing row %s/%s", workloadPrefix, variant)
		return 0
	}
	// On the uniform (GPU-congested) workload the bigger GPU helps a lot
	// and DSAs help measurably; on the heavy-tailed workload neither buys
	// nearly as much (the dominant chain limits).
	uniBase := get("uniform", "base (c4,g16)")
	uniGPU := get("uniform", "bigger GPU (c4,g64)")
	if uniGPU < 1.5*uniBase {
		t.Errorf("bigger GPU on uniform: %g vs base %g, want a large gain", uniGPU, uniBase)
	}
	heavyBase := get("heavy-tailed", "base (c4,g16)")
	heavyGPU := get("heavy-tailed", "bigger GPU (c4,g64)")
	// The congested uniform workload must benefit (relatively) more from
	// extra accelerator capacity than the chain-limited heavy-tailed one.
	if heavyGPU/heavyBase > uniGPU/uniBase {
		t.Errorf("GPU gain on heavy-tailed (%g) exceeds uniform (%g)", heavyGPU/heavyBase, uniGPU/uniBase)
	}
	if !strings.Contains(RenderSynthetic(rows), "coverage is king") {
		t.Error("render missing the takeaway")
	}
}
