package experiments

import (
	"context"
	"fmt"
	"strings"

	"hilp/internal/dag"
	"hilp/internal/scheduler"
)

// Fig10Variant is one SoC what-if of the §VII streaming-dataflow case study.
type Fig10Variant struct {
	Name        string
	MakespanSec float64
	WLP         float64
	Gantt       string
	MeetsTarget bool
}

// Fig10Result compares the baseline (c1,g8,d3^1) SoC with the paper's two
// what-ifs: a 2x faster CPU and a GPU with twice the SMs.
type Fig10Result struct {
	TargetSec float64 // performance objective for two overlapped samples
	Variants  []Fig10Variant
}

// Fig10Streaming reproduces Fig. 10: HILP schedules for the SDA workload
// (two samples in flight) on three candidate SoCs. The design objective is
// to overlap sample processing; the baseline SoC falls short while either
// upgrade meets the target.
func Fig10Streaming(opts Options) (*Fig10Result, error) {
	opts = opts.withDefaults()
	const stepSec = 0.25
	const instances = 2

	solve := func(name string, cfg dag.SDAConfig) (Fig10Variant, error) {
		m, err := dag.SDA(cfg)
		if err != nil {
			return Fig10Variant{}, err
		}
		inst, err := m.Build(stepSec, 400)
		if err != nil {
			return Fig10Variant{}, err
		}
		res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: opts.Seed, Effort: opts.Effort, Restarts: 1, Obs: opts.Obs})
		if err != nil {
			return Fig10Variant{}, err
		}
		return Fig10Variant{
			Name:        name,
			MakespanSec: float64(res.Schedule.Makespan) * stepSec,
			WLP:         res.Schedule.WLP(inst.Problem),
			Gantt:       inst.Gantt(res.Schedule, 64),
		}, nil
	}

	base, err := solve("baseline (c1,g8,d3^1)", dag.SDAConfig{Instances: instances})
	if err != nil {
		return nil, err
	}
	fastCPU, err := solve("2x faster CPU", dag.SDAConfig{Instances: instances, CPUSpeedup: 2})
	if err != nil {
		return nil, err
	}
	bigGPU, err := solve("2x GPU SMs", dag.SDAConfig{Instances: instances, GPUSMs: 16})
	if err != nil {
		return nil, err
	}

	// Target: the paper's objective is pipelined overlap of consecutive
	// samples, which we quantify as finishing two samples within 1.6x of a
	// single sample's proven lower bound on the baseline SoC.
	m, err := dag.SDA(dag.SDAConfig{Instances: 1})
	if err != nil {
		return nil, err
	}
	inst1, err := m.Build(stepSec, 200)
	if err != nil {
		return nil, err
	}
	lb := scheduler.LowerBound(inst1.Problem)
	target := 1.6 * float64(lb) * stepSec

	out := &Fig10Result{TargetSec: target}
	for _, v := range []Fig10Variant{base, fastCPU, bigGPU} {
		v.MeetsTarget = v.MakespanSec <= target
		out.Variants = append(out.Variants, v)
	}
	return out, nil
}

// Render formats the Fig. 10 comparison.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 - streaming dataflow (SDA), 2 samples in flight; objective: makespan <= %.1f s\n\n", r.TargetSec)
	var rows [][]string
	for _, v := range r.Variants {
		rows = append(rows, []string{v.Name, f2(v.MakespanSec), f2(v.WLP), fmt.Sprint(v.MeetsTarget)})
	}
	b.WriteString(renderTable([]string{"SoC", "makespan (s)", "avg WLP", "meets objective"}, rows))
	for _, v := range r.Variants {
		fmt.Fprintf(&b, "\n%s:\n%s", v.Name, v.Gantt)
	}
	return b.String()
}
