// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables II-III, Figures 2-3, 5-8, 10). Each experiment is a
// function returning typed rows plus a text renderer, so the same code backs
// the root-level benchmarks, the hilp-exp command, and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"hilp/internal/core"
	"hilp/internal/obs"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// Options tunes experiment execution cost. The zero value selects defaults
// sized for a laptop-scale run.
type Options struct {
	// Seed drives all randomized search deterministically.
	Seed int64
	// Effort scales the scheduler's annealing budget (1 = default).
	Effort float64
	// Workers bounds sweep parallelism. 0 selects 1.
	Workers int
	// DVFSPoints restricts the GPU operating points used in design-space
	// sweeps. Empty selects a 5-point subset of Table III; validation
	// experiments that study DVFS always use the full table.
	DVFSPoints []float64
	// Space overrides the design-space enumeration of the Fig. 7/8 sweeps
	// (nil selects the paper's full 372-SoC space). Tests use it to run
	// reduced sweeps.
	Space *soc.SpaceConfig
	// Obs carries optional tracing/metrics sinks into every solve the
	// experiment performs; nil disables instrumentation.
	Obs *obs.Context
}

func (o Options) withDefaults() Options {
	if o.Effort == 0 {
		o.Effort = 0.3
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if len(o.DVFSPoints) == 0 {
		o.DVFSPoints = []float64{210, 300, 420, 600, 765}
	}
	return o
}

func (o Options) schedConfig() scheduler.Config {
	return scheduler.Config{Seed: o.Seed, Effort: o.Effort, Restarts: 1, Obs: o.Obs}
}

// validationProfile is the paper's validation setting with the refinement
// budget trimmed for laptop-scale runs.
func validationProfile() core.Profile {
	return core.Profile{InitialStepSec: 2, Horizon: 1000, RefineWhileBelow: 200, MaxRefinements: 3}
}

// dseProfile is the paper's design-space-exploration setting.
func dseProfile() core.Profile {
	return core.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 40, MaxRefinements: 3}
}

// renderTable formats rows as an aligned text table.
func renderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
