package experiments

import (
	"context"
	"fmt"
	"strings"

	"hilp/internal/core"
	"hilp/internal/scheduler"
)

// ExampleResult reproduces the paper's running example (Figures 2 and 3):
// the two-application workload on an SoC with one CPU, one GPU, and one DSA.
type ExampleResult struct {
	NaiveMakespan   int     // all phases on the CPU: 17 s
	HILPMakespan    int     // optimal: 7 s
	Speedup         float64 // 17/7 ~= 2.4x
	HILPWLP         float64 // 1.7
	MAWLP           float64 // 1 by construction
	GablesMakespan  int     // dependency-free optimum: 5 s
	GablesWLP       float64 // 2.4
	PowerCapSpan    int     // Figure 3: optimal under a 3 W cap: 9 s
	PowerCapPeak    float64 // peak power of the capped schedule (<= 3 W)
	UncappedPeak    float64 // peak power of the unconstrained optimum (> 3 W)
	Gantt           string  // rendered unconstrained schedule
	PowerCapGantt   string  // rendered power-capped schedule
	ProvenOptimal   bool
	PowerCapCluster string // where the capped schedule ran both computes
}

// exampleModel is Figure 2's workload: applications m and n with
// setup/compute/teardown phases. Time unit: seconds (1 step = 1 s).
func exampleModel(powerCapW float64) core.CustomModel {
	cpuOpt := func(sec float64) core.CustomOption {
		return core.CustomOption{Cluster: "cpu0", Sec: sec, PowerW: 1}
	}
	gpuOpt := func(sec float64) core.CustomOption {
		return core.CustomOption{Cluster: "gpu0", Sec: sec, PowerW: 3}
	}
	dsaOpt := func(sec float64) core.CustomOption {
		return core.CustomOption{Cluster: "dsa0", Sec: sec, PowerW: 2}
	}
	return core.CustomModel{
		Name:         "fig2",
		Clusters:     []core.CustomCluster{{Name: "cpu0"}, {Name: "gpu0"}, {Name: "dsa0"}},
		PowerBudgetW: powerCapW,
		Tasks: []core.CustomTask{
			{Name: "m0", App: 0, Phase: 0, Options: []core.CustomOption{cpuOpt(1)}},
			{Name: "m1", App: 0, Phase: 1, Deps: []core.CustomDep{{Task: "m0"}},
				Options: []core.CustomOption{cpuOpt(8), gpuOpt(6), dsaOpt(5)}},
			{Name: "m2", App: 0, Phase: 2, Deps: []core.CustomDep{{Task: "m1"}},
				Options: []core.CustomOption{cpuOpt(1)}},
			{Name: "n0", App: 1, Phase: 0, Options: []core.CustomOption{cpuOpt(1)}},
			{Name: "n1", App: 1, Phase: 1, Deps: []core.CustomDep{{Task: "n0"}},
				Options: []core.CustomOption{cpuOpt(5), gpuOpt(3), dsaOpt(2)}},
			{Name: "n2", App: 1, Phase: 2, Deps: []core.CustomDep{{Task: "n1"}},
				Options: []core.CustomOption{cpuOpt(1)}},
		},
	}
}

// Fig2and3Example runs the paper's running example end to end.
func Fig2and3Example(opts Options) (*ExampleResult, error) {
	opts = opts.withDefaults()
	cfg := opts.schedConfig()

	// Unconstrained optimum (Figure 2).
	inst, err := exampleModel(0).Build(1, 40)
	if err != nil {
		return nil, err
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, cfg)
	if err != nil {
		return nil, err
	}

	out := &ExampleResult{
		HILPMakespan:  res.Schedule.Makespan,
		HILPWLP:       res.Schedule.WLP(inst.Problem),
		MAWLP:         1,
		ProvenOptimal: res.Proven,
		Gantt:         inst.Gantt(res.Schedule, 40),
	}

	// Naive schedule: everything on the CPU, sequentially.
	naive := 0
	for _, t := range inst.Problem.Tasks {
		naive += t.Options[0].Duration // option 0 is always the CPU
	}
	out.NaiveMakespan = naive
	if out.HILPMakespan > 0 {
		out.Speedup = float64(naive) / float64(out.HILPMakespan)
	}

	// Peak power of the unconstrained optimum: rebuild with a generous cap
	// so the power resource exists, then re-solve and measure.
	instP, err := exampleModel(100).Build(1, 40)
	if err != nil {
		return nil, err
	}
	resP, err := scheduler.Solve(context.Background(), instP.Problem, cfg)
	if err != nil {
		return nil, err
	}
	out.UncappedPeak = resP.Schedule.PeakResource(instP.Problem, instP.PowerRes)

	// Gables view: dependencies discarded.
	instG, err := exampleModel(0).Build(1, 40)
	if err != nil {
		return nil, err
	}
	for i := range instG.Problem.Tasks {
		instG.Problem.Tasks[i].Deps = nil
	}
	resG, err := scheduler.Solve(context.Background(), instG.Problem, cfg)
	if err != nil {
		return nil, err
	}
	out.GablesMakespan = resG.Schedule.Makespan
	out.GablesWLP = resG.Schedule.WLP(instG.Problem)

	// Figure 3: the 3 W power cap.
	instC, err := exampleModel(3).Build(1, 40)
	if err != nil {
		return nil, err
	}
	resC, err := scheduler.Solve(context.Background(), instC.Problem, cfg)
	if err != nil {
		return nil, err
	}
	out.PowerCapSpan = resC.Schedule.Makespan
	out.PowerCapPeak = resC.Schedule.PeakResource(instC.Problem, instC.PowerRes)
	out.PowerCapGantt = instC.Gantt(resC.Schedule, 40)
	// Record where the compute phases ran (the paper: both on the DSA).
	for i, t := range instC.Problem.Tasks {
		if t.Name == "m1" {
			out.PowerCapCluster = instC.Clusters[t.Options[resC.Schedule.Option[i]].Cluster].Name
		}
	}
	return out, nil
}

// Render formats the example like the paper's Figure 2/3 narrative.
func (r *ExampleResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2 - two-application example (1 s steps)\n")
	rows := [][]string{
		{"naive (all CPU)", fmt.Sprint(r.NaiveMakespan), "1.00", "1.0"},
		{"MultiAmdahl", fmt.Sprint(r.NaiveMakespan), "1.00", f1(r.MAWLP)},
		{"HILP (optimal)", fmt.Sprint(r.HILPMakespan), f2(r.Speedup), f1(r.HILPWLP)},
		{"Gables (no deps)", fmt.Sprint(r.GablesMakespan), f2(float64(r.NaiveMakespan) / float64(r.GablesMakespan)), f1(r.GablesWLP)},
	}
	b.WriteString(renderTable([]string{"model", "makespan (s)", "speedup", "avg WLP"}, rows))
	b.WriteString("\nOptimal schedule:\n")
	b.WriteString(r.Gantt)
	fmt.Fprintf(&b, "\nFigure 3 - 3 W power cap: makespan %d s (peak %.1f W; unconstrained peak %.1f W)\n",
		r.PowerCapSpan, r.PowerCapPeak, r.UncappedPeak)
	fmt.Fprintf(&b, "Both compute phases allocated to %s.\n", r.PowerCapCluster)
	b.WriteString(r.PowerCapGantt)
	return b.String()
}
