// Package leakcheck verifies that a test leaks no goroutines. It follows the
// snapshot-and-settle approach of go.uber.org/goleak without the dependency:
// record the goroutine count when the test starts, then at cleanup poll until
// the count settles back to the baseline or a grace deadline passes, dumping
// every goroutine stack on failure. The chaos tests use it to prove that
// injected panics, timeouts, and job retries never strand sweep workers or
// server job goroutines.
package leakcheck

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// grace bounds how long cleanup waits for goroutines started by the test to
// exit. Legitimate teardown (HTTP connection close, sweep worker drain) is
// asynchronous, so the check polls instead of failing on the first look.
const grace = 5 * time.Second

// VerifyNoLeaks snapshots the goroutine count and registers a cleanup that
// fails the test if, after teardown (server shutdown, context cancellation),
// more goroutines are running than at the start. Call it first in the test so
// its cleanup runs last, after the test's own t.Cleanup teardowns.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Idle keep-alive connections from the default client hold a read
		// goroutine each; they are pooled, not leaked.
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(grace)
		n := runtime.NumGoroutine()
		for n > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n <= base {
			return
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leakcheck: %d goroutines after teardown, %d at test start; stacks:\n%s", n, base, buf)
	})
}
