// Package soc models the paper's SoC architecture template (Fig. 4): CPU
// cores, an optional GPU with a configurable SM count and DVFS operating
// points, and per-application DSAs with configurable PE counts. It provides
// the analytical performance, bandwidth, power, and area models that populate
// HILP's T/B/P matrices, plus the 372-configuration design space of §VI.
package soc

import (
	"math"

	"hilp/internal/rodinia"
)

// Area model constants, derived in the paper from 7 nm parts: the 64-core
// AMD EPYC 7763 (1,064 mm^2 incl. I/O die) and the Nvidia GA100 (826 mm^2,
// 128 SMs). DSA PEs occupy the same area as a GPU SM; their efficiency
// advantage shows up as performance, not as area per PE (this is the only
// reading consistent with every SoC area the paper reports).
const (
	CPUCoreAreaMM2 = 16.6
	GPUSMAreaMM2   = 6.5
	DSAPEAreaMM2   = 6.5
)

// Power model constants.
const (
	// CPUCoreWatts is estimated from the EPYC 7543's 225 W TDP over 32 cores.
	CPUCoreWatts = 7.0
	// GPUStaticWatts is the paper's ~30 W idle draw of the A100, scaled
	// linearly with the SM count of the modeled GPU.
	GPUStaticWatts = 30.0
	// staticRefSMs anchors the static-power scaling to the largest profiled
	// MIG slice.
	staticRefSMs = rodinia.FullGPUSMs
	// dynRefSMs divides the measured full-GPU dynamic power into a per-SM
	// share (the paper's per-SM column uses the GA100's 128 SMs).
	dynRefSMs = 128.0
	// MemWattsPerGBs converts bandwidth to memory power: 7 pJ/bit HBM3
	// (paper §IV) = 7e-12 J/bit * 8e9 bit/GB = 0.056 W per GB/s.
	MemWattsPerGBs = 7e-12 * 8e9
)

// CPUParallelFraction is the Amdahl parallel fraction used to scale compute
// phases across CPU cores. The paper profiled 1-32 cores directly; absent
// that raw data we use a high parallel fraction, consistent with the large
// CPU-to-GPU speedups of Table II (see DESIGN.md, substitutions).
const CPUParallelFraction = 0.99

// GPUTimeSec returns the compute-phase execution time of b on a GPU-like
// device with the given SM count at the given core clock. The SM dependence
// follows the paper's normalized power-law fit anchored at the 14-SM
// reference slice; the frequency dependence uses the per-benchmark sensitivity
// exponent (compute-bound benchmarks scale with clock, bandwidth-bound ones
// barely move - the paper's HW-vs-streaming observation in Fig. 5c).
func GPUTimeSec(b rodinia.Benchmark, sms int, freqMHz float64) float64 {
	if sms <= 0 {
		return math.Inf(1)
	}
	base := b.ComputeGPUSec * b.TimeFit.Eval(float64(sms)) / b.TimeFit.Eval(rodinia.ReferenceSMs)
	gamma := FrequencySensitivity(b)
	return base * math.Pow(rodinia.BaseFrequencyMHz/freqMHz, gamma)
}

// GPUBandwidthGBs returns the compute-phase bandwidth consumption of b on a
// GPU-like device with the given SM count and clock. The Table II bandwidth
// column is anchored at the full 98-SM GPU - unlike the time column, which
// the paper normalizes to 14 SMs. That mixed anchoring is what reproduces
// the paper's Fig. 5b thresholds (16-SM SoC compute-bound at 100 GB/s, 32-SM
// at 300 GB/s, 64-SM not even at 400 GB/s). The frequency dependence
// conserves total traffic: bandwidth scales inversely with the
// execution-time stretch.
func GPUBandwidthGBs(b rodinia.Benchmark, sms int, freqMHz float64) float64 {
	if sms <= 0 {
		return 0
	}
	base := b.GPUBandwidth * b.BWFit.Eval(float64(sms)) / b.BWFit.Eval(rodinia.FullGPUSMs)
	gamma := FrequencySensitivity(b)
	return base * math.Pow(freqMHz/rodinia.BaseFrequencyMHz, gamma)
}

// FrequencySensitivity returns the exponent gamma with which b's GPU
// execution time scales with clock frequency: T ~ f^-gamma. Bandwidth-heavy
// benchmarks are memory-bound and insensitive (gamma -> 0); compute-bound
// benchmarks scale nearly linearly (gamma -> 1).
func FrequencySensitivity(b rodinia.Benchmark) float64 {
	return 1.0 / (1.0 + b.GPUBandwidth/100.0)
}

// GPUPowerWatts returns the power draw of a GPU with the given SM count at
// the given clock: static power scaled linearly with SMs plus the per-SM
// dynamic share measured with gpu-burn (Table III). The frequency must be
// one of the Table III operating points.
func GPUPowerWatts(sms int, freqMHz float64) float64 {
	if sms <= 0 {
		return 0
	}
	var all float64
	found := false
	for _, pt := range rodinia.PowerTable() {
		if pt.FrequencyMHz == freqMHz {
			all = pt.AllSMsWatts
			found = true
			break
		}
	}
	if !found {
		// Interpolate linearly between the nearest table points so callers
		// can probe untabulated clocks.
		pts := rodinia.PowerTable()
		switch {
		case freqMHz <= pts[0].FrequencyMHz:
			all = pts[0].AllSMsWatts
		case freqMHz >= pts[len(pts)-1].FrequencyMHz:
			all = pts[len(pts)-1].AllSMsWatts
		default:
			for i := 1; i < len(pts); i++ {
				if freqMHz <= pts[i].FrequencyMHz {
					lo, hi := pts[i-1], pts[i]
					t := (freqMHz - lo.FrequencyMHz) / (hi.FrequencyMHz - lo.FrequencyMHz)
					all = lo.AllSMsWatts + t*(hi.AllSMsWatts-lo.AllSMsWatts)
					break
				}
			}
		}
	}
	static := GPUStaticWatts * float64(sms) / float64(staticRefSMs)
	dynamic := (all - GPUStaticWatts) / dynRefSMs * float64(sms)
	return static + dynamic
}

// DSATimeSec returns the compute time of b on a DSA with pe processing
// elements and efficiency advantage adv: the DSA matches a GPU with adv*pe
// SMs at the base clock (paper §IV: same performance and bandwidth curves).
func DSATimeSec(b rodinia.Benchmark, pe int, adv float64) float64 {
	return GPUTimeSec(b, effectiveSMs(pe, adv), rodinia.BaseFrequencyMHz)
}

// DSABandwidthGBs returns the bandwidth consumption of b on a DSA.
func DSABandwidthGBs(b rodinia.Benchmark, pe int, adv float64) float64 {
	return GPUBandwidthGBs(b, effectiveSMs(pe, adv), rodinia.BaseFrequencyMHz)
}

// DSAPowerWatts returns the power draw of a DSA with pe PEs and advantage
// adv: 1/adv of the power of the GPU it performs like.
func DSAPowerWatts(pe int, adv float64) float64 {
	return GPUPowerWatts(effectiveSMs(pe, adv), rodinia.BaseFrequencyMHz) / adv
}

func effectiveSMs(pe int, adv float64) int {
	e := int(math.Round(float64(pe) * adv))
	if e < 1 && pe > 0 {
		e = 1
	}
	return e
}

// CPUTimeSec returns the compute-phase execution time of b on n CPU cores
// under Amdahl scaling with the package's parallel fraction.
func CPUTimeSec(b rodinia.Benchmark, cores int) float64 {
	if cores <= 0 {
		return math.Inf(1)
	}
	n := float64(cores)
	return b.ComputeCPUSec * ((1 - CPUParallelFraction) + CPUParallelFraction/n)
}

// CPUBandwidthGBs estimates the bandwidth consumption of b's compute phase
// on n CPU cores by conserving total traffic: the bytes observed on the full
// GPU spread over the CPU execution time.
func CPUBandwidthGBs(b rodinia.Benchmark, cores int) float64 {
	t := CPUTimeSec(b, cores)
	if t <= 0 || math.IsInf(t, 1) {
		return 0
	}
	// GB moved by the compute phase, measured consistently at the full GPU.
	traffic := b.GPUBandwidth * GPUTimeSec(b, rodinia.FullGPUSMs, rodinia.BaseFrequencyMHz)
	return traffic / t
}

// MemoryPowerWatts converts a bandwidth demand into HBM3 memory power.
func MemoryPowerWatts(bwGBs float64) float64 { return MemWattsPerGBs * bwGBs }
