package soc

import (
	"fmt"
	"strings"

	"hilp/internal/rodinia"
)

// DSA is a domain-specific accelerator dedicated to the compute phase of one
// application in the workload.
type DSA struct {
	PEs    int    // processing elements
	Target string // abbreviation of the benchmark the DSA accelerates
}

// Spec describes one SoC configuration in the paper's template (Fig. 4).
type Spec struct {
	CPUCores int
	GPUSMs   int   // 0 means no GPU
	DSAs     []DSA // at most one per application

	// DSAAdvantage is the efficiency advantage of DSAs over the GPU
	// (paper default 4x). 0 selects the default.
	DSAAdvantage float64
	// GPUFrequenciesMHz lists the DVFS operating points the GPU may use.
	// Empty selects all Table III frequencies.
	GPUFrequenciesMHz []float64
	// MemBandwidthGBs is b_max. 0 selects the paper default of 800 GB/s.
	MemBandwidthGBs float64
	// PowerBudgetWatts is p_max. 0 selects the paper default of 600 W.
	PowerBudgetWatts float64
}

// Defaults from the paper's experimental setup (§IV).
const (
	DefaultDSAAdvantage = 4.0
	DefaultMemBandwidth = 800.0
	DefaultPowerBudget  = 600.0
)

// Normalize fills zero-valued fields with the paper defaults and returns the
// completed spec.
func (s Spec) Normalize() Spec {
	if s.DSAAdvantage == 0 {
		s.DSAAdvantage = DefaultDSAAdvantage
	}
	if len(s.GPUFrequenciesMHz) == 0 {
		for _, pt := range rodinia.PowerTable() {
			s.GPUFrequenciesMHz = append(s.GPUFrequenciesMHz, pt.FrequencyMHz)
		}
	}
	if s.MemBandwidthGBs == 0 {
		s.MemBandwidthGBs = DefaultMemBandwidth
	}
	if s.PowerBudgetWatts == 0 {
		s.PowerBudgetWatts = DefaultPowerBudget
	}
	return s
}

// Validate reports structural problems with the spec.
func (s Spec) Validate() error {
	if s.CPUCores < 1 {
		return fmt.Errorf("soc: %d CPU cores, want >= 1 (the template's minimum configuration)", s.CPUCores)
	}
	if s.GPUSMs < 0 {
		return fmt.Errorf("soc: negative GPU SM count %d", s.GPUSMs)
	}
	seen := map[string]bool{}
	for _, d := range s.DSAs {
		if d.PEs < 1 {
			return fmt.Errorf("soc: DSA for %s has %d PEs, want >= 1", d.Target, d.PEs)
		}
		if d.Target == "" {
			return fmt.Errorf("soc: DSA with %d PEs has no target application", d.PEs)
		}
		if seen[d.Target] {
			return fmt.Errorf("soc: multiple DSAs target %s", d.Target)
		}
		seen[d.Target] = true
	}
	if s.DSAAdvantage < 0 {
		return fmt.Errorf("soc: negative DSA advantage %g", s.DSAAdvantage)
	}
	return nil
}

// AreaMM2 returns the chip area of the spec under the paper's area model.
func (s Spec) AreaMM2() float64 {
	area := float64(s.CPUCores) * CPUCoreAreaMM2
	area += float64(s.GPUSMs) * GPUSMAreaMM2
	for _, d := range s.DSAs {
		area += float64(d.PEs) * DSAPEAreaMM2
	}
	return area
}

// Label renders the paper's (c_i, g_j, d_k^l) naming, e.g. "(c4,g16,d2^16)".
// Heterogeneous PE counts fall back to listing each DSA.
func (s Spec) Label() string {
	d := len(s.DSAs)
	pe := 0
	uniform := true
	for i, dsa := range s.DSAs {
		if i == 0 {
			pe = dsa.PEs
		} else if dsa.PEs != pe {
			uniform = false
		}
	}
	if uniform {
		return fmt.Sprintf("(c%d,g%d,d%d^%d)", s.CPUCores, s.GPUSMs, d, pe)
	}
	parts := make([]string, len(s.DSAs))
	for i, dsa := range s.DSAs {
		parts[i] = fmt.Sprintf("%s:%d", dsa.Target, dsa.PEs)
	}
	return fmt.Sprintf("(c%d,g%d,[%s])", s.CPUCores, s.GPUSMs, strings.Join(parts, ","))
}

// DSAFor returns the DSA targeting the given benchmark, if any.
func (s Spec) DSAFor(abbrev string) (DSA, bool) {
	for _, d := range s.DSAs {
		if d.Target == abbrev {
			return d, true
		}
	}
	return DSA{}, false
}
