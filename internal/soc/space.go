package soc

import "hilp/internal/rodinia"

// SpaceConfig parameterizes design-space enumeration. Zero values select the
// paper's §VI sweep: 1/2/4 CPU cores, an optional GPU with 4/16/64 SMs, and
// 0-10 DSAs with 1/4/16 PEs each, allocated to applications in descending
// CPU-compute-time order. That yields 3 x 4 x (1 + 10x3) = 372 SoCs.
type SpaceConfig struct {
	CPUCores []int // default {1, 2, 4}
	GPUSMs   []int // default {0, 4, 16, 64}; 0 means no GPU
	// MaxDSAs bounds the number of DSAs: 0 selects the default (one per
	// application), a negative value disables DSAs entirely.
	MaxDSAs   int
	DSAPEs    []int // default {1, 4, 16}
	Advantage float64
	PowerW    float64
	MemBWGBs  float64
}

func (c SpaceConfig) withDefaults(w rodinia.Workload) SpaceConfig {
	if len(c.CPUCores) == 0 {
		c.CPUCores = []int{1, 2, 4}
	}
	if len(c.GPUSMs) == 0 {
		c.GPUSMs = []int{0, 4, 16, 64}
	}
	if c.MaxDSAs == 0 {
		c.MaxDSAs = len(w.Apps)
	}
	if len(c.DSAPEs) == 0 {
		c.DSAPEs = []int{1, 4, 16}
	}
	return c
}

// DesignSpace enumerates the SoC configurations of the paper's §VI sweep for
// the given workload. DSAs are allocated to applications in descending order
// of CPU compute time (so the 1-DSA SoCs accelerate LUD, 2-DSA SoCs add HS,
// ...), and every DSA in a configuration has the same PE count.
func DesignSpace(w rodinia.Workload, cfg SpaceConfig) []Spec {
	cfg = cfg.withDefaults(w)
	order := w.ComputeCPUOrder()
	if cfg.MaxDSAs > len(order) {
		cfg.MaxDSAs = len(order)
	}
	if cfg.MaxDSAs < 0 {
		cfg.MaxDSAs = 0
	}

	var specs []Spec
	for _, cores := range cfg.CPUCores {
		for _, sms := range cfg.GPUSMs {
			base := Spec{
				CPUCores:         cores,
				GPUSMs:           sms,
				DSAAdvantage:     cfg.Advantage,
				PowerBudgetWatts: cfg.PowerW,
				MemBandwidthGBs:  cfg.MemBWGBs,
			}
			// No DSAs.
			specs = append(specs, base)
			// 1..MaxDSAs DSAs, uniform PE count.
			for numDSAs := 1; numDSAs <= cfg.MaxDSAs; numDSAs++ {
				for _, pe := range cfg.DSAPEs {
					s := base
					s.DSAs = make([]DSA, numDSAs)
					for k := 0; k < numDSAs; k++ {
						s.DSAs[k] = DSA{PEs: pe, Target: w.Apps[order[k]].Bench.Abbrev}
					}
					specs = append(specs, s)
				}
			}
		}
	}
	return specs
}
