package soc

import (
	"math"
	"testing"

	"hilp/internal/rodinia"
)

func TestAreaMatchesPaperHeadlineSoCs(t *testing.T) {
	// Every area the paper reports in §VI must be reproduced exactly.
	cases := []struct {
		spec Spec
		want float64
	}{
		{Spec{CPUCores: 1, GPUSMs: 64}, 432.6},
		{Spec{CPUCores: 4, GPUSMs: 4, DSAs: []DSA{{4, "LUD"}, {4, "HS"}, {4, "NN"}}}, 170.4},
		{Spec{CPUCores: 4, GPUSMs: 16, DSAs: []DSA{{16, "LUD"}, {16, "HS"}}}, 378.4},
		{Spec{CPUCores: 4, GPUSMs: 64}, 482.4},
	}
	for _, c := range cases {
		if got := c.spec.AreaMM2(); math.Abs(got-c.want) > 0.05 {
			t.Errorf("%s: area = %g, want %g", c.spec.Label(), got, c.want)
		}
	}
}

func TestLabelFormat(t *testing.T) {
	s := Spec{CPUCores: 4, GPUSMs: 16, DSAs: []DSA{{16, "LUD"}, {16, "HS"}}}
	if got := s.Label(); got != "(c4,g16,d2^16)" {
		t.Errorf("Label = %q, want (c4,g16,d2^16)", got)
	}
	none := Spec{CPUCores: 1}
	if got := none.Label(); got != "(c1,g0,d0^0)" {
		t.Errorf("Label = %q, want (c1,g0,d0^0)", got)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{CPUCores: 0}).Validate(); err == nil {
		t.Error("accepted zero CPU cores")
	}
	if err := (Spec{CPUCores: 1, DSAs: []DSA{{0, "HS"}}}).Validate(); err == nil {
		t.Error("accepted zero-PE DSA")
	}
	if err := (Spec{CPUCores: 1, DSAs: []DSA{{1, "HS"}, {2, "HS"}}}).Validate(); err == nil {
		t.Error("accepted duplicate DSA targets")
	}
	if err := (Spec{CPUCores: 2, GPUSMs: 16, DSAs: []DSA{{4, "HS"}}}).Validate(); err != nil {
		t.Errorf("rejected valid spec: %v", err)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	s := Spec{CPUCores: 1}.Normalize()
	if s.DSAAdvantage != 4 || s.MemBandwidthGBs != 800 || s.PowerBudgetWatts != 600 {
		t.Errorf("defaults not applied: %+v", s)
	}
	if len(s.GPUFrequenciesMHz) != 11 {
		t.Errorf("got %d DVFS points, want 11", len(s.GPUFrequenciesMHz))
	}
}

func TestGPUTimeMonotonicInSMs(t *testing.T) {
	for _, b := range rodinia.Benchmarks() {
		if b.TimeFit.R2 < 0.5 {
			continue // MC is flat by design
		}
		prev := math.Inf(1)
		for _, sms := range []int{4, 14, 28, 56, 98} {
			cur := GPUTimeSec(b, sms, rodinia.BaseFrequencyMHz)
			if cur > prev+1e-9 {
				t.Errorf("%s: time increased from %g to %g when adding SMs", b.Abbrev, prev, cur)
			}
			prev = cur
		}
	}
}

func TestGPUTimeAnchoredAtReferenceSlice(t *testing.T) {
	for _, b := range rodinia.Benchmarks() {
		got := GPUTimeSec(b, rodinia.ReferenceSMs, rodinia.BaseFrequencyMHz)
		if math.Abs(got-b.ComputeGPUSec) > 1e-9*math.Max(1, b.ComputeGPUSec) {
			t.Errorf("%s: GPUTimeSec(14, base) = %g, want table value %g", b.Abbrev, got, b.ComputeGPUSec)
		}
	}
}

func TestHeadlineSpeedupFloorsMatchPaper(t *testing.T) {
	// Sanity anchors derived from the paper's §VI numbers: on the Default
	// workload, the (c4,g16,d2^16) SoC's critical path is the HS chain
	// (setup + compute on its 16-PE DSA + teardown), about 35 s, which at
	// the ~1632 s single-core baseline gives the reported ~45.6x speedup.
	w := rodinia.DefaultWorkload()
	baseline := w.SequentialSingleCoreSec()
	if baseline < 1600 || baseline > 1670 {
		t.Fatalf("Default baseline = %g s, want ~1632", baseline)
	}
	hs, _ := rodinia.ByAbbrev("HS")
	chain := hs.SetupSec/5 + DSATimeSec(hs, 16, 4) + hs.TeardownSec/5
	speedupCeil := baseline / chain
	if speedupCeil < 42 || speedupCeil > 50 {
		t.Errorf("HS-chain speedup ceiling = %g, want ~46 (paper reports 45.6)", speedupCeil)
	}
}

func TestFrequencySensitivity(t *testing.T) {
	hw, _ := rodinia.ByAbbrev("HW")
	sc, _ := rodinia.ByAbbrev("SC")
	if FrequencySensitivity(hw) <= FrequencySensitivity(sc) {
		t.Error("HW (compute-bound) must be more frequency sensitive than SC (bandwidth-bound)")
	}
	// Lowering the clock must slow HW down significantly.
	slow := GPUTimeSec(hw, 32, 210)
	fast := GPUTimeSec(hw, 32, 765)
	if slow/fast < 2 {
		t.Errorf("HW at 210 MHz only %gx slower than 765 MHz, want > 2x", slow/fast)
	}
	// SC should be much less affected.
	slowSC := GPUTimeSec(sc, 32, 210)
	fastSC := GPUTimeSec(sc, 32, 765)
	if slowSC/fastSC > slow/fast {
		t.Error("SC must be less frequency sensitive than HW")
	}
}

func TestGPUPowerWatts(t *testing.T) {
	// Paper §VI: the 16-SM GPU spans roughly 10.4-24.6 W across operating
	// points. Our model reproduces that range closely.
	lo := GPUPowerWatts(16, 210)
	hi := GPUPowerWatts(16, 765)
	if lo < 9 || lo > 12 {
		t.Errorf("16-SM power at 210 MHz = %g, want ~10.4", lo)
	}
	if hi < 22 || hi > 27 {
		t.Errorf("16-SM power at 765 MHz = %g, want ~24.6", hi)
	}
	// Monotonic in both SMs and frequency.
	if GPUPowerWatts(32, 765) <= GPUPowerWatts(16, 765) {
		t.Error("power must grow with SM count")
	}
	if GPUPowerWatts(16, 765) <= GPUPowerWatts(16, 210) {
		t.Error("power must grow with frequency")
	}
	if GPUPowerWatts(0, 765) != 0 {
		t.Error("no GPU, no power")
	}
}

func TestGPUPowerInterpolation(t *testing.T) {
	mid := GPUPowerWatts(16, 500)
	lo := GPUPowerWatts(16, 480)
	hi := GPUPowerWatts(16, 540)
	if mid < lo || mid > hi {
		t.Errorf("interpolated power %g outside [%g, %g]", mid, lo, hi)
	}
	if GPUPowerWatts(16, 100) != GPUPowerWatts(16, 210) {
		t.Error("below-range frequency must clamp to the lowest point")
	}
}

func TestDSAEquivalence(t *testing.T) {
	lud, _ := rodinia.ByAbbrev("LUD")
	// A 16-PE DSA at 4x advantage performs like a 64-SM GPU...
	dsaT := DSATimeSec(lud, 16, 4)
	gpuT := GPUTimeSec(lud, 64, rodinia.BaseFrequencyMHz)
	if math.Abs(dsaT-gpuT) > 1e-9 {
		t.Errorf("DSA time %g != 64-SM GPU time %g", dsaT, gpuT)
	}
	// ...at a quarter of the power.
	dsaP := DSAPowerWatts(16, 4)
	gpuP := GPUPowerWatts(64, rodinia.BaseFrequencyMHz)
	if math.Abs(dsaP-gpuP/4) > 1e-9 {
		t.Errorf("DSA power %g != GPU power/4 = %g", dsaP, gpuP/4)
	}
	// Bandwidth matches the equivalent GPU.
	if math.Abs(DSABandwidthGBs(lud, 16, 4)-GPUBandwidthGBs(lud, 64, rodinia.BaseFrequencyMHz)) > 1e-9 {
		t.Error("DSA bandwidth must match the equivalent GPU")
	}
}

func TestCPUAmdahlScaling(t *testing.T) {
	hs, _ := rodinia.ByAbbrev("HS")
	t1 := CPUTimeSec(hs, 1)
	if math.Abs(t1-hs.ComputeCPUSec) > 1e-9 {
		t.Errorf("1-core time = %g, want table value %g", t1, hs.ComputeCPUSec)
	}
	t4 := CPUTimeSec(hs, 4)
	t32 := CPUTimeSec(hs, 32)
	if !(t32 < t4 && t4 < t1) {
		t.Error("CPU time must decrease with cores")
	}
	// Amdahl ceiling: speedup bounded by 1/(1-pi) = 100.
	if t1/t32 > 1/(1-CPUParallelFraction) {
		t.Errorf("32-core speedup %g exceeds the Amdahl ceiling", t1/t32)
	}
}

func TestCPUBandwidthConservesTraffic(t *testing.T) {
	sc, _ := rodinia.ByAbbrev("SC")
	bw := CPUBandwidthGBs(sc, 4)
	traffic := bw * CPUTimeSec(sc, 4)
	wantTraffic := sc.GPUBandwidth * GPUTimeSec(sc, rodinia.FullGPUSMs, rodinia.BaseFrequencyMHz)
	if math.Abs(traffic-wantTraffic) > 1e-6*wantTraffic {
		t.Errorf("CPU traffic %g != GPU traffic %g", traffic, wantTraffic)
	}
}

func TestMemoryPower(t *testing.T) {
	// 800 GB/s at 7 pJ/bit is ~44.8 W.
	if got := MemoryPowerWatts(800); math.Abs(got-44.8) > 0.01 {
		t.Errorf("MemoryPowerWatts(800) = %g, want 44.8", got)
	}
}

func TestDesignSpaceCount(t *testing.T) {
	w := rodinia.DefaultWorkload()
	specs := DesignSpace(w, SpaceConfig{})
	// Paper §VI: 3 CPU counts x 4 GPU options x (1 + 10x3 DSA variants) = 372.
	if len(specs) != 372 {
		t.Fatalf("design space has %d SoCs, want 372", len(specs))
	}
	labels := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Label(), err)
		}
		if labels[s.Label()] {
			t.Errorf("duplicate configuration %s", s.Label())
		}
		labels[s.Label()] = true
	}
	// The paper's headline configurations must be present.
	for _, want := range []string{"(c1,g64,d0^0)", "(c4,g4,d3^4)", "(c4,g16,d2^16)", "(c1,g0,d0^0)", "(c2,g0,d10^1)"} {
		if !labels[want] {
			t.Errorf("design space missing %s", want)
		}
	}
}

func TestDesignSpaceDSAOrder(t *testing.T) {
	w := rodinia.DefaultWorkload()
	specs := DesignSpace(w, SpaceConfig{})
	for _, s := range specs {
		if len(s.DSAs) >= 2 {
			if s.DSAs[0].Target != "LUD" || s.DSAs[1].Target != "HS" {
				t.Fatalf("%s: DSA order %v, want LUD then HS", s.Label(), s.DSAs)
			}
		}
	}
}

func TestDSAForLookup(t *testing.T) {
	s := Spec{CPUCores: 4, GPUSMs: 16, DSAs: []DSA{{16, "LUD"}, {16, "HS"}}}
	if d, ok := s.DSAFor("HS"); !ok || d.PEs != 16 {
		t.Errorf("DSAFor(HS) = %+v, %v", d, ok)
	}
	if _, ok := s.DSAFor("BFS"); ok {
		t.Error("DSAFor(BFS) should be absent")
	}
}

func TestDesignSpaceNoDSAs(t *testing.T) {
	w := rodinia.DefaultWorkload()
	specs := DesignSpace(w, SpaceConfig{MaxDSAs: -1})
	// 3 CPU counts x 4 GPU options, no DSA variants.
	if len(specs) != 12 {
		t.Fatalf("%d SoCs, want 12 with DSAs disabled", len(specs))
	}
	for _, s := range specs {
		if len(s.DSAs) != 0 {
			t.Fatalf("%s has DSAs despite MaxDSAs < 0", s.Label())
		}
	}
}
