package faults

import (
	"fmt"
	"math/rand"
)

// CrashPlan describes one deterministic mid-sweep process kill for the
// kill-and-recover chaos harness (crash_test.go): the run is cut after a
// seeded number of checkpointed points — the journal abandoned without a
// final flush, the in-process equivalent of SIGKILL — optionally followed by
// tearing bytes off the journal's final segment (journal.TearTail) to
// simulate a crash mid-write. Plans are pure functions of (seed, points), so
// every chaos run replays exactly.
type CrashPlan struct {
	// Seed derived the plan.
	Seed int64
	// AfterPoints is how many checkpointed points complete before the kill;
	// always in [2, points-1], so a resumed run both recovers and re-solves
	// at least one point.
	AfterPoints int
	// TornBytes is how many bytes to chop off the final journal segment after
	// the kill (0 = the crash landed between record writes). Always smaller
	// than one framed record, so at most the final point record is lost.
	TornBytes int
}

// NewCrashPlan derives the deterministic crash plan for a seed over a sweep
// of the given size. Panics if points < 3 — a meaningful kill-and-recover
// needs at least one point before the crash, one lost, and one never run.
func NewCrashPlan(seed int64, points int) CrashPlan {
	if points < 3 {
		panic(fmt.Sprintf("faults: NewCrashPlan needs at least 3 points, got %d", points))
	}
	rng := rand.New(rand.NewSource(seed))
	plan := CrashPlan{Seed: seed, AfterPoints: 2 + rng.Intn(points-2)}
	if rng.Intn(2) == 1 {
		plan.TornBytes = 1 + rng.Intn(64)
	}
	return plan
}

// String renders the plan for test names and logs.
func (p CrashPlan) String() string {
	return fmt.Sprintf("seed=%d kill-after=%d torn=%d", p.Seed, p.AfterPoints, p.TornBytes)
}
