// Kill-and-recover chaos harness: deterministic SIGKILL-equivalent crashes
// injected mid-sweep (journal abandoned without its final flush, optionally
// with the final record torn mid-write), then replay and resume, asserting
// the resumed run converges to the exact result set of an uninterrupted run
// while re-solving strictly fewer points. External test package: the harness
// drives the public hilp API, which the faults package itself sits under.
package faults_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"hilp"
	"hilp/internal/dse"
	"hilp/internal/faults"
	"hilp/internal/journal"
	"hilp/internal/leakcheck"
	"hilp/internal/wire"
)

const (
	chaosJobID    = "chaos"
	chaosModelKey = "chaos-model-key"
)

// chaosModel is the small deterministic sweep every chaos run evaluates:
// single worker, cross-point reuse off, no observability — the configuration
// under which SolveBatch is bit-reproducible, so "resume converged" can be
// asserted as byte equality.
func chaosModel() (hilp.Workload, []hilp.SoC, []hilp.Option) {
	w := hilp.DefaultWorkload()
	specs := hilp.DesignSpace(w, hilp.SpaceConfig{
		CPUCores: []int{1, 2},
		GPUSMs:   []int{0, 4},
		MaxDSAs:  2,
		DSAPEs:   []int{1},
		PowerW:   600,
	})
	opts := []hilp.Option{
		hilp.WithProfile(hilp.Profile{InitialStepSec: 10, Horizon: 200}),
		hilp.WithSolver(hilp.SolverConfig{Seed: 1, Effort: 0.2, Restarts: 1}),
		hilp.WithWorkers(1),
		hilp.WithCache(false),
		hilp.WithWarmStart(false),
		hilp.WithPruning(false),
	}
	return w, specs, opts
}

// canonicalPoints renders a result set for byte-identity comparison. The
// Resumed marker is provenance, not a result, so it is cleared first.
func canonicalPoints(t *testing.T, points []hilp.Point) []byte {
	t.Helper()
	out := make([]wire.Point, len(points))
	for i, p := range points {
		p.Resumed = false
		out[i] = dse.ToWirePoint(p)
	}
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatalf("marshal points: %v", err)
	}
	return raw
}

// crashRun runs the sweep until plan.AfterPoints points have been
// checkpointed, then kills it: context cancelled, journal abandoned with its
// unsynced tail lost (the in-process SIGKILL), and plan.TornBytes chopped off
// the final segment to simulate a record torn mid-write.
func crashRun(t *testing.T, dir string, plan faults.CrashPlan, w hilp.Workload, specs []hilp.SoC, opts []hilp.Option) {
	t.Helper()
	// FsyncEvery 2 keeps the abandoned (never-synced) tail to at most one
	// record, so together with the torn record the crash loses at most two
	// of the plan's >= 2 checkpointed points and resume always recovers > 0.
	jnl, err := journal.Open(dir, journal.Options{FsyncEvery: 2})
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	err = jnl.Append(wire.JournalRecord{
		Kind:  wire.JournalKindJobStart,
		JobID: chaosJobID,
		Start: &wire.JournalJobStart{Total: len(specs), ModelKey: chaosModelKey},
	})
	if err == nil {
		err = jnl.Sync()
	}
	if err != nil {
		t.Fatalf("journal jobStart: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	runOpts := append(opts[:len(opts):len(opts)], hilp.WithCheckpoint(func(i int, p hilp.Point) {
		if err := jnl.Append(wire.JournalRecord{
			Kind:  wire.JournalKindPoint,
			JobID: chaosJobID,
			Point: &wire.JournalPoint{Index: i, Point: dse.ToWirePoint(p)},
		}); err != nil {
			t.Errorf("journal point %d: %v", i, err)
		}
		if done++; done == plan.AfterPoints {
			cancel()
		}
	}))
	if _, err := hilp.SolveBatch(ctx, w, specs, runOpts...); err != nil {
		t.Fatalf("crashed run: %v", err)
	}
	jnl.Abandon()
	if err := journal.TearTail(dir, plan.TornBytes); err != nil {
		t.Fatalf("tear tail: %v", err)
	}
}

// recoverRun replays the journal and finishes the sweep with the recovered
// points pre-filled, returning the final result set and the engine stats.
func recoverRun(t *testing.T, dir string, w hilp.Workload, specs []hilp.SoC, opts []hilp.Option) (*hilp.BatchResult, int) {
	t.Helper()
	jobs, stats, err := journal.ReplayJobs(dir)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	var st *journal.JobState
	for _, cand := range jobs {
		if cand.JobID == chaosJobID {
			st = cand
		}
	}
	if st == nil || st.Start == nil {
		t.Fatalf("replay lost the jobStart record (stats %+v)", stats)
	}
	if st.Terminal() {
		t.Fatalf("crashed job replayed as terminal")
	}
	if err := dse.CheckResumeKey(st.Start.ModelKey, chaosModelKey); err != nil {
		t.Fatalf("resume key: %v", err)
	}
	resume := map[int]hilp.Point{}
	for idx, wp := range st.Points {
		if idx < 0 || idx >= len(specs) || !dse.Resumable(wp) {
			continue
		}
		resume[idx] = dse.FromWirePoint(wp, specs[idx])
	}
	runOpts := append(opts[:len(opts):len(opts)], hilp.WithResume(resume))
	res, err := hilp.SolveBatch(context.Background(), w, specs, runOpts...)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	return res, len(resume)
}

// TestKillAndRecover is the acceptance harness: for a spread of seeded crash
// plans — clean kills between writes and kills tearing the final record — a
// crashed-then-resumed sweep must produce a byte-identical final result set
// to an uninterrupted run, re-solve strictly fewer points than the sweep
// holds, and strand no goroutines.
func TestKillAndRecover(t *testing.T) {
	leakcheck.VerifyNoLeaks(t)
	w, specs, opts := chaosModel()
	if len(specs) < 4 {
		t.Fatalf("chaos model too small: %d specs", len(specs))
	}
	golden, err := hilp.SolveBatch(context.Background(), w, specs, opts...)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want := canonicalPoints(t, golden.Points)

	sawTorn, sawClean := false, false
	for seed := int64(1); seed <= 6; seed++ {
		plan := faults.NewCrashPlan(seed, len(specs))
		if plan.TornBytes > 0 {
			sawTorn = true
		} else {
			sawClean = true
		}
		t.Run(plan.String(), func(t *testing.T) {
			dir := t.TempDir()
			crashRun(t, dir, plan, w, specs, opts)
			res, recovered := recoverRun(t, dir, w, specs, opts)

			if recovered == 0 {
				t.Fatalf("crash lost every checkpointed point (plan %v)", plan)
			}
			if res.Stats.Resumed != recovered {
				t.Errorf("Stats.Resumed = %d, want %d", res.Stats.Resumed, recovered)
			}
			if res.Stats.Solved >= len(specs) {
				t.Errorf("resumed run re-solved %d of %d points, want strictly fewer", res.Stats.Solved, len(specs))
			}
			if res.Stats.Solved+res.Stats.Resumed != len(specs) {
				t.Errorf("solved %d + resumed %d != %d points", res.Stats.Solved, res.Stats.Resumed, len(specs))
			}
			if got := canonicalPoints(t, res.Points); !bytes.Equal(got, want) {
				t.Errorf("resumed result set differs from uninterrupted run:\n got %s\nwant %s", got, want)
			}
		})
	}
	if !sawTorn || !sawClean {
		t.Fatalf("seed spread covered torn=%v clean=%v; want both", sawTorn, sawClean)
	}
}

// TestCrashPlanDeterministic pins the plan derivation: same seed, same plan,
// bounds respected.
func TestCrashPlanDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := faults.NewCrashPlan(seed, 12), faults.NewCrashPlan(seed, 12)
		if a != b {
			t.Fatalf("seed %d: plans differ: %v vs %v", seed, a, b)
		}
		if a.AfterPoints < 2 || a.AfterPoints > 11 {
			t.Errorf("seed %d: AfterPoints %d out of [2, 11]", seed, a.AfterPoints)
		}
		if a.TornBytes < 0 || a.TornBytes > 64 {
			t.Errorf("seed %d: TornBytes %d out of [0, 64]", seed, a.TornBytes)
		}
	}
}
