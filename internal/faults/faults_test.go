package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDecideDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Rate: 0.3}
	a, b := New(cfg), New(cfg)
	for key := uint64(0); key < 200; key++ {
		for _, site := range []string{SiteSolve, SiteEvaluate, SiteServe} {
			if got, want := a.decide(site, key), b.decide(site, key); got != want {
				t.Fatalf("decide(%s, %d) differs across identical injectors: %v vs %v", site, key, got, want)
			}
		}
	}
	if New(Config{Seed: 8, Rate: 0.3}).decide(SiteSolve, 0) == a.decide(SiteSolve, 0) &&
		New(Config{Seed: 8, Rate: 0.3}).decide(SiteSolve, 1) == a.decide(SiteSolve, 1) &&
		New(Config{Seed: 8, Rate: 0.3}).decide(SiteSolve, 2) == a.decide(SiteSolve, 2) &&
		New(Config{Seed: 8, Rate: 0.3}).decide(SiteSolve, 3) == a.decide(SiteSolve, 3) {
		t.Error("different seeds produced identical decisions on keys 0..3")
	}
}

func TestRateBounds(t *testing.T) {
	never := New(Config{Seed: 1, Rate: 0})
	always := New(Config{Seed: 1, Rate: 1})
	fired := 0
	for key := uint64(0); key < 1000; key++ {
		if never.decide(SiteSolve, key) != None {
			t.Fatalf("rate 0 fired at key %d", key)
		}
		if always.decide(SiteSolve, key) == None {
			t.Fatalf("rate 1 did not fire at key %d", key)
		}
		if New(Config{Seed: 1, Rate: 0.2}).decide(SiteSolve, key) != None {
			fired++
		}
	}
	// 20% +- a generous tolerance over 1000 keys.
	if fired < 120 || fired > 300 {
		t.Errorf("rate 0.2 fired %d/1000 times, want roughly 200", fired)
	}
	if never.Enabled() {
		t.Error("rate-0 injector reports Enabled")
	}
	if !always.Enabled() {
		t.Error("rate-1 injector reports disabled")
	}
}

func TestTimesBudget(t *testing.T) {
	in := New(Config{Seed: 1, Rate: 1, Times: 2, Kinds: []Kind{KindError}})
	p := in.Point(9)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := p.InjectErr(ctx, SiteSolve); !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := p.InjectErr(ctx, SiteSolve); err != nil {
		t.Fatalf("third firing not suppressed by Times=2: %v", err)
	}
	if got := in.FiredCount(); got != 2 {
		t.Errorf("FiredCount = %d, want 2", got)
	}
	if keys := in.FiredKeys(); len(keys) != 1 || keys[0] != 9 {
		t.Errorf("FiredKeys = %v, want [9]", keys)
	}
}

func TestPanicNow(t *testing.T) {
	in := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindPanic}})
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *InjectedPanic", r, r)
		}
		if ip.Site != SiteSolve || ip.Key != 3 {
			t.Errorf("panic value %+v, want site %s key 3", ip, SiteSolve)
		}
	}()
	in.Point(3).PanicNow(SiteSolve)
	t.Fatal("PanicNow did not panic at rate 1")
}

func TestTimeoutKindSleepsAndWraps(t *testing.T) {
	in := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindTimeout}, Delay: 5 * time.Millisecond})
	start := time.Now()
	err := in.Point(0).InjectErr(context.Background(), SiteSolve)
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrTimeout wrapping ErrInjected", err)
	}
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Errorf("timeout kind returned after %v, want >= ~5ms delay", d)
	}
	// A cancelled context cuts the sleep short.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in2 := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindTimeout}, Delay: time.Hour})
	done := make(chan error, 1)
	go func() { done <- in2.Point(0).InjectErr(ctx, SiteSolve) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("cancelled timeout err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout kind ignored context cancellation")
	}
}

func TestSiteFilter(t *testing.T) {
	in := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindError}, Sites: []string{SiteServe}})
	if err := in.Point(0).InjectErr(context.Background(), SiteSolve); err != nil {
		t.Errorf("filtered site fired: %v", err)
	}
	if err := in.Point(0).InjectErr(context.Background(), SiteServe); err == nil {
		t.Error("enabled site did not fire")
	}
}

func TestNilSafety(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector Enabled")
	}
	if in.Point(1) != nil {
		t.Error("nil injector Point != nil")
	}
	if in.FiredKeys() != nil || in.FiredCount() != 0 {
		t.Error("nil injector has firing history")
	}
	var p *Point
	p.PanicNow(SiteSolve) // must not panic
	if err := p.InjectErr(context.Background(), SiteSolve); err != nil {
		t.Errorf("nil point InjectErr = %v", err)
	}
	if p.Corrupt(SiteSolve) {
		t.Error("nil point Corrupt = true")
	}
	if p.Key() != 0 {
		t.Error("nil point Key != 0")
	}
	// Context plumbing without an injector is a pass-through.
	ctx := context.Background()
	if got := NewContext(ctx, nil); got != ctx {
		t.Error("NewContext(nil) wrapped the context")
	}
	if got := WithKey(ctx, 5); got != ctx {
		t.Error("WithKey without injector wrapped the context")
	}
	if FromContext(ctx) != nil {
		t.Error("FromContext on empty context != nil")
	}
}

func TestContextPlumbing(t *testing.T) {
	in := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{KindError}})
	ctx := NewContext(context.Background(), in)
	if p := FromContext(ctx); p == nil || p.Key() != 0 {
		t.Fatalf("FromContext = %+v, want key-0 point", FromContext(ctx))
	}
	ctx = WithKey(ctx, 42)
	if p := FromContext(ctx); p == nil || p.Key() != 42 {
		t.Fatalf("after WithKey, key = %v, want 42", FromContext(ctx).Key())
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=9,rate=0.25,times=3,delay=20ms,kinds=panic+nan,sites=solve+serve")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 || cfg.Rate != 0.25 || cfg.Times != 3 || cfg.Delay != 20*time.Millisecond {
		t.Errorf("parsed %+v", cfg)
	}
	if len(cfg.Kinds) != 2 || cfg.Kinds[0] != KindPanic || cfg.Kinds[1] != KindCorrupt {
		t.Errorf("kinds %v, want [panic corrupt]", cfg.Kinds)
	}
	if len(cfg.Sites) != 2 || cfg.Sites[0] != SiteSolve || cfg.Sites[1] != SiteServe {
		t.Errorf("sites %v", cfg.Sites)
	}
	for _, bad := range []string{"", "rate", "rate=2", "kinds=quantum", "volume=11"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{None: "none", KindPanic: "panic", KindTimeout: "timeout", KindError: "error", KindCorrupt: "corrupt"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
