// Package faults is a deterministic fault-injection harness for the solve
// stack. An Injector decides, from a seed and an injection key (typically the
// sweep point index), whether a named injection site fires a fault and which
// kind: a panic, an injected timeout, a corrupted result, or a synthetic
// error. Decisions are pure functions of (seed, site, key), so chaos tests
// replay exactly; each (site, key) pair fires at most Times faults, so retry
// paths can be observed succeeding.
//
// The package follows the same contract as internal/obs: a nil *Injector and
// a nil *Point are valid, fully disabled injectors whose every method is a
// cheap no-op, so injection sites are threaded unconditionally and cost
// nothing in production. The injector travels through the existing
// context.Context plumbing (NewContext/WithKey/FromContext) rather than
// through every config struct, because the solve stack is already
// context-first.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind classifies an injected fault.
type Kind int

// Fault kinds.
const (
	// None means the site does not fire for this key.
	None Kind = iota
	// KindPanic makes the site panic with an *InjectedPanic value, exercising
	// the stack's recover() boundaries.
	KindPanic
	// KindTimeout makes the site sleep for Config.Delay (context-aware) and
	// then fail with ErrTimeout, modeling a solver hang cut short.
	KindTimeout
	// KindError makes the site fail immediately with ErrInjected.
	KindError
	// KindCorrupt asks the site to corrupt its result (an invalid schedule or
	// NaN metric), exercising result validation instead of error paths.
	KindCorrupt
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case KindPanic:
		return "panic"
	case KindTimeout:
		return "timeout"
	case KindError:
		return "error"
	case KindCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Injection sites threaded through the solve stack.
const (
	// SiteSolve fires inside one solver invocation (scheduler.Solve and the
	// core fallback chain around it); all kinds apply.
	SiteSolve = "solve"
	// SiteEvaluate fires in the adaptive-resolution loop outside the solver's
	// own recover boundary; panics here must be caught by sweep workers,
	// server handlers, or hilp.Solve. Only KindPanic applies.
	SiteEvaluate = "evaluate"
	// SiteServe fires in the hilp-serve job runner; error kinds exercise the
	// service's retry/backoff path.
	SiteServe = "serve"
)

// ErrInjected is the base error of every non-panic injected fault.
var ErrInjected = errors.New("faults: injected fault")

// ErrTimeout is an injected solver hang; it wraps ErrInjected.
var ErrTimeout = fmt.Errorf("%w: timeout", ErrInjected)

// InjectedPanic is the value KindPanic panics with, so recover boundaries and
// tests can recognize synthetic panics.
type InjectedPanic struct {
	Site string
	Key  uint64
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %s[%d]", p.Site, p.Key)
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives all decisions deterministically.
	Seed int64
	// Rate is the fraction of keys that fault per site, in [0, 1].
	Rate float64
	// Times bounds how often one (site, key) pair fires; 0 selects 1, so a
	// single retry of a faulted call succeeds.
	Times int
	// Delay is the injected-timeout sleep; 0 selects 10ms.
	Delay time.Duration
	// Kinds is the fault-kind palette a firing site draws from; empty selects
	// all kinds.
	Kinds []Kind
	// Sites restricts injection to the named sites; empty enables all.
	Sites []string
}

// Injector decides and records fault injections. The zero value of the
// pointer (nil) is a valid, disabled injector.
type Injector struct {
	cfg   Config
	sites map[string]bool

	mu    sync.Mutex
	count map[siteKey]int
	fired map[siteKey]Kind
}

type siteKey struct {
	site string
	key  uint64
}

// New builds an injector from cfg. A Rate of 0 yields an injector that never
// fires (but still costs one hash per site visit); use a nil *Injector for
// the truly disabled path.
func New(cfg Config) *Injector {
	if cfg.Times <= 0 {
		cfg.Times = 1
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 10 * time.Millisecond
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []Kind{KindPanic, KindTimeout, KindError, KindCorrupt}
	}
	in := &Injector{cfg: cfg, count: map[siteKey]int{}, fired: map[siteKey]Kind{}}
	if len(cfg.Sites) > 0 {
		in.sites = map[string]bool{}
		for _, s := range cfg.Sites {
			in.sites[s] = true
		}
	}
	return in
}

// Enabled reports whether the injector can fire at all.
func (in *Injector) Enabled() bool { return in != nil && in.cfg.Rate > 0 }

// decide is the pure decision function: which kind (if any) site fires for key.
func (in *Injector) decide(site string, key uint64) Kind {
	if in == nil || in.cfg.Rate <= 0 {
		return None
	}
	if in.sites != nil && !in.sites[site] {
		return None
	}
	h := mix(uint64(in.cfg.Seed) ^ hashString(site) ^ mix(key+0x9e3779b97f4a7c15))
	// Top 53 bits give a uniform float in [0, 1).
	if float64(h>>11)/(1<<53) >= in.cfg.Rate {
		return None
	}
	return in.cfg.Kinds[int(mix(h)%uint64(len(in.cfg.Kinds)))]
}

// take consumes one firing of (site, key) when the decision matches want,
// honoring the Times budget, and records it.
func (in *Injector) take(site string, key uint64, want Kind) bool {
	if in.decide(site, key) != want {
		return false
	}
	sk := siteKey{site, key}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.count[sk] >= in.cfg.Times {
		return false
	}
	in.count[sk]++
	in.fired[sk] = want
	return true
}

// FiredKeys returns the sorted, deduplicated keys that actually fired a fault
// at any site. Chaos tests compare this against the set of failed or degraded
// sweep points.
func (in *Injector) FiredKeys() []uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	set := map[uint64]bool{}
	for sk := range in.fired {
		set[sk.key] = true
	}
	keys := make([]uint64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// FiredCount returns the total number of faults fired.
func (in *Injector) FiredCount() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	total := 0
	for _, n := range in.count {
		total += n
	}
	return total
}

// Point binds an injector to one injection key (e.g. one sweep point). A nil
// *Point is a valid, disabled injection point.
type Point struct {
	inj *Injector
	key uint64
}

// Point derives the injection point for key. A nil injector yields nil.
func (in *Injector) Point(key uint64) *Point {
	if in == nil {
		return nil
	}
	return &Point{inj: in, key: key}
}

// Key returns the point's injection key.
func (p *Point) Key() uint64 {
	if p == nil {
		return 0
	}
	return p.key
}

// PanicNow panics with an *InjectedPanic when site decides KindPanic for this
// point. Call it inside the code region a recover boundary must protect.
func (p *Point) PanicNow(site string) {
	if p == nil || p.inj == nil {
		return
	}
	if p.inj.take(site, p.key, KindPanic) {
		panic(&InjectedPanic{Site: site, Key: p.key})
	}
}

// InjectErr returns an injected error when site decides KindTimeout or
// KindError for this point. Timeout kind first sleeps Config.Delay or until
// ctx is done, whichever comes first.
func (p *Point) InjectErr(ctx context.Context, site string) error {
	if p == nil || p.inj == nil {
		return nil
	}
	if p.inj.take(site, p.key, KindTimeout) {
		select {
		case <-time.After(p.inj.cfg.Delay):
		case <-ctx.Done():
		}
		return fmt.Errorf("%w (site %s, key %d)", ErrTimeout, site, p.key)
	}
	if p.inj.take(site, p.key, KindError) {
		return fmt.Errorf("%w (site %s, key %d)", ErrInjected, site, p.key)
	}
	return nil
}

// Corrupt reports whether the caller should corrupt its result (KindCorrupt
// decision), consuming one firing.
func (p *Point) Corrupt(site string) bool {
	if p == nil || p.inj == nil {
		return false
	}
	return p.inj.take(site, p.key, KindCorrupt)
}

// ctxKey carries a *Point through context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying the injector at key 0. A nil injector
// returns ctx unchanged.
func NewContext(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, in.Point(0))
}

// WithKey re-keys the injection point carried by ctx (sweeps key each point
// by its index). Without an injector in ctx it is a no-op.
func WithKey(ctx context.Context, key uint64) context.Context {
	p, _ := ctx.Value(ctxKey{}).(*Point)
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, p.inj.Point(key))
}

// FromContext extracts the injection point, or nil (a valid disabled point).
func FromContext(ctx context.Context) *Point {
	p, _ := ctx.Value(ctxKey{}).(*Point)
	return p
}

// hashString is 64-bit FNV-1a.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ParseSpec parses a CLI fault spec like
//
//	seed=1,rate=0.2,times=1,delay=10ms,kinds=panic+timeout,sites=solve+evaluate
//
// into a Config. Empty kinds/sites select all. An empty spec is invalid.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, errors.New("faults: empty spec")
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("faults: bad spec element %q (want key=value)", part)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "rate":
			cfg.Rate, err = strconv.ParseFloat(v, 64)
			if err == nil && (cfg.Rate < 0 || cfg.Rate > 1) {
				err = fmt.Errorf("rate %g outside [0,1]", cfg.Rate)
			}
		case "times":
			cfg.Times, err = strconv.Atoi(v)
		case "delay":
			cfg.Delay, err = time.ParseDuration(v)
		case "kinds":
			for _, name := range strings.Split(v, "+") {
				switch name {
				case "panic":
					cfg.Kinds = append(cfg.Kinds, KindPanic)
				case "timeout":
					cfg.Kinds = append(cfg.Kinds, KindTimeout)
				case "error":
					cfg.Kinds = append(cfg.Kinds, KindError)
				case "corrupt", "nan":
					cfg.Kinds = append(cfg.Kinds, KindCorrupt)
				default:
					err = fmt.Errorf("unknown kind %q", name)
				}
				if err != nil {
					break
				}
			}
		case "sites":
			cfg.Sites = strings.Split(v, "+")
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: spec %q: %v", part, err)
		}
	}
	return cfg, nil
}
