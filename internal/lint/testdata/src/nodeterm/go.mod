module nodeterm

go 1.22
