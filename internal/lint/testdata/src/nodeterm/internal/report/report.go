// Package report exercises the nodeterm analyzer inside its scope: no wall
// clock, no global math/rand, no map-iteration-ordered output.
package report

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

func Stamp() int64 {
	return time.Now().Unix() // want "time.Now in deterministic path"
}

func Age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since in deterministic path"
}

func Jitter() int {
	return rand.Intn(10) // want "global rand.Intn in deterministic path"
}

// Seeded uses a local seeded source; constructor calls and methods on the
// resulting *rand.Rand are the sanctioned deterministic idiom.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func Render(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "map iteration feeds Fprintf"
	}
}

// RenderSorted extracts keys, sorts them in the same block, and only then
// writes: the canonical deterministic shape.
func RenderSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

func Collect(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration appends to out, which is never sorted afterwards"
		out = append(out, k)
	}
	return out
}

// CollectLocal appends to a slice declared inside the loop, which dies with
// each iteration and cannot leak iteration order.
func CollectLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var batch []int
		batch = append(batch, vs...)
		total += len(batch)
	}
	return total
}
