package report

import "time"

// In-scope _test.go files are exempt; benchmarks may time themselves.
func stampForTest() int64 { return time.Now().Unix() }
