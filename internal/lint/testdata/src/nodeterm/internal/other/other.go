// Package other sits outside the deterministic scope; the wall clock is
// allowed here.
package other

import "time"

func Stamp() int64 { return time.Now().Unix() }
