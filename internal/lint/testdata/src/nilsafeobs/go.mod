module nilsafeobs

go 1.22
