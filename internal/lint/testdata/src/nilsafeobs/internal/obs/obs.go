// Package obs exercises the nilsafeobs analyzer with local stand-ins for the
// hot-path observability types: exported pointer-receiver methods must guard
// nil receivers before any field access.
package obs

// Context mirrors the hot-path obs type shapes.
type Context struct {
	enabled bool
	count   int64
}

// Enabled uses the single-expression guard form.
func (c *Context) Enabled() bool { return c != nil && c.enabled }

// Inc uses the leading early-return guard form.
func (c *Context) Inc() {
	if c == nil {
		return
	}
	c.count++
}

// Set uses the whole-body guard form.
func (c *Context) Set(v bool) {
	if c != nil {
		c.enabled = v
	}
}

// Toggle delegates only to methods, which guard themselves.
func (c *Context) Toggle() {
	c.Set(!c.Enabled())
}

func (c *Context) Broken() int64 {
	return c.count // want "dereferences its receiver without a leading nil guard"
}

// lower is unexported; only the exported API carries the nil-safe contract.
func (c *Context) lower() int64 { return c.count }

// Tracer checks the || and && chain-head guard forms.
type Tracer struct {
	spans int
}

func (t *Tracer) Empty() bool {
	if t == nil || t.spans == 0 {
		return true
	}
	return false
}

func (t *Tracer) Busy() bool {
	return t != nil && t.spans > 0
}

func (t *Tracer) Add(n int) {
	t.spans += n // want "dereferences its receiver without a leading nil guard"
}

// Histogram has a value receiver, which can never be nil.
type Histogram struct{ n int }

func (h Histogram) N() int { return h.n }

// Config is not a hot-path type; unguarded derefs are fine.
type Config struct {
	Depth int
}

func (c *Config) Get() int { return c.Depth }
