module ctxfirst

go 1.22
