// Package a exercises the ctxfirst analyzer: exported Solve*/Sweep*/Batch*
// entry points must take a context.Context first.
package a

import "context"

// SolveGood takes its context first and is silent.
func SolveGood(ctx context.Context, n int) int { return n }

func SolveBare(n int) int { return n } // want "exported entry point SolveBare must take a context.Context as its first parameter"

func SweepAll() {} // want "exported entry point SweepAll must take a context.Context as its first parameter"

func BatchRun(n int, ctx context.Context) {} // want "exported entry point BatchRun must take a context.Context as its first parameter"

// solveInternal is unexported and out of contract.
func solveInternal(n int) int { return n }

// Resolver is exported but not an entry-point prefix.
func Resolver() {}

// Solver methods are entry points too.
type Solver struct{}

func (s *Solver) SolveMethod(n int) int { return n } // want "exported entry point SolveMethod must take a context.Context as its first parameter"

func (s *Solver) SweepMethod(ctx context.Context) {}
