package a

import "context"

// SolveOld is a deprecated pre-context wrapper; the directive plus the
// legacy.go filename exempt it.
//
//lint:legacy
func SolveOld(n int) int { return SolveGood(context.Background(), n) }

// SolveUnmarked is deprecated but carries no directive, so even legacy.go
// does not exempt it.
func SolveUnmarked(n int) int { return n } // want "exported entry point SolveUnmarked must take a context.Context as its first parameter"
