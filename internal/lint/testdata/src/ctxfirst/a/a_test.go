package a

// Test files are exempt from every analyzer: this entry point would be a
// finding in a non-test file.
func SolveTestHelper(n int) int { return n }
