package a

// SweepMarkedWrongFile carries the directive outside legacy.go, where it has
// no effect: the allowlist cannot leak into live code.
//
//lint:legacy
func SweepMarkedWrongFile() {} // want "exported entry point SweepMarkedWrongFile must take a context.Context as its first parameter"
