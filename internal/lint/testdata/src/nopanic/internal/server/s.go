// Package server exercises the nopanic analyzer: every go func literal must
// begin with a deferred recover helper.
package server

import (
	"fmt"
	"sync"
)

// Guarded mimics the obs.Context.Guard helper shape.
type Guarded struct{}

func (g *Guarded) Guard(where string) {
	if r := recover(); r != nil {
		fmt.Println("recovered", where, r)
	}
}

func SpawnInline() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				fmt.Println("recovered", r)
			}
		}()
		work()
	}()
}

func SpawnHelper(g *Guarded) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer g.Guard("worker") // the guard may sit anywhere in the leading defer run
		work()
	}()
	wg.Wait()
}

func SpawnBare() {
	go func() { // want "goroutine literal must begin with a deferred recover helper"
		work()
	}()
}

func SpawnLate() {
	go func() { // want "goroutine literal must begin with a deferred recover helper"
		work()
		defer func() { _ = recover() }()
	}()
}

// SpawnNested checks that a guarded outer literal does not excuse the inner
// one: each goroutine needs its own guard.
func SpawnNested(g *Guarded) {
	go func() {
		defer g.Guard("outer")
		go func() { // want "goroutine literal must begin with a deferred recover helper"
			work()
		}()
	}()
}

// SpawnNamed launches a named function, which guards itself at its own
// declaration and is not flagged at the launch site.
func SpawnNamed() {
	go work()
}

func work() {}
