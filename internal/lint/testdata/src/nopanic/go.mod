module nopanic

go 1.22
