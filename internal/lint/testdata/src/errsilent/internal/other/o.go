// Package other sits outside the crash-recovery scope; best-effort closes
// are tolerated here.
package other

import "os"

func CloseDropped(f *os.File) {
	f.Close()
}
