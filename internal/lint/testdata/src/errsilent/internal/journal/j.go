// Package journal exercises the errsilent analyzer inside its scope: no
// discarded Sync/Close/Flush/Write errors in the crash-recovery layers.
package journal

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
)

func CloseDropped(f *os.File) {
	f.Close() // want "error from f.Close discarded"
}

func SyncDeferred(f *os.File) {
	defer f.Sync() // want "error from f.Sync discarded by defer"
}

func CloseGo(f *os.File) {
	go f.Close() // want "error from f.Close discarded by go"
}

func CloseBlank(f *os.File) {
	_ = f.Close() // want "error from f.Close assigned to _"
}

func WriteBlank(f *os.File, b []byte) int {
	n, _ := f.Write(b) // want "error from f.Write assigned to _"
	return n
}

// CloseHandled consumes the error and is silent.
func CloseHandled(f *os.File) error {
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing: %w", err)
	}
	return nil
}

// HashWrite hits the hash.Hash exemption: its Write never fails by contract.
func HashWrite(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// BufferWrite hits the bytes.Buffer exemption.
func BufferWrite(b []byte) string {
	var buf bytes.Buffer
	buf.Write(b)
	return buf.String()
}

type flusher interface{ Flush() }

// FlushNoError calls a Flush with no error result (the http.Flusher shape);
// there is nothing to discard.
func FlushNoError(f flusher) {
	f.Flush()
}
