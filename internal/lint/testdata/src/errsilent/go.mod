module errsilent

go 1.22
