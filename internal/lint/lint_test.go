package lint

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestAnalyzersOnFixtures runs the full analyzer suite over each fixture
// module under testdata/src and checks its findings against the fixtures'
// trailing `// want "regexp"` comments: every diagnostic must be wanted on
// its exact file and line, and every want must fire. Test files are loaded
// (IncludeTests) so the _test.go exemption is exercised rather than skipped.
func TestAnalyzersOnFixtures(t *testing.T) {
	fixtures := []string{"ctxfirst", "nodeterm", "nopanic", "nilsafeobs", "errsilent"}
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			runFixture(t, filepath.Join("testdata", "src", name))
		})
	}
}

// expectation is one `// want` comment: a diagnostic must match pattern at
// file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

const wantPrefix = `// want "`

func runFixture(t *testing.T, dir string) {
	t.Helper()
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	l.IncludeTests = true
	pkgs, err := l.LoadModule([]string{"./..."})
	if err != nil {
		t.Fatalf("loading fixture packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("fixture module has no packages")
	}
	var wants []*expectation
	for _, p := range pkgs {
		for _, f := range p.Files {
			wants = append(wants, collectWants(t, p, f)...)
		}
	}
	diags := RunAll(pkgs)
	SortDiagnostics(diags)
outer:
	for _, d := range diags {
		for _, w := range wants {
			if w.matched || w.file != d.File || w.line != d.Line {
				continue
			}
			if !w.pattern.MatchString(d.Message) {
				t.Errorf("%s: diagnostic %q does not match want %q", d, d.Message, w.pattern)
			}
			w.matched = true
			continue outer
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q never fired", w.file, w.line, w.pattern)
		}
	}
}

// collectWants extracts the `// want "re"` comments of one fixture file.
func collectWants(t *testing.T, p *Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, wantPrefix) || !strings.HasSuffix(text, `"`) {
				continue
			}
			raw := text[len(wantPrefix) : len(text)-1]
			re, err := regexp.Compile(raw)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", p.Filename(c.Pos()), raw, err)
			}
			out = append(out, &expectation{
				file:    p.Filename(c.Pos()),
				line:    p.Fset.Position(c.Pos()).Line,
				pattern: re,
			})
		}
	}
	return out
}
