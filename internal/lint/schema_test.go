package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wireBase is the fixture wire package the compatibility scenarios mutate.
const wireBase = `package wire

const SchemaVersion = 3

type Point struct {
	ID      string  ` + "`json:\"id\"`" + `
	Score   float64 ` + "`json:\"score,omitempty\"`" + `
	Skipped int     ` + "`json:\"-\"`" + `
	note    string
}

type Summary struct {
	Count int ` + "`json:\"count\"`" + `
}
`

// writeWireModule lays out a throwaway module holding one internal/wire
// package and returns a fresh loader rooted at it.
func writeWireModule(t *testing.T, dir, wireSrc string) *Loader {
	t.Helper()
	wireDir := filepath.Join(dir, "internal", "wire")
	if err := os.MkdirAll(wireDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module wiretest\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(wireDir, "wire.go"), []byte(wireSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestSchemaGate snapshots a base wire package, mutates it, and checks which
// edits the compatibility gate rejects: removals, renames, re-types, tag
// changes, and version rollbacks fail; additions pass but flag the snapshot
// as stale until regenerated.
func TestSchemaGate(t *testing.T) {
	cases := []struct {
		name string
		edit func(string) string
		want string // substring of the expected diagnostic; "" expects a clean gate
	}{
		{name: "unchanged", edit: func(s string) string { return s }, want: ""},
		{
			name: "field removed",
			edit: func(s string) string {
				return strings.Replace(s, "\tScore   float64 `json:\"score,omitempty\"`\n", "", 1)
			},
			want: "field Point.Score was removed or renamed",
		},
		{
			name: "field renamed",
			edit: func(s string) string { return strings.Replace(s, "ID      string", "Ident   string", 1) },
			want: "field Point.ID was removed or renamed",
		},
		{
			name: "field re-typed",
			edit: func(s string) string { return strings.Replace(s, "Score   float64", "Score   int", 1) },
			want: "field Point.Score changed type: float64 -> int",
		},
		{
			name: "tag changed",
			edit: func(s string) string { return strings.Replace(s, `json:"id"`, `json:"ident"`, 1) },
			want: `field Point.ID changed JSON tag: "id" -> "ident"`,
		},
		{
			name: "type removed",
			edit: func(s string) string {
				i := strings.Index(s, "type Summary")
				return s[:i]
			},
			want: "type Summary was removed",
		},
		{
			name: "version rollback",
			edit: func(s string) string { return strings.Replace(s, "SchemaVersion = 3", "SchemaVersion = 2", 1) },
			want: "SchemaVersion went backwards: snapshot 3, tree 2",
		},
		{
			name: "unexported field changes are invisible",
			edit: func(s string) string { return strings.Replace(s, "note    string", "memo    string", 1) },
			want: "",
		},
		{
			name: "json:\"-\" field changes are invisible",
			edit: func(s string) string { return strings.Replace(s, "Skipped int", "Skipped int64", 1) },
			want: "",
		},
		{
			name: "field added is additive drift",
			edit: func(s string) string {
				return strings.Replace(s, "Count int `json:\"count\"`",
					"Count int `json:\"count\"`\n\tMean  float64 `json:\"mean,omitempty\"`", 1)
			},
			want: "schema snapshot is stale",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := writeWireModule(t, dir, wireBase)
			if err := WriteSchemaSnapshot(l); err != nil {
				t.Fatalf("writing snapshot: %v", err)
			}
			mutated := tc.edit(wireBase)
			if mutated == wireBase && tc.name != "unchanged" {
				t.Fatal("edit did not change the source")
			}
			if err := os.WriteFile(filepath.Join(dir, "internal", "wire", "wire.go"), []byte(mutated), 0o644); err != nil {
				t.Fatal(err)
			}
			// A fresh loader: the first one memoized the unmutated package.
			l2, err := NewLoader(dir)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := CheckSchemaSnapshot(l2)
			if err != nil {
				t.Fatalf("running gate: %v", err)
			}
			if tc.want == "" {
				if len(diags) != 0 {
					t.Fatalf("expected clean gate, got %v", diags)
				}
				return
			}
			if len(diags) == 0 {
				t.Fatalf("expected a diagnostic containing %q, gate was clean", tc.want)
			}
			found := false
			for _, d := range diags {
				if strings.Contains(d.Message, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no diagnostic contains %q; got %v", tc.want, diags)
			}
		})
	}
}

// TestSchemaGateMissingSnapshot checks the gate refuses to run without a
// committed snapshot rather than silently passing.
func TestSchemaGateMissingSnapshot(t *testing.T) {
	l := writeWireModule(t, t.TempDir(), wireBase)
	_, err := CheckSchemaSnapshot(l)
	if err == nil || !strings.Contains(err.Error(), "schema snapshot") {
		t.Fatalf("expected a missing-snapshot error, got %v", err)
	}
}
