package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("hilp/internal/milp"; fixture
	// packages use synthetic paths like "nodeterm/internal/report").
	Path string
	// Files are the package's parsed files (test files included only when the
	// loader was asked for them; analyzers additionally skip _test.go by
	// filename so exemptions hold either way).
	Files []*ast.File
	// Fset maps AST positions back to file/line/column.
	Fset *token.FileSet
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the use/selection/type resolution analyzers rely on.
	Info *types.Info
	// relRoot, when non-empty, is stripped from file paths in diagnostics so
	// findings are module-relative.
	relRoot string
}

// Filename returns the name of the file containing pos, relative to the
// module root when known.
func (p *Package) Filename(pos token.Pos) string {
	name := p.Fset.Position(pos).Filename
	if p.relRoot != "" {
		if rel, err := filepath.Rel(p.relRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return name
}

// Diag builds a diagnostic for the named analyzer at the given position.
func (p *Package) Diag(analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		Analyzer: analyzer,
		File:     p.Filename(pos),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports resolve against the module tree,
// everything else (the standard library) through the compiler's source
// importer. Loaded packages are memoized, so a tree-wide run type-checks each
// package once.
type Loader struct {
	// ModRoot is the absolute module root (the directory holding go.mod).
	ModRoot string
	// ModPath is the module path from go.mod ("hilp").
	ModPath string
	// IncludeTests parses _test.go files of loaded packages too (fixture
	// harness mode; external _test packages are still excluded).
	IncludeTests bool

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package
}

// NewLoader returns a loader rooted at the module containing dir, walking
// upward to find go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found in or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		pkgs:    map[string]*Package{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// LoadModule loads every package under the module root matching the patterns.
// The only pattern forms supported are "./..." (the whole module) and plain
// relative directories ("internal/milp", "./cmd/hilp-lint"). Directories
// named testdata and hidden directories are never walked.
func (l *Loader) LoadModule(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.ModRoot, dirSet); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.ModRoot, strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/..."))
			if err := l.walk(base, dirSet); err != nil {
				return nil, err
			}
		default:
			dirSet[filepath.Join(l.ModRoot, strings.TrimPrefix(pat, "./"))] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.Load(path, dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, p)
		}
	}
	return out, nil
}

// walk collects every directory under base containing non-test Go files.
func (l *Loader) walk(base string, dirs map[string]bool) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
}

// Load parses and type-checks the package in dir under the given import
// path. It returns (nil, nil) for directories with no eligible Go files.
func (l *Loader) Load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !l.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, name), err)
		}
		// External test packages (package foo_test) cannot be type-checked
		// together with the package proper; skip them.
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		if !isTest {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	if pkgName == "" {
		return nil, nil
	}
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == pkgName {
			kept = append(kept, f)
		}
	}
	files = kept
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := &types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Files: files, Fset: l.fset, Types: tpkg, Info: info, relRoot: l.ModRoot}
	l.pkgs[path] = p
	return p, nil
}

// loaderImporter resolves imports during type checking: module-internal
// paths recurse into the loader (without test files), everything else goes
// to the standard library's source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		sub := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
		// Imported dependencies never need their test files, regardless of
		// the loader's own mode.
		saved := l.IncludeTests
		l.IncludeTests = false
		p, err := l.Load(path, sub)
		l.IncludeTests = saved
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", sub)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// pathInScope reports whether pkgPath addresses one of the module-relative
// package paths in rels (e.g. "internal/milp"), by exact or suffix match so
// fixture packages with synthetic prefixes stay in scope.
func pathInScope(pkgPath string, rels ...string) bool {
	for _, rel := range rels {
		if pkgPath == rel || strings.HasSuffix(pkgPath, "/"+rel) {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file holding pos is a _test.go file; every
// analyzer exempts those.
func (p *Package) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}
