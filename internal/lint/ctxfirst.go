package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// legacyMarker is the only suppression the suite honors: a `//lint:legacy`
// directive on a deprecated wrapper's doc comment, and only inside a file
// named legacy.go, so the allowlist cannot leak into live code.
const legacyMarker = "//lint:legacy"

// CtxFirst enforces the context-first API contract from PR 3: every exported
// Solve*/Sweep*/Batch* entry point must take a context.Context as its first
// parameter so solves are cancellable with anytime semantics. Deprecated
// pre-context wrappers are exempt only when they live in legacy.go and carry
// the //lint:legacy directive in their doc comment.
const ctxFirstName = "ctxfirst"

var CtxFirst = &Analyzer{
	Name: ctxFirstName,
	Doc:  "exported Solve*/Sweep*/Batch* entry points must take context.Context first",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		isLegacyFile := filepath.Base(p.Filename(f.Pos())) == "legacy.go"
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isEntryPointName(fd.Name.Name) {
				continue
			}
			if isLegacyFile && hasLegacyMarker(fd.Doc) {
				continue
			}
			if firstParamIsContext(p, fd) {
				continue
			}
			out = append(out, p.Diag(ctxFirstName, fd.Name.Pos(),
				"exported entry point %s must take a context.Context as its first parameter (mark deprecated wrappers in legacy.go with %s)",
				fd.Name.Name, legacyMarker))
		}
	}
	return out
}

// isEntryPointName reports whether name is an exported solver entry point.
func isEntryPointName(name string) bool {
	if !ast.IsExported(name) {
		return false
	}
	return strings.HasPrefix(name, "Solve") ||
		strings.HasPrefix(name, "Sweep") ||
		strings.HasPrefix(name, "Batch")
}

// hasLegacyMarker reports whether the doc comment carries the //lint:legacy
// directive. Directives are excluded from CommentGroup.Text, so the raw list
// is scanned.
func hasLegacyMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == legacyMarker {
			return true
		}
	}
	return false
}

// firstParamIsContext reports whether the declaration's first parameter is a
// context.Context.
func firstParamIsContext(p *Package, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	first := params.List[0]
	t := p.Info.TypeOf(first.Type)
	return t != nil && t.String() == "context.Context"
}
