// Package lint is the project's static-analysis suite: a dependency-free
// (stdlib go/parser, go/ast, go/types) driver that loads the module's
// packages and runs project-specific analyzers enforcing the invariants the
// HILP reproduction's results depend on:
//
//   - ctxfirst: exported Solve*/Sweep*/Batch* entry points take a
//     context.Context first, so every solve is cancellable (PR 3).
//   - nodeterm: no wall clock, global math/rand, or map-order-dependent
//     iteration feeding output in the deterministic packages, so run reports
//     and gap certificates stay byte-reproducible (PR 2).
//   - nopanic: every goroutine spawned in the server/sweep/obs layers begins
//     with a deferred recover helper, preserving the panic-isolation ladder
//     (PR 4).
//   - nilsafeobs: hot-path observability types guard nil receivers before
//     field access, keeping the zero-alloc no-op contract (PR 1).
//   - errsilent: the crash-recovery layers never silently discard an I/O
//     error from Sync, Close, Flush, or Write (PR 7).
//
// Alongside the analyzers, schema.go implements the wire-schema
// compatibility gate: a canonical JSON snapshot of internal/wire's exported
// structs, checked so fields are never removed, renamed, re-typed, or
// re-tagged (additions are allowed).
//
// cmd/hilp-lint is the command-line driver; TestWireSchemaCompat (in
// internal/wire) runs the schema gate in-process so plain `go test ./...`
// catches breaking schema edits too.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Diagnostic is one finding, addressed by module-relative file position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Analyzer is one named check over a loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and docs.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run reports the analyzer's findings in the package. Analyzers are
	// responsible for their own package and file scoping (Run is called on
	// every loaded package).
	Run func(p *Package) []Diagnostic
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{CtxFirst, NoDeterm, NoPanic, NilSafeObs, ErrSilent}
}

// RunAll runs every analyzer over every package and returns the findings
// sorted by file, line, column, and analyzer.
func RunAll(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		for _, a := range Analyzers() {
			out = append(out, a.Run(p)...)
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders findings by position, then analyzer, then message.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Report is the machine-readable output of one lint run.
type Report struct {
	// Diagnostics lists every finding in position order.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Count duplicates len(Diagnostics) for cheap jq-less checks.
	Count int `json:"count"`
}

// WriteJSON renders the findings as one indented JSON report.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	if ds == nil {
		ds = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Diagnostics: ds, Count: len(ds)})
}

// WriteText renders the findings one per line for humans.
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}
