package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obsHotTypes are the observability types threaded through solver hot paths.
// The zero-alloc no-op contract (PR 1) promises that a nil pointer to any of
// them is fully usable, so solver layers instrument unconditionally; an
// exported pointer-receiver method that dereferences its receiver without a
// leading nil guard breaks that promise with a panic on the disabled path.
var obsHotTypes = map[string]bool{
	"Context":    true,
	"Tracer":     true,
	"Registry":   true,
	"Counter":    true,
	"Gauge":      true,
	"Histogram":  true,
	"Recorder":   true,
	"Bus":        true,
	"StageTimer": true,
	"Logger":     true,
}

// NilSafeObs checks that exported pointer-receiver methods on the hot-path
// obs types guard nil receivers before any field access. Accepted guard
// forms:
//
//   - a leading `if recv == nil { ... return ... }` statement (the nil check
//     may be the first operand of an || chain);
//   - a body that is entirely `if recv != nil { ... }` (first operand of an
//     && chain);
//   - a single `return recv != nil && ...` expression;
//   - a body that never dereferences a receiver field (pure delegation to
//     other methods, which guard themselves).
const nilSafeObsName = "nilsafeobs"

var NilSafeObs = &Analyzer{
	Name: nilSafeObsName,
	Doc:  "hot-path obs methods must guard nil receivers before field access",
	Run:  runNilSafeObs,
}

func runNilSafeObs(p *Package) []Diagnostic {
	if !pathInScope(p.Path, "internal/obs") {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recvObj, typeName := pointerReceiver(p, fd)
			if recvObj == nil || !obsHotTypes[typeName] {
				continue
			}
			if methodGuardsNil(p, fd, recvObj) {
				continue
			}
			if pos, found := firstReceiverDeref(p, fd.Body, recvObj); found {
				out = append(out, p.Diag(nilSafeObsName, pos,
					"method (*%s).%s dereferences its receiver without a leading nil guard; a nil *%s must stay a valid no-op",
					typeName, fd.Name.Name, typeName))
			}
		}
	}
	return out
}

// pointerReceiver returns the named receiver variable and its base type name
// when the method has a pointer receiver; (nil, "") otherwise (value
// receivers cannot be nil, unnamed receivers cannot be dereferenced).
func pointerReceiver(p *Package, fd *ast.FuncDecl) (*types.Var, string) {
	field := fd.Recv.List[0]
	if len(field.Names) == 0 {
		return nil, ""
	}
	obj, ok := p.Info.Defs[field.Names[0]].(*types.Var)
	if !ok {
		return nil, ""
	}
	ptr, ok := obj.Type().(*types.Pointer)
	if !ok {
		return nil, ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil, ""
	}
	return obj, named.Obj().Name()
}

// methodGuardsNil recognizes the accepted leading-guard shapes.
func methodGuardsNil(p *Package, fd *ast.FuncDecl, recv *types.Var) bool {
	body := fd.Body.List
	if len(body) == 0 {
		return true
	}
	switch first := body[0].(type) {
	case *ast.IfStmt:
		// Leading `if recv == nil { ...; return }` guard; the rest of the
		// body runs with a non-nil receiver. Or the whole body inside
		// `if recv != nil { ... }`.
		if nilComparisonFirst(p, first.Cond, recv, token.EQL, token.LOR) && terminates(first.Body) {
			return true
		}
		if len(body) == 1 && first.Else == nil &&
			nilComparisonFirst(p, first.Cond, recv, token.NEQ, token.LAND) {
			return true
		}
	case *ast.ReturnStmt:
		// `return recv != nil && ...` short-circuits every deref.
		if len(body) == 1 && len(first.Results) == 1 &&
			nilComparisonFirst(p, first.Results[0], recv, token.NEQ, token.LAND) {
			return true
		}
	}
	return false
}

// nilComparisonFirst reports whether expr is `recv <op> nil`, or a chain of
// the given logical operator whose leftmost operand is that comparison
// (short-circuit evaluation makes later operands nil-safe).
func nilComparisonFirst(p *Package, expr ast.Expr, recv *types.Var, op, chain token.Token) bool {
	for {
		e, ok := ast.Unparen(expr).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if e.Op == chain {
			expr = e.X // logical chains associate left; recurse into the head
			continue
		}
		if e.Op != op {
			return false
		}
		x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
		return (isRecvIdent(p, x, recv) && isNilIdent(p, y)) ||
			(isNilIdent(p, x) && isRecvIdent(p, y, recv))
	}
}

func isRecvIdent(p *Package, e ast.Expr, recv *types.Var) bool {
	id, ok := e.(*ast.Ident)
	return ok && p.Info.Uses[id] == recv
}

func isNilIdent(p *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}

// terminates reports whether the block always leaves the function (return or
// panic as its final statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// firstReceiverDeref finds a receiver dereference: a field selection on the
// receiver (method calls are fine — callees guard themselves) or an explicit
// *recv.
func firstReceiverDeref(p *Package, body *ast.BlockStmt, recv *types.Var) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !isRecvIdent(p, ast.Unparen(n.X), recv) {
				return true
			}
			if sel, ok := p.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				pos, found = n.Pos(), true
				return false
			}
		case *ast.StarExpr:
			if isRecvIdent(p, ast.Unparen(n.X), recv) {
				pos, found = n.Pos(), true
				return false
			}
		}
		return true
	})
	return pos, found
}
