package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
)

// SnapshotRelPath is where the wire schema snapshot lives, relative to the
// module root. It is committed, so any schema edit shows up in review as a
// snapshot diff — and the gate fails when the edit is breaking.
const SnapshotRelPath = "internal/wire/schema.snapshot.json"

// wirePkgRel is the module-relative package the snapshot reflects.
const wirePkgRel = "internal/wire"

// SchemaField is one exported struct field as it appears on the wire.
type SchemaField struct {
	Name string `json:"name"`
	Type string `json:"type"`
	// JSON is the field's full json struct tag value ("bench",
	// "apps,omitempty"); empty when untagged (encoding/json then uses the
	// field name).
	JSON string `json:"json,omitempty"`
}

// SchemaType is the field list of one exported struct, in declaration order.
type SchemaType struct {
	Fields []SchemaField `json:"fields"`
}

// Schema is the canonical shape of the wire package's exported structs.
type Schema struct {
	// SchemaVersion mirrors wire.SchemaVersion at snapshot time.
	SchemaVersion int `json:"schemaVersion"`
	// Package is the reflected package's import path.
	Package string `json:"package"`
	// Types maps exported struct names to their wire shape.
	Types map[string]SchemaType `json:"types"`
}

// ExtractSchema builds the Schema of the given loaded package from its type
// information: every exported struct type, every exported field (unexported
// fields never reach the wire), field types rendered relative to the
// package.
func ExtractSchema(p *Package) (Schema, error) {
	s := Schema{Package: p.Path, Types: map[string]SchemaType{}}
	scope := p.Types.Scope()
	qual := types.RelativeTo(p.Types)
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		tn, ok := obj.(*types.TypeName)
		if !ok || !tn.Exported() || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var fields []SchemaField
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			tag := reflect.StructTag(st.Tag(i)).Get("json")
			if tag == "-" {
				continue // explicitly not on the wire
			}
			fields = append(fields, SchemaField{
				Name: f.Name(),
				Type: types.TypeString(f.Type(), qual),
				JSON: tag,
			})
		}
		s.Types[name] = SchemaType{Fields: fields}
	}
	if c, ok := scope.Lookup("SchemaVersion").(*types.Const); ok {
		if v, err := fmt.Sscan(c.Val().ExactString(), &s.SchemaVersion); v != 1 || err != nil {
			return s, fmt.Errorf("lint: parsing SchemaVersion %s: %w", c.Val().ExactString(), err)
		}
	}
	return s, nil
}

// MarshalSchema renders the schema as stable, indented JSON with a trailing
// newline (map keys sort under encoding/json, so output is byte-stable).
func MarshalSchema(s Schema) ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CompareSchemas lists every backward-incompatible difference going from old
// (the committed snapshot) to new (the current tree): removed types, removed
// or renamed fields, re-typed fields, changed JSON tags, and a schema
// version moving backwards. Additions are compatible and produce nothing.
func CompareSchemas(old, new Schema) []string {
	var problems []string
	if new.SchemaVersion < old.SchemaVersion {
		problems = append(problems, fmt.Sprintf(
			"SchemaVersion went backwards: snapshot %d, tree %d", old.SchemaVersion, new.SchemaVersion))
	}
	names := make([]string, 0, len(old.Types))
	for name := range old.Types {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ot := old.Types[name]
		nt, ok := new.Types[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("type %s was removed", name))
			continue
		}
		byName := map[string]SchemaField{}
		for _, f := range nt.Fields {
			byName[f.Name] = f
		}
		for _, of := range ot.Fields {
			nf, ok := byName[of.Name]
			if !ok {
				problems = append(problems, fmt.Sprintf("field %s.%s was removed or renamed", name, of.Name))
				continue
			}
			if nf.Type != of.Type {
				problems = append(problems, fmt.Sprintf(
					"field %s.%s changed type: %s -> %s", name, of.Name, of.Type, nf.Type))
			}
			if nf.JSON != of.JSON {
				problems = append(problems, fmt.Sprintf(
					"field %s.%s changed JSON tag: %q -> %q", name, of.Name, of.JSON, nf.JSON))
			}
		}
	}
	return problems
}

// WriteSchemaSnapshot regenerates the committed snapshot from the tree.
func WriteSchemaSnapshot(l *Loader) error {
	s, err := loadWireSchema(l)
	if err != nil {
		return err
	}
	b, err := MarshalSchema(s)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(l.ModRoot, filepath.FromSlash(SnapshotRelPath)), b, 0o644)
}

// CheckSchemaSnapshot runs the wire-schema compatibility gate: the current
// tree's schema must be backward compatible with the committed snapshot, and
// the snapshot must be regenerated when the schema grows (additive drift),
// so the committed file always matches the tree. Findings come back as
// diagnostics anchored on the snapshot file.
func CheckSchemaSnapshot(l *Loader) ([]Diagnostic, error) {
	current, err := loadWireSchema(l)
	if err != nil {
		return nil, err
	}
	snapPath := filepath.Join(l.ModRoot, filepath.FromSlash(SnapshotRelPath))
	data, err := os.ReadFile(snapPath)
	if err != nil {
		return nil, fmt.Errorf("lint: reading schema snapshot (generate with hilp-lint -schema-snapshot): %w", err)
	}
	var committed Schema
	if err := json.Unmarshal(data, &committed); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %w", SnapshotRelPath, err)
	}
	diag := func(format string, args ...any) Diagnostic {
		return Diagnostic{Analyzer: "wireschema", File: SnapshotRelPath, Line: 1, Col: 1,
			Message: fmt.Sprintf(format, args...)}
	}
	var out []Diagnostic
	for _, problem := range CompareSchemas(committed, current) {
		out = append(out, diag("breaking wire-schema change: %s (the schema is additive-only)", problem))
	}
	if len(out) == 0 {
		want, err := MarshalSchema(current)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(data)) {
			out = append(out, diag(
				"schema snapshot is stale (additive drift); regenerate with `go run ./cmd/hilp-lint -schema-snapshot`"))
		}
	}
	return out, nil
}

// loadWireSchema loads and reflects the module's wire package.
func loadWireSchema(l *Loader) (Schema, error) {
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(wirePkgRel))
	p, err := l.Load(l.ModPath+"/"+wirePkgRel, dir)
	if err != nil {
		return Schema{}, err
	}
	if p == nil {
		return Schema{}, fmt.Errorf("lint: wire package not found at %s", dir)
	}
	return ExtractSchema(p)
}
