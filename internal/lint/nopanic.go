package lint

import (
	"go/ast"
	"strings"
)

// nopanicScope lists the packages that spawn goroutines around the solver:
// a panic escaping one of them would take down the whole serving process,
// bypassing the PR 4 panic-isolation ladder (scheduler.Solve, sweep workers,
// hilp.Solve, the hilp-serve pool all convert panics to errors).
var nopanicScope = []string{
	"internal/server",
	"internal/dse",
	"internal/obs",
}

// NoPanic requires every `go func` literal in the scoped packages to begin
// with a deferred recover helper: the leading run of defer statements must
// include either an inline func literal that calls recover() or a call to a
// named helper (a name containing "Recover", or the obs.Context.Guard
// helper). `go name()` launches are not flagged — the named function is
// expected to guard itself and is checked at its own declaration when it is
// a literal.
const noPanicName = "nopanic"

var NoPanic = &Analyzer{
	Name: noPanicName,
	Doc:  "goroutine literals in server/dse/obs must begin with a deferred recover helper",
	Run:  runNoPanic,
}

func runNoPanic(p *Package) []Diagnostic {
	if !pathInScope(p.Path, nopanicScope...) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !leadingDefersRecover(p, fl) {
				out = append(out, p.Diag(noPanicName, g.Pos(),
					"goroutine literal must begin with a deferred recover helper (defer obs.Context.Guard or an inline recover)"))
			}
			return true
		})
	}
	return out
}

// leadingDefersRecover reports whether the literal's leading defer
// statements include a recover helper.
func leadingDefersRecover(p *Package, fl *ast.FuncLit) bool {
	for _, st := range fl.Body.List {
		ds, ok := st.(*ast.DeferStmt)
		if !ok {
			return false
		}
		if isRecoverHelper(p, ds.Call) {
			return true
		}
	}
	return false
}

// isRecoverHelper recognizes the two accepted guard forms: an inline func
// literal containing a direct recover() call, and a deferred call to a
// helper whose name contains "Recover" or is Guard.
func isRecoverHelper(p *Package, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return callsRecover(p, fun)
	case *ast.Ident:
		return helperName(fun.Name)
	case *ast.SelectorExpr:
		return helperName(fun.Sel.Name)
	}
	return false
}

func helperName(name string) bool {
	return name == "Guard" || strings.Contains(name, "Recover") || strings.Contains(name, "recover")
}

// callsRecover reports whether the literal's body calls the recover builtin.
func callsRecover(p *Package, fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" && p.Info.Uses[id] != nil {
			found = true
		}
		return !found
	})
	return found
}
