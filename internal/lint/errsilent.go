package lint

import (
	"go/ast"
	"go/types"
)

// errsilentScope lists the durability layers: the write-ahead journal and
// the serving process that owns it. A dropped Sync/Close/Flush/Write error
// there means a checkpoint believed durable may not be, so every error
// result must be consumed — returned, joined, or logged — never discarded.
var errsilentScope = []string{
	"internal/journal",
	"internal/server",
}

// errMethods are the I/O completion methods whose errors must be handled.
var errMethods = map[string]bool{
	"Sync":  true,
	"Close": true,
	"Flush": true,
	"Write": true,
}

// ErrSilent flags discarded error results from Sync, Close, Flush, and Write
// calls in the crash-recovery layers: bare call statements, deferred calls,
// and error positions assigned to the blank identifier. Calls on sinks whose
// listed methods cannot fail (hash.Hash implementations, *bytes.Buffer,
// *strings.Builder) are exempt, as are calls with no error result at all
// (http.Flusher.Flush).
const errSilentName = "errsilent"

var ErrSilent = &Analyzer{
	Name: errSilentName,
	Doc:  "journal/server code must not discard Sync/Close/Flush/Write errors",
	Run:  runErrSilent,
}

func runErrSilent(p *Package) []Diagnostic {
	if !pathInScope(p.Path, errsilentScope...) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					out = append(out, checkDiscardedCall(p, call, "discarded")...)
				}
			case *ast.DeferStmt:
				out = append(out, checkDiscardedCall(p, n.Call, "discarded by defer")...)
			case *ast.GoStmt:
				out = append(out, checkDiscardedCall(p, n.Call, "discarded by go")...)
			case *ast.AssignStmt:
				out = append(out, checkBlankAssign(p, n)...)
			}
			return true
		})
	}
	return out
}

// checkDiscardedCall flags a statement-position call whose error result is
// dropped entirely.
func checkDiscardedCall(p *Package, call *ast.CallExpr, how string) []Diagnostic {
	name, ok := errProneCall(p, call)
	if !ok {
		return nil
	}
	return []Diagnostic{p.Diag(errSilentName, call.Pos(),
		"error from %s %s; the crash-recovery layer must return, join, or log it", name, how)}
}

// checkBlankAssign flags assignments whose error positions land in the blank
// identifier, e.g. `_ = f.Close()` or `n, _ := w.Write(b)`.
func checkBlankAssign(p *Package, as *ast.AssignStmt) []Diagnostic {
	// Only the single-call form can discard a call's error via blanks:
	// x, err := f() or _ = f().
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	name, ok := errProneCall(p, call)
	if !ok {
		return nil
	}
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil
	}
	results := sig.Results()
	if len(as.Lhs) != results.Len() {
		return nil
	}
	for i := 0; i < results.Len(); i++ {
		if !isErrorType(results.At(i).Type()) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			return []Diagnostic{p.Diag(errSilentName, call.Pos(),
				"error from %s assigned to _; the crash-recovery layer must return, join, or log it", name)}
		}
	}
	return nil
}

// errProneCall reports whether call is a Sync/Close/Flush/Write selector
// call that returns an error and is not on an infallible sink. It returns a
// printable receiver.Method name.
func errProneCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !errMethods[sel.Sel.Name] {
		return "", false
	}
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return "", false
	}
	hasErr := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			hasErr = true
		}
	}
	if !hasErr {
		return "", false
	}
	if recv := p.Info.TypeOf(sel.X); recv != nil && infallibleSink(recv) {
		return "", false
	}
	return exprString(sel.X) + "." + sel.Sel.Name, true
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// infallibleSink reports whether t's documented contract is that the listed
// methods never return a non-nil error: hash.Hash implementations (Write
// "never returns an error" per the hash package docs), bytes.Buffer, and
// strings.Builder.
func infallibleSink(t types.Type) bool {
	switch t.String() {
	case "*bytes.Buffer", "bytes.Buffer", "*strings.Builder", "strings.Builder":
		return true
	}
	// hash.Hash (and hash.Hash32/64) shaped: Sum plus BlockSize methods.
	ms := types.NewMethodSet(t)
	hasSum, hasBlockSize := false, false
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Sum":
			hasSum = true
		case "BlockSize":
			hasBlockSize = true
		}
	}
	return hasSum && hasBlockSize
}

// exprString renders simple receiver expressions (identifiers and dotted
// chains) for diagnostics; anything else degrades to a placeholder.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "(expr)"
}
