package lint

import (
	"go/ast"
	"go/types"
)

// nodetermScope lists the packages whose outputs must be byte-deterministic:
// run reports and gap certificates (PR 2) are diffed and golden-file tested,
// so nothing in these packages may consult the wall clock, the global
// math/rand source, or emit output in map-iteration order. internal/obs and
// other wall-clock telemetry live outside this scope by design.
var nodetermScope = []string{
	"internal/report",
	"internal/scheduler",
	"internal/core",
	"internal/milp",
}

// randConstructors are the math/rand package functions that build seeded
// local sources; those are the deterministic way to use the package.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// outputCalls are method/function names that emit into an ordered sink; a
// map-range loop calling one of these produces map-iteration-ordered output.
var outputCalls = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": false, // Sprint* build strings, order-dependent only if accumulated; handled by the append rule
}

// NoDeterm enforces the byte-determinism contract of the report/solver
// pipeline: within the deterministic packages, no time.Now/time.Since, no
// global math/rand functions (seeded rand.New(rand.NewSource(...)) locals
// are fine), and no map iteration that feeds an ordered output — either
// writing inside the loop or accumulating a slice that is never sorted.
const noDetermName = "nodeterm"

var NoDeterm = &Analyzer{
	Name: noDetermName,
	Doc:  "no wall clock, global math/rand, or map-ordered output in deterministic packages",
	Run:  runNoDeterm,
}

func runNoDeterm(p *Package) []Diagnostic {
	if !pathInScope(p.Path, nodetermScope...) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		if p.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				out = append(out, checkDetermCall(p, n)...)
			case *ast.BlockStmt:
				out = append(out, checkMapRanges(p, n.List)...)
			case *ast.CaseClause:
				out = append(out, checkMapRanges(p, n.Body)...)
			case *ast.CommClause:
				out = append(out, checkMapRanges(p, n.Body)...)
			}
			return true
		})
	}
	return out
}

// checkDetermCall flags wall-clock reads and global math/rand calls.
func checkDetermCall(p *Package, call *ast.CallExpr) []Diagnostic {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
			return []Diagnostic{p.Diag(noDetermName, call.Pos(),
				"time.%s in deterministic path; inject a clock or derive deadlines from the context", fn.Name())}
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return []Diagnostic{p.Diag(noDetermName, call.Pos(),
				"global rand.%s in deterministic path; use a seeded rand.New(rand.NewSource(seed))", fn.Name())}
		}
	}
	return nil
}

// checkMapRanges scans one statement list for range-over-map loops that feed
// ordered output: a write call inside the body, or an append to an outer
// slice that no later statement of the same list sorts.
func checkMapRanges(p *Package, stmts []ast.Stmt) []Diagnostic {
	var out []Diagnostic
	for i, st := range stmts {
		rs, ok := st.(*ast.RangeStmt)
		if !ok {
			continue
		}
		if t := p.Info.TypeOf(rs.X); t == nil {
			continue
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		// Writes into an ordered sink inside the loop body are
		// order-dependent no matter what happens afterwards.
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !outputCalls[sel.Sel.Name] {
				return true
			}
			// Writes into hash/buffer/stream sinks are all order-dependent;
			// only map/set insertion and commutative accumulation are safe.
			out = append(out, p.Diag(noDetermName, call.Pos(),
				"map iteration feeds %s; iterate sorted keys instead", sel.Sel.Name))
			return true
		})
		// Appends to outer slices are fine only when a later statement in
		// this block sorts the slice.
		for _, obj := range mapLoopAppendTargets(p, rs) {
			if !sortedLater(p, stmts[i+1:], obj) {
				out = append(out, p.Diag(noDetermName, rs.Pos(),
					"map iteration appends to %s, which is never sorted afterwards; sort it or iterate sorted keys", obj.Name()))
			}
		}
	}
	return out
}

// mapLoopAppendTargets returns the variables declared outside the range loop
// that its body appends to.
func mapLoopAppendTargets(p *Package, rs *ast.RangeStmt) []*types.Var {
	var targets []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return true
		}
		if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		argID, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[argID].(*types.Var)
		if !ok || seen[v] {
			return true
		}
		if v.Pos() >= rs.Pos() && v.Pos() <= rs.End() {
			return true // declared inside the loop; dies with the iteration
		}
		seen[v] = true
		targets = append(targets, v)
		return true
	})
	return targets
}

// sortedLater reports whether any of the statements passes v to a sort/slices
// ordering function.
func sortedLater(p *Package, stmts []ast.Stmt, v *types.Var) bool {
	for _, st := range stmts {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && p.Info.Uses[id] == v {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
