// Package dse runs design-space sweeps over SoC configurations with HILP,
// MultiAmdahl, or Gables as the evaluation model, extracts area/performance
// Pareto fronts, and classifies accelerator mixes the way the paper
// color-codes its Figure 7 (GPU-dominated, DSA-dominated, mixed).
package dse

import (
	"context"
	"log/slog"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"hilp/internal/baselines"
	"hilp/internal/core"
	"hilp/internal/faults"
	"hilp/internal/obs"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// Mix classifies the accelerator area mix of an SoC (paper Fig. 7: a point
// is GPU-dominated when the GPU takes > 75% of accelerator area,
// DSA-dominated when DSAs do, mixed otherwise).
type Mix int

// Accelerator mixes.
const (
	NoAccel Mix = iota
	GPUDominated
	DSADominated
	MixedAccel
)

// String names the mix.
func (m Mix) String() string {
	switch m {
	case NoAccel:
		return "cpu-only"
	case GPUDominated:
		return "gpu-dominated"
	case DSADominated:
		return "dsa-dominated"
	case MixedAccel:
		return "mixed"
	}
	return "unknown"
}

// Classify computes the accelerator mix of a spec.
func Classify(s soc.Spec) Mix {
	gpuArea := float64(s.GPUSMs) * soc.GPUSMAreaMM2
	dsaArea := 0.0
	for _, d := range s.DSAs {
		dsaArea += float64(d.PEs) * soc.DSAPEAreaMM2
	}
	total := gpuArea + dsaArea
	switch {
	case total == 0:
		return NoAccel
	case gpuArea > 0.75*total:
		return GPUDominated
	case dsaArea > 0.75*total:
		return DSADominated
	default:
		return MixedAccel
	}
}

// Point is one evaluated SoC configuration.
type Point struct {
	Spec        soc.Spec
	Label       string
	AreaMM2     float64
	Speedup     float64
	WLP         float64
	Gap         float64
	MakespanSec float64
	Mix         Mix
	// Cancelled is true when the evaluation was cut short by context
	// cancellation: the metrics are the best incumbent's, not converged ones.
	Cancelled bool
	// Degraded is true when the point's solve fell back to the heuristic
	// scheduler after the primary solver failed; the metrics are valid but
	// the gap is typically looser.
	Degraded bool
	// FallbackReason classifies the degradation; empty unless Degraded.
	FallbackReason string
	// RequestID is the point's correlation ID: every log line, span, and
	// metric exemplar the point's solve emitted carries it. Under a
	// request-scoped sweep (hilp-serve) it extends the request's ID as
	// "<request>/p<i>"; standalone observed sweeps generate fresh IDs; fully
	// disabled sweeps leave it empty.
	RequestID string
	Err       error
}

// Evaluator scores one SoC configuration. The context bounds the
// evaluation; implementations built on core.Solve return their best
// incumbent (with Point.Err nil) when it is cancelled mid-solve.
type Evaluator func(ctx context.Context, s soc.Spec) Point

// Progress is one live update of a running sweep, delivered after every
// completed evaluation.
type Progress struct {
	// Done and Total count completed and requested evaluations.
	Done, Total int
	// Best is the highest-speedup successful point so far; HasBest is false
	// until one succeeds.
	Best    Point
	HasBest bool
	// Elapsed is the wall-clock time since the sweep started; ETA is the
	// remaining time extrapolated from the completed points.
	Elapsed, ETA time.Duration
}

// SweepOptions configures SweepOpts beyond the evaluator itself.
type SweepOptions struct {
	// Workers is the goroutine fan-out; < 1 selects runtime.GOMAXPROCS(0).
	Workers int
	// Obs receives the sweep span and per-point metrics; nil disables them.
	Obs *obs.Context
	// OnProgress, when non-nil, is called after every completed point.
	// Calls are serialized and Done is strictly increasing.
	OnProgress func(Progress)
}

// Sweep evaluates every spec, fanning out across workers goroutines, and
// returns points in input order. workers < 1 selects runtime.GOMAXPROCS(0).
// Failed evaluations carry their error in Point.Err and are skipped by
// ParetoFront.
//
// Cancelling ctx stops the sweep dispatching new specs: in-flight
// evaluations finish (returning their best incumbents — see Evaluator), and
// every spec never dispatched comes back with Point.Err set to the context
// error, so completed points are preserved and unevaluated ones are
// distinguishable.
func Sweep(ctx context.Context, specs []soc.Spec, workers int, eval Evaluator) []Point {
	return SweepOpts(ctx, specs, SweepOptions{Workers: workers}, eval)
}

// SweepOpts is Sweep with observability: a sweep span, per-point latency and
// failure metrics, and a live progress callback.
func SweepOpts(ctx context.Context, specs []soc.Spec, opts SweepOptions, eval Evaluator) []Point {
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	octx := opts.Obs
	sp := octx.StartSpan("sweep").ArgInt("points", len(specs)).ArgInt("workers", workers)
	defer sp.End()
	if sp.Active() {
		if id := obs.RequestID(ctx); id != "" {
			sp.ArgStr("req", id)
		}
	}
	octx.Log(ctx, slog.LevelInfo, "sweep: starting", "points", len(specs), "workers", workers)
	octx.Publish(obs.BusEvent{Kind: "sweep", Name: "start", Req: obs.RequestID(ctx), Total: len(specs)})

	pointCtr := octx.Counter(obs.MSweepPoints)
	failCtr := octx.Counter(obs.MSweepPointsFailed)
	latency := octx.Histogram(obs.MSweepPointSec)
	// Per-point timing is only needed when a sink will see it. A bus counts
	// even without current subscribers: SSE clients attach mid-sweep.
	hasBus := octx != nil && octx.Bus != nil
	timed := opts.OnProgress != nil || (octx != nil && octx.Metrics != nil) || hasBus

	start := time.Now()
	var (
		progressMu sync.Mutex
		done       int
		best       Point
		hasBest    bool
	)
	// Per-point correlation IDs: under a request-scoped context each point
	// extends the request's ID, so a slow or degraded sweep point in
	// /debug/requests traces back to its logs and spans; a standalone
	// observed sweep (hilp-dse -v, -faults) generates fresh IDs so chaos
	// runs are cross-referenceable too. Fully disabled sweeps skip the ID
	// machinery entirely to preserve the no-overhead contract.
	parentID := obs.RequestID(ctx)
	pointID := func(i int) string {
		if parentID != "" {
			return parentID + "/p" + strconv.Itoa(i)
		}
		if octx.Enabled() {
			return obs.NewRequestID()
		}
		return ""
	}
	// evalOne isolates one evaluation: a panicking evaluator poisons only its
	// own point (Err set to a *scheduler.PanicError with the stack attached),
	// never the worker goroutine, so a sweep finishes with N-1 good points.
	// Each point is keyed into the fault injector (if any) by its index, so
	// chaos tests can account for exactly which points were hit.
	evalOne := func(i int, pid string) (p Point) {
		pctx := faults.WithKey(ctx, uint64(i))
		pctx = obs.WithRequestID(pctx, pid)
		defer func() {
			if r := recover(); r != nil {
				pe := scheduler.NewPanicError("dse.Sweep", r)
				octx.Counter(obs.MSweepPanics).Inc()
				octx.Log(pctx, slog.LevelError, "sweep: point panicked",
					"point", i, "spec", specs[i].Label(), "error", pe.Error(), "stack", string(pe.Stack))
				p = newPoint(specs[i])
				p.Err = pe
			}
		}()
		return eval(pctx, specs[i])
	}
	points := make([]Point, len(specs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var t0 time.Time
				if timed {
					t0 = time.Now()
				}
				pid := pointID(i)
				p := evalOne(i, pid)
				p.RequestID = pid
				points[i] = p
				pointCtr.Inc()
				if p.Err != nil {
					failCtr.Inc()
				}
				if !timed {
					continue
				}
				durSec := time.Since(t0).Seconds()
				latency.ObserveEx(durSec, pid)
				if opts.OnProgress == nil && !hasBus {
					continue
				}
				progressMu.Lock()
				done++
				improved := p.Err == nil && (!hasBest || p.Speedup > best.Speedup)
				if improved {
					best = p
					hasBest = true
				}
				if hasBus {
					status := "ok"
					switch {
					case p.Err != nil:
						status = "failed"
					case p.Cancelled:
						status = "cancelled"
					case p.Degraded:
						status = "degraded"
					}
					octx.Publish(obs.BusEvent{Kind: "point", Name: p.Label, Req: pid, Iter: i,
						Value: p.Speedup, Gap: p.Gap, Done: done, Total: len(specs), DurSec: durSec, Status: status})
					if improved {
						octx.Publish(obs.BusEvent{Kind: "incumbent", Name: best.Label, Req: pid,
							Value: best.Speedup, Gap: best.Gap, Done: done, Total: len(specs)})
					}
				}
				if opts.OnProgress != nil {
					prog := Progress{
						Done:    done,
						Total:   len(specs),
						Best:    best,
						HasBest: hasBest,
						Elapsed: time.Since(start),
					}
					if done > 0 {
						prog.ETA = prog.Elapsed / time.Duration(done) * time.Duration(len(specs)-done)
					}
					opts.OnProgress(prog)
				}
				progressMu.Unlock()
			}
		}()
	}
	dispatched := len(specs)
feed:
	for i := range specs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			dispatched = i
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	// Mark never-dispatched specs so callers can tell them from evaluated
	// points; their labels are still filled in for reporting.
	for i := dispatched; i < len(specs); i++ {
		p := newPoint(specs[i])
		p.Err = ctx.Err()
		points[i] = p
	}
	if hasBus {
		status := "done"
		if ctx.Err() != nil {
			status = "cancelled"
		}
		octx.Publish(obs.BusEvent{Kind: "sweep", Name: "done", Req: parentID,
			Done: dispatched, Total: len(specs), DurSec: time.Since(start).Seconds(), Status: status})
	}
	return points
}

// ParetoFront returns the subset of points that are Pareto-optimal for
// (minimize area, maximize speedup), sorted by ascending area. Errored
// points are excluded.
func ParetoFront(points []Point) []Point {
	var ok []Point
	for _, p := range points {
		if p.Err == nil {
			ok = append(ok, p)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].AreaMM2 != ok[j].AreaMM2 {
			return ok[i].AreaMM2 < ok[j].AreaMM2
		}
		return ok[i].Speedup > ok[j].Speedup
	})
	var front []Point
	best := -1.0
	for _, p := range ok {
		if p.Speedup > best+1e-12 {
			front = append(front, p)
			best = p.Speedup
		}
	}
	return front
}

// Best returns the highest-speedup point, breaking ties toward smaller area.
// The boolean is false when no point evaluated successfully.
func Best(points []Point) (Point, bool) {
	found := false
	var best Point
	for _, p := range points {
		if p.Err != nil {
			continue
		}
		if !found || p.Speedup > best.Speedup+1e-12 ||
			(p.Speedup > best.Speedup-1e-12 && p.AreaMM2 < best.AreaMM2) {
			best = p
			found = true
		}
	}
	return best, found
}

// HILPEvaluator builds an Evaluator that scores SoCs with HILP.
func HILPEvaluator(w rodinia.Workload, profile core.Profile, cfg scheduler.Config) Evaluator {
	return func(ctx context.Context, s soc.Spec) Point {
		p := newPoint(s)
		res, err := core.Solve(ctx, w, s, profile, cfg)
		if err != nil {
			p.Err = err
			return p
		}
		p.Speedup = res.Speedup
		p.WLP = res.WLP
		p.Gap = res.Gap
		p.MakespanSec = res.MakespanSec
		p.Cancelled = res.Cancelled
		p.Degraded = res.Degraded
		p.FallbackReason = res.FallbackReason
		return p
	}
}

// GablesEvaluator builds an Evaluator that scores SoCs with parallel-mode
// Gables.
func GablesEvaluator(w rodinia.Workload, profile core.Profile, cfg scheduler.Config) Evaluator {
	return func(ctx context.Context, s soc.Spec) Point {
		p := newPoint(s)
		res, err := baselines.Gables(ctx, w, s, profile, cfg)
		if err != nil {
			p.Err = err
			return p
		}
		p.Speedup = res.Speedup
		p.WLP = res.WLP
		p.Gap = res.Gap
		p.MakespanSec = res.MakespanSec
		p.Cancelled = res.Cancelled
		return p
	}
}

// MAEvaluator builds an Evaluator that scores SoCs with MultiAmdahl.
func MAEvaluator(w rodinia.Workload) Evaluator {
	return func(ctx context.Context, s soc.Spec) Point {
		_ = ctx // MultiAmdahl is analytic: nothing to cancel
		p := newPoint(s)
		res, err := baselines.MultiAmdahl(w, s)
		if err != nil {
			p.Err = err
			return p
		}
		p.Speedup = res.Speedup
		p.WLP = res.WLP
		p.MakespanSec = res.MakespanSec
		return p
	}
}

func newPoint(s soc.Spec) Point {
	return Point{Spec: s, Label: s.Label(), AreaMM2: s.AreaMM2(), Mix: Classify(s)}
}
