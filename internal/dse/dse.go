// Package dse runs design-space sweeps over SoC configurations with HILP,
// MultiAmdahl, or Gables as the evaluation model, extracts area/performance
// Pareto fronts, and classifies accelerator mixes the way the paper
// color-codes its Figure 7 (GPU-dominated, DSA-dominated, mixed).
package dse

import (
	"context"
	"sort"
	"time"

	"hilp/internal/baselines"
	"hilp/internal/core"
	"hilp/internal/obs"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// Mix classifies the accelerator area mix of an SoC (paper Fig. 7: a point
// is GPU-dominated when the GPU takes > 75% of accelerator area,
// DSA-dominated when DSAs do, mixed otherwise).
type Mix int

// Accelerator mixes.
const (
	NoAccel Mix = iota
	GPUDominated
	DSADominated
	MixedAccel
)

// String names the mix.
func (m Mix) String() string {
	switch m {
	case NoAccel:
		return "cpu-only"
	case GPUDominated:
		return "gpu-dominated"
	case DSADominated:
		return "dsa-dominated"
	case MixedAccel:
		return "mixed"
	}
	return "unknown"
}

// Classify computes the accelerator mix of a spec.
func Classify(s soc.Spec) Mix {
	gpuArea := float64(s.GPUSMs) * soc.GPUSMAreaMM2
	dsaArea := 0.0
	for _, d := range s.DSAs {
		dsaArea += float64(d.PEs) * soc.DSAPEAreaMM2
	}
	total := gpuArea + dsaArea
	switch {
	case total == 0:
		return NoAccel
	case gpuArea > 0.75*total:
		return GPUDominated
	case dsaArea > 0.75*total:
		return DSADominated
	default:
		return MixedAccel
	}
}

// Point is one evaluated SoC configuration.
type Point struct {
	Spec        soc.Spec
	Label       string
	AreaMM2     float64
	Speedup     float64
	WLP         float64
	Gap         float64
	MakespanSec float64
	Mix         Mix
	// Cancelled is true when the evaluation was cut short by context
	// cancellation: the metrics are the best incumbent's, not converged ones.
	Cancelled bool
	// Degraded is true when the point's solve fell back to the heuristic
	// scheduler after the primary solver failed; the metrics are valid but
	// the gap is typically looser.
	Degraded bool
	// FallbackReason classifies the degradation; empty unless Degraded.
	FallbackReason string
	// RequestID is the point's correlation ID: every log line, span, and
	// metric exemplar the point's solve emitted carries it. Under a
	// request-scoped sweep (hilp-serve) it extends the request's ID as
	// "<request>/p<i>"; standalone observed sweeps generate fresh IDs; fully
	// disabled sweeps leave it empty.
	RequestID string
	// CacheHit marks a point whose metrics were replayed byte-identically
	// from an earlier canonically-equivalent point of the same batch (the
	// RequestID is the donor's, tying the hit to the logs that actually
	// produced the numbers).
	CacheHit bool
	// WarmStarted marks a point whose search was seeded with a solved
	// neighbor's repaired schedule.
	WarmStarted bool
	// Pruned marks a point skipped by dominance pruning: it was never
	// solved, so Speedup/WLP/Gap/MakespanSec are zero. Instead SpeedupBound
	// certifies the best speedup the point could possibly achieve (from a
	// discretization-independent lower bound) and PrunedBy names the solved
	// point whose resource vector dominates this one. ParetoFront and Best
	// skip pruned points; the certificate guarantees they could not have
	// entered the front.
	Pruned       bool
	PrunedBy     string
	SpeedupBound float64
	// Resumed marks a point replayed verbatim from a crash-recovery journal
	// (BatchOptions.Resume) instead of re-solved. Identity fields (Spec,
	// Label, AreaMM2, Mix) are recomputed from the current spec; the metrics
	// are the prior run's.
	Resumed bool
	Err     error
}

// Evaluator scores one SoC configuration. The context bounds the
// evaluation; implementations built on core.Solve return their best
// incumbent (with Point.Err nil) when it is cancelled mid-solve.
type Evaluator func(ctx context.Context, s soc.Spec) Point

// Progress is one live update of a running sweep, delivered after every
// completed evaluation.
type Progress struct {
	// Done and Total count completed and requested evaluations.
	Done, Total int
	// Best is the highest-speedup successful point so far; HasBest is false
	// until one succeeds.
	Best    Point
	HasBest bool
	// Elapsed is the wall-clock time since the sweep started; ETA is the
	// remaining time extrapolated from the completed points.
	Elapsed, ETA time.Duration
}

// SweepOptions configures SweepOpts beyond the evaluator itself.
type SweepOptions struct {
	// Workers is the goroutine fan-out; < 1 selects runtime.GOMAXPROCS(0).
	Workers int
	// Obs receives the sweep span and per-point metrics; nil disables them.
	Obs *obs.Context
	// OnProgress, when non-nil, is called after every completed point.
	// Calls are serialized and Done is strictly increasing.
	OnProgress func(Progress)
}

// Sweep evaluates every spec, fanning out across workers goroutines, and
// returns points in input order. workers < 1 selects runtime.GOMAXPROCS(0).
// Failed evaluations carry their error in Point.Err and are skipped by
// ParetoFront.
//
// Cancelling ctx stops the sweep dispatching new specs: in-flight
// evaluations finish (returning their best incumbents — see Evaluator), and
// every spec never dispatched comes back with Point.Err set to the context
// error, so completed points are preserved and unevaluated ones are
// distinguishable.
func Sweep(ctx context.Context, specs []soc.Spec, workers int, eval Evaluator) []Point {
	return SweepOpts(ctx, specs, SweepOptions{Workers: workers}, eval)
}

// SweepOpts is Sweep with observability: a sweep span, per-point latency and
// failure metrics, and a live progress callback. It is a thin compatibility
// wrapper over the sweep engine (Run) with every cross-point reuse feature
// disabled; use RunHILP for cache/warm-start/pruning sweeps.
func SweepOpts(ctx context.Context, specs []soc.Spec, opts SweepOptions, eval Evaluator) []Point {
	return Run(ctx, specs, BatchOptions{
		Workers:    opts.Workers,
		Obs:        opts.Obs,
		OnProgress: opts.OnProgress,
	}, eval).Points
}

// ParetoFront returns the subset of points that are Pareto-optimal for
// (minimize area, maximize speedup), sorted by ascending area. Errored and
// pruned points are excluded (a pruned point's certificate guarantees it
// could not have entered the front).
func ParetoFront(points []Point) []Point {
	var ok []Point
	for _, p := range points {
		if p.Err == nil && !p.Pruned {
			ok = append(ok, p)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].AreaMM2 != ok[j].AreaMM2 {
			return ok[i].AreaMM2 < ok[j].AreaMM2
		}
		return ok[i].Speedup > ok[j].Speedup
	})
	var front []Point
	best := -1.0
	for _, p := range ok {
		if p.Speedup > best+1e-12 {
			front = append(front, p)
			best = p.Speedup
		}
	}
	return front
}

// Best returns the highest-speedup point, breaking ties toward smaller area.
// The boolean is false when no point evaluated successfully.
func Best(points []Point) (Point, bool) {
	found := false
	var best Point
	for _, p := range points {
		if p.Err != nil || p.Pruned {
			continue
		}
		if !found || p.Speedup > best.Speedup+1e-12 ||
			(p.Speedup > best.Speedup-1e-12 && p.AreaMM2 < best.AreaMM2) {
			best = p
			found = true
		}
	}
	return best, found
}

// HILPEvaluator builds an Evaluator that scores SoCs with HILP.
func HILPEvaluator(w rodinia.Workload, profile core.Profile, cfg scheduler.Config) Evaluator {
	return func(ctx context.Context, s soc.Spec) Point {
		p := newPoint(s)
		res, err := core.Solve(ctx, w, s, profile, cfg)
		if err != nil {
			p.Err = err
			return p
		}
		p.Speedup = res.Speedup
		p.WLP = res.WLP
		p.Gap = res.Gap
		p.MakespanSec = res.MakespanSec
		p.Cancelled = res.Cancelled
		p.Degraded = res.Degraded
		p.FallbackReason = res.FallbackReason
		return p
	}
}

// GablesEvaluator builds an Evaluator that scores SoCs with parallel-mode
// Gables.
func GablesEvaluator(w rodinia.Workload, profile core.Profile, cfg scheduler.Config) Evaluator {
	return func(ctx context.Context, s soc.Spec) Point {
		p := newPoint(s)
		res, err := baselines.Gables(ctx, w, s, profile, cfg)
		if err != nil {
			p.Err = err
			return p
		}
		p.Speedup = res.Speedup
		p.WLP = res.WLP
		p.Gap = res.Gap
		p.MakespanSec = res.MakespanSec
		p.Cancelled = res.Cancelled
		return p
	}
}

// MAEvaluator builds an Evaluator that scores SoCs with MultiAmdahl.
func MAEvaluator(w rodinia.Workload) Evaluator {
	return func(ctx context.Context, s soc.Spec) Point {
		_ = ctx // MultiAmdahl is analytic: nothing to cancel
		p := newPoint(s)
		res, err := baselines.MultiAmdahl(w, s)
		if err != nil {
			p.Err = err
			return p
		}
		p.Speedup = res.Speedup
		p.WLP = res.WLP
		p.MakespanSec = res.MakespanSec
		return p
	}
}

func newPoint(s soc.Spec) Point {
	return Point{Spec: s, Label: s.Label(), AreaMM2: s.AreaMM2(), Mix: Classify(s)}
}
