// Package dse runs design-space sweeps over SoC configurations with HILP,
// MultiAmdahl, or Gables as the evaluation model, extracts area/performance
// Pareto fronts, and classifies accelerator mixes the way the paper
// color-codes its Figure 7 (GPU-dominated, DSA-dominated, mixed).
package dse

import (
	"sort"
	"sync"

	"hilp/internal/baselines"
	"hilp/internal/core"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// Mix classifies the accelerator area mix of an SoC (paper Fig. 7: a point
// is GPU-dominated when the GPU takes > 75% of accelerator area,
// DSA-dominated when DSAs do, mixed otherwise).
type Mix int

// Accelerator mixes.
const (
	NoAccel Mix = iota
	GPUDominated
	DSADominated
	MixedAccel
)

// String names the mix.
func (m Mix) String() string {
	switch m {
	case NoAccel:
		return "cpu-only"
	case GPUDominated:
		return "gpu-dominated"
	case DSADominated:
		return "dsa-dominated"
	case MixedAccel:
		return "mixed"
	}
	return "unknown"
}

// Classify computes the accelerator mix of a spec.
func Classify(s soc.Spec) Mix {
	gpuArea := float64(s.GPUSMs) * soc.GPUSMAreaMM2
	dsaArea := 0.0
	for _, d := range s.DSAs {
		dsaArea += float64(d.PEs) * soc.DSAPEAreaMM2
	}
	total := gpuArea + dsaArea
	switch {
	case total == 0:
		return NoAccel
	case gpuArea > 0.75*total:
		return GPUDominated
	case dsaArea > 0.75*total:
		return DSADominated
	default:
		return MixedAccel
	}
}

// Point is one evaluated SoC configuration.
type Point struct {
	Spec        soc.Spec
	Label       string
	AreaMM2     float64
	Speedup     float64
	WLP         float64
	Gap         float64
	MakespanSec float64
	Mix         Mix
	Err         error
}

// Evaluator scores one SoC configuration.
type Evaluator func(soc.Spec) Point

// Sweep evaluates every spec, fanning out across workers goroutines, and
// returns points in input order. Failed evaluations carry their error in
// Point.Err and are skipped by ParetoFront.
func Sweep(specs []soc.Spec, workers int, eval Evaluator) []Point {
	if workers < 1 {
		workers = 1
	}
	points := make([]Point, len(specs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				points[i] = eval(specs[i])
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return points
}

// ParetoFront returns the subset of points that are Pareto-optimal for
// (minimize area, maximize speedup), sorted by ascending area. Errored
// points are excluded.
func ParetoFront(points []Point) []Point {
	var ok []Point
	for _, p := range points {
		if p.Err == nil {
			ok = append(ok, p)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].AreaMM2 != ok[j].AreaMM2 {
			return ok[i].AreaMM2 < ok[j].AreaMM2
		}
		return ok[i].Speedup > ok[j].Speedup
	})
	var front []Point
	best := -1.0
	for _, p := range ok {
		if p.Speedup > best+1e-12 {
			front = append(front, p)
			best = p.Speedup
		}
	}
	return front
}

// Best returns the highest-speedup point, breaking ties toward smaller area.
// The boolean is false when no point evaluated successfully.
func Best(points []Point) (Point, bool) {
	found := false
	var best Point
	for _, p := range points {
		if p.Err != nil {
			continue
		}
		if !found || p.Speedup > best.Speedup+1e-12 ||
			(p.Speedup > best.Speedup-1e-12 && p.AreaMM2 < best.AreaMM2) {
			best = p
			found = true
		}
	}
	return best, found
}

// HILPEvaluator builds an Evaluator that scores SoCs with HILP.
func HILPEvaluator(w rodinia.Workload, profile core.Profile, cfg scheduler.Config) Evaluator {
	return func(s soc.Spec) Point {
		p := newPoint(s)
		res, err := core.Solve(w, s, profile, cfg)
		if err != nil {
			p.Err = err
			return p
		}
		p.Speedup = res.Speedup
		p.WLP = res.WLP
		p.Gap = res.Gap
		p.MakespanSec = res.MakespanSec
		return p
	}
}

// GablesEvaluator builds an Evaluator that scores SoCs with parallel-mode
// Gables.
func GablesEvaluator(w rodinia.Workload, profile core.Profile, cfg scheduler.Config) Evaluator {
	return func(s soc.Spec) Point {
		p := newPoint(s)
		res, err := baselines.Gables(w, s, profile, cfg)
		if err != nil {
			p.Err = err
			return p
		}
		p.Speedup = res.Speedup
		p.WLP = res.WLP
		p.Gap = res.Gap
		p.MakespanSec = res.MakespanSec
		return p
	}
}

// MAEvaluator builds an Evaluator that scores SoCs with MultiAmdahl.
func MAEvaluator(w rodinia.Workload) Evaluator {
	return func(s soc.Spec) Point {
		p := newPoint(s)
		res, err := baselines.MultiAmdahl(w, s)
		if err != nil {
			p.Err = err
			return p
		}
		p.Speedup = res.Speedup
		p.WLP = res.WLP
		p.MakespanSec = res.MakespanSec
		return p
	}
}

func newPoint(s soc.Spec) Point {
	return Point{Spec: s, Label: s.Label(), AreaMM2: s.AreaMM2(), Mix: Classify(s)}
}
