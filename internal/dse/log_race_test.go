package dse

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"hilp/internal/obs"
	"hilp/internal/soc"
)

// lockedWriter serializes writes from concurrent sweep workers, so the test
// can decode whole JSON lines afterwards. (slog handlers already serialize
// per-record writes internally; the explicit mutex makes the test's own
// guarantee independent of that implementation detail.)
type lockedWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *lockedWriter) bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf.Bytes()...)
}

// TestConcurrentWorkersShareOneLogger drives many sweep workers through one
// shared structured logger and checks every emitted line is intact JSON with
// a per-point correlation ID. Run under -race (as CI does) it also proves the
// logger and the LogBuffer ring are data-race-free under worker fan-out.
func TestConcurrentWorkersShareOneLogger(t *testing.T) {
	w := &lockedWriter{}
	buf := obs.NewLogBuffer(1024)
	logger := obs.NewLoggerHandler(
		obs.StampRequestID(obs.Fanout(obs.NewHandler(w, "json", slog.LevelDebug), buf)),
		slog.LevelDebug,
	)
	octx := &obs.Context{Logger: logger, Metrics: obs.NewRegistry()}

	const n = 64
	specs := make([]soc.Spec, n)
	for i := range specs {
		specs[i] = soc.Spec{CPUCores: 1 + i%4, GPUSMs: 8, GPUFrequenciesMHz: []float64{300}}
	}
	eval := func(ctx context.Context, s soc.Spec) Point {
		// Every point logs through the one shared logger, concurrently.
		octx.Log(ctx, slog.LevelInfo, "point: evaluating", "label", s.Label())
		p := newPoint(s)
		p.Speedup = 1
		return p
	}
	ctx := obs.WithRequestID(context.Background(), "race-test")
	points := SweepOpts(ctx, specs, SweepOptions{Workers: 8, Obs: octx}, eval)

	seen := map[string]bool{}
	dec := json.NewDecoder(bytes.NewReader(w.bytes()))
	for {
		var rec map[string]any
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("corrupt JSON log line (interleaved write?): %v", err)
		}
		if msg, _ := rec["msg"].(string); msg != "point: evaluating" {
			continue
		}
		req, _ := rec["req"].(string)
		if !strings.HasPrefix(req, "race-test/p") {
			t.Fatalf("point log line lacks a derived correlation ID: %v", rec)
		}
		seen[req] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d distinct per-point IDs in the log, want %d", len(seen), n)
	}
	for i, p := range points {
		if !strings.HasPrefix(p.RequestID, "race-test/p") {
			t.Fatalf("point %d RequestID = %q, want race-test/p*", i, p.RequestID)
		}
	}
	// The shared ring captured the same records without racing the writers.
	if got := len(buf.Entries()); got < n {
		t.Fatalf("LogBuffer captured %d entries, want at least %d", got, n)
	}
}
