package dse

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"hilp/internal/soc"
)

func TestSweepCancelStopsDispatch(t *testing.T) {
	specs := make([]soc.Spec, 16)
	for i := range specs {
		specs[i] = soc.Spec{CPUCores: 1 + i%4}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var evaluated atomic.Int64
	// The evaluator cancels the sweep after the second evaluation, so with
	// one worker the dispatch loop must stop near the front of the list.
	eval := func(_ context.Context, s soc.Spec) Point {
		if evaluated.Add(1) == 2 {
			cancel()
		}
		return Point{Label: s.Label(), Speedup: 1}
	}
	points := Sweep(ctx, specs, 1, eval)
	defer cancel()

	if n := evaluated.Load(); n >= int64(len(specs)) {
		t.Fatalf("all %d specs evaluated despite cancellation", n)
	}
	var done, undispatched int
	for i, p := range points {
		switch {
		case p.Err == nil:
			done++
			if p.Speedup != 1 {
				t.Errorf("point %d lost its result: %+v", i, p)
			}
		case errors.Is(p.Err, context.Canceled):
			undispatched++
			if p.Label == "" {
				t.Errorf("undispatched point %d lacks a label", i)
			}
		default:
			t.Errorf("point %d unexpected error %v", i, p.Err)
		}
	}
	if done == 0 {
		t.Error("no completed points preserved")
	}
	if undispatched == 0 {
		t.Error("no undispatched points marked with the context error")
	}
	if done+undispatched != len(specs) {
		t.Errorf("%d done + %d undispatched != %d specs", done, undispatched, len(specs))
	}
}

func TestSweepPropagatesEvaluatorCancelledFlag(t *testing.T) {
	specs := []soc.Spec{{CPUCores: 1}, {CPUCores: 2}}
	eval := func(_ context.Context, s soc.Spec) Point {
		return Point{Label: s.Label(), Cancelled: true}
	}
	points := Sweep(context.Background(), specs, 1, eval)
	for i, p := range points {
		if !p.Cancelled {
			t.Errorf("point %d lost Cancelled flag", i)
		}
	}
}
