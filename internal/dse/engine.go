package dse

import (
	"context"
	"log/slog"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"hilp/internal/core"
	"hilp/internal/faults"
	"hilp/internal/obs"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
	"hilp/internal/wire"
)

// BatchOptions configures the sweep engine (Run, RunHILP). The zero value
// reproduces a plain cold sweep: every point solved independently, in input
// order, with no cross-point reuse.
type BatchOptions struct {
	// Workers is the goroutine fan-out; < 1 selects runtime.GOMAXPROCS(0).
	Workers int
	// Cache enables canonical-model memoization: points whose canonical
	// (workload, normalized spec) model hashes equal an earlier point's are
	// replayed byte-identically from that point instead of re-solved.
	Cache bool
	// WarmStart orders the sweep as a walk over the spec lattice and seeds
	// each point's search with the repaired incumbent schedule of its
	// nearest already-solved neighbor (HILP evaluations only).
	WarmStart bool
	// Prune skips points whose resource vector is dominated by an
	// already-solved point that met the gap target, when a certified
	// discretization-independent bound proves they could not enter the
	// Pareto front. Skipped points come back with Point.Pruned set and a
	// SpeedupBound certificate instead of solved metrics (HILP only).
	Prune bool
	// Obs receives the sweep span and per-point metrics; nil disables them.
	Obs *obs.Context
	// OnProgress, when non-nil, is called after every completed point.
	// Calls are serialized and Done is strictly increasing.
	OnProgress func(Progress)
	// OnPoint, when non-nil, is called once per completed point with its
	// input index — the checkpoint hook the crash-recovery journal appends
	// from. Calls are serialized (under the run's mutex) and cover solved,
	// cached, and pruned points; points the engine never dispatched (context
	// cancelled) and points pre-filled from Resume are not reported, so a
	// journal wired to OnPoint records each recovered result exactly once.
	OnPoint func(index int, p Point)
	// Resume pre-fills completed points from a prior run, keyed by input
	// index: they are marked Resumed, counted in Stats.Resumed, and excluded
	// from dispatch, so a resumed batch re-solves strictly fewer points.
	// Identity fields are recomputed from the current spec; callers are
	// responsible for only resuming against the same model (see the journal
	// ModelKey check in the binaries).
	Resume map[int]Point

	// hilp carries the model-aware context (workload, profile, solver
	// config) that warm starts and pruning need; nil for generic
	// evaluators, installed by RunHILP.
	hilp *hilpBatch
}

// hilpBatch is the HILP-specific half of a batch: what RunHILP knows that a
// generic Evaluator hides.
type hilpBatch struct {
	w         rodinia.Workload
	profile   core.Profile
	cfg       scheduler.Config
	seqSec    float64
	gapTarget float64
}

// BatchStats summarizes what the engine reused across one batch.
type BatchStats struct {
	// Points is the number of requested points; Solved is how many ran a
	// full solve (the rest were cache hits, pruned, or never dispatched).
	Points int `json:"points"`
	Solved int `json:"solved"`
	// CacheHits counts points replayed from a canonically-equivalent
	// earlier point; WarmStarted counts solves seeded with a neighbor's
	// schedule; Pruned counts points skipped with a certified bound.
	CacheHits   int `json:"cacheHits"`
	WarmStarted int `json:"warmStarted"`
	Pruned      int `json:"pruned"`
	// Resumed counts points pre-filled from a crash-recovery journal
	// (BatchOptions.Resume) instead of re-solved.
	Resumed int `json:"resumed,omitempty"`
}

// BatchResult is the outcome of Run/RunHILP: points in input order plus the
// engine's reuse statistics.
type BatchResult struct {
	Points []Point
	Stats  BatchStats
}

// RunHILP runs the sweep engine with full cross-point reuse: canonical-model
// memoization, neighbor warm starts, and certified dominance pruning, per
// opts. It is the engine behind hilp.SolveBatch and the hilp-serve
// /v1/batch route. With every feature disabled it is equivalent to
// Sweep(ctx, specs, workers, HILPEvaluator(w, profile, cfg)).
//
// Warm-started and pruned batches are result-equivalent to a cold sweep:
// every solved point carries its own valid gap certificate (warm seeds only
// change where the search starts, and a warm shortcut still certifies the
// gap target against the instance lower bound), and every pruned point
// carries a certified speedup bound proving it could not have entered the
// (area, speedup) Pareto front. With Workers > 1 the warm-start donor
// choice depends on completion order, so solved makespans may differ across
// runs within their gap certificates; use one worker for bit-reproducible
// sweeps.
func RunHILP(ctx context.Context, w rodinia.Workload, specs []soc.Spec, profile core.Profile, cfg scheduler.Config, opts BatchOptions) BatchResult {
	gt := cfg.GapTarget
	if gt == 0 {
		gt = 0.10
	}
	if opts.Obs == nil && cfg.Obs != nil {
		opts.Obs = cfg.Obs
	}
	opts.hilp = &hilpBatch{w: w, profile: profile, cfg: cfg, seqSec: w.SequentialSingleCoreSec(), gapTarget: gt}
	return Run(ctx, specs, opts, nil)
}

// Run is the engine's generic entry point: it evaluates every spec with
// eval (ignored when opts was built by RunHILP), honoring Workers, Obs,
// OnProgress, and — for canonically identical specs — Cache. WarmStart and
// Prune require model knowledge and are only active under RunHILP.
// Points come back in input order, like Sweep.
func Run(ctx context.Context, specs []soc.Spec, opts BatchOptions, eval Evaluator) BatchResult {
	if opts.hilp == nil {
		opts.WarmStart = false
		opts.Prune = false
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	octx := opts.Obs
	sp := octx.StartSpan("sweep").ArgInt("points", len(specs)).ArgInt("workers", workers)
	defer sp.End()
	if sp.Active() {
		if id := obs.RequestID(ctx); id != "" {
			sp.ArgStr("req", id)
		}
		if opts.Cache || opts.WarmStart || opts.Prune {
			sp.ArgStr("engine", engineLabel(opts))
		}
	}
	octx.Log(ctx, slog.LevelInfo, "sweep: starting",
		"points", len(specs), "workers", workers,
		"cache", opts.Cache, "warmStart", opts.WarmStart, "prune", opts.Prune)
	octx.Publish(obs.BusEvent{Kind: "sweep", Name: "start", Req: obs.RequestID(ctx), Total: len(specs)})

	r := &batchRun{
		ctx:     ctx,
		specs:   specs,
		opts:    opts,
		eval:    eval,
		octx:    octx,
		workers: workers,
		points:  make([]Point, len(specs)),
		start:   time.Now(),
		hasBus:  octx != nil && octx.Bus != nil,
	}
	r.timed = opts.OnProgress != nil || (octx != nil && octx.Metrics != nil) || r.hasBus
	r.parentID = obs.RequestID(ctx)
	r.stats.Points = len(specs)
	r.norm = make([]soc.Spec, len(specs))
	r.vecs = make([]latticeVec, len(specs))
	for i := range specs {
		r.norm[i] = specs[i].Normalize()
		r.vecs[i] = vecOf(r.norm[i])
	}

	// Pre-fill resumed points (crash recovery): their metrics replay
	// verbatim from the prior run, their identity fields are recomputed from
	// the current spec, and they never reach the dispatch order. Indices
	// ascend so resume bookkeeping is deterministic.
	isResumed := make([]bool, len(specs))
	for i := range specs {
		rp, ok := opts.Resume[i]
		if !ok {
			continue
		}
		rp.Spec = specs[i]
		rp.Label = specs[i].Label()
		rp.AreaMM2 = specs[i].AreaMM2()
		rp.Mix = Classify(specs[i])
		rp.Resumed = true
		r.points[i] = rp
		isResumed[i] = true
		r.stats.Resumed++
		octx.Counter(obs.MSweepPointsResumed).Inc()
		r.finishPoint(i, rp, 0, "resumed")
	}

	// The walk order groups the lattice family-by-family (cores, SMs, PE
	// class) with the largest DSA ladder rung first, so each point's
	// nearest solved neighbor is genuinely near and dominance donors are
	// solved before the points they could prune.
	order := make([]int, 0, len(specs))
	for i := range specs {
		if !isResumed[i] {
			order = append(order, i)
		}
	}
	if opts.WarmStart || opts.Prune {
		sort.SliceStable(order, func(a, b int) bool { return walkLess(r.vecs[order[a]], r.vecs[order[b]]) })
	}

	// Canonical-model memoization is a two-pass split: the first index of
	// each canonical key is the owner and solves normally; followers replay
	// the owner's result byte-identically when it is clean, and fall back
	// to a second solve round when it is not (errored, cancelled, or
	// degraded results are never cached, mirroring the hilp-serve LRU).
	owners := order
	followerOf := map[int][]int{}
	if opts.Cache {
		owners = owners[:0:0]
		firstByKey := map[string]int{}
		for _, i := range order {
			k := r.pointKey(i)
			if k == "" {
				owners = append(owners, i)
				continue
			}
			if o, dup := firstByKey[k]; dup {
				followerOf[o] = append(followerOf[o], i)
			} else {
				firstByKey[k] = i
				owners = append(owners, i)
			}
		}
	}

	r.dispatch(owners)

	var second []int
	for _, o := range owners {
		for _, f := range followerOf[o] {
			op := r.points[o]
			if op.Err == nil && !op.Cancelled && !op.Degraded {
				cp := op
				cp.Spec = specs[f]
				cp.Label = specs[f].Label()
				cp.AreaMM2 = specs[f].AreaMM2()
				cp.Mix = Classify(specs[f])
				cp.CacheHit = true
				r.points[f] = cp
				r.mu.Lock()
				r.stats.CacheHits++
				r.mu.Unlock()
				octx.Counter(obs.MSweepCacheHits).Inc()
				r.finishPoint(f, cp, 0, "cached")
			} else {
				second = append(second, f)
			}
		}
	}
	r.dispatch(second)

	if r.hasBus {
		status := "done"
		if ctx.Err() != nil {
			status = "cancelled"
		}
		r.mu.Lock()
		done := r.done
		r.mu.Unlock()
		octx.Publish(obs.BusEvent{Kind: "sweep", Name: "done", Req: r.parentID,
			Done: done, Total: len(specs), DurSec: time.Since(r.start).Seconds(), Status: status})
	}
	return BatchResult{Points: r.points, Stats: r.stats}
}

func engineLabel(o BatchOptions) string {
	s := ""
	if o.Cache {
		s += "cache+"
	}
	if o.WarmStart {
		s += "warm+"
	}
	if o.Prune {
		s += "prune+"
	}
	if s == "" {
		return "cold"
	}
	return s[:len(s)-1]
}

// batchRun is one engine run's shared state.
type batchRun struct {
	ctx     context.Context
	specs   []soc.Spec
	norm    []soc.Spec // specs[i].Normalize(), the canonical lattice form
	vecs    []latticeVec
	opts    BatchOptions
	eval    Evaluator
	octx    *obs.Context
	workers int
	points  []Point
	start   time.Time

	timed    bool
	hasBus   bool
	parentID string

	mu      sync.Mutex // guards solved, stats, progress state, lbSec
	solved  []solvedRec
	stats   BatchStats
	done    int
	best    Point
	hasBest bool
	lbSec   map[int]float64 // memoized AnalyticLowerBoundSec per index
}

// solvedRec is what one completed solve contributes to later points: a warm
// hint, a dominance donor, or a pruning certifier.
type solvedRec struct {
	idx     int
	vec     latticeVec
	area    float64
	speedup float64
	// clean is Err == nil && !Cancelled && !Degraded: the metrics are
	// converged and trustworthy, so the point can certify pruning.
	clean bool
	// gapMet is clean && Gap <= gapTarget: the point qualifies as a
	// dominance donor.
	gapMet bool
	hint   *scheduler.WarmStart
}

// pointKey is the canonical-model hash of point i: the workload, profile,
// and solver identity (constant across the run, included for integrity)
// plus the normalized spec. Empty when the spec cannot be canonically
// marshaled (NaN fields); such points are never deduplicated.
func (r *batchRun) pointKey(i int) string {
	type canonical struct {
		Workload *wire.Workload     `json:"workload,omitempty"`
		Profile  *wire.Profile      `json:"profile,omitempty"`
		Solver   *wire.SolverConfig `json:"solver,omitempty"`
		Spec     wire.SoC           `json:"spec"`
	}
	c := canonical{Spec: wire.FromSpec(r.norm[i])}
	if h := r.opts.hilp; h != nil {
		w := wire.FromWorkload(h.w)
		p := wire.FromProfile(h.profile)
		s := wire.FromConfig(h.cfg)
		c.Workload, c.Profile, c.Solver = &w, &p, &s
	}
	key, err := wire.CanonicalKey(c)
	if err != nil {
		return ""
	}
	return key
}

// dispatch fans the given point indices out across the worker pool,
// stopping (and marking the remainder with ctx.Err) once the context is
// done.
func (r *batchRun) dispatch(order []int) {
	if len(order) == 0 {
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.workers; w++ {
		wg.Add(1)
		go func() {
			defer r.octx.Guard("sweep-worker")
			defer wg.Done()
			for i := range jobs {
				r.runPoint(i)
			}
		}()
	}
	dispatched := len(order)
feed:
	for k, i := range order {
		select {
		case jobs <- i:
		case <-r.ctx.Done():
			dispatched = k
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	for _, i := range order[dispatched:] {
		p := newPoint(r.specs[i])
		p.Err = r.ctx.Err()
		r.points[i] = p
	}
}

// runPoint evaluates one point: prune check, warm-start donor selection,
// the solve itself (panic-isolated, fault-keyed), and bookkeeping.
func (r *batchRun) runPoint(i int) {
	var t0 time.Time
	if r.timed {
		t0 = time.Now()
	}
	pid := r.pointID(i)

	if r.opts.Prune {
		r.mu.Lock()
		p, pruned := r.pruneCheck(i)
		if pruned {
			r.stats.Pruned++
			r.mu.Unlock()
			p.RequestID = pid
			r.points[i] = p
			r.octx.Counter(obs.MSweepPruned).Inc()
			var durSec float64
			if r.timed {
				durSec = time.Since(t0).Seconds()
			}
			r.finishPoint(i, p, durSec, "pruned")
			return
		}
		r.mu.Unlock()
	}

	var hint *scheduler.WarmStart
	if r.opts.WarmStart {
		r.mu.Lock()
		hint = r.nearestHint(i)
		r.mu.Unlock()
	}

	p, donorOut := r.evalOne(i, pid, hint)
	p.RequestID = pid
	r.points[i] = p
	if r.opts.Cache {
		r.octx.Counter(obs.MSweepCacheMisses).Inc()
	}

	clean := p.Err == nil && !p.Cancelled && !p.Degraded
	r.mu.Lock()
	r.stats.Solved++
	if p.WarmStarted {
		r.stats.WarmStarted++
	}
	gapMet := false
	if h := r.opts.hilp; h != nil {
		gapMet = clean && p.Gap <= h.gapTarget
	}
	r.solved = append(r.solved, solvedRec{
		idx: i, vec: r.vecs[i], area: p.AreaMM2, speedup: p.Speedup,
		clean: clean, gapMet: gapMet, hint: donorOut,
	})
	r.mu.Unlock()

	var durSec float64
	if r.timed {
		durSec = time.Since(t0).Seconds()
	}
	status := "ok"
	switch {
	case p.Err != nil:
		status = "failed"
	case p.Cancelled:
		status = "cancelled"
	case p.Degraded:
		status = "degraded"
	}
	r.finishPoint(i, p, durSec, status)
}

// evalOne runs the evaluation for point i with panic isolation and
// per-point fault keying, mirroring the classic sweep worker. For HILP
// batches it threads the warm hint into the solver and extracts the solved
// schedule as a donor hint for later points.
func (r *batchRun) evalOne(i int, pid string, hint *scheduler.WarmStart) (p Point, donor *scheduler.WarmStart) {
	pctx := faults.WithKey(r.ctx, uint64(i))
	pctx = obs.WithRequestID(pctx, pid)
	defer func() {
		if rec := recover(); rec != nil {
			pe := scheduler.NewPanicError("dse.Sweep", rec)
			r.octx.Counter(obs.MSweepPanics).Inc()
			r.octx.Log(pctx, slog.LevelError, "sweep: point panicked",
				"point", i, "spec", r.specs[i].Label(), "error", pe.Error(), "stack", string(pe.Stack))
			p = newPoint(r.specs[i])
			p.Err = pe
			donor = nil
		}
	}()
	h := r.opts.hilp
	if h == nil {
		return r.eval(pctx, r.specs[i]), nil
	}
	cfg := h.cfg
	if hint != nil {
		cfg.Warm = hint
	} else if r.opts.WarmStart {
		// No donor yet: a zero-value hint still enables refinement
		// self-warming inside the adaptive-resolution loop.
		cfg.Warm = &scheduler.WarmStart{}
	}
	p = newPoint(r.specs[i])
	res, err := core.Solve(pctx, h.w, r.specs[i], h.profile, cfg)
	if err != nil {
		p.Err = err
		return p, nil
	}
	p.Speedup = res.Speedup
	p.WLP = res.WLP
	p.Gap = res.Gap
	p.MakespanSec = res.MakespanSec
	p.Cancelled = res.Cancelled
	p.Degraded = res.Degraded
	p.FallbackReason = res.FallbackReason
	p.WarmStarted = hint != nil
	return p, res.WarmHint()
}

// pruneCheck decides, under r.mu, whether point i can be skipped with a
// certificate. Two solved points participate:
//
//   - a dominator A whose resource vector covers i's (every schedule of i
//     embeds into A, so i cannot beat A's certified makespan) and which met
//     the gap target — the trigger the lattice walk sets up;
//   - a certifier C with area <= i's whose achieved speedup already meets
//     i's certified best-possible speedup seq/AnalyticLowerBoundSec(i) —
//     the discretization-independent proof that i is Pareto-redundant.
//
// Only when both exist is the point pruned, recording the bound and the
// dominator's label.
func (r *batchRun) pruneCheck(i int) (Point, bool) {
	h := r.opts.hilp
	dominator := -1
	for _, s := range r.solved {
		if s.gapMet && specDominates(r.norm[s.idx], r.norm[i]) {
			dominator = s.idx
			break
		}
	}
	if dominator < 0 {
		return Point{}, false
	}
	if r.lbSec == nil {
		r.lbSec = map[int]float64{}
	}
	lb, okLB := r.lbSec[i]
	if !okLB {
		lb = core.AnalyticLowerBoundSec(h.w, r.norm[i])
		r.lbSec[i] = lb
	}
	bound := math.Inf(1)
	if lb > 0 {
		bound = h.seqSec / lb
	}
	if math.IsInf(bound, 1) {
		return Point{}, false
	}
	area := r.specs[i].AreaMM2()
	for _, s := range r.solved {
		if s.clean && s.area <= area+1e-9 && s.speedup+1e-9 >= bound {
			p := newPoint(r.specs[i])
			p.Pruned = true
			p.PrunedBy = r.specs[dominator].Label()
			p.SpeedupBound = bound
			return p, true
		}
	}
	return Point{}, false
}

// nearestHint returns the warm-start hint of the solved point closest to i
// on the spec lattice, or nil when none is available yet.
func (r *batchRun) nearestHint(i int) *scheduler.WarmStart {
	var best *scheduler.WarmStart
	bestD := 0
	for _, s := range r.solved {
		if s.hint == nil {
			continue
		}
		d := latticeDist(s.vec, r.vecs[i])
		if best == nil || d < bestD {
			best, bestD = s.hint, d
		}
	}
	return best
}

// pointID mirrors the classic sweep's correlation-ID scheme: request-scoped
// sweeps extend the parent ID, standalone observed sweeps get fresh IDs,
// fully disabled sweeps stay ID-free.
func (r *batchRun) pointID(i int) string {
	if r.parentID != "" {
		return r.parentID + "/p" + strconv.Itoa(i)
	}
	if r.octx.Enabled() {
		return obs.NewRequestID()
	}
	return ""
}

// finishPoint does the shared per-point bookkeeping: counters, latency,
// the checkpoint hook, progress callback, and bus events.
func (r *batchRun) finishPoint(i int, p Point, durSec float64, status string) {
	r.octx.Counter(obs.MSweepPoints).Inc()
	if p.Err != nil {
		r.octx.Counter(obs.MSweepPointsFailed).Inc()
	}
	if r.timed {
		r.octx.Histogram(obs.MSweepPointSec).ObserveEx(durSec, p.RequestID)
	}
	if r.opts.OnPoint == nil && r.opts.OnProgress == nil && !r.hasBus {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
	// Resumed points are already in the journal; re-reporting them would
	// duplicate their records on every restart.
	if r.opts.OnPoint != nil && status != "resumed" {
		r.opts.OnPoint(i, p)
	}
	improved := p.Err == nil && !p.Pruned && (!r.hasBest || p.Speedup > r.best.Speedup)
	if improved {
		r.best = p
		r.hasBest = true
	}
	if r.hasBus {
		r.octx.Publish(obs.BusEvent{Kind: "point", Name: p.Label, Req: p.RequestID, Iter: i,
			Value: p.Speedup, Gap: p.Gap, Done: r.done, Total: len(r.specs), DurSec: durSec, Status: status})
		if improved {
			r.octx.Publish(obs.BusEvent{Kind: "incumbent", Name: r.best.Label, Req: p.RequestID,
				Value: r.best.Speedup, Gap: r.best.Gap, Done: r.done, Total: len(r.specs)})
		}
	}
	if r.opts.OnProgress != nil {
		prog := Progress{
			Done:    r.done,
			Total:   len(r.specs),
			Best:    r.best,
			HasBest: r.hasBest,
			Elapsed: time.Since(r.start),
		}
		if r.done > 0 {
			prog.ETA = prog.Elapsed / time.Duration(r.done) * time.Duration(len(r.specs)-r.done)
		}
		r.opts.OnProgress(prog)
	}
}

// latticeVec positions a spec on the design-space lattice for walk ordering
// and nearest-neighbor selection.
type latticeVec struct {
	cores, sms, maxPE, ndsa, sumPE int
}

func vecOf(n soc.Spec) latticeVec {
	v := latticeVec{cores: n.CPUCores, sms: n.GPUSMs, ndsa: len(n.DSAs)}
	for _, d := range n.DSAs {
		v.sumPE += d.PEs
		if d.PEs > v.maxPE {
			v.maxPE = d.PEs
		}
	}
	return v
}

// walkLess orders the lattice family-major: CPU cores, then GPU SMs, then
// the DSA PE class, then descending DSA count — so the fully-populated rung
// of each DSA ladder is solved first (the family's dominance donor) and
// subsequent rungs warm-start from an immediate neighbor.
func walkLess(a, b latticeVec) bool {
	if a.cores != b.cores {
		return a.cores < b.cores
	}
	if a.sms != b.sms {
		return a.sms < b.sms
	}
	if a.maxPE != b.maxPE {
		return a.maxPE < b.maxPE
	}
	if a.ndsa != b.ndsa {
		return a.ndsa > b.ndsa
	}
	return a.sumPE > b.sumPE
}

// latticeDist is a weighted L1 distance over the lattice coordinates,
// weighting the dimensions that reshape the scheduling instance most (CPU
// cores change every task's option set; one DSA more or less changes one
// task's).
func latticeDist(a, b latticeVec) int {
	return 32*abs(a.cores-b.cores) + 2*abs(a.sms-b.sms) + 8*abs(a.ndsa-b.ndsa) +
		4*abs(a.maxPE-b.maxPE) + abs(a.sumPE-b.sumPE)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// specDominates reports whether every feasible schedule of b is feasible on
// a unchanged (identity option mapping modulo cluster renumbering), so b's
// optimal makespan is at least a's. That requires b's option set to embed
// into a's with equal durations and demands and a's capacities to cover
// b's:
//
//   - equal CPU core count (the parallel-CPU option "cpu-xN" exists only at
//     exactly N cores), unless b has a single core and thus no parallel
//     option;
//   - equal GPU size with a superset of DVFS points, unless b has no GPU
//     (bigger GPUs are faster but draw more power, so they do not dominate
//     under a power budget);
//   - b's DSAs present on a with identical PE counts and advantage (same
//     reason), a may add extra DSAs;
//   - power and bandwidth budgets at least b's.
func specDominates(a, b soc.Spec) bool {
	if a.CPUCores < b.CPUCores {
		return false
	}
	if a.CPUCores != b.CPUCores && b.CPUCores != 1 {
		return false
	}
	if b.GPUSMs > 0 {
		if a.GPUSMs != b.GPUSMs {
			return false
		}
		if !freqSuperset(a.GPUFrequenciesMHz, b.GPUFrequenciesMHz) {
			return false
		}
	}
	if len(b.DSAs) > 0 {
		if a.DSAAdvantage != b.DSAAdvantage {
			return false
		}
		for _, d := range b.DSAs {
			ad, ok := a.DSAFor(d.Target)
			if !ok || ad.PEs != d.PEs {
				return false
			}
		}
	}
	return a.PowerBudgetWatts >= b.PowerBudgetWatts && a.MemBandwidthGBs >= b.MemBandwidthGBs
}

func freqSuperset(a, b []float64) bool {
	for _, f := range b {
		found := false
		for _, g := range a {
			if g == f {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
