package dse

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteCSV serializes points as CSV with a header row, skipping errored
// evaluations (their labels are emitted with an error column instead).
// Fields are quoted and escaped per RFC 4180, so labels and error messages
// containing commas, quotes, or newlines survive a round trip.
func WriteCSV(w io.Writer, model string, points []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"model", "soc", "area_mm2", "speedup", "wlp", "gap", "makespan_sec", "mix", "error"}); err != nil {
		return err
	}
	for _, p := range points {
		if p.Err != nil {
			if err := cw.Write([]string{model, p.Label, fmt.Sprintf("%.2f", p.AreaMM2),
				"", "", "", "", p.Mix.String(), p.Err.Error()}); err != nil {
				return err
			}
			continue
		}
		if p.Pruned {
			note := fmt.Sprintf("pruned: speedup <= %.2f (dominated by %s)", p.SpeedupBound, p.PrunedBy)
			if err := cw.Write([]string{model, p.Label, fmt.Sprintf("%.2f", p.AreaMM2),
				"", "", "", "", p.Mix.String(), note}); err != nil {
				return err
			}
			continue
		}
		if err := cw.Write([]string{model, p.Label, fmt.Sprintf("%.2f", p.AreaMM2),
			fmt.Sprintf("%.4f", p.Speedup), fmt.Sprintf("%.4f", p.WLP), fmt.Sprintf("%.4f", p.Gap),
			fmt.Sprintf("%.4f", p.MakespanSec), p.Mix.String(), ""}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Hypervolume returns the area dominated by the Pareto front of the points
// in (area, speedup) space relative to a reference point (refArea,
// refSpeedup): the union of rectangles [point.Area, refArea] x [refSpeedup,
// point.Speedup]. It is the standard scalar quality measure for comparing
// fronts (larger is better); ablations use it to compare sweeps without
// eyeballing plots. Points outside the reference box contribute their
// clipped rectangle.
func Hypervolume(points []Point, refArea, refSpeedup float64) float64 {
	front := ParetoFront(points)
	if len(front) == 0 {
		return 0
	}
	// front is sorted by ascending area with strictly increasing speedup.
	hv := 0.0
	// Walk from the largest-area (fastest) point down; each point owns the
	// horizontal strip between its speedup and the next-better point's.
	prevSpeedup := refSpeedup
	for _, p := range front {
		if p.AreaMM2 >= refArea || p.Speedup <= refSpeedup {
			continue
		}
		width := refArea - p.AreaMM2
		top := p.Speedup
		if top <= prevSpeedup {
			continue
		}
		hv += width * (top - prevSpeedup)
		prevSpeedup = top
	}
	return hv
}

// DominatedCount returns, per point, how many other points dominate it
// (smaller-or-equal area and greater-or-equal speedup, strict in one).
// Pareto-optimal points have count zero.
func DominatedCount(points []Point) []int {
	counts := make([]int, len(points))
	for i := range points {
		if points[i].Err != nil {
			counts[i] = -1
			continue
		}
		for j := range points {
			if i == j || points[j].Err != nil {
				continue
			}
			a, b := points[i], points[j]
			if b.AreaMM2 <= a.AreaMM2 && b.Speedup >= a.Speedup &&
				(b.AreaMM2 < a.AreaMM2 || b.Speedup > a.Speedup) {
				counts[i]++
			}
		}
	}
	return counts
}

// SortByArea returns a copy of points ordered by ascending area (ties by
// descending speedup), the natural plotting order.
func SortByArea(points []Point) []Point {
	out := make([]Point, len(points))
	copy(out, points)
	sort.Slice(out, func(i, j int) bool {
		if out[i].AreaMM2 != out[j].AreaMM2 {
			return out[i].AreaMM2 < out[j].AreaMM2
		}
		return out[i].Speedup > out[j].Speedup
	})
	return out
}
