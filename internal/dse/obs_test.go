package dse

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"hilp/internal/obs"
	"hilp/internal/soc"
)

// stubEvaluator scores a spec by its CPU count without running the solver,
// failing specs with zero cores.
func stubEvaluator(_ context.Context, s soc.Spec) Point {
	p := newPoint(s)
	if s.CPUCores == 0 {
		p.Err = errors.New("stub: infeasible")
		return p
	}
	p.Speedup = float64(s.CPUCores)
	return p
}

func stubSpecs(n int) []soc.Spec {
	specs := make([]soc.Spec, n)
	for i := range specs {
		specs[i] = soc.Spec{CPUCores: i} // spec 0 fails
	}
	return specs
}

func TestSweepDefaultsWorkers(t *testing.T) {
	// workers <= 0 must select GOMAXPROCS rather than deadlock with zero
	// workers draining the job channel.
	for _, workers := range []int{0, -3} {
		points := Sweep(context.Background(), stubSpecs(6), workers, stubEvaluator)
		if len(points) != 6 {
			t.Fatalf("workers=%d: %d points, want 6", workers, len(points))
		}
		for i, p := range points[1:] {
			if p.Err != nil || p.Speedup != float64(i+1) {
				t.Errorf("workers=%d: point %d = %+v, want speedup %d", workers, i+1, p, i+1)
			}
		}
	}
}

func TestSweepOptsProgress(t *testing.T) {
	const n = 12
	var updates []Progress
	reg := obs.NewRegistry()
	opts := SweepOptions{
		Workers: 4,
		Obs:     &obs.Context{Metrics: reg},
		// OnProgress calls are serialized, so appending without a lock is the
		// exact guarantee under test (the race detector enforces it).
		OnProgress: func(p Progress) { updates = append(updates, p) },
	}
	points := SweepOpts(context.Background(), stubSpecs(n), opts, stubEvaluator)
	if len(points) != n {
		t.Fatalf("%d points, want %d", len(points), n)
	}

	if len(updates) != n {
		t.Fatalf("%d progress updates, want %d", len(updates), n)
	}
	for i, u := range updates {
		if u.Done != i+1 {
			t.Errorf("update %d has Done %d, want strictly increasing %d", i, u.Done, i+1)
		}
		if u.Total != n {
			t.Errorf("update %d has Total %d, want %d", i, u.Total, n)
		}
	}
	last := updates[n-1]
	if !last.HasBest || last.Best.Speedup != n-1 {
		t.Errorf("final best = %+v (hasBest %v), want speedup %d", last.Best, last.HasBest, n-1)
	}
	if last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETA)
	}

	if got := reg.Counter(obs.MSweepPoints).Value(); got != n {
		t.Errorf("%s = %d, want %d", obs.MSweepPoints, got, n)
	}
	if got := reg.Counter(obs.MSweepPointsFailed).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MSweepPointsFailed, got)
	}
	if got := reg.Histogram(obs.MSweepPointSec).Count(); got != n {
		t.Errorf("%s count = %d, want %d", obs.MSweepPointSec, got, n)
	}
}

func TestSweepOptsRecordsSpan(t *testing.T) {
	ctx := &obs.Context{Tracer: obs.NewTracer()}
	SweepOpts(context.Background(), stubSpecs(3), SweepOptions{Workers: 2, Obs: ctx}, stubEvaluator)
	recs := ctx.Tracer.Snapshot()
	if len(recs) != 1 || recs[0].Name != "sweep" {
		t.Fatalf("spans = %+v, want one sweep span", recs)
	}
	if got := recs[0].Args["points"]; got != 3 {
		t.Errorf("sweep args[points] = %v, want 3", got)
	}
	if got := recs[0].Args["workers"]; got != 2 {
		t.Errorf("sweep args[workers] = %v, want 2", got)
	}
	if err := obs.WellNested(recs); err != nil {
		t.Error(err)
	}
}

func TestSweepOrderIndependentOfWorkers(t *testing.T) {
	specs := stubSpecs(9)
	want := fmt.Sprint(Sweep(context.Background(), specs, 1, stubEvaluator))
	for _, workers := range []int{2, 8} {
		if got := fmt.Sprint(Sweep(context.Background(), specs, workers, stubEvaluator)); got != want {
			t.Errorf("workers=%d reordered points:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}
