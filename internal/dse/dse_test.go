package dse

import (
	"context"
	"errors"
	"testing"

	"hilp/internal/core"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		spec soc.Spec
		want Mix
	}{
		{soc.Spec{CPUCores: 1}, NoAccel},
		{soc.Spec{CPUCores: 1, GPUSMs: 64}, GPUDominated},
		{soc.Spec{CPUCores: 1, DSAs: []soc.DSA{{PEs: 16, Target: "HS"}}}, DSADominated},
		// 16 GPU SMs vs 2x16 DSA PEs: DSAs take 2/3 of accelerator area.
		{soc.Spec{CPUCores: 4, GPUSMs: 16, DSAs: []soc.DSA{{PEs: 16, Target: "LUD"}, {PEs: 16, Target: "HS"}}}, MixedAccel},
		// 64 GPU SMs vs one 1-PE DSA: GPU > 75%.
		{soc.Spec{CPUCores: 1, GPUSMs: 64, DSAs: []soc.DSA{{PEs: 1, Target: "LUD"}}}, GPUDominated},
	}
	for _, c := range cases {
		if got := Classify(c.spec); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.spec.Label(), got, c.want)
		}
	}
}

func TestParetoFront(t *testing.T) {
	pts := []Point{
		{Label: "a", AreaMM2: 10, Speedup: 1},
		{Label: "b", AreaMM2: 20, Speedup: 3},
		{Label: "dominated", AreaMM2: 25, Speedup: 2},
		{Label: "c", AreaMM2: 30, Speedup: 5},
		{Label: "errored", AreaMM2: 5, Speedup: 9, Err: errors.New("x")},
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front has %d points, want 3: %+v", len(front), front)
	}
	for i, want := range []string{"a", "b", "c"} {
		if front[i].Label != want {
			t.Errorf("front[%d] = %s, want %s", i, front[i].Label, want)
		}
	}
}

func TestParetoFrontTieOnArea(t *testing.T) {
	pts := []Point{
		{Label: "slow", AreaMM2: 10, Speedup: 1},
		{Label: "fast", AreaMM2: 10, Speedup: 2},
	}
	front := ParetoFront(pts)
	if len(front) != 1 || front[0].Label != "fast" {
		t.Errorf("front = %+v, want only 'fast'", front)
	}
}

func TestBest(t *testing.T) {
	pts := []Point{
		{Label: "a", AreaMM2: 10, Speedup: 2},
		{Label: "b", AreaMM2: 5, Speedup: 2}, // same speedup, smaller area
		{Label: "err", Speedup: 99, Err: errors.New("x")},
	}
	best, ok := Best(pts)
	if !ok || best.Label != "b" {
		t.Errorf("Best = %+v/%v, want b", best, ok)
	}
	if _, ok := Best([]Point{{Err: errors.New("x")}}); ok {
		t.Error("Best found a point among errors")
	}
}

func TestSweepPreservesOrderAndParallelizes(t *testing.T) {
	specs := []soc.Spec{
		{CPUCores: 1},
		{CPUCores: 2},
		{CPUCores: 4},
	}
	pts := Sweep(context.Background(), specs, 3, func(_ context.Context, s soc.Spec) Point {
		return Point{Label: s.Label(), AreaMM2: s.AreaMM2()}
	})
	for i, s := range specs {
		if pts[i].Label != s.Label() {
			t.Errorf("point %d = %s, want %s", i, pts[i].Label, s.Label())
		}
	}
}

func TestEvaluatorsOnMiniSpace(t *testing.T) {
	w := rodinia.Workload{Name: "mini", Apps: rodinia.DefaultWorkload().Apps[:3]}
	specs := []soc.Spec{
		{CPUCores: 1, GPUFrequenciesMHz: []float64{765}},
		{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
	}
	profile := core.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 10, MaxRefinements: 1}
	cfg := scheduler.Config{Seed: 1, Effort: 0.2}

	for name, eval := range map[string]Evaluator{
		"hilp":   HILPEvaluator(w, profile, cfg),
		"gables": GablesEvaluator(w, profile, cfg),
		"ma":     MAEvaluator(w),
	} {
		pts := Sweep(context.Background(), specs, 1, eval)
		for i, p := range pts {
			if p.Err != nil {
				t.Errorf("%s: point %d: %v", name, i, p.Err)
				continue
			}
			if p.Speedup <= 0 {
				t.Errorf("%s: point %d speedup %g", name, i, p.Speedup)
			}
			if p.AreaMM2 != specs[i].AreaMM2() {
				t.Errorf("%s: point %d area mismatch", name, i)
			}
		}
		// The accelerated SoC must win under every model.
		if pts[1].Speedup <= pts[0].Speedup {
			t.Errorf("%s: GPU SoC %g not faster than CPU-only %g", name, pts[1].Speedup, pts[0].Speedup)
		}
	}
}
