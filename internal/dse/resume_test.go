package dse

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hilp/internal/core"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
	"hilp/internal/wire"
)

// resumeTestRun solves a small sweep deterministically (single worker, reuse
// off) with the given extra options layered in.
func resumeTestRun(w rodinia.Workload, specs []soc.Spec, opts BatchOptions) BatchResult {
	opts.Workers = 1
	return RunHILP(context.Background(), w, specs, core.Profile{InitialStepSec: 10, Horizon: 200},
		scheduler.Config{Seed: 1, Effort: 0.2, Restarts: 1}, opts)
}

// TestRunResumePrefill: points handed in via BatchOptions.Resume are marked,
// counted, never re-dispatched, and not re-reported through OnPoint — while
// the remaining points solve normally and report exactly once each.
func TestRunResumePrefill(t *testing.T) {
	w := rodinia.Workload{Name: "resume", Apps: rodinia.DefaultWorkload().Apps[:2]}
	specs := []soc.Spec{
		{CPUCores: 1},
		{CPUCores: 2},
		{CPUCores: 4},
		{CPUCores: 2, GPUSMs: 4},
	}
	cold := resumeTestRun(w, specs, BatchOptions{})
	if cold.Stats.Resumed != 0 {
		t.Fatalf("cold run Stats.Resumed = %d, want 0", cold.Stats.Resumed)
	}

	resume := map[int]Point{0: cold.Points[0], 2: cold.Points[2]}
	reported := map[int]int{}
	var lastDone int
	res := resumeTestRun(w, specs, BatchOptions{
		Resume:     resume,
		OnPoint:    func(i int, p Point) { reported[i]++ },
		OnProgress: func(p Progress) { lastDone = p.Done },
	})

	if res.Stats.Resumed != 2 || res.Stats.Solved != 2 {
		t.Fatalf("stats = %d resumed / %d solved, want 2 / 2", res.Stats.Resumed, res.Stats.Solved)
	}
	if lastDone != len(specs) {
		t.Errorf("final progress Done = %d, want %d", lastDone, len(specs))
	}
	if !reflect.DeepEqual(reported, map[int]int{1: 1, 3: 1}) {
		t.Errorf("OnPoint calls = %v, want exactly once for the two solved points", reported)
	}
	for i, p := range res.Points {
		_, wasResumed := resume[i]
		if p.Resumed != wasResumed {
			t.Errorf("point %d Resumed = %v, want %v", i, p.Resumed, wasResumed)
		}
		cp := cold.Points[i]
		cp.Resumed = p.Resumed
		if !reflect.DeepEqual(p, cp) {
			t.Errorf("point %d differs from the cold run:\n got %+v\nwant %+v", i, p, cp)
		}
	}
}

// TestWirePointRoundTrip: ToWirePoint and FromWirePoint are inverses over the
// fields a journaled point carries, including errors as opaque strings.
func TestWirePointRoundTrip(t *testing.T) {
	w := rodinia.Workload{Name: "resume", Apps: rodinia.DefaultWorkload().Apps[:2]}
	res := resumeTestRun(w, []soc.Spec{{CPUCores: 2, GPUSMs: 4}}, BatchOptions{})
	orig := res.Points[0]
	got := FromWirePoint(ToWirePoint(orig), res.Points[0].Spec)
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip changed the point:\n got %+v\nwant %+v", got, orig)
	}

	failed := orig
	failed.Err = errors.New("solver exploded")
	back := FromWirePoint(ToWirePoint(failed), failed.Spec)
	if back.Err == nil || back.Err.Error() != "solver exploded" {
		t.Errorf("error round trip = %v, want opaque 'solver exploded'", back.Err)
	}
}

// TestResumable: clean and degraded points resume; errored and cancelled
// points re-solve (at-least-once point solve).
func TestResumable(t *testing.T) {
	cases := []struct {
		name string
		p    wire.Point
		want bool
	}{
		{"clean", wire.Point{Speedup: 2}, true},
		{"degraded", wire.Point{Speedup: 2, Degraded: true, FallbackReason: "panic"}, true},
		{"errored", wire.Point{Error: "boom"}, false},
		{"cancelled", wire.Point{Cancelled: true}, false},
	}
	for _, tc := range cases {
		if got := Resumable(tc.p); got != tc.want {
			t.Errorf("%s: Resumable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestCheckResumeKey: resuming against a changed model is a field-addressed
// validation error; a missing or matching recorded key is accepted.
func TestCheckResumeKey(t *testing.T) {
	if err := CheckResumeKey("", "abc"); err != nil {
		t.Errorf("empty recorded key: %v, want nil", err)
	}
	if err := CheckResumeKey("abc", "abc"); err != nil {
		t.Errorf("matching keys: %v, want nil", err)
	}
	err := CheckResumeKey("aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb")
	var verr *core.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("mismatch = %T (%v), want *core.ValidationError", err, err)
	}
	f := verr.Fields[0]
	if f.Path != "resume.modelKey" || f.Code != "model_changed" {
		t.Errorf("field = %s/%s, want resume.modelKey/model_changed", f.Path, f.Code)
	}
}
