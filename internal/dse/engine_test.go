package dse

import (
	"context"
	"sort"
	"testing"

	"hilp/internal/core"
	"hilp/internal/obs"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// dsaTargets returns the first n application abbreviations of the default
// workload, for building DSA-bearing specs.
func dsaTargets(w rodinia.Workload, n int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = w.Apps[i].Bench.Abbrev
	}
	return out
}

func specWithDSAs(cores int, targets []string, pes int) soc.Spec {
	s := soc.Spec{CPUCores: cores}
	for _, t := range targets {
		s.DSAs = append(s.DSAs, soc.DSA{PEs: pes, Target: t})
	}
	return s
}

func TestSpecDominates(t *testing.T) {
	base := soc.Spec{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{420, 765}}
	cases := []struct {
		name string
		a, b soc.Spec
		want bool
	}{
		{"identical", base, base, true},
		{"any dominates single core", soc.Spec{CPUCores: 4}, soc.Spec{CPUCores: 1}, true},
		{"more cores vs multi-core", soc.Spec{CPUCores: 4}, soc.Spec{CPUCores: 2}, false},
		{"fewer cores", soc.Spec{CPUCores: 1}, soc.Spec{CPUCores: 2}, false},
		{"gpu vs none", base, soc.Spec{CPUCores: 2}, true},
		{"bigger gpu does not dominate", soc.Spec{CPUCores: 2, GPUSMs: 32}, soc.Spec{CPUCores: 2, GPUSMs: 16}, false},
		{"freq superset",
			soc.Spec{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{420, 765}},
			soc.Spec{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
			true},
		{"freq missing",
			soc.Spec{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{420}},
			soc.Spec{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
			false},
		{"dsa superset",
			specWithDSAs(2, []string{"LUD", "BFS"}, 16),
			specWithDSAs(2, []string{"LUD"}, 16),
			true},
		{"dsa pe mismatch",
			specWithDSAs(2, []string{"LUD"}, 32),
			specWithDSAs(2, []string{"LUD"}, 16),
			false},
		{"dsa target missing",
			specWithDSAs(2, []string{"BFS"}, 16),
			specWithDSAs(2, []string{"LUD"}, 16),
			false},
		{"lower power budget",
			soc.Spec{CPUCores: 2, PowerBudgetWatts: 300},
			soc.Spec{CPUCores: 2},
			false},
		{"lower bandwidth",
			soc.Spec{CPUCores: 2, MemBandwidthGBs: 400},
			soc.Spec{CPUCores: 2},
			false},
		{"higher budgets dominate",
			soc.Spec{CPUCores: 2, PowerBudgetWatts: 900, MemBandwidthGBs: 1600},
			soc.Spec{CPUCores: 2},
			true},
	}
	for _, tc := range cases {
		// The engine only ever compares normalized specs (defaults filled).
		if got := specDominates(tc.a.Normalize(), tc.b.Normalize()); got != tc.want {
			t.Errorf("%s: specDominates = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSpecDominatesAdvantageMismatch(t *testing.T) {
	a := specWithDSAs(2, []string{"LUD"}, 16)
	b := specWithDSAs(2, []string{"LUD"}, 16)
	b.DSAAdvantage = 8
	if specDominates(a.Normalize(), b.Normalize()) {
		t.Error("different DSA advantage must not dominate")
	}
}

func TestWalkOrder(t *testing.T) {
	// The family-major walk: cores, then SMs, then the DSA PE class; within
	// a PE class the fully-populated rung leads so it can donate dominance
	// checks to its sub-rungs.
	specs := []soc.Spec{
		specWithDSAs(2, []string{"LUD"}, 16),        // c2 d1^16
		{CPUCores: 1},                               // c1 bare
		specWithDSAs(2, []string{"LUD", "BFS"}, 16), // c2 d2^16
		{CPUCores: 2, GPUSMs: 16},                   // c2 g16
		specWithDSAs(2, []string{"LUD", "BFS"}, 4),  // c2 d2^4
		{CPUCores: 2},                               // c2 bare
	}
	vecs := make([]latticeVec, len(specs))
	order := make([]int, len(specs))
	for i, s := range specs {
		vecs[i] = vecOf(s.Normalize())
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return walkLess(vecs[order[a]], vecs[order[b]]) })

	want := []int{
		1, // c1 before every c2
		5, // c2 bare (sms 0, maxPE 0)
		4, // c2 d2^4 (maxPE 4)
		2, // c2 d2^16 before d1^16: same PE class, more DSAs first
		0, // c2 d1^16
		3, // c2 g16 last (sms 16)
	}
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("walk order = %v, want %v", order, want)
		}
	}
}

func TestLatticeDist(t *testing.T) {
	a := vecOf(soc.Spec{CPUCores: 2, GPUSMs: 16}.Normalize())
	if d := latticeDist(a, a); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
	b := vecOf(soc.Spec{CPUCores: 4, GPUSMs: 16}.Normalize())
	if latticeDist(a, b) != latticeDist(b, a) {
		t.Error("latticeDist not symmetric")
	}
	// A core-count step reshapes the instance more than an SM step: the
	// nearest warm donor for (c2,g16) should be (c2,g0), not (c4,g16).
	sameCores := vecOf(soc.Spec{CPUCores: 2}.Normalize())
	if latticeDist(a, sameCores) >= latticeDist(a, b) {
		t.Errorf("dist(c2g16,c2) = %d should be < dist(c2g16,c4g16) = %d",
			latticeDist(a, sameCores), latticeDist(a, b))
	}
}

func TestFreqSuperset(t *testing.T) {
	if !freqSuperset([]float64{420, 765, 1097}, []float64{765}) {
		t.Error("superset rejected")
	}
	if freqSuperset([]float64{420}, []float64{765}) {
		t.Error("disjoint accepted")
	}
	if !freqSuperset(nil, nil) {
		t.Error("empty-over-empty rejected")
	}
}

// TestRunHILPCacheDedupe: duplicate specs in one batch solve once; the
// follower is a byte-identical copy of the owner modulo its own identity
// (label, area, request ID slot).
func TestRunHILPCacheDedupe(t *testing.T) {
	w := rodinia.Workload{Name: "dedupe", Apps: rodinia.DefaultWorkload().Apps[:2]}
	a := soc.Spec{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}
	b := soc.Spec{CPUCores: 1}
	// The third spec equals the first after normalization (defaults filled
	// explicitly), exercising canonical — not structural — equality.
	aEquiv := a
	aEquiv.PowerBudgetWatts = soc.DefaultPowerBudget
	aEquiv.MemBandwidthGBs = soc.DefaultMemBandwidth
	aEquiv.DSAAdvantage = soc.DefaultDSAAdvantage
	specs := []soc.Spec{a, b, aEquiv}

	reg := obs.NewRegistry()
	octx := &obs.Context{Metrics: reg}
	res := RunHILP(context.Background(), w, specs, core.DSEProfile,
		scheduler.Config{Seed: 1, Effort: 0.2},
		BatchOptions{Workers: 1, Cache: true, Obs: octx})

	if len(res.Points) != 3 {
		t.Fatalf("%d points, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Err != nil {
			t.Fatalf("%s: %v", p.Label, p.Err)
		}
	}
	if s := res.Stats; s.Points != 3 || s.Solved != 2 || s.CacheHits != 1 || s.Pruned != 0 {
		t.Fatalf("stats = %+v, want 3 points / 2 solved / 1 cache hit", s)
	}
	owner, follower := res.Points[0], res.Points[2]
	if owner.CacheHit {
		t.Error("owner marked as cache hit")
	}
	if !follower.CacheHit {
		t.Fatal("duplicate spec not served from the canonical-model cache")
	}
	if follower.MakespanSec != owner.MakespanSec || follower.Speedup != owner.Speedup ||
		follower.WLP != owner.WLP || follower.Gap != owner.Gap {
		t.Errorf("cache hit not byte-identical: owner %+v follower %+v", owner, follower)
	}
	if follower.Spec.PowerBudgetWatts != aEquiv.PowerBudgetWatts || follower.Label != aEquiv.Label() {
		t.Error("follower lost its own spec identity")
	}
	if got := reg.Counter(obs.MSweepCacheHits).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MSweepCacheHits, got)
	}
	if got := reg.Counter(obs.MSweepCacheMisses).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", obs.MSweepCacheMisses, got)
	}
}

// TestRunHILPPruning: a dominated sub-rung of the DSA ladder is skipped with
// a certified bound once (a) its fully-populated dominator met the gap
// target and (b) a cheaper already-solved point beat the sub-rung's analytic
// speedup ceiling.
func TestRunHILPPruning(t *testing.T) {
	w := rodinia.DefaultWorkload()
	targets := dsaTargets(w, 2)
	certifier := soc.Spec{CPUCores: 1, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}
	dominator := specWithDSAs(2, targets, 16)
	dominated := specWithDSAs(2, targets[:1], 16)
	specs := []soc.Spec{certifier, dominator, dominated}

	reg := obs.NewRegistry()
	octx := &obs.Context{Metrics: reg}
	res := RunHILP(context.Background(), w, specs, core.DSEProfile,
		scheduler.Config{Seed: 1, Effort: 0.25, Restarts: 1},
		BatchOptions{Workers: 1, WarmStart: true, Prune: true, Obs: octx})

	var pruned *Point
	for i := range res.Points {
		if p := &res.Points[i]; p.Pruned {
			if pruned != nil {
				t.Fatal("more than one point pruned")
			}
			pruned = p
		}
	}
	if pruned == nil {
		t.Fatalf("no point pruned; stats %+v", res.Stats)
	}
	if pruned.Label != dominated.Label() {
		t.Errorf("pruned %s, want %s", pruned.Label, dominated.Label())
	}
	if pruned.PrunedBy != dominator.Label() {
		t.Errorf("PrunedBy = %q, want %q", pruned.PrunedBy, dominator.Label())
	}
	if pruned.SpeedupBound <= 1 {
		t.Errorf("SpeedupBound = %g, want a real ceiling > 1", pruned.SpeedupBound)
	}
	if pruned.Err != nil || pruned.Speedup != 0 {
		t.Errorf("pruned point carries solve results: %+v", pruned)
	}
	if s := res.Stats; s.Points != 3 || s.Solved != 2 || s.Pruned != 1 {
		t.Errorf("stats = %+v, want 3/2/1", s)
	}
	if got := reg.Counter(obs.MSweepPruned).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MSweepPruned, got)
	}

	// Soundness: solving the pruned spec cold must not beat the certified
	// bound (the bound is an analytic ceiling on any schedule of that spec).
	cold := RunHILP(context.Background(), w, []soc.Spec{dominated}, core.DSEProfile,
		scheduler.Config{Seed: 1, Effort: 0.25, Restarts: 1}, BatchOptions{Workers: 1})
	cp := cold.Points[0]
	if cp.Err != nil {
		t.Fatal(cp.Err)
	}
	if cp.Speedup > pruned.SpeedupBound+1e-9 {
		t.Errorf("cold speedup %g exceeds certified bound %g", cp.Speedup, pruned.SpeedupBound)
	}
}

// TestRunHILPWarmStartAccounting: on a single worker every point after the
// first in a connected family takes a donor hint, and warm-started results
// stay certified.
func TestRunHILPWarmStartAccounting(t *testing.T) {
	w := rodinia.Workload{Name: "warm", Apps: rodinia.DefaultWorkload().Apps[:2]}
	specs := []soc.Spec{
		{CPUCores: 1},
		{CPUCores: 1, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		{CPUCores: 2},
		{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
	}
	res := RunHILP(context.Background(), w, specs, core.DSEProfile,
		scheduler.Config{Seed: 1, Effort: 0.2},
		BatchOptions{Workers: 1, WarmStart: true})
	if res.Stats.WarmStarted < len(specs)-1 {
		t.Errorf("WarmStarted = %d, want >= %d", res.Stats.WarmStarted, len(specs)-1)
	}
	gapTarget := 0.10
	for _, p := range res.Points {
		if p.Err != nil {
			t.Fatalf("%s: %v", p.Label, p.Err)
		}
		if !p.Degraded && p.Gap > gapTarget+1e-9 {
			t.Errorf("%s: gap %g above target despite clean solve", p.Label, p.Gap)
		}
		if p.Speedup <= 0 || p.MakespanSec <= 0 {
			t.Errorf("%s: invalid metrics %+v", p.Label, p)
		}
	}
}

// TestRunGenericIgnoresWarmAndPrune: without the HILP model the engine can
// only memoize; warm-start and pruning requests are inert, not crashes.
func TestRunGenericIgnoresWarmAndPrune(t *testing.T) {
	specs := []soc.Spec{{CPUCores: 1}, {CPUCores: 2}, {CPUCores: 1}}
	calls := 0
	res := Run(context.Background(), specs,
		BatchOptions{Workers: 1, Cache: true, WarmStart: true, Prune: true},
		func(ctx context.Context, s soc.Spec) Point {
			calls++
			p := newPoint(s)
			p.Speedup = float64(s.CPUCores)
			return p
		})
	if res.Stats.Pruned != 0 || res.Stats.WarmStarted != 0 {
		t.Errorf("generic run pruned/warm-started: %+v", res.Stats)
	}
	if calls != 2 || res.Stats.CacheHits != 1 {
		t.Errorf("calls = %d, cache hits = %d; want 2 solves and 1 hit", calls, res.Stats.CacheHits)
	}
	if !res.Points[2].CacheHit || res.Points[2].Speedup != res.Points[0].Speedup {
		t.Errorf("duplicate generic point not deduplicated: %+v", res.Points[2])
	}
}
