package dse

import (
	"context"
	"math"
	"testing"
	"time"

	"hilp/internal/core"
	"hilp/internal/faults"
	"hilp/internal/leakcheck"
	"hilp/internal/obs"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// TestChaosSweep is the acceptance test of the fault-tolerance work: a
// 50-point sweep with ~20% of points hit by injected faults (panics, injected
// timeouts, synthetic errors, corrupted results) must still complete, report
// exactly the injected points as failed or degraded, leak no goroutines, and
// keep every non-failed point's metrics valid.
func TestChaosSweep(t *testing.T) {
	leakcheck.VerifyNoLeaks(t) // registered first so its cleanup runs last

	w := rodinia.Workload{Name: "chaos", Apps: rodinia.DefaultWorkload().Apps[:2]}
	specs := make([]soc.Spec, 50)
	for i := range specs {
		specs[i] = soc.Spec{
			CPUCores:          1 + i%4,
			GPUSMs:            16 * (i % 2),
			GPUFrequenciesMHz: []float64{765},
		}
	}

	// Times=2 exhausts both the solve attempt and its retry, so every
	// solve-site fault degrades its point instead of being healed invisibly;
	// evaluate-site panics fail the point at the sweep worker's recover
	// boundary.
	inj := faults.New(faults.Config{
		Seed:  42,
		Rate:  0.2,
		Times: 2,
		Delay: time.Millisecond,
		Sites: []string{faults.SiteSolve, faults.SiteEvaluate},
	})
	ctx := faults.NewContext(context.Background(), inj)

	reg := obs.NewRegistry()
	octx := &obs.Context{Metrics: reg}
	profile := core.Profile{InitialStepSec: 10, Horizon: 200}
	cfg := scheduler.Config{Seed: 1, Effort: 0.2}
	points := SweepOpts(ctx, specs, SweepOptions{Obs: octx}, HILPEvaluator(w, profile, cfg))

	if len(points) != len(specs) {
		t.Fatalf("sweep returned %d/%d points", len(points), len(specs))
	}

	hit := map[uint64]string{} // key -> "failed" | "degraded"
	failed := 0
	for i, p := range points {
		key := uint64(i)
		switch {
		case p.Err != nil:
			hit[key] = "failed"
			failed++
		case p.Degraded:
			if p.FallbackReason == "" {
				t.Errorf("point %d degraded without a reason", i)
			}
			hit[key] = "degraded"
		}
		if p.Err != nil {
			continue
		}
		// Every non-failed point — degraded or not — must carry valid metrics.
		if p.Speedup <= 0 || math.IsNaN(p.Speedup) || math.IsInf(p.Speedup, 0) {
			t.Errorf("point %d speedup %g invalid", i, p.Speedup)
		}
		if p.Gap < 0 || math.IsNaN(p.Gap) {
			t.Errorf("point %d gap %g invalid", i, p.Gap)
		}
	}

	fired := inj.FiredKeys()
	if len(fired) < 3 {
		t.Fatalf("only %d points were hit by injection; the chaos test needs a real fault load", len(fired))
	}
	t.Logf("chaos: %d faults on %d/%d points; %d failed, %d degraded",
		inj.FiredCount(), len(fired), len(specs), failed, len(hit)-failed)

	// Exact accounting: the failed/degraded set IS the injected set.
	firedSet := map[uint64]bool{}
	for _, k := range fired {
		firedSet[k] = true
		if _, ok := hit[k]; !ok {
			t.Errorf("fault fired on point %d but it is neither failed nor degraded", k)
		}
	}
	for k, state := range hit {
		if !firedSet[k] {
			t.Errorf("point %d is %s but no fault fired on it", k, state)
		}
	}

	// Failed points are exactly the panics the sweep workers recovered.
	if got := reg.Counter(obs.MSweepPanics).Value(); got != int64(failed) {
		t.Errorf("%s = %d, want %d (one per failed point)", obs.MSweepPanics, got, failed)
	}
	if got := reg.Counter(obs.MSweepPointsFailed).Value(); got != int64(failed) {
		t.Errorf("%s = %d, want %d", obs.MSweepPointsFailed, got, failed)
	}
}

// TestChaosSweepCleanWithRetryBudget checks the opposite regime: with the
// default Times=1 budget every solve-site fault is healed by the retry, so the
// sweep reports no failed and no degraded points even though faults fired.
func TestChaosSweepCleanWithRetryBudget(t *testing.T) {
	w := rodinia.Workload{Name: "chaos-clean", Apps: rodinia.DefaultWorkload().Apps[:2]}
	specs := make([]soc.Spec, 20)
	for i := range specs {
		specs[i] = soc.Spec{CPUCores: 1 + i%3, GPUFrequenciesMHz: []float64{765}}
	}
	inj := faults.New(faults.Config{
		Seed:  7,
		Rate:  0.5,
		Kinds: []faults.Kind{faults.KindError},
		Sites: []string{faults.SiteSolve},
	})
	ctx := faults.NewContext(context.Background(), inj)
	points := Sweep(ctx, specs, 4, HILPEvaluator(w, core.Profile{InitialStepSec: 10, Horizon: 200}, scheduler.Config{Seed: 1, Effort: 0.2}))
	for i, p := range points {
		if p.Err != nil {
			t.Errorf("point %d failed despite retry budget: %v", i, p.Err)
		}
		if p.Degraded {
			t.Errorf("point %d degraded despite retry budget", i)
		}
	}
	if inj.FiredCount() == 0 {
		t.Error("no faults fired; the retry path was not exercised")
	}
}
