package dse

import (
	"encoding/csv"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteCSV(t *testing.T) {
	pts := []Point{
		{Label: "(c1,g0,d0^0)", AreaMM2: 16.6, Speedup: 1, WLP: 1, MakespanSec: 100, Mix: NoAccel},
		{Label: "(c4,g16,d0^0)", AreaMM2: 170.4, Speedup: 33.4, WLP: 2.5, MakespanSec: 48.8, Mix: GPUDominated},
		{Label: "(broken)", AreaMM2: 10, Mix: NoAccel, Err: errors.New("boom")},
	}
	var b strings.Builder
	if err := WriteCSV(&b, "HILP", pts); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header + 3 rows:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "model,soc,") {
		t.Errorf("bad header %q", lines[0])
	}
	if !strings.Contains(lines[2], "33.4000") || !strings.Contains(lines[2], "gpu-dominated") {
		t.Errorf("bad row %q", lines[2])
	}
	if !strings.Contains(lines[3], "boom") {
		t.Errorf("error row missing message: %q", lines[3])
	}
}

// TestWriteCSVEscaping: fields with commas, quotes, and newlines must be
// quoted per RFC 4180 so a CSV reader recovers them intact.
func TestWriteCSVEscaping(t *testing.T) {
	pts := []Point{
		{Label: `evil,"label"`, AreaMM2: 1, Speedup: 2, Mix: NoAccel},
		{Label: "bad", AreaMM2: 2, Mix: NoAccel, Err: errors.New("line1\nline2, with comma")},
	}
	var b strings.Builder
	if err := WriteCSV(&b, "HILP", pts); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(strings.NewReader(b.String()))
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v\n%s", err, b.String())
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want header + 2", len(rows))
	}
	if rows[1][1] != `evil,"label"` {
		t.Errorf("label round trip: %q", rows[1][1])
	}
	if rows[2][8] != "line1\nline2, with comma" {
		t.Errorf("error round trip: %q", rows[2][8])
	}
	if rows[2][3] != "" {
		t.Errorf("errored row speedup = %q, want empty", rows[2][3])
	}
}

func TestHypervolume(t *testing.T) {
	pts := []Point{
		{Label: "a", AreaMM2: 10, Speedup: 2},
		{Label: "b", AreaMM2: 20, Speedup: 5},
	}
	// Reference (30, 0): a contributes (30-10)x(2-0)=40; b adds
	// (30-20)x(5-2)=30. Total 70.
	if hv := Hypervolume(pts, 30, 0); math.Abs(hv-70) > 1e-9 {
		t.Errorf("hypervolume = %g, want 70", hv)
	}
	// Dominated points cannot change the value.
	withDominated := append([]Point{{Label: "dom", AreaMM2: 25, Speedup: 1}}, pts...)
	if hv := Hypervolume(withDominated, 30, 0); math.Abs(hv-70) > 1e-9 {
		t.Errorf("hypervolume with dominated point = %g, want 70", hv)
	}
	// Points outside the reference box contribute nothing.
	outside := []Point{{Label: "huge", AreaMM2: 50, Speedup: 9}}
	if hv := Hypervolume(outside, 30, 0); hv != 0 {
		t.Errorf("hypervolume = %g, want 0 for out-of-box points", hv)
	}
	if hv := Hypervolume(nil, 30, 0); hv != 0 {
		t.Errorf("hypervolume of nothing = %g", hv)
	}
}

func TestHypervolumeMonotoneInFrontQuality(t *testing.T) {
	base := []Point{
		{Label: "a", AreaMM2: 10, Speedup: 2},
		{Label: "b", AreaMM2: 20, Speedup: 5},
	}
	better := append([]Point{{Label: "c", AreaMM2: 15, Speedup: 4}}, base...)
	if Hypervolume(better, 30, 0) < Hypervolume(base, 30, 0) {
		t.Error("adding a non-dominated point reduced the hypervolume")
	}
}

func TestDominatedCount(t *testing.T) {
	pts := []Point{
		{Label: "best", AreaMM2: 10, Speedup: 5},
		{Label: "worse", AreaMM2: 20, Speedup: 3},   // dominated by best
		{Label: "tradeoff", AreaMM2: 5, Speedup: 1}, // Pareto (smaller area)
		{Label: "err", Err: errors.New("x")},
	}
	counts := DominatedCount(pts)
	if counts[0] != 0 || counts[2] != 0 {
		t.Errorf("Pareto points dominated: %v", counts)
	}
	if counts[1] != 1 {
		t.Errorf("worse dominated by %d, want 1", counts[1])
	}
	if counts[3] != -1 {
		t.Errorf("errored point count = %d, want -1", counts[3])
	}
}

func TestSortByArea(t *testing.T) {
	pts := []Point{
		{Label: "big", AreaMM2: 30},
		{Label: "small-fast", AreaMM2: 10, Speedup: 9},
		{Label: "small-slow", AreaMM2: 10, Speedup: 1},
	}
	out := SortByArea(pts)
	if out[0].Label != "small-fast" || out[1].Label != "small-slow" || out[2].Label != "big" {
		t.Errorf("order: %v %v %v", out[0].Label, out[1].Label, out[2].Label)
	}
	// Input untouched.
	if pts[0].Label != "big" {
		t.Error("SortByArea mutated its input")
	}
}

// TestParetoFrontMutuallyNonDominated is the defining property of a front,
// checked on random point sets.
func TestParetoFrontMutuallyNonDominated(t *testing.T) {
	f := func(seed uint16) bool {
		rng := int(seed) + 1
		next := func() float64 {
			rng = (rng*1103515245 + 12345) & 0x7fffffff
			return float64(rng%1000) / 10
		}
		pts := make([]Point, 12)
		for i := range pts {
			pts[i] = Point{Label: "p", AreaMM2: 1 + next(), Speedup: next()}
		}
		front := ParetoFront(pts)
		counts := DominatedCount(front)
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		// Every input point must be dominated by or equal to some front point.
		for _, p := range pts {
			covered := false
			for _, q := range front {
				if q.AreaMM2 <= p.AreaMM2 && q.Speedup >= p.Speedup {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
