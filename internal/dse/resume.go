package dse

import (
	"errors"

	"hilp/internal/core"
	"hilp/internal/soc"
	"hilp/internal/wire"
)

// FromWirePoint reconstructs a sweep point from its journaled wire form, for
// BatchOptions.Resume. Identity fields (Spec, Label, AreaMM2, Mix) come from
// the current spec s, not the record — the engine would recompute them anyway,
// and deriving them locally keeps a replayed point byte-identical to a fresh
// solve of the same model. A journaled error string comes back as an opaque
// error (the original type did not survive serialization).
func FromWirePoint(wp wire.Point, s soc.Spec) Point {
	p := newPoint(s)
	p.Speedup = wp.Speedup
	p.WLP = wp.WLP
	p.Gap = wp.Gap
	p.MakespanSec = wp.MakespanSec
	p.Cancelled = wp.Cancelled
	p.Degraded = wp.Degraded
	p.FallbackReason = wp.FallbackReason
	p.RequestID = wp.RequestID
	p.CacheHit = wp.CacheHit
	p.WarmStarted = wp.WarmStarted
	p.Pruned = wp.Pruned
	p.PrunedBy = wp.PrunedBy
	p.SpeedupBound = wp.SpeedupBound
	p.Resumed = wp.Resumed
	if wp.Error != "" {
		p.Err = errors.New(wp.Error)
	}
	return p
}

// ToWirePoint is FromWirePoint's inverse: the wire encoding of a sweep point
// (responses and journal records share it, so a journaled point replays
// losslessly).
func ToWirePoint(p Point) wire.Point {
	wp := wire.Point{
		Spec:           wire.FromSpec(p.Spec),
		Label:          p.Label,
		AreaMM2:        p.AreaMM2,
		Speedup:        p.Speedup,
		WLP:            p.WLP,
		Gap:            p.Gap,
		MakespanSec:    p.MakespanSec,
		Mix:            p.Mix.String(),
		Cancelled:      p.Cancelled,
		Degraded:       p.Degraded,
		FallbackReason: p.FallbackReason,
		RequestID:      p.RequestID,
		CacheHit:       p.CacheHit,
		WarmStarted:    p.WarmStarted,
		Pruned:         p.Pruned,
		PrunedBy:       p.PrunedBy,
		SpeedupBound:   p.SpeedupBound,
		Resumed:        p.Resumed,
	}
	if p.Err != nil {
		wp.Error = p.Err.Error()
	}
	return wp
}

// Resumable reports whether a journaled point is worth replaying on resume:
// it completed without an error and was not cut short by cancellation.
// Degraded points ARE resumable — their metrics are valid, and with the
// deterministic fault injector a re-solve would reproduce them anyway.
// Cancelled and errored points re-solve ("at-least-once point solve").
func Resumable(wp wire.Point) bool {
	return wp.Error == "" && !wp.Cancelled
}

// CheckResumeKey refuses a resume whose journal was recorded against a
// different model: recorded is the jobStart record's ModelKey, current the
// canonical key of the model about to run. Resuming across model changes
// would splice one model's metrics into another's result set, so the
// mismatch is a field-addressed validation error (HTTP 422 under
// hilp-serve), not a silent re-solve.
func CheckResumeKey(recorded, current string) error {
	if recorded == "" || recorded == current {
		return nil
	}
	return core.BadField("resume.modelKey", "model_changed",
		"journal was recorded against a different model (journal key %.12s…, current %.12s…); finish or discard it, or rerun without resume", recorded, current)
}
