package dse

import (
	"context"
	"math"
	"testing"
	"time"

	"hilp/internal/core"
	"hilp/internal/faults"
	"hilp/internal/leakcheck"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// TestEngineEquivalence is the sweep engine's correctness property: a sweep
// run with every engine feature on (canonical cache, neighbor warm starts,
// dominance pruning) is result-equivalent to a cold sweep of the same specs.
// Cache hits replay their donor byte-identically; warm-started points carry
// their own gap certificates and cannot contradict the cold run's lower
// bounds; pruned points' certified speedup ceilings hold against the cold
// run's achieved speedups. The property must survive fault-injection chaos
// (failed/degraded points are simply excluded pairwise) and leak no
// goroutines.
func TestEngineEquivalence(t *testing.T) {
	leakcheck.VerifyNoLeaks(t) // registered first so its cleanup runs last

	w := rodinia.Workload{Name: "equiv", Apps: rodinia.DefaultWorkload().Apps[:2]}
	targets := dsaTargets(w, 2)
	specs := []soc.Spec{
		{CPUCores: 1},
		{CPUCores: 1, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		{CPUCores: 2},
		{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		specWithDSAs(2, targets, 16),
		specWithDSAs(2, targets[:1], 16),
		specWithDSAs(2, targets, 4),
		{CPUCores: 4},
		{CPUCores: 4, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		specWithDSAs(4, targets, 16),
		specWithDSAs(4, targets[:1], 16),
		// A canonical duplicate of spec 3: defaults filled explicitly.
		{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765},
			PowerBudgetWatts: soc.DefaultPowerBudget, MemBandwidthGBs: soc.DefaultMemBandwidth,
			DSAAdvantage: soc.DefaultDSAAdvantage},
	}
	const dupOf, dup = 3, 11

	cfg := scheduler.Config{Seed: 1, Effort: 0.2}
	// Fault decisions are pure functions of (seed, site, key) and the key is
	// the point index, so both runs draw the same fault pattern per point.
	chaos := func() context.Context {
		inj := faults.New(faults.Config{
			Seed:  7,
			Rate:  0.15,
			Times: 2,
			Delay: time.Millisecond,
			Sites: []string{faults.SiteSolve, faults.SiteEvaluate},
		})
		return faults.NewContext(context.Background(), inj)
	}

	cold := RunHILP(chaos(), w, specs, core.DSEProfile, cfg, BatchOptions{Workers: 4})
	warm := RunHILP(chaos(), w, specs, core.DSEProfile, cfg,
		BatchOptions{Workers: 4, Cache: true, WarmStart: true, Prune: true})

	if len(cold.Points) != len(specs) || len(warm.Points) != len(specs) {
		t.Fatalf("point counts %d/%d, want %d", len(cold.Points), len(warm.Points), len(specs))
	}

	clean := func(p Point) bool { return p.Err == nil && !p.Cancelled && !p.Degraded && !p.Pruned }

	for i := range specs {
		c, e := cold.Points[i], warm.Points[i]
		if c.Label != e.Label {
			t.Fatalf("point %d: label %q vs %q — output order not preserved", i, c.Label, e.Label)
		}
		if e.Pruned {
			// The certificate is a ceiling on ANY schedule of this spec,
			// including whatever the cold run achieved.
			if clean(c) && c.Speedup > e.SpeedupBound+1e-9 {
				t.Errorf("%s: cold speedup %g beats the pruning certificate %g",
					c.Label, c.Speedup, e.SpeedupBound)
			}
			continue
		}
		if !clean(c) || !clean(e) {
			continue // a faulted side has no converged metrics to compare
		}
		// Both runs solved the same continuous model: each side's certified
		// lower bound must not exceed the other side's achieved makespan.
		lbC := c.MakespanSec * (1 - c.Gap)
		lbE := e.MakespanSec * (1 - e.Gap)
		if lbC > e.MakespanSec*(1+1e-9) {
			t.Errorf("%s: cold lower bound %gs exceeds engine makespan %gs", c.Label, lbC, e.MakespanSec)
		}
		if lbE > c.MakespanSec*(1+1e-9) {
			t.Errorf("%s: engine lower bound %gs exceeds cold makespan %gs", c.Label, lbE, c.MakespanSec)
		}
		for name, v := range map[string]float64{
			"speedup": e.Speedup, "wlp": e.WLP, "gap": e.Gap, "makespan": e.MakespanSec,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: engine %s = %g", e.Label, name, v)
			}
		}
	}

	// The canonical duplicate must be a byte-identical replay of its owner
	// (or of the same underlying solve, whichever index won the walk order).
	d, o := warm.Points[dup], warm.Points[dupOf]
	if clean(o) && !d.Pruned {
		if !d.CacheHit {
			t.Errorf("duplicate spec %s not served from cache", d.Label)
		} else if d.MakespanSec != o.MakespanSec || d.Speedup != o.Speedup || d.Gap != o.Gap || d.WLP != o.WLP {
			t.Errorf("cache hit diverges from owner: %+v vs %+v", d, o)
		}
	}

	// Accounting: every point is exactly one of solved, cache hit, or pruned.
	if s := warm.Stats; s.Solved+s.CacheHits+s.Pruned != s.Points {
		t.Errorf("stats do not partition the batch: %+v", s)
	}
	if cold.Stats.CacheHits != 0 || cold.Stats.Pruned != 0 || cold.Stats.WarmStarted != 0 {
		t.Errorf("cold run used engine features: %+v", cold.Stats)
	}
}
