// Package baselines implements the two state-of-the-art early-stage models
// the paper compares against: MultiAmdahl (fixed sequential phase order,
// minimal WLP) and parallel-mode Gables (dependencies discarded, maximal
// WLP). Both consume the same workload, SoC, and architecture models as
// HILP so the comparison is apples-to-apples.
package baselines

import (
	"context"
	"fmt"
	"math"

	"hilp/internal/core"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// MAChoice records where MultiAmdahl ran one phase.
type MAChoice struct {
	Task  string
	Label string
	Sec   float64
}

// MAResult is a MultiAmdahl evaluation.
type MAResult struct {
	MakespanSec float64
	Speedup     float64
	WLP         float64 // always 1: MA assumes a fixed sequential order
	Choices     []MAChoice
}

// MultiAmdahl evaluates the workload under MA's assumption: every phase of
// every application executes in a fixed sequential order, each on the
// fastest compatible compute unit whose standalone power and bandwidth
// demands respect the budgets. Because at most one phase is ever active,
// constraints never interact and the model is solved analytically (as the
// original MA does); WLP is identically 1.
func MultiAmdahl(w rodinia.Workload, spec soc.Spec) (MAResult, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return MAResult{}, err
	}

	powerOK := func(watts, bwGBs float64) bool {
		total := watts + soc.MemoryPowerWatts(bwGBs)
		if !math.IsInf(spec.PowerBudgetWatts, 1) && total > spec.PowerBudgetWatts+1e-9 {
			return false
		}
		if !math.IsInf(spec.MemBandwidthGBs, 1) && bwGBs > spec.MemBandwidthGBs+1e-9 {
			return false
		}
		return true
	}

	res := MAResult{WLP: 1}
	for _, app := range w.Apps {
		b := app.Bench

		// Setup: one CPU core.
		if !powerOK(soc.CPUCoreWatts, 0) {
			return MAResult{}, fmt.Errorf("baselines: a single CPU core exceeds the %g W budget", spec.PowerBudgetWatts)
		}
		res.Choices = append(res.Choices, MAChoice{Task: b.Abbrev + ".setup", Label: "cpu", Sec: app.SetupSec()})
		res.MakespanSec += app.SetupSec()

		// Compute: fastest feasible unit.
		bestSec := math.Inf(1)
		bestLabel := ""
		consider := func(sec, watts, bw float64, label string) {
			if sec < bestSec && powerOK(watts, bw) {
				bestSec = sec
				bestLabel = label
			}
		}
		consider(soc.CPUTimeSec(b, 1), soc.CPUCoreWatts, soc.CPUBandwidthGBs(b, 1), "cpu")
		if spec.CPUCores > 1 {
			consider(soc.CPUTimeSec(b, spec.CPUCores),
				soc.CPUCoreWatts*float64(spec.CPUCores),
				soc.CPUBandwidthGBs(b, spec.CPUCores),
				fmt.Sprintf("cpu-x%d", spec.CPUCores))
		}
		if spec.GPUSMs > 0 {
			for _, f := range spec.GPUFrequenciesMHz {
				consider(soc.GPUTimeSec(b, spec.GPUSMs, f),
					soc.GPUPowerWatts(spec.GPUSMs, f),
					soc.GPUBandwidthGBs(b, spec.GPUSMs, f),
					fmt.Sprintf("gpu@%gMHz", f))
			}
		}
		if d, ok := spec.DSAFor(b.Abbrev); ok {
			consider(soc.DSATimeSec(b, d.PEs, spec.DSAAdvantage),
				soc.DSAPowerWatts(d.PEs, spec.DSAAdvantage),
				soc.DSABandwidthGBs(b, d.PEs, spec.DSAAdvantage),
				"dsa-"+b.Abbrev)
		}
		if math.IsInf(bestSec, 1) {
			return MAResult{}, fmt.Errorf("baselines: no feasible unit for %s.compute under the constraints", b.Abbrev)
		}
		res.Choices = append(res.Choices, MAChoice{Task: b.Abbrev + ".compute", Label: bestLabel, Sec: bestSec})
		res.MakespanSec += bestSec

		// Teardown: one CPU core.
		res.Choices = append(res.Choices, MAChoice{Task: b.Abbrev + ".teardown", Label: "cpu", Sec: app.TeardownSec()})
		res.MakespanSec += app.TeardownSec()
	}

	if res.MakespanSec > 0 {
		res.Speedup = w.SequentialSingleCoreSec() / res.MakespanSec
	}
	return res, nil
}

// Gables evaluates the workload under parallel-mode Gables' assumption: all
// phase dependencies are discarded and every phase is free to execute
// concurrently, subject only to compute-unit exclusivity and the memory
// bandwidth budget (Gables, a Roofline derivative, models bandwidth but not
// power). The resulting optimistic schedule is found with the same solver
// HILP uses, on the same instance minus the dependency edges.
func Gables(ctx context.Context, w rodinia.Workload, spec soc.Spec, profile core.Profile, cfg scheduler.Config) (*core.Result, error) {
	spec = spec.Normalize()
	spec.PowerBudgetWatts = math.Inf(1) // Gables cannot constrain power

	res, err := core.SolveAdaptive(ctx, func(stepSec float64, horizon int) (*core.Instance, error) {
		inst, err := core.BuildInstance(w, spec, stepSec, horizon)
		if err != nil {
			return nil, err
		}
		for i := range inst.Problem.Tasks {
			inst.Problem.Tasks[i].Deps = nil
		}
		return inst, nil
	}, profile, cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: gables: %w", err)
	}
	if res.MakespanSec > 0 {
		res.Speedup = w.SequentialSingleCoreSec() / res.MakespanSec
	}
	return res, nil
}
