package baselines

import (
	"context"
	"math"
	"testing"

	"hilp/internal/core"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

func TestMultiAmdahlHeadlineNumber(t *testing.T) {
	// Paper §VI: MA reports a speedup of 18.2 for the (c1,g64,d0^0) SoC on
	// the Default workload. Our reproduction should land close.
	w := rodinia.DefaultWorkload()
	res, err := MultiAmdahl(w, soc.Spec{CPUCores: 1, GPUSMs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 16 || res.Speedup > 21 {
		t.Errorf("MA speedup = %.1f, paper reports 18.2", res.Speedup)
	}
	if res.WLP != 1 {
		t.Errorf("MA WLP = %g, must be 1 by construction", res.WLP)
	}
}

func TestMultiAmdahlSpeedupConstantInCPUCount(t *testing.T) {
	// Paper Fig. 6: MA's speedup does not change with CPU count when the
	// GPU configuration is fixed... except that more cores let the compute
	// phase itself run wider. With a 64-SM GPU the GPU always wins the
	// compute phase, so speedups stay flat.
	w := rodinia.RodiniaWorkload()
	var prev float64
	for i, cores := range []int{1, 2, 4, 8} {
		res, err := MultiAmdahl(w, soc.Spec{CPUCores: cores, GPUSMs: 64})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && math.Abs(res.Speedup-prev) > 1e-9 {
			t.Errorf("MA speedup changed from %g to %g with %d cores", prev, res.Speedup, cores)
		}
		prev = res.Speedup
	}
	// Paper Fig. 6a: MA reports 4.9 for Rodinia on the 64-SM SoC.
	if prev < 4 || prev > 6 {
		t.Errorf("MA Rodinia speedup = %.1f, paper reports 4.9", prev)
	}
}

func TestMultiAmdahlOptimizedSpeedup(t *testing.T) {
	// Paper Fig. 6b: MA's Optimized speedup (19.8 in the paper) is much
	// higher than its Rodinia speedup (4.9) because the sequential phases
	// shrink 20x. Under our §VI-calibrated model MA lands higher in absolute
	// terms (see EXPERIMENTS.md); the shape - a large jump versus Rodinia,
	// still far below Gables - is what we assert.
	opt, err := MultiAmdahl(rodinia.OptimizedWorkload(), soc.Spec{CPUCores: 4, GPUSMs: 64})
	if err != nil {
		t.Fatal(err)
	}
	rod, err := MultiAmdahl(rodinia.RodiniaWorkload(), soc.Spec{CPUCores: 4, GPUSMs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Speedup < 3*rod.Speedup {
		t.Errorf("Optimized speedup %.1f not well above Rodinia %.1f", opt.Speedup, rod.Speedup)
	}
}

func TestMultiAmdahlRespectsPowerBudget(t *testing.T) {
	w := rodinia.DefaultWorkload()
	// With a tight budget the big GPU operating points are excluded, so the
	// makespan grows.
	free, err := MultiAmdahl(w, soc.Spec{CPUCores: 1, GPUSMs: 64})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := MultiAmdahl(w, soc.Spec{CPUCores: 1, GPUSMs: 64, PowerBudgetWatts: 40})
	if err != nil {
		t.Fatal(err)
	}
	if capped.MakespanSec < free.MakespanSec-1e-9 {
		t.Errorf("power-capped MA faster (%g) than unconstrained (%g)", capped.MakespanSec, free.MakespanSec)
	}
	// Budget below a single CPU core: infeasible.
	if _, err := MultiAmdahl(w, soc.Spec{CPUCores: 1, PowerBudgetWatts: 3}); err == nil {
		t.Error("MA accepted an impossible power budget")
	}
}

func TestMultiAmdahlChoicesCoverAllPhases(t *testing.T) {
	w := rodinia.DefaultWorkload()
	res, err := MultiAmdahl(w, soc.Spec{CPUCores: 4, GPUSMs: 16, DSAs: []soc.DSA{{PEs: 16, Target: "LUD"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Choices) != 30 {
		t.Fatalf("%d choices, want 30 (3 per app)", len(res.Choices))
	}
	// LUD's compute must use its DSA: it is the fastest unit for it.
	for _, c := range res.Choices {
		if c.Task == "LUD.compute" && c.Label != "dsa-LUD" {
			t.Errorf("LUD.compute ran on %s, want dsa-LUD", c.Label)
		}
	}
	// Makespan is the sum of all choices.
	sum := 0.0
	for _, c := range res.Choices {
		sum += c.Sec
	}
	if math.Abs(sum-res.MakespanSec) > 1e-9 {
		t.Errorf("choices sum %g != makespan %g", sum, res.MakespanSec)
	}
}

func TestGablesOptimisticVsHILP(t *testing.T) {
	// Gables discards dependencies, so it can never be slower than HILP on
	// the same SoC, and its WLP should not be lower.
	w := rodinia.Workload{Name: "mini", Apps: rodinia.DefaultWorkload().Apps[:4]}
	spec := soc.Spec{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}
	profile := core.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 20, MaxRefinements: 2}
	cfg := scheduler.Config{Seed: 1, Effort: 0.4}

	hilp, err := core.Solve(context.Background(), w, spec, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gab, err := Gables(context.Background(), w, spec, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gab.Speedup < hilp.Speedup*0.95 {
		t.Errorf("Gables speedup %.1f below HILP %.1f; Gables must be optimistic", gab.Speedup, hilp.Speedup)
	}
	if gab.WLP+0.3 < hilp.WLP {
		t.Errorf("Gables WLP %.2f well below HILP %.2f", gab.WLP, hilp.WLP)
	}
}

func TestGablesIgnoresPowerBudget(t *testing.T) {
	// Gables has no power constraint: a tiny budget must not change it.
	w := rodinia.Workload{Name: "mini", Apps: rodinia.DefaultWorkload().Apps[:3]}
	profile := core.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 20, MaxRefinements: 2}
	cfg := scheduler.Config{Seed: 1, Effort: 0.3}
	a, err := Gables(context.Background(), w, soc.Spec{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Gables(context.Background(), w, soc.Spec{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}, PowerBudgetWatts: 5}, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MakespanSec-b.MakespanSec) > 1e-9 {
		t.Errorf("power budget changed Gables: %g vs %g", a.MakespanSec, b.MakespanSec)
	}
}

func TestOrderingMAPessimisticGablesOptimistic(t *testing.T) {
	// The paper's central claim, in miniature: MA <= HILP <= Gables.
	w := rodinia.Workload{Name: "mini", Apps: rodinia.DefaultWorkload().Apps[:4]}
	spec := soc.Spec{CPUCores: 4, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}
	profile := core.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 20, MaxRefinements: 2}
	cfg := scheduler.Config{Seed: 1, Effort: 0.4}

	ma, err := MultiAmdahl(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	hilp, err := core.Solve(context.Background(), w, spec, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gab, err := Gables(context.Background(), w, spec, profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(ma.Speedup <= hilp.Speedup*1.05 && hilp.Speedup <= gab.Speedup*1.05) {
		t.Errorf("ordering violated: MA %.1f, HILP %.1f, Gables %.1f", ma.Speedup, hilp.Speedup, gab.Speedup)
	}
}
