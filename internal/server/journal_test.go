package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hilp/internal/journal"
	"hilp/internal/wire"
)

// journalSweepReq is the small sweep request the journal tests submit and
// hand-journal: two specs, millisecond solves.
func journalSweepReq() *wire.SweepRequest {
	return &wire.SweepRequest{
		Workload: &wire.Workload{Apps: []wire.App{{Bench: "LUD"}, {Bench: "HS"}}},
		Specs: []wire.SoC{
			{CPUCores: 1, GPUFrequenciesMHz: []float64{765}},
			{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		},
		Profile: &wire.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 0, MaxRefinements: 0},
		Solver:  &wire.SolverConfig{Seed: 1, Effort: 0.2},
	}
}

// writeInterruptedJob hand-builds the journal a crashed server would leave
// behind: a synced jobStart, one clean point record, no jobEnd. It returns
// the model key the records were stamped with.
func writeInterruptedJob(t *testing.T, dir, jobID, modelKey string) {
	t.Helper()
	tmp := New(Config{})
	plan, apiErr := tmp.planSweep(journalSweepReq())
	if apiErr != nil {
		t.Fatalf("planSweep: %v", apiErr.err)
	}
	if modelKey == "" {
		modelKey = plan.modelKey
	}
	jnl, err := journal.Open(dir, journal.Options{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	records := []wire.JournalRecord{
		{Kind: wire.JournalKindJobStart, JobID: jobID, Start: &wire.JournalJobStart{
			RequestID:      "req-recover",
			IdempotencyKey: "idem-recover",
			Total:          len(plan.specs),
			Request:        plan.req,
			ModelKey:       modelKey,
		}},
		{Kind: wire.JournalKindPoint, JobID: jobID, Point: &wire.JournalPoint{
			Index: 0,
			Point: wire.Point{Label: plan.specs[0].Label(), Speedup: 1.0, WLP: 1.0},
		}},
	}
	for _, rec := range records {
		if err := jnl.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverInterruptedJobResumes: a journal holding a jobStart and one
// clean point but no jobEnd is an interrupted job; Recover re-enters it into
// the worker pool, replays the journaled point instead of re-solving it, and
// the job runs to completion under its original ID and idempotency key.
func TestRecoverInterruptedJobResumes(t *testing.T) {
	dir := t.TempDir()
	writeInterruptedJob(t, dir, "job-interrupted", "")

	s, ts := newTestServer(t, Config{JournalDir: dir})
	rs, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Jobs != 1 || rs.Resumed != 1 || rs.Terminal != 0 || rs.ResumedPoints != 1 {
		t.Fatalf("recovery stats %+v, want 1 job resumed with 1 point", rs)
	}
	waitJobTerminal(t, s, "job-interrupted")

	resp, err := http.Get(ts.URL + "/v1/jobs/job-interrupted")
	if err != nil {
		t.Fatal(err)
	}
	var j wire.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET recovered job: status %d", resp.StatusCode)
	}
	if j.Status != "done" || j.Done != j.Total || j.Total != 2 {
		t.Fatalf("job %+v, want done 2/2", j)
	}
	if !j.Resumed || j.ResumedPoints != 1 {
		t.Errorf("resumed=%v resumedPoints=%d, want true/1", j.Resumed, j.ResumedPoints)
	}
	if j.Result == nil || len(j.Result.Points) != 2 {
		t.Fatalf("result %+v, want 2 points", j.Result)
	}
	if !j.Result.Points[0].Resumed || j.Result.Points[0].Speedup != 1.0 {
		t.Errorf("point 0 = %+v, want the journaled point replayed verbatim", j.Result.Points[0])
	}
	if j.Result.Points[1].Resumed || j.Result.Points[1].Speedup <= 0 {
		t.Errorf("point 1 = %+v, want freshly solved", j.Result.Points[1])
	}

	// The restored idempotency mapping keeps deduplicating: resubmitting the
	// original request reattaches to the recovered job.
	body, _ := json.Marshal(journalSweepReq())
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Idempotency-Key", "idem-recover")
	dup, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dupJob wire.Job
	json.NewDecoder(dup.Body).Decode(&dupJob)
	dup.Body.Close()
	if dup.StatusCode != http.StatusOK || dupJob.ID != "job-interrupted" {
		t.Errorf("idempotent resubmit: status %d job %q, want 200 job-interrupted", dup.StatusCode, dupJob.ID)
	}
}

// TestRecoverRefusesChangedModel: a journal recorded against a different
// model key must not resume — the job is re-registered as failed with the
// field-addressed validation error.
func TestRecoverRefusesChangedModel(t *testing.T) {
	dir := t.TempDir()
	writeInterruptedJob(t, dir, "job-skewed", "some-other-model-key")

	s, _ := newTestServer(t, Config{JournalDir: dir})
	rs, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Jobs != 1 || rs.Resumed != 0 {
		t.Fatalf("recovery stats %+v, want 1 job, none resumed", rs)
	}
	s.jobMu.Lock()
	j := s.jobs["job-skewed"]
	s.jobMu.Unlock()
	if j == nil {
		t.Fatal("skewed job not registered")
	}
	snap := j.snapshot()
	if snap.Status != "failed" || !strings.Contains(snap.Error, "resume.modelKey") {
		t.Errorf("job %+v, want failed with resume.modelKey error", snap)
	}
}

// TestJournalTerminalJobSurvivesRestart: a job that finished before the
// restart keeps answering GET /v1/jobs/{id} from the rebuilt journal state,
// and its idempotency key keeps deduplicating, without re-running the sweep.
func TestJournalTerminalJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	body, _ := json.Marshal(journalSweepReq())

	// First server: run one sweep to completion, then shut down cleanly.
	s1 := New(Config{JournalDir: dir})
	if _, err := s1.Recover(); err != nil {
		t.Fatalf("first Recover: %v", err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	req, _ := http.NewRequest(http.MethodPost, ts1.URL+"/v1/sweep", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Idempotency-Key", "idem-restart")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var started wire.Job
	json.NewDecoder(resp.Body).Decode(&started)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep status %d, want 202", resp.StatusCode)
	}
	waitJobTerminal(t, s1, started.ID)
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	// Second server over the same journal: the job is back, terminal, with
	// its full result — and solving nothing (recovery stats say terminal).
	s2, ts2 := newTestServer(t, Config{JournalDir: dir})
	rs, err := s2.Recover()
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if rs.Jobs != 1 || rs.Terminal != 1 || rs.Resumed != 0 {
		t.Fatalf("recovery stats %+v, want 1 terminal job", rs)
	}
	got, err := http.Get(ts2.URL + "/v1/jobs/" + started.ID)
	if err != nil {
		t.Fatal(err)
	}
	var j wire.Job
	json.NewDecoder(got.Body).Decode(&j)
	got.Body.Close()
	if got.StatusCode != http.StatusOK {
		t.Fatalf("GET after restart: status %d", got.StatusCode)
	}
	if j.Status != "done" || j.Result == nil || len(j.Result.Points) != 2 {
		t.Fatalf("restarted job %+v, want done with 2 points", j)
	}

	// Client retry of the original POST reattaches across the restart.
	req2, _ := http.NewRequest(http.MethodPost, ts2.URL+"/v1/sweep", strings.NewReader(string(body)))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("X-Idempotency-Key", "idem-restart")
	dup, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var dupJob wire.Job
	json.NewDecoder(dup.Body).Decode(&dupJob)
	dup.Body.Close()
	if dup.StatusCode != http.StatusOK || dupJob.ID != started.ID {
		t.Errorf("retry after restart: status %d job %q, want 200 %q", dup.StatusCode, dupJob.ID, started.ID)
	}
}

// TestSweepIdempotencyKey: two submissions under one key run one sweep — the
// first gets 202, the retry gets 200 with the same job; a different key gets
// its own job.
func TestSweepIdempotencyKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(journalSweepReq())
	submit := func(key string) (int, wire.Job) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var j wire.Job
		json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		return resp.StatusCode, j
	}

	st1, j1 := submit("key-A")
	st2, j2 := submit("key-A")
	st3, j3 := submit("key-B")
	if st1 != http.StatusAccepted {
		t.Errorf("first submit status %d, want 202", st1)
	}
	if st2 != http.StatusOK || j2.ID != j1.ID {
		t.Errorf("duplicate submit: status %d job %q, want 200 %q", st2, j2.ID, j1.ID)
	}
	if st3 != http.StatusAccepted || j3.ID == j1.ID {
		t.Errorf("different key: status %d job %q, want a fresh 202 job", st3, j3.ID)
	}
}

// TestJobRetention: the registry evicts the oldest terminal job (and its
// idempotency mapping) when full, and rejects only when every retained job is
// still running.
func TestJobRetention(t *testing.T) {
	s := New(Config{MaxJobs: 2})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	j1, existing, err := s.newJob(1, "idem-1")
	if err != nil || existing {
		t.Fatalf("job 1: existing=%v err=%v", existing, err)
	}
	if _, _, err := s.newJob(1, ""); err != nil {
		t.Fatalf("job 2: %v", err)
	}
	// Registry full of running jobs: the next submission is rejected.
	if _, _, err := s.newJob(1, ""); err == nil {
		t.Fatal("third job admitted with all slots running, want rejection")
	}
	// One job finishes: the next submission evicts it, along with its
	// idempotency mapping, instead of being rejected.
	j1.mu.Lock()
	j1.status = "done"
	j1.mu.Unlock()
	j3, _, err := s.newJob(1, "")
	if err != nil {
		t.Fatalf("post-eviction job: %v", err)
	}
	s.jobMu.Lock()
	_, oldRetained := s.jobs[j1.id]
	_, idemRetained := s.idem["idem-1"]
	_, newRetained := s.jobs[j3.id]
	n := len(s.jobs)
	s.jobMu.Unlock()
	if oldRetained || idemRetained {
		t.Errorf("evicted job retained: job=%v idem=%v", oldRetained, idemRetained)
	}
	if !newRetained || n != 2 {
		t.Errorf("registry after eviction: new=%v len=%d, want true/2", newRetained, n)
	}
	// The evicted key is free again: reusing it creates a fresh job.
	j3.mu.Lock()
	j3.status = "done"
	j3.mu.Unlock()
	j4, existing, err := s.newJob(1, "idem-1")
	if err != nil || existing || j4.id == j1.id {
		t.Errorf("reused key: existing=%v err=%v id=%q, want a fresh job", existing, err, j4.id)
	}
}
