// Package server implements hilp-serve: an HTTP JSON solve service over the
// public hilp API. It exposes synchronous evaluation (POST /v1/evaluate),
// synchronous batched solves through the sweep engine (POST /v1/batch),
// asynchronous design-space sweeps behind job handles (POST /v1/sweep,
// GET /v1/jobs/{id}), liveness and Prometheus-text metrics endpoints, a
// bounded worker pool with admission control, an LRU cache keyed on the
// canonical request hash, and per-request timeouts mapped onto solver
// deadlines. Because the whole solve stack has anytime semantics, a request
// hitting its deadline still returns 200 with the best incumbent found and
// result.cancelled set — never a wasted solve.
//
// Robustness contract: every error response is a structured
// wire.ErrorResponse with a machine-readable Code; invalid models come back
// as 422 with field-addressed diagnostics, oversized bodies as 413, unknown
// JSON fields as 400, and a panic anywhere in a handler or job as a 500 (or a
// "failed" job) — never a crashed process. Sweep jobs retry transient
// failures with exponential backoff before giving up.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hilp"
	"hilp/internal/core"
	"hilp/internal/dse"
	"hilp/internal/faults"
	"hilp/internal/journal"
	"hilp/internal/obs"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
	"hilp/internal/wire"
)

// Config tunes the service. The zero value selects production-safe defaults.
type Config struct {
	// Workers bounds concurrent solves; < 1 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond the ones
	// running; further requests are rejected with 429. < 1 selects
	// 2 x Workers.
	QueueDepth int
	// CacheEntries sizes the solve cache; 0 selects 128, negative disables
	// caching.
	CacheEntries int
	// DefaultTimeout bounds a solve when the request does not ask for a
	// budget; 0 selects 30 s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested budgets; 0 selects 5 min.
	MaxTimeout time.Duration
	// MaxJobs bounds retained async jobs; 0 selects 64.
	MaxJobs int
	// MaxBodyBytes bounds request bodies, rejected with 413 beyond it;
	// 0 selects 8 MiB.
	MaxBodyBytes int64
	// JobRetries bounds retry attempts after a transient sweep-job failure
	// (injected fault, recovered panic); 0 selects 2, negative disables
	// retries.
	JobRetries int
	// RetryBaseDelay is the first retry's backoff, doubling per attempt with
	// deterministic jitter; 0 selects 50 ms.
	RetryBaseDelay time.Duration
	// Faults optionally injects faults into request and job handling for
	// chaos testing; nil (the default) disables injection entirely.
	Faults *faults.Injector
	// Obs receives request metrics and solver telemetry. nil creates a
	// metrics-only context so /metrics always works.
	Obs *obs.Context
	// LatencyBuckets overrides the request/point latency histogram buckets
	// (seconds, ascending); empty selects obs.DefBuckets.
	LatencyBuckets []float64
	// RecentRequests sizes the /debug/requests ring; 0 selects 256.
	RecentRequests int
	// LogBuffer, when non-nil, backs GET /debug/logs with the recent
	// structured-log ring (fan the same buffer into Obs.Logger's handler).
	LogBuffer *obs.LogBuffer
	// EventBuffer sizes each live-event subscription's drop-oldest buffer
	// (GET /v1/jobs/{id}/events); 0 selects 256.
	EventBuffer int
	// OTLP, when non-nil, receives one span per request plus per-stage child
	// spans, carrying the request's W3C trace ID. The caller owns the
	// exporter's lifecycle (flush/close on drain).
	OTLP *obs.OTLPExporter
	// JournalDir, when non-empty, enables the crash-recovery journal: sweep
	// jobs append lifecycle records (jobStart, per-point results, jobEnd) to
	// an append-only CRC-framed journal in this directory, and Recover —
	// which the binary MUST call before serving — replays it after a
	// restart, re-registering terminal jobs and resuming interrupted ones
	// with their completed points pre-filled. Empty disables journaling.
	JournalDir string
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	switch {
	case c.JobRetries == 0:
		c.JobRetries = 2
	case c.JobRetries < 0:
		c.JobRetries = 0
	}
	if c.RetryBaseDelay == 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.RecentRequests == 0 {
		c.RecentRequests = 256
	}
	return c
}

// Server is the solve service. Create with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	cfg    Config
	obs    *obs.Context
	mux    *http.ServeMux
	cache  *cache
	reqLog *requestLog

	// tokens is the worker pool: holding a token admits one solve.
	tokens  chan struct{}
	waiting atomic.Int64

	// reqSeq and jobSeq key fault injection per request and per job.
	reqSeq atomic.Uint64
	jobSeq atomic.Uint64

	baseCtx context.Context // parent of all job contexts; Shutdown cancels it
	stop    context.CancelFunc
	jobWG   sync.WaitGroup

	// drainCh closes when the server starts draining, releasing open SSE
	// streams before http.Server.Shutdown waits on them.
	drainCh   chan struct{}
	drainOnce sync.Once
	// ownBus marks a bus created by New (closed on Shutdown) rather than one
	// the caller attached to Config.Obs.
	ownBus bool

	jobMu    sync.Mutex
	jobs     map[string]*job
	jobOrder []string
	// idem maps an X-Idempotency-Key to the job it created, so a client
	// retrying POST /v1/sweep after a lost response reattaches to the
	// original job instead of paying for a second sweep. Guarded by jobMu;
	// entries die with their job (eviction) and survive restarts via the
	// journal's jobStart records.
	idem map[string]*job

	// journal is the crash-recovery journal, non-nil only after Recover ran
	// with Config.JournalDir set. Appends are goroutine-safe.
	journal *journal.Journal
}

type job struct {
	id      string
	reqID   string // correlation ID of the request that started the job
	idemKey string // X-Idempotency-Key that created the job, if any
	total   int
	done    atomic.Int64
	mu      sync.Mutex
	status  string // "running", "done", "cancelled", "failed"
	retries int
	errMsg  string
	result  *wire.SweepResponse
	created time.Time
	// resumed marks a job recovered from the journal after a restart;
	// resumedPoints counts the points replayed instead of re-solved.
	resumed       bool
	resumedPoints int
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	octx := cfg.Obs
	if octx == nil {
		octx = &obs.Context{Metrics: obs.NewRegistry()}
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		obs:     octx,
		mux:     http.NewServeMux(),
		cache:   newCache(cfg.CacheEntries),
		reqLog:  newRequestLog(cfg.RecentRequests),
		tokens:  make(chan struct{}, cfg.Workers),
		baseCtx: ctx,
		stop:    stop,
		drainCh: make(chan struct{}),
		jobs:    map[string]*job{},
		idem:    map[string]*job{},
	}
	// The live-event bus backs GET /v1/jobs/{id}/events. Publishing is a
	// no-op until the first subscriber, so always attaching one keeps the
	// disabled-path overhead contract intact. A bus the caller attached to
	// Config.Obs is honored (and its lifecycle stays theirs).
	if octx.Bus == nil {
		octx.Bus = obs.NewBus(cfg.EventBuffer)
		s.ownBus = true
	}
	octx.Bus.SetDropCounter(octx.Counter(obs.MEventsDropped))
	// Latency histograms are created here so configured buckets win the
	// first-use race against the solver layers' default buckets.
	octx.Histogram(obs.MServeRequestSec, cfg.LatencyBuckets...)
	octx.Histogram(obs.MSweepPointSec, cfg.LatencyBuckets...)
	for _, st := range obs.Stages {
		octx.Histogram(obs.StageMetricName(st), cfg.LatencyBuckets...)
	}
	obs.SetBuildInfo(octx.Metrics)
	s.mux.HandleFunc("POST /v1/evaluate", s.instrument(s.recoverHandler(s.handleEvaluate)))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument(s.recoverHandler(s.handleSweep)))
	s.mux.HandleFunc("POST /v1/batch", s.instrument(s.recoverHandler(s.handleBatch)))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument(s.recoverHandler(s.handleJob)))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument(s.recoverHandler(s.handleJobEvents)))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /debug/logs", s.handleDebugLogs)
	return s
}

// summaryKey carries the request's mutable summary through the handler
// chain, so solve handlers can enrich what the middleware records.
type summaryKey struct{}

func summaryFrom(ctx context.Context) *RequestSummary {
	s, _ := ctx.Value(summaryKey{}).(*RequestSummary)
	return s
}

// statusWriter captures the response status for the request summary.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streams flush through the
// instrumentation middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument is the request-scoped diagnostics middleware: it assigns the
// correlation ID (honoring an incoming X-Request-ID, generating one
// otherwise), echoes it in the response header, threads it through the
// context so every log line, span, and metric exemplar downstream is
// stamped with it, and records a summary in the /debug/requests ring.
//
// It also owns the request's distributed-trace identity (W3C Trace Context):
// an incoming traceparent header is parsed and continued with a fresh child
// span ID, otherwise a new trace is minted; either way the request's own
// context is echoed back in the Traceparent response header. A StageTimer
// rides the context so handlers attribute latency to the pipeline stages
// (validate, cache-lookup, schedule, solve, fallback, encode); closed stages
// feed the per-stage histograms, the request summary, and — when Config.OTLP
// is set — child spans under the request span.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 128 {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)

		var parentSpan string
		tc, err := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if err == nil {
			parentSpan = tc.SpanIDString()
			tc = tc.Child()
		} else {
			tc = obs.NewTraceContext()
		}
		w.Header().Set("Traceparent", tc.String())

		sum := &RequestSummary{ID: id, Path: r.URL.Path, Start: time.Now(), TraceID: tc.TraceIDString()}
		st := obs.NewStageTimer()
		ctx := obs.WithRequestID(r.Context(), id)
		ctx = obs.WithTraceContext(ctx, tc)
		ctx = obs.WithStageTimer(ctx, st)
		ctx = context.WithValue(ctx, summaryKey{}, sum)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.obs.Log(ctx, slog.LevelDebug, "request: accepted", "method", r.Method, "path", r.URL.Path)
		h(sw, r.WithContext(ctx))
		sum.DurationSec = time.Since(sum.Start).Seconds()
		sum.Status = sw.status
		if stages := st.Durations(); stages != nil {
			sum.Stages = stages
			for name, sec := range stages {
				s.obs.Histogram(obs.StageMetricName(name)).ObserveEx(sec, id)
			}
		}
		s.reqLog.add(*sum)
		s.obs.Publish(obs.BusEvent{
			Kind: "request", Name: r.Method + " " + r.URL.Path, Req: id,
			DurSec: sum.DurationSec, Status: strconv.Itoa(sum.Status),
		})
		s.exportRequestSpan(r, sum, tc, parentSpan, st)
		s.obs.Log(ctx, slog.LevelInfo, "request: served",
			"method", r.Method, "path", r.URL.Path, "status", sum.Status,
			"durationSec", sum.DurationSec, "solver", sum.Solver, "cache", sum.Cache)
	}
}

// exportRequestSpan enqueues the request's OTLP span plus one child span per
// closed stage interval, all under the request's trace ID. No-op without a
// configured exporter.
func (s *Server) exportRequestSpan(r *http.Request, sum *RequestSummary, tc obs.TraceContext, parentSpan string, st *obs.StageTimer) {
	if s.cfg.OTLP == nil {
		return
	}
	end := sum.Start.Add(time.Duration(sum.DurationSec * float64(time.Second)))
	root := obs.OTLPSpan{
		TraceID:       tc.TraceIDString(),
		SpanID:        tc.SpanIDString(),
		ParentSpanID:  parentSpan,
		Name:          r.Method + " " + r.URL.Path,
		StartUnixNano: sum.Start.UnixNano(),
		EndUnixNano:   end.UnixNano(),
		Attrs: []obs.OTLPAttr{
			obs.OTLPStr("hilp.request_id", sum.ID),
			obs.OTLPNum("http.response.status_code", float64(sum.Status)),
		},
	}
	spans := []obs.OTLPSpan{root}
	for _, iv := range st.Intervals() {
		spans = append(spans, obs.OTLPSpan{
			TraceID:       tc.TraceIDString(),
			SpanID:        obs.NewSpanID(),
			ParentSpanID:  tc.SpanIDString(),
			Name:          "stage:" + iv.Name,
			StartUnixNano: iv.Start.UnixNano(),
			EndUnixNano:   iv.End.UnixNano(),
			Attrs:         []obs.OTLPAttr{obs.OTLPStr("hilp.request_id", sum.ID)},
		})
	}
	s.cfg.OTLP.EnqueueAll(spans)
}

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain releases long-lived streams: every open GET /v1/jobs/{id}/events
// subscription ends its SSE response promptly. Call it before
// http.Server.Shutdown, which blocks until streaming responses finish.
// Idempotent and safe from any goroutine.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Shutdown drains the service: it releases live event streams, cancels every
// running job (their sweeps return completed points thanks to anytime
// semantics), and waits for job goroutines until ctx expires. Callers drain
// in-flight HTTP requests first via http.Server.Shutdown; those requests run
// on their own contexts and finish normally.
func (s *Server) Shutdown(ctx context.Context) (err error) {
	s.Drain()
	s.stop()
	done := make(chan struct{})
	go func() {
		defer s.obs.Guard("shutdown-drain")
		s.jobWG.Wait()
		close(done)
	}()
	defer func() {
		if s.ownBus {
			s.obs.Bus.Close()
		}
		// The journal closes (with a final fsync) after jobs drained, so
		// their last point and jobEnd records are durable. On a timed-out
		// shutdown this still syncs whatever was appended. A failed close
		// means that durability promise may be broken, so it surfaces.
		if s.journal != nil {
			if cerr := s.journal.Close(); cerr != nil {
				err = errors.Join(err, fmt.Errorf("server: closing journal: %w", cerr))
			}
		}
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
}

// errBusy rejects a request when the pool and its queue are saturated.
var errBusy = errors.New("server: worker pool saturated")

// acquire admits the caller to the worker pool, queueing up to QueueDepth
// waiters beyond the running solves.
func (s *Server) acquire(ctx context.Context) error {
	if n := s.waiting.Add(1); n > int64(s.cfg.Workers+s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		return errBusy
	}
	defer s.waiting.Add(-1)
	select {
	case s.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.tokens }

// solveTimeout maps the request's budget onto a solver deadline.
func (s *Server) solveTimeout(sec float64) time.Duration {
	d := s.cfg.DefaultTimeout
	if sec > 0 {
		d = time.Duration(sec * float64(time.Second))
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func parseBaseline(name string) (hilp.Baseline, error) {
	switch strings.ToLower(name) {
	case "", "hilp":
		return hilp.BaselineHILP, nil
	case "gables":
		return hilp.BaselineGables, nil
	case "multiamdahl", "ma":
		return hilp.BaselineMultiAmdahl, nil
	}
	return 0, fmt.Errorf("unknown baseline %q (want hilp, gables, or multiamdahl)", name)
}

// apiError pairs an error with its HTTP status and machine-readable code
// (see wire.ErrorResponse.Code for the vocabulary).
type apiError struct {
	status int
	code   string
	err    error
}

// solveErr classifies an error from the model-building or solve path. Invalid
// models are the client's fault (422), recovered panics are ours (500).
func solveErr(err error) *apiError {
	var pe *scheduler.PanicError
	switch {
	case errors.Is(err, core.ErrBadModel):
		return &apiError{http.StatusUnprocessableEntity, "bad_model", err}
	case errors.Is(err, scheduler.ErrInfeasible):
		return &apiError{http.StatusUnprocessableEntity, "infeasible", err}
	case errors.As(err, &pe):
		return &apiError{http.StatusInternalServerError, "internal_panic", err}
	default:
		// Everything else on this path is a model the solver could not
		// represent (e.g. a task that does not fit the horizon).
		return &apiError{http.StatusUnprocessableEntity, "bad_model", err}
	}
}

// decodeBody parses a JSON request under the configured size limit, rejecting
// unknown fields so schema typos fail loudly instead of being ignored.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) *apiError {
	defer io.Copy(io.Discard, r.Body)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &apiError{http.StatusRequestEntityTooLarge, "too_large",
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return &apiError{http.StatusBadRequest, "malformed_json", fmt.Errorf("decoding request: %w", err)}
	}
	return nil
}

func (s *Server) writeError(ctx context.Context, w http.ResponseWriter, status int, code string, err error) {
	s.obs.Counter(obs.MServeErrors).Inc()
	if sum := summaryFrom(ctx); sum != nil {
		sum.Error = err.Error()
	}
	s.obs.Log(ctx, slog.LevelWarn, "request: error response", "status", status, "code", code, "error", err.Error())
	resp := wire.ErrorResponse{SchemaVersion: wire.SchemaVersion, Error: err.Error(), Code: code}
	var ve *core.ValidationError
	if errors.As(err, &ve) {
		resp.Fields = ve.Fields
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := wire.Marshal(resp)
	if _, werr := w.Write(body); werr != nil {
		// The status line is already out; all that is left is to note the
		// client went away mid-response.
		s.obs.Log(ctx, slog.LevelDebug, "request: writing error response", "error", werr.Error())
	}
}

func (s *Server) writeAPIError(ctx context.Context, w http.ResponseWriter, e *apiError) {
	s.writeError(ctx, w, e.status, e.code, e.err)
}

func (s *Server) writeJSON(ctx context.Context, w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(body); err != nil {
		// The response is committed; a short write means the client hung up.
		s.obs.Log(ctx, slog.LevelDebug, "request: writing response", "error", err.Error())
	}
}

// recoverHandler converts a panic escaping a handler into a structured 500
// response, so one poisoned request never kills the process. /healthz stays
// un-wrapped and trivially healthy.
func (s *Server) recoverHandler(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				pe := scheduler.NewPanicError("server:"+r.URL.Path, rec)
				s.obs.Counter(obs.MServePanics).Inc()
				s.obs.Log(r.Context(), slog.LevelError, "request: panic recovered",
					"path", r.URL.Path, "error", pe.Error(), "stack", string(pe.Stack))
				s.writeError(r.Context(), w, http.StatusInternalServerError, "internal_panic", pe)
			}
		}()
		h(w, r)
	}
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter(obs.MServeRequests).Inc()
	inFlight := s.obs.Gauge(obs.MServeInFlight)
	inFlight.Add(1)
	defer inFlight.Add(-1)
	start := time.Now()
	defer func() {
		// The exemplar ties this observation back to the correlation ID, so a
		// slow bucket can be traced to a concrete request in /debug/requests.
		s.obs.Histogram(obs.MServeRequestSec).ObserveEx(time.Since(start).Seconds(), obs.RequestID(r.Context()))
	}()

	// Per-stage latency attribution: each pipeline stage below is bracketed
	// on the request's StageTimer (carried by the context), so the summary,
	// the per-stage histograms, and OTLP child spans all explain where the
	// wall-clock time of this request went.
	st := obs.StageTimerFrom(r.Context())

	stopValidate := st.Start(obs.StageValidate)
	var req wire.EvaluateRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		stopValidate()
		s.writeAPIError(r.Context(), w, apiErr)
		return
	}
	if err := wire.CheckVersion(req.SchemaVersion); err != nil {
		stopValidate()
		s.writeError(r.Context(), w, http.StatusBadRequest, "version", err)
		return
	}
	stopValidate()

	// The cache key is the canonical (re-marshaled) request, so formatting
	// and key order don't fragment it.
	stopCache := st.Start(obs.StageCacheLookup)
	canonical, err := json.Marshal(req)
	if err != nil {
		stopCache()
		s.writeError(r.Context(), w, http.StatusBadRequest, "bad_request", err)
		return
	}
	key := cacheKey(canonical)
	sum := summaryFrom(r.Context())
	if body, ok := s.cache.get(key); ok {
		stopCache()
		s.obs.Counter(obs.MServeCacheHits).Inc()
		if sum != nil {
			sum.Cache = "hit"
		}
		w.Header().Set("X-HILP-Cache", "hit")
		s.writeJSON(r.Context(), w, http.StatusOK, body)
		return
	}
	stopCache()
	s.obs.Counter(obs.MServeCacheMisses).Inc()
	if sum != nil {
		sum.Cache = "miss"
	}

	stopSchedule := st.Start(obs.StageSchedule)
	if err := s.acquire(r.Context()); err != nil {
		stopSchedule()
		if errors.Is(err, errBusy) {
			s.obs.Counter(obs.MServeRejected).Inc()
			s.writeError(r.Context(), w, http.StatusTooManyRequests, "busy", err)
		} else {
			s.writeError(r.Context(), w, http.StatusServiceUnavailable, "busy", err)
		}
		return
	}
	stopSchedule()
	defer s.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.solveTimeout(req.TimeoutSec))
	defer cancel()
	ctx = faults.WithKey(faults.NewContext(ctx, s.cfg.Faults), s.reqSeq.Add(1))

	stopSolve := st.Start(obs.StageSolve)
	var result wire.Result
	var apiErr *apiError
	if req.Model != nil {
		result, apiErr = s.evaluateModel(ctx, &req)
	} else {
		result, apiErr = s.evaluateTemplate(ctx, &req)
	}
	stopSolve()
	if apiErr != nil {
		s.writeAPIError(r.Context(), w, apiErr)
		return
	}
	if result.Cancelled {
		s.obs.Counter(obs.MServeDeadlines).Inc()
	}
	if sum != nil {
		sum.Solver = result.Method
		sum.Gap = result.Gap
		sum.Cancelled = result.Cancelled
		sum.Degraded = result.Degraded
		sum.FallbackReason = result.FallbackReason
	}

	stopEncode := st.Start(obs.StageEncode)
	defer stopEncode()
	body, err := wire.Marshal(wire.EvaluateResponse{SchemaVersion: wire.SchemaVersion, Result: result})
	if err != nil {
		s.writeError(r.Context(), w, http.StatusInternalServerError, "", err)
		return
	}
	// Cancelled results are the best incumbent under *this* request's
	// deadline, and degraded ones are fallback answers to a transient
	// failure — never serve either to later callers.
	if !result.Cancelled && !result.Degraded {
		s.cache.put(key, body)
	}
	w.Header().Set("X-HILP-Cache", "miss")
	s.writeJSON(r.Context(), w, http.StatusOK, body)
}

// evaluateTemplate solves a (workload, SoC) pair from the paper's template.
func (s *Server) evaluateTemplate(ctx context.Context, req *wire.EvaluateRequest) (wire.Result, *apiError) {
	if req.SoC == nil {
		return wire.Result{}, &apiError{http.StatusBadRequest, "bad_request",
			errors.New("request lacks both soc and model")}
	}
	var ww wire.Workload
	if req.Workload != nil {
		ww = *req.Workload
	}
	w, err := ww.ToWorkload()
	if err != nil {
		return wire.Result{}, solveErr(err)
	}
	baseline, err := parseBaseline(req.Baseline)
	if err != nil {
		return wire.Result{}, &apiError{http.StatusBadRequest, "bad_request", err}
	}
	spec := req.SoC.ToSpec()
	opts := []hilp.Option{hilp.WithBaseline(baseline), hilp.WithObs(s.obs)}
	if req.Profile != nil {
		opts = append(opts, hilp.WithProfile(req.Profile.ToProfile()))
	}
	if req.Solver != nil {
		opts = append(opts, hilp.WithSolver(req.Solver.ToConfig()))
	}
	res, err := hilp.Solve(ctx, w, spec, opts...)
	if err != nil {
		return wire.Result{}, solveErr(err)
	}
	out := wire.FromResult(res)
	out.SpecLabel = spec.Normalize().Label()
	return out, nil
}

// evaluateModel solves a custom model (§VII) through the fault-tolerant
// solve chain, so a transient solver failure degrades to the heuristic
// fallback instead of failing the request.
func (s *Server) evaluateModel(ctx context.Context, req *wire.EvaluateRequest) (wire.Result, *apiError) {
	step := req.StepSec
	if step == 0 {
		step = 1
	}
	horizon := req.Horizon
	if horizon == 0 {
		horizon = 200
	}
	inst, err := req.Model.Build(step, horizon)
	if err != nil {
		return wire.Result{}, solveErr(err)
	}
	cfg := scheduler.Config{Seed: 1}
	if req.Solver != nil {
		cfg = req.Solver.ToConfig()
	}
	cfg.Obs = s.obs
	res, err := core.SolveProblem(ctx, inst.Problem, cfg)
	if err != nil {
		return wire.Result{}, solveErr(err)
	}
	makespanSec := float64(res.Schedule.Makespan) * step
	return wire.Result{
		SchemaVersion:  wire.SchemaVersion,
		StepSec:        step,
		MakespanSec:    makespanSec,
		Speedup:        wire.ModelSpeedup(*req.Model, makespanSec),
		WLP:            res.Schedule.WLP(inst.Problem),
		Gap:            res.Gap(),
		Proven:         res.Proven,
		Method:         res.Method,
		Cancelled:      res.Cancelled,
		Degraded:       res.Degraded,
		FallbackReason: res.FallbackReason,
	}, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter(obs.MServeRequests).Inc()
	var req wire.SweepRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		s.writeAPIError(r.Context(), w, apiErr)
		return
	}
	if err := wire.CheckVersion(req.SchemaVersion); err != nil {
		s.writeError(r.Context(), w, http.StatusBadRequest, "version", err)
		return
	}
	// A duplicate submission (client retry after a lost 202) reattaches to
	// the job its idempotency key already created — no second sweep.
	idemKey := r.Header.Get("X-Idempotency-Key")
	if idemKey != "" {
		s.jobMu.Lock()
		dup := s.idem[idemKey]
		s.jobMu.Unlock()
		if dup != nil {
			if sum := summaryFrom(r.Context()); sum != nil {
				sum.JobID = dup.id
			}
			body, _ := wire.Marshal(dup.snapshot())
			s.writeJSON(r.Context(), w, http.StatusOK, body)
			return
		}
	}
	plan, apiErr := s.planSweep(&req)
	if apiErr != nil {
		s.writeAPIError(r.Context(), w, apiErr)
		return
	}

	j, existing, err := s.newJob(len(plan.specs), idemKey)
	if err != nil {
		s.obs.Counter(obs.MServeRejected).Inc()
		s.writeError(r.Context(), w, http.StatusTooManyRequests, "busy", err)
		return
	}
	if existing {
		if sum := summaryFrom(r.Context()); sum != nil {
			sum.JobID = j.id
		}
		body, _ := wire.Marshal(j.snapshot())
		s.writeJSON(r.Context(), w, http.StatusOK, body)
		return
	}
	// The job inherits the starting request's correlation ID: every per-point
	// log line and exemplar of the async sweep traces back to this request.
	j.reqID = obs.RequestID(r.Context())
	if sum := summaryFrom(r.Context()); sum != nil {
		sum.JobID = j.id
	}
	// The jobStart record is durable before the 202 leaves: once the client
	// has a job handle, a crash cannot forget the job existed.
	s.journalJobStart(j, plan)
	opts := append(plan.opts,
		hilp.WithProgress(func(p hilp.SweepProgress) { j.done.Store(int64(p.Done)) }))
	opts = s.withJournalCheckpoint(opts, j)

	s.jobWG.Add(1)
	s.obs.Gauge(obs.MServeJobsActive).Add(1)
	go s.runJob(j, plan.workload, plan.specs, opts, plan.timeout)

	body, _ := wire.Marshal(j.snapshot())
	s.writeJSON(r.Context(), w, http.StatusAccepted, body)
}

// sweepPlan is a validated, fully-resolved sweep: what handleSweep builds
// from a request and what Recover rebuilds from a journaled one.
type sweepPlan struct {
	workload rodinia.Workload
	specs    []soc.Spec
	opts     []hilp.Option // everything but the per-job progress/checkpoint hooks
	timeout  time.Duration
	// req is the normalized request — explicit resolved specs, no Space —
	// as journaled in the jobStart record, and modelKey its canonical model
	// identity (workload, specs, baseline, profile, solver). Resuming a
	// journaled job against a different model is refused.
	req      *wire.SweepRequest
	modelKey string
}

// planSweep validates a sweep request and resolves it into a runnable plan.
func (s *Server) planSweep(req *wire.SweepRequest) (*sweepPlan, *apiError) {
	var ww wire.Workload
	if req.Workload != nil {
		ww = *req.Workload
	}
	workload, err := ww.ToWorkload()
	if err != nil {
		return nil, solveErr(err)
	}
	baseline, err := parseBaseline(req.Baseline)
	if err != nil {
		return nil, &apiError{http.StatusBadRequest, "bad_request", err}
	}
	specs := make([]soc.Spec, 0, len(req.Specs))
	for _, sp := range req.Specs {
		specs = append(specs, sp.ToSpec())
	}
	if len(specs) == 0 {
		var space wire.Space
		if req.Space != nil {
			space = *req.Space
		}
		specs = soc.DesignSpace(workload, space.ToSpaceConfig())
	}
	opts := []hilp.Option{
		hilp.WithBaseline(baseline),
		hilp.WithObs(s.obs),
		hilp.WithWorkers(s.cfg.Workers),
	}
	if req.Profile != nil {
		opts = append(opts, hilp.WithProfile(req.Profile.ToProfile()))
	}
	if req.Solver != nil {
		opts = append(opts, hilp.WithSolver(req.Solver.ToConfig()))
	}
	// Sweep-engine features (schema v2) are opt-in per request and default
	// to off, preserving v1 sweep behavior exactly.
	if req.Cache {
		opts = append(opts, hilp.WithCache(true))
	}
	if req.WarmStart {
		opts = append(opts, hilp.WithWarmStart(true))
	}
	if req.Pruning {
		opts = append(opts, hilp.WithPruning(true))
	}
	// Normalize the request for the journal: explicit specs (so recovery
	// does not depend on design-space enumeration being stable across
	// versions) and no Space.
	norm := *req
	norm.Specs = make([]wire.SoC, len(specs))
	for i, sp := range specs {
		norm.Specs[i] = wire.FromSpec(sp)
	}
	norm.Space = nil
	return &sweepPlan{
		workload: workload,
		specs:    specs,
		opts:     opts,
		timeout:  s.solveTimeout(req.TimeoutSec),
		req:      &norm,
		modelKey: sweepModelKey(&norm),
	}, nil
}

// runJob executes a sweep job with panic isolation and a bounded
// retry/backoff loop: transient failures (injected faults, recovered panics)
// are retried up to Config.JobRetries times before the job is marked failed.
func (s *Server) runJob(j *job, workload rodinia.Workload, specs []soc.Spec, opts []hilp.Option, timeout time.Duration) {
	defer s.jobWG.Done()
	defer s.obs.Gauge(obs.MServeJobsActive).Add(-1)
	// Registered before the recover defer so it observes the terminal status
	// even when the job dies to a recovered panic (defers run LIFO).
	defer func() {
		j.mu.Lock()
		status, errMsg := j.status, j.errMsg
		j.mu.Unlock()
		// The jobEnd record is synced immediately: a terminal status must
		// never be lost to a crash, or recovery would re-run a finished job.
		s.journalJobEnd(j, status, errMsg)
		s.obs.Publish(obs.BusEvent{
			Kind: "job", Name: status, Job: j.id, Req: j.reqID,
			Done: int(j.done.Load()), Total: j.total, Status: status,
		})
	}()
	defer func() {
		if rec := recover(); rec != nil {
			pe := scheduler.NewPanicError("server.job", rec)
			s.obs.Counter(obs.MServePanics).Inc()
			s.obs.Log(context.Background(), slog.LevelError, "job: panic recovered",
				"job", j.id, "req", j.reqID, "error", pe.Error(), "stack", string(pe.Stack))
			j.fail(pe)
		}
	}()
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	ctx = obs.WithRequestID(ctx, j.reqID)
	ctx = faults.WithKey(faults.NewContext(ctx, s.cfg.Faults), s.jobSeq.Add(1))
	// Job lifecycle events bracket the sweep's own bus traffic, so an SSE
	// subscriber sees "running" first and a terminal status last (the
	// terminal event is published by the defer above).
	s.obs.Publish(obs.BusEvent{Kind: "job", Name: "running", Job: j.id, Req: j.reqID, Total: j.total})
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := s.sweepOnce(ctx, j, workload, specs, opts)
		if err == nil {
			return
		}
		lastErr = err
		if ctx.Err() != nil || attempt >= s.cfg.JobRetries || !core.Transient(err) {
			break
		}
		j.retried()
		s.obs.Counter(obs.MServeRetries).Inc()
		s.obs.Log(ctx, slog.LevelWarn, "job: attempt failed, retrying",
			"job", j.id, "attempt", attempt+1, "error", err.Error())
		sleepBackoff(ctx, s.cfg.RetryBaseDelay, attempt, j.id)
	}
	s.obs.Log(ctx, slog.LevelError, "job: failed", "job", j.id, "error", lastErr.Error())
	j.fail(lastErr)
}

// sweepOnce runs one sweep attempt. Panics — including injected ones —
// convert to errors so runJob's retry loop can classify them.
func (s *Server) sweepOnce(ctx context.Context, j *job, workload rodinia.Workload, specs []soc.Spec, opts []hilp.Option) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.obs.Counter(obs.MServePanics).Inc()
			err = scheduler.NewPanicError("server.sweep", rec)
		}
	}()
	fp := faults.FromContext(ctx)
	fp.PanicNow(faults.SiteServe)
	if ferr := fp.InjectErr(ctx, faults.SiteServe); ferr != nil {
		return ferr
	}
	points := hilp.Sweep(ctx, workload, specs, opts...)
	j.finish(points, ctx.Err() != nil)
	if ctx.Err() != nil {
		s.obs.Counter(obs.MServeDeadlines).Inc()
	}
	return nil
}

// sleepBackoff waits base << attempt plus deterministic jitter derived from
// the job id, or until ctx is done. Deterministic jitter keeps chaos tests
// replayable while still de-synchronizing real concurrent retries.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int, id string) {
	d := base << uint(attempt)
	h := fnv.New64a()
	io.WriteString(h, id)
	h.Write([]byte{byte(attempt)})
	jitter := time.Duration(h.Sum64() % uint64(d/2+1))
	t := time.NewTimer(d + jitter)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter(obs.MServeRequests).Inc()
	s.jobMu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.jobMu.Unlock()
	if !ok {
		s.writeError(r.Context(), w, http.StatusNotFound, "not_found", fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	body, err := wire.Marshal(j.snapshot())
	if err != nil {
		s.writeError(r.Context(), w, http.StatusInternalServerError, "", err)
		return
	}
	s.writeJSON(r.Context(), w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(r.Context(), w, http.StatusOK, []byte("{\"status\":\"ok\"}\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.obs != nil && s.obs.Metrics != nil {
		// Scrape-time gauges: Go runtime stats plus the pool and cache state,
		// sampled fresh on every /metrics pull.
		obs.CaptureRuntime(s.obs.Metrics)
		s.obs.Gauge(obs.MServeSubscribers).Set(float64(s.obs.Bus.SubscriberCount()))
		s.obs.Gauge(obs.MServePoolBusy).Set(float64(len(s.tokens)))
		s.obs.Gauge(obs.MServeQueueWaiting).Set(float64(s.waiting.Load()))
		s.obs.Gauge(obs.MServeCacheEntries).Set(float64(s.cache.len()))
		hits := s.obs.Counter(obs.MServeCacheHits).Value()
		misses := s.obs.Counter(obs.MServeCacheMisses).Value()
		if total := hits + misses; total > 0 {
			s.obs.Gauge(obs.MServeCacheHitRatio).Set(float64(hits) / float64(total))
		}
		s.obs.Metrics.WritePrometheus(w)
	}
}

// newJob registers a job, evicting the oldest finished job when the registry
// is full. A request is rejected (429) only when every retained job is still
// running. The idempotency key, when non-empty, is bound to the job under the
// same lock so a concurrent duplicate submission cannot race past it.
func (s *Server) newJob(total int, idemKey string) (j *job, existing bool, err error) {
	var raw [8]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, false, err
	}
	j = &job{id: hex.EncodeToString(raw[:]), idemKey: idemKey, total: total, status: "running", created: time.Now()}
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	if idemKey != "" {
		if dup := s.idem[idemKey]; dup != nil {
			// A concurrent duplicate won the race: reattach to its job
			// instead of registering (and running) a second one.
			return dup, true, nil
		}
	}
	if len(s.jobs) >= s.cfg.MaxJobs {
		if !s.evictTerminalLocked() {
			return nil, false, fmt.Errorf("job registry full (%d running jobs)", len(s.jobs))
		}
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	if idemKey != "" {
		s.idem[idemKey] = j
	}
	return j, false, nil
}

// evictTerminalLocked removes the oldest terminal job (with its idempotency
// mapping) under s.jobMu, reporting whether one was found.
func (s *Server) evictTerminalLocked() bool {
	for i, id := range s.jobOrder {
		old := s.jobs[id]
		old.mu.Lock()
		terminal := old.status != "running"
		old.mu.Unlock()
		if terminal {
			delete(s.jobs, id)
			if old.idemKey != "" {
				delete(s.idem, old.idemKey)
			}
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			return true
		}
	}
	return false
}

// wirePoint converts one sweep point to its wire form (including the schema
// v2 engine fields and the v3 resume flag). The same encoding feeds responses
// and the crash-recovery journal, so a journaled point replays losslessly.
func wirePoint(p hilp.Point) wire.Point { return dse.ToWirePoint(p) }

// wirePoints converts sweep points to their wire form plus the Pareto index
// list.
func wirePoints(points []hilp.Point) ([]wire.Point, []int) {
	out := make([]wire.Point, 0, len(points))
	for _, p := range points {
		out = append(out, wirePoint(p))
	}
	byLabel := map[string]int{}
	for i, p := range points {
		byLabel[p.Label] = i
	}
	var pareto []int
	for _, p := range hilp.ParetoFront(points) {
		pareto = append(pareto, byLabel[p.Label])
	}
	return out, pareto
}

// finish records the job's terminal state.
func (j *job) finish(points []hilp.Point, cancelled bool) {
	resp := &wire.SweepResponse{SchemaVersion: wire.SchemaVersion}
	resp.Points, resp.Pareto = wirePoints(points)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done.Store(int64(len(points)))
	j.result = resp
	if cancelled {
		j.status = "cancelled"
	} else {
		j.status = "done"
	}
}

// retried counts one job-level retry.
func (j *job) retried() {
	j.mu.Lock()
	j.retries++
	j.mu.Unlock()
}

// fail marks the job failed unless an attempt already finished it.
func (j *job) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != "running" {
		return
	}
	j.status = "failed"
	j.errMsg = err.Error()
}

// snapshot renders the job's current wire state.
func (j *job) snapshot() wire.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return wire.Job{
		SchemaVersion: wire.SchemaVersion,
		ID:            j.id,
		Status:        j.status,
		Done:          int(j.done.Load()),
		Total:         j.total,
		URL:           "/v1/jobs/" + j.id,
		EventsURL:     "/v1/jobs/" + j.id + "/events",
		Retries:       j.retries,
		Error:         j.errMsg,
		RequestID:     j.reqID,
		Resumed:       j.resumed,
		ResumedPoints: j.resumedPoints,
		Result:        j.result,
	}
}
