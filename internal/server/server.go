// Package server implements hilp-serve: an HTTP JSON solve service over the
// public hilp API. It exposes synchronous evaluation (POST /v1/evaluate),
// asynchronous design-space sweeps behind job handles (POST /v1/sweep,
// GET /v1/jobs/{id}), liveness and Prometheus-text metrics endpoints, a
// bounded worker pool with admission control, an LRU cache keyed on the
// canonical request hash, and per-request timeouts mapped onto solver
// deadlines. Because the whole solve stack has anytime semantics, a request
// hitting its deadline still returns 200 with the best incumbent found and
// result.cancelled set — never a wasted solve.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hilp"
	"hilp/internal/obs"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
	"hilp/internal/wire"
)

// Config tunes the service. The zero value selects production-safe defaults.
type Config struct {
	// Workers bounds concurrent solves; < 1 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond the ones
	// running; further requests are rejected with 429. < 1 selects
	// 2 x Workers.
	QueueDepth int
	// CacheEntries sizes the solve cache; 0 selects 128, negative disables
	// caching.
	CacheEntries int
	// DefaultTimeout bounds a solve when the request does not ask for a
	// budget; 0 selects 30 s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested budgets; 0 selects 5 min.
	MaxTimeout time.Duration
	// MaxJobs bounds retained async jobs; 0 selects 64.
	MaxJobs int
	// Obs receives request metrics and solver telemetry. nil creates a
	// metrics-only context so /metrics always works.
	Obs *obs.Context
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 64
	}
	return c
}

// Server is the solve service. Create with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	cfg   Config
	obs   *obs.Context
	mux   *http.ServeMux
	cache *cache

	// tokens is the worker pool: holding a token admits one solve.
	tokens  chan struct{}
	waiting atomic.Int64

	baseCtx context.Context // parent of all job contexts; Shutdown cancels it
	stop    context.CancelFunc
	jobWG   sync.WaitGroup

	jobMu    sync.Mutex
	jobs     map[string]*job
	jobOrder []string
}

type job struct {
	id      string
	total   int
	done    atomic.Int64
	mu      sync.Mutex
	status  string // "running", "done", "cancelled"
	result  *wire.SweepResponse
	created time.Time
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	octx := cfg.Obs
	if octx == nil {
		octx = &obs.Context{Metrics: obs.NewRegistry()}
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		obs:     octx,
		mux:     http.NewServeMux(),
		cache:   newCache(cfg.CacheEntries),
		tokens:  make(chan struct{}, cfg.Workers),
		baseCtx: ctx,
		stop:    stop,
		jobs:    map[string]*job{},
	}
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: it cancels every running job (their sweeps
// return completed points thanks to anytime semantics) and waits for job
// goroutines until ctx expires. Callers drain in-flight HTTP requests first
// via http.Server.Shutdown; those requests run on their own contexts and
// finish normally.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stop()
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
}

// errBusy rejects a request when the pool and its queue are saturated.
var errBusy = errors.New("server: worker pool saturated")

// acquire admits the caller to the worker pool, queueing up to QueueDepth
// waiters beyond the running solves.
func (s *Server) acquire(ctx context.Context) error {
	if n := s.waiting.Add(1); n > int64(s.cfg.Workers+s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		return errBusy
	}
	defer s.waiting.Add(-1)
	select {
	case s.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.tokens }

// solveTimeout maps the request's budget onto a solver deadline.
func (s *Server) solveTimeout(sec float64) time.Duration {
	d := s.cfg.DefaultTimeout
	if sec > 0 {
		d = time.Duration(sec * float64(time.Second))
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func parseBaseline(name string) (hilp.Baseline, error) {
	switch strings.ToLower(name) {
	case "", "hilp":
		return hilp.BaselineHILP, nil
	case "gables":
		return hilp.BaselineGables, nil
	case "multiamdahl", "ma":
		return hilp.BaselineMultiAmdahl, nil
	}
	return 0, fmt.Errorf("unknown baseline %q (want hilp, gables, or multiamdahl)", name)
}

// maxBodyBytes bounds request bodies; custom models are at most a few MB.
const maxBodyBytes = 8 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	defer io.Copy(io.Discard, r.Body)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.obs.Counter(obs.MServeErrors).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, _ := wire.Marshal(wire.ErrorResponse{SchemaVersion: wire.SchemaVersion, Error: err.Error()})
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter(obs.MServeRequests).Inc()
	inFlight := s.obs.Gauge(obs.MServeInFlight)
	inFlight.Add(1)
	defer inFlight.Add(-1)
	start := time.Now()
	defer func() { s.obs.Histogram(obs.MServeRequestSec).Observe(time.Since(start).Seconds()) }()

	var req wire.EvaluateRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := wire.CheckVersion(req.SchemaVersion); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	// The cache key is the canonical (re-marshaled) request, so formatting
	// and key order don't fragment it.
	canonical, err := json.Marshal(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key := cacheKey(canonical)
	if body, ok := s.cache.get(key); ok {
		s.obs.Counter(obs.MServeCacheHits).Inc()
		w.Header().Set("X-HILP-Cache", "hit")
		writeJSON(w, http.StatusOK, body)
		return
	}
	s.obs.Counter(obs.MServeCacheMisses).Inc()

	if err := s.acquire(r.Context()); err != nil {
		if errors.Is(err, errBusy) {
			s.obs.Counter(obs.MServeRejected).Inc()
			s.writeError(w, http.StatusTooManyRequests, err)
		} else {
			s.writeError(w, http.StatusServiceUnavailable, err)
		}
		return
	}
	defer s.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.solveTimeout(req.TimeoutSec))
	defer cancel()

	var result wire.Result
	var code int
	if req.Model != nil {
		result, code, err = s.evaluateModel(ctx, &req)
	} else {
		result, code, err = s.evaluateTemplate(ctx, &req)
	}
	if err != nil {
		s.writeError(w, code, err)
		return
	}
	if result.Cancelled {
		s.obs.Counter(obs.MServeDeadlines).Inc()
	}

	body, err := wire.Marshal(wire.EvaluateResponse{SchemaVersion: wire.SchemaVersion, Result: result})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Cancelled results are the best incumbent under *this* request's
	// deadline, not the converged answer — never serve them to later
	// callers.
	if !result.Cancelled {
		s.cache.put(key, body)
	}
	w.Header().Set("X-HILP-Cache", "miss")
	writeJSON(w, http.StatusOK, body)
}

// evaluateTemplate solves a (workload, SoC) pair from the paper's template.
func (s *Server) evaluateTemplate(ctx context.Context, req *wire.EvaluateRequest) (wire.Result, int, error) {
	if req.SoC == nil {
		return wire.Result{}, http.StatusBadRequest, errors.New("request lacks both soc and model")
	}
	var ww wire.Workload
	if req.Workload != nil {
		ww = *req.Workload
	}
	w, err := ww.ToWorkload()
	if err != nil {
		return wire.Result{}, http.StatusBadRequest, err
	}
	baseline, err := parseBaseline(req.Baseline)
	if err != nil {
		return wire.Result{}, http.StatusBadRequest, err
	}
	spec := req.SoC.ToSpec()
	opts := []hilp.Option{hilp.WithBaseline(baseline), hilp.WithObs(s.obs)}
	if req.Profile != nil {
		opts = append(opts, hilp.WithProfile(req.Profile.ToProfile()))
	}
	if req.Solver != nil {
		opts = append(opts, hilp.WithSolver(req.Solver.ToConfig()))
	}
	res, err := hilp.Solve(ctx, w, spec, opts...)
	if err != nil {
		return wire.Result{}, http.StatusUnprocessableEntity, err
	}
	out := wire.FromResult(res)
	out.SpecLabel = spec.Normalize().Label()
	return out, http.StatusOK, nil
}

// evaluateModel solves a custom model (§VII).
func (s *Server) evaluateModel(ctx context.Context, req *wire.EvaluateRequest) (wire.Result, int, error) {
	step := req.StepSec
	if step == 0 {
		step = 1
	}
	horizon := req.Horizon
	if horizon == 0 {
		horizon = 200
	}
	inst, err := req.Model.Build(step, horizon)
	if err != nil {
		return wire.Result{}, http.StatusBadRequest, err
	}
	cfg := scheduler.Config{Seed: 1}
	if req.Solver != nil {
		cfg = req.Solver.ToConfig()
	}
	cfg.Obs = s.obs
	res, err := scheduler.Solve(ctx, inst.Problem, cfg)
	if err != nil {
		return wire.Result{}, http.StatusUnprocessableEntity, err
	}
	makespanSec := float64(res.Schedule.Makespan) * step
	return wire.Result{
		SchemaVersion: wire.SchemaVersion,
		StepSec:       step,
		MakespanSec:   makespanSec,
		Speedup:       wire.ModelSpeedup(*req.Model, makespanSec),
		WLP:           res.Schedule.WLP(inst.Problem),
		Gap:           res.Gap(),
		Proven:        res.Proven,
		Method:        res.Method,
		Cancelled:     res.Cancelled,
	}, http.StatusOK, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter(obs.MServeRequests).Inc()
	var req wire.SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := wire.CheckVersion(req.SchemaVersion); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var ww wire.Workload
	if req.Workload != nil {
		ww = *req.Workload
	}
	workload, err := ww.ToWorkload()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	baseline, err := parseBaseline(req.Baseline)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	specs := make([]soc.Spec, 0, len(req.Specs))
	for _, sp := range req.Specs {
		specs = append(specs, sp.ToSpec())
	}
	if len(specs) == 0 {
		var space wire.Space
		if req.Space != nil {
			space = *req.Space
		}
		specs = soc.DesignSpace(workload, space.ToSpaceConfig())
	}

	j, err := s.newJob(len(specs))
	if err != nil {
		s.obs.Counter(obs.MServeRejected).Inc()
		s.writeError(w, http.StatusTooManyRequests, err)
		return
	}
	opts := []hilp.Option{
		hilp.WithBaseline(baseline),
		hilp.WithObs(s.obs),
		hilp.WithWorkers(s.cfg.Workers),
		hilp.WithProgress(func(p hilp.SweepProgress) { j.done.Store(int64(p.Done)) }),
	}
	if req.Profile != nil {
		opts = append(opts, hilp.WithProfile(req.Profile.ToProfile()))
	}
	if req.Solver != nil {
		opts = append(opts, hilp.WithSolver(req.Solver.ToConfig()))
	}
	timeout := s.solveTimeout(req.TimeoutSec)

	s.jobWG.Add(1)
	s.obs.Gauge(obs.MServeJobsActive).Add(1)
	go func() {
		defer s.jobWG.Done()
		defer s.obs.Gauge(obs.MServeJobsActive).Add(-1)
		ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
		defer cancel()
		points := hilp.Sweep(ctx, workload, specs, opts...)
		j.finish(points, ctx.Err() != nil)
		if ctx.Err() != nil {
			s.obs.Counter(obs.MServeDeadlines).Inc()
		}
	}()

	body, _ := wire.Marshal(j.snapshot())
	writeJSON(w, http.StatusAccepted, body)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter(obs.MServeRequests).Inc()
	s.jobMu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.jobMu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	body, err := wire.Marshal(j.snapshot())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, []byte("{\"status\":\"ok\"}\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.obs != nil && s.obs.Metrics != nil {
		s.obs.Metrics.WritePrometheus(w)
	}
}

// newJob registers a job, evicting the oldest finished job when the registry
// is full.
func (s *Server) newJob(total int) (*job, error) {
	var raw [8]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, err
	}
	j := &job{id: hex.EncodeToString(raw[:]), total: total, status: "running", created: time.Now()}
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	if len(s.jobs) >= s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.jobOrder {
			old := s.jobs[id]
			old.mu.Lock()
			terminal := old.status != "running"
			old.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return nil, fmt.Errorf("job registry full (%d running jobs)", len(s.jobs))
		}
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	return j, nil
}

// finish records the job's terminal state.
func (j *job) finish(points []hilp.Point, cancelled bool) {
	resp := &wire.SweepResponse{SchemaVersion: wire.SchemaVersion}
	for _, p := range points {
		wp := wire.Point{
			Spec:        wire.FromSpec(p.Spec),
			Label:       p.Label,
			AreaMM2:     p.AreaMM2,
			Speedup:     p.Speedup,
			WLP:         p.WLP,
			Gap:         p.Gap,
			MakespanSec: p.MakespanSec,
			Mix:         p.Mix.String(),
			Cancelled:   p.Cancelled,
		}
		if p.Err != nil {
			wp.Error = p.Err.Error()
		}
		resp.Points = append(resp.Points, wp)
	}
	byLabel := map[string]int{}
	for i, p := range points {
		byLabel[p.Label] = i
	}
	for _, p := range hilp.ParetoFront(points) {
		resp.Pareto = append(resp.Pareto, byLabel[p.Label])
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done.Store(int64(len(points)))
	j.result = resp
	if cancelled {
		j.status = "cancelled"
	} else {
		j.status = "done"
	}
}

// snapshot renders the job's current wire state.
func (j *job) snapshot() wire.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return wire.Job{
		SchemaVersion: wire.SchemaVersion,
		ID:            j.id,
		Status:        j.status,
		Done:          int(j.done.Load()),
		Total:         j.total,
		URL:           "/v1/jobs/" + j.id,
		Result:        j.result,
	}
}
