package server

import (
	"container/list"
	"sync"

	"hilp/internal/wire"
)

// cache is a fixed-capacity LRU over solved responses. Values are the exact
// bytes previously written to a client, so a hit replays a byte-identical
// response. Keys are canonical request hashes (see cacheKey).
type cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newCache(capacity int) *cache {
	if capacity <= 0 {
		return nil
	}
	return &cache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached body and whether it was present. A nil cache always
// misses.
func (c *cache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least-recently-used entry when
// full. The caller must not mutate body afterwards.
func (c *cache) put(key string, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached entries.
func (c *cache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey hashes a canonical (re-marshaled, field-order-stable) request
// encoding, so two JSON bodies that decode to the same request share a key
// regardless of whitespace or key order. The hash itself (wire.Hash) is
// shared with the sweep engine's canonical-model memoizer.
func cacheKey(canonical []byte) string {
	return wire.Hash(canonical)
}
