package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hilp/internal/obs"
)

// heartbeatEvery paces SSE keep-alive comments so intermediaries don't drop
// an idle stream. Variable (not const) so tests can shorten it.
var heartbeatEvery = 10 * time.Second

// terminalJobStatus reports whether a job status string is final.
func terminalJobStatus(status string) bool {
	switch status {
	case "done", "cancelled", "failed":
		return true
	}
	return false
}

// handleJobEvents streams a job's live telemetry as Server-Sent Events:
// per-point completions, incumbent improvements, solver stage transitions,
// and the job's lifecycle, each one BusEvent rendered as an SSE frame
// (id: sequence, event: kind, data: JSON). The stream begins with a
// synthesized "job" snapshot so late subscribers see current progress
// immediately, and ends when the job reaches a terminal state, the client
// disconnects, or the server drains. Events published before the
// subscription simply aren't replayed — the bus is a live feed, not a log.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter(obs.MServeRequests).Inc()
	s.jobMu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.jobMu.Unlock()
	if !ok {
		s.writeError(r.Context(), w, http.StatusNotFound, "not_found", fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(r.Context(), w, http.StatusInternalServerError, "no_stream",
			fmt.Errorf("response writer cannot stream"))
		return
	}

	// Subscribe before reading the snapshot: events published in between are
	// then either in the snapshot or in the subscription, never lost.
	sub := s.obs.Bus.Subscribe()
	defer sub.Unsubscribe()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	snap := j.snapshot()
	writeSSE(w, 0, obs.BusEvent{
		Kind: "job", Name: snap.Status, Job: snap.ID, Req: snap.RequestID,
		Done: snap.Done, Total: snap.Total, Status: snap.Status,
	})
	flusher.Flush()
	if terminalJobStatus(snap.Status) {
		return
	}

	// Sweep-point events carry the starting request's correlation ID (the
	// parent "<req>" or a derived "<req>/pN"), job lifecycle events carry the
	// job ID; match either so the stream is exactly this job's telemetry.
	match := func(ev obs.BusEvent) bool {
		if ev.Job != "" {
			return ev.Job == snap.ID
		}
		if snap.RequestID == "" || ev.Req == "" {
			return false
		}
		return ev.Req == snap.RequestID || strings.HasPrefix(ev.Req, snap.RequestID+"/")
	}

	heartbeat := time.NewTicker(heartbeatEvery)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-sub.C:
			if !open {
				return // bus closed: server shutting down
			}
			if !match(ev) {
				continue
			}
			writeSSE(w, ev.Seq, ev)
			flusher.Flush()
			if ev.Kind == "job" && ev.Job == snap.ID && terminalJobStatus(ev.Status) {
				return
			}
		case <-heartbeat.C:
			// Comment frame: keeps the connection alive, invisible to
			// EventSource clients.
			fmt.Fprint(w, ": heartbeat\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		}
	}
}

// writeSSE renders one bus event as an SSE frame. The data line must be a
// single line, so the event is marshaled compactly (not with wire.Marshal's
// indentation).
func writeSSE(w http.ResponseWriter, seq uint64, ev obs.BusEvent) {
	body, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", seq, ev.Kind, body)
}
