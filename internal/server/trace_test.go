package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hilp/internal/obs"
)

func TestTraceparentMintedWhenAbsent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := post(t, ts.URL+"/v1/evaluate", fastBody(t))
	tp := resp.Header.Get("Traceparent")
	tc, err := obs.ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", tp, err)
	}
	if !tc.Valid() {
		t.Fatalf("minted trace context invalid: %q", tp)
	}
}

func TestTraceparentContinued(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	parent := "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/evaluate", bytes.NewReader(fastBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tc, err := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tc.TraceIDString(); got != "0123456789abcdef0123456789abcdef" {
		t.Errorf("trace ID %s, want the incoming one continued", got)
	}
	if tc.SpanIDString() == "00f067aa0ba902b7" {
		t.Error("server reused the parent span ID instead of minting a child")
	}
}

func TestStageAttribution(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/evaluate", fastBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	reqID := resp.Header.Get("X-Request-ID")

	r, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var dump debugRequestsResponse
	if err := json.NewDecoder(r.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	var sum *RequestSummary
	for i := range dump.Requests {
		if dump.Requests[i].ID == reqID {
			sum = &dump.Requests[i]
			break
		}
	}
	if sum == nil {
		t.Fatalf("request %s not in /debug/requests", reqID)
	}
	if sum.TraceID == "" {
		t.Error("summary lacks traceId")
	}
	for _, st := range []string{obs.StageValidate, obs.StageCacheLookup, obs.StageSchedule, obs.StageSolve, obs.StageEncode} {
		if _, ok := sum.Stages[st]; !ok {
			t.Errorf("summary stages lack %q: %v", st, sum.Stages)
		}
	}
	// The stages partition the request: their sum must explain the recorded
	// total within 5% (plus a small absolute allowance for sub-millisecond
	// scheduling noise). Fallback is excluded — it nests inside solve.
	var total float64
	for name, sec := range sum.Stages {
		if name != obs.StageFallback {
			total += sec
		}
	}
	slack := 0.05*sum.DurationSec + 500e-6
	if total > sum.DurationSec {
		t.Errorf("stage sum %.6fs exceeds request duration %.6fs", total, sum.DurationSec)
	}
	if sum.DurationSec-total > slack {
		t.Errorf("stage sum %.6fs explains too little of request duration %.6fs (slack %.6fs)",
			total, sum.DurationSec, slack)
	}
}

func TestStageHistogramsExported(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/evaluate", fastBody(t))
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	text := buf.String()
	for _, st := range obs.Stages {
		name := obs.StageMetricName(st)
		if !strings.Contains(text, name) {
			t.Errorf("/metrics lacks %s", name)
		}
	}
	if !strings.Contains(text, obs.MEventsDropped) {
		t.Errorf("/metrics lacks %s", obs.MEventsDropped)
	}
	if !strings.Contains(text, obs.MServeSubscribers) {
		t.Errorf("/metrics lacks %s", obs.MServeSubscribers)
	}
}

func TestDebugEndpointsHonorN(t *testing.T) {
	logBuf := obs.NewLogBuffer(64)
	octx := &obs.Context{Metrics: obs.NewRegistry(), Logger: obs.NewLoggerHandler(logBuf, slog.LevelDebug)}
	_, ts := newTestServer(t, Config{Obs: octx, LogBuffer: logBuf})
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/evaluate", fastBody(t))
	}

	var dump debugRequestsResponse
	r, err := http.Get(ts.URL + "/debug/requests?n=2")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r.Body).Decode(&dump)
	r.Body.Close()
	if len(dump.Requests) != 2 {
		t.Errorf("/debug/requests?n=2 returned %d summaries, want 2", len(dump.Requests))
	}
	if dump.Total < 3 {
		t.Errorf("total %d, want >= 3", dump.Total)
	}

	var logs debugLogsResponse
	r, err = http.Get(ts.URL + "/debug/logs?n=1")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r.Body).Decode(&logs)
	r.Body.Close()
	if len(logs.Entries) != 1 {
		t.Errorf("/debug/logs?n=1 returned %d entries, want 1", len(logs.Entries))
	}
}

func TestRequestSpansExported(t *testing.T) {
	var mu sync.Mutex
	var bodies []string
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		mu.Lock()
		bodies = append(bodies, buf.String())
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer collector.Close()

	exp := obs.NewOTLPExporter(collector.URL, "hilp-serve-test")
	defer exp.Close()
	_, ts := newTestServer(t, Config{OTLP: exp})

	parent := "00-aaaabbbbccccddddaaaabbbbccccdddd-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/evaluate", bytes.NewReader(fastBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	reqID := resp.Header.Get("X-Request-ID")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := exp.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	all := strings.Join(bodies, "\n")
	mu.Unlock()
	// The request span and its stage children all carry the incoming trace ID
	// and the request's correlation ID.
	if !strings.Contains(all, "aaaabbbbccccddddaaaabbbbccccdddd") {
		t.Error("exported spans lack the request's trace ID")
	}
	if !strings.Contains(all, "POST /v1/evaluate") {
		t.Error("exported spans lack the request span")
	}
	if !strings.Contains(all, "stage:"+obs.StageSolve) {
		t.Error("exported spans lack the solve stage child")
	}
	if !strings.Contains(all, reqID) {
		t.Error("exported spans lack the hilp.request_id attribute")
	}
}
