package server

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"hilp/internal/obs"
	"hilp/internal/wire"
)

// RequestSummary is one entry of the /debug/requests ring: enough to tie a
// slow, degraded, or failed solve back to its correlation ID, and from there
// to its log lines (/debug/logs), spans, and metric exemplars.
type RequestSummary struct {
	ID          string    `json:"id"`
	Path        string    `json:"path"`
	Start       time.Time `json:"start"`
	DurationSec float64   `json:"durationSec"`
	// Status is the HTTP status written for the request.
	Status int `json:"status"`
	// Solver names the method that produced the final schedule ("milp",
	// "anneal", "heuristic-fallback", ...); empty for non-solve requests.
	Solver string `json:"solver,omitempty"`
	// Gap is the certified optimality gap of the returned result (0 means
	// proven optimal; only meaningful when Solver is set).
	Gap float64 `json:"gap"`
	// Cancelled marks a solve cut short by its deadline (anytime result).
	Cancelled bool `json:"cancelled,omitempty"`
	// Degraded + FallbackReason mark a solve served by the fallback chain.
	Degraded       bool   `json:"degraded,omitempty"`
	FallbackReason string `json:"fallbackReason,omitempty"`
	// Cache is "hit" or "miss" for cacheable requests.
	Cache string `json:"cache,omitempty"`
	// Error carries the error string of a non-2xx response.
	Error string `json:"error,omitempty"`
	// JobID links an async sweep request to its job handle.
	JobID string `json:"jobId,omitempty"`
	// TraceID is the request's W3C trace ID (continued from an incoming
	// traceparent header, or minted), linking the summary to exported spans.
	TraceID string `json:"traceId,omitempty"`
	// Stages attributes request latency to pipeline stages (seconds by stage
	// name: validate, cache-lookup, schedule, solve, fallback, encode).
	Stages map[string]float64 `json:"stages,omitempty"`
}

// requestLog is a bounded ring of recent request summaries.
type requestLog struct {
	mu    sync.Mutex
	ring  []RequestSummary
	next  int
	total uint64
}

func newRequestLog(capacity int) *requestLog {
	if capacity < 1 {
		capacity = 256
	}
	return &requestLog{ring: make([]RequestSummary, 0, capacity)}
}

func (l *requestLog) add(s RequestSummary) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, s)
		return
	}
	l.ring[l.next] = s
	l.next = (l.next + 1) % cap(l.ring)
}

// snapshot returns the retained summaries, newest first.
func (l *requestLog) snapshot() ([]RequestSummary, uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RequestSummary, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		out = append(out, l.ring...)
	} else {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	}
	// Reverse: the ring is oldest-first, the debug surface wants newest-first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, l.total
}

// debugRequestsResponse is the body of GET /debug/requests.
type debugRequestsResponse struct {
	SchemaVersion int `json:"schemaVersion"`
	// Total counts every summarized request, including ones the ring has
	// since evicted.
	Total uint64 `json:"total"`
	// Requests lists the retained summaries, newest first.
	Requests []RequestSummary `json:"requests"`
}

// debugLimit parses the ?n= query parameter bounding a debug dump; 0 (or an
// unparsable value) means "everything retained".
func debugLimit(r *http.Request) int {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	reqs, total := s.reqLog.snapshot()
	if reqs == nil {
		reqs = []RequestSummary{}
	}
	// Summaries are newest-first, so ?n= keeps the n most recent.
	if n := debugLimit(r); n > 0 && n < len(reqs) {
		reqs = reqs[:n]
	}
	body, err := wire.Marshal(debugRequestsResponse{SchemaVersion: wire.SchemaVersion, Total: total, Requests: reqs})
	if err != nil {
		s.writeError(r.Context(), w, http.StatusInternalServerError, "", err)
		return
	}
	s.writeJSON(r.Context(), w, http.StatusOK, body)
}

// debugLogsResponse is the body of GET /debug/logs.
type debugLogsResponse struct {
	SchemaVersion int `json:"schemaVersion"`
	// Total counts every captured record, including overwritten ones.
	Total uint64 `json:"total"`
	// Entries lists the retained records, oldest first.
	Entries []obs.LogEntry `json:"entries"`
}

func (s *Server) handleDebugLogs(w http.ResponseWriter, r *http.Request) {
	entries := s.cfg.LogBuffer.Entries()
	if entries == nil {
		entries = []obs.LogEntry{}
	}
	// Entries are oldest-first, so ?n= keeps the n most recent (the tail).
	if n := debugLimit(r); n > 0 && n < len(entries) {
		entries = entries[len(entries)-n:]
	}
	body, err := wire.Marshal(debugLogsResponse{SchemaVersion: wire.SchemaVersion, Total: s.cfg.LogBuffer.Total(), Entries: entries})
	if err != nil {
		s.writeError(r.Context(), w, http.StatusInternalServerError, "", err)
		return
	}
	s.writeJSON(r.Context(), w, http.StatusOK, body)
}
