package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"hilp/internal/obs"
	"hilp/internal/wire"
)

// fastBody is an evaluate request small enough to solve in milliseconds.
func fastBody(t *testing.T) []byte {
	t.Helper()
	req := wire.EvaluateRequest{
		Workload: &wire.Workload{Apps: []wire.App{{Bench: "LUD"}, {Bench: "HS"}}},
		SoC:      &wire.SoC{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		Profile:  &wire.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 0, MaxRefinements: 0},
		Solver:   &wire.SolverConfig{Seed: 1, Effort: 0.2},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestEvaluateTemplate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/evaluate", fastBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out wire.EvaluateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.SchemaVersion != wire.SchemaVersion {
		t.Errorf("schemaVersion %d, want %d", out.SchemaVersion, wire.SchemaVersion)
	}
	if out.Result.Speedup <= 0 || math.IsInf(out.Result.Speedup, 0) || math.IsNaN(out.Result.Speedup) {
		t.Errorf("speedup %g, want finite > 0", out.Result.Speedup)
	}
	if out.Result.Cancelled {
		t.Error("uncancelled solve reported cancelled")
	}
	if out.Result.SpecLabel == "" {
		t.Error("result lacks specLabel")
	}
}

func TestEvaluateCacheByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := fastBody(t)

	resp1, out1 := post(t, ts.URL+"/v1/evaluate", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first: status %d: %s", resp1.StatusCode, out1)
	}
	if got := resp1.Header.Get("X-HILP-Cache"); got != "miss" {
		t.Errorf("first X-HILP-Cache = %q, want miss", got)
	}

	resp2, out2 := post(t, ts.URL+"/v1/evaluate", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second: status %d: %s", resp2.StatusCode, out2)
	}
	if got := resp2.Header.Get("X-HILP-Cache"); got != "hit" {
		t.Errorf("second X-HILP-Cache = %q, want hit", got)
	}
	if !bytes.Equal(out1, out2) {
		t.Errorf("cached response differs from first:\n%s\nvs\n%s", out1, out2)
	}
	if hits := s.obs.Metrics.Counter(obs.MServeCacheHits).Value(); hits != 1 {
		t.Errorf("%s = %d, want 1", obs.MServeCacheHits, hits)
	}

	// Same request, different whitespace: canonicalization must still hit.
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, body, "", "   "); err != nil {
		t.Fatal(err)
	}
	resp3, _ := post(t, ts.URL+"/v1/evaluate", pretty.Bytes())
	if got := resp3.Header.Get("X-HILP-Cache"); got != "hit" {
		t.Errorf("reformatted request X-HILP-Cache = %q, want hit", got)
	}
}

func TestEvaluateModelFig2(t *testing.T) {
	data, err := os.ReadFile("../../examples/models/fig2.json")
	if err != nil {
		t.Fatal(err)
	}
	m, err := wire.DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	req, err := json.Marshal(wire.EvaluateRequest{Model: &m, StepSec: 1, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/evaluate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out wire.EvaluateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Speedup <= 0 || math.IsInf(out.Result.Speedup, 0) {
		t.Errorf("model speedup %g, want finite > 0", out.Result.Speedup)
	}
	if out.Result.MakespanSec <= 0 {
		t.Errorf("model makespan %g, want > 0", out.Result.MakespanSec)
	}
}

func TestEvaluateDeadlineReturnsIncumbent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := wire.EvaluateRequest{
		Workload:   &wire.Workload{Name: "default"},
		SoC:        &wire.SoC{CPUCores: 4, GPUSMs: 64},
		Solver:     &wire.SolverConfig{Seed: 1, Effort: 50},
		TimeoutSec: 0.02,
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/evaluate", data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out wire.EvaluateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Result.Cancelled {
		t.Fatal("20ms budget on a 10-app, 50x-effort solve was not cancelled")
	}
	if out.Result.MakespanSec <= 0 {
		t.Errorf("cancelled result has no incumbent: makespan %g", out.Result.MakespanSec)
	}
	if out.Result.Gap < 0 || math.IsInf(out.Result.Gap, 0) || math.IsNaN(out.Result.Gap) {
		t.Errorf("cancelled result gap %g, want finite >= 0", out.Result.Gap)
	}
	if out.Result.Proven {
		t.Error("cancelled result claims proven optimality")
	}
}

func TestEvaluateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := map[string]struct {
		body   string
		status int
		code   string
	}{
		"malformed":     {`{"workload": nope}`, http.StatusBadRequest, "malformed_json"},
		"unknown field": {`{"soc":{"cpuCores":1},"warpDrive":9}`, http.StatusBadRequest, "malformed_json"},
		"missing soc":   {`{"workload":{"name":"default"}}`, http.StatusBadRequest, "bad_request"},
		"bad baseline":  {`{"soc":{"cpuCores":1},"baseline":"astrology"}`, http.StatusBadRequest, "bad_request"},
		// Unknown workloads and benchmarks are model-validation failures: 422
		// with a field-addressed diagnostic, not a bare 400.
		"bad workload": {`{"workload":{"name":"galaxy"},"soc":{"cpuCores":1}}`,
			http.StatusUnprocessableEntity, "bad_model"},
		"future version": {fmt.Sprintf(`{"schemaVersion":%d,"soc":{"cpuCores":1}}`, wire.SchemaVersion+1),
			http.StatusBadRequest, "version"},
	}
	for name, tc := range cases {
		resp, out := post(t, ts.URL+"/v1/evaluate", []byte(tc.body))
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d (%s), want %d", name, resp.StatusCode, out, tc.status)
		}
		var e wire.ErrorResponse
		if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %s", name, out)
		}
		if e.Code != tc.code {
			t.Errorf("%s: code %q, want %q", name, e.Code, tc.code)
		}
	}
}

func TestSweepJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := wire.SweepRequest{
		Workload: &wire.Workload{Apps: []wire.App{{Bench: "LUD"}, {Bench: "HS"}}},
		Specs: []wire.SoC{
			{CPUCores: 1, GPUFrequenciesMHz: []float64{765}},
			{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		},
		Profile: &wire.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 0, MaxRefinements: 0},
		Solver:  &wire.SolverConfig{Seed: 1, Effort: 0.2},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/sweep", data)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var j wire.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || j.Total != 2 {
		t.Fatalf("job handle %+v", j)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + j.URL)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", r.StatusCode, buf.String())
		}
		if err := json.Unmarshal(buf.Bytes(), &j); err != nil {
			t.Fatal(err)
		}
		if j.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep still running after 30s: %+v", j)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if j.Status != "done" {
		t.Fatalf("job status %q, want done", j.Status)
	}
	if j.Result == nil || len(j.Result.Points) != 2 {
		t.Fatalf("job result %+v", j.Result)
	}
	for i, p := range j.Result.Points {
		if p.Error != "" || p.Speedup <= 0 {
			t.Errorf("point %d: %+v", i, p)
		}
	}
	if len(j.Result.Pareto) == 0 {
		t.Error("no pareto points")
	}
	// The accelerated SoC dominates.
	if j.Result.Points[1].Speedup <= j.Result.Points[0].Speedup {
		t.Errorf("GPU SoC %g not faster than CPU-only %g",
			j.Result.Points[1].Speedup, j.Result.Points[0].Speedup)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestShutdownCancelsJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	// A sweep big and slow enough to still be running at shutdown.
	specs := make([]wire.SoC, 64)
	for i := range specs {
		specs[i] = wire.SoC{CPUCores: 4, GPUSMs: 64}
	}
	req := wire.SweepRequest{
		Workload: &wire.Workload{Name: "default"},
		Specs:    specs,
		Solver:   &wire.SolverConfig{Seed: 1, Effort: 10},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/sweep", data)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var j wire.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}

	s.jobMu.Lock()
	jb := s.jobs[j.ID]
	s.jobMu.Unlock()
	snap := jb.snapshot()
	if snap.Status != "cancelled" {
		t.Fatalf("job status %q after shutdown, want cancelled", snap.Status)
	}
	if snap.Result == nil || len(snap.Result.Points) != len(specs) {
		t.Fatalf("cancelled job result %+v", snap.Result)
	}
	// Undispatched points must be marked, not silently dropped.
	marked := 0
	for _, p := range snap.Result.Points {
		if p.Error != "" || p.Cancelled {
			marked++
		}
	}
	if marked == 0 {
		t.Error("shutdown mid-sweep left no point marked cancelled or errored")
	}
}

func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy the only worker, then saturate the admission window (the pool
	// admits Workers+QueueDepth waiters) so the next request is rejected.
	s.tokens <- struct{}{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	acquired := make(chan error, 2)
	go func() { acquired <- s.acquire(ctx) }()
	go func() { acquired <- s.acquire(ctx) }()
	// Wait until both queued acquires are counted.
	for i := 0; s.waiting.Load() < 2 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	resp, body := post(t, ts.URL+"/v1/evaluate", fastBody(t))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if rejected := s.obs.Metrics.Counter(obs.MServeRejected).Value(); rejected != 1 {
		t.Errorf("%s = %d, want 1", obs.MServeRejected, rejected)
	}

	cancel()
	for i := 0; i < 2; i++ {
		if err := <-acquired; err == nil {
			s.release()
		}
	}
	<-s.tokens
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	// One solve so counters exist.
	post(t, ts.URL+"/v1/evaluate", fastBody(t))

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}
	for _, name := range []string{obs.MServeRequests, obs.MServeCacheMisses, obs.MSolves} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("metrics output lacks %s", name)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b not evicted")
	}
	if v, ok := c.get("a"); !ok || string(v) != "A" {
		t.Error("a lost")
	}
	if v, ok := c.get("c"); !ok || string(v) != "C" {
		t.Error("c missing")
	}
	if c.len() != 2 {
		t.Errorf("len %d, want 2", c.len())
	}
}
