package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"hilp"
	"hilp/internal/dse"
	"hilp/internal/journal"
	"hilp/internal/obs"
	"hilp/internal/wire"
)

// RecoveryStats summarizes what Recover found in the journal.
type RecoveryStats struct {
	// Records and Torn come from the replay pass (see journal.ReplayStats).
	Records int
	Torn    bool
	// Jobs is the number of journaled jobs seen; Terminal of those finished
	// before the crash and were re-registered with their results rebuilt;
	// Resumed were interrupted and re-entered the worker pool with
	// ResumedPoints completed points replayed instead of re-solved.
	Jobs          int
	Terminal      int
	Resumed       int
	ResumedPoints int
}

// Recover replays the crash-recovery journal and opens it for appending. The
// binary calls it once, after New and before serving:
//
//   - terminal jobs (jobEnd recorded) are re-registered with their results
//     rebuilt from the journaled points, so GET /v1/jobs/{id} keeps answering
//     across restarts and idempotency keys keep deduplicating;
//   - interrupted jobs re-enter the worker pool with every clean journaled
//     point pre-filled (hilp.WithResume), re-solving strictly fewer points
//     than they recover. A job whose journaled model key no longer matches
//     its rebuilt request is marked failed with a field-addressed validation
//     error instead of splicing mismatched results;
//   - with Config.JournalDir empty this is a no-op.
//
// Without the Recover call, journaling stays off even when JournalDir is set.
func (s *Server) Recover() (RecoveryStats, error) {
	var rs RecoveryStats
	if s.cfg.JournalDir == "" {
		return rs, nil
	}
	if s.journal != nil {
		return rs, errors.New("server: Recover called twice")
	}
	start := time.Now()
	jobs, stats, err := journal.ReplayJobs(s.cfg.JournalDir)
	rs.Records, rs.Torn = stats.Records, stats.Torn
	s.obs.Counter(obs.MJournalReplayRecords).Add(int64(stats.Records))
	if stats.Torn {
		s.obs.Counter(obs.MJournalTornTails).Inc()
	}
	if err != nil {
		return rs, fmt.Errorf("server: journal replay: %w", err)
	}
	jr, err := journal.Open(s.cfg.JournalDir, journal.Options{Obs: s.obs})
	if err != nil {
		return rs, fmt.Errorf("server: %w", err)
	}
	s.journal = jr
	for _, st := range jobs {
		if st.Start == nil || st.JobID == "" {
			// Point records whose jobStart was lost to the crash (it syncs
			// before the 202, so this means a torn tail ate it): nothing to
			// rebuild a job from.
			continue
		}
		rs.Jobs++
		s.recoverJob(st, &rs)
	}
	s.obs.Histogram(obs.StageMetricName(obs.StageJournalReplay)).Observe(time.Since(start).Seconds())
	s.obs.Log(context.Background(), slog.LevelInfo, "journal: recovery complete",
		"dir", s.cfg.JournalDir, "records", rs.Records, "torn", rs.Torn,
		"jobs", rs.Jobs, "terminal", rs.Terminal, "resumed", rs.Resumed,
		"resumedPoints", rs.ResumedPoints)
	return rs, nil
}

// recoverJob rebuilds one journaled job: re-registered as-is when terminal,
// resumed through the worker pool otherwise.
func (s *Server) recoverJob(st *journal.JobState, rs *RecoveryStats) {
	j := &job{
		id:      st.JobID,
		reqID:   st.Start.RequestID,
		idemKey: st.Start.IdempotencyKey,
		total:   st.Start.Total,
		status:  "running",
		created: time.Now(),
	}
	fail := func(err error) {
		j.status = "failed"
		j.errMsg = err.Error()
		s.registerRecovered(j)
		s.obs.Log(context.Background(), slog.LevelWarn, "journal: job not recoverable",
			"job", j.id, "error", err.Error())
	}
	if st.Start.Request == nil {
		fail(errors.New("journal: jobStart record carries no request"))
		return
	}
	plan, apiErr := s.planSweep(st.Start.Request)
	if apiErr != nil {
		fail(apiErr.err)
		return
	}
	if len(plan.specs) != j.total {
		fail(fmt.Errorf("journal: jobStart total %d but request resolves to %d specs", j.total, len(plan.specs)))
		return
	}

	if st.Terminal() {
		rs.Terminal++
		j.status = st.End.Status
		j.errMsg = st.End.Error
		if j.status == "done" || j.status == "cancelled" {
			points := make([]hilp.Point, len(plan.specs))
			for i := range plan.specs {
				if wp, ok := st.Points[i]; ok {
					points[i] = dse.FromWirePoint(wp, plan.specs[i])
				} else {
					// A cancelled job's never-dispatched points were
					// journaled as nothing; mirror the original sweep's
					// context-error placeholders.
					points[i] = dse.FromWirePoint(wire.Point{Error: context.Canceled.Error()}, plan.specs[i])
				}
			}
			resp := &wire.SweepResponse{SchemaVersion: wire.SchemaVersion}
			resp.Points, resp.Pareto = wirePoints(points)
			j.result = resp
			j.done.Store(int64(len(points)))
		}
		s.registerRecovered(j)
		return
	}

	// Interrupted job: resume it. Refuse when the journal was recorded
	// against a different model — replaying one model's metrics into
	// another's result set would be silent corruption.
	if err := dse.CheckResumeKey(st.Start.ModelKey, plan.modelKey); err != nil {
		fail(err)
		return
	}
	resume := map[int]hilp.Point{}
	for idx, wp := range st.Points {
		if idx < 0 || idx >= len(plan.specs) || !dse.Resumable(wp) {
			continue
		}
		resume[idx] = dse.FromWirePoint(wp, plan.specs[idx])
	}
	j.resumed = true
	j.resumedPoints = len(resume)
	j.done.Store(int64(len(resume)))
	rs.Resumed++
	rs.ResumedPoints += len(resume)
	s.obs.Counter(obs.MJournalResumedJobs).Inc()
	s.obs.Counter(obs.MSweepPointsResumed) // pre-register; the engine increments per point
	s.registerRecovered(j)

	opts := append(plan.opts,
		hilp.WithProgress(func(p hilp.SweepProgress) { j.done.Store(int64(p.Done)) }),
		hilp.WithResume(resume))
	opts = s.withJournalCheckpoint(opts, j)
	s.jobWG.Add(1)
	s.obs.Gauge(obs.MServeJobsActive).Add(1)
	go s.runJob(j, plan.workload, plan.specs, opts, plan.timeout)
}

// registerRecovered inserts a rebuilt job (and its idempotency mapping) into
// the registry. Recovery may transiently exceed MaxJobs; normal eviction
// trims the excess as new jobs arrive.
func (s *Server) registerRecovered(j *job) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	if _, dup := s.jobs[j.id]; dup {
		return
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	if j.idemKey != "" {
		s.idem[j.idemKey] = j
	}
}

// sweepModelKey is the canonical identity of what a sweep computes: the
// workload, the resolved specs, and the evaluation configuration. Journaled
// with jobStart and compared on resume (see dse.CheckResumeKey).
func sweepModelKey(req *wire.SweepRequest) string {
	type canonical struct {
		Workload *wire.Workload     `json:"workload,omitempty"`
		Specs    []wire.SoC         `json:"specs"`
		Baseline string             `json:"baseline,omitempty"`
		Profile  *wire.Profile      `json:"profile,omitempty"`
		Solver   *wire.SolverConfig `json:"solver,omitempty"`
	}
	key, err := wire.CanonicalKey(canonical{
		Workload: req.Workload,
		Specs:    req.Specs,
		Baseline: req.Baseline,
		Profile:  req.Profile,
		Solver:   req.Solver,
	})
	if err != nil {
		return ""
	}
	return key
}

// journalJobStart makes the job's existence durable before its 202 leaves the
// server: record plus immediate sync, so a crash cannot forget a job the
// client holds a handle to. Append failures are logged, not fatal — a broken
// journal must not take down serving.
func (s *Server) journalJobStart(j *job, plan *sweepPlan) {
	if s.journal == nil {
		return
	}
	err := s.journal.Append(wire.JournalRecord{
		Kind:  wire.JournalKindJobStart,
		JobID: j.id,
		Start: &wire.JournalJobStart{
			RequestID:      j.reqID,
			IdempotencyKey: j.idemKey,
			Total:          j.total,
			Request:        plan.req,
			ModelKey:       plan.modelKey,
		},
	})
	if err == nil {
		err = s.journal.Sync()
	}
	if err != nil {
		s.obs.Log(context.Background(), slog.LevelError, "journal: jobStart append failed",
			"job", j.id, "error", err.Error())
	}
}

// withJournalCheckpoint appends the per-point checkpoint hook: every
// completed point becomes a journal record (batched fsync per the journal's
// policy — a crash loses at most the last unsynced batch, and those points
// simply re-solve on resume).
func (s *Server) withJournalCheckpoint(opts []hilp.Option, j *job) []hilp.Option {
	if s.journal == nil {
		return opts
	}
	return append(opts, hilp.WithCheckpoint(func(i int, p hilp.Point) {
		err := s.journal.Append(wire.JournalRecord{
			Kind:  wire.JournalKindPoint,
			JobID: j.id,
			Point: &wire.JournalPoint{Index: i, Point: wirePoint(p)},
		})
		if err != nil {
			s.obs.Log(context.Background(), slog.LevelError, "journal: point append failed",
				"job", j.id, "point", i, "error", err.Error())
		}
	}))
}

// journalJobEnd makes the job's terminal status durable (record plus
// immediate sync) so recovery never re-runs a finished job.
func (s *Server) journalJobEnd(j *job, status, errMsg string) {
	if s.journal == nil || status == "" || status == "running" {
		return
	}
	err := s.journal.Append(wire.JournalRecord{
		Kind:  wire.JournalKindJobEnd,
		JobID: j.id,
		End:   &wire.JournalJobEnd{Status: status, Error: errMsg},
	})
	if err == nil {
		err = s.journal.Sync()
	}
	if err != nil {
		s.obs.Log(context.Background(), slog.LevelError, "journal: jobEnd append failed",
			"job", j.id, "error", err.Error())
	}
}
