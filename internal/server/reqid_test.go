package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"hilp/internal/obs"
	"hilp/internal/wire"
)

// postWithHeader posts body and returns the response plus its bytes, with an
// optional X-Request-ID header attached.
func postWithHeader(t *testing.T, url, reqID string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestRequestIDEchoedAndGenerated(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// An incoming X-Request-ID is honored and echoed back.
	resp, body := postWithHeader(t, ts.URL+"/v1/evaluate", "client-chosen-id", fastBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "client-chosen-id" {
		t.Errorf("X-Request-ID = %q, want the client's client-chosen-id", got)
	}

	// Without the header the server generates IDs, distinct per request.
	resp1, _ := postWithHeader(t, ts.URL+"/v1/evaluate", "", fastBody(t))
	resp2, _ := postWithHeader(t, ts.URL+"/v1/evaluate", "", fastBody(t))
	id1 := resp1.Header.Get("X-Request-ID")
	id2 := resp2.Header.Get("X-Request-ID")
	if id1 == "" || id2 == "" {
		t.Fatalf("generated IDs missing: %q, %q", id1, id2)
	}
	if id1 == id2 {
		t.Errorf("two requests share the generated ID %q", id1)
	}

	// Oversized client IDs are replaced, not reflected.
	huge := strings.Repeat("x", 200)
	resp3, _ := postWithHeader(t, ts.URL+"/v1/evaluate", huge, fastBody(t))
	if got := resp3.Header.Get("X-Request-ID"); got == huge || got == "" {
		t.Errorf("oversized client ID handling: got %q", got)
	}
}

func TestSweepJobCarriesRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := wire.SweepRequest{
		Workload: &wire.Workload{Apps: []wire.App{{Bench: "LUD"}, {Bench: "HS"}}},
		Specs: []wire.SoC{
			{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		},
		Profile: &wire.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 0, MaxRefinements: 0},
		Solver:  &wire.SolverConfig{Seed: 1, Effort: 0.2},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postWithHeader(t, ts.URL+"/v1/sweep", "sweep-req-7", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var j wire.Job
	if err := json.Unmarshal(out, &j); err != nil {
		t.Fatal(err)
	}
	if j.RequestID != "sweep-req-7" {
		t.Errorf("accepted job requestId = %q, want sweep-req-7", j.RequestID)
	}

	// The job status keeps the correlation ID for its whole lifetime, and the
	// finished points derive theirs from it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, out = postGet(t, ts.URL+j.URL)
		if err := json.Unmarshal(out, &j); err != nil {
			t.Fatalf("poll: %v: %s", err, out)
		}
		if j.RequestID != "sweep-req-7" {
			t.Fatalf("polled job requestId = %q, want sweep-req-7", j.RequestID)
		}
		if j.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still running after 30s: %s", out)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if j.Status != "done" {
		t.Fatalf("job status %q: %s", j.Status, out)
	}
	if j.Result == nil || len(j.Result.Points) != 1 {
		t.Fatalf("job result: %s", out)
	}
	if got := j.Result.Points[0].RequestID; !strings.HasPrefix(got, "sweep-req-7/p") {
		t.Errorf("point requestId = %q, want sweep-req-7/p*", got)
	}
}

// postGet is a GET with the post helper's response shape.
func postGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestDebugRequestsAndLogs(t *testing.T) {
	logBuf := obs.NewLogBuffer(128)
	logger := obs.NewLoggerHandler(obs.StampRequestID(logBuf), slog.LevelDebug)
	octx := &obs.Context{Metrics: obs.NewRegistry(), Logger: logger}
	_, ts := newTestServer(t, Config{Obs: octx, LogBuffer: logBuf})

	resp, body := postWithHeader(t, ts.URL+"/v1/evaluate", "debug-probe", fastBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: status %d: %s", resp.StatusCode, body)
	}
	var out wire.EvaluateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}

	// /debug/requests lists the request, with its duration, solver, and gap.
	resp, body = postGet(t, ts.URL+"/debug/requests")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/requests: status %d: %s", resp.StatusCode, body)
	}
	var dr debugRequestsResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	var found *RequestSummary
	for i := range dr.Requests {
		if dr.Requests[i].ID == "debug-probe" {
			found = &dr.Requests[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("debug-probe missing from /debug/requests: %s", body)
	}
	if found.Status != http.StatusOK || found.DurationSec <= 0 {
		t.Errorf("summary status/duration = %d/%g, want 200/>0", found.Status, found.DurationSec)
	}
	if found.Solver == "" {
		t.Error("summary lacks the solver method")
	}
	if found.Gap != out.Result.Gap {
		t.Errorf("summary gap %g, want the response's %g", found.Gap, out.Result.Gap)
	}
	if found.Cache != "miss" {
		t.Errorf("summary cache %q, want miss", found.Cache)
	}

	// /debug/logs serves the captured structured records; the solve's lines
	// carry the correlation ID.
	resp, body = postGet(t, ts.URL+"/debug/logs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/logs: status %d: %s", resp.StatusCode, body)
	}
	var dl debugLogsResponse
	if err := json.Unmarshal(body, &dl); err != nil {
		t.Fatal(err)
	}
	if len(dl.Entries) == 0 {
		t.Fatal("no log entries captured")
	}
	stamped := false
	for _, e := range dl.Entries {
		if e.Req == "debug-probe" {
			stamped = true
			break
		}
	}
	if !stamped {
		t.Errorf("no /debug/logs entry stamped with debug-probe: %s", body)
	}
}

func TestMetricsRuntimeAndBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postGet(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		obs.MGoGoroutines,
		obs.MGoHeapAllocBytes,
		obs.MGoGCPauseSec,
		obs.MBuildInfo,
		obs.MServePoolBusy,
		obs.MServeCacheEntries,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %s:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `goVersion="`) {
		t.Errorf("build info gauge lacks goVersion label:\n%s", text)
	}
}
