package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"hilp/internal/faults"
	"hilp/internal/leakcheck"
	"hilp/internal/wire"
)

// pollJob polls a job URL until it leaves "running" or the deadline passes.
func pollJob(t *testing.T, base, url string) wire.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var j wire.Job
	for {
		r, err := http.Get(base + url)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", r.StatusCode, buf.String())
		}
		if err := json.Unmarshal(buf.Bytes(), &j); err != nil {
			t.Fatal(err)
		}
		if j.Status != "running" {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still running after 30s: %+v", j)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func sweepBody(t *testing.T) []byte {
	t.Helper()
	req := wire.SweepRequest{
		Workload: &wire.Workload{Apps: []wire.App{{Bench: "LUD"}, {Bench: "HS"}}},
		Specs: []wire.SoC{
			{CPUCores: 1, GPUFrequenciesMHz: []float64{765}},
			{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
		},
		Profile: &wire.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 0, MaxRefinements: 0},
		Solver:  &wire.SolverConfig{Seed: 1, Effort: 0.2},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// A solver that keeps failing inside the request must degrade the response,
// not fail it — and degraded responses must not poison the cache.
func TestServeDegradedSolve(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 1, Rate: 1, Times: 5,
		Kinds: []faults.Kind{faults.KindError}, Sites: []string{faults.SiteSolve}})
	_, ts := newTestServer(t, Config{Faults: inj})

	for round, want := range []string{"miss", "miss"} {
		resp, body := post(t, ts.URL+"/v1/evaluate", fastBody(t))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, body)
		}
		var out wire.EvaluateResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Result.Degraded || out.Result.FallbackReason != "injected-fault" {
			t.Fatalf("round %d: degraded=%v reason=%q, want true/injected-fault",
				round, out.Result.Degraded, out.Result.FallbackReason)
		}
		if out.Result.Speedup <= 0 {
			t.Errorf("round %d: degraded result speedup %g", round, out.Result.Speedup)
		}
		if got := resp.Header.Get("X-HILP-Cache"); got != want {
			t.Errorf("round %d: X-HILP-Cache = %q, want %q (degraded results must not be cached)", round, got, want)
		}
	}
}

// A panic outside the solver's own recover boundary must become a structured
// 500 on that request only; the server stays healthy for the next one.
func TestServeEvaluatePanic500HealthzOK(t *testing.T) {
	leakcheck.VerifyNoLeaks(t)
	inj := faults.New(faults.Config{Seed: 1, Rate: 1, Times: 100,
		Kinds: []faults.Kind{faults.KindPanic}, Sites: []string{faults.SiteEvaluate}})
	_, ts := newTestServer(t, Config{Faults: inj})

	resp, body := post(t, ts.URL+"/v1/evaluate", fastBody(t))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500", resp.StatusCode, body)
	}
	var e wire.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Code != "internal_panic" {
		t.Fatalf("error body %s, want code internal_panic", body)
	}

	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Errorf("healthz %d after a handler panic, want 200", h.StatusCode)
	}
}

// A transient serve-site fault consumes one retry and the job still finishes.
func TestServeJobRetrySucceeds(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 1, Rate: 1, Times: 1,
		Kinds: []faults.Kind{faults.KindError}, Sites: []string{faults.SiteServe}})
	_, ts := newTestServer(t, Config{Faults: inj, RetryBaseDelay: time.Millisecond})

	resp, body := post(t, ts.URL+"/v1/sweep", sweepBody(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var j wire.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	j = pollJob(t, ts.URL, j.URL)
	if j.Status != "done" {
		t.Fatalf("job status %q (%s), want done after one retry", j.Status, j.Error)
	}
	if j.Retries != 1 {
		t.Errorf("retries %d, want 1", j.Retries)
	}
	if j.Result == nil || len(j.Result.Points) != 2 {
		t.Fatalf("job result %+v", j.Result)
	}
	for i, p := range j.Result.Points {
		if p.Error != "" || p.Speedup <= 0 {
			t.Errorf("point %d after retry: %+v", i, p)
		}
	}
}

// A persistent serve-site fault exhausts the retry budget and fails the job
// with a structured error instead of hanging or crashing the pool.
func TestServeJobFailsAfterRetries(t *testing.T) {
	leakcheck.VerifyNoLeaks(t)
	inj := faults.New(faults.Config{Seed: 1, Rate: 1, Times: 10,
		Kinds: []faults.Kind{faults.KindError}, Sites: []string{faults.SiteServe}})
	_, ts := newTestServer(t, Config{Faults: inj, RetryBaseDelay: time.Millisecond})

	resp, body := post(t, ts.URL+"/v1/sweep", sweepBody(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var j wire.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	j = pollJob(t, ts.URL, j.URL)
	if j.Status != "failed" {
		t.Fatalf("job status %q, want failed", j.Status)
	}
	if j.Error == "" {
		t.Error("failed job carries no error message")
	}
	if j.Retries != 2 {
		t.Errorf("retries %d, want 2 (the default budget)", j.Retries)
	}
}

func TestServeBodyLimit413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	big := append([]byte(`{"pad":"`), bytes.Repeat([]byte("x"), 4096)...)
	big = append(big, []byte(`"}`)...)
	resp, body := post(t, ts.URL+"/v1/evaluate", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", resp.StatusCode, body)
	}
	var e wire.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Code != "too_large" {
		t.Errorf("error body %s, want code too_large", body)
	}
	// A request under the limit still works.
	if resp, out := post(t, ts.URL+"/v1/evaluate", []byte(`{}`)); resp.StatusCode == http.StatusRequestEntityTooLarge {
		t.Errorf("small body rejected as too large: %s", out)
	}
}

// Every malformed custom-model fixture must come back as a structured 422
// (bad_model, with field paths) or 400 (malformed_json), never a 500.
func TestServeMalformedModels(t *testing.T) {
	// modelReq wraps a model JSON object into an evaluate request.
	modelReq := func(model string) string {
		return fmt.Sprintf(`{"model":%s,"stepSec":1,"horizon":100}`, model)
	}
	valid := `{"Name":"m","Clusters":[{"Name":"cpu"}],"Tasks":[` +
		`{"Name":"a","Options":[{"Cluster":"cpu","Sec":2}]},` +
		`{"Name":"b","Deps":[{"Task":"a"}],"Options":[{"Cluster":"cpu","Sec":1}]}]}`

	cases := map[string]struct {
		body       string
		status     int
		code       string
		wantFields bool
	}{
		"valid baseline": {modelReq(valid), http.StatusOK, "", false},
		"negative seconds": {modelReq(`{"Name":"m","Clusters":[{"Name":"cpu"}],` +
			`"Tasks":[{"Name":"a","Options":[{"Cluster":"cpu","Sec":-2}]}]}`),
			http.StatusUnprocessableEntity, "bad_model", true},
		"empty compatibility row": {modelReq(`{"Name":"m","Clusters":[{"Name":"cpu"}],` +
			`"Tasks":[{"Name":"a","Options":[]}]}`),
			http.StatusUnprocessableEntity, "bad_model", true},
		"unknown cluster": {modelReq(`{"Name":"m","Clusters":[{"Name":"cpu"}],` +
			`"Tasks":[{"Name":"a","Options":[{"Cluster":"tpu","Sec":1}]}]}`),
			http.StatusUnprocessableEntity, "bad_model", true},
		"negative app": {modelReq(`{"Name":"m","Clusters":[{"Name":"cpu"}],` +
			`"Tasks":[{"Name":"a","App":-3,"Options":[{"Cluster":"cpu","Sec":1}]}]}`),
			http.StatusUnprocessableEntity, "bad_model", true},
		"dependency cycle": {modelReq(`{"Name":"m","Clusters":[{"Name":"cpu"}],"Tasks":[` +
			`{"Name":"a","Deps":[{"Task":"b"}],"Options":[{"Cluster":"cpu","Sec":1}]},` +
			`{"Name":"b","Deps":[{"Task":"a"}],"Options":[{"Cluster":"cpu","Sec":1}]}]}`),
			http.StatusUnprocessableEntity, "bad_model", true},
		"negative step": {fmt.Sprintf(`{"model":%s,"stepSec":-1,"horizon":100}`, valid),
			http.StatusUnprocessableEntity, "bad_model", true},
		// NaN is not JSON: a NaN smuggled as a string must die in decoding.
		"nan as string": {modelReq(`{"Name":"m","Clusters":[{"Name":"cpu"}],` +
			`"Tasks":[{"Name":"a","Options":[{"Cluster":"cpu","Sec":"NaN"}]}]}`),
			http.StatusBadRequest, "malformed_json", false},
		"truncated matrix": {`{"model":{"Name":"m","Clusters":[{"Name":"cpu"}],"Tasks":[{"Na`,
			http.StatusBadRequest, "malformed_json", false},
	}
	_, ts := newTestServer(t, Config{})
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			resp, out := post(t, ts.URL+"/v1/evaluate", []byte(tc.body))
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, out, tc.status)
			}
			if tc.status == http.StatusOK {
				return
			}
			var e wire.ErrorResponse
			if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %s", out)
			}
			if e.Code != tc.code {
				t.Errorf("code %q, want %q", e.Code, tc.code)
			}
			if tc.wantFields && len(e.Fields) == 0 {
				t.Errorf("422 response has no field diagnostics: %s", out)
			}
		})
	}
}
