package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"hilp/internal/leakcheck"
	"hilp/internal/obs"
	"hilp/internal/wire"
)

// slowSweepBody marshals a sweep big enough to still be running while the
// test interacts with its event stream.
func slowSweepBody(t *testing.T) []byte {
	t.Helper()
	specs := make([]wire.SoC, 64)
	for i := range specs {
		specs[i] = wire.SoC{CPUCores: 4, GPUSMs: 64}
	}
	req := wire.SweepRequest{
		Workload: &wire.Workload{Name: "default"},
		Specs:    specs,
		Solver:   &wire.SolverConfig{Seed: 1, Effort: 10},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// manyFastSweepBody marshals a sweep of many milliseconds-fast points, so a
// subscriber that connects moments after the POST still sees most of them
// complete live.
func manyFastSweepBody(t *testing.T) []byte {
	t.Helper()
	specs := make([]wire.SoC, 64)
	for i := range specs {
		specs[i] = wire.SoC{CPUCores: 1 + i%4, GPUSMs: 8 * (1 + i%8), GPUFrequenciesMHz: []float64{765}}
	}
	req := wire.SweepRequest{
		Workload: &wire.Workload{Apps: []wire.App{{Bench: "LUD"}, {Bench: "HS"}}},
		Specs:    specs,
		Profile:  &wire.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 0, MaxRefinements: 0},
		Solver:   &wire.SolverConfig{Seed: 1, Effort: 0.2},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// startSweep posts a sweep and returns its job handle.
func startSweep(t *testing.T, url string, body []byte) wire.Job {
	t.Helper()
	resp, out := post(t, url+"/v1/sweep", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, out)
	}
	var j wire.Job
	if err := json.Unmarshal(out, &j); err != nil {
		t.Fatal(err)
	}
	if j.EventsURL == "" {
		t.Fatalf("job handle lacks eventsUrl: %+v", j)
	}
	return j
}

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	Event string
	Data  obs.BusEvent
}

// readSSE consumes SSE frames from body until the stream ends, the limit is
// reached, or stop returns true for a frame.
func readSSE(t *testing.T, body *bufio.Scanner, limit int, stop func(sseFrame) bool) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if cur.Event != "" {
				frames = append(frames, cur)
				if stop != nil && stop(cur) {
					return frames
				}
				if limit > 0 && len(frames) >= limit {
					return frames
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Data); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
		}
	}
	return frames
}

func TestJobEventsStream(t *testing.T) {
	leakcheck.VerifyNoLeaks(t)
	// The bus is a live feed, not a log: a fast sweep could finish points
	// before the client subscribes. A single worker grinding through 64 fast
	// points guarantees live completions arrive after the subscription; the
	// test stops at the first one instead of waiting out the whole sweep.
	_, ts := newTestServer(t, Config{Workers: 1})
	j := startSweep(t, ts.URL, manyFastSweepBody(t))

	resp, err := http.Get(ts.URL + j.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}

	frames := readSSE(t, bufio.NewScanner(resp.Body), 0, func(f sseFrame) bool {
		return f.Event == "point" || (f.Event == "job" && terminalJobStatus(f.Data.Status))
	})
	if len(frames) == 0 {
		t.Fatal("no SSE frames before stream end")
	}
	if frames[0].Event != "job" {
		t.Errorf("first frame %q, want the job snapshot", frames[0].Event)
	}
	last := frames[len(frames)-1]
	if last.Event != "point" {
		t.Fatalf("stream ended with %q (status %q) before any live point event", last.Event, last.Data.Status)
	}
	if last.Data.Req != j.RequestID && !strings.HasPrefix(last.Data.Req, j.RequestID+"/") {
		t.Errorf("point event req %q not derived from job request %q", last.Data.Req, j.RequestID)
	}
	if last.Data.Total != j.Total {
		t.Errorf("point event total=%d, want %d", last.Data.Total, j.Total)
	}
	if last.Data.Seq == 0 {
		t.Error("live point event lacks a bus sequence number")
	}
}

func TestJobEventsTerminalJobClosesImmediately(t *testing.T) {
	leakcheck.VerifyNoLeaks(t)
	s, ts := newTestServer(t, Config{})
	j := startSweep(t, ts.URL, sweepBody(t))

	// Wait for the job to finish, then subscribe: the stream must serve the
	// snapshot and end without waiting for events that will never come.
	waitJobTerminal(t, s, j.ID)
	resp, err := http.Get(ts.URL + j.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readSSE(t, bufio.NewScanner(resp.Body), 0, nil)
	if len(frames) != 1 || frames[0].Event != "job" || frames[0].Data.Status != "done" {
		t.Fatalf("frames %+v, want exactly the terminal snapshot", frames)
	}
}

// waitJobTerminal polls the job registry until the job leaves "running".
func waitJobTerminal(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s.jobMu.Lock()
		j := s.jobs[id]
		s.jobMu.Unlock()
		if j.snapshot().Status != "running" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s still running after 30s", id)
}

// waitSubscribers polls the bus until it has want subscribers.
func waitSubscribers(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.obs.Bus.SubscriberCount() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("bus has %d subscribers after 5s, want %d", s.obs.Bus.SubscriberCount(), want)
}

func TestJobEventsClientDisconnectReleasesSubscription(t *testing.T) {
	leakcheck.VerifyNoLeaks(t)
	s, ts := newTestServer(t, Config{Workers: 2})
	j := startSweep(t, ts.URL, slowSweepBody(t))

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+j.EventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitSubscribers(t, s, 1)

	// Dropping the client must release the handler's bus subscription.
	cancel()
	waitSubscribers(t, s, 0)
}

func TestJobEventsDrainReleasesSubscription(t *testing.T) {
	leakcheck.VerifyNoLeaks(t)
	s, ts := newTestServer(t, Config{Workers: 2})
	j := startSweep(t, ts.URL, slowSweepBody(t))

	resp, err := http.Get(ts.URL + j.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitSubscribers(t, s, 1)

	// Draining must end the stream server-side even though the client is
	// still reading — this is what lets http.Server.Shutdown complete.
	s.Drain()
	waitSubscribers(t, s, 0)
	if _, err := resp.Body.Read(make([]byte, 1)); err == nil {
		// Consume to EOF; the stream must terminate promptly.
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 4096)
			for {
				if _, err := resp.Body.Read(buf); err != nil {
					return
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("stream still open 5s after Drain")
		}
	}
}

func TestJobEventsNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestJobEventsIgnoresOtherJobs(t *testing.T) {
	leakcheck.VerifyNoLeaks(t)
	_, ts := newTestServer(t, Config{})
	// Job A finishes while we stream job B: no frame of B's stream may carry
	// A's request lineage.
	jA := startSweep(t, ts.URL, sweepBody(t))
	jB := startSweep(t, ts.URL, sweepBody(t))

	resp, err := http.Get(ts.URL + jB.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readSSE(t, bufio.NewScanner(resp.Body), 0, func(f sseFrame) bool {
		return f.Event == "job" && terminalJobStatus(f.Data.Status)
	})
	for _, f := range frames {
		if f.Data.Job != "" && f.Data.Job != jB.ID {
			t.Errorf("frame for job %q leaked into job %q stream", f.Data.Job, jB.ID)
		}
		if f.Data.Req != "" && (f.Data.Req == jA.RequestID || strings.HasPrefix(f.Data.Req, jA.RequestID+"/")) {
			t.Errorf("frame with req %q (job A lineage) leaked into job B stream", f.Data.Req)
		}
	}
}

func TestSSEFrameFormat(t *testing.T) {
	rec := newRecorder()
	writeSSE(rec, 7, obs.BusEvent{Seq: 7, Kind: "point", Name: "soc", Req: "r1/p0", Value: 2.5})
	got := rec.buf.String()
	if !strings.HasPrefix(got, "id: 7\nevent: point\ndata: {") {
		t.Errorf("frame prefix wrong:\n%s", got)
	}
	if !strings.HasSuffix(got, "}\n\n") {
		t.Errorf("frame must end with a blank line:\n%s", got)
	}
	if strings.Count(got, "\n") != 4 {
		t.Errorf("frame has %d newlines, want 4:\n%s", strings.Count(got, "\n"), got)
	}
}

// recorder is a minimal ResponseWriter for frame-format tests.
type recorder struct {
	buf    bytes.Buffer
	header http.Header
}

func newRecorder() *recorder                    { return &recorder{header: http.Header{}} }
func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) Write(p []byte) (int, error) { return r.buf.Write(p) }
func (r *recorder) WriteHeader(int)             {}
