package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"hilp"
	"hilp/internal/faults"
	"hilp/internal/obs"
	"hilp/internal/soc"
	"hilp/internal/wire"
)

// handleBatch serves POST /v1/batch: a synchronous batched solve over a list
// of specs (or an enumerated space) through the sweep engine — canonical-
// model memoization and neighbor warm starts on by default, certified
// dominance pruning opt-in. Unlike /v1/sweep it answers in one round trip
// and its response is LRU-cached like /v1/evaluate; unlike the engine-less
// handlers it admits the whole batch on one pool token and fans out
// internally across Config.Workers goroutines.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter(obs.MServeRequests).Inc()
	inFlight := s.obs.Gauge(obs.MServeInFlight)
	inFlight.Add(1)
	defer inFlight.Add(-1)
	start := time.Now()
	defer func() {
		s.obs.Histogram(obs.MServeRequestSec).ObserveEx(time.Since(start).Seconds(), obs.RequestID(r.Context()))
	}()
	st := obs.StageTimerFrom(r.Context())

	stopValidate := st.Start(obs.StageValidate)
	var req wire.BatchRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		stopValidate()
		s.writeAPIError(r.Context(), w, apiErr)
		return
	}
	if err := wire.CheckVersion(req.SchemaVersion); err != nil {
		stopValidate()
		s.writeError(r.Context(), w, http.StatusBadRequest, "version", err)
		return
	}
	var ww wire.Workload
	if req.Workload != nil {
		ww = *req.Workload
	}
	workload, err := ww.ToWorkload()
	if err != nil {
		stopValidate()
		s.writeAPIError(r.Context(), w, solveErr(err))
		return
	}
	specs := make([]soc.Spec, 0, len(req.Specs))
	for _, sp := range req.Specs {
		specs = append(specs, sp.ToSpec())
	}
	if len(specs) == 0 {
		var space wire.Space
		if req.Space != nil {
			space = *req.Space
		}
		specs = soc.DesignSpace(workload, space.ToSpaceConfig())
	}
	stopValidate()

	stopCache := st.Start(obs.StageCacheLookup)
	canonical, err := json.Marshal(req)
	if err != nil {
		stopCache()
		s.writeError(r.Context(), w, http.StatusBadRequest, "bad_request", err)
		return
	}
	key := cacheKey(canonical)
	sum := summaryFrom(r.Context())
	if body, ok := s.cache.get(key); ok {
		stopCache()
		s.obs.Counter(obs.MServeCacheHits).Inc()
		if sum != nil {
			sum.Cache = "hit"
		}
		w.Header().Set("X-HILP-Cache", "hit")
		s.writeJSON(r.Context(), w, http.StatusOK, body)
		return
	}
	stopCache()
	s.obs.Counter(obs.MServeCacheMisses).Inc()
	if sum != nil {
		sum.Cache = "miss"
	}

	// The batch holds one pool token for its whole duration; the engine fans
	// out across Config.Workers internally, so total solve concurrency stays
	// bounded by the pool either way.
	stopSchedule := st.Start(obs.StageSchedule)
	if err := s.acquire(r.Context()); err != nil {
		stopSchedule()
		if errors.Is(err, errBusy) {
			s.obs.Counter(obs.MServeRejected).Inc()
			s.writeError(r.Context(), w, http.StatusTooManyRequests, "busy", err)
		} else {
			s.writeError(r.Context(), w, http.StatusServiceUnavailable, "busy", err)
		}
		return
	}
	stopSchedule()
	defer s.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.solveTimeout(req.TimeoutSec))
	defer cancel()
	ctx = faults.WithKey(faults.NewContext(ctx, s.cfg.Faults), s.reqSeq.Add(1))

	opts := []hilp.Option{
		hilp.WithObs(s.obs),
		hilp.WithWorkers(s.cfg.Workers),
	}
	if req.Profile != nil {
		opts = append(opts, hilp.WithProfile(req.Profile.ToProfile()))
	}
	if req.Solver != nil {
		opts = append(opts, hilp.WithSolver(req.Solver.ToConfig()))
	}
	if req.Cache != nil {
		opts = append(opts, hilp.WithCache(*req.Cache))
	}
	if req.WarmStart != nil {
		opts = append(opts, hilp.WithWarmStart(*req.WarmStart))
	}
	if req.Pruning {
		opts = append(opts, hilp.WithPruning(true))
	}

	stopSolve := st.Start(obs.StageSolve)
	res, err := hilp.SolveBatch(ctx, workload, specs, opts...)
	stopSolve()
	if err != nil {
		s.writeAPIError(r.Context(), w, solveErr(err))
		return
	}
	cancelled := false
	cacheable := true
	for _, p := range res.Points {
		if p.Cancelled {
			cancelled = true
		}
		if p.Err != nil || p.Cancelled || p.Degraded {
			cacheable = false
		}
	}
	if cancelled {
		s.obs.Counter(obs.MServeDeadlines).Inc()
	}
	if sum != nil {
		sum.Solver = "batch"
		sum.Cancelled = cancelled
	}

	stopEncode := st.Start(obs.StageEncode)
	defer stopEncode()
	resp := wire.BatchResponse{
		SchemaVersion: wire.SchemaVersion,
		Stats: wire.BatchStats{
			Points:      res.Stats.Points,
			Solved:      res.Stats.Solved,
			CacheHits:   res.Stats.CacheHits,
			WarmStarted: res.Stats.WarmStarted,
			Pruned:      res.Stats.Pruned,
		},
	}
	resp.Points, resp.Pareto = wirePoints(res.Points)
	body, err := wire.Marshal(resp)
	if err != nil {
		s.writeError(r.Context(), w, http.StatusInternalServerError, "", err)
		return
	}
	// Like /v1/evaluate: never replay deadline-shaped or degraded results to
	// later callers.
	if cacheable {
		s.cache.put(key, body)
	}
	w.Header().Set("X-HILP-Cache", "miss")
	s.writeJSON(r.Context(), w, http.StatusOK, body)
}
