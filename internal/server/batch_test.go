package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"hilp/internal/wire"
)

// batchBody builds a small POST /v1/batch request: a 2-app workload over
// explicit specs including one canonical duplicate, coarse profile so the
// whole batch solves in milliseconds.
func batchBody(t *testing.T, mutate func(*wire.BatchRequest)) []byte {
	t.Helper()
	req := wire.BatchRequest{
		Workload: &wire.Workload{Apps: []wire.App{{Bench: "LUD"}, {Bench: "HS"}}},
		Specs: []wire.SoC{
			{CPUCores: 1},
			{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
			{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}, // duplicate
		},
		Profile: &wire.Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 0, MaxRefinements: 0},
		Solver:  &wire.SolverConfig{Seed: 1, Effort: 0.2},
	}
	if mutate != nil {
		mutate(&req)
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestBatchHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := post(t, ts.URL+"/v1/batch", batchBody(t, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out wire.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.SchemaVersion != wire.SchemaVersion {
		t.Errorf("schemaVersion %d, want %d", out.SchemaVersion, wire.SchemaVersion)
	}
	if len(out.Points) != 3 {
		t.Fatalf("%d points, want 3", len(out.Points))
	}
	// Cache and warm starts default to on: the duplicate spec must be a
	// replayed hit, and the stats must partition the batch.
	if s := out.Stats; s.Points != 3 || s.CacheHits != 1 || s.Solved != 2 {
		t.Errorf("stats = %+v, want 3 points / 2 solved / 1 cache hit", s)
	}
	if !out.Points[2].CacheHit {
		t.Error("duplicate spec not marked cacheHit")
	}
	if out.Points[2].Speedup != out.Points[1].Speedup {
		t.Error("cache hit metrics differ from the owner point")
	}
	for _, p := range out.Points {
		if p.Error != "" || p.Cancelled {
			t.Errorf("%s: error=%q cancelled=%v", p.Label, p.Error, p.Cancelled)
		}
	}
	if len(out.Pareto) == 0 {
		t.Error("response lacks Pareto indices")
	}
}

func TestBatchCacheReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := batchBody(t, nil)

	resp1, out1 := post(t, ts.URL+"/v1/batch", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first: status %d: %s", resp1.StatusCode, out1)
	}
	if got := resp1.Header.Get("X-HILP-Cache"); got != "miss" {
		t.Errorf("first X-HILP-Cache = %q, want miss", got)
	}
	resp2, out2 := post(t, ts.URL+"/v1/batch", body)
	if got := resp2.Header.Get("X-HILP-Cache"); got != "hit" {
		t.Errorf("second X-HILP-Cache = %q, want hit", got)
	}
	if !bytes.Equal(out1, out2) {
		t.Error("replayed batch response not byte-identical")
	}
}

func TestBatchEngineOptOut(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	off := false
	resp, body := post(t, ts.URL+"/v1/batch", batchBody(t, func(r *wire.BatchRequest) {
		r.Cache = &off
		r.WarmStart = &off
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out wire.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if s := out.Stats; s.CacheHits != 0 || s.WarmStarted != 0 || s.Solved != 3 {
		t.Errorf("opted-out batch still used the engine: %+v", s)
	}
}

func TestBatchPruningOptIn(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// The dominance ladder from the engine tests: a cheap high-speedup
	// certifier, a fully-populated DSA rung, and its dominated sub-rung.
	resp, body := post(t, ts.URL+"/v1/batch", batchBody(t, func(r *wire.BatchRequest) {
		r.Workload = &wire.Workload{Name: "default"}
		r.Specs = []wire.SoC{
			{CPUCores: 1, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}},
			{CPUCores: 2, DSAs: []wire.DSA{{PEs: 16, Target: "BFS"}, {PEs: 16, Target: "HW"}}},
			{CPUCores: 2, DSAs: []wire.DSA{{PEs: 16, Target: "BFS"}}},
		}
		r.Profile = nil // hilp's default DSE profile, needed for tight gaps
		r.Solver = &wire.SolverConfig{Seed: 1, Effort: 0.25, Restarts: 1}
		r.Pruning = true
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out wire.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Stats.Pruned != 1 {
		t.Fatalf("stats = %+v, want exactly 1 pruned point", out.Stats)
	}
	var pruned *wire.Point
	for i := range out.Points {
		if out.Points[i].Pruned {
			pruned = &out.Points[i]
		}
	}
	if pruned == nil {
		t.Fatal("no point marked pruned")
	}
	if pruned.PrunedBy == "" || pruned.SpeedupBound <= 1 {
		t.Errorf("pruned point lacks its certificate: %+v", pruned)
	}
	for _, idx := range out.Pareto {
		if out.Points[idx].Pruned {
			t.Error("pruned point entered the Pareto front")
		}
	}
}

func TestBatchVersionCheck(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := post(t, ts.URL+"/v1/batch", batchBody(t, func(r *wire.BatchRequest) {
		r.SchemaVersion = wire.SchemaVersion + 1
	}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
}

func TestBatchBadBody(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := post(t, ts.URL+"/v1/batch", []byte(`{"workload": {"apps": [{"bench": "NOPE"}]}}`))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown bench: status %d, want 422: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/batch", []byte(`not json`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400: %s", resp.StatusCode, body)
	}
}
