// Package milp implements a small, self-contained mixed-integer linear
// programming solver: a dense two-phase primal simplex for linear relaxations
// and a best-bound branch-and-bound search for integer variables.
//
// The package exists because HILP's JSSP formulation is an integer linear
// program and no maintained ILP solver bindings exist for Go; it plays the
// role MiniZinc + OR-Tools play in the original paper. It is tuned for the
// moderately sized time-indexed scheduling encodings produced by package
// timeindexed rather than for industrial-scale LPs.
package milp

import (
	"fmt"
	"math"
)

// Sense describes the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // left-hand side <= RHS
	GE              // left-hand side >= RHS
	EQ              // left-hand side == RHS
)

// String returns the conventional symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Variable is a decision variable with bounds, an objective coefficient, and
// an optional integrality requirement.
type Variable struct {
	Name    string
	Lower   float64 // lower bound; may be 0 for the common case
	Upper   float64 // upper bound; math.Inf(1) when unbounded above
	Obj     float64 // objective coefficient
	Integer bool    // true if the variable must take an integer value
}

// Constraint is a sparse linear constraint sum_j Coefs[j]*x_j (Sense) RHS.
type Constraint struct {
	Name  string
	Coefs map[int]float64
	Sense Sense
	RHS   float64
}

// Problem is a linear program, possibly with integer variables. The objective
// is minimized unless Maximize is set.
type Problem struct {
	Vars     []Variable
	Cons     []Constraint
	Maximize bool
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem {
	return &Problem{}
}

// AddVariable appends a continuous variable and returns its index.
func (p *Problem) AddVariable(name string, lower, upper, obj float64) int {
	p.Vars = append(p.Vars, Variable{Name: name, Lower: lower, Upper: upper, Obj: obj})
	return len(p.Vars) - 1
}

// AddBinary appends a 0/1 integer variable and returns its index.
func (p *Problem) AddBinary(name string, obj float64) int {
	p.Vars = append(p.Vars, Variable{Name: name, Lower: 0, Upper: 1, Obj: obj, Integer: true})
	return len(p.Vars) - 1
}

// AddInteger appends a bounded integer variable and returns its index.
func (p *Problem) AddInteger(name string, lower, upper, obj float64) int {
	p.Vars = append(p.Vars, Variable{Name: name, Lower: lower, Upper: upper, Obj: obj, Integer: true})
	return len(p.Vars) - 1
}

// AddConstraint appends a constraint built from the given sparse row. The
// coefficient map is copied so callers may reuse their map.
func (p *Problem) AddConstraint(name string, coefs map[int]float64, sense Sense, rhs float64) {
	row := make(map[int]float64, len(coefs))
	for j, v := range coefs {
		if v != 0 {
			row[j] = v
		}
	}
	p.Cons = append(p.Cons, Constraint{Name: name, Coefs: row, Sense: sense, RHS: rhs})
}

// Validate reports structural problems: out-of-range variable indices in
// constraints, inverted bounds, or NaN coefficients.
func (p *Problem) Validate() error {
	for i, v := range p.Vars {
		if math.IsNaN(v.Lower) || math.IsNaN(v.Upper) || math.IsNaN(v.Obj) {
			return fmt.Errorf("milp: variable %d (%s) has NaN bound or objective", i, v.Name)
		}
		if v.Lower > v.Upper {
			return fmt.Errorf("milp: variable %d (%s) has lower bound %g > upper bound %g", i, v.Name, v.Lower, v.Upper)
		}
	}
	for i, c := range p.Cons {
		if math.IsNaN(c.RHS) {
			return fmt.Errorf("milp: constraint %d (%s) has NaN RHS", i, c.Name)
		}
		for j, v := range c.Coefs {
			if j < 0 || j >= len(p.Vars) {
				return fmt.Errorf("milp: constraint %d (%s) references variable %d, have %d variables", i, c.Name, j, len(p.Vars))
			}
			if math.IsNaN(v) {
				return fmt.Errorf("milp: constraint %d (%s) has NaN coefficient for variable %d", i, c.Name, j)
			}
		}
	}
	return nil
}

// CheckFeasible verifies that x satisfies every bound, constraint, and
// integrality requirement of p within tol. It returns nil when x is a
// feasible solution.
func (p *Problem) CheckFeasible(x []float64, tol float64) error {
	if len(x) != len(p.Vars) {
		return fmt.Errorf("milp: solution has %d values, want %d", len(x), len(p.Vars))
	}
	for j, v := range p.Vars {
		if x[j] < v.Lower-tol || x[j] > v.Upper+tol {
			return fmt.Errorf("milp: variable %d (%s) = %g outside [%g, %g]", j, v.Name, x[j], v.Lower, v.Upper)
		}
		if v.Integer {
			if r := math.Round(x[j]); math.Abs(x[j]-r) > tol {
				return fmt.Errorf("milp: variable %d (%s) = %g not integral", j, v.Name, x[j])
			}
		}
	}
	for i, c := range p.Cons {
		lhs := 0.0
		for j, a := range c.Coefs {
			lhs += a * x[j]
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+tol {
				return fmt.Errorf("milp: constraint %d (%s) violated: %g > %g", i, c.Name, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-tol {
				return fmt.Errorf("milp: constraint %d (%s) violated: %g < %g", i, c.Name, lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > tol {
				return fmt.Errorf("milp: constraint %d (%s) violated: %g != %g", i, c.Name, lhs, c.RHS)
			}
		}
	}
	return nil
}

// ObjectiveValue returns c*x for the problem's objective coefficients.
func (p *Problem) ObjectiveValue(x []float64) float64 {
	obj := 0.0
	for j, v := range p.Vars {
		obj += v.Obj * x[j]
	}
	return obj
}

// NumIntegers reports how many variables are integer-constrained.
func (p *Problem) NumIntegers() int {
	n := 0
	for _, v := range p.Vars {
		if v.Integer {
			n++
		}
	}
	return n
}

// Status describes the outcome of a solve.
type Status int

// Solve statuses.
const (
	// Optimal means an optimal solution was found (for MILP: proven optimal
	// within the configured gap tolerance).
	Optimal Status = iota
	// Feasible means an integer-feasible solution was found but optimality
	// was not proven within the node or time budget.
	Feasible
	// Infeasible means the problem has no feasible solution.
	Infeasible
	// Unbounded means the objective is unbounded in the optimization
	// direction.
	Unbounded
	// LimitReached means the search budget was exhausted before any feasible
	// solution was found.
	LimitReached
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case LimitReached:
		return "limit-reached"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of an LP or MILP solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid when Status is Optimal or Feasible)
	Objective float64   // objective value of X
	Bound     float64   // proven bound on the optimum (<= Objective when minimizing)
	Nodes     int       // branch-and-bound nodes explored (0 for pure LP)
	Iters     int       // total simplex iterations
}

// Gap returns the relative optimality gap |Objective-Bound| / max(1,|Objective|).
func (s Solution) Gap() float64 {
	if s.Status != Optimal && s.Status != Feasible {
		return math.Inf(1)
	}
	denom := math.Max(1, math.Abs(s.Objective))
	return math.Abs(s.Objective-s.Bound) / denom
}
