package milp

import (
	"context"
	"testing"
)

func TestCheckFeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddBinary("x", 1)
	y := p.AddVariable("y", 0, 5, 2)
	p.AddConstraint("c1", map[int]float64{x: 1, y: 1}, LE, 4)
	p.AddConstraint("c2", map[int]float64{y: 1}, GE, 1)
	p.AddConstraint("c3", map[int]float64{x: 2, y: 1}, EQ, 3)

	if err := p.CheckFeasible([]float64{1, 1}, 1e-6); err != nil {
		t.Errorf("feasible point rejected: %v", err)
	}
	if err := p.CheckFeasible([]float64{0.5, 2}, 1e-6); err == nil {
		t.Error("fractional binary accepted")
	}
	if err := p.CheckFeasible([]float64{1, 6}, 1e-6); err == nil {
		t.Error("bound violation accepted")
	}
	if err := p.CheckFeasible([]float64{0, 0.5}, 1e-6); err == nil {
		t.Error("GE violation accepted")
	}
	if err := p.CheckFeasible([]float64{1}, 1e-6); err == nil {
		t.Error("short vector accepted")
	}
	if err := p.CheckFeasible([]float64{1, 2}, 1e-6); err == nil {
		t.Error("EQ violation accepted")
	}
}

func TestObjectiveValue(t *testing.T) {
	p := NewProblem()
	p.AddVariable("a", 0, 10, 3)
	p.AddVariable("b", 0, 10, -1)
	if got := p.ObjectiveValue([]float64{2, 4}); got != 2 {
		t.Errorf("ObjectiveValue = %g, want 2", got)
	}
}

func TestWarmStartPrimesSearch(t *testing.T) {
	// A knapsack where the warm start is already optimal: the search should
	// confirm it and report Optimal with the same objective.
	p := NewProblem()
	p.Maximize = true
	a := p.AddBinary("a", 10)
	b := p.AddBinary("b", 13)
	c := p.AddBinary("c", 7)
	p.AddConstraint("w", map[int]float64{a: 3, b: 4, c: 2}, LE, 6)

	warm := []float64{0, 1, 1} // value 20, the optimum
	sol, err := Solve(context.Background(), p, Options{WarmStart: warm})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEqual(sol.Objective, 20, 1e-6) {
		t.Fatalf("got %v obj=%g, want optimal 20", sol.Status, sol.Objective)
	}
}

func TestWarmStartInfeasibleIgnored(t *testing.T) {
	p := NewProblem()
	p.Maximize = true
	a := p.AddBinary("a", 5)
	p.AddConstraint("c", map[int]float64{a: 1}, LE, 1)

	// Warm start violates the bound; it must be ignored, not crash.
	sol, err := Solve(context.Background(), p, Options{WarmStart: []float64{7}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEqual(sol.Objective, 5, 1e-6) {
		t.Fatalf("got %v obj=%g, want optimal 5", sol.Status, sol.Objective)
	}
}
