package milp

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSolveMILPKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binaries.
	// Best: a + c (weight 5, value 17) vs b + c (weight 6, value 20). -> 20.
	p := NewProblem()
	p.Maximize = true
	a := p.AddBinary("a", 10)
	b := p.AddBinary("b", 13)
	c := p.AddBinary("c", 7)
	p.AddConstraint("w", map[int]float64{a: 3, b: 4, c: 2}, LE, 6)

	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEqual(sol.Objective, 20, 1e-6) {
		t.Errorf("objective = %g, want 20", sol.Objective)
	}
	if !almostEqual(sol.X[b], 1, 1e-6) || !almostEqual(sol.X[c], 1, 1e-6) || !almostEqual(sol.X[a], 0, 1e-6) {
		t.Errorf("x = %v, want [0 1 1]", sol.X)
	}
}

func TestSolveMILPIntegerRounding(t *testing.T) {
	// max x s.t. 2x <= 7, x integer -> 3 (LP gives 3.5).
	p := NewProblem()
	p.Maximize = true
	x := p.AddInteger("x", 0, 100, 1)
	p.AddConstraint("c", map[int]float64{x: 2}, LE, 7)

	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEqual(sol.Objective, 3, 1e-6) {
		t.Fatalf("got %v obj=%g, want optimal 3", sol.Status, sol.Objective)
	}
}

func TestSolveMILPInfeasible(t *testing.T) {
	// x + y == 1.5 with x, y binary has an LP solution but no integer one...
	// actually (1, 0.5) etc. Use x + y == 1.5 with both integer.
	p := NewProblem()
	x := p.AddBinary("x", 1)
	y := p.AddBinary("y", 1)
	p.AddConstraint("half", map[int]float64{x: 1, y: 1}, EQ, 1.5)

	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveMILPEqualityPartition(t *testing.T) {
	// Choose exactly one of three options, minimize cost.
	p := NewProblem()
	a := p.AddBinary("a", 5)
	b := p.AddBinary("b", 3)
	c := p.AddBinary("c", 9)
	p.AddConstraint("one", map[int]float64{a: 1, b: 1, c: 1}, EQ, 1)

	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEqual(sol.Objective, 3, 1e-6) || !almostEqual(sol.X[b], 1, 1e-6) {
		t.Fatalf("got %v obj=%g x=%v, want b chosen at cost 3", sol.Status, sol.Objective, sol.X)
	}
}

func TestSolveMILPGapToleranceStopsEarly(t *testing.T) {
	// A small set-cover-like MILP; with a loose gap tolerance the solver may
	// stop early but must still report a bound consistent with the tolerance.
	p := NewProblem()
	n := 8
	vars := make([]int, n)
	for i := 0; i < n; i++ {
		vars[i] = p.AddBinary("x", float64(1+i%3))
	}
	row := map[int]float64{}
	for i := 0; i < n; i++ {
		row[vars[i]] = float64(1 + (i*7)%5)
	}
	p.AddConstraint("cover", row, GE, 11)

	sol, err := Solve(context.Background(), p, Options{GapTolerance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal && sol.Status != Feasible {
		t.Fatalf("status = %v, want a solution", sol.Status)
	}
	if sol.Gap() > 0.5+1e-9 {
		t.Errorf("gap = %g, want <= 0.5", sol.Gap())
	}
	if sol.Bound > sol.Objective+1e-9 {
		t.Errorf("bound %g exceeds objective %g for minimization", sol.Bound, sol.Objective)
	}
}

func TestSolveMILPTimeLimit(t *testing.T) {
	p := NewProblem()
	p.Maximize = true
	// A knapsack big enough to take at least a few nodes.
	n := 14
	row := map[int]float64{}
	for i := 0; i < n; i++ {
		v := p.AddBinary("x", float64(3+(i*5)%7))
		row[v] = float64(2 + (i*3)%5)
	}
	p.AddConstraint("w", row, LE, 11)

	sol, err := Solve(context.Background(), p, Options{TimeLimit: time.Millisecond * 500})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == Infeasible || sol.Status == Unbounded {
		t.Fatalf("unexpected status %v", sol.Status)
	}
}

func TestSolvePureLPPassThrough(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 5, 1)
	p.AddConstraint("c", map[int]float64{x: 1}, GE, 2)
	sol, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEqual(sol.Objective, 2, 1e-6) {
		t.Fatalf("got %v obj=%g, want optimal 2", sol.Status, sol.Objective)
	}
}

// TestMILPKnapsackMatchesBruteForce cross-checks branch and bound against
// exhaustive enumeration on random small knapsacks.
func TestMILPKnapsackMatchesBruteForce(t *testing.T) {
	f := func(seed uint16) bool {
		rng := int(seed)
		next := func(mod int) int {
			rng = (rng*1103515245 + 12345) & 0x7fffffff
			return rng % mod
		}
		n := 3 + next(5)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = float64(1 + next(20))
			weights[i] = float64(1 + next(10))
		}
		capacity := float64(5 + next(20))

		p := NewProblem()
		p.Maximize = true
		row := map[int]float64{}
		for i := 0; i < n; i++ {
			v := p.AddBinary("x", values[i])
			row[v] = weights[i]
		}
		p.AddConstraint("w", row, LE, capacity)

		sol, err := Solve(context.Background(), p, Options{})
		if err != nil || sol.Status != Optimal {
			return false
		}

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					v += values[i]
				}
			}
			if w <= capacity && v > best {
				best = v
			}
		}
		return math.Abs(sol.Objective-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
