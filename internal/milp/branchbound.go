package milp

import (
	"container/heap"
	"context"
	"errors"
	"math"
	"time"

	"hilp/internal/obs"
)

// Options configures a branch-and-bound solve.
type Options struct {
	// MaxNodes bounds the number of explored nodes; 0 means the default.
	MaxNodes int
	// TimeLimit bounds wall-clock time; 0 means no limit. A ctx deadline
	// passed to Solve composes with it: the earlier of the two wins, and the
	// budget is enforced inside LP node solves (per pivot batch), not only
	// between nodes.
	TimeLimit time.Duration
	// GapTolerance stops the search once the relative gap between incumbent
	// and best bound drops below it. 0 means prove optimality (up to the
	// integrality tolerance).
	GapTolerance float64
	// IntTol is the integrality tolerance; values within IntTol of an
	// integer count as integral. 0 means the default of 1e-6.
	IntTol float64
	// WarmStart primes the search with a known feasible solution (e.g. one
	// found by the CP scheduler). Infeasible warm starts are ignored.
	WarmStart []float64
	// Obs carries optional tracing/metrics sinks; nil disables them.
	Obs *obs.Context
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// errStopped aborts LP node solves when the solve budget (ctx deadline or
// TimeLimit) expires mid-node; branch and bound converts it into a
// LimitReached/Feasible outcome rather than surfacing it as an error.
var errStopped = errors.New("milp: time budget exhausted")

// Solve solves the mixed-integer problem p with branch and bound over the LP
// relaxation. It returns the incumbent (if any) and the proven bound.
//
// Solve honors ctx: cancellation or a ctx deadline stops the search like an
// expired TimeLimit would, returning the incumbent found so far (Status
// Feasible or LimitReached) with the proven bound — work is never discarded.
// The budget is checked between nodes and, via a stop hook threaded into the
// simplex, every few hundred pivots inside a node, so a pathological LP
// relaxation cannot blow past the deadline.
func Solve(ctx context.Context, p *Problem, opts Options) (Solution, error) {
	opts = opts.withDefaults()
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}

	// The effective deadline is the earlier of the ctx deadline and
	// TimeLimit from now, expressed purely through the context so this
	// package never reads the wall clock itself; stop() is threaded through
	// every LP solve.
	if opts.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.TimeLimit)
		defer cancel()
	}
	stop := func() bool {
		// Callers amortize this over a pivot batch, so polling ctx directly
		// is cheap enough.
		return ctx.Err() != nil
	}

	octx := opts.Obs
	if p.NumIntegers() == 0 {
		sol, err := solveLPStop(p, stop)
		if err == nil {
			octx.Counter(obs.MSimplexPivots).Add(int64(sol.Iters))
		}
		if errors.Is(err, errStopped) {
			return Solution{Status: LimitReached, Bound: math.Inf(lpBoundSign(p))}, nil
		}
		return sol, err
	}

	baseLower := make([]float64, len(p.Vars))
	baseUpper := make([]float64, len(p.Vars))
	for i, v := range p.Vars {
		baseLower[i] = v.Lower
		baseUpper[i] = v.Upper
	}

	root, err := solveLPWithBounds(p, baseLower, baseUpper, stop)
	if errors.Is(err, errStopped) {
		// Budget gone before the root relaxation finished: nothing proven.
		return Solution{Status: LimitReached, Bound: math.Inf(lpBoundSign(p))}, nil
	}
	if err != nil {
		return Solution{}, err
	}
	totalIters := root.Iters
	var nodes, pruned int
	sp := octx.StartSpan("milp-bb").ArgInt("vars", len(p.Vars)).ArgInt("integers", p.NumIntegers())
	rt := octx.Record("milp-bb")
	defer rt.End()
	defer func() {
		octx.Counter(obs.MSimplexPivots).Add(int64(totalIters))
		octx.Counter(obs.MBBNodes).Add(int64(nodes))
		octx.Counter(obs.MBBPruned).Add(int64(pruned))
		sp.ArgInt("nodes", nodes).ArgInt("pruned", pruned).ArgInt("pivots", totalIters)
		sp.End()
	}()
	switch root.Status {
	case Infeasible:
		return Solution{Status: Infeasible, Bound: math.Inf(1)}, nil
	case Unbounded:
		return Solution{Status: Unbounded, Bound: math.Inf(-1)}, nil
	}

	// Internally we treat the problem as minimization: LP objectives are
	// compared with sign flipped for maximization problems.
	key := func(obj float64) float64 {
		if p.Maximize {
			return -obj
		}
		return obj
	}

	var (
		incumbent    []float64
		incumbentObj = math.Inf(1) // in minimization key space
	)
	if opts.WarmStart != nil {
		if err := p.CheckFeasible(opts.WarmStart, 10*opts.IntTol); err == nil {
			incumbent = roundIntegers(p, opts.WarmStart, opts.IntTol)
			incumbentObj = key(p.ObjectiveValue(incumbent))
			rt.Incumbent(0, p.ObjectiveValue(incumbent))
		}
	}

	pq := &nodeQueue{}
	heap.Init(pq)
	heap.Push(pq, &bbNode{lower: baseLower, upper: baseUpper, bound: key(root.Objective), lp: root})

	fractional := func(x []float64) int {
		best, bestFrac := -1, opts.IntTol
		for j, v := range p.Vars {
			if !v.Integer {
				continue
			}
			f := math.Abs(x[j] - math.Round(x[j]))
			// Most-fractional branching: prefer values near 0.5.
			score := math.Min(f, 1-f)
			if f > opts.IntTol && score > bestFrac {
				bestFrac = score
				best = j
			}
		}
		if best >= 0 {
			return best
		}
		// Fall back to any fractional variable at all.
		for j, v := range p.Vars {
			if !v.Integer {
				continue
			}
			if f := math.Abs(x[j] - math.Round(x[j])); f > opts.IntTol {
				return j
			}
		}
		return -1
	}

	bestBound := key(root.Objective)
	limitHit := false
	// Bound events are recorded in the problem's own objective space (key is
	// its own inverse), throttled to changes of the proven bound.
	rt.Bound(0, root.Objective)
	lastRecBound := bestBound

	for pq.Len() > 0 {
		if nodes >= opts.MaxNodes || stop() {
			limitHit = true
			break
		}
		node := heap.Pop(pq).(*bbNode)
		if node.bound >= incumbentObj-1e-9 {
			pruned++
			continue // dominated
		}
		bestBound = node.bound
		if rt.Active() && bestBound != lastRecBound {
			rt.Bound(nodes, key(bestBound))
			lastRecBound = bestBound
		}
		if !math.IsInf(incumbentObj, 1) && opts.GapTolerance > 0 {
			gap := (incumbentObj - bestBound) / math.Max(1, math.Abs(incumbentObj))
			if gap <= opts.GapTolerance {
				break
			}
		}
		nodes++

		lp := node.lp
		if lp.X == nil {
			sol, err := solveLPWithBounds(p, node.lower, node.upper, stop)
			if errors.Is(err, errStopped) {
				// The popped node's bound was computed when it was pushed and
				// is the heap minimum, so bestBound stays valid.
				limitHit = true
				break
			}
			if err != nil {
				return Solution{}, err
			}
			totalIters += sol.Iters
			if sol.Status != Optimal {
				continue
			}
			if key(sol.Objective) >= incumbentObj-1e-9 {
				continue
			}
			lp = sol
		}

		branch := fractional(lp.X)
		if branch < 0 {
			// Integer feasible.
			if obj := key(lp.Objective); obj < incumbentObj {
				incumbentObj = obj
				incumbent = roundIntegers(p, lp.X, opts.IntTol)
				rt.Incumbent(nodes, lp.Objective)
			}
			continue
		}

		val := lp.X[branch]
		// Down branch: x <= floor(val).
		downUpper := cloneWith(node.upper, branch, math.Floor(val+opts.IntTol))
		if node.lower[branch] <= downUpper[branch]+eps {
			child, err := childNode(p, node.lower, downUpper, key, incumbentObj, &totalIters, stop)
			if errors.Is(err, errStopped) {
				limitHit = true
				break
			}
			if err != nil {
				return Solution{}, err
			}
			if child != nil {
				heap.Push(pq, child)
			} else {
				pruned++
			}
		}
		// Up branch: x >= ceil(val).
		upLower := cloneWith(node.lower, branch, math.Ceil(val-opts.IntTol))
		if upLower[branch] <= node.upper[branch]+eps {
			child, err := childNode(p, upLower, node.upper, key, incumbentObj, &totalIters, stop)
			if errors.Is(err, errStopped) {
				limitHit = true
				break
			}
			if err != nil {
				return Solution{}, err
			}
			if child != nil {
				heap.Push(pq, child)
			} else {
				pruned++
			}
		}
	}

	// The proven bound: the minimum over remaining open nodes and bestBound.
	if pq.Len() > 0 {
		for _, n := range *pq {
			if n.bound < bestBound {
				bestBound = n.bound
			}
		}
	} else if !limitHit && incumbent != nil {
		bestBound = incumbentObj
	}

	unkey := func(v float64) float64 {
		if p.Maximize {
			return -v
		}
		return v
	}

	if incumbent == nil {
		if limitHit {
			return Solution{Status: LimitReached, Bound: unkey(bestBound), Nodes: nodes, Iters: totalIters}, nil
		}
		return Solution{Status: Infeasible, Bound: math.Inf(1), Nodes: nodes, Iters: totalIters}, nil
	}

	obj := unkey(incumbentObj)
	bound := unkey(bestBound)
	status := Optimal
	gap := math.Abs(incumbentObj-bestBound) / math.Max(1, math.Abs(incumbentObj))
	if limitHit && gap > opts.GapTolerance+1e-12 {
		status = Feasible
	}
	rt.Certify(obj, bound, status == Optimal)
	return Solution{Status: status, X: incumbent, Objective: obj, Bound: bound, Nodes: nodes, Iters: totalIters}, nil
}

// lpBoundSign is the sign of the trivial "no information" bound in the
// problem's own objective space: -Inf for minimization, +Inf for
// maximization.
func lpBoundSign(p *Problem) int {
	if p.Maximize {
		return 1
	}
	return -1
}

// childNode solves a child LP eagerly and returns a queue node, or nil if the
// child is infeasible or dominated by the incumbent. A stopped LP solve
// surfaces errStopped so the caller can convert it into a limit outcome.
func childNode(p *Problem, lower, upper []float64, key func(float64) float64, incumbentObj float64, iters *int, stopFn func() bool) (*bbNode, error) {
	sol, err := solveLPWithBounds(p, lower, upper, stopFn)
	if err != nil {
		return nil, err
	}
	*iters += sol.Iters
	if sol.Status != Optimal {
		return nil, nil
	}
	b := key(sol.Objective)
	if b >= incumbentObj-1e-9 {
		return nil, nil
	}
	return &bbNode{lower: lower, upper: upper, bound: b, lp: sol}, nil
}

// roundIntegers snaps near-integral integer variables to exact integers.
func roundIntegers(p *Problem, x []float64, tol float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, v := range p.Vars {
		if v.Integer {
			if r := math.Round(out[j]); math.Abs(out[j]-r) <= 10*tol {
				out[j] = r
			}
		}
	}
	return out
}

func cloneWith(s []float64, idx int, val float64) []float64 {
	out := make([]float64, len(s))
	copy(out, s)
	out[idx] = val
	return out
}

// bbNode is a branch-and-bound subproblem.
type bbNode struct {
	lower, upper []float64
	bound        float64 // LP bound in minimization key space
	lp           Solution
}

// nodeQueue is a min-heap on the LP bound (best-bound-first search).
type nodeQueue []*bbNode

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*bbNode)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}
