package milp

import (
	"errors"
	"testing"
)

// The numerics sentinels form the contract the solve pipeline's retry logic
// keys on: both failure modes must be matchable as ErrNumerics.
func TestNumericsSentinels(t *testing.T) {
	if !errors.Is(ErrIterationLimit, ErrNumerics) {
		t.Error("ErrIterationLimit does not wrap ErrNumerics")
	}
	if !errors.Is(ErrDegenerate, ErrNumerics) {
		t.Error("ErrDegenerate does not wrap ErrNumerics")
	}
	if errors.Is(ErrNumerics, ErrIterationLimit) {
		t.Error("sentinel hierarchy inverted")
	}
}
