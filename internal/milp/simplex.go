package milp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

const (
	// eps is the general numeric tolerance for the simplex method.
	eps = 1e-9
	// feasTol is the tolerance used when deciding feasibility of phase 1.
	feasTol = 1e-7
	// blandAfter switches pivoting to Bland's rule (guaranteed termination)
	// after this many iterations with the Dantzig rule.
	blandAfter = 20000
)

// ErrNumerics is the sentinel for numerical failure of the simplex method:
// degenerate-pivot stalls, iteration-budget exhaustion, and phase-1
// unboundedness all wrap it, so callers can distinguish "the arithmetic broke
// down" from genuine infeasibility and retry with perturbed tolerances or
// fall back to another solver.
var ErrNumerics = errors.New("milp: numerical instability detected")

// ErrIterationLimit is returned when the simplex method fails to converge
// within its iteration budget; it wraps ErrNumerics.
var ErrIterationLimit = fmt.Errorf("%w: simplex iteration limit exceeded", ErrNumerics)

// ErrDegenerate is returned when the simplex stalls on a long run of
// degenerate pivots (no objective progress) that even Bland's anti-cycling
// rule fails to break — floating-point cycling. It wraps ErrNumerics.
var ErrDegenerate = fmt.Errorf("%w: degenerate pivot stall", ErrNumerics)

// degenStreakLimit is the number of consecutive zero-progress pivots treated
// as a stall. It exceeds blandAfter so Bland's rule gets a full chance to
// break ties before the solve is declared numerically stuck.
const degenStreakLimit = blandAfter + 10000

// SolveLP solves the linear relaxation of p (integrality dropped) and returns
// the solution. The returned Solution has Status Optimal, Infeasible, or
// Unbounded. Cancelling ctx aborts the solve between pivot batches; the
// interrupted solve returns Status LimitReached with the trivial bound, never
// an error, matching Solve's anytime semantics.
func SolveLP(ctx context.Context, p *Problem) (Solution, error) {
	stop := func() bool { return ctx.Err() != nil }
	sol, err := solveLPStop(p, stop)
	if errors.Is(err, errStopped) {
		return Solution{Status: LimitReached, Bound: math.Inf(lpBoundSign(p))}, nil
	}
	return sol, err
}

// solveLPStop is SolveLP with an optional stop hook, polled every
// stopCheckEvery pivots; a true return aborts the solve with errStopped.
func solveLPStop(p *Problem, stop func() bool) (Solution, error) {
	lower := make([]float64, len(p.Vars))
	upper := make([]float64, len(p.Vars))
	for i, v := range p.Vars {
		lower[i] = v.Lower
		upper[i] = v.Upper
	}
	return solveLPWithBounds(p, lower, upper, stop)
}

// solveLPWithBounds solves the LP relaxation with the given variable bounds
// overriding those in p. Branch and bound uses this to explore subproblems
// without mutating the problem. A non-nil stop hook is polled every
// stopCheckEvery pivots so an expiring solve budget interrupts even a
// pathological LP mid-node; the solve then returns errStopped.
func solveLPWithBounds(p *Problem, lower, upper []float64, stop func() bool) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	for j := range lower {
		if math.IsInf(lower[j], -1) {
			return Solution{}, fmt.Errorf("milp: variable %d (%s) has no finite lower bound; free variables are not supported", j, p.Vars[j].Name)
		}
		if lower[j] > upper[j]+eps {
			return Solution{Status: Infeasible, Bound: math.Inf(1)}, nil
		}
	}

	t, err := newTableau(p, lower, upper)
	if err != nil {
		return Solution{}, err
	}
	t.stop = stop

	// Phase 1: minimize the sum of artificial variables.
	if t.numArtificial > 0 {
		t.setPhase1Costs()
		if err := t.iterate(); err != nil {
			return Solution{}, err
		}
		if t.objective() > feasTol {
			return Solution{Status: Infeasible, Bound: math.Inf(1)}, nil
		}
		t.driveOutArtificials()
	}

	// Phase 2: minimize the true objective.
	t.setPhase2Costs()
	if err := t.iterate(); err != nil {
		if errors.Is(err, errUnbounded) {
			return Solution{Status: Unbounded, Bound: math.Inf(-1), Iters: t.iters}, nil
		}
		return Solution{}, err
	}

	x := t.extract(lower)
	obj := 0.0
	for j, v := range p.Vars {
		obj += v.Obj * x[j]
	}
	// The tableau always minimizes; for maximization its costs were negated,
	// so obj computed from the original coefficients is already correct.
	return Solution{Status: Optimal, X: x, Objective: obj, Bound: obj, Iters: t.iters}, nil
}

var errUnbounded = errors.New("milp: unbounded")

// tableau is a dense simplex tableau in computational form: rows are
// constraints (all equalities after adding slack/surplus/artificial columns),
// with a maintained reduced-cost row.
type tableau struct {
	p             *Problem
	m             int         // number of rows
	n             int         // number of structural (shifted) variables
	total         int         // total columns excluding RHS
	rows          [][]float64 // m rows, each of length total+1 (last = RHS)
	cost          []float64   // current phase cost per column
	reduced       []float64   // reduced costs, length total
	z             float64     // current objective value (c_B * x_B)
	basis         []int       // basic variable (column) per row
	artStart      int         // first artificial column
	numArtificial int
	realCost      []float64 // phase-2 costs per column
	phase2        bool
	iters         int
	stop          func() bool // optional solve-budget hook, polled per pivot batch
}

// stopCheckEvery is how many pivots pass between stop-hook polls. A pivot
// touches the full tableau, so a few hundred pivots already dwarf the cost of
// one clock read while keeping in-node interrupt latency small.
const stopCheckEvery = 256

// newTableau builds the standard-form tableau for p with variables shifted by
// their lower bounds and finite upper bounds added as explicit rows.
func newTableau(p *Problem, lower, upper []float64) (*tableau, error) {
	n := len(p.Vars)

	type rowSpec struct {
		coefs map[int]float64
		sense Sense
		rhs   float64
	}
	var specs []rowSpec

	// Original constraints with the lower-bound shift folded into the RHS.
	for _, c := range p.Cons {
		rhs := c.RHS
		for j, a := range c.Coefs {
			rhs -= a * lower[j]
		}
		specs = append(specs, rowSpec{coefs: c.Coefs, sense: c.Sense, rhs: rhs})
	}
	// Upper bounds as x'_j <= u_j - l_j.
	for j := range p.Vars {
		if !math.IsInf(upper[j], 1) {
			specs = append(specs, rowSpec{coefs: map[int]float64{j: 1}, sense: LE, rhs: upper[j] - lower[j]})
		}
	}

	m := len(specs)
	// Count extra columns: slack per LE, surplus+artificial per GE,
	// artificial per EQ. Rows with negative RHS get their sense flipped.
	numSlack, numArt := 0, 0
	senses := make([]Sense, m)
	negate := make([]bool, m)
	for i, s := range specs {
		sense := s.sense
		if s.rhs < 0 {
			negate[i] = true
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		senses[i] = sense
		switch sense {
		case LE:
			numSlack++
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}

	total := n + numSlack + numArt
	t := &tableau{
		p:             p,
		m:             m,
		n:             n,
		total:         total,
		artStart:      n + numSlack,
		numArtificial: numArt,
		basis:         make([]int, m),
	}
	t.rows = make([][]float64, m)
	slackCol := n
	artCol := t.artStart
	for i, s := range specs {
		row := make([]float64, total+1)
		sign := 1.0
		rhs := s.rhs
		if negate[i] {
			sign = -1.0
			rhs = -rhs
		}
		for j, a := range s.coefs {
			row[j] = sign * a
		}
		row[total] = rhs
		switch senses[i] {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.rows[i] = row
	}

	// Phase-2 costs: structural variables carry the (possibly negated for
	// maximization) objective coefficients; slack and artificial columns are
	// free.
	t.realCost = make([]float64, total)
	for j, v := range p.Vars {
		if p.Maximize {
			t.realCost[j] = -v.Obj
		} else {
			t.realCost[j] = v.Obj
		}
	}
	return t, nil
}

// setPhase1Costs installs the phase-1 objective (sum of artificials) and
// recomputes reduced costs from scratch.
func (t *tableau) setPhase1Costs() {
	t.phase2 = false
	t.cost = make([]float64, t.total)
	for j := t.artStart; j < t.total; j++ {
		t.cost[j] = 1
	}
	t.recomputeReduced()
}

// setPhase2Costs installs the true objective and recomputes reduced costs.
func (t *tableau) setPhase2Costs() {
	t.phase2 = true
	t.cost = t.realCost
	t.recomputeReduced()
}

// recomputeReduced rebuilds the reduced-cost row r_j = c_j - c_B * A_j and
// the objective value from the current basis.
func (t *tableau) recomputeReduced() {
	t.reduced = make([]float64, t.total)
	copy(t.reduced, t.cost)
	t.z = 0
	for i := 0; i < t.m; i++ {
		cb := t.cost[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j < t.total; j++ {
			t.reduced[j] -= cb * row[j]
		}
		t.z += cb * row[t.total]
	}
}

// objective returns the current phase objective value.
func (t *tableau) objective() float64 { return t.z }

// iterate runs simplex pivots until optimality, unboundedness, or the
// iteration limit.
func (t *tableau) iterate() error {
	inPhase2 := t.phase2
	maxIters := 200*(t.m+t.total) + 20000
	degen := 0
	for it := 0; ; it++ {
		if it > maxIters {
			return ErrIterationLimit
		}
		if t.stop != nil && it%stopCheckEvery == 0 && t.stop() {
			return errStopped
		}
		bland := t.iters >= blandAfter
		enter := t.chooseEntering(bland, inPhase2)
		if enter < 0 {
			return nil // optimal for this phase
		}
		leave := t.chooseLeaving(enter)
		if leave < 0 {
			if inPhase2 {
				return errUnbounded
			}
			// Phase 1 is bounded below by zero; an unbounded ray here means
			// numerical trouble.
			return fmt.Errorf("%w: phase-1 unbounded ratio test", ErrNumerics)
		}
		zBefore := t.z
		t.pivot(leave, enter)
		t.iters++
		// A pivot that moves the objective by essentially nothing is
		// degenerate; a long unbroken run of them (outlasting Bland's rule)
		// means the arithmetic is cycling, not converging.
		if math.Abs(t.z-zBefore) <= eps*(1+math.Abs(zBefore)) {
			if degen++; degen > degenStreakLimit {
				return ErrDegenerate
			}
		} else {
			degen = 0
		}
	}
}

// chooseEntering picks the entering column: Dantzig (most negative reduced
// cost) normally, Bland (lowest index) when anti-cycling is active. In phase
// 2 artificial columns are never allowed to re-enter.
func (t *tableau) chooseEntering(bland, inPhase2 bool) int {
	limit := t.total
	if inPhase2 {
		limit = t.artStart
	}
	if bland {
		for j := 0; j < limit; j++ {
			if t.reduced[j] < -eps {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -eps
	for j := 0; j < limit; j++ {
		if t.reduced[j] < bestVal {
			bestVal = t.reduced[j]
			best = j
		}
	}
	return best
}

// chooseLeaving performs the minimum-ratio test for the entering column and
// returns the pivot row, or -1 if the column is unbounded.
func (t *tableau) chooseLeaving(enter int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][enter]
		if a <= eps {
			continue
		}
		ratio := t.rows[i][t.total] / a
		if ratio < bestRatio-eps {
			bestRatio = ratio
			best = i
		} else if ratio < bestRatio+eps && best >= 0 {
			// Tie-break: prefer the row whose basic variable has the lowest
			// index (Bland) to limit cycling; always applied on ties.
			if t.basis[i] < t.basis[best] {
				best = i
			}
		}
	}
	return best
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the reduced
// costs and objective.
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	pv := pr[col]
	inv := 1.0 / pv
	for j := 0; j <= t.total; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		r := t.rows[i]
		f := r[col]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.total; j++ {
			r[j] -= f * pr[j]
		}
		r[col] = 0 // exact
	}
	f := t.reduced[col]
	if f != 0 {
		for j := 0; j < t.total; j++ {
			t.reduced[j] -= f * pr[j]
		}
		t.reduced[col] = 0
		t.z += f * pr[t.total]
	}
	t.basis[row] = col
}

// driveOutArtificials pivots basic artificial variables (at value zero after
// a feasible phase 1) out of the basis where possible. Rows where no real
// column has a nonzero coefficient are redundant and left alone; their
// artificial stays basic at zero and is barred from re-entering in phase 2.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		row := t.rows[i]
		col := -1
		for j := 0; j < t.artStart; j++ {
			if math.Abs(row[j]) > 1e-7 {
				col = j
				break
			}
		}
		if col >= 0 {
			t.pivot(i, col)
		}
	}
}

// extract returns the structural variable values, un-shifting lower bounds.
func (t *tableau) extract(lower []float64) []float64 {
	x := make([]float64, t.n)
	copy(x, lower)
	for i := 0; i < t.m; i++ {
		if b := t.basis[i]; b < t.n {
			x[b] = lower[b] + t.rows[i][t.total]
		}
	}
	// Clean tiny negatives introduced by roundoff.
	for j := range x {
		if x[j] < lower[j] && x[j] > lower[j]-1e-7 {
			x[j] = lower[j]
		}
	}
	return x
}
