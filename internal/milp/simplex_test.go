package milp

import (
	"context"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveLPSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0, obj=12.
	p := NewProblem()
	p.Maximize = true
	x := p.AddVariable("x", 0, math.Inf(1), 3)
	y := p.AddVariable("y", 0, math.Inf(1), 2)
	p.AddConstraint("c1", map[int]float64{x: 1, y: 1}, LE, 4)
	p.AddConstraint("c2", map[int]float64{x: 1, y: 3}, LE, 6)

	sol, err := SolveLP(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEqual(sol.Objective, 12, 1e-6) {
		t.Errorf("objective = %g, want 12", sol.Objective)
	}
	if !almostEqual(sol.X[x], 4, 1e-6) || !almostEqual(sol.X[y], 0, 1e-6) {
		t.Errorf("x = %v, want [4 0]", sol.X)
	}
}

func TestSolveLPSimpleMin(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x <= 6 -> x=6, y=4, obj=24.
	p := NewProblem()
	x := p.AddVariable("x", 0, 6, 2)
	y := p.AddVariable("y", 0, math.Inf(1), 3)
	p.AddConstraint("cover", map[int]float64{x: 1, y: 1}, GE, 10)

	sol, err := SolveLP(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEqual(sol.Objective, 24, 1e-6) {
		t.Errorf("objective = %g, want 24", sol.Objective)
	}
}

func TestSolveLPEquality(t *testing.T) {
	// min x + y s.t. x + 2y == 8, x - y == 2 -> y=2, x=4, obj=6.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 1)
	p.AddConstraint("e1", map[int]float64{x: 1, y: 2}, EQ, 8)
	p.AddConstraint("e2", map[int]float64{x: 1, y: -1}, EQ, 2)

	sol, err := SolveLP(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEqual(sol.X[x], 4, 1e-6) || !almostEqual(sol.X[y], 2, 1e-6) {
		t.Errorf("x = %v, want [4 2]", sol.X)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 1, 1)
	p.AddConstraint("impossible", map[int]float64{x: 1}, GE, 5)

	sol, err := SolveLP(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	p := NewProblem()
	p.Maximize = true
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	y := p.AddVariable("y", 0, math.Inf(1), 0)
	p.AddConstraint("c", map[int]float64{y: 1}, LE, 3)
	_ = x

	sol, err := SolveLP(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3 (i.e. x >= 3) -> x=3.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1), 1)
	p.AddConstraint("neg", map[int]float64{x: -1}, LE, -3)

	sol, err := SolveLP(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEqual(sol.X[x], 3, 1e-6) {
		t.Fatalf("got %v x=%v, want optimal x=3", sol.Status, sol.X)
	}
}

func TestSolveLPShiftedLowerBounds(t *testing.T) {
	// min x + y with x in [2,10], y in [3,10], x + y >= 7 -> obj 7.
	p := NewProblem()
	x := p.AddVariable("x", 2, 10, 1)
	y := p.AddVariable("y", 3, 10, 1)
	p.AddConstraint("c", map[int]float64{x: 1, y: 1}, GE, 7)

	sol, err := SolveLP(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEqual(sol.Objective, 7, 1e-6) {
		t.Fatalf("got %v obj=%g, want optimal 7", sol.Status, sol.Objective)
	}
	if sol.X[x] < 2-1e-9 || sol.X[y] < 3-1e-9 {
		t.Errorf("solution violates lower bounds: %v", sol.X)
	}
}

func TestSolveLPDegenerate(t *testing.T) {
	// A classically degenerate LP; must terminate and find the optimum.
	// max 10x1 - 57x2 - 9x3 - 24x4 subject to Beale's cycling example rows.
	p := NewProblem()
	p.Maximize = true
	x1 := p.AddVariable("x1", 0, math.Inf(1), 10)
	x2 := p.AddVariable("x2", 0, math.Inf(1), -57)
	x3 := p.AddVariable("x3", 0, math.Inf(1), -9)
	x4 := p.AddVariable("x4", 0, math.Inf(1), -24)
	p.AddConstraint("r1", map[int]float64{x1: 0.5, x2: -5.5, x3: -2.5, x4: 9}, LE, 0)
	p.AddConstraint("r2", map[int]float64{x1: 0.5, x2: -1.5, x3: -0.5, x4: 1}, LE, 0)
	p.AddConstraint("r3", map[int]float64{x1: 1}, LE, 1)

	sol, err := SolveLP(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEqual(sol.Objective, 1, 1e-6) {
		t.Errorf("objective = %g, want 1", sol.Objective)
	}
}

func TestSolveLPConflictingBoundOverride(t *testing.T) {
	p := NewProblem()
	p.AddVariable("x", 0, 10, 1)
	sol, err := solveLPWithBounds(p, []float64{5}, []float64{4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible for crossed bounds", sol.Status)
	}
}

func TestValidateRejectsBadProblems(t *testing.T) {
	p := NewProblem()
	p.AddVariable("x", 0, 1, 1)
	p.AddConstraint("bad", map[int]float64{3: 1}, LE, 1)
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range variable index")
	}

	q := NewProblem()
	q.Vars = append(q.Vars, Variable{Name: "y", Lower: 2, Upper: 1})
	if err := q.Validate(); err == nil {
		t.Fatal("Validate accepted inverted bounds")
	}

	r := NewProblem()
	r.AddVariable("z", 0, 1, math.NaN())
	if err := r.Validate(); err == nil {
		t.Fatal("Validate accepted NaN objective")
	}
}

// TestSolveLPFeasibilityProperty: for random bounded transportation-style
// problems, the simplex solution must satisfy every constraint and all bounds.
func TestSolveLPFeasibilityProperty(t *testing.T) {
	f := func(seedA, seedB uint8) bool {
		// Deterministic small LP from the two seed bytes:
		// min sum x_i with a cover constraint and per-variable capacities.
		n := 2 + int(seedA%4)
		p := NewProblem()
		caps := make([]float64, n)
		total := 0.0
		for i := 0; i < n; i++ {
			caps[i] = 1 + float64((int(seedA)*7+int(seedB)*13+i*31)%9)
			total += caps[i]
			p.AddVariable("x", 0, caps[i], 1+float64(i%3))
		}
		demand := total * (0.2 + 0.6*float64(seedB)/255)
		row := map[int]float64{}
		for i := 0; i < n; i++ {
			row[i] = 1
		}
		p.AddConstraint("demand", row, GE, demand)

		sol, err := SolveLP(context.Background(), p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			if sol.X[i] < -1e-6 || sol.X[i] > caps[i]+1e-6 {
				return false
			}
			sum += sol.X[i]
		}
		return sum >= demand-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
