package milp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteLP serializes the problem in CPLEX LP format so instances can be
// inspected or cross-checked with external solvers. Variable names are
// sanitized and de-duplicated; the mapping is stable (index order).
func WriteLP(w io.Writer, p *Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)

	names := lpNames(p)

	if p.Maximize {
		fmt.Fprintln(bw, "Maximize")
	} else {
		fmt.Fprintln(bw, "Minimize")
	}
	fmt.Fprint(bw, " obj:")
	wrote := false
	for j, v := range p.Vars {
		if v.Obj == 0 {
			continue
		}
		fmt.Fprintf(bw, " %s %s", lpCoef(v.Obj, !wrote), names[j])
		wrote = true
	}
	if !wrote {
		fmt.Fprintf(bw, " 0 %s", names[0])
	}
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "Subject To")
	for i, c := range p.Cons {
		name := sanitizeLPName(c.Name)
		if name == "" {
			name = fmt.Sprintf("c%d", i)
		}
		fmt.Fprintf(bw, " %s_%d:", name, i)
		cols := make([]int, 0, len(c.Coefs))
		for j := range c.Coefs {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		first := true
		for _, j := range cols {
			fmt.Fprintf(bw, " %s %s", lpCoef(c.Coefs[j], first), names[j])
			first = false
		}
		if first {
			fmt.Fprintf(bw, " 0 %s", names[0])
		}
		fmt.Fprintf(bw, " %s %g\n", c.Sense, c.RHS)
	}

	fmt.Fprintln(bw, "Bounds")
	for j, v := range p.Vars {
		switch {
		case math.IsInf(v.Upper, 1):
			fmt.Fprintf(bw, " %s >= %g\n", names[j], v.Lower)
		default:
			fmt.Fprintf(bw, " %g <= %s <= %g\n", v.Lower, names[j], v.Upper)
		}
	}

	var integers []string
	for j, v := range p.Vars {
		if v.Integer {
			integers = append(integers, names[j])
		}
	}
	if len(integers) > 0 {
		fmt.Fprintln(bw, "General")
		fmt.Fprintf(bw, " %s\n", strings.Join(integers, " "))
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

// lpNames builds unique, LP-safe names for all variables.
func lpNames(p *Problem) []string {
	names := make([]string, len(p.Vars))
	used := map[string]bool{}
	for j, v := range p.Vars {
		base := sanitizeLPName(v.Name)
		if base == "" {
			base = "x"
		}
		name := fmt.Sprintf("%s_%d", base, j)
		for used[name] {
			name += "_"
		}
		used[name] = true
		names[j] = name
	}
	return names
}

// sanitizeLPName keeps only characters the LP format allows.
func sanitizeLPName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// lpCoef renders a coefficient with an explicit sign (the leading term may
// omit a plus).
func lpCoef(v float64, first bool) string {
	if v < 0 {
		return fmt.Sprintf("- %g", -v)
	}
	if first {
		return fmt.Sprintf("%g", v)
	}
	return fmt.Sprintf("+ %g", v)
}
