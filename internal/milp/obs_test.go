package milp

import (
	"context"
	"testing"

	"hilp/internal/obs"
)

// knapsack builds the 0/1 knapsack used across solver tests: maximize
// 10a+6b+4c subject to 3a+4b+2c <= 6; optimum is a+c = 14.
func knapsack() *Problem {
	p := NewProblem()
	p.Maximize = true
	a := p.AddBinary("a", 10)
	b := p.AddBinary("b", 6)
	c := p.AddBinary("c", 4)
	p.AddConstraint("w", map[int]float64{a: 3, b: 4, c: 2}, LE, 6)
	return p
}

func TestSolveRecordsMetricsAndSpan(t *testing.T) {
	ctx := &obs.Context{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry()}
	sol, err := Solve(context.Background(), knapsack(), Options{Obs: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective != 14 {
		t.Fatalf("status %v objective %g, want Optimal 14", sol.Status, sol.Objective)
	}

	if got := ctx.Metrics.Counter(obs.MSimplexPivots).Value(); got <= 0 {
		t.Errorf("%s = %d, want > 0", obs.MSimplexPivots, got)
	}
	if got := ctx.Metrics.Counter(obs.MBBNodes).Value(); got <= 0 {
		t.Errorf("%s = %d, want > 0", obs.MBBNodes, got)
	}

	recs := ctx.Tracer.Snapshot()
	var bb *obs.SpanRecord
	for i := range recs {
		if recs[i].Name == "milp-bb" {
			bb = &recs[i]
		}
	}
	if bb == nil {
		t.Fatalf("no milp-bb span in %+v", recs)
	}
	if bb.Args["vars"] != 3 || bb.Args["integers"] != 3 {
		t.Errorf("milp-bb args = %v, want vars=3 integers=3", bb.Args)
	}
	if bb.Args["nodes"] <= 0 {
		t.Errorf("milp-bb nodes arg = %v, want > 0", bb.Args["nodes"])
	}
	if err := obs.WellNested(recs); err != nil {
		t.Error(err)
	}
}

func TestSolveObservedMatchesUnobserved(t *testing.T) {
	plain, err := Solve(context.Background(), knapsack(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &obs.Context{Metrics: obs.NewRegistry()}
	observed, err := Solve(context.Background(), knapsack(), Options{Obs: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Objective != observed.Objective || plain.Status != observed.Status {
		t.Errorf("observability changed the solution: %+v vs %+v", plain, observed)
	}
}
