package milp

import (
	"math"
	"strings"
	"testing"
)

func TestWriteLP(t *testing.T) {
	p := NewProblem()
	p.Maximize = true
	x := p.AddBinary("x", 3)
	y := p.AddVariable("load bal!", 0, math.Inf(1), -2)
	p.AddConstraint("cap", map[int]float64{x: 1, y: 2.5}, LE, 10)
	p.AddConstraint("", map[int]float64{y: -1}, GE, -4)

	var b strings.Builder
	if err := WriteLP(&b, p); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"Maximize",
		"Subject To",
		"Bounds",
		"General",
		"End",
		"x_0",
		"load_bal__1",
		"<= 10",
		">= -4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q:\n%s", want, out)
		}
	}
	// The binary must appear in the integer section and with bounds 0..1.
	if !strings.Contains(out, "0 <= x_0 <= 1") {
		t.Errorf("binary bounds missing:\n%s", out)
	}
	// The unbounded variable appears as a one-sided bound.
	if !strings.Contains(out, "load_bal__1 >= 0") {
		t.Errorf("one-sided bound missing:\n%s", out)
	}
}

func TestWriteLPMinimizeEmptyObjective(t *testing.T) {
	p := NewProblem()
	p.AddVariable("x", 0, 1, 0)
	p.AddConstraint("c", map[int]float64{0: 1}, EQ, 1)
	var b strings.Builder
	if err := WriteLP(&b, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Minimize") {
		t.Error("missing Minimize header")
	}
	if !strings.Contains(b.String(), "== 1") {
		t.Error("missing equality row")
	}
}

func TestWriteLPRejectsInvalid(t *testing.T) {
	p := NewProblem()
	p.AddVariable("x", 2, 1, 0) // inverted bounds
	var b strings.Builder
	if err := WriteLP(&b, p); err == nil {
		t.Error("accepted an invalid problem")
	}
}
