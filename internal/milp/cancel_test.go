package milp

import (
	"context"
	"testing"
	"time"
)

// hardKnapsack builds a correlated knapsack whose branch-and-bound tree is
// large enough to outlive a millisecond-scale budget.
func hardKnapsack(n int) *Problem {
	p := NewProblem()
	p.Maximize = true
	row := map[int]float64{}
	for i := 0; i < n; i++ {
		w := float64(13 + (i*29)%31)
		v := p.AddBinary("x", w+float64((i*7)%5))
		row[v] = w
	}
	p.AddConstraint("w", row, LE, float64(n*9))
	return p
}

func TestSolveCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	sol, err := Solve(ctx, hardKnapsack(40), Options{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("solve ran %v past a 10ms ctx deadline", elapsed)
	}
	if sol.Status == Optimal {
		// Finishing early is legal, but then the certificate must close.
		if sol.Gap() > 1e-6 {
			t.Errorf("optimal status with gap %g", sol.Gap())
		}
	} else if sol.Status != Feasible && sol.Status != LimitReached {
		t.Errorf("status %v, want Feasible or LimitReached on deadline", sol.Status)
	}
}

func TestSolveCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := Solve(ctx, hardKnapsack(20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != LimitReached {
		t.Errorf("status %v on pre-cancelled ctx, want LimitReached", sol.Status)
	}
}

func TestSolveCtxDeadlineTighterThanTimeLimit(t *testing.T) {
	// The effective deadline is min(ctx deadline, TimeLimit): a generous
	// TimeLimit must not override an imminent ctx deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Solve(ctx, hardKnapsack(40), Options{TimeLimit: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("solve ran %v: TimeLimit overrode the ctx deadline", elapsed)
	}
}
