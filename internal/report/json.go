package report

import "encoding/json"

// JSON renders the machine-readable twin of the HTML report. Field order is
// fixed by the struct definitions and no timestamps are included, so the
// output is byte-identical across runs with the same seed.
func (d *Data) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
