package report

import (
	"fmt"
	"strconv"
	"strings"
)

// maxConvergenceCharts bounds the convergence grid; every solve still
// appears in the certificate table and the JSON twin.
const maxConvergenceCharts = 12

// reportCSS styles the report. Colors are CSS custom properties so the dark
// values swap in one place: the media query follows the OS setting and a
// data-theme attribute on <html> overrides it either way.
const reportCSS = `
:root { color-scheme: light; }
.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --fold: #898781;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a; --series-4: #eda100;
  --series-5: #e87ba4; --series-6: #008300; --series-7: #4a3aa7; --series-8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) { color-scheme: dark; }
  :root:where(:not([data-theme="light"])) .viz-root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
    --fold: #898781;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70; --series-4: #c98500;
    --series-5: #d55181; --series-6: #008300; --series-7: #9085e9; --series-8: #e66767;
  }
}
:root[data-theme="dark"] { color-scheme: dark; }
:root[data-theme="dark"] .viz-root {
  --surface-1: #1a1a19; --page: #0d0d0d;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
  --fold: #898781;
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70; --series-4: #c98500;
  --series-5: #d55181; --series-6: #008300; --series-7: #9085e9; --series-8: #e66767;
}
.viz-root {
  background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px; min-height: 100vh;
}
.viz-root main { max-width: 960px; margin: 0 auto; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 10px; }
.subtitle { color: var(--text-secondary); margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 14px 0; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 10px 16px; min-width: 96px;
}
.tile .v { font-size: 20px; font-weight: 600; }
.tile .l { font-size: 11px; color: var(--muted); text-transform: uppercase; letter-spacing: .04em; }
.card { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px; padding: 14px; }
.legend { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 10px; font-size: 12px; color: var(--text-secondary); }
.chip { display: inline-flex; align-items: center; gap: 5px; }
.swatch { width: 11px; height: 11px; border-radius: 3px; display: inline-block; }
.grid2 { display: grid; grid-template-columns: repeat(auto-fit, minmax(380px, 1fr)); gap: 14px; }
.caption { font-size: 12px; color: var(--text-secondary); margin: 4px 0 0; }
svg text { fill: var(--muted); font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }
svg text.rowlabel { fill: var(--text-secondary); font-size: 12px; }
svg text.axistitle { fill: var(--muted); font-size: 11px; }
svg text.vallabel { fill: var(--text-secondary); font-variant-numeric: tabular-nums; }
details { margin-top: 10px; }
details summary { cursor: pointer; font-size: 12px; color: var(--text-secondary); }
table { border-collapse: collapse; font-size: 12px; margin-top: 8px; width: 100%; }
th, td { text-align: left; padding: 3px 10px 3px 0; border-bottom: 1px solid var(--grid); }
td.n, th.n { text-align: right; font-variant-numeric: tabular-nums; }
.empty { color: var(--muted); font-style: italic; }
footer { margin-top: 28px; font-size: 11px; color: var(--muted); }
`

func fnum(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// HTML renders the report as one dependency-free document: inline CSS,
// inline SVG, native <title> tooltips, a data table behind every chart, and
// dark-mode colors selected per surface (not auto-inverted).
func (d *Data) HTML() ([]byte, error) {
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	b.WriteString("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n<style>%s</style>\n</head>\n", esc(d.Title), reportCSS)
	b.WriteString("<body class=\"viz-root\">\n<main>\n")

	fmt.Fprintf(&b, "<h1>%s</h1>\n", esc(d.Title))
	if d.Subtitle != "" {
		fmt.Fprintf(&b, "<p class=\"subtitle\">%s</p>\n", esc(d.Subtitle))
	}
	if len(d.Summary) > 0 {
		b.WriteString("<div class=\"tiles\">\n")
		for _, s := range d.Summary {
			fmt.Fprintf(&b, "<div class=\"tile\"><div class=\"v\">%s</div><div class=\"l\">%s</div></div>\n",
				esc(s.Value), esc(s.Label))
		}
		b.WriteString("</div>\n")
	}

	if d.Timeline != nil {
		d.writeTimelineSection(&b)
	}
	if d.Utilization != nil {
		d.writeUtilizationSection(&b)
	}
	if len(d.Solves) > 0 {
		d.writeConvergenceSection(&b)
	}
	if d.Sweep != nil {
		d.writeSweepSection(&b)
	}

	b.WriteString("<footer>Generated by hilp. The JSON twin next to this file carries the same data machine-readably.</footer>\n")
	b.WriteString("</main>\n</body>\n</html>\n")
	return []byte(b.String()), nil
}

func (d *Data) writeTimelineSection(b *strings.Builder) {
	t := d.Timeline
	b.WriteString("<h2>Schedule timeline</h2>\n<div class=\"card\">\n")
	if len(t.Apps) > 1 {
		b.WriteString("<div class=\"legend\">\n")
		for a, name := range t.Apps {
			fmt.Fprintf(b, "<span class=\"chip\"><span class=\"swatch\" style=\"background:%s\"></span>%s</span>\n",
				seriesColor(a), esc(name))
		}
		if len(t.Apps) > 8 {
			fmt.Fprintf(b, "<span class=\"chip\"><span class=\"swatch\" style=\"background:var(--fold)\"></span>apps 9–%d</span>\n", len(t.Apps))
		}
		b.WriteString("</div>\n")
	}
	b.WriteString(timelineSVG(t))
	fmt.Fprintf(b, "<p class=\"caption\">%d phases across %d device rows; makespan %d steps (%s s).</p>\n",
		len(t.Segments), len(t.Rows), t.Makespan, fnum(float64(t.Makespan)*t.StepSec))
	b.WriteString("<details><summary>Data table</summary>\n<table>\n<tr><th>task</th><th>app</th><th>device</th><th>placement</th><th class=\"n\">start</th><th class=\"n\">steps</th><th class=\"n\">seconds</th></tr>\n")
	for _, s := range t.Segments {
		app := fmt.Sprintf("app %d", s.App)
		if s.App < len(t.Apps) {
			app = t.Apps[s.App]
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td class=\"n\">%d</td><td class=\"n\">%d</td><td class=\"n\">%s</td></tr>\n",
			esc(s.Task), esc(app), esc(t.Rows[s.Row]), esc(s.Label), s.Start, s.Duration, fnum(float64(s.Duration)*t.StepSec))
	}
	b.WriteString("</table>\n</details>\n</div>\n")
}

func (d *Data) writeUtilizationSection(b *strings.Builder) {
	u := d.Utilization
	b.WriteString("<h2>Resource utilization</h2>\n<div class=\"card\">\n")
	b.WriteString(utilizationSVG(u))
	// Binding-constraint summary in prose, derived from the accounting.
	if len(u.Resources) > 0 && u.Steps > 0 {
		var parts []string
		for _, r := range u.Resources {
			if r.BindingSteps > 0 {
				parts = append(parts, fmt.Sprintf("%s binds %d of %d steps (peak %.0f%%, mean %.0f%% of capacity)",
					r.Name, r.BindingSteps, u.Steps, 100*r.PeakFrac, 100*r.MeanFrac))
			}
		}
		if len(parts) > 0 {
			fmt.Fprintf(b, "<p class=\"caption\">Binding constraints: %s.</p>\n", esc(strings.Join(parts, "; ")))
		}
	}
	b.WriteString("<h2>Device occupancy</h2>\n")
	b.WriteString(groupsSVG(u))
	b.WriteString("<details><summary>Data table</summary>\n")
	b.WriteString("<table>\n<tr><th>resource</th><th class=\"n\">capacity</th><th class=\"n\">peak</th><th class=\"n\">mean</th><th class=\"n\">peak %</th><th class=\"n\">mean %</th><th class=\"n\">binding steps</th></tr>\n")
	for _, r := range u.Resources {
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"n\">%s</td><td class=\"n\">%s</td><td class=\"n\">%s</td><td class=\"n\">%.1f</td><td class=\"n\">%.1f</td><td class=\"n\">%d</td></tr>\n",
			esc(r.Name), fnum(r.Capacity), fnum(r.Peak), fnum(r.Mean), 100*r.PeakFrac, 100*r.MeanFrac, r.BindingSteps)
	}
	b.WriteString("</table>\n<table>\n<tr><th>phase</th><th class=\"n\">start</th><th class=\"n\">steps</th><th>binding constraint</th><th class=\"n\">mean % of capacity</th></tr>\n")
	for _, p := range u.Phases {
		binding := p.Binding
		if binding == "" {
			binding = "—"
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"n\">%d</td><td class=\"n\">%d</td><td>%s</td><td class=\"n\">%.1f</td></tr>\n",
			esc(p.Task), p.Start, p.Duration, esc(binding), 100*p.MeanFrac)
	}
	b.WriteString("</table>\n</details>\n</div>\n")
}

func (d *Data) writeConvergenceSection(b *strings.Builder) {
	b.WriteString("<h2>Solver convergence</h2>\n<div class=\"card\">\n")
	b.WriteString("<div class=\"legend\">\n")
	fmt.Fprintf(b, "<span class=\"chip\"><span class=\"swatch\" style=\"background:var(--series-1)\"></span>incumbent</span>\n")
	fmt.Fprintf(b, "<span class=\"chip\"><span class=\"swatch\" style=\"background:var(--series-2)\"></span>proven bound</span>\n")
	b.WriteString("</div>\n<div class=\"grid2\">\n")
	charts := 0
	for i, s := range d.Solves {
		if charts >= maxConvergenceCharts {
			break
		}
		svg := convergenceSVG(s)
		if svg == "" {
			continue
		}
		charts++
		caption := fmt.Sprintf("%s (solve %d)", s.Solver, i+1)
		if c := s.Certificate; c != nil {
			if c.Proven {
				caption += fmt.Sprintf(" — proven optimal at %s", fnum(c.Incumbent))
			} else {
				caption += fmt.Sprintf(" — gap %.1f%% (incumbent %s, bound %s)", 100*c.Gap, fnum(c.Incumbent), fnum(c.Bound))
			}
		}
		fmt.Fprintf(b, "<figure style=\"margin:0\">%s<figcaption class=\"caption\">%s</figcaption></figure>\n", svg, esc(caption))
	}
	b.WriteString("</div>\n")
	if n := len(d.Solves); charts < n {
		fmt.Fprintf(b, "<p class=\"caption\">Showing %d of %d recorded solves; the JSON twin carries all of them.</p>\n", charts, n)
	}
	b.WriteString("<details><summary>Gap certificates</summary>\n<table>\n<tr><th class=\"n\">#</th><th>solver</th><th class=\"n\">events</th><th class=\"n\">incumbent</th><th class=\"n\">bound</th><th class=\"n\">gap</th><th>proven</th></tr>\n")
	for i, s := range d.Solves {
		inc, bound, gap, proven := "—", "—", "—", "—"
		if c := s.Certificate; c != nil {
			inc, bound = fnum(c.Incumbent), fnum(c.Bound)
			gap = fmt.Sprintf("%.1f%%", 100*c.Gap)
			proven = "no"
			if c.Proven {
				proven = "yes"
			}
		}
		fmt.Fprintf(b, "<tr><td class=\"n\">%d</td><td>%s</td><td class=\"n\">%d</td><td class=\"n\">%s</td><td class=\"n\">%s</td><td class=\"n\">%s</td><td>%s</td></tr>\n",
			i+1, esc(s.Solver), len(s.Events), inc, bound, gap, proven)
	}
	b.WriteString("</table>\n</details>\n</div>\n")
}

func (d *Data) writeSweepSection(b *strings.Builder) {
	sw := d.Sweep
	ok, front := 0, 0
	for _, p := range sw.Points {
		if p.Err == "" {
			ok++
		}
		if p.OnFront {
			front++
		}
	}
	b.WriteString("<h2>Design-space sweep</h2>\n<div class=\"card\">\n")
	b.WriteString("<div class=\"legend\">\n")
	for _, mix := range []string{"cpu-only", "gpu-dominated", "dsa-dominated", "mixed"} {
		b.WriteString(legendChip(mixMarks[mix], mix) + "\n")
	}
	b.WriteString("<span class=\"chip\">dashed line: Pareto front</span>\n</div>\n")
	b.WriteString(paretoSVG(sw))
	fmt.Fprintf(b, "<p class=\"caption\">%d evaluated points (%d feasible), %d on the Pareto front; hypervolume %s against (%s mm², 0×).</p>\n",
		len(sw.Points), ok, front, fnum(sw.Hypervolume), fnum(sw.RefArea))
	b.WriteString("<details><summary>Data table</summary>\n<table>\n<tr><th>SoC</th><th class=\"n\">area mm²</th><th class=\"n\">speedup</th><th class=\"n\">WLP</th><th class=\"n\">gap</th><th>mix</th><th>front</th></tr>\n")
	for _, p := range sw.Points {
		if p.Err != "" {
			fmt.Fprintf(b, "<tr><td>%s</td><td class=\"n\">%.1f</td><td colspan=\"5\">infeasible: %s</td></tr>\n",
				esc(p.Label), p.AreaMM2, esc(p.Err))
			continue
		}
		onFront := ""
		if p.OnFront {
			onFront = "✓"
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"n\">%.1f</td><td class=\"n\">%.2f</td><td class=\"n\">%.2f</td><td class=\"n\">%.1f%%</td><td>%s</td><td>%s</td></tr>\n",
			esc(p.Label), p.AreaMM2, p.Speedup, p.WLP, 100*p.Gap, esc(p.Mix), onFront)
	}
	b.WriteString("</table>\n</details>\n</div>\n")
}
