package report

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hilp/internal/core"
	"hilp/internal/dse"
	"hilp/internal/obs"
	"hilp/internal/scheduler"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testModel is the paper's Figure 2 running example: two applications on a
// CPU, a GPU, and a DSA under a 3 W power cap. Small enough to solve to
// proven optimality deterministically.
func testModel() core.CustomModel {
	cpuOpt := func(sec float64) core.CustomOption {
		return core.CustomOption{Cluster: "cpu0", Sec: sec, PowerW: 1}
	}
	gpuOpt := func(sec float64) core.CustomOption {
		return core.CustomOption{Cluster: "gpu0", Sec: sec, PowerW: 3}
	}
	dsaOpt := func(sec float64) core.CustomOption {
		return core.CustomOption{Cluster: "dsa0", Sec: sec, PowerW: 2}
	}
	return core.CustomModel{
		Name:         "fig2",
		Clusters:     []core.CustomCluster{{Name: "cpu0"}, {Name: "gpu0"}, {Name: "dsa0"}},
		PowerBudgetW: 3,
		Tasks: []core.CustomTask{
			{Name: "m0", App: 0, Phase: 0, Options: []core.CustomOption{cpuOpt(1)}},
			{Name: "m1", App: 0, Phase: 1, Deps: []core.CustomDep{{Task: "m0"}},
				Options: []core.CustomOption{cpuOpt(8), gpuOpt(6), dsaOpt(5)}},
			{Name: "m2", App: 0, Phase: 2, Deps: []core.CustomDep{{Task: "m1"}},
				Options: []core.CustomOption{cpuOpt(1)}},
			{Name: "n0", App: 1, Phase: 0, Options: []core.CustomOption{cpuOpt(1)}},
			{Name: "n1", App: 1, Phase: 1, Deps: []core.CustomDep{{Task: "n0"}},
				Options: []core.CustomOption{cpuOpt(5), gpuOpt(3), dsaOpt(2)}},
			{Name: "n2", App: 1, Phase: 2, Deps: []core.CustomDep{{Task: "n1"}},
				Options: []core.CustomOption{cpuOpt(1)}},
		},
	}
}

// countingClock is the obs injectable-clock pattern: a deterministic
// monotonic clock, one tick per call.
func countingClock() func() int64 {
	var t int64
	return func() int64 {
		t++
		return t
	}
}

// buildTestData runs one full deterministic solve (fixed seed, injected
// clock) and assembles a report with every section populated.
func buildTestData(t *testing.T) *Data {
	t.Helper()
	inst, err := testModel().Build(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorderWithClock(countingClock())
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1, Obs: &obs.Context{Recorder: rec}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromSchedule("fig2 run report", inst, res, rec)
	if err != nil {
		t.Fatal(err)
	}
	d.AddSweep([]dse.Point{
		{Label: "1c", AreaMM2: 10, Speedup: 1.0, WLP: 1.0, Mix: dse.NoAccel},
		{Label: "1c16sm", AreaMM2: 30, Speedup: 2.1, WLP: 1.5, Mix: dse.GPUDominated},
		{Label: "1c+dsa", AreaMM2: 24, Speedup: 1.8, WLP: 1.4, Mix: dse.DSADominated},
		{Label: "big", AreaMM2: 60, Speedup: 2.0, WLP: 1.3, Mix: dse.MixedAccel},
		{Label: "broken", AreaMM2: 5, Err: errors.New("infeasible")},
	})
	return d
}

func TestReportDeterministic(t *testing.T) {
	// Two fully independent solves with the same seed must render
	// byte-identical HTML and JSON: the report may not depend on wall time.
	d1, d2 := buildTestData(t), buildTestData(t)
	h1, err := d1.HTML()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := d2.HTML()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(h1, h2) {
		t.Error("HTML differs between identical runs")
	}
	j1, err := d1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := d2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("JSON differs between identical runs")
	}
}

func TestReportGolden(t *testing.T) {
	d := buildTestData(t)
	html, err := d.HTML()
	if err != nil {
		t.Fatal(err)
	}
	js, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []struct {
		path string
		got  []byte
	}{
		{filepath.Join("testdata", "report.html"), html},
		{filepath.Join("testdata", "report.json"), js},
	} {
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(g.path, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(g.path)
		if err != nil {
			t.Fatalf("%v (run go test ./internal/report -update to regenerate)", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s differs from golden file (run go test ./internal/report -update after intended changes)", g.path)
		}
	}
}

func TestReportSections(t *testing.T) {
	d := buildTestData(t)
	html, err := d.HTML()
	if err != nil {
		t.Fatal(err)
	}
	s := string(html)
	for _, want := range []string{
		"<!doctype html>",
		"Schedule timeline",
		"Resource utilization",
		"Solver convergence",
		"Design-space sweep",
		"<svg",
		"prefers-color-scheme: dark",
		"Pareto front",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// Determinism guard: no wall-clock fields may leak into the output.
	for _, banned := range []string{"TimeNs", "timeNs", "StartNs", "startNs"} {
		if strings.Contains(s, banned) {
			t.Errorf("HTML leaks timestamp field %q", banned)
		}
	}
}

func TestJSONTwinStructure(t *testing.T) {
	d := buildTestData(t)
	js, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(js, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"title", "summary", "timeline", "utilization", "solves", "sweep"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON twin missing %q", key)
		}
	}
	if strings.Contains(string(js), "timeNs") {
		t.Error("JSON twin leaks timestamps")
	}
}

func TestWriteEmitsBothFiles(t *testing.T) {
	d := buildTestData(t)
	dir := t.TempDir()
	htmlPath := filepath.Join(dir, "out.html")
	jsonPath, err := Write(htmlPath, d)
	if err != nil {
		t.Fatal(err)
	}
	if jsonPath != filepath.Join(dir, "out.json") {
		t.Errorf("jsonPath = %s", jsonPath)
	}
	for _, p := range []string{htmlPath, jsonPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("%s: %v (size %d)", p, err, fi.Size())
		}
	}
}

func TestJSONPath(t *testing.T) {
	cases := map[string]string{
		"report.html":     "report.json",
		"out/report.html": "out/report.json",
		"report":          "report.json",
		"report.htm":      "report.htm.json",
	}
	for in, want := range cases {
		if got := JSONPath(in); got != want {
			t.Errorf("JSONPath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAddSweepFrontAndHypervolume(t *testing.T) {
	d := New("sweep", "")
	d.AddSweep([]dse.Point{
		{Label: "a", AreaMM2: 10, Speedup: 1.0, Mix: dse.NoAccel},
		{Label: "b", AreaMM2: 20, Speedup: 2.0, Mix: dse.GPUDominated},
		{Label: "c", AreaMM2: 30, Speedup: 1.5, Mix: dse.MixedAccel}, // dominated by b
	})
	sw := d.Sweep
	if sw == nil || len(sw.Points) != 3 {
		t.Fatalf("sweep = %+v", sw)
	}
	wantFront := map[string]bool{"a": true, "b": true, "c": false}
	for _, p := range sw.Points {
		if p.OnFront != wantFront[p.Label] {
			t.Errorf("%s onFront = %v", p.Label, p.OnFront)
		}
	}
	if sw.RefArea != 30 || sw.Hypervolume <= 0 {
		t.Errorf("refArea = %g, hypervolume = %g", sw.RefArea, sw.Hypervolume)
	}
}

func TestFromResultEndToEnd(t *testing.T) {
	rec := obs.NewRecorderWithClock(countingClock())
	octx := &obs.Context{Recorder: rec}
	inst, err := testModel().Build(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1, Obs: octx})
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromSchedule("t", inst, res, rec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Timeline == nil || d.Utilization == nil || len(d.Solves) == 0 {
		t.Fatalf("incomplete report: %+v", d)
	}
	// The recorder's final solve certificate must agree with the solver.
	cert, ok := rec.LastCertificate()
	if !ok {
		t.Fatal("no certificate recorded")
	}
	if int(cert.Incumbent) != res.Schedule.Makespan {
		t.Errorf("certificate incumbent %g != makespan %d", cert.Incumbent, res.Schedule.Makespan)
	}
}
