package report

import (
	"fmt"
	"html"
	"math"
	"strconv"
	"strings"

	"hilp/internal/core"
)

// Chart geometry shared by every SVG. Width is a viewBox unit; the CSS
// scales charts to the container, so these are aspect ratios, not pixels.
const (
	chartW   = 900
	leftPad  = 110
	rightPad = 16
)

// Sequential blue ramp (light→dark) for magnitude encoding: utilization
// fractions map onto it. Values are data, not theme, so the hexes are
// inlined; a hairline ring keeps the light end visible on both surfaces.
var seqRamp = []string{
	"#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
	"#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281", "#0d366b",
}

// seriesColor returns the categorical CSS variable for index i. Categorical
// hues are assigned in fixed slot order and never cycled: indices past the
// eighth fold into the neutral "other" color.
func seriesColor(i int) string {
	if i >= 0 && i < 8 {
		return fmt.Sprintf("var(--series-%d)", i+1)
	}
	return "var(--fold)"
}

// rampColor maps a utilization fraction in [0,1] onto the sequential ramp.
func rampColor(frac float64) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return seqRamp[int(math.Round(frac*float64(len(seqRamp)-1)))]
}

// num formats an SVG coordinate with fixed precision (deterministic).
func num(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func esc(s string) string { return html.EscapeString(s) }

// niceStep picks a 1/2/5×10^k tick step so that span/step stays near n.
func niceStep(span float64, n int) float64 {
	if span <= 0 || n <= 0 {
		return 1
	}
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	for _, m := range []float64{1, 2, 5, 10} {
		if raw <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// svgOpen starts an accessible, container-scaled SVG.
func svgOpen(b *strings.Builder, w, h float64, label string) {
	fmt.Fprintf(b, `<svg viewBox="0 0 %s %s" role="img" aria-label="%s" style="width:100%%;height:auto;display:block">`,
		num(w), num(h), esc(label))
}

// xTicks renders vertical gridlines and bottom tick labels for a linear
// x-axis spanning [0, max] data units over [x0, x0+plotW].
func xTicks(b *strings.Builder, x0, plotW, yTop, yBottom, max float64, format func(float64) string) {
	step := niceStep(max, 6)
	for v := 0.0; v <= max+1e-9; v += step {
		x := x0 + v/max*plotW
		fmt.Fprintf(b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="var(--grid)" stroke-width="1"/>`,
			num(x), num(yTop), num(x), num(yBottom))
		fmt.Fprintf(b, `<text x="%s" y="%s" text-anchor="middle" class="tick">%s</text>`,
			num(x), num(yBottom+14), esc(format(v)))
	}
}

// timelineSVG renders the schedule as a Gantt chart: one row per device
// group, one rounded bar per phase, colored by application.
func timelineSVG(t *Timeline) string {
	const rowH, rowGap, topPad, axisH = 26.0, 8.0, 10.0, 30.0
	if t.Makespan == 0 || len(t.Rows) == 0 {
		return `<p class="empty">empty schedule</p>`
	}
	plotW := float64(chartW - leftPad - rightPad)
	h := topPad + float64(len(t.Rows))*(rowH+rowGap) + axisH
	ms := float64(t.Makespan)
	x := func(v float64) float64 { return leftPad + v/ms*plotW }
	rowY := func(r int) float64 { return topPad + float64(r)*(rowH+rowGap) }

	var b strings.Builder
	svgOpen(&b, chartW, h, "schedule timeline")
	xTicks(&b, leftPad, plotW, topPad, rowY(len(t.Rows)-1)+rowH, ms, func(v float64) string {
		return strconv.FormatFloat(v, 'g', -1, 64)
	})
	for r, name := range t.Rows {
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end" class="rowlabel">%s</text>`,
			num(leftPad-8), num(rowY(r)+rowH/2+4), esc(name))
	}
	for _, s := range t.Segments {
		if s.Duration == 0 {
			continue
		}
		secs := float64(s.Duration) * t.StepSec
		title := fmt.Sprintf("%s → %s: steps %d–%d (%s s)", s.Task, s.Label, s.Start, s.Start+s.Duration,
			strconv.FormatFloat(secs, 'g', 4, 64))
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" rx="3" fill="%s" stroke="var(--surface-1)" stroke-width="2"><title>%s</title></rect>`,
			num(x(float64(s.Start))), num(rowY(s.Row)), num(float64(s.Duration)/ms*plotW), num(rowH),
			seriesColor(s.App), esc(title))
	}
	fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle" class="axistitle">time steps (1 step = %s s)</text>`,
		num(leftPad+plotW/2), num(h-2), esc(strconv.FormatFloat(t.StepSec, 'g', -1, 64)))
	b.WriteString(`</svg>`)
	return b.String()
}

// convergenceSVG renders one solve's incumbent and bound trajectories as
// step-after lines against the solver's iteration coordinate. Restart events
// become dashed vertical markers; temperature events appear only in the data
// table (a different unit does not share this axis).
func convergenceSVG(s Solve) string {
	const w, h = 440.0, 190.0
	const lp, rp, tp, bp = 52.0, 12.0, 10.0, 30.0
	type pt struct {
		iter  int
		value float64
	}
	var inc, bnd []pt
	var restarts []int
	maxIter := 1
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range s.Events {
		if e.Iter > maxIter {
			maxIter = e.Iter
		}
		switch e.Kind {
		case "incumbent":
			inc = append(inc, pt{e.Iter, e.Value})
		case "bound":
			bnd = append(bnd, pt{e.Iter, e.Value})
		case "restart":
			restarts = append(restarts, e.Iter)
		default:
			continue
		}
		if e.Kind == "incumbent" || e.Kind == "bound" {
			lo, hi = math.Min(lo, e.Value), math.Max(hi, e.Value)
		}
	}
	if len(inc) == 0 && len(bnd) == 0 {
		return ""
	}
	if hi == lo {
		hi, lo = hi+1, lo-1
	}
	pad := (hi - lo) * 0.08
	lo, hi = lo-pad, hi+pad
	plotW, plotH := w-lp-rp, h-tp-bp
	x := func(it int) float64 { return lp + float64(it)/float64(maxIter)*plotW }
	y := func(v float64) float64 { return tp + (hi-v)/(hi-lo)*plotH }

	var b strings.Builder
	svgOpen(&b, w, h, "convergence of "+s.Solver)
	// Horizontal gridlines with value labels.
	step := niceStep(hi-lo, 4)
	for v := math.Ceil(lo/step) * step; v <= hi+1e-9; v += step {
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="var(--grid)" stroke-width="1"/>`,
			num(lp), num(y(v)), num(w-rp), num(y(v)))
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end" class="tick">%s</text>`,
			num(lp-5), num(y(v)+3), esc(strconv.FormatFloat(v, 'g', 4, 64)))
	}
	fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle" class="tick">0</text>`, num(lp), num(h-bp+14))
	fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle" class="tick">%d</text>`, num(w-rp), num(h-bp+14), maxIter)
	fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle" class="axistitle">iterations</text>`, num(lp+plotW/2), num(h-2))
	for _, r := range restarts {
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="var(--grid)" stroke-width="1" stroke-dasharray="3 3"><title>restart at iteration %d</title></line>`,
			num(x(r)), num(tp), num(x(r)), num(h-bp), r)
	}
	series := func(pts []pt, color, name string) {
		if len(pts) == 0 {
			return
		}
		var path strings.Builder
		fmt.Fprintf(&path, "M%s %s", num(x(pts[0].iter)), num(y(pts[0].value)))
		for i := 1; i < len(pts); i++ {
			fmt.Fprintf(&path, " H%s V%s", num(x(pts[i].iter)), num(y(pts[i].value)))
		}
		fmt.Fprintf(&path, " H%s", num(x(maxIter)))
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`, path.String(), color)
		for _, p := range pts {
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s" stroke="var(--surface-1)" stroke-width="1.5"><title>%s %s at iteration %d</title></circle>`,
				num(x(p.iter)), num(y(p.value)), color, esc(name), esc(strconv.FormatFloat(p.value, 'g', 6, 64)), p.iter)
		}
	}
	series(bnd, "var(--series-2)", "bound")
	series(inc, "var(--series-1)", "incumbent")
	b.WriteString(`</svg>`)
	return b.String()
}

// utilizationSVG renders per-resource consumption as heat rows: time on the
// x-axis, one row per resource, color depth encoding the utilization
// fraction. Adjacent equal-valued steps merge into one rectangle.
func utilizationSVG(u *core.UtilizationReport) string {
	const rowH, rowGap, topPad, axisH = 24.0, 6.0, 8.0, 30.0
	if u.Steps == 0 || len(u.Resources) == 0 {
		return `<p class="empty">no resource usage</p>`
	}
	plotW := float64(chartW - leftPad - rightPad)
	legendH := 34.0
	h := topPad + float64(len(u.Resources))*(rowH+rowGap) + axisH + legendH
	ms := float64(u.Steps)

	var b strings.Builder
	svgOpen(&b, chartW, h, "resource utilization heat rows")
	bottom := topPad + float64(len(u.Resources))*(rowH+rowGap) - rowGap
	xTicks(&b, leftPad, plotW, topPad, bottom, ms, func(v float64) string {
		return strconv.FormatFloat(v, 'g', -1, 64)
	})
	for r, res := range u.Resources {
		yTop := topPad + float64(r)*(rowH+rowGap)
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end" class="rowlabel">%s</text>`,
			num(leftPad-8), num(yTop+rowH/2+4), esc(res.Name))
		if res.Capacity <= 0 {
			continue
		}
		// Run-length merge equal consecutive values into single rects.
		for start := 0; start < len(res.Series); {
			end := start + 1
			for end < len(res.Series) && res.Series[end] == res.Series[start] {
				end++
			}
			v := res.Series[start]
			if v > 0 {
				frac := v / res.Capacity
				title := fmt.Sprintf("%s: steps %d–%d, %s of %s (%.1f%%)", res.Name, start, end,
					strconv.FormatFloat(v, 'g', 4, 64), strconv.FormatFloat(res.Capacity, 'g', 4, 64), 100*frac)
				fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s" stroke="var(--border)" stroke-width="0.5"><title>%s</title></rect>`,
					num(leftPad+float64(start)/ms*plotW), num(yTop), num(float64(end-start)/ms*plotW), num(rowH),
					rampColor(frac), esc(title))
			}
			start = end
		}
	}
	fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle" class="axistitle">time steps</text>`,
		num(leftPad+plotW/2), num(bottom+axisH-2))
	// Ramp legend: 0% → 100% of capacity.
	ly := h - legendH + 14
	sw := 14.0
	fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end" class="tick">0%%</text>`, num(leftPad-6), num(ly+10))
	for i, c := range seqRamp {
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="12" fill="%s" stroke="var(--border)" stroke-width="0.5"/>`,
			num(leftPad+float64(i)*sw), num(ly), num(sw), c)
	}
	fmt.Fprintf(&b, `<text x="%s" y="%s" class="tick">100%% of capacity</text>`,
		num(leftPad+float64(len(seqRamp))*sw+6), num(ly+10))
	b.WriteString(`</svg>`)
	return b.String()
}

// groupsSVG renders device-group occupancy as a single-series horizontal bar
// chart with direct value labels (one series, so no legend).
func groupsSVG(u *core.UtilizationReport) string {
	const rowH, rowGap, topPad = 18.0, 8.0, 6.0
	if len(u.Groups) == 0 {
		return ""
	}
	plotW := float64(chartW - leftPad - rightPad - 60)
	h := topPad + float64(len(u.Groups))*(rowH+rowGap)
	var b strings.Builder
	svgOpen(&b, chartW, h, "device occupancy")
	for g, gr := range u.Groups {
		yTop := topPad + float64(g)*(rowH+rowGap)
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end" class="rowlabel">%s</text>`,
			num(leftPad-8), num(yTop+rowH/2+4), esc(gr.Name))
		w := gr.BusyFrac * plotW
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" rx="3" fill="var(--series-1)"><title>%s busy %d of %d steps</title></rect>`,
			num(leftPad), num(yTop), num(w), num(rowH), esc(gr.Name), gr.BusySteps, u.Steps)
		fmt.Fprintf(&b, `<text x="%s" y="%s" class="vallabel">%.0f%%</text>`,
			num(leftPad+w+6), num(yTop+rowH/2+4), 100*gr.BusyFrac)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// mixMark describes the color+shape encoding of one accelerator-mix class.
// Shape is the secondary channel: identity never rides on hue alone, and the
// categorical slots stay within the all-pairs-validated first three (the
// cpu-only baseline class wears neutral ink, not a series slot).
type mixMark struct {
	color string
	shape string // circle, square, triangle, diamond
}

var mixMarks = map[string]mixMark{
	"cpu-only":      {"var(--fold)", "circle"},
	"gpu-dominated": {"var(--series-1)", "square"},
	"dsa-dominated": {"var(--series-2)", "triangle"},
	"mixed":         {"var(--series-3)", "diamond"},
}

// drawMark emits one scatter marker centered at (x, y).
func drawMark(b *strings.Builder, m mixMark, x, y float64, title string) {
	const r = 5.0
	switch m.shape {
	case "square":
		fmt.Fprintf(b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s" stroke="var(--surface-1)" stroke-width="1.5">`,
			num(x-r+1), num(y-r+1), num(2*r-2), num(2*r-2), m.color)
	case "triangle":
		fmt.Fprintf(b, `<path d="M%s %s L%s %s L%s %s Z" fill="%s" stroke="var(--surface-1)" stroke-width="1.5">`,
			num(x), num(y-r), num(x+r), num(y+r-1), num(x-r), num(y+r-1), m.color)
	case "diamond":
		fmt.Fprintf(b, `<path d="M%s %s L%s %s L%s %s L%s %s Z" fill="%s" stroke="var(--surface-1)" stroke-width="1.5">`,
			num(x), num(y-r-1), num(x+r+1), num(y), num(x), num(y+r+1), num(x-r-1), num(y), m.color)
	default:
		fmt.Fprintf(b, `<circle cx="%s" cy="%s" r="%s" fill="%s" stroke="var(--surface-1)" stroke-width="1.5">`,
			num(x), num(y), num(r), m.color)
	}
	fmt.Fprintf(b, `<title>%s</title>`, esc(title))
	switch m.shape {
	case "circle":
		b.WriteString(`</circle>`)
	case "square":
		b.WriteString(`</rect>`)
	default:
		b.WriteString(`</path>`)
	}
}

// paretoSVG renders the sweep as an area/speedup scatter with the Pareto
// front traced through it.
func paretoSVG(sw *Sweep) string {
	const w, h = 900.0, 380.0
	const lp, rp, tp, bp = 64.0, 16.0, 12.0, 40.0
	maxArea, maxSpeed := 0.0, 0.0
	for _, p := range sw.Points {
		if p.Err != "" {
			continue
		}
		maxArea = math.Max(maxArea, p.AreaMM2)
		maxSpeed = math.Max(maxSpeed, p.Speedup)
	}
	if maxArea == 0 || maxSpeed == 0 {
		return `<p class="empty">no successful sweep points</p>`
	}
	maxArea, maxSpeed = maxArea*1.05, maxSpeed*1.08
	plotW, plotH := w-lp-rp, h-tp-bp
	x := func(a float64) float64 { return lp + a/maxArea*plotW }
	y := func(s float64) float64 { return tp + (maxSpeed-s)/maxSpeed*plotH }

	var b strings.Builder
	svgOpen(&b, w, h, "design-space sweep: speedup versus area")
	xTicks(&b, lp, plotW, tp, h-bp, maxArea, func(v float64) string {
		return strconv.FormatFloat(v, 'g', 4, 64)
	})
	ystep := niceStep(maxSpeed, 5)
	for v := 0.0; v <= maxSpeed+1e-9; v += ystep {
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="var(--grid)" stroke-width="1"/>`,
			num(lp), num(y(v)), num(w-rp), num(y(v)))
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end" class="tick">%s</text>`,
			num(lp-6), num(y(v)+3), esc(strconv.FormatFloat(v, 'g', 4, 64)))
	}
	fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle" class="axistitle">area (mm²)</text>`, num(lp+plotW/2), num(h-4))
	fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle" class="axistitle" transform="rotate(-90 14 %s)">speedup</text>`,
		num(14.0), num(tp+plotH/2), num(tp+plotH/2))

	// Pareto front: dashed trace through the non-dominated points.
	var front []SweepPoint
	for _, p := range sw.Points {
		if p.OnFront {
			front = append(front, p)
		}
	}
	if len(front) > 1 {
		var path strings.Builder
		for i, p := range front {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%s %s ", cmd, num(x(p.AreaMM2)), num(y(p.Speedup)))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="var(--text-secondary)" stroke-width="1.5" stroke-dasharray="5 4"/>`,
			strings.TrimSpace(path.String()))
	}
	for _, p := range sw.Points {
		if p.Err != "" {
			continue
		}
		m, ok := mixMarks[p.Mix]
		if !ok {
			m = mixMark{"var(--fold)", "circle"}
		}
		title := fmt.Sprintf("%s: %.2f× @ %.1f mm² (%s)", p.Label, p.Speedup, p.AreaMM2, p.Mix)
		if p.OnFront {
			title += ", Pareto-optimal"
		}
		drawMark(&b, m, x(p.AreaMM2), y(p.Speedup), title)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// legendChip renders one inline legend entry (mark + label) as a tiny SVG.
func legendChip(m mixMark, label string) string {
	var b strings.Builder
	b.WriteString(`<span class="chip"><svg viewBox="0 0 14 14" width="14" height="14" aria-hidden="true">`)
	drawMark(&b, m, 7, 7, label)
	b.WriteString(`</svg> ` + esc(label) + `</span>`)
	return b.String()
}
