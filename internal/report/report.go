// Package report assembles solver flight-recorder traces, schedule
// utilization accounting, and design-space sweep results into one
// self-contained HTML run report (inline SVG, no external assets) plus a
// machine-readable JSON twin.
//
// Reports are deterministic: charts and tables are derived only from
// schedule steps, solver iteration counts, and objective values — never
// from wall-clock timestamps — so two runs with the same seed produce
// byte-identical files.
package report

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"hilp/internal/core"
	"hilp/internal/dse"
	"hilp/internal/obs"
	"hilp/internal/scheduler"
)

// Stat is one hero tile in the report header.
type Stat struct {
	Label string `json:"label"`
	Value string `json:"value"`
}

// Segment is one scheduled phase on the timeline.
type Segment struct {
	Task     string `json:"task"`
	App      int    `json:"app"`
	Row      int    `json:"row"` // index into Timeline.Rows
	Start    int    `json:"start"`
	Duration int    `json:"duration"`
	Label    string `json:"label"` // placement option, e.g. "gpu@765MHz"
}

// Timeline is the schedule rendered as device rows over time steps.
type Timeline struct {
	Rows     []string  `json:"rows"` // device-group names
	Apps     []string  `json:"apps"` // application names, indexed by Segment.App
	StepSec  float64   `json:"stepSec"`
	Makespan int       `json:"makespan"` // steps
	Segments []Segment `json:"segments"`
}

// SolveEvent is one convergence observation, projected from the flight
// recorder without its wall-clock timestamp (Iter is the deterministic
// x-coordinate).
type SolveEvent struct {
	Kind  string  `json:"kind"` // incumbent, bound, temperature, restart
	Iter  int     `json:"iter"`
	Value float64 `json:"value"`
}

// Certificate is a solve's final solution-quality claim.
type Certificate struct {
	Incumbent float64 `json:"incumbent"`
	Bound     float64 `json:"bound"`
	Proven    bool    `json:"proven"`
	Gap       float64 `json:"gap"`
}

// Solve is one recorded solver run: its convergence events and gap
// certificate.
type Solve struct {
	Solver      string       `json:"solver"`
	Events      []SolveEvent `json:"events"`
	Certificate *Certificate `json:"certificate,omitempty"`
}

// SweepPoint is one evaluated SoC of a design-space sweep.
type SweepPoint struct {
	Label   string  `json:"label"`
	AreaMM2 float64 `json:"areaMM2"`
	Speedup float64 `json:"speedup"`
	WLP     float64 `json:"wlp"`
	Gap     float64 `json:"gap"`
	Mix     string  `json:"mix"`
	OnFront bool    `json:"onFront"`
	Err     string  `json:"error,omitempty"`
}

// Sweep is the design-space section of a report.
type Sweep struct {
	Points []SweepPoint `json:"points"`
	// Hypervolume is measured against (RefArea, 0): the area dominated by
	// the Pareto front, the sweep's scalar quality figure.
	Hypervolume float64 `json:"hypervolume"`
	RefArea     float64 `json:"refAreaMM2"`
}

// Data is everything a run report renders. Sections left nil are omitted
// from both the HTML and the JSON twin.
type Data struct {
	Title       string                  `json:"title"`
	Subtitle    string                  `json:"subtitle,omitempty"`
	Summary     []Stat                  `json:"summary,omitempty"`
	Timeline    *Timeline               `json:"timeline,omitempty"`
	Utilization *core.UtilizationReport `json:"utilization,omitempty"`
	Solves      []Solve                 `json:"solves,omitempty"`
	Sweep       *Sweep                  `json:"sweep,omitempty"`
}

// New starts an empty report.
func New(title, subtitle string) *Data {
	return &Data{Title: title, Subtitle: subtitle}
}

// AddStat appends a hero tile.
func (d *Data) AddStat(label, value string) {
	d.Summary = append(d.Summary, Stat{Label: label, Value: value})
}

// AddSchedule fills the timeline and utilization sections from a solved
// instance. The utilization accounter independently re-validates the
// schedule, so an infeasible one is an error here too.
func (d *Data) AddSchedule(inst *core.Instance, s scheduler.Schedule) error {
	util, err := inst.AccountUtilization(s)
	if err != nil {
		return err
	}
	d.Utilization = util

	p := inst.Problem
	t := &Timeline{StepSec: inst.StepSec, Makespan: s.Makespan}
	t.Rows = make([]string, p.NumGroups())
	for _, c := range inst.Clusters {
		if t.Rows[c.Group] == "" {
			name := c.Name
			if c.Kind == core.GPUCluster {
				name = "gpu"
			}
			t.Rows[c.Group] = name
		}
	}
	numApps := 0
	for i := range p.Tasks {
		if p.Tasks[i].App+1 > numApps {
			numApps = p.Tasks[i].App + 1
		}
	}
	t.Apps = make([]string, numApps)
	for a := range t.Apps {
		if a < len(inst.Workload.Apps) {
			t.Apps[a] = inst.Workload.Apps[a].Bench.Abbrev
		} else {
			t.Apps[a] = fmt.Sprintf("app %d", a)
		}
	}
	for i := range p.Tasks {
		o := &p.Tasks[i].Options[s.Option[i]]
		label := o.Label
		if label == "" {
			label = inst.Clusters[o.Cluster].Name
		}
		t.Segments = append(t.Segments, Segment{
			Task:     p.Tasks[i].Name,
			App:      p.Tasks[i].App,
			Row:      p.ClusterGroup[o.Cluster],
			Start:    s.Start[i],
			Duration: o.Duration,
			Label:    label,
		})
	}
	sort.Slice(t.Segments, func(a, b int) bool {
		if t.Segments[a].Row != t.Segments[b].Row {
			return t.Segments[a].Row < t.Segments[b].Row
		}
		if t.Segments[a].Start != t.Segments[b].Start {
			return t.Segments[a].Start < t.Segments[b].Start
		}
		return t.Segments[a].Task < t.Segments[b].Task
	})
	d.Timeline = t
	return nil
}

// AddRecorder projects the recorder's solve records into the report,
// dropping wall-clock timestamps so output stays deterministic.
func (d *Data) AddRecorder(rec *obs.Recorder) {
	for _, r := range rec.Snapshot() {
		s := Solve{Solver: r.Solver}
		for _, e := range r.Events {
			s.Events = append(s.Events, SolveEvent{Kind: e.Kind.String(), Iter: e.Iter, Value: e.Value})
		}
		if r.Certificate != nil {
			s.Certificate = &Certificate{
				Incumbent: r.Certificate.Incumbent,
				Bound:     r.Certificate.Bound,
				Proven:    r.Certificate.Proven,
				Gap:       r.Certificate.Gap(),
			}
		}
		d.Solves = append(d.Solves, s)
	}
}

// AddSweep fills the sweep section: all evaluated points, the Pareto front
// flagged in place, and the front's hypervolume against (max area, 0).
func (d *Data) AddSweep(points []dse.Point) {
	sw := &Sweep{}
	front := map[string]bool{}
	for _, p := range dse.ParetoFront(points) {
		front[p.Label] = true
	}
	for _, p := range points {
		sp := SweepPoint{
			Label:   p.Label,
			AreaMM2: p.AreaMM2,
			Speedup: p.Speedup,
			WLP:     p.WLP,
			Gap:     p.Gap,
			Mix:     p.Mix.String(),
			OnFront: p.Err == nil && front[p.Label],
		}
		if p.Err != nil {
			sp.Err = p.Err.Error()
		}
		if p.Err == nil && p.AreaMM2 > sw.RefArea {
			sw.RefArea = p.AreaMM2
		}
		sw.Points = append(sw.Points, sp)
	}
	sw.Hypervolume = dse.Hypervolume(points, sw.RefArea, 0)
	d.Sweep = sw
}

// FromResult builds a report for one complete HILP evaluation: hero stats,
// timeline, utilization, and (when rec is non-nil) convergence traces.
func FromResult(title string, res *core.Result, rec *obs.Recorder) (*Data, error) {
	d := New(title, fmt.Sprintf("workload %s on %s (%.1f mm², %g s steps)",
		res.Instance.Workload.Name, res.Instance.Spec.Label(), res.Instance.Spec.AreaMM2(), res.StepSec))
	d.AddStat("makespan", fmt.Sprintf("%.4g s", res.MakespanSec))
	if res.Speedup > 0 {
		d.AddStat("speedup", fmt.Sprintf("%.2f×", res.Speedup))
	}
	d.AddStat("avg WLP", fmt.Sprintf("%.2f", res.WLP))
	d.AddStat("gap", fmt.Sprintf("%.1f%%", 100*res.Gap))
	d.AddStat("method", res.Sched.Method)
	if err := d.AddSchedule(res.Instance, res.Sched.Schedule); err != nil {
		return nil, err
	}
	if rec != nil {
		d.AddRecorder(rec)
	}
	return d, nil
}

// FromSchedule builds a report for a directly solved instance (custom
// models), without the workload/speedup framing of FromResult.
func FromSchedule(title string, inst *core.Instance, res scheduler.Result, rec *obs.Recorder) (*Data, error) {
	d := New(title, fmt.Sprintf("%d tasks on %d clusters (%g s steps)",
		len(inst.Problem.Tasks), len(inst.Clusters), inst.StepSec))
	d.AddStat("makespan", fmt.Sprintf("%.4g s", float64(res.Schedule.Makespan)*inst.StepSec))
	d.AddStat("avg WLP", fmt.Sprintf("%.2f", res.Schedule.WLP(inst.Problem)))
	d.AddStat("gap", fmt.Sprintf("%.1f%%", 100*res.Gap()))
	d.AddStat("method", res.Method)
	if err := d.AddSchedule(inst, res.Schedule); err != nil {
		return nil, err
	}
	if rec != nil {
		d.AddRecorder(rec)
	}
	return d, nil
}

// JSONPath returns the path of the JSON twin written alongside an HTML
// report: the .html extension swapped for .json (or .json appended).
func JSONPath(htmlPath string) string {
	if strings.HasSuffix(htmlPath, ".html") {
		return strings.TrimSuffix(htmlPath, ".html") + ".json"
	}
	return htmlPath + ".json"
}

// Write renders the report to htmlPath and its machine-readable twin to
// JSONPath(htmlPath), returning the twin's path.
func Write(htmlPath string, d *Data) (string, error) {
	html, err := d.HTML()
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(htmlPath, html, 0o644); err != nil {
		return "", err
	}
	js, err := d.JSON()
	if err != nil {
		return "", err
	}
	jsonPath := JSONPath(htmlPath)
	if err := os.WriteFile(jsonPath, js, 0o644); err != nil {
		return "", err
	}
	return jsonPath, nil
}
