// Package dag provides a builder for arbitrary phase-dependency graphs, the
// paper's §VII extension (Eq. 9): instead of the linear
// setup-compute-teardown chain, applications may have fork-join structure,
// start-start initiation intervals, and any acyclic dependency shape. Graphs
// compile into core.CustomModel tasks.
package dag

import (
	"fmt"
	"math"

	"hilp/internal/core"
	"hilp/internal/scheduler"
)

// Graph is a named DAG of phases under construction. The zero value is not
// usable; call New.
type Graph struct {
	name  string
	nodes []node
	index map[string]int
	err   error // first construction error, reported by Tasks
}

type node struct {
	name    string
	app     int
	phase   int
	options []core.CustomOption
	deps    []core.CustomDep
}

// New returns an empty graph.
func New(name string) *Graph {
	return &Graph{name: name, index: map[string]int{}}
}

// Node adds a phase with its placement options. App tags the phase with the
// application it belongs to (for WLP accounting). Returns the graph for
// chaining.
func (g *Graph) Node(name string, app int, options ...core.CustomOption) *Graph {
	if g.err != nil {
		return g
	}
	if name == "" {
		g.err = fmt.Errorf("dag: empty node name")
		return g
	}
	if _, dup := g.index[name]; dup {
		g.err = fmt.Errorf("dag: duplicate node %q", name)
		return g
	}
	if len(options) == 0 {
		g.err = fmt.Errorf("dag: node %q has no options", name)
		return g
	}
	g.index[name] = len(g.nodes)
	g.nodes = append(g.nodes, node{name: name, app: app, phase: len(g.nodes), options: options})
	return g
}

// Edge adds a finish-start dependency from -> to. Returns the graph for
// chaining.
func (g *Graph) Edge(from, to string) *Graph {
	return g.EdgeLag(from, to, scheduler.FinishStart, 0)
}

// EdgeLag adds a dependency from -> to with explicit timing semantics: to
// may start only kind(from) + lagSec (the paper's initiation-interval
// extension uses StartStart lags).
func (g *Graph) EdgeLag(from, to string, kind scheduler.DepKind, lagSec float64) *Graph {
	if g.err != nil {
		return g
	}
	ti, ok := g.index[to]
	if !ok {
		g.err = fmt.Errorf("dag: edge to unknown node %q", to)
		return g
	}
	if _, ok := g.index[from]; !ok {
		g.err = fmt.Errorf("dag: edge from unknown node %q", from)
		return g
	}
	if lagSec < 0 {
		g.err = fmt.Errorf("dag: negative lag %g on edge %s->%s", lagSec, from, to)
		return g
	}
	g.nodes[ti].deps = append(g.nodes[ti].deps, core.CustomDep{Task: from, Kind: kind, LagSec: lagSec})
	return g
}

// Err returns the first construction error, if any.
func (g *Graph) Err() error { return g.err }

// Tasks compiles the graph into CustomModel tasks. Cycle detection happens
// when the model is built (scheduler validation).
func (g *Graph) Tasks() ([]core.CustomTask, error) {
	if g.err != nil {
		return nil, g.err
	}
	tasks := make([]core.CustomTask, len(g.nodes))
	for i, n := range g.nodes {
		tasks[i] = core.CustomTask{
			Name:    n.name,
			App:     n.app,
			Phase:   n.phase,
			Deps:    n.deps,
			Options: n.options,
		}
	}
	return tasks, nil
}

// CriticalPathSec returns the longest dependency chain in seconds when every
// node takes its fastest option, honoring edge lags. It returns an error for
// cyclic graphs.
func (g *Graph) CriticalPathSec() (float64, error) {
	if g.err != nil {
		return 0, g.err
	}
	n := len(g.nodes)
	minSec := make([]float64, n)
	for i, nd := range g.nodes {
		minSec[i] = math.Inf(1)
		for _, o := range nd.options {
			if o.Sec < minSec[i] {
				minSec[i] = o.Sec
			}
		}
	}
	// Longest path by memoized DFS with cycle detection.
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int, n)
	finish := make([]float64, n)
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case inStack:
			return fmt.Errorf("dag: cycle through %q", g.nodes[i].name)
		case done:
			return nil
		}
		state[i] = inStack
		start := 0.0
		for _, d := range g.nodes[i].deps {
			pi := g.index[d.Task]
			if err := visit(pi); err != nil {
				return err
			}
			var e float64
			switch d.Kind {
			case scheduler.FinishStart:
				e = finish[pi] + d.LagSec
			case scheduler.StartStart:
				e = finish[pi] - minSec[pi] + d.LagSec
			}
			if e > start {
				start = e
			}
		}
		finish[i] = start + minSec[i]
		state[i] = done
		return nil
	}
	best := 0.0
	for i := range g.nodes {
		if err := visit(i); err != nil {
			return 0, err
		}
		if finish[i] > best {
			best = finish[i]
		}
	}
	return best, nil
}

// Model wraps the graph into a CustomModel on the given clusters and
// constraints.
func (g *Graph) Model(clusters []core.CustomCluster, powerW, bandwidthGBs float64) (core.CustomModel, error) {
	tasks, err := g.Tasks()
	if err != nil {
		return core.CustomModel{}, err
	}
	return core.CustomModel{
		Name:         g.name,
		Clusters:     clusters,
		Tasks:        tasks,
		PowerBudgetW: powerW,
		BandwidthGBs: bandwidthGBs,
	}, nil
}
