package dag

import (
	"fmt"

	"hilp/internal/core"
	"hilp/internal/scheduler"
)

// SDAConfig parameterizes the paper's §VII Streaming-Dataflow Application
// case study. Each instance (sample) runs the Fig. 9 graph: three data
// sources DS1-DS3 pinned to dedicated DSAs feed a Data Fusion phase on the
// CPU, which fans out to three compute phases C1-C3 (CPU or GPU) that join
// in a Post Processing phase (CPU or GPU).
type SDAConfig struct {
	// Instances is the number of samples in flight (>= 1).
	Instances int
	// CPUSpeedup scales CPU performance (1 = baseline, 2 = the paper's
	// "2x faster CPU" what-if). 0 selects 1.
	CPUSpeedup float64
	// GPUSMs sizes the GPU (8 = baseline, 16 = the paper's "double the SMs"
	// what-if). 0 selects 8.
	GPUSMs int
	// SampleIntervalSec, when positive, imposes a start-start initiation
	// interval between consecutive samples' data sources (§VII "other
	// extensions").
	SampleIntervalSec float64
}

// Baseline phase execution times in seconds on the (c1,g8,d3^1) baseline
// SoC. The paper shows these only graphically in Fig. 9, so the values here
// are estimates chosen to reproduce the figure's story: the baseline SoC
// cannot overlap samples, while either a 2x CPU or a 2x GPU can (see
// DESIGN.md, substitutions).
const (
	sdaDSSec    = 2.0 // DS1-DS3 on their dedicated DSA
	sdaDFSec    = 1.0 // data fusion, CPU only
	sdaCSecCPU  = 3.0 // C1-C3 on the baseline CPU
	sdaCSecGPU  = 1.5 // C1-C3 on the baseline 8-SM GPU
	sdaPPSecCPU = 2.0 // post-processing on the baseline CPU
	sdaPPSecGPU = 1.0 // post-processing on the baseline 8-SM GPU
)

// SDAPowerPerPhaseW is the nominal active power per busy unit used when an
// SDA model is power-constrained.
const SDAPowerPerPhaseW = 2.0

// SDA builds the streaming-dataflow workload as a custom model. Phase
// pinning is expressed through option presence, exactly as the paper encodes
// E_cap: DS phases list only their DSA, DF only the CPU, C and PP phases
// both CPU and GPU.
func SDA(cfg SDAConfig) (core.CustomModel, error) {
	if cfg.Instances <= 0 {
		return core.CustomModel{}, fmt.Errorf("dag: SDA needs >= 1 instance, got %d", cfg.Instances)
	}
	if cfg.CPUSpeedup == 0 {
		cfg.CPUSpeedup = 1
	}
	if cfg.CPUSpeedup < 0 {
		return core.CustomModel{}, fmt.Errorf("dag: negative CPU speedup %g", cfg.CPUSpeedup)
	}
	if cfg.GPUSMs == 0 {
		cfg.GPUSMs = 8
	}
	if cfg.GPUSMs < 0 {
		return core.CustomModel{}, fmt.Errorf("dag: negative GPU SM count %d", cfg.GPUSMs)
	}

	cpu := func(sec float64) float64 { return sec / cfg.CPUSpeedup }
	gpu := func(sec float64) float64 { return sec * 8 / float64(cfg.GPUSMs) }

	g := New(fmt.Sprintf("sda-x%d", cfg.Instances))
	for k := 0; k < cfg.Instances; k++ {
		id := func(phase string) string { return fmt.Sprintf("s%d.%s", k, phase) }
		for i := 1; i <= 3; i++ {
			g.Node(id(fmt.Sprintf("DS%d", i)), k, core.CustomOption{
				Cluster: fmt.Sprintf("dsa%d", i), Sec: sdaDSSec, PowerW: SDAPowerPerPhaseW,
			})
		}
		g.Node(id("DF"), k, core.CustomOption{Cluster: "cpu0", Sec: cpu(sdaDFSec), PowerW: SDAPowerPerPhaseW})
		for i := 1; i <= 3; i++ {
			g.Node(id(fmt.Sprintf("C%d", i)), k,
				core.CustomOption{Cluster: "cpu0", Sec: cpu(sdaCSecCPU), PowerW: SDAPowerPerPhaseW},
				core.CustomOption{Cluster: "gpu0", Sec: gpu(sdaCSecGPU), PowerW: SDAPowerPerPhaseW},
			)
		}
		g.Node(id("PP"), k,
			core.CustomOption{Cluster: "cpu0", Sec: cpu(sdaPPSecCPU), PowerW: SDAPowerPerPhaseW},
			core.CustomOption{Cluster: "gpu0", Sec: gpu(sdaPPSecGPU), PowerW: SDAPowerPerPhaseW},
		)

		for i := 1; i <= 3; i++ {
			g.Edge(id(fmt.Sprintf("DS%d", i)), id("DF"))
			g.Edge(id("DF"), id(fmt.Sprintf("C%d", i)))
			g.Edge(id(fmt.Sprintf("C%d", i)), id("PP"))
		}
		if k > 0 && cfg.SampleIntervalSec > 0 {
			prev := func(phase string) string { return fmt.Sprintf("s%d.%s", k-1, phase) }
			for i := 1; i <= 3; i++ {
				g.EdgeLag(prev(fmt.Sprintf("DS%d", i)), id(fmt.Sprintf("DS%d", i)), scheduler.StartStart, cfg.SampleIntervalSec)
			}
		}
	}

	clusters := []core.CustomCluster{
		{Name: "cpu0"},
		{Name: "gpu0"},
		{Name: "dsa1"}, {Name: "dsa2"}, {Name: "dsa3"},
	}
	return g.Model(clusters, 0, 0)
}
