package dag

import (
	"context"
	"math"
	"testing"

	"hilp/internal/core"
	"hilp/internal/scheduler"
)

func chainGraph() *Graph {
	return New("chain").
		Node("a", 0, core.CustomOption{Cluster: "cpu0", Sec: 2}).
		Node("b", 0, core.CustomOption{Cluster: "cpu0", Sec: 3}).
		Node("c", 0, core.CustomOption{Cluster: "cpu0", Sec: 1}).
		Edge("a", "b").
		Edge("b", "c")
}

func TestGraphBuild(t *testing.T) {
	g := chainGraph()
	tasks, err := g.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("%d tasks, want 3", len(tasks))
	}
	if len(tasks[1].Deps) != 1 || tasks[1].Deps[0].Task != "a" {
		t.Errorf("b deps = %+v, want [a]", tasks[1].Deps)
	}
}

func TestGraphErrors(t *testing.T) {
	if err := New("g").Node("", 0, core.CustomOption{Cluster: "c", Sec: 1}).Err(); err == nil {
		t.Error("accepted empty node name")
	}
	if err := New("g").Node("a", 0, core.CustomOption{Cluster: "c", Sec: 1}).Node("a", 0, core.CustomOption{Cluster: "c", Sec: 1}).Err(); err == nil {
		t.Error("accepted duplicate node")
	}
	if err := New("g").Node("a", 0).Err(); err == nil {
		t.Error("accepted node without options")
	}
	if err := New("g").Node("a", 0, core.CustomOption{Cluster: "c", Sec: 1}).Edge("a", "ghost").Err(); err == nil {
		t.Error("accepted edge to unknown node")
	}
	if err := New("g").Node("a", 0, core.CustomOption{Cluster: "c", Sec: 1}).Node("b", 0, core.CustomOption{Cluster: "c", Sec: 1}).EdgeLag("a", "b", scheduler.FinishStart, -1).Err(); err == nil {
		t.Error("accepted negative lag")
	}
	// Errors are sticky and surface from Tasks.
	g := New("g").Node("a", 0)
	if _, err := g.Tasks(); err == nil {
		t.Error("Tasks ignored construction error")
	}
}

func TestCriticalPathSec(t *testing.T) {
	got, err := chainGraph().CriticalPathSec()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6) > 1e-12 {
		t.Errorf("critical path = %g, want 6", got)
	}

	// Fork-join: a -> {b(4), c(2)} -> d(1): longest chain a(2)+b(4)+d(1)=7.
	fj := New("fj").
		Node("a", 0, core.CustomOption{Cluster: "x", Sec: 2}).
		Node("b", 0, core.CustomOption{Cluster: "x", Sec: 4}).
		Node("c", 0, core.CustomOption{Cluster: "x", Sec: 2}).
		Node("d", 0, core.CustomOption{Cluster: "x", Sec: 1}).
		Edge("a", "b").Edge("a", "c").Edge("b", "d").Edge("c", "d")
	if got, err := fj.CriticalPathSec(); err != nil || math.Abs(got-7) > 1e-12 {
		t.Errorf("fork-join critical path = %g (%v), want 7", got, err)
	}
}

func TestCriticalPathDetectsCycle(t *testing.T) {
	g := New("cyc").
		Node("a", 0, core.CustomOption{Cluster: "x", Sec: 1}).
		Node("b", 0, core.CustomOption{Cluster: "x", Sec: 1}).
		Edge("a", "b").Edge("b", "a")
	if _, err := g.CriticalPathSec(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestCriticalPathWithStartStartLag(t *testing.T) {
	g := New("ss").
		Node("a", 0, core.CustomOption{Cluster: "x", Sec: 10}).
		Node("b", 0, core.CustomOption{Cluster: "y", Sec: 2}).
		EdgeLag("a", "b", scheduler.StartStart, 3)
	got, err := g.CriticalPathSec()
	if err != nil {
		t.Fatal(err)
	}
	// a runs 0-10; b may start at 3, finishing at 5; critical path = 10.
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("critical path = %g, want 10", got)
	}
}

func TestSDABaselineSchedule(t *testing.T) {
	m, err := SDA(SDAConfig{Instances: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Build(0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// DS(2) + DF(1) + {C phases: GPU serializes 3x1.5=4.5 vs CPU 3 each; the
	// optimum overlaps CPU and GPU} + PP. With one CPU and one GPU the
	// C-phase span is min 3 (C on cpu || 2 C's on gpu), then PP >= 1.
	makespanSec := float64(res.Schedule.Makespan) * 0.5
	if makespanSec < 6.5 || makespanSec > 9 {
		t.Errorf("baseline SDA makespan = %g s, want in [6.5, 9]", makespanSec)
	}
	if err := res.Schedule.Validate(inst.Problem); err != nil {
		t.Fatal(err)
	}
}

func TestSDAWhatIfsImprove(t *testing.T) {
	solve := func(cfg SDAConfig) float64 {
		m, err := SDA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := m.Build(0.25, 200)
		if err != nil {
			t.Fatal(err)
		}
		res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1, Effort: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Schedule.Makespan) * 0.25
	}
	base := solve(SDAConfig{Instances: 2})
	fastCPU := solve(SDAConfig{Instances: 2, CPUSpeedup: 2})
	bigGPU := solve(SDAConfig{Instances: 2, GPUSMs: 16})
	if fastCPU >= base {
		t.Errorf("2x CPU did not help: %g vs %g", fastCPU, base)
	}
	if bigGPU >= base {
		t.Errorf("2x GPU did not help: %g vs %g", bigGPU, base)
	}
}

func TestSDAInitiationInterval(t *testing.T) {
	m, err := SDA(SDAConfig{Instances: 2, SampleIntervalSec: 4})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Build(0.5, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1, Effort: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Sample 1's data sources may start no earlier than 4 s after sample 0's.
	for i, task := range inst.Problem.Tasks {
		if task.Name == "s1.DS1" {
			if start := float64(res.Schedule.Start[i]) * 0.5; start < 4 {
				t.Errorf("s1.DS1 starts at %g s, want >= 4", start)
			}
		}
	}
}

func TestSDAValidation(t *testing.T) {
	if _, err := SDA(SDAConfig{Instances: 0}); err == nil {
		t.Error("accepted zero instances")
	}
	if _, err := SDA(SDAConfig{Instances: 1, CPUSpeedup: -1}); err == nil {
		t.Error("accepted negative CPU speedup")
	}
	if _, err := SDA(SDAConfig{Instances: 1, GPUSMs: -4}); err == nil {
		t.Error("accepted negative GPU size")
	}
}
