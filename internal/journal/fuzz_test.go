package journal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"hilp/internal/wire"
)

// FuzzReplay feeds arbitrary bytes in as a segment body: whatever a crashed or
// bit-rotted disk hands back, replay must return records or an error — never
// panic, never over-read.
func FuzzReplay(f *testing.F) {
	// Seed with a well-formed segment so the fuzzer starts from valid frames.
	valid := func(recs ...wire.JournalRecord) []byte {
		dir := f.TempDir()
		j, err := Open(dir, Options{FsyncEvery: 1})
		if err != nil {
			f.Fatal(err)
		}
		for _, r := range recs {
			if err := j.Append(r); err != nil {
				f.Fatal(err)
			}
		}
		j.Close()
		raw, err := os.ReadFile(filepath.Join(dir, segName(1)))
		if err != nil {
			f.Fatal(err)
		}
		return raw
	}
	f.Add(valid())
	f.Add(valid(wire.JournalRecord{Kind: wire.JournalKindJobStart, JobID: "a",
		Start: &wire.JournalJobStart{Total: 3}}))
	f.Add(valid(
		wire.JournalRecord{Kind: wire.JournalKindPoint, JobID: "a",
			Point: &wire.JournalPoint{Index: 0, Point: wire.Point{Speedup: 1.5}}},
		wire.JournalRecord{Kind: wire.JournalKindJobEnd, JobID: "a",
			End: &wire.JournalJobEnd{Status: "done"}},
	))
	// A header followed by a frame whose declared length exceeds the file.
	hdr := make([]byte, segHeaderLen+frameHeaderLen)
	copy(hdr[:4], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], 1<<30)
	f.Add(hdr)
	// A valid frame with a deliberately wrong checksum.
	bad := make([]byte, segHeaderLen+frameHeaderLen+2)
	copy(bad, hdr[:segHeaderLen])
	binary.LittleEndian.PutUint32(bad[segHeaderLen:], 2)
	binary.LittleEndian.PutUint32(bad[segHeaderLen+4:], crc32.Checksum([]byte("no"), castagnoli)+1)
	copy(bad[segHeaderLen+frameHeaderLen:], "{}")
	f.Add(bad)

	f.Fuzz(func(t *testing.T, segment []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), segment, 0o644); err != nil {
			t.Fatal(err)
		}
		man := manifest{Version: FormatVersion, Segments: []string{segName(1)}}
		j := &Journal{dir: dir, man: man}
		if err := j.writeManifestLocked(); err != nil {
			t.Fatal(err)
		}
		var n int
		stats, err := Replay(dir, func(wire.JournalRecord) error {
			n++
			return nil
		})
		if err == nil && stats.Records != n {
			t.Fatalf("stats.Records %d, callback saw %d", stats.Records, n)
		}
		// Whatever replay decided, ReplayJobs must agree and not panic.
		if _, _, err := ReplayJobs(dir); err != nil {
			return
		}
		// And a journal opened over the same bytes must come up appendable
		// unless the damage was real corruption (which Open refuses).
		j2, err := Open(dir, Options{FsyncEvery: 1})
		if err != nil {
			return
		}
		if err := j2.Append(wire.JournalRecord{Kind: wire.JournalKindJobEnd, JobID: "z",
			End: &wire.JournalJobEnd{Status: "done"}}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(dir, func(wire.JournalRecord) error { return nil }); err != nil {
			t.Fatalf("replay after recovery append: %v", err)
		}
	})
}
