package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"hilp/internal/wire"
)

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Segments is the number of distinct segments read; Records the number
	// of records delivered to the callback; Bytes the valid bytes replayed.
	Segments int
	Records  int
	Bytes    int64
	// Duplicates counts records dropped by the monotonic-sequence filter
	// (e.g. a segment listed twice in a crash-interrupted manifest).
	Duplicates int
	// Torn is true when the final segment ended in a torn frame — a record
	// cut mid-write by a crash — which replay drops and Open truncates.
	Torn bool
}

// ErrCorrupt marks corruption that torn-tail tolerance cannot excuse: a bad
// frame in a non-final segment, a bad segment header, or version skew.
var ErrCorrupt = errors.New("journal: corrupt")

// Replay reads the journal in dir and delivers every valid record to fn in
// append order. A missing directory or manifest is an empty journal (zero
// stats, nil error). A torn final record is tolerated and reported in
// Stats.Torn; any other framing damage returns an error wrapping ErrCorrupt.
// Records whose sequence number does not advance are dropped (duplicated
// segments replay once). fn returning an error stops the replay.
func Replay(dir string, fn func(wire.JournalRecord) error) (ReplayStats, error) {
	var stats ReplayStats
	man, err := readManifest(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return stats, nil
		}
		return stats, err
	}
	var lastSeq uint64
	for i, name := range man.Segments {
		last := i == len(man.Segments)-1
		seg, segErr := scanSegment(filepath.Join(dir, name), func(rec wire.JournalRecord) error {
			if rec.Seq <= lastSeq {
				stats.Duplicates++
				return nil
			}
			lastSeq = rec.Seq
			stats.Records++
			return fn(rec)
		})
		stats.Segments++
		stats.Bytes += seg.validBytes
		if segErr != nil {
			if errors.Is(segErr, errStopped) {
				return stats, seg.fnErr
			}
			// Only a torn tail of the FINAL segment is excusable: header
			// damage or version skew is corruption wherever it appears.
			if !last || errors.Is(segErr, ErrCorrupt) {
				return stats, fmt.Errorf("%w: segment %s: %v", ErrCorrupt, name, segErr)
			}
			stats.Torn = true
		}
	}
	return stats, nil
}

// errStopped distinguishes "the callback said stop" from framing damage.
var errStopped = errors.New("journal: replay stopped by callback")

// TailSegment returns the path of the journal's final segment file — the one
// a crash mid-write would tear. The kill-and-recover chaos harness truncates
// it to simulate a torn record; Replay tolerates the damage and Open repairs
// it. Returns os.ErrNotExist (wrapped) when the journal is empty or missing.
func TailSegment(dir string) (string, error) {
	man, err := readManifest(dir)
	if err != nil {
		return "", err
	}
	if len(man.Segments) == 0 {
		return "", fmt.Errorf("journal %s: no segments: %w", dir, os.ErrNotExist)
	}
	return filepath.Join(dir, man.Segments[len(man.Segments)-1]), nil
}

// TearTail truncates n bytes from the journal's final segment, simulating a
// record torn by a crash mid-write (the faults package's kill-and-recover
// harness pairs it with Journal.Abandon). The segment header is never
// damaged — torn-tail tolerance covers incomplete frames, not a destroyed
// segment. A no-op when n <= 0.
func TearTail(dir string, n int) error {
	if n <= 0 {
		return nil
	}
	path, err := TailSegment(dir)
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	keep := fi.Size() - int64(n)
	if keep < segHeaderLen {
		keep = segHeaderLen
	}
	return os.Truncate(path, keep)
}

// segScan is one segment's scan outcome.
type segScan struct {
	// validBytes is the offset just past the last frame that parsed and
	// checksummed; Open truncates the final segment to it.
	validBytes int64
	// fnErr is the callback's error when the scan stopped on errStopped.
	fnErr error
}

// scanSegment reads one segment file, delivering each valid record to fn.
// The returned error is nil for a clean segment, errStopped when fn aborted,
// and a descriptive framing error (torn or corrupt frame, bad header) with
// validBytes marking the last good frame boundary otherwise.
func scanSegment(path string, fn func(wire.JournalRecord) error) (scan segScan, err error) {
	scan = segScan{validBytes: segHeaderLen}
	f, err := os.Open(path)
	if err != nil {
		scan.validBytes = 0
		return scan, err
	}
	defer func() {
		// A close error on the read-only handle is next to impossible, but a
		// replay that reports clean must really have read everything.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing segment: %w", cerr)
		}
	}()
	r := bufio.NewReader(f)

	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		scan.validBytes = 0
		return scan, fmt.Errorf("%w: short segment header: %v", ErrCorrupt, err)
	}
	if [4]byte(hdr[:4]) != segMagic {
		scan.validBytes = 0
		return scan, fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != FormatVersion {
		scan.validBytes = 0
		return scan, fmt.Errorf("%w: segment format version %d, this binary speaks %d", ErrCorrupt, v, FormatVersion)
	}

	var frame [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return scan, nil // clean end of segment
			}
			return scan, fmt.Errorf("torn frame header at offset %d: %v", scan.validBytes, err)
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		want := binary.LittleEndian.Uint32(frame[4:8])
		if n > maxRecordBytes {
			return scan, fmt.Errorf("frame length %d exceeds %d at offset %d", n, maxRecordBytes, scan.validBytes)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return scan, fmt.Errorf("torn frame payload at offset %d: %v", scan.validBytes, err)
		}
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return scan, fmt.Errorf("frame crc mismatch at offset %d (got %08x want %08x)", scan.validBytes, got, want)
		}
		var rec wire.JournalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return scan, fmt.Errorf("frame payload at offset %d: %v", scan.validBytes, err)
		}
		scan.validBytes += int64(frameHeaderLen) + int64(n)
		if err := fn(rec); err != nil {
			scan.fnErr = err
			return scan, errStopped
		}
	}
}

// JobState is one job's progress reconstructed from the journal.
type JobState struct {
	JobID string
	Start *wire.JournalJobStart
	// Points maps input index to the point's effective result record. The
	// first clean record (no error, not cancelled) wins and later duplicates
	// are dropped ("exactly-once result record"); a clean record does replace
	// an earlier non-clean one, so a successful re-solve after a cancelled or
	// failed attempt — a server job retry — supersedes it.
	Points map[int]wire.Point
	// End is non-nil when the job reached a terminal state before the crash.
	End *wire.JournalJobEnd
}

// Terminal reports whether the job finished before the journal stopped.
func (s *JobState) Terminal() bool { return s.End != nil }

// cleanPoint mirrors dse.Resumable without the import: the record completed
// without an error and was not cut short by cancellation.
func cleanPoint(p wire.Point) bool { return p.Error == "" && !p.Cancelled }

// ReplayJobs replays the journal in dir and groups records by job, in
// first-seen order. This is the recovery entry point for hilp-serve and
// hilp-dse: jobs without an End record were interrupted and are candidates
// for resumption.
func ReplayJobs(dir string) ([]*JobState, ReplayStats, error) {
	byID := map[string]*JobState{}
	var order []*JobState
	stats, err := Replay(dir, func(rec wire.JournalRecord) error {
		st := byID[rec.JobID]
		if st == nil {
			st = &JobState{JobID: rec.JobID, Points: map[int]wire.Point{}}
			byID[rec.JobID] = st
			order = append(order, st)
		}
		switch rec.Kind {
		case wire.JournalKindJobStart:
			if st.Start == nil {
				st.Start = rec.Start
			}
		case wire.JournalKindPoint:
			if rec.Point != nil {
				old, dup := st.Points[rec.Point.Index]
				if !dup || (!cleanPoint(old) && cleanPoint(rec.Point.Point)) {
					st.Points[rec.Point.Index] = rec.Point.Point
				}
			}
		case wire.JournalKindJobEnd:
			if st.End == nil {
				st.End = rec.End
			}
		}
		return nil
	})
	return order, stats, err
}
