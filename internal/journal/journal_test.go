package journal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hilp/internal/wire"
)

// testOpts keeps unit tests deterministic: every append syncs, so nothing
// rides on the background flusher's timing.
func testOpts() Options {
	return Options{FsyncEvery: 1, FsyncInterval: time.Hour}
}

func pointRec(job string, idx int, speedup float64) wire.JournalRecord {
	return wire.JournalRecord{
		Kind:  wire.JournalKindPoint,
		JobID: job,
		Point: &wire.JournalPoint{Index: idx, Point: wire.Point{Label: "p", Speedup: speedup}},
	}
}

func appendN(t *testing.T, j *Journal, job string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := j.Append(pointRec(job, i, float64(i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func replayAll(t *testing.T, dir string) ([]wire.JournalRecord, ReplayStats) {
	t.Helper()
	var recs []wire.JournalRecord
	stats, err := Replay(dir, func(r wire.JournalRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, stats
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "job1", 5)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, stats := replayAll(t, dir)
	if len(recs) != 5 || stats.Records != 5 || stats.Torn {
		t.Fatalf("replayed %d records, stats %+v", len(recs), stats)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d seq %d, want %d", i, r.Seq, i+1)
		}
		if r.Version != wire.JournalVersion {
			t.Errorf("record %d version %d, want %d", i, r.Version, wire.JournalVersion)
		}
		if r.Point == nil || r.Point.Index != i || r.Point.Point.Speedup != float64(i) {
			t.Errorf("record %d payload %+v", i, r.Point)
		}
	}
}

func TestEmptyJournal(t *testing.T) {
	// A directory that does not exist is an empty journal, not an error.
	recs, stats := replayAll(t, filepath.Join(t.TempDir(), "never-created"))
	if len(recs) != 0 || stats.Records != 0 || stats.Segments != 0 {
		t.Fatalf("nonexistent dir: %d records, stats %+v", len(recs), stats)
	}
	// So is an existing but empty directory.
	recs, stats = replayAll(t, t.TempDir())
	if len(recs) != 0 || stats.Records != 0 {
		t.Fatalf("empty dir: %d records, stats %+v", len(recs), stats)
	}
	// And a freshly opened-and-closed journal (manifest + one empty segment).
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, stats = replayAll(t, dir)
	if len(recs) != 0 || stats.Segments != 1 || stats.Torn {
		t.Fatalf("fresh journal: %d records, stats %+v", len(recs), stats)
	}
}

// lastSegment returns the path of the journal's final segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) == 0 {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, man.Segments[len(man.Segments)-1])
}

func TestTruncatedFinalRecord(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "job1", 4)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-write: chop 3 bytes off the last segment.
	seg := lastSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	recs, stats := replayAll(t, dir)
	if !stats.Torn {
		t.Error("torn tail not reported")
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(recs))
	}

	// Open truncates the torn frame and appending continues after it with
	// the sequence numbering intact.
	j2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(pointRec("job1", 9, 9)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, stats = replayAll(t, dir)
	if stats.Torn {
		t.Error("tail still torn after reopen")
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records after repair, want 4", len(recs))
	}
	if last := recs[len(recs)-1]; last.Seq != 4 || last.Point.Index != 9 {
		t.Errorf("repaired tail record %+v, want seq 4 index 9", last)
	}
}

func TestTornHeaderOnlyTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "job1", 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Append 4 garbage bytes: a frame header cut mid-write.
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3, 4})
	f.Close()
	recs, stats := replayAll(t, dir)
	if !stats.Torn || len(recs) != 2 {
		t.Fatalf("%d records, stats %+v; want 2 records, torn", len(recs), stats)
	}
}

func TestCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so the corruption lands mid-journal.
	opts := testOpts()
	opts.SegmentBytes = 256
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "job1", 10)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(man.Segments))
	}
	// Flip one payload byte in the first segment: CRC must catch it and
	// replay must refuse (not silently truncate history).
	first := filepath.Join(dir, man.Segments[0])
	raw, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	raw[segHeaderLen+frameHeaderLen+2] ^= 0xFF
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, func(wire.JournalRecord) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of corrupt middle segment: %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, testOpts()); err == nil {
		t.Fatal("Open accepted a corrupt middle segment")
	}
}

func TestDuplicatedSegmentReplaysOnce(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "job1", 3)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}

	// A crash between manifest rewrites can list a segment twice; the
	// manifest reader dedupes entries, so replay delivers records once.
	dup := man
	dup.Segments = append(append([]string{}, man.Segments...), man.Segments[0])
	writeManifest(t, dir, dup)
	recs, stats := replayAll(t, dir)
	if len(recs) != 3 || stats.Duplicates != 0 || stats.Segments != 1 {
		t.Fatalf("duplicated manifest entry: %d records, stats %+v", len(recs), stats)
	}

	// A physically copied segment (same records under a new name) gets past
	// the manifest dedupe; the monotonic-sequence filter drops its records.
	src := filepath.Join(dir, man.Segments[0])
	copyName := segName(2)
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, copyName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	dup = man
	dup.Segments = append(append([]string{}, man.Segments...), copyName)
	writeManifest(t, dir, dup)
	recs, stats = replayAll(t, dir)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records from copied segment, want 3", len(recs))
	}
	if stats.Duplicates != 3 {
		t.Errorf("stats.Duplicates = %d, want 3", stats.Duplicates)
	}
	// Open must also survive it: the next sequence number continues past the
	// highest replayed one.
	j2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if j2.seq != 4 {
		t.Errorf("next seq %d, want 4", j2.seq)
	}
	j2.Close()
}

func writeManifest(t *testing.T, dir string, man manifest) {
	t.Helper()
	j := &Journal{dir: dir, man: man}
	if err := j.writeManifestLocked(); err != nil {
		t.Fatal(err)
	}
}

func TestManifestVersionSkew(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "job1", 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Version = FormatVersion + 1
	writeManifest(t, dir, man)
	if _, err := Replay(dir, func(wire.JournalRecord) error { return nil }); err == nil {
		t.Fatal("replay accepted a newer manifest version")
	}
	if _, err := Open(dir, testOpts()); err == nil {
		t.Fatal("Open accepted a newer manifest version")
	}
}

func TestSegmentVersionSkew(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "job1", 1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Manifest says v1 but the segment header claims a future format: skew,
	// refused even though it is the final segment (not torn-tail-excusable).
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(raw[4:8], FormatVersion+1)
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, func(wire.JournalRecord) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of version-skewed segment: %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, testOpts()); err == nil {
		t.Fatal("Open accepted a version-skewed segment")
	}
}

func TestRotationAndManifest(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 256
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "job1", 20)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) < 3 {
		t.Fatalf("expected >= 3 segments at 256B each, got %d", len(man.Segments))
	}
	recs, stats := replayAll(t, dir)
	if len(recs) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(recs))
	}
	if stats.Segments != len(man.Segments) {
		t.Errorf("stats.Segments %d, manifest has %d", stats.Segments, len(man.Segments))
	}
	// Reopen appends into the last segment without disturbing history.
	j2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j2, "job2", 5)
	j2.Close()
	recs, _ = replayAll(t, dir)
	if len(recs) != 25 {
		t.Fatalf("replayed %d records after reopen, want 25", len(recs))
	}
}

func TestAbandonLosesOnlyUnsyncedBatch(t *testing.T) {
	dir := t.TempDir()
	// Batch fsyncs manually: nothing syncs until Sync is called.
	opts := Options{FsyncEvery: 1 << 30, FsyncInterval: time.Hour}
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "job1", 3)
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	// These three die with the process.
	for i := 3; i < 6; i++ {
		if err := j.Append(pointRec("job1", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Abandon()
	if err := j.Append(pointRec("job1", 99, 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("append after abandon: %v, want ErrClosed", err)
	}
	recs, _ := replayAll(t, dir)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after abandon, want the 3 synced ones", len(recs))
	}
}

func TestReplayJobs(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	req := &wire.SweepRequest{Specs: []wire.SoC{{CPUCores: 1}, {CPUCores: 2}}}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Append(wire.JournalRecord{Kind: wire.JournalKindJobStart, JobID: "a",
		Start: &wire.JournalJobStart{Total: 2, Request: req, ModelKey: "k", IdempotencyKey: "idem-1"}}))
	must(j.Append(pointRec("a", 0, 1.5)))
	// A duplicate completion of point 0 (re-solved after a lost batch in a
	// prior incarnation): the first record must win.
	dup := pointRec("a", 0, 2.5)
	must(j.Append(dup))
	must(j.Append(wire.JournalRecord{Kind: wire.JournalKindJobStart, JobID: "b",
		Start: &wire.JournalJobStart{Total: 1}}))
	must(j.Append(pointRec("b", 0, 3)))
	must(j.Append(wire.JournalRecord{Kind: wire.JournalKindJobEnd, JobID: "b",
		End: &wire.JournalJobEnd{Status: "done"}}))
	must(j.Close())

	jobs, stats, err := ReplayJobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 6 {
		t.Errorf("stats.Records %d, want 6", stats.Records)
	}
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	a, b := jobs[0], jobs[1]
	if a.JobID != "a" || b.JobID != "b" {
		t.Fatalf("job order %q, %q", a.JobID, b.JobID)
	}
	if a.Terminal() || !b.Terminal() {
		t.Errorf("terminal flags: a=%v b=%v, want false/true", a.Terminal(), b.Terminal())
	}
	if a.Start == nil || a.Start.Total != 2 || a.Start.ModelKey != "k" || a.Start.IdempotencyKey != "idem-1" {
		t.Errorf("job a start %+v", a.Start)
	}
	if len(a.Start.Request.Specs) != 2 {
		t.Errorf("job a request specs %+v", a.Start.Request)
	}
	if got := a.Points[0].Speedup; got != 1.5 {
		t.Errorf("job a point 0 speedup %g, want first-record 1.5", got)
	}
	if b.End.Status != "done" {
		t.Errorf("job b end %+v", b.End)
	}
}

// TestCRCCatchesBitFlipInTail: a bit flip inside the final segment's last
// frame is indistinguishable from a torn write and is dropped, not served.
func TestCRCCatchesBitFlipInTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, "job1", 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, stats := replayAll(t, dir)
	if !stats.Torn || len(recs) != 1 {
		t.Fatalf("%d records, stats %+v; want 1 record, torn", len(recs), stats)
	}
}
