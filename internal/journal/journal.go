// Package journal is the crash-safe persistence layer behind resumable
// design-space sweeps: an append-only, fsync-batched, CRC-framed write-ahead
// journal. Sweep and batch jobs append lifecycle records (wire.JournalRecord:
// jobStart, per-point results, jobEnd); after a crash, Replay reconstructs
// every job's progress and the sweep engine resumes with the completed points
// pre-filled, so a restart re-solves strictly fewer points than it recovers.
//
// On-disk layout (one directory per journal):
//
//	MANIFEST.json     {"version": 1, "segments": ["seg-00000001.wal", ...]}
//	seg-00000001.wal  segment header + CRC-framed records
//	seg-00000002.wal  ...
//
// Each segment starts with an 8-byte header (magic "HJRN" + uint32 LE format
// version) followed by frames of [length uint32 LE][crc32c uint32 LE][payload]
// where the payload is one compact-JSON wire.JournalRecord. The manifest is
// rewritten atomically (temp file + rename) on every rotation.
//
// Durability contract: appends are batched — the journal fsyncs after
// Options.FsyncEvery records or Options.FsyncInterval, whichever comes first,
// and always on Sync, rotation, and Close. A crash therefore loses at most
// the last unsynced batch; replay tolerates a torn final record (a frame cut
// mid-write by the crash) by truncating it, and Open resumes appending after
// the last valid frame. Records are never rewritten: a record that survives
// replay is final ("exactly-once result record"), while the solve behind it
// may have run more than once ("at-least-once point solve").
package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hilp/internal/obs"
	"hilp/internal/wire"
)

// FormatVersion is the segment/manifest framing version. Independent from
// wire.JournalVersion (the record payload schema).
const FormatVersion = 1

const (
	manifestName = "MANIFEST.json"
	segPrefix    = "seg-"
	segSuffix    = ".wal"
	// segHeaderLen is magic (4) + format version (uint32 LE).
	segHeaderLen = 8
	// frameHeaderLen is length (uint32 LE) + crc32c (uint32 LE).
	frameHeaderLen = 8
	// maxRecordBytes bounds one record's payload; longer frames are treated
	// as corruption (a torn length field can otherwise demand gigabytes).
	maxRecordBytes = 16 << 20
)

var segMagic = [4]byte{'H', 'J', 'R', 'N'}

// castagnoli is the CRC-32C table shared by writer and replayer.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append/Sync after Close or Abandon.
var ErrClosed = errors.New("journal: closed")

// Options tunes a journal opened for appending. The zero value selects
// production-safe defaults.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the current one exceeds
	// it; 0 selects 4 MiB.
	SegmentBytes int64
	// FsyncEvery batches fsyncs: the journal fsyncs once this many records
	// have been appended since the last sync. 0 selects 16; 1 syncs every
	// append (slow, maximally durable).
	FsyncEvery int
	// FsyncInterval bounds how long an appended record may sit unsynced
	// before the background flusher syncs it; 0 selects 50 ms.
	FsyncInterval time.Duration
	// Obs receives append/fsync/byte counters and append-latency stage
	// metrics; nil disables them (the usual nil-safe obs contract).
	Obs *obs.Context
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 16
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	return o
}

// manifest is the journal's segment index, stored as MANIFEST.json.
type manifest struct {
	Version  int      `json:"version"`
	Segments []string `json:"segments"`
}

// Journal is a write-ahead journal opened for appending. Safe for concurrent
// use; records from concurrent jobs interleave but each append is atomic
// within the frame format.
type Journal struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	size     int64
	seq      uint64 // next sequence number to assign
	segIndex int    // numeric index of the open segment
	man      manifest
	pending  int  // appends since the last fsync
	dirty    bool // buffered or written bytes not yet fsynced
	closed   bool
	err      error // sticky write error; appends fail fast after it

	flusherDone chan struct{}
	flusherStop chan struct{}
}

// Open opens (creating if needed) the journal in dir for appending. Existing
// segments are scanned: the next sequence number continues after the highest
// replayed one and a torn final frame — a record cut mid-write by a crash —
// is truncated so appending resumes at the last valid frame boundary. Replay
// the history first (Replay) if you need the records; Open does not return
// them.
func Open(dir string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		dir:         dir,
		opts:        opts,
		man:         man,
		seq:         1,
		flusherDone: make(chan struct{}),
		flusherStop: make(chan struct{}),
	}
	// Scan the existing history for the highest sequence number and the last
	// segment's valid length (everything past it is a torn tail to drop).
	var lastValid int64 = segHeaderLen
	for i, name := range man.Segments {
		stats, scanErr := scanSegment(filepath.Join(dir, name), func(rec wire.JournalRecord) error {
			if rec.Seq >= j.seq {
				j.seq = rec.Seq + 1
			}
			return nil
		})
		if scanErr != nil && (i < len(man.Segments)-1 || errors.Is(scanErr, ErrCorrupt)) {
			return nil, fmt.Errorf("journal: segment %s: %w", name, scanErr)
		}
		if i == len(man.Segments)-1 {
			lastValid = stats.validBytes
		}
	}
	if n := len(man.Segments); n > 0 {
		last := man.Segments[n-1]
		j.segIndex = segIndexOf(last)
		f, err := os.OpenFile(filepath.Join(dir, last), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		// Drop the torn tail, if any, and position at the frame boundary.
		if terr := f.Truncate(lastValid); terr != nil {
			return nil, errors.Join(fmt.Errorf("journal: truncating torn tail: %w", terr), f.Close())
		}
		if _, serr := f.Seek(lastValid, 0); serr != nil {
			return nil, errors.Join(fmt.Errorf("journal: %w", serr), f.Close())
		}
		j.f = f
		j.size = lastValid
		j.w = bufio.NewWriter(f)
	} else if err := j.rotateLocked(); err != nil {
		return nil, err
	}
	go j.flusher()
	return j, nil
}

// readManifest loads and validates the manifest, tolerating a missing file
// (empty journal) and duplicated segment entries, and refusing a version this
// binary does not speak.
func readManifest(dir string) (manifest, error) {
	var man manifest
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		man.Version = FormatVersion
		return man, nil
	}
	if err != nil {
		return man, fmt.Errorf("journal: %w", err)
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return man, fmt.Errorf("journal: manifest: %w", err)
	}
	if man.Version != FormatVersion {
		return man, fmt.Errorf("journal: manifest version %d, this binary speaks %d", man.Version, FormatVersion)
	}
	// A crash between manifest writes can leave a segment listed twice;
	// dedupe preserves order (the replay-level Seq filter catches the rest).
	seen := map[string]bool{}
	deduped := man.Segments[:0]
	for _, s := range man.Segments {
		if !seen[s] {
			seen[s] = true
			deduped = append(deduped, s)
		}
	}
	man.Segments = deduped
	return man, nil
}

func segName(index int) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, index, segSuffix)
}

func segIndexOf(name string) int {
	var idx int
	fmt.Sscanf(name, segPrefix+"%d", &idx)
	return idx
}

// Append appends one record, assigning its sequence number and timestamp,
// and schedules an fsync per the batching policy. The record is durable only
// after the next sync (batch boundary, Sync, rotation, or Close).
func (j *Journal) Append(rec wire.JournalRecord) error {
	start := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.err != nil {
		return j.err
	}
	rec.Version = wire.JournalVersion
	rec.Seq = j.seq
	rec.UnixNano = time.Now().UnixNano()
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := j.w.Write(hdr[:]); err != nil {
		j.err = fmt.Errorf("journal: %w", err)
		return j.err
	}
	if _, err := j.w.Write(payload); err != nil {
		j.err = fmt.Errorf("journal: %w", err)
		return j.err
	}
	j.seq++
	j.size += int64(frameHeaderLen + len(payload))
	j.pending++
	j.dirty = true
	octx := j.opts.Obs
	octx.Counter(obs.MJournalAppends).Inc()
	octx.Counter(obs.MJournalBytes).Add(int64(frameHeaderLen + len(payload)))
	if j.pending >= j.opts.FsyncEvery {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	if j.size >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	octx.Histogram(obs.StageMetricName(obs.StageJournalAppend)).Observe(time.Since(start).Seconds())
	return nil
}

// Sync flushes buffered frames and fsyncs the open segment.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.err != nil {
		return j.err
	}
	if !j.dirty {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.err = fmt.Errorf("journal: %w", err)
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("journal: fsync: %w", err)
		return j.err
	}
	j.pending = 0
	j.dirty = false
	j.opts.Obs.Counter(obs.MJournalFsyncs).Inc()
	return nil
}

// rotateLocked syncs and closes the open segment (if any), creates the next
// one, and rewrites the manifest atomically.
func (j *Journal) rotateLocked() error {
	if j.f != nil {
		if err := j.syncLocked(); err != nil {
			return err
		}
		if err := j.f.Close(); err != nil {
			j.err = fmt.Errorf("journal: %w", err)
			return j.err
		}
	}
	j.segIndex++
	name := segName(j.segIndex)
	f, err := os.OpenFile(filepath.Join(j.dir, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		j.err = fmt.Errorf("journal: %w", err)
		return j.err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:4], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], FormatVersion)
	if _, werr := f.Write(hdr[:]); werr != nil {
		j.err = errors.Join(fmt.Errorf("journal: %w", werr), f.Close())
		return j.err
	}
	if serr := f.Sync(); serr != nil {
		j.err = errors.Join(fmt.Errorf("journal: fsync: %w", serr), f.Close())
		return j.err
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.size = segHeaderLen
	j.dirty = false
	j.pending = 0
	j.man.Segments = append(j.man.Segments, name)
	if err := j.writeManifestLocked(); err != nil {
		return err
	}
	return nil
}

// writeManifestLocked rewrites MANIFEST.json atomically: temp file, fsync,
// rename, so a crash never leaves a half-written manifest.
func (j *Journal) writeManifestLocked() error {
	raw, err := json.MarshalIndent(j.man, "", "  ")
	if err != nil {
		return fmt.Errorf("journal: manifest: %w", err)
	}
	tmp := filepath.Join(j.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		j.err = fmt.Errorf("journal: manifest: %w", err)
		return j.err
	}
	if _, err := f.Write(append(raw, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(j.dir, manifestName))
	}
	if err != nil {
		j.err = fmt.Errorf("journal: manifest: %w", err)
		return j.err
	}
	return nil
}

// flusher is the background fsync batcher: it bounds how long an appended
// record can sit unsynced when the FsyncEvery threshold is not reached.
func (j *Journal) flusher() {
	defer close(j.flusherDone)
	t := time.NewTicker(j.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.mu.Lock()
			if !j.closed && j.dirty {
				j.syncLocked() // sticky error surfaces on the next Append
			}
			j.mu.Unlock()
		case <-j.flusherStop:
			return
		}
	}
}

// Close syncs outstanding records and closes the journal. Further appends
// return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	err := j.syncLocked()
	j.closed = true
	if j.f != nil {
		if cerr := j.f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("journal: %w", cerr)
		}
	}
	j.mu.Unlock()
	close(j.flusherStop)
	<-j.flusherDone
	return err
}

// Abandon closes the journal WITHOUT flushing or syncing, discarding any
// buffered unsynced records — the in-process equivalent of SIGKILL. The
// kill-and-recover chaos harness uses it to model a crash that loses the
// last unsynced batch; production code should always Close.
func (j *Journal) Abandon() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.closed = true
	if j.f != nil {
		// The buffered writer is intentionally not flushed; the close error
		// is irrelevant to the simulated crash but still recorded so it is
		// never silently dropped.
		if cerr := j.f.Close(); cerr != nil && j.err == nil {
			j.err = fmt.Errorf("journal: abandon: %w", cerr)
		}
	}
	j.mu.Unlock()
	close(j.flusherStop)
	<-j.flusherDone
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }
