package benchgate

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: hilp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEvaluateBaseline-8       	     142	   8026882 ns/op	 1147397 B/op	   13314 allocs/op
BenchmarkEvaluateBaseline-8       	     150	   7902110 ns/op	 1147020 B/op	   13311 allocs/op
BenchmarkEvaluateObsDisabled-8    	     148	   7962616 ns/op	 1147638 B/op	   13317 allocs/op
BenchmarkEvaluateObsDisabled-8    	     145	   8100424 ns/op	 1147700 B/op	   13318 allocs/op
BenchmarkObsNoopCalls-8           	94822732	        10.39 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	hilp	12.271s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %v", len(results), results)
	}
	base := results["BenchmarkEvaluateBaseline"]
	if base.NsPerOp != 7902110 {
		t.Errorf("baseline min ns/op = %v, want 7902110 (min of repeats)", base.NsPerOp)
	}
	if base.Runs != 2 {
		t.Errorf("baseline runs = %d, want 2", base.Runs)
	}
	if base.BytesPerOp != 1147020 {
		t.Errorf("baseline B/op = %v, want the min-time line's 1147020", base.BytesPerOp)
	}
	noop := results["BenchmarkObsNoopCalls"]
	if noop.NsPerOp != 10.39 || noop.AllocsPerOp != 0 {
		t.Errorf("noop = %+v, want 10.39 ns/op and 0 allocs/op", noop)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok hilp 0.1s\n")); err == nil {
		t.Fatal("want error for output with no benchmark lines")
	}
}

func TestParseWithoutMemStats(t *testing.T) {
	out := "BenchmarkX-4   100   123456 ns/op\n"
	results, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := results["BenchmarkX"].NsPerOp; got != 123456 {
		t.Fatalf("ns/op = %v, want 123456", got)
	}
}

func TestCheckPassAndFail(t *testing.T) {
	cfg := Config{
		Baseline:    "BenchmarkEvaluateBaseline",
		Disabled:    "BenchmarkEvaluateObsDisabled",
		ContractPct: 2.0,
		NoisePct:    6.0,
	}
	results := map[string]Result{
		cfg.Baseline: {NsPerOp: 1000, Runs: 1},
		cfg.Disabled: {NsPerOp: 1050, Runs: 1},
	}
	rep, err := Check(results, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.OverheadPct != 5.0 {
		t.Fatalf("5%% overhead should pass under 2+6: %+v", rep)
	}

	results[cfg.Disabled] = Result{NsPerOp: 1100, Runs: 1}
	rep, err = Check(results, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("10%% overhead must fail the 2+6 gate: %+v", rep)
	}

	// A disabled path faster than baseline (negative overhead) passes.
	results[cfg.Disabled] = Result{NsPerOp: 950, Runs: 1}
	rep, err = Check(results, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.OverheadPct >= 0 {
		t.Fatalf("negative overhead should pass: %+v", rep)
	}
}

func TestCheckMissingBenchmarks(t *testing.T) {
	cfg := Config{Baseline: "A", Disabled: "B", ContractPct: 2, NoisePct: 6}
	if _, err := Check(map[string]Result{"A": {NsPerOp: 1}}, cfg); err == nil {
		t.Fatal("want error when the disabled benchmark is missing")
	}
	if _, err := Check(map[string]Result{"B": {NsPerOp: 1}}, cfg); err == nil {
		t.Fatal("want error when the baseline benchmark is missing")
	}
}

func TestArtifactRoundTrips(t *testing.T) {
	rep := Report{
		Benchmarks:  map[string]Result{"B": {NsPerOp: 1, Runs: 1}},
		Baseline:    "A",
		Disabled:    "B",
		OverheadPct: 1.5,
		ContractPct: 2,
		NoisePct:    6,
		Pass:        true,
	}
	blob, err := rep.MarshalArtifact()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "\"disabled_overhead_pct\": 1.5") {
		t.Fatalf("artifact missing overhead field:\n%s", blob)
	}
	if blob[len(blob)-1] != '\n' {
		t.Fatal("artifact must end with a newline")
	}
}
