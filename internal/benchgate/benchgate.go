// Package benchgate parses `go test -bench` output and checks the
// observability layer's disabled-overhead contract against it. It backs the
// hilp-benchgate CI gate.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark's summary over a (possibly repeated) run: the
// minimum observed ns/op — the least-noisy point estimate of a repeated
// benchmark — with memory stats from the same (minimum-time) line.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Runs counts how many lines contributed (the -count repeat factor).
	Runs int `json:"runs"`
}

// Parse reads `go test -bench` output and returns per-benchmark results
// keyed by the bare benchmark name (the -8 GOMAXPROCS suffix stripped).
// Repeated lines for the same benchmark (-count > 1) are folded by keeping
// the minimum ns/op line. Non-benchmark lines are ignored.
func Parse(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shortest valid shape: name, iterations, value, "ns/op".
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{Runs: 1}
		parsed := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				parsed = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if !parsed {
			continue
		}
		if prev, ok := out[name]; ok {
			res.Runs = prev.Runs + 1
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp, res.BytesPerOp, res.AllocsPerOp = prev.NsPerOp, prev.BytesPerOp, prev.AllocsPerOp
			}
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark lines found")
	}
	return out, nil
}

// Config names the two benchmarks the contract compares and its thresholds.
type Config struct {
	Baseline    string
	Disabled    string
	ContractPct float64
	NoisePct    float64
}

// Report is the gate's verdict plus everything needed for the CI artifact.
type Report struct {
	Benchmarks  map[string]Result `json:"benchmarks"`
	Baseline    string            `json:"baseline"`
	Disabled    string            `json:"disabled"`
	OverheadPct float64           `json:"disabled_overhead_pct"`
	ContractPct float64           `json:"contract_pct"`
	NoisePct    float64           `json:"noise_pct"`
	Pass        bool              `json:"pass"`
}

// Check computes the disabled-path overhead and applies the contract.
func Check(results map[string]Result, cfg Config) (Report, error) {
	base, ok := results[cfg.Baseline]
	if !ok {
		return Report{}, fmt.Errorf("benchgate: baseline %s missing from bench output", cfg.Baseline)
	}
	dis, ok := results[cfg.Disabled]
	if !ok {
		return Report{}, fmt.Errorf("benchgate: disabled benchmark %s missing from bench output", cfg.Disabled)
	}
	if base.NsPerOp <= 0 {
		return Report{}, fmt.Errorf("benchgate: baseline %s has non-positive ns/op", cfg.Baseline)
	}
	overhead := 100 * (dis.NsPerOp - base.NsPerOp) / base.NsPerOp
	return Report{
		Benchmarks:  results,
		Baseline:    cfg.Baseline,
		Disabled:    cfg.Disabled,
		OverheadPct: overhead,
		ContractPct: cfg.ContractPct,
		NoisePct:    cfg.NoisePct,
		Pass:        overhead <= cfg.ContractPct+cfg.NoisePct,
	}, nil
}

// MarshalArtifact renders the report as indented JSON with a trailing
// newline, in the spirit of the checked-in BENCH_obs.json baseline.
func (r Report) MarshalArtifact() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// SpeedupConfig names a fast/slow benchmark pair and the minimum speedup the
// fast one must demonstrate over the slow one. It backs the sweep-engine
// throughput gate (warm-started sweep vs cold sweep).
type SpeedupConfig struct {
	Fast     string
	Slow     string
	MinRatio float64
}

// SpeedupReport is the speedup gate's verdict plus its CI artifact fields.
type SpeedupReport struct {
	Benchmarks map[string]Result `json:"benchmarks"`
	Fast       string            `json:"fast"`
	Slow       string            `json:"slow"`
	// Ratio is slow ns/op over fast ns/op: how many times faster the fast
	// benchmark ran.
	Ratio    float64 `json:"speedup_ratio"`
	MinRatio float64 `json:"min_ratio"`
	Pass     bool    `json:"pass"`
}

// CheckSpeedup computes the fast benchmark's speedup over the slow one and
// applies the minimum-ratio gate.
func CheckSpeedup(results map[string]Result, cfg SpeedupConfig) (SpeedupReport, error) {
	fast, ok := results[cfg.Fast]
	if !ok {
		return SpeedupReport{}, fmt.Errorf("benchgate: fast benchmark %s missing from bench output", cfg.Fast)
	}
	slow, ok := results[cfg.Slow]
	if !ok {
		return SpeedupReport{}, fmt.Errorf("benchgate: slow benchmark %s missing from bench output", cfg.Slow)
	}
	if fast.NsPerOp <= 0 {
		return SpeedupReport{}, fmt.Errorf("benchgate: fast benchmark %s has non-positive ns/op", cfg.Fast)
	}
	ratio := slow.NsPerOp / fast.NsPerOp
	return SpeedupReport{
		Benchmarks: results,
		Fast:       cfg.Fast,
		Slow:       cfg.Slow,
		Ratio:      ratio,
		MinRatio:   cfg.MinRatio,
		Pass:       ratio >= cfg.MinRatio,
	}, nil
}

// MarshalArtifact renders the speedup report as indented JSON with a
// trailing newline, in the spirit of the checked-in BENCH_sweep.json
// baseline.
func (r SpeedupReport) MarshalArtifact() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
