package powerlaw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExactLaw(t *testing.T) {
	// y = 3 * x^-0.8 sampled without noise must be recovered exactly.
	xs := []float64{14, 28, 42, 56, 98}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, -0.8)
	}
	fit, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-3) > 1e-9 || math.Abs(fit.B+0.8) > 1e-9 {
		t.Errorf("fit = (%g, %g), want (3, -0.8)", fit.A, fit.B)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Errorf("R2 = %g, want 1", fit.R2)
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := []float64{1.02, 1.95, 4.1, 7.8, 16.4} // roughly y = x
	fit, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.B-1) > 0.05 {
		t.Errorf("B = %g, want ~1", fit.B)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %g, want > 0.99", fit.R2)
	}
}

func TestLeastSquaresFlatData(t *testing.T) {
	// Insensitive benchmark (like MC in the paper): R2 near 0 but the fit
	// must capture the flat level.
	xs := []float64{14, 28, 42, 56, 98}
	ys := []float64{1.0, 1.01, 0.99, 1.0, 1.005}
	fit, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.B) > 0.05 {
		t.Errorf("B = %g, want ~0 for flat data", fit.B)
	}
	if fit.Eval(50) < 0.9 || fit.Eval(50) > 1.1 {
		t.Errorf("Eval(50) = %g, want ~1", fit.Eval(50))
	}
}

func TestLeastSquaresRejectsBadInput(t *testing.T) {
	if _, err := LeastSquares([]float64{1}, []float64{1}); err == nil {
		t.Error("accepted a single sample")
	}
	if _, err := LeastSquares([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := LeastSquares([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("accepted negative x")
	}
	if _, err := LeastSquares([]float64{1, 2}, []float64{0, 2}); err == nil {
		t.Error("accepted zero y")
	}
}

func TestLeastSquaresIdenticalX(t *testing.T) {
	fit, err := LeastSquares([]float64{5, 5, 5}, []float64{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if fit.B != 0 {
		t.Errorf("B = %g, want 0 fallback for identical x", fit.B)
	}
}

func TestNormalized(t *testing.T) {
	xs := []float64{14, 28, 56}
	ys := []float64{10, 5, 2.5} // halves with doubling: y ~ x^-1
	fit, err := Normalized(xs, ys, 14)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized to 14 SMs: value at x=14 should be ~1.
	if v := fit.Eval(14); math.Abs(v-1) > 1e-6 {
		t.Errorf("Eval(14) = %g, want 1", v)
	}
	if math.Abs(fit.B+1) > 1e-9 {
		t.Errorf("B = %g, want -1", fit.B)
	}
}

func TestNormalizedMissingReference(t *testing.T) {
	if _, err := Normalized([]float64{1, 2}, []float64{1, 2}, 3); err == nil {
		t.Error("accepted missing reference x")
	}
}

// TestFitRoundTripProperty: for random positive (a, b), sampling the law and
// fitting must recover the parameters.
func TestFitRoundTripProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := 0.1 + float64(aRaw)/32.0
		b := -1.5 + 3.0*float64(bRaw)/255.0
		xs := []float64{2, 4, 8, 16, 32, 64}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a * math.Pow(x, b)
		}
		fit, err := LeastSquares(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.A-a) < 1e-6*math.Max(1, a) && math.Abs(fit.B-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
