// Package powerlaw fits y = a*x^b curves to profile data by least squares in
// log-log space, exactly as the paper does to interpolate GPU performance,
// bandwidth, and power between the SM counts that MIG can configure
// (Tables II and III report the resulting (a, b, R^2) triples).
package powerlaw

import (
	"errors"
	"fmt"
	"math"
)

// Fit is a fitted power law y = A * x^B with the coefficient of
// determination R2 of the underlying log-log linear regression.
type Fit struct {
	A, B float64
	R2   float64
}

// Eval returns A * x^B.
func (f Fit) Eval(x float64) float64 {
	return f.A * math.Pow(x, f.B)
}

// String formats the fit like the paper's tables: "a, b, R^2".
func (f Fit) String() string {
	return fmt.Sprintf("%.2f, %.2f, %.2f", f.A, f.B, f.R2)
}

// ErrBadInput is returned for empty, mismatched, or non-positive samples.
var ErrBadInput = errors.New("powerlaw: need >= 2 samples with positive x and y")

// LeastSquares fits y = a*x^b to the samples by linear regression on
// (ln x, ln y). All xs and ys must be strictly positive.
func LeastSquares(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Fit{}, ErrBadInput
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	lys := make([]float64, len(ys))
	lxs := make([]float64, len(xs))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return Fit{}, fmt.Errorf("%w: sample %d = (%g, %g)", ErrBadInput, i, xs[i], ys[i])
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		lxs[i], lys[i] = lx, ly
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	denom := n*sxx - sx*sx
	var b float64
	if math.Abs(denom) < 1e-12 {
		// All x identical: slope undefined; fall back to a flat fit.
		b = 0
	} else {
		b = (n*sxy - sx*sy) / denom
	}
	lnA := (sy - b*sx) / n
	fit := Fit{A: math.Exp(lnA), B: b}

	// R^2 in log space: 1 - SS_res / SS_tot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range lxs {
		pred := lnA + b*lxs[i]
		ssRes += (lys[i] - pred) * (lys[i] - pred)
		ssTot += (lys[i] - meanY) * (lys[i] - meanY)
	}
	switch {
	case ssTot < 1e-15:
		// No variance in the data; a flat law explains it perfectly.
		fit.R2 = 1
	default:
		fit.R2 = 1 - ssRes/ssTot
		if fit.R2 < 0 {
			fit.R2 = 0
		}
	}
	return fit, nil
}

// Normalized fits a power law to ys normalized by the y at the reference x,
// mirroring the paper's "normalized to the GPU with 14 SMs" convention. The
// reference x must be present in xs.
func Normalized(xs, ys []float64, refX float64) (Fit, error) {
	refY := 0.0
	found := false
	for i, x := range xs {
		if x == refX {
			refY = ys[i]
			found = true
			break
		}
	}
	if !found {
		return Fit{}, fmt.Errorf("powerlaw: reference x=%g not among samples", refX)
	}
	if refY <= 0 {
		return Fit{}, fmt.Errorf("powerlaw: reference y=%g must be positive", refY)
	}
	norm := make([]float64, len(ys))
	for i, y := range ys {
		norm[i] = y / refY
	}
	return LeastSquares(xs, norm)
}
