package profiler

import (
	"math"
	"testing"

	"hilp/internal/powerlaw"
	"hilp/internal/rodinia"
)

func TestProfileGPURecoverablesFits(t *testing.T) {
	// Re-running the paper's fitting pipeline on the simulated profiles must
	// recover the published power-law exponents for the well-behaved
	// benchmarks (high R^2).
	for _, b := range rodinia.Benchmarks() {
		if b.TimeFit.R2 < 0.9 {
			continue
		}
		samples := ProfileGPU(b)
		xs := make([]float64, len(samples))
		ys := make([]float64, len(samples))
		for i, s := range samples {
			xs[i] = float64(s.SMs)
			ys[i] = s.TimeSec
		}
		fit, err := powerlaw.Normalized(xs, ys, 14)
		if err != nil {
			t.Fatalf("%s: %v", b.Abbrev, err)
		}
		if math.Abs(fit.B-b.TimeFit.B) > 0.15 {
			t.Errorf("%s: refit B = %.3f, published %.3f", b.Abbrev, fit.B, b.TimeFit.B)
		}
	}
}

func TestProfileGPUDeterministic(t *testing.T) {
	b, _ := rodinia.ByAbbrev("BFS")
	s1 := ProfileGPU(b)
	s2 := ProfileGPU(b)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("simulated profiling must be deterministic")
		}
	}
}

func TestProfileGPUBandwidthWithinMIGCap(t *testing.T) {
	for _, b := range rodinia.Benchmarks() {
		for _, s := range ProfileGPU(b) {
			if s.BandwidthGBs > s.MemBWCapGBs+1e-9 {
				t.Errorf("%s@%dSMs: bandwidth %g exceeds MIG cap %g", b.Abbrev, s.SMs, s.BandwidthGBs, s.MemBWCapGBs)
			}
			if s.TimeSec <= 0 {
				t.Errorf("%s@%dSMs: non-positive time", b.Abbrev, s.SMs)
			}
		}
	}
}

func TestProfileCPUMatchesAmdahl(t *testing.T) {
	b, _ := rodinia.ByAbbrev("LUD")
	samples := ProfileCPU(b)
	if len(samples) != 32 {
		t.Fatalf("got %d samples, want 32", len(samples))
	}
	if math.Abs(samples[0].TimeSec-b.ComputeCPUSec)/b.ComputeCPUSec > 0.02 {
		t.Errorf("1-core sample %g too far from table %g", samples[0].TimeSec, b.ComputeCPUSec)
	}
	if samples[31].TimeSec >= samples[3].TimeSec {
		t.Error("32-core run must beat 4-core run")
	}
}

func TestProfileGPUPowerCoversSweep(t *testing.T) {
	samples := ProfileGPUPower()
	if len(samples) != 11*len(MIGSMCounts) {
		t.Fatalf("got %d samples, want %d", len(samples), 11*len(MIGSMCounts))
	}
	for _, s := range samples {
		if s.Watts <= 0 {
			t.Errorf("non-positive power at %gMHz/%dSMs", s.FrequencyMHz, s.SMs)
		}
	}
}

func TestPowerRefitMatchesTableIII(t *testing.T) {
	// Fitting simulated power vs SM count at each frequency must give a
	// near-linear law (B ~ 1), matching Table III's fits.
	samples := ProfileGPUPower()
	byFreq := map[float64][]PowerSample{}
	for _, s := range samples {
		byFreq[s.FrequencyMHz] = append(byFreq[s.FrequencyMHz], s)
	}
	for f, group := range byFreq {
		xs := make([]float64, len(group))
		ys := make([]float64, len(group))
		for i, s := range group {
			xs[i] = float64(s.SMs)
			ys[i] = s.Watts
		}
		fit, err := powerlaw.Normalized(xs, ys, 14)
		if err != nil {
			t.Fatalf("%g MHz: %v", f, err)
		}
		if math.Abs(fit.B-1) > 0.05 {
			t.Errorf("%g MHz: power-vs-SMs exponent %g, want ~1", f, fit.B)
		}
		if fit.R2 < 0.99 {
			t.Errorf("%g MHz: R2 = %g, want ~1", f, fit.R2)
		}
	}
}

func TestDispersionFromR2(t *testing.T) {
	if dispersionFromR2(1.0) != 0 {
		t.Error("perfect fit must have zero dispersion")
	}
	if !(dispersionFromR2(0.0) > dispersionFromR2(0.9)) {
		t.Error("dispersion must grow as R2 falls")
	}
}
