// Package profiler is the synthetic stand-in for the paper's hardware
// profiling campaign (AMD EPYC 7543 with Linux perf, Nvidia A100 with Nsight
// Compute + MIG, and gpu-burn under nvidia-smi). It simulates those
// measurements: per-SM-count GPU profiles at the MIG slice sizes, per-core
// CPU profiles for 1-32 cores, and full-GPU power sweeps across the DVFS
// operating points.
//
// The simulated hardware is calibrated to the behaviour the paper publishes
// (Tables II and III), including per-benchmark measurement dispersion sized
// from the published R^2 values, so that re-running the paper's power-law
// fitting pipeline on the simulated profiles recovers the published fits.
// See DESIGN.md, substitutions.
package profiler

import (
	"hash/fnv"
	"math"

	"hilp/internal/rodinia"
	"hilp/internal/soc"
)

// MIGSMCounts are the SM slice sizes MIG supports on the profiled A100.
var MIGSMCounts = []int{14, 28, 42, 56, 98}

// MIGMemBandwidthGBs is the memory bandwidth available to each MIG slice;
// the paper notes it scales non-linearly with SM count.
var MIGMemBandwidthGBs = []float64{375, 375, 750, 750, 1500}

// CPUCoreCounts are the core counts the paper profiled with perf.
func CPUCoreCounts() []int {
	counts := make([]int, 32)
	for i := range counts {
		counts[i] = i + 1
	}
	return counts
}

// noise returns a deterministic pseudo-measurement perturbation in
// [-amp, +amp] keyed by the benchmark, quantity, and configuration. It mimics
// run-to-run variance: benchmarks whose published fits have low R^2 get a
// dispersion consistent with that R^2.
func noise(key string, x int, amp float64) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	var buf [4]byte
	buf[0] = byte(x)
	buf[1] = byte(x >> 8)
	buf[2] = byte(x >> 16)
	buf[3] = byte(x >> 24)
	_, _ = h.Write(buf[:])
	u := float64(h.Sum64()%1_000_003) / 1_000_003.0 // [0,1)
	return amp * (2*u - 1)
}

// dispersionFromR2 sizes the relative measurement dispersion so a power-law
// fit over the simulated samples lands near the published R^2: perfect fits
// get zero dispersion, R^2 = 0 (fit to pure noise) gets a large one.
func dispersionFromR2(r2 float64) float64 {
	if r2 >= 0.999 {
		return 0
	}
	return 0.35 * math.Sqrt(1-r2)
}

// GPUSample is one simulated Nsight measurement of a benchmark's compute
// phase on a MIG slice.
type GPUSample struct {
	SMs          int
	TimeSec      float64
	BandwidthGBs float64
	MemBWCapGBs  float64 // the slice's memory bandwidth (not consumed BW)
}

// ProfileGPU simulates profiling b's compute phase on every MIG slice at the
// base clock, the way the paper populates its GPU columns.
func ProfileGPU(b rodinia.Benchmark) []GPUSample {
	samples := make([]GPUSample, len(MIGSMCounts))
	tDisp := dispersionFromR2(b.TimeFit.R2)
	bwDisp := dispersionFromR2(b.BWFit.R2)
	for i, sms := range MIGSMCounts {
		t := soc.GPUTimeSec(b, sms, rodinia.BaseFrequencyMHz)
		t *= math.Exp(noise(b.Abbrev+"/time", sms, tDisp))
		bw := soc.GPUBandwidthGBs(b, sms, rodinia.BaseFrequencyMHz)
		bw *= math.Exp(noise(b.Abbrev+"/bw", sms, bwDisp))
		// A slice cannot consume more bandwidth than MIG gives it.
		if cap := MIGMemBandwidthGBs[i]; bw > cap {
			bw = cap
		}
		samples[i] = GPUSample{SMs: sms, TimeSec: t, BandwidthGBs: bw, MemBWCapGBs: MIGMemBandwidthGBs[i]}
	}
	return samples
}

// CPUSample is one simulated perf measurement on a core-count configuration.
type CPUSample struct {
	Cores   int
	TimeSec float64
}

// ProfileCPU simulates profiling b's compute phase for every core count from
// 1 to 32, the way the paper sweeps its EPYC.
func ProfileCPU(b rodinia.Benchmark) []CPUSample {
	counts := CPUCoreCounts()
	samples := make([]CPUSample, len(counts))
	for i, n := range counts {
		t := soc.CPUTimeSec(b, n)
		t *= math.Exp(noise(b.Abbrev+"/cpu", n, 0.01))
		samples[i] = CPUSample{Cores: n, TimeSec: t}
	}
	return samples
}

// PowerSample is one simulated gpu-burn + nvidia-smi measurement.
type PowerSample struct {
	FrequencyMHz float64
	SMs          int
	Watts        float64
}

// ProfileGPUPower simulates the worst-case power sweep: gpu-burn on every
// MIG slice at every supported core clock.
func ProfileGPUPower() []PowerSample {
	var samples []PowerSample
	for _, pt := range rodinia.PowerTable() {
		for _, sms := range MIGSMCounts {
			samples = append(samples, PowerSample{
				FrequencyMHz: pt.FrequencyMHz,
				SMs:          sms,
				Watts:        soc.GPUPowerWatts(sms, pt.FrequencyMHz),
			})
		}
	}
	return samples
}
