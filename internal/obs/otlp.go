package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// OTLPAttr is one span attribute: either a string or a double value.
type OTLPAttr struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// OTLPStr builds a string attribute.
func OTLPStr(key, v string) OTLPAttr { return OTLPAttr{Key: key, Str: v} }

// OTLPNum builds a numeric attribute.
func OTLPNum(key string, v float64) OTLPAttr { return OTLPAttr{Key: key, Num: v, IsNum: true} }

// OTLPSpan is one completed span ready for OTLP export: hex-encoded IDs and
// absolute unix-nano timestamps, as the OTLP/HTTP JSON encoding requires.
type OTLPSpan struct {
	TraceID       string // 32 hex digits
	SpanID        string // 16 hex digits
	ParentSpanID  string // 16 hex digits, "" for root spans
	Name          string
	StartUnixNano int64
	EndUnixNano   int64
	Attrs         []OTLPAttr
}

// --- OTLP/HTTP JSON wire shapes (trace service ExportTraceServiceRequest) ---

type otlpAnyValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
}

type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

type otlpSpanJSON struct {
	TraceID      string `json:"traceId"`
	SpanID       string `json:"spanId"`
	ParentSpanID string `json:"parentSpanId,omitempty"`
	Name         string `json:"name"`
	Kind         int    `json:"kind"`
	// Proto3 JSON maps fixed64 to decimal strings.
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpScopeSpans struct {
	Scope struct {
		Name string `json:"name"`
	} `json:"scope"`
	Spans []otlpSpanJSON `json:"spans"`
}

type otlpResourceSpans struct {
	Resource struct {
		Attributes []otlpKeyValue `json:"attributes"`
	} `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpExportRequest struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

func otlpAttrs(attrs []OTLPAttr) []otlpKeyValue {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]otlpKeyValue, len(attrs))
	for i, a := range attrs {
		if a.IsNum {
			v := a.Num
			out[i] = otlpKeyValue{Key: a.Key, Value: otlpAnyValue{DoubleValue: &v}}
		} else {
			s := a.Str
			out[i] = otlpKeyValue{Key: a.Key, Value: otlpAnyValue{StringValue: &s}}
		}
	}
	return out
}

// EncodeOTLP renders a batch of spans as one OTLP/HTTP JSON export request
// under the given service.name resource.
func EncodeOTLP(service string, spans []OTLPSpan) ([]byte, error) {
	var rs otlpResourceSpans
	rs.Resource.Attributes = otlpAttrs([]OTLPAttr{OTLPStr("service.name", service)})
	ss := otlpScopeSpans{Spans: make([]otlpSpanJSON, len(spans))}
	ss.Scope.Name = "hilp/internal/obs"
	for i, sp := range spans {
		ss.Spans[i] = otlpSpanJSON{
			TraceID:           sp.TraceID,
			SpanID:            sp.SpanID,
			ParentSpanID:      sp.ParentSpanID,
			Name:              sp.Name,
			Kind:              1, // SPAN_KIND_INTERNAL
			StartTimeUnixNano: fmt.Sprint(sp.StartUnixNano),
			EndTimeUnixNano:   fmt.Sprint(sp.EndUnixNano),
			Attributes:        otlpAttrs(sp.Attrs),
		}
	}
	rs.ScopeSpans = []otlpScopeSpans{ss}
	return json.Marshal(otlpExportRequest{ResourceSpans: []otlpResourceSpans{rs}})
}

// SpansToOTLP converts a Tracer snapshot into OTLP spans of one trace.
// Span IDs are freshly minted; parents are reconstructed per track by time
// containment (the same nesting invariant WellNested checks), and spans with
// no enclosing span on their track become children of tc's span — the
// process- or request-level root. epoch is the wall-clock instant of tracer
// time zero, mapping relative nanoseconds onto absolute unix nanos. Spans
// still open in the snapshot are exported with zero duration.
func SpansToOTLP(recs []SpanRecord, tc TraceContext, epoch time.Time) []OTLPSpan {
	if len(recs) == 0 {
		return nil
	}
	base := epoch.UnixNano()
	type openSpan struct {
		id  string
		end int64
	}
	stacks := map[int64][]openSpan{}
	out := make([]OTLPSpan, 0, len(recs))
	for _, r := range recs {
		dur := r.DurNs
		if dur < 0 {
			dur = 0
		}
		var sidRaw [8]byte
		fillRandom(sidRaw[:])
		sid := fmt.Sprintf("%x", sidRaw)
		stack := stacks[r.TID]
		for len(stack) > 0 && stack[len(stack)-1].end <= r.StartNs {
			stack = stack[:len(stack)-1]
		}
		parent := tc.SpanIDString()
		if len(stack) > 0 {
			parent = stack[len(stack)-1].id
		}
		stacks[r.TID] = append(stack, openSpan{id: sid, end: r.StartNs + dur})

		sp := OTLPSpan{
			TraceID:       tc.TraceIDString(),
			SpanID:        sid,
			ParentSpanID:  parent,
			Name:          r.Name,
			StartUnixNano: base + r.StartNs,
			EndUnixNano:   base + r.StartNs + dur,
		}
		for k, v := range r.Args {
			sp.Attrs = append(sp.Attrs, OTLPNum(k, v))
		}
		for k, v := range r.StrArgs {
			sp.Attrs = append(sp.Attrs, OTLPStr(k, v))
		}
		out = append(out, sp)
	}
	return out
}

// OTLPExporter batches completed spans and POSTs them to an OTLP/HTTP JSON
// trace endpoint (conventionally .../v1/traces) with bounded queueing,
// retry with exponential backoff, and graceful flush on drain. Enqueue never
// blocks: when the queue is full the span is dropped and counted. A nil
// exporter is a valid, fully disabled exporter.
type OTLPExporter struct {
	endpoint string
	service  string
	client   *http.Client

	mu     sync.RWMutex
	closed bool
	queue  chan OTLPSpan
	flush  chan chan error
	done   chan struct{}
	wg     sync.WaitGroup

	batchSize  int
	flushEvery time.Duration
	attempts   int
	backoff    time.Duration
	sleep      func(time.Duration)

	exported atomic.Uint64
	failed   atomic.Uint64
	dropped  atomic.Uint64

	cExported *Counter
	cFailed   *Counter
	cDropped  *Counter
}

// OTLPOption customizes an exporter.
type OTLPOption func(*OTLPExporter)

// WithOTLPClient injects the HTTP client (tests use httptest servers with
// short timeouts).
func WithOTLPClient(c *http.Client) OTLPOption { return func(e *OTLPExporter) { e.client = c } }

// WithOTLPBatch sets the max spans per POST (default 64).
func WithOTLPBatch(n int) OTLPOption {
	return func(e *OTLPExporter) {
		if n > 0 {
			e.batchSize = n
		}
	}
}

// WithOTLPFlushEvery sets the background flush interval (default 2s).
func WithOTLPFlushEvery(d time.Duration) OTLPOption {
	return func(e *OTLPExporter) {
		if d > 0 {
			e.flushEvery = d
		}
	}
}

// WithOTLPRetry sets the attempts per batch and the initial backoff, which
// doubles per retry (defaults 3 and 100ms).
func WithOTLPRetry(attempts int, backoff time.Duration) OTLPOption {
	return func(e *OTLPExporter) {
		if attempts > 0 {
			e.attempts = attempts
		}
		if backoff > 0 {
			e.backoff = backoff
		}
	}
}

// WithOTLPSleep injects the retry-backoff sleep function, for tests.
func WithOTLPSleep(f func(time.Duration)) OTLPOption {
	return func(e *OTLPExporter) {
		if f != nil {
			e.sleep = f
		}
	}
}

// WithOTLPQueue sets the queue capacity (default 1024).
func WithOTLPQueue(n int) OTLPOption {
	return func(e *OTLPExporter) {
		if n > 0 {
			e.queue = make(chan OTLPSpan, n)
		}
	}
}

// NewOTLPExporter starts an exporter POSTing to endpoint under the given
// service.name. Close it to flush and stop the background worker.
func NewOTLPExporter(endpoint, service string, opts ...OTLPOption) *OTLPExporter {
	e := &OTLPExporter{
		endpoint:   endpoint,
		service:    service,
		client:     &http.Client{Timeout: 10 * time.Second},
		queue:      make(chan OTLPSpan, 1024),
		flush:      make(chan chan error),
		done:       make(chan struct{}),
		batchSize:  64,
		flushEvery: 2 * time.Second,
		attempts:   3,
		backoff:    100 * time.Millisecond,
		sleep:      time.Sleep,
	}
	for _, o := range opts {
		o(e)
	}
	e.wg.Add(1)
	go e.run()
	return e
}

// SetCounters attaches the exported/failed/dropped metrics (conventionally
// MOTLPSpansExported, MOTLPSpansFailed, MOTLPSpansDropped). Nil counters are
// valid.
func (e *OTLPExporter) SetCounters(exported, failed, dropped *Counter) {
	if e == nil {
		return
	}
	e.cExported = exported
	e.cFailed = failed
	e.cDropped = dropped
}

// Stats reports how many spans were successfully exported, failed after all
// retries, or dropped on a full queue.
func (e *OTLPExporter) Stats() (exported, failed, dropped uint64) {
	if e == nil {
		return 0, 0, 0
	}
	return e.exported.Load(), e.failed.Load(), e.dropped.Load()
}

// Enqueue queues one completed span for export. Never blocks: a full queue
// (or a closed/nil exporter) drops the span and counts it.
func (e *OTLPExporter) Enqueue(sp OTLPSpan) {
	if e == nil {
		return
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.dropped.Add(1)
		e.cDropped.Inc()
		return
	}
	select {
	case e.queue <- sp:
	default:
		e.dropped.Add(1)
		e.cDropped.Inc()
	}
}

// EnqueueAll queues a slice of spans.
func (e *OTLPExporter) EnqueueAll(spans []OTLPSpan) {
	for _, sp := range spans {
		e.Enqueue(sp)
	}
}

// Flush synchronously drains the queue and POSTs everything buffered. It
// returns the first export error, if any.
func (e *OTLPExporter) Flush(ctx context.Context) error {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil
	}
	reply := make(chan error, 1)
	select {
	case e.flush <- reply:
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-reply:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close flushes buffered spans and stops the worker. Idempotent.
func (e *OTLPExporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return nil
	}
	e.closed = true
	close(e.done)
	e.mu.Unlock()
	e.wg.Wait()
	return nil
}

// run is the background batching worker.
func (e *OTLPExporter) run() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.flushEvery)
	defer ticker.Stop()
	var batch []OTLPSpan
	post := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := e.export(batch)
		batch = batch[:0]
		return err
	}
	drain := func() error {
		var first error
		for {
			select {
			case sp := <-e.queue:
				batch = append(batch, sp)
				if len(batch) >= e.batchSize {
					if err := post(); err != nil && first == nil {
						first = err
					}
				}
			default:
				if err := post(); err != nil && first == nil {
					first = err
				}
				return first
			}
		}
	}
	for {
		select {
		case sp := <-e.queue:
			batch = append(batch, sp)
			if len(batch) >= e.batchSize {
				post()
			}
		case <-ticker.C:
			post()
		case reply := <-e.flush:
			reply <- drain()
		case <-e.done:
			drain()
			return
		}
	}
}

// export POSTs one batch with retry and exponential backoff, giving up after
// the configured attempts.
func (e *OTLPExporter) export(batch []OTLPSpan) error {
	body, err := EncodeOTLP(e.service, batch)
	if err != nil {
		e.failed.Add(uint64(len(batch)))
		e.cFailed.Add(int64(len(batch)))
		return err
	}
	delay := e.backoff
	var lastErr error
	for attempt := 0; attempt < e.attempts; attempt++ {
		if attempt > 0 {
			e.sleep(delay)
			delay *= 2
		}
		req, err := http.NewRequest(http.MethodPost, e.endpoint, bytes.NewReader(body))
		if err != nil {
			lastErr = err
			break
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := e.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			e.exported.Add(uint64(len(batch)))
			e.cExported.Add(int64(len(batch)))
			return nil
		}
		lastErr = fmt.Errorf("obs: otlp endpoint %s returned %s", e.endpoint, resp.Status)
		// 4xx (other than 429) will not succeed on retry.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			break
		}
	}
	e.failed.Add(uint64(len(batch)))
	e.cFailed.Add(int64(len(batch)))
	return lastErr
}
