package obs

import (
	"math"
	"sync"
	"testing"
)

// countingClock returns a deterministic monotonic clock ticking once per call.
func countingClock() func() int64 {
	var t int64
	return func() int64 {
		t++
		return t
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	tr := r.Begin("anneal")
	if tr.Active() {
		t.Fatal("nil recorder returned an active trace")
	}
	tr.Incumbent(1, 10)
	tr.Bound(1, 5)
	tr.Temperature(1, 0.5)
	tr.Restart(0, 0)
	tr.Certify(10, 5, false)
	tr.End()
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot = %v, want nil", got)
	}
	if _, ok := r.LastCertificate(); ok {
		t.Fatal("nil recorder reported a certificate")
	}

	var c *Context
	if c.Record("x").Active() {
		t.Fatal("nil context returned an active trace")
	}
	if (&Context{}).Record("x").Active() {
		t.Fatal("recorder-less context returned an active trace")
	}
	if (&Context{}).Recording() {
		t.Fatal("recorder-less context claims Recording")
	}
}

func TestRecorderRecordsEvents(t *testing.T) {
	r := NewRecorderWithClock(countingClock())
	tr := r.Begin("anneal")
	tr.Incumbent(0, 20)
	tr.Restart(0, 0)
	tr.Incumbent(7, 15)
	tr.Temperature(7, 1.25)
	tr.Certify(15, 12, false)
	tr.End()

	recs := r.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Solver != "anneal" {
		t.Errorf("solver = %q", rec.Solver)
	}
	if rec.StartNs <= 0 || rec.EndNs <= rec.StartNs {
		t.Errorf("bad interval [%d, %d]", rec.StartNs, rec.EndNs)
	}
	wantKinds := []EventKind{EvIncumbent, EvRestart, EvIncumbent, EvTemperature}
	if len(rec.Events) != len(wantKinds) {
		t.Fatalf("%d events, want %d", len(rec.Events), len(wantKinds))
	}
	for i, k := range wantKinds {
		e := rec.Events[i]
		if e.Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, k)
		}
		if e.TimeNs <= 0 {
			t.Errorf("event %d has no timestamp", i)
		}
	}
	if rec.Events[2].Iter != 7 || rec.Events[2].Value != 15 {
		t.Errorf("incumbent event = %+v", rec.Events[2])
	}
	if rec.Certificate == nil || rec.Certificate.Incumbent != 15 || rec.Certificate.Bound != 12 || rec.Certificate.Proven {
		t.Errorf("certificate = %+v", rec.Certificate)
	}
	if g := rec.Certificate.Gap(); math.Abs(g-0.2) > 1e-12 {
		t.Errorf("gap = %g, want 0.2", g)
	}

	c, ok := r.LastCertificate()
	if !ok || c.Incumbent != 15 {
		t.Errorf("LastCertificate = %+v, %v", c, ok)
	}
}

func TestCertificateGap(t *testing.T) {
	cases := []struct {
		cert Certificate
		want float64
	}{
		{Certificate{Incumbent: 10, Bound: 8}, 0.2},
		{Certificate{Incumbent: 10, Bound: 10}, 0},
		{Certificate{Incumbent: 10, Bound: 12}, 0},
		{Certificate{Incumbent: 0, Bound: 0}, 0},
		{Certificate{Incumbent: 10, Bound: 2, Proven: true}, 0},
	}
	for _, c := range cases {
		if g := c.cert.Gap(); math.Abs(g-c.want) > 1e-12 {
			t.Errorf("Gap(%+v) = %g, want %g", c.cert, g, c.want)
		}
	}
}

func TestRecorderEndIdempotent(t *testing.T) {
	r := NewRecorderWithClock(countingClock())
	tr := r.Begin("solve")
	tr.End()
	end := r.Snapshot()[0].EndNs
	tr.End()
	if again := r.Snapshot()[0].EndNs; again != end {
		t.Errorf("second End moved the end time: %d -> %d", end, again)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := r.Begin("solve")
			for i := 0; i < 100; i++ {
				tr.Incumbent(i, float64(100-i))
			}
			tr.Certify(1, 1, true)
			tr.End()
		}(w)
	}
	wg.Wait()
	recs := r.Snapshot()
	if len(recs) != workers {
		t.Fatalf("%d records, want %d", len(recs), workers)
	}
	for _, rec := range recs {
		if len(rec.Events) != 100 || rec.Certificate == nil || rec.EndNs < 0 {
			t.Errorf("record %s: %d events, cert %v, end %d", rec.Solver, len(rec.Events), rec.Certificate, rec.EndNs)
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRecorderWithClock(countingClock())
	tr := r.Begin("solve")
	tr.Incumbent(0, 10)
	tr.Certify(10, 10, true)
	recs := r.Snapshot()
	recs[0].Events[0].Value = -1
	recs[0].Certificate.Incumbent = -1
	fresh := r.Snapshot()
	if fresh[0].Events[0].Value != 10 || fresh[0].Certificate.Incumbent != 10 {
		t.Error("snapshot shares memory with the recorder")
	}
}
