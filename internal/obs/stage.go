package obs

import (
	"context"
	"sync"
	"time"
)

// Canonical request-stage names: the latency-attribution taxonomy. Every
// serve-path request decomposes into these disjoint stages — except
// StageFallback, which core records *inside* StageSolve when the degradation
// ladder engages, so it overlaps solve rather than adding to the total.
const (
	StageValidate    = "validate"
	StageCacheLookup = "cache-lookup"
	StageSchedule    = "schedule" // worker-pool admission wait
	StageSolve       = "solve"
	StageFallback    = "fallback"
	StageEncode      = "encode"
	// Journal stages: StageJournalAppend times one write-ahead append (frame
	// encode + buffered write + any batched fsync it triggers) and
	// StageJournalReplay times a full recovery replay at startup. They run
	// outside the request pipeline, so they are observed directly into their
	// stage histograms rather than through a request's StageTimer.
	StageJournalAppend = "journal:append"
	StageJournalReplay = "journal:replay"
)

// Stages lists the canonical stage names in pipeline order, for docs and
// stable metric pre-registration.
var Stages = []string{StageValidate, StageCacheLookup, StageSchedule, StageSolve, StageFallback, StageEncode,
	StageJournalAppend, StageJournalReplay}

// StageInterval is one timed occurrence of a stage.
type StageInterval struct {
	Name  string
	Start time.Time
	End   time.Time
}

// StageTimer accumulates per-stage wall time for one request. It is carried
// through the solve via context.Context (WithStageTimer / StageTimerFrom) so
// inner layers — the fallback chain in particular — attribute their time
// without new parameters. A nil *StageTimer is a valid disabled timer: Start
// returns a no-op stop function, preserving the disabled-overhead contract.
//
// Safe for concurrent use; overlapping occurrences of the same stage
// accumulate independently.
type StageTimer struct {
	mu        sync.Mutex
	now       func() time.Time
	intervals []StageInterval
}

// NewStageTimer returns a timer stamping stages with the wall clock.
func NewStageTimer() *StageTimer {
	return &StageTimer{now: time.Now}
}

// NewStageTimerWithClock returns a timer using a caller-supplied clock, for
// deterministic tests.
func NewStageTimerWithClock(now func() time.Time) *StageTimer {
	return &StageTimer{now: now}
}

// Start opens a stage occurrence and returns the function that closes it.
// The stop function is idempotent. A nil timer returns a no-op.
func (t *StageTimer) Start(name string) func() {
	if t == nil {
		return func() {}
	}
	t.mu.Lock()
	idx := len(t.intervals)
	t.intervals = append(t.intervals, StageInterval{Name: name, Start: t.now()})
	t.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			t.intervals[idx].End = t.now()
			t.mu.Unlock()
		})
	}
}

// Durations sums the closed occurrences of each stage, in seconds. Open
// occurrences are excluded (they have no end yet).
func (t *StageTimer) Durations() map[string]float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.intervals) == 0 {
		return nil
	}
	out := make(map[string]float64, len(t.intervals))
	for _, iv := range t.intervals {
		if iv.End.IsZero() {
			continue
		}
		out[iv.Name] += iv.End.Sub(iv.Start).Seconds()
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Intervals returns copies of the closed stage occurrences in start order,
// for building per-stage child spans.
func (t *StageTimer) Intervals() []StageInterval {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageInterval, 0, len(t.intervals))
	for _, iv := range t.intervals {
		if !iv.End.IsZero() {
			out = append(out, iv)
		}
	}
	return out
}

// stageTimerKey keys the StageTimer in a context.Context.
type stageTimerKey struct{}

// WithStageTimer returns a context carrying t (nil t returns ctx unchanged).
func WithStageTimer(ctx context.Context, t *StageTimer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, stageTimerKey{}, t)
}

// StageTimerFrom returns the stage timer carried by ctx, or nil (a valid
// disabled timer).
func StageTimerFrom(ctx context.Context) *StageTimer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(stageTimerKey{}).(*StageTimer)
	return t
}
