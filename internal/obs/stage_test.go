package obs

import (
	"context"
	"math"
	"testing"
	"time"
)

// stageClock is a deterministic clock advancing a fixed step per call.
func stageClock(step time.Duration) func() time.Time {
	base := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * step)
	}
}

func TestStageTimerAccumulates(t *testing.T) {
	st := NewStageTimerWithClock(stageClock(time.Second))
	stop := st.Start(StageValidate) // t=1
	stop()                          // t=2 → 1s
	stop()                          // idempotent: no effect
	stop2 := st.Start(StageSolve)   // t=3
	stop2()                         // t=4 → 1s
	stop3 := st.Start(StageSolve)   // t=5
	stop3()                         // t=6 → accumulates to 2s
	d := st.Durations()
	if math.Abs(d[StageValidate]-1) > 1e-9 {
		t.Errorf("validate = %g, want 1", d[StageValidate])
	}
	if math.Abs(d[StageSolve]-2) > 1e-9 {
		t.Errorf("solve = %g, want 2", d[StageSolve])
	}
	ivs := st.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("Intervals len = %d, want 3", len(ivs))
	}
	if ivs[0].Name != StageValidate || ivs[1].Name != StageSolve {
		t.Errorf("interval order = %v, %v", ivs[0].Name, ivs[1].Name)
	}
}

func TestStageTimerOpenStageExcluded(t *testing.T) {
	st := NewStageTimerWithClock(stageClock(time.Second))
	_ = st.Start(StageEncode) // never stopped
	if d := st.Durations(); d != nil {
		t.Errorf("Durations with only an open stage = %v, want nil", d)
	}
	if ivs := st.Intervals(); len(ivs) != 0 {
		t.Errorf("Intervals with only an open stage = %v", ivs)
	}
}

func TestStageTimerNilSafety(t *testing.T) {
	var st *StageTimer
	stop := st.Start(StageSolve)
	stop()
	if st.Durations() != nil || st.Intervals() != nil {
		t.Error("nil timer returned data")
	}
}

func TestStageTimerOnContext(t *testing.T) {
	if got := StageTimerFrom(context.Background()); got != nil {
		t.Errorf("empty context StageTimerFrom = %v", got)
	}
	st := NewStageTimer()
	ctx := WithStageTimer(context.Background(), st)
	if got := StageTimerFrom(ctx); got != st {
		t.Error("StageTimerFrom did not return the attached timer")
	}
	if ctx2 := WithStageTimer(context.Background(), nil); ctx2 != context.Background() {
		t.Error("nil timer was stored")
	}
	// The carried timer works end to end through the context.
	stop := StageTimerFrom(ctx).Start(StageFallback)
	stop()
	if d := st.Durations(); d[StageFallback] < 0 {
		t.Errorf("fallback duration = %g", d[StageFallback])
	}
}

func TestStageMetricName(t *testing.T) {
	cases := map[string]string{
		StageValidate:    "hilp_serve_stage_validate_seconds",
		StageCacheLookup: "hilp_serve_stage_cache_lookup_seconds",
		StageSolve:       "hilp_serve_stage_solve_seconds",
	}
	for stage, want := range cases {
		if got := StageMetricName(stage); got != want {
			t.Errorf("StageMetricName(%q) = %q, want %q", stage, got, want)
		}
	}
}
