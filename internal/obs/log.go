package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// reqIDKey keys the request-scoped correlation ID in a context.Context.
type reqIDKey struct{}

// WithRequestID returns a context carrying the correlation ID. Every log
// line, span annotation, and metric exemplar emitted under this context is
// stamped with the ID, so one request's activity can be reassembled across
// the HTTP edge, the sweep workers, and the solver internals.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the correlation ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// reqIDCounter de-duplicates IDs if the random source ever repeats within a
// process (and makes IDs unique even under a stubbed rand in tests).
var reqIDCounter atomic.Uint64

// NewRequestID returns a fresh correlation ID: 8 random bytes, hex-encoded,
// suffixed with a process-unique counter.
func NewRequestID() string {
	var raw [8]byte
	if _, err := rand.Read(raw[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a
		// counter-only ID keeps diagnostics alive.
		return fmt.Sprintf("req-%d", reqIDCounter.Add(1))
	}
	return hex.EncodeToString(raw[:]) + "-" + fmt.Sprint(reqIDCounter.Add(1))
}

// ParseLogLevel maps a -log-level flag value to a slog level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Logger is the stack's structured logger: a thin nil-safe wrapper over
// *slog.Logger whose every emit path stamps the context's correlation ID.
// A nil *Logger is a valid, fully disabled logger — methods return
// immediately — so solver layers log unconditionally under the same <2%
// disabled-overhead contract as spans and metrics.
type Logger struct {
	sl  *slog.Logger
	min slog.Level
}

// NewLogger builds a logger writing to w. format selects the handler:
// "json" emits one JSON object per line; anything else emits logfmt-style
// text. level is the minimum level emitted.
func NewLogger(w io.Writer, format string, level slog.Level) *Logger {
	var h slog.Handler
	opts := &slog.HandlerOptions{Level: level}
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return NewLoggerHandler(reqHandler{h}, level)
}

// NewLoggerHandler wraps an arbitrary slog.Handler (e.g. a Fanout of a
// writer handler and a LogBuffer). The handler should be wrapped in
// StampRequestID already if correlation stamping is wanted; NewLogger
// does this automatically.
func NewLoggerHandler(h slog.Handler, level slog.Level) *Logger {
	return &Logger{sl: slog.New(h), min: level}
}

// NewHandler builds a bare writer handler — "json" for one JSON object per
// line, anything else for logfmt-style text — for composing with Fanout and
// StampRequestID before wrapping in NewLoggerHandler.
func NewHandler(w io.Writer, format string, level slog.Level) slog.Handler {
	opts := &slog.HandlerOptions{Level: level}
	if strings.EqualFold(format, "json") {
		return slog.NewJSONHandler(w, opts)
	}
	return slog.NewTextHandler(w, opts)
}

// StampRequestID wraps h so every record it handles is stamped with the
// context's correlation ID (attribute "req") when one is present.
func StampRequestID(h slog.Handler) slog.Handler { return reqHandler{h} }

// Enabled reports whether a record at level would be emitted. Call sites use
// it to skip building expensive attributes.
func (l *Logger) Enabled(level slog.Level) bool {
	return l != nil && level >= l.min
}

// Log emits one structured record. args are alternating key/value pairs as
// in slog. The record is stamped with ctx's correlation ID (attribute "req")
// when one is present.
func (l *Logger) Log(ctx context.Context, level slog.Level, msg string, args ...any) {
	if l == nil || level < l.min {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	l.sl.Log(ctx, level, msg, args...)
}

// Debug emits at LevelDebug.
func (l *Logger) Debug(ctx context.Context, msg string, args ...any) {
	l.Log(ctx, slog.LevelDebug, msg, args...)
}

// Info emits at LevelInfo.
func (l *Logger) Info(ctx context.Context, msg string, args ...any) {
	l.Log(ctx, slog.LevelInfo, msg, args...)
}

// Warn emits at LevelWarn.
func (l *Logger) Warn(ctx context.Context, msg string, args ...any) {
	l.Log(ctx, slog.LevelWarn, msg, args...)
}

// Error emits at LevelError.
func (l *Logger) Error(ctx context.Context, msg string, args ...any) {
	l.Log(ctx, slog.LevelError, msg, args...)
}

// With returns a logger whose records carry the given attributes. Nil stays
// nil.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{sl: l.sl.With(args...), min: l.min}
}

// reqHandler stamps the context's correlation ID onto every record before
// delegating, so callers never thread IDs by hand.
type reqHandler struct {
	inner slog.Handler
}

func (h reqHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h reqHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := RequestID(ctx); id != "" {
		r.AddAttrs(slog.String("req", id))
	}
	return h.inner.Handle(ctx, r)
}

func (h reqHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return reqHandler{h.inner.WithAttrs(attrs)}
}

func (h reqHandler) WithGroup(name string) slog.Handler {
	return reqHandler{h.inner.WithGroup(name)}
}

// Fanout returns a handler that delivers every record to all handlers (the
// first error wins). Use it to tee stderr output into a LogBuffer for the
// /debug/logs surface.
func Fanout(handlers ...slog.Handler) slog.Handler {
	return fanoutHandler(handlers)
}

type fanoutHandler []slog.Handler

func (f fanoutHandler) Enabled(ctx context.Context, level slog.Level) bool {
	for _, h := range f {
		if h.Enabled(ctx, level) {
			return true
		}
	}
	return false
}

func (f fanoutHandler) Handle(ctx context.Context, r slog.Record) error {
	var first error
	for _, h := range f {
		if !h.Enabled(ctx, r.Level) {
			continue
		}
		if err := h.Handle(ctx, r.Clone()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (f fanoutHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := make(fanoutHandler, len(f))
	for i, h := range f {
		out[i] = h.WithAttrs(attrs)
	}
	return out
}

func (f fanoutHandler) WithGroup(name string) slog.Handler {
	out := make(fanoutHandler, len(f))
	for i, h := range f {
		out[i] = h.WithGroup(name)
	}
	return out
}
