package obs

import (
	"sync"
	"testing"
)

func TestBusFanOutAndOrdering(t *testing.T) {
	b := NewBus(8)
	defer b.Close()
	s1 := b.Subscribe()
	s2 := b.Subscribe()
	if got := b.SubscriberCount(); got != 2 {
		t.Fatalf("SubscriberCount = %d, want 2", got)
	}
	for i := 0; i < 3; i++ {
		b.Publish(BusEvent{Kind: "point", Iter: i})
	}
	for _, s := range []*Subscription{s1, s2} {
		var prev uint64
		for i := 0; i < 3; i++ {
			ev := <-s.C
			if ev.Kind != "point" || ev.Iter != i {
				t.Fatalf("event %d = %+v", i, ev)
			}
			if ev.Seq <= prev {
				t.Fatalf("seq not increasing: %d after %d", ev.Seq, prev)
			}
			if ev.TimeUnixNano == 0 {
				t.Fatal("event missing timestamp")
			}
			prev = ev.Seq
		}
	}
}

func TestBusDropOldestOnOverflow(t *testing.T) {
	b := NewBus(2)
	defer b.Close()
	r := NewRegistry()
	dropCounter := r.Counter(MEventsDropped)
	b.SetDropCounter(dropCounter)
	s := b.Subscribe()
	for i := 0; i < 5; i++ {
		b.Publish(BusEvent{Kind: "point", Iter: i})
	}
	// Buffer of 2 with 5 publishes: the 3 oldest were evicted; the freshest
	// window (iters 3, 4) remains.
	if got := <-s.C; got.Iter != 3 {
		t.Errorf("first surviving event iter = %d, want 3", got.Iter)
	}
	if got := <-s.C; got.Iter != 4 {
		t.Errorf("second surviving event iter = %d, want 4", got.Iter)
	}
	if got := s.Dropped(); got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
	if got := dropCounter.Value(); got != 3 {
		t.Errorf("%s = %d, want 3", MEventsDropped, got)
	}
}

func TestBusPublishWithoutSubscribersIsCheapNoop(t *testing.T) {
	b := NewBus(4)
	defer b.Close()
	b.Publish(BusEvent{Kind: "point"})
	s := b.Subscribe()
	b.Publish(BusEvent{Kind: "point"})
	ev := <-s.C
	// The subscriber-less publish was not stamped: sequence starts at 1.
	if ev.Seq != 1 {
		t.Errorf("first subscribed event seq = %d, want 1", ev.Seq)
	}
}

func TestBusUnsubscribeClosesChannel(t *testing.T) {
	b := NewBus(4)
	defer b.Close()
	s := b.Subscribe()
	s.Unsubscribe()
	s.Unsubscribe() // idempotent
	if _, ok := <-s.C; ok {
		t.Fatal("channel still open after Unsubscribe")
	}
	if got := b.SubscriberCount(); got != 0 {
		t.Errorf("SubscriberCount = %d, want 0", got)
	}
	b.Publish(BusEvent{Kind: "point"}) // must not panic
}

func TestBusCloseReleasesSubscribersAndRejectsPublish(t *testing.T) {
	b := NewBus(4)
	s := b.Subscribe()
	b.Close()
	b.Close() // idempotent
	if _, ok := <-s.C; ok {
		t.Fatal("channel still open after Close")
	}
	b.Publish(BusEvent{Kind: "point"}) // must not panic
	post := b.Subscribe()
	if _, ok := <-post.C; ok {
		t.Fatal("subscription on closed bus should have a closed channel")
	}
}

func TestBusNilSafety(t *testing.T) {
	var b *Bus
	b.Publish(BusEvent{})
	b.SetDropCounter(nil)
	b.Close()
	if got := b.SubscriberCount(); got != 0 {
		t.Errorf("nil bus SubscriberCount = %d", got)
	}
	s := b.Subscribe()
	if _, ok := <-s.C; ok {
		t.Fatal("nil bus subscription should have a closed channel")
	}
	var sub *Subscription
	sub.Unsubscribe()
	if sub.Dropped() != 0 {
		t.Error("nil subscription Dropped != 0")
	}
}

func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus(16)
	defer b.Close()
	const publishers, events = 4, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churning subscribers while publishers hammer the bus exercises the
	// subscribe/unsubscribe/publish lock interplay under -race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s := b.Subscribe()
			<-s.C
			s.Unsubscribe()
		}
		close(stop)
	}()
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					b.Publish(BusEvent{Kind: "point", Iter: i})
				}
			}
		}()
	}
	wg.Wait()
}

func TestContextPublishAndPublishing(t *testing.T) {
	var nilCtx *Context
	nilCtx.Publish(BusEvent{}) // nil-safe
	if nilCtx.Publishing() {
		t.Error("nil context Publishing = true")
	}
	octx := &Context{}
	octx.Publish(BusEvent{}) // no bus attached
	if octx.Enabled() {
		t.Error("empty context Enabled = true")
	}
	octx.Bus = NewBus(4)
	defer octx.Bus.Close()
	if !octx.Enabled() {
		t.Error("context with bus Enabled = false")
	}
	if octx.Publishing() {
		t.Error("Publishing = true with no subscribers")
	}
	s := octx.Bus.Subscribe()
	if !octx.Publishing() {
		t.Error("Publishing = false with a subscriber")
	}
	octx.Publish(BusEvent{Kind: "sweep", Name: "start"})
	if ev := <-s.C; ev.Kind != "sweep" || ev.Name != "start" {
		t.Errorf("event = %+v", ev)
	}
}

func TestRecordFansEventsToBus(t *testing.T) {
	bus := NewBus(16)
	defer bus.Close()
	octx := &Context{Recorder: NewRecorder(), Bus: bus}
	s := bus.Subscribe()
	tr := octx.Record("anneal")
	tr.Incumbent(10, 42)
	tr.Certify(42, 40, false)
	tr.End()
	ev := <-s.C
	if ev.Kind != "solver" || ev.Name != "anneal" || ev.Event != "incumbent" || ev.Iter != 10 || ev.Value != 42 {
		t.Errorf("incumbent event = %+v", ev)
	}
	cert := <-s.C
	if cert.Event != "certificate" || cert.Value != 42 {
		t.Errorf("certificate event = %+v", cert)
	}
	if wantGap := (42.0 - 40.0) / 42.0; cert.Gap != wantGap {
		t.Errorf("certificate gap = %g, want %g", cert.Gap, wantGap)
	}
	// The recorder still captured everything alongside the live fan-out.
	recs := octx.Recorder.Snapshot()
	if len(recs) != 1 || len(recs[0].Events) != 1 || recs[0].Certificate == nil {
		t.Fatalf("recorder snapshot = %+v", recs)
	}
}

func TestRecordBusOnlyWithoutRecorder(t *testing.T) {
	bus := NewBus(16)
	defer bus.Close()
	octx := &Context{Bus: bus}
	s := bus.Subscribe()
	tr := octx.Record("tabu")
	if !tr.Active() {
		t.Fatal("bus-only trace should be active")
	}
	tr.Bound(3, 17)
	tr.End()
	if ev := <-s.C; ev.Event != "bound" || ev.Value != 17 {
		t.Errorf("event = %+v", ev)
	}
}
