package obs

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"
)

// CLI bundles the observability flags shared by the hilp binaries:
//
//	-trace file        write a Chrome trace-event JSON file (chrome://tracing)
//	-metrics file      write a metrics dump (.prom/.txt → Prometheus text, else JSON)
//	-v                 verbose progress logging to stderr
//	-pprof addr        serve net/http/pprof on addr (e.g. localhost:6060)
//	-log-format fmt    structured logging to stderr: text or json
//	-log-level level   minimum structured-log level: debug, info, warn, error
//
// Usage: Register the flags, flag.Parse, then Context() to get the (possibly
// nil) *Context to thread into solver configs, and defer Close() to flush
// the output files.
type CLI struct {
	TracePath   string
	MetricsPath string
	PprofAddr   string
	Verbose     bool
	LogFormat   string
	LogLevel    string

	ctx *Context
}

// Register installs the flags on fs (flag.CommandLine when nil).
func (c *CLI) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&c.TracePath, "trace", "", "write a Chrome trace-event JSON file (load at chrome://tracing)")
	fs.StringVar(&c.MetricsPath, "metrics", "", "write a metrics dump (.prom/.txt: Prometheus text, otherwise JSON)")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&c.Verbose, "v", false, "verbose progress logging to stderr")
	fs.StringVar(&c.LogFormat, "log-format", "", "structured logging to stderr: text or json (empty disables unless -v)")
	fs.StringVar(&c.LogLevel, "log-level", "info", "minimum structured-log level: debug, info, warn, or error")
}

// Context builds the observability context selected by the flags and starts
// the pprof server when requested. It returns nil when every flag is off, so
// the fully disabled path stays a nil *Context.
func (c *CLI) Context() *Context {
	if c.ctx != nil {
		return c.ctx
	}
	if c.PprofAddr != "" {
		addr := c.PprofAddr
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "obs: pprof server on %s: %v\n", addr, err)
			}
		}()
	}
	if c.TracePath == "" && c.MetricsPath == "" && !c.Verbose && c.LogFormat == "" {
		return nil
	}
	ctx := &Context{}
	if c.TracePath != "" {
		ctx.Tracer = NewTracer()
	}
	if c.MetricsPath != "" {
		ctx.Metrics = NewRegistry()
	}
	if c.Verbose {
		ctx.Verbosity = 1
		ctx.LogWriter = os.Stderr
	}
	if c.LogFormat != "" {
		level, err := ParseLogLevel(c.LogLevel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs: %v; using info\n", err)
		}
		// -v without an explicit level lowers the floor to debug, matching
		// the legacy verbose behavior.
		if c.Verbose && c.LogLevel == "info" {
			level = slog.LevelDebug
		}
		ctx.Logger = NewLogger(os.Stderr, c.LogFormat, level)
	}
	// -v alone keeps the legacy plain-text writer: structured call sites
	// degrade to "msg key=value" lines through Context.Log's fallback, so
	// verbose output and its level gating stay backward-compatible.
	c.ctx = ctx
	return ctx
}

// Close flushes the trace and metrics files. Call it once, after the work
// being observed finishes.
func (c *CLI) Close() error {
	ctx := c.ctx
	if ctx == nil {
		return nil
	}
	if c.TracePath != "" && ctx.Tracer != nil {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return err
		}
		if err := ctx.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.MetricsPath != "" && ctx.Metrics != nil {
		f, err := os.Create(c.MetricsPath)
		if err != nil {
			return err
		}
		var werr error
		if strings.HasSuffix(c.MetricsPath, ".prom") || strings.HasSuffix(c.MetricsPath, ".txt") {
			werr = ctx.Metrics.WritePrometheus(f)
		} else {
			werr = ctx.Metrics.WriteJSON(f)
		}
		if werr != nil {
			f.Close()
			return werr
		}
		return f.Close()
	}
	return nil
}
