package obs

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"path/filepath"
	"strings"
	"time"
)

// CLI bundles the observability flags shared by the hilp binaries:
//
//	-trace file        write a Chrome trace-event JSON file (chrome://tracing)
//	-metrics file      write a metrics dump (.prom/.txt → Prometheus text, else JSON)
//	-v                 verbose progress logging to stderr
//	-pprof addr        serve net/http/pprof on addr (e.g. localhost:6060)
//	-log-format fmt    structured logging to stderr: text or json
//	-log-level level   minimum structured-log level: debug, info, warn, error
//	-otlp-endpoint url POST completed spans as OTLP/HTTP JSON on exit
//
// Usage: Register the flags, flag.Parse, then Context() to get the (possibly
// nil) *Context to thread into solver configs, and defer Close() to flush
// the output files and export spans.
type CLI struct {
	TracePath    string
	MetricsPath  string
	PprofAddr    string
	Verbose      bool
	LogFormat    string
	LogLevel     string
	OTLPEndpoint string

	// Service is the OTLP service.name resource attribute; defaults to the
	// binary's base name.
	Service string
	// RequestID, when set by the binary, is attached to the exported root
	// span as the hilp.request_id attribute, linking the trace to log lines
	// and /debug surfaces.
	RequestID string

	ctx   *Context
	epoch time.Time
}

// Register installs the flags on fs (flag.CommandLine when nil).
func (c *CLI) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&c.TracePath, "trace", "", "write a Chrome trace-event JSON file (load at chrome://tracing)")
	fs.StringVar(&c.MetricsPath, "metrics", "", "write a metrics dump (.prom/.txt: Prometheus text, otherwise JSON)")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&c.Verbose, "v", false, "verbose progress logging to stderr")
	fs.StringVar(&c.LogFormat, "log-format", "", "structured logging to stderr: text or json (empty disables unless -v)")
	fs.StringVar(&c.LogLevel, "log-level", "info", "minimum structured-log level: debug, info, warn, or error")
	fs.StringVar(&c.OTLPEndpoint, "otlp-endpoint", "", "OTLP/HTTP JSON trace endpoint (e.g. http://localhost:4318/v1/traces); spans are exported on exit")
}

// Context builds the observability context selected by the flags and starts
// the pprof server when requested. It returns nil when every flag is off, so
// the fully disabled path stays a nil *Context.
func (c *CLI) Context() *Context {
	if c.ctx != nil {
		return c.ctx
	}
	if c.PprofAddr != "" {
		addr := c.PprofAddr
		go func() {
			defer func() {
				if r := recover(); r != nil {
					fmt.Fprintf(os.Stderr, "obs: pprof server on %s panicked (recovered): %v\n", addr, r)
				}
			}()
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "obs: pprof server on %s: %v\n", addr, err)
			}
		}()
	}
	if c.TracePath == "" && c.MetricsPath == "" && !c.Verbose && c.LogFormat == "" && c.OTLPEndpoint == "" {
		return nil
	}
	ctx := &Context{}
	if c.TracePath != "" || c.OTLPEndpoint != "" {
		// OTLP export reuses the span buffer: batch binaries record the run's
		// spans and convert the snapshot into one trace at Close.
		ctx.Tracer = NewTracer()
		c.epoch = time.Now()
	}
	if c.MetricsPath != "" {
		ctx.Metrics = NewRegistry()
	}
	if c.Verbose {
		ctx.Verbosity = 1
		ctx.LogWriter = os.Stderr
	}
	if c.LogFormat != "" {
		level, err := ParseLogLevel(c.LogLevel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs: %v; using info\n", err)
		}
		// -v without an explicit level lowers the floor to debug, matching
		// the legacy verbose behavior.
		if c.Verbose && c.LogLevel == "info" {
			level = slog.LevelDebug
		}
		ctx.Logger = NewLogger(os.Stderr, c.LogFormat, level)
	}
	// -v alone keeps the legacy plain-text writer: structured call sites
	// degrade to "msg key=value" lines through Context.Log's fallback, so
	// verbose output and its level gating stay backward-compatible.
	c.ctx = ctx
	return ctx
}

// Close flushes the trace and metrics files and exports spans to the OTLP
// endpoint when one was given. Call it once, after the work being observed
// finishes.
func (c *CLI) Close() error {
	ctx := c.ctx
	if ctx == nil {
		return nil
	}
	if c.OTLPEndpoint != "" && ctx.Tracer != nil {
		if err := c.exportOTLP(ctx.Tracer); err != nil {
			fmt.Fprintf(os.Stderr, "obs: otlp export: %v\n", err)
		}
	}
	if c.TracePath != "" && ctx.Tracer != nil {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return err
		}
		if err := ctx.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.MetricsPath != "" && ctx.Metrics != nil {
		f, err := os.Create(c.MetricsPath)
		if err != nil {
			return err
		}
		var werr error
		if strings.HasSuffix(c.MetricsPath, ".prom") || strings.HasSuffix(c.MetricsPath, ".txt") {
			werr = ctx.Metrics.WritePrometheus(f)
		} else {
			werr = ctx.Metrics.WriteJSON(f)
		}
		if werr != nil {
			f.Close()
			return werr
		}
		return f.Close()
	}
	return nil
}

// exportOTLP converts the tracer snapshot into one OTLP trace — a synthetic
// root span covering the whole run, with every recorded span hanging off it
// by time containment — and POSTs it to the configured endpoint.
func (c *CLI) exportOTLP(t *Tracer) error {
	snap := t.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	service := c.Service
	if service == "" {
		service = filepath.Base(os.Args[0])
	}
	tc := NewTraceContext()
	spans := SpansToOTLP(snap, tc, c.epoch)
	// Root span: spans the earliest start to the latest end of the run.
	var lo, hi int64
	for i, sp := range spans {
		if i == 0 || sp.StartUnixNano < lo {
			lo = sp.StartUnixNano
		}
		if sp.EndUnixNano > hi {
			hi = sp.EndUnixNano
		}
	}
	root := OTLPSpan{
		TraceID:       tc.TraceIDString(),
		SpanID:        tc.SpanIDString(),
		Name:          service,
		StartUnixNano: lo,
		EndUnixNano:   hi,
	}
	if c.RequestID != "" {
		root.Attrs = append(root.Attrs, OTLPStr("hilp.request_id", c.RequestID))
	}
	exp := NewOTLPExporter(c.OTLPEndpoint, service)
	exp.Enqueue(root)
	exp.EnqueueAll(spans)
	flushCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err := exp.Flush(flushCtx)
	if cerr := exp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		if _, failed, dropped := exp.Stats(); failed > 0 || dropped > 0 {
			err = fmt.Errorf("%d spans failed, %d dropped", failed, dropped)
		}
	}
	return err
}
