package obs

import (
	"sync"
	"time"
)

// EventKind classifies one flight-recorder event.
type EventKind uint8

// Recorder event kinds.
const (
	// EvIncumbent is a new best feasible objective (makespan in steps for
	// the CP layers, objective value for the MILP layer).
	EvIncumbent EventKind = iota
	// EvBound is an improved proven lower bound.
	EvBound
	// EvTemperature is the annealer's temperature when an event fired.
	EvTemperature
	// EvRestart marks the start of a metaheuristic restart; Value is the
	// restart index.
	EvRestart
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvIncumbent:
		return "incumbent"
	case EvBound:
		return "bound"
	case EvTemperature:
		return "temperature"
	case EvRestart:
		return "restart"
	}
	return "unknown"
}

// Event is one timestamped flight-recorder observation.
type Event struct {
	Kind EventKind
	// TimeNs is nanoseconds since the recorder was created.
	TimeNs int64
	// Iter is the solver's own progress coordinate when the event fired:
	// iterations for the metaheuristics, explored nodes for the exact
	// searches, stage index for the layered solve. It is deterministic for a
	// fixed seed, unlike TimeNs, so convergence curves plot against it.
	Iter int
	// Value is the observation (makespan, bound, temperature, ...).
	Value float64
}

// Certificate is the final solution-quality claim of one solve: the incumbent
// objective, the proven bound, and whether optimality was proven.
type Certificate struct {
	Incumbent float64
	Bound     float64
	Proven    bool
}

// Gap returns the relative optimality gap (Incumbent - Bound) / Incumbent,
// clamped to zero for proven or degenerate certificates.
func (c Certificate) Gap() float64 {
	if c.Proven || c.Incumbent <= 0 || c.Bound >= c.Incumbent {
		return 0
	}
	return (c.Incumbent - c.Bound) / c.Incumbent
}

// solveRec is one recorded solver run. endNs stays -1 while open.
type solveRec struct {
	solver  string
	startNs int64
	endNs   int64
	events  []Event
	cert    *Certificate
}

// Recorder collects per-solve convergence events from the solver stack: the
// flight recorder behind run reports. Like Tracer it is safe for concurrent
// use (sweep workers record in parallel) and a nil *Recorder is a valid,
// fully disabled recorder — Begin returns an inert SolveTrace, so call sites
// record unconditionally at no cost on the disabled path.
type Recorder struct {
	mu     sync.Mutex
	now    func() int64 // nanoseconds since recorder creation
	solves []solveRec
}

// NewRecorder returns a recorder stamping events with the wall clock.
func NewRecorder() *Recorder {
	start := time.Now()
	return &Recorder{now: func() int64 { return int64(time.Since(start)) }}
}

// NewRecorderWithClock returns a recorder using a caller-supplied monotonic
// clock returning nanoseconds. Tests inject a counting clock to make
// recordings byte-for-byte deterministic.
func NewRecorderWithClock(now func() int64) *Recorder {
	return &Recorder{now: now}
}

// Begin opens a new solver run. A nil recorder returns an inert trace.
func (r *Recorder) Begin(solver string) SolveTrace {
	if r == nil {
		return SolveTrace{}
	}
	r.mu.Lock()
	idx := len(r.solves)
	r.solves = append(r.solves, solveRec{solver: solver, startNs: r.now(), endNs: -1})
	r.mu.Unlock()
	return SolveTrace{r: r, idx: idx}
}

// SolveTrace is a handle to one recorded solver run. The zero value is inert:
// every method is a no-op, so disabled recording costs only a nil check.
// When a bus is attached (Context.Record does this) every event is also
// fanned out live as a Kind "solver" BusEvent.
type SolveTrace struct {
	r   *Recorder
	idx int
	// bus, solver, and req carry the live fan-out target and its event
	// labels; bus is nil for traces begun directly on a Recorder.
	bus    *Bus
	solver string
	req    string
}

// Active reports whether the trace records anywhere.
func (t SolveTrace) Active() bool { return t.r != nil || t.bus != nil }

func (t SolveTrace) event(kind EventKind, iter int, value float64) {
	if t.r != nil {
		t.r.mu.Lock()
		rec := &t.r.solves[t.idx]
		rec.events = append(rec.events, Event{Kind: kind, TimeNs: t.r.now(), Iter: iter, Value: value})
		t.r.mu.Unlock()
	}
	if t.bus != nil {
		t.bus.Publish(BusEvent{Kind: "solver", Name: t.solver, Event: kind.String(), Req: t.req, Iter: iter, Value: value})
	}
}

// Incumbent records a new best feasible objective at iteration iter.
func (t SolveTrace) Incumbent(iter int, value float64) { t.event(EvIncumbent, iter, value) }

// Bound records an improved proven lower bound at iteration iter.
func (t SolveTrace) Bound(iter int, value float64) { t.event(EvBound, iter, value) }

// Temperature records the annealing temperature at iteration iter.
func (t SolveTrace) Temperature(iter int, value float64) { t.event(EvTemperature, iter, value) }

// Restart marks the start of restart k at iteration iter.
func (t SolveTrace) Restart(iter, k int) { t.event(EvRestart, iter, float64(k)) }

// Certify attaches the final gap certificate to the run. The last call wins.
func (t SolveTrace) Certify(incumbent, bound float64, proven bool) {
	cert := Certificate{Incumbent: incumbent, Bound: bound, Proven: proven}
	if t.r != nil {
		t.r.mu.Lock()
		c := cert
		t.r.solves[t.idx].cert = &c
		t.r.mu.Unlock()
	}
	if t.bus != nil {
		t.bus.Publish(BusEvent{Kind: "solver", Name: t.solver, Event: "certificate", Req: t.req, Value: incumbent, Gap: cert.Gap()})
	}
}

// End closes the run. Ending an already-ended run is a no-op.
func (t SolveTrace) End() {
	if t.r == nil {
		return
	}
	t.r.mu.Lock()
	if rec := &t.r.solves[t.idx]; rec.endNs < 0 {
		rec.endNs = t.r.now()
	}
	t.r.mu.Unlock()
}

// SolveRecord is a read-only copy of one recorded solver run.
type SolveRecord struct {
	Solver  string
	StartNs int64
	EndNs   int64 // -1 while open
	Events  []Event
	// Certificate is the final solution-quality claim, nil when the run was
	// not certified (inner improver runs, exhausted-by-caller searches).
	Certificate *Certificate
}

// Snapshot returns copies of all recorded solver runs in begin order.
func (r *Recorder) Snapshot() []SolveRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SolveRecord, len(r.solves))
	for i, s := range r.solves {
		rec := SolveRecord{
			Solver:  s.solver,
			StartNs: s.startNs,
			EndNs:   s.endNs,
			Events:  append([]Event(nil), s.events...),
		}
		if s.cert != nil {
			c := *s.cert
			rec.Certificate = &c
		}
		out[i] = rec
	}
	return out
}

// LastCertificate returns the most recent certificate recorded by any run,
// or false when none was certified. Sweep progress lines use it to surface
// the provable gap of the latest finished solve.
func (r *Recorder) LastCertificate() (Certificate, bool) {
	if r == nil {
		return Certificate{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.solves) - 1; i >= 0; i-- {
		if c := r.solves[i].cert; c != nil {
			return *c, true
		}
	}
	return Certificate{}, false
}
