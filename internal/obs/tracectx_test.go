package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if !tc.Valid() {
		t.Fatal("parsed context invalid")
	}
	if got := tc.TraceIDString(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", got)
	}
	if got := tc.SpanIDString(); got != "00f067aa0ba902b7" {
		t.Errorf("span id = %s", got)
	}
	if !tc.Sampled {
		t.Error("sampled flag lost")
	}
	if got := tc.String(); got != h {
		t.Errorf("String() = %s, want %s", got, h)
	}
}

func TestParseTraceparentUnsampled(t *testing.T) {
	tc, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if err != nil {
		t.Fatal(err)
	}
	if tc.Sampled {
		t.Error("unsampled header parsed as sampled")
	}
	if !strings.HasSuffix(tc.String(), "-00") {
		t.Errorf("String() = %s, want -00 suffix", tc.String())
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"not-a-traceparent",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-zzf067aa0ba902b7-01", // non-hex span id
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",   // short trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",  // short flags
	}
	for _, h := range bad {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
}

func TestNewTraceContextAndChild(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() || !tc.Sampled {
		t.Fatalf("NewTraceContext() = %+v", tc)
	}
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Error("child changed trace id")
	}
	if child.SpanID == tc.SpanID {
		t.Error("child kept parent span id")
	}
	if tc2 := NewTraceContext(); tc2.TraceID == tc.TraceID {
		t.Error("two roots share a trace id")
	}
}

func TestTraceContextOnContext(t *testing.T) {
	if _, ok := TraceContextFrom(context.Background()); ok {
		t.Error("empty context reported a trace context")
	}
	tc := NewTraceContext()
	ctx := WithTraceContext(context.Background(), tc)
	got, ok := TraceContextFrom(ctx)
	if !ok || got != tc {
		t.Errorf("TraceContextFrom = %+v, %v", got, ok)
	}
	// Invalid contexts are not stored.
	if ctx2 := WithTraceContext(context.Background(), TraceContext{}); ctx2 != context.Background() {
		t.Error("invalid trace context was stored")
	}
}
