package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(1.5)
	g.Set(-2.25)
	if got := g.Value(); got != -2.25 {
		t.Errorf("gauge = %g, want -2.25", got)
	}

	h := r.Histogram("h", 1, 2)
	for _, v := range []float64{0.5, 1, 1.5, 3} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 6 {
		t.Errorf("histogram sum = %g, want 6", h.Sum())
	}
	// v == bound lands in that bucket (Prometheus le is inclusive).
	want := []int64{2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics accumulated state")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry WritePrometheus = %q, %v", buf.String(), err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("hilp_solves_total").Add(3)
	r.Gauge("hilp_gap").Set(0.07)
	h := r.Histogram("hilp_point_seconds", 1, 2)
	for _, v := range []float64{0.5, 1.5, 3} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE hilp_solves_total counter",
		"hilp_solves_total 3",
		"# TYPE hilp_gap gauge",
		"hilp_gap 0.07",
		"# TYPE hilp_point_seconds histogram",
		`hilp_point_seconds_bucket{le="1"} 1`,
		`hilp_point_seconds_bucket{le="2"} 2`,
		`hilp_point_seconds_bucket{le="+Inf"} 3`,
		"hilp_point_seconds_sum 5",
		"hilp_point_seconds_count 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("Prometheus dump:\n%s\nwant:\n%s", got, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("hilp_solves_total").Add(7)
	r.Gauge("hilp_gap").Set(0.125)
	h := r.Histogram("hilp_point_seconds", 0.5, 1, 2)
	for _, v := range []float64{0.25, 0.75, 1.5, 9} {
		h.Observe(v)
	}

	var first bytes.Buffer
	if err := r.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := r2.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("round trip changed the dump:\n%s\nvs:\n%s", first.String(), second.String())
	}

	if got := r2.Counter("hilp_solves_total").Value(); got != 7 {
		t.Errorf("reloaded counter = %d, want 7", got)
	}
	if got := r2.Gauge("hilp_gap").Value(); got != 0.125 {
		t.Errorf("reloaded gauge = %g, want 0.125", got)
	}
	h2 := r2.Histogram("hilp_point_seconds")
	if h2.Count() != 4 || h2.Sum() != 11.5 {
		t.Errorf("reloaded histogram count/sum = %d/%g, want 4/11.5", h2.Count(), h2.Sum())
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	bad := `{"histograms":{"h":{"buckets":[1,2],"counts":[1],"sum":0,"count":1}}}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("mismatched bucket/count lengths accepted")
	}
}

func TestMetricsConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				r.Counter("c").Inc()
				r.Histogram("h", 1).Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	h := r.Histogram("h")
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	if h.Sum() != goroutines*perG*0.5 {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), goroutines*perG*0.5)
	}
}
