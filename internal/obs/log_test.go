package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	ctx := context.Background()
	// Every method must no-op on the nil receiver.
	l.Log(ctx, slog.LevelError, "boom", "k", "v")
	l.Debug(ctx, "d")
	l.Info(ctx, "i")
	l.Warn(ctx, "w")
	l.Error(ctx, "e")
	if l.Enabled(slog.LevelError) {
		t.Error("nil logger reports enabled")
	}
	if l.With("k", "v") != nil {
		t.Error("nil logger With() should stay nil")
	}

	// A nil Context must also absorb structured logs.
	var c *Context
	c.Log(ctx, slog.LevelError, "boom")
	if c.LogEnabled(slog.LevelError) {
		t.Error("nil context reports log enabled")
	}
}

func TestLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "text", slog.LevelWarn)
	ctx := context.Background()
	l.Info(ctx, "hidden")
	l.Warn(ctx, "shown", "k", 1)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked past a warn threshold:\n%s", out)
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "k=1") {
		t.Errorf("warn line missing or unstructured:\n%s", out)
	}

	buf.Reset()
	j := NewLogger(&buf, "json", slog.LevelInfo)
	j.Info(ctx, "json line", "answer", 42)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json format did not produce JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "json line" || rec["answer"] != float64(42) {
		t.Errorf("json record = %v", rec)
	}
}

func TestRequestIDStampedOnRecords(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "json", slog.LevelInfo)
	ctx := WithRequestID(context.Background(), "abc-123")
	l.Info(ctx, "stamped")
	l.Info(context.Background(), "unstamped")

	dec := json.NewDecoder(&buf)
	var first, second map[string]any
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&second); err != nil {
		t.Fatal(err)
	}
	if first["req"] != "abc-123" {
		t.Errorf("record under a request context lacks req: %v", first)
	}
	if _, ok := second["req"]; ok {
		t.Errorf("record without a request context has req: %v", second)
	}
}

func TestWithRequestIDEmptyIsNoop(t *testing.T) {
	ctx := context.Background()
	if got := WithRequestID(ctx, ""); got != ctx {
		t.Error("empty ID should return the original context")
	}
	if RequestID(nil) != "" {
		t.Error("RequestID(nil) should be empty")
	}
}

func TestNewRequestIDDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate ID %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("want error for unknown level")
	}
}

func TestContextLogFallsBackToLogWriter(t *testing.T) {
	// Without a structured Logger, Context.Log degrades to the legacy Logf
	// path with the same verbosity gating (-v semantics preserved).
	var buf bytes.Buffer
	c := &Context{LogWriter: &buf, Verbosity: 1}
	ctx := WithRequestID(context.Background(), "legacy-1")
	c.Log(ctx, slog.LevelDebug, "too detailed") // verbosity 2 > 1: suppressed
	c.Log(ctx, slog.LevelWarn, "warned", "k", "v")
	out := buf.String()
	if strings.Contains(out, "too detailed") {
		t.Errorf("debug leaked at verbosity 1:\n%s", out)
	}
	if !strings.Contains(out, "warned") || !strings.Contains(out, "req=legacy-1") || !strings.Contains(out, "k=v") {
		t.Errorf("fallback line missing content:\n%s", out)
	}
}

func TestFanoutDeliversToAll(t *testing.T) {
	var a, b bytes.Buffer
	h := Fanout(
		NewHandler(&a, "json", slog.LevelInfo),
		NewHandler(&b, "json", slog.LevelDebug),
	)
	l := NewLoggerHandler(StampRequestID(h), slog.LevelDebug)
	ctx := WithRequestID(context.Background(), "fan-1")
	l.Info(ctx, "both")
	l.Debug(ctx, "only-b")
	if got := strings.Count(a.String(), "\n"); got != 1 {
		t.Errorf("handler a got %d lines, want 1 (info only):\n%s", got, a.String())
	}
	if got := strings.Count(b.String(), "\n"); got != 2 {
		t.Errorf("handler b got %d lines, want 2:\n%s", got, b.String())
	}
	if !strings.Contains(a.String(), `"req":"fan-1"`) {
		t.Errorf("fanout lost the request stamp:\n%s", a.String())
	}
}

func TestLogBufferRing(t *testing.T) {
	b := NewLogBuffer(4)
	l := NewLoggerHandler(StampRequestID(b), slog.LevelDebug)
	ctx := WithRequestID(context.Background(), "ring-1")
	for i := 0; i < 10; i++ {
		l.Info(ctx, fmt.Sprintf("msg-%d", i), "i", i)
	}
	entries := b.Entries()
	if len(entries) != 4 {
		t.Fatalf("ring kept %d entries, want 4", len(entries))
	}
	if b.Total() != 10 {
		t.Errorf("total = %d, want 10", b.Total())
	}
	// Oldest-first: the ring retains the last 4 records.
	for i, e := range entries {
		want := fmt.Sprintf("msg-%d", 6+i)
		if e.Msg != want {
			t.Errorf("entry %d = %q, want %q", i, e.Msg, want)
		}
		if e.Req != "ring-1" {
			t.Errorf("entry %d req = %q, want ring-1", i, e.Req)
		}
		if e.Attrs["i"] != fmt.Sprint(6+i) {
			t.Errorf("entry %d attrs = %v", i, e.Attrs)
		}
		if e.Level != "INFO" {
			t.Errorf("entry %d level = %q", i, e.Level)
		}
	}
}

func TestLogBufferNilSafe(t *testing.T) {
	var b *LogBuffer
	if got := b.Entries(); got != nil {
		t.Errorf("nil buffer Entries() = %v", got)
	}
	if b.Total() != 0 {
		t.Error("nil buffer Total() != 0")
	}
}

func TestCaptureRuntimeAndBuildInfo(t *testing.T) {
	r := NewRegistry()
	CaptureRuntime(r)
	SetBuildInfo(r)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{MGoGoroutines, MGoHeapAllocBytes, MGoGCPauseSec, MGoGCCycles, MBuildInfo} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output lacks %s:\n%s", want, text)
		}
	}
	if r.Gauge(MGoGoroutines).Value() < 1 {
		t.Error("goroutine gauge should be >= 1")
	}
}

func TestHistogramExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", 0.1, 1, 10)
	h.ObserveEx(0.5, "req-a")
	h.ObserveEx(2.0, "req-b")
	ex := h.LastExemplar()
	if ex == nil || ex.Req != "req-b" || ex.Value != 2.0 {
		t.Fatalf("LastExemplar = %+v, want req-b/2.0", ex)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ex2 := r2.Histogram("test_seconds", 0.1, 1, 10).LastExemplar()
	if ex2 == nil || ex2.Req != "req-b" || ex2.Value != 2.0 {
		t.Fatalf("round-tripped exemplar = %+v, want req-b/2.0", ex2)
	}

	var buf2 bytes.Buffer
	if err := r2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("JSON round trip not byte-identical:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}
}
