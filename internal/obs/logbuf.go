package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// LogEntry is one captured structured-log record in JSON-friendly form for
// the /debug/logs surface.
type LogEntry struct {
	Time  time.Time `json:"time"`
	Level string    `json:"level"`
	Msg   string    `json:"msg"`
	// Req is the request's correlation ID, when the record was emitted under
	// a request-scoped context.
	Req string `json:"req,omitempty"`
	// Attrs flattens the record's remaining attributes (dotted keys for
	// groups), values rendered as strings.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// LogBuffer is a bounded in-memory ring of recent structured log records.
// It implements slog.Handler, so it is attached by fanning it out with the
// writer handler (see Fanout); the newest records overwrite the oldest once
// the ring is full. Safe for concurrent use.
type LogBuffer struct {
	mu    sync.Mutex
	ring  []LogEntry
	next  int
	total uint64

	// bound attributes / group prefix accumulated via WithAttrs/WithGroup.
	bound  []slog.Attr
	prefix string
}

// NewLogBuffer returns a ring keeping the last capacity records
// (capacity < 1 selects 256).
func NewLogBuffer(capacity int) *LogBuffer {
	if capacity < 1 {
		capacity = 256
	}
	return &LogBuffer{ring: make([]LogEntry, 0, capacity)}
}

// Enabled implements slog.Handler: the buffer captures every level and
// leaves filtering to the writer handler it is fanned out with.
func (b *LogBuffer) Enabled(context.Context, slog.Level) bool { return b != nil }

// Handle implements slog.Handler by appending the record to the ring.
func (b *LogBuffer) Handle(ctx context.Context, r slog.Record) error {
	if b == nil {
		return nil
	}
	e := LogEntry{Time: r.Time, Level: r.Level.String(), Msg: r.Message, Req: RequestID(ctx)}
	add := func(prefix string, a slog.Attr) {
		key := prefix + a.Key
		if key == "req" && e.Req == "" {
			e.Req = a.Value.String()
			return
		}
		if e.Attrs == nil {
			e.Attrs = make(map[string]string)
		}
		e.Attrs[key] = a.Value.String()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, a := range b.bound {
		add(b.prefix, a)
	}
	r.Attrs(func(a slog.Attr) bool {
		if a.Value.Kind() == slog.KindGroup {
			for _, ga := range a.Value.Group() {
				add(b.prefix+a.Key+".", ga)
			}
			return true
		}
		add(b.prefix, a)
		return true
	})
	b.total++
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
	} else {
		b.ring[b.next] = e
		b.next = (b.next + 1) % cap(b.ring)
	}
	return nil
}

// WithAttrs implements slog.Handler. The returned handler shares the ring.
func (b *LogBuffer) WithAttrs(attrs []slog.Attr) slog.Handler {
	if b == nil || len(attrs) == 0 {
		return b
	}
	return &boundBuffer{buf: b, bound: attrs}
}

// WithGroup implements slog.Handler. The returned handler shares the ring.
func (b *LogBuffer) WithGroup(name string) slog.Handler {
	if b == nil || name == "" {
		return b
	}
	return &boundBuffer{buf: b, prefix: name + "."}
}

// boundBuffer carries WithAttrs/WithGroup state without forking the ring.
type boundBuffer struct {
	buf    *LogBuffer
	bound  []slog.Attr
	prefix string
}

func (d *boundBuffer) Enabled(ctx context.Context, l slog.Level) bool {
	return d.buf.Enabled(ctx, l)
}

func (d *boundBuffer) Handle(ctx context.Context, r slog.Record) error {
	// Fold bound attrs into the record so the shared ring's Handle sees them.
	rr := r.Clone()
	for _, a := range d.bound {
		a.Key = d.prefix + a.Key
		rr.AddAttrs(a)
	}
	return d.buf.Handle(ctx, rr)
}

func (d *boundBuffer) WithAttrs(attrs []slog.Attr) slog.Handler {
	all := append(append([]slog.Attr(nil), d.bound...), attrs...)
	return &boundBuffer{buf: d.buf, bound: all, prefix: d.prefix}
}

func (d *boundBuffer) WithGroup(name string) slog.Handler {
	return &boundBuffer{buf: d.buf, bound: d.bound, prefix: d.prefix + name + "."}
}

// Entries returns the buffered records, oldest first.
func (b *LogBuffer) Entries() []LogEntry {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]LogEntry, 0, len(b.ring))
	if len(b.ring) < cap(b.ring) {
		out = append(out, b.ring...)
		return out
	}
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Total reports how many records were ever captured (including those the
// ring has since overwritten).
func (b *LogBuffer) Total() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}
