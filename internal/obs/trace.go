package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer records hierarchical spans and exports them in the Chrome
// trace-event format (load the file at chrome://tracing or
// https://ui.perfetto.dev). It is safe for concurrent use: root spans get
// their own track (tid), children inherit their parent's, so parallel sweep
// evaluations render as parallel tracks.
type Tracer struct {
	mu      sync.Mutex
	now     func() int64 // nanoseconds since tracer creation
	events  []traceEvent
	nextTID int64
}

// spanArg is one key/value annotation on a span.
type spanArg struct {
	key   string
	str   string
	num   float64
	isStr bool
}

// traceEvent is one recorded span. dur stays -1 while the span is open.
type traceEvent struct {
	name  string
	tid   int64
	start int64
	dur   int64
	args  []spanArg
}

// NewTracer returns a tracer stamping spans with the wall clock.
func NewTracer() *Tracer {
	start := time.Now()
	return &Tracer{now: func() int64 { return int64(time.Since(start)) }}
}

// NewTracerWithClock returns a tracer using a caller-supplied monotonic
// clock returning nanoseconds. Tests inject a counting clock to make traces
// byte-for-byte deterministic.
func NewTracerWithClock(now func() int64) *Tracer {
	return &Tracer{now: now}
}

// StartSpan opens a root span on a fresh track. On a nil tracer it returns
// the inert zero Span.
func (t *Tracer) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	t.nextTID++
	s := t.spanLocked(name, t.nextTID)
	t.mu.Unlock()
	return s
}

// spanLocked appends an open event; t.mu must be held.
func (t *Tracer) spanLocked(name string, tid int64) Span {
	idx := len(t.events)
	t.events = append(t.events, traceEvent{name: name, tid: tid, start: t.now(), dur: -1})
	return Span{t: t, idx: idx, tid: tid}
}

// Span is a handle to one open or closed trace interval. The zero value is
// inert: Child returns another inert span and End/Arg do nothing, so
// disabled tracing costs neither branches at call sites nor allocations.
type Span struct {
	t   *Tracer
	idx int
	tid int64
}

// Active reports whether the span records anywhere.
func (s Span) Active() bool { return s.t != nil }

// Child opens a sub-span on the same track.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	s.t.mu.Lock()
	c := s.t.spanLocked(name, s.tid)
	s.t.mu.Unlock()
	return c
}

// End closes the span. Ending an already-ended span is a no-op.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if e := &s.t.events[s.idx]; e.dur < 0 {
		e.dur = s.t.now() - e.start
	}
	s.t.mu.Unlock()
}

// Arg annotates the span with a numeric value and returns it for chaining.
func (s Span) Arg(key string, v float64) Span {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	e := &s.t.events[s.idx]
	e.args = append(e.args, spanArg{key: key, num: v})
	s.t.mu.Unlock()
	return s
}

// ArgInt annotates the span with an integer value.
func (s Span) ArgInt(key string, v int) Span { return s.Arg(key, float64(v)) }

// ArgStr annotates the span with a string value.
func (s Span) ArgStr(key, v string) Span {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	e := &s.t.events[s.idx]
	e.args = append(e.args, spanArg{key: key, str: v, isStr: true})
	s.t.mu.Unlock()
	return s
}

// SpanRecord is a read-only copy of one recorded span, for tests and
// programmatic inspection.
type SpanRecord struct {
	Name    string
	TID     int64
	StartNs int64
	DurNs   int64 // -1 while open
	Args    map[string]float64
	StrArgs map[string]string
}

// Snapshot returns copies of all recorded spans in creation order. A nil
// tracer has recorded nothing and returns nil.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.events))
	for i, e := range t.events {
		r := SpanRecord{Name: e.name, TID: e.tid, StartNs: e.start, DurNs: e.dur}
		for _, a := range e.args {
			if a.isStr {
				if r.StrArgs == nil {
					r.StrArgs = map[string]string{}
				}
				r.StrArgs[a.key] = a.str
			} else {
				if r.Args == nil {
					r.Args = map[string]float64{}
				}
				r.Args[a.key] = a.num
			}
		}
		out[i] = r
	}
	return out
}

// WellNested verifies that the spans of each track either nest or are
// disjoint — the structural invariant the Chrome trace viewer assumes for
// same-track events. It returns a descriptive error on the first violation
// (overlapping spans, an unclosed span, or a child escaping its parent).
func WellNested(recs []SpanRecord) error {
	type openSpan struct {
		name string
		end  int64
	}
	stacks := map[int64][]openSpan{}
	for _, r := range recs {
		if r.DurNs < 0 {
			return fmt.Errorf("span %q on track %d was never ended", r.Name, r.TID)
		}
		stack := stacks[r.TID]
		// Pop ancestors that finished before this span starts.
		for len(stack) > 0 && stack[len(stack)-1].end <= r.StartNs {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			if parent := stack[len(stack)-1]; r.StartNs+r.DurNs > parent.end {
				return fmt.Errorf("span %q [%d,%d) escapes enclosing %q ending at %d on track %d",
					r.Name, r.StartNs, r.StartNs+r.DurNs, parent.name, parent.end, r.TID)
			}
		}
		stacks[r.TID] = append(stack, openSpan{name: r.Name, end: r.StartNs + r.DurNs})
	}
	return nil
}

// chromeEvent mirrors one entry of the Chrome trace-event JSON format.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavor of the format, which tools accept
// alongside the bare-array flavor.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every span as a complete ("X") trace event.
// Spans still open at export time are given their elapsed duration so the
// file is always loadable. A nil tracer writes an empty but loadable trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return json.NewEncoder(w).Encode(chromeTrace{TraceEvents: []chromeEvent{}, DisplayUnit: "ms"})
	}
	t.mu.Lock()
	now := t.now()
	events := make([]chromeEvent, len(t.events))
	for i, e := range t.events {
		dur := e.dur
		if dur < 0 {
			dur = now - e.start
		}
		ev := chromeEvent{
			Name: e.name,
			Ph:   "X",
			Ts:   float64(e.start) / 1e3,
			Dur:  float64(dur) / 1e3,
			Pid:  1,
			Tid:  e.tid,
		}
		if len(e.args) > 0 {
			ev.Args = make(map[string]any, len(e.args))
			for _, a := range e.args {
				if a.isStr {
					ev.Args[a.key] = a.str
				} else {
					ev.Args[a.key] = a.num
				}
			}
		}
		events[i] = ev
	}
	t.mu.Unlock()

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayUnit: "ms"})
}
