package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// fakeClock returns a monotonic clock advancing 1µs per reading, making
// traces byte-for-byte deterministic.
func fakeClock() func() int64 {
	var t int64
	return func() int64 {
		t += 1000
		return t
	}
}

// buildTree records a small evaluate→solve→{bounds,anneal} tree plus a
// second root, mirroring the solver pipeline shape.
func buildTree(tr *Tracer) {
	ev := tr.StartSpan("evaluate").ArgInt("apps", 3)
	solve := ev.Child("solve")
	b := solve.Child("bounds")
	b.ArgInt("lower_bound", 42)
	b.End()
	a := solve.Child("anneal")
	a.End()
	solve.End()
	ev.End()

	other := tr.StartSpan("sweep")
	other.End()
}

func TestSpanTreeWellNested(t *testing.T) {
	tr := NewTracerWithClock(fakeClock())
	buildTree(tr)
	recs := tr.Snapshot()
	if len(recs) != 5 {
		t.Fatalf("got %d spans, want 5", len(recs))
	}
	if err := WellNested(recs); err != nil {
		t.Fatal(err)
	}

	// Children share the root's track; independent roots get fresh tracks.
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	ev := byName["evaluate"]
	for _, child := range []string{"solve", "bounds", "anneal"} {
		c := byName[child]
		if c.TID != ev.TID {
			t.Errorf("%s on track %d, want parent's track %d", child, c.TID, ev.TID)
		}
		if c.StartNs < ev.StartNs || c.StartNs+c.DurNs > ev.StartNs+ev.DurNs {
			t.Errorf("%s [%d,%d) outside evaluate [%d,%d)",
				child, c.StartNs, c.StartNs+c.DurNs, ev.StartNs, ev.StartNs+ev.DurNs)
		}
	}
	if byName["sweep"].TID == ev.TID {
		t.Error("independent roots share a track")
	}
	if got := ev.Args["apps"]; got != 3 {
		t.Errorf("evaluate args[apps] = %v, want 3", got)
	}
	if got := byName["bounds"].Args["lower_bound"]; got != 42 {
		t.Errorf("bounds args[lower_bound] = %v, want 42", got)
	}
}

func TestWellNestedDetectsViolations(t *testing.T) {
	overlap := []SpanRecord{
		{Name: "a", TID: 1, StartNs: 0, DurNs: 10},
		{Name: "b", TID: 1, StartNs: 5, DurNs: 10}, // crosses a's end
	}
	if err := WellNested(overlap); err == nil {
		t.Error("overlapping spans not detected")
	}
	open := []SpanRecord{{Name: "a", TID: 1, StartNs: 0, DurNs: -1}}
	if err := WellNested(open); err == nil {
		t.Error("unclosed span not detected")
	}
	disjoint := []SpanRecord{
		{Name: "a", TID: 1, StartNs: 0, DurNs: 5},
		{Name: "b", TID: 1, StartNs: 5, DurNs: 5},
		{Name: "c", TID: 2, StartNs: 3, DurNs: 10}, // other track may overlap
	}
	if err := WellNested(disjoint); err != nil {
		t.Errorf("disjoint spans flagged: %v", err)
	}
}

func TestTraceDeterministicWithFakeClock(t *testing.T) {
	render := func() []byte {
		tr := NewTracerWithClock(fakeClock())
		buildTree(tr)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Errorf("two identical runs produced different traces:\n%s\n%s", a, b)
	}
}

func TestChromeTraceFormat(t *testing.T) {
	tr := NewTracerWithClock(fakeClock())
	buildTree(tr)
	open := tr.StartSpan("still-open") // must export with elapsed duration

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("%d events, want 6", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s has ph %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur < 0 {
			t.Errorf("event %s has negative duration %g", ev.Name, ev.Dur)
		}
	}
	open.End()
}

func TestZeroSpanIsInert(t *testing.T) {
	var s Span
	if s.Active() {
		t.Error("zero span reports Active")
	}
	c := s.Child("x").Arg("k", 1).ArgInt("i", 2).ArgStr("s", "v")
	c.End()
	s.End()
	if c.Active() {
		t.Error("child of zero span reports Active")
	}
}

func TestEndIdempotent(t *testing.T) {
	clock := fakeClock()
	tr := NewTracerWithClock(clock)
	s := tr.StartSpan("a")
	s.End()
	want := tr.Snapshot()[0].DurNs
	clock() // advance time
	s.End()
	if got := tr.Snapshot()[0].DurNs; got != want {
		t.Errorf("second End changed duration: %d -> %d", want, got)
	}
}
