// Package obs is the solver stack's observability substrate: hierarchical
// tracing spans exportable as Chrome trace-event JSON, a metrics registry
// with Prometheus-text and JSON dumps, and verbose progress logging.
//
// The package is zero-dependency (stdlib only) and designed so the disabled
// path costs nothing: a nil *Context is fully usable — every method is
// nil-receiver safe, spans degrade to inert zero values, and no memory is
// allocated per span or per metric update. Solver layers therefore thread a
// *Context unconditionally and instrument hot paths without guarding each
// call site.
//
// Span hierarchy mirrors the paper's Figure 1 pipeline:
//
//	evaluate                      adaptive-resolution loop (core.SolveAdaptive, §III-D)
//	└── refine-iteration          one resolution level
//	    ├── build-instance        workload × SoC → scheduling instance
//	    └── solve                 layered solver (scheduler.Solve)
//	        ├── bounds            combinatorial lower bounds
//	        ├── heuristics        priority-rule seed portfolio
//	        ├── anneal-restart-k  one simulated-annealing restart
//	        ├── tabu              tabu-search improver (when selected)
//	        ├── destructive-lb    destructive lower bounding
//	        └── exact-bb          exact branch-and-bound finish
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime/debug"
	"sync"
)

// Context carries the observability sinks threaded through the solver
// layers. The zero value and a nil pointer are both valid, fully disabled
// contexts.
type Context struct {
	// Tracer receives spans; nil disables tracing.
	Tracer *Tracer
	// Metrics receives counters, gauges, and histograms; nil disables them.
	Metrics *Registry
	// Recorder receives per-solve convergence events (the flight recorder);
	// nil disables recording.
	Recorder *Recorder
	// Verbosity gates Logf: messages at level <= Verbosity are written.
	Verbosity int
	// LogWriter receives verbose log lines; nil disables logging.
	LogWriter io.Writer
	// Logger receives structured log records (see Log); nil disables them.
	// Records are stamped with the context.Context's correlation ID.
	Logger *Logger
	// Bus fans telemetry events out to live subscribers (SSE streams,
	// -follow terminals); nil disables publishing.
	Bus *Bus

	// cur is the parent span for StartSpan, set by WithSpan.
	cur Span
}

// logMu serializes verbose log lines across goroutines (sweeps log from
// worker goroutines against a shared writer).
var logMu sync.Mutex

// Enabled reports whether any sink is attached.
func (c *Context) Enabled() bool {
	return c != nil && (c.Tracer != nil || c.Metrics != nil || c.LogWriter != nil || c.Recorder != nil || c.Logger != nil || c.Bus != nil)
}

// Publish fans one event out to the bus subscribers. Disabled contexts (or
// contexts without a bus) ignore it, so call sites publish unconditionally.
func (c *Context) Publish(ev BusEvent) {
	if c == nil || c.Bus == nil {
		return
	}
	c.Bus.Publish(ev)
}

// Publishing reports whether a bus with at least one subscriber is attached,
// so hot paths can skip building events nobody is listening to.
func (c *Context) Publishing() bool {
	return c != nil && c.Bus != nil && c.Bus.SubscriberCount() > 0
}

// Recording reports whether a flight recorder is attached.
func (c *Context) Recording() bool { return c != nil && c.Recorder != nil }

// Record opens a flight-recorder trace for one solver run. Disabled contexts
// return an inert trace, so solvers record unconditionally. When the context
// carries a bus with live subscribers the trace also fans its events out as
// Kind "solver" bus events.
func (c *Context) Record(solver string) SolveTrace {
	if c == nil || (c.Recorder == nil && c.Bus == nil) {
		return SolveTrace{}
	}
	t := c.Recorder.Begin(solver)
	if c.Bus != nil && c.Bus.SubscriberCount() > 0 {
		t.bus = c.Bus
		t.solver = solver
	}
	return t
}

// Tracing reports whether spans are being recorded. Call sites use it to
// skip building span names (e.g. fmt.Sprintf) on the disabled path.
func (c *Context) Tracing() bool { return c != nil && c.Tracer != nil }

// StartSpan opens a span. When the context carries a current span (see
// WithSpan) the new span is its child on the same track; otherwise it is a
// root span on a fresh track. Disabled contexts return an inert span.
func (c *Context) StartSpan(name string) Span {
	if c == nil || c.Tracer == nil {
		return Span{}
	}
	if c.cur.t != nil {
		return c.cur.Child(name)
	}
	return c.Tracer.StartSpan(name)
}

// WithSpan returns a copy of the context whose StartSpan calls create
// children of s, so callees nest under the caller's span without an explicit
// parent parameter. A nil context stays nil.
func (c *Context) WithSpan(s Span) *Context {
	if c == nil {
		return nil
	}
	cp := *c
	cp.cur = s
	return &cp
}

// Counter returns the named counter, or nil (a valid no-op counter) when
// metrics are disabled.
func (c *Context) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	return c.Metrics.Counter(name)
}

// Gauge returns the named gauge, or nil when metrics are disabled.
func (c *Context) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	return c.Metrics.Gauge(name)
}

// Histogram returns the named histogram (created with buckets on first use),
// or nil when metrics are disabled.
func (c *Context) Histogram(name string, buckets ...float64) *Histogram {
	if c == nil {
		return nil
	}
	return c.Metrics.Histogram(name, buckets...)
}

// Guard recovers a panic escaping the calling goroutine, counts it under
// MGoroutinePanics, and reports the stack, extending the panic-isolation
// ladder to background goroutines that no request path observes. Use it as
// the goroutine's first deferred statement:
//
//	go func() {
//		defer octx.Guard("sweep-worker")
//		...
//	}()
//
// A nil *Context still recovers; the report then degrades to stderr so the
// panic is never silent.
func (c *Context) Guard(where string) {
	r := recover()
	if r == nil {
		return
	}
	c.Counter(MGoroutinePanics).Inc()
	if c.LogEnabled(slog.LevelError) {
		c.Log(context.Background(), slog.LevelError, "goroutine panic recovered",
			"where", where, "panic", fmt.Sprint(r), "stack", string(debug.Stack()))
		return
	}
	fmt.Fprintf(os.Stderr, "hilp: panic in %s goroutine (recovered): %v\n%s", where, r, debug.Stack())
}

// Logf writes one verbose log line when level <= Verbosity and a writer is
// attached. Lines are serialized across goroutines.
func (c *Context) Logf(level int, format string, args ...any) {
	if c == nil || c.LogWriter == nil || level > c.Verbosity {
		return
	}
	logMu.Lock()
	defer logMu.Unlock()
	fmt.Fprintf(c.LogWriter, format, args...)
	io.WriteString(c.LogWriter, "\n")
}

// verbosityFor maps a structured level onto the legacy Logf verbosity scale
// (warn/error always show, info needs -v, debug needs -vv).
func verbosityFor(level slog.Level) int {
	switch {
	case level >= slog.LevelWarn:
		return 0
	case level >= slog.LevelInfo:
		return 1
	default:
		return 2
	}
}

// LogEnabled reports whether a structured record at level would be emitted,
// so call sites can skip building expensive attributes.
func (c *Context) LogEnabled(level slog.Level) bool {
	if c == nil {
		return false
	}
	if c.Logger.Enabled(level) {
		return true
	}
	return c.LogWriter != nil && verbosityFor(level) <= c.Verbosity
}

// Log emits one structured log record with alternating key/value args (slog
// conventions), stamped with ctx's correlation ID. When no structured Logger
// is attached it degrades to the legacy verbose writer as a "msg key=value"
// line, so -v output keeps working at converted call sites. Disabled
// contexts return immediately.
func (c *Context) Log(ctx context.Context, level slog.Level, msg string, args ...any) {
	if c == nil || (c.Logger == nil && c.LogWriter == nil) {
		return
	}
	if c.Logger != nil {
		c.Logger.Log(ctx, level, msg, args...)
		return
	}
	v := verbosityFor(level)
	if v > c.Verbosity {
		return
	}
	line := msg
	if id := RequestID(ctx); id != "" {
		line += " req=" + id
	}
	for i := 0; i+1 < len(args); i += 2 {
		line += fmt.Sprintf(" %v=%v", args[i], args[i+1])
	}
	if len(args)%2 == 1 {
		line += fmt.Sprintf(" %v", args[len(args)-1])
	}
	c.Logf(v, "%s", line)
}
