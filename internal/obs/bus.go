package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// BusEvent is one telemetry observation fanned out to Bus subscribers: a
// flight-recorder event, a span completion, a sweep-point completion, an
// incumbent update, a request summary, or a job status change. The flat
// shape (no nested maps) keeps publishing allocation-light and the JSON
// form directly streamable over SSE.
type BusEvent struct {
	// Seq is the bus-assigned publish sequence number, strictly increasing
	// per bus. Subscribers detect gaps (dropped events) by discontinuities.
	Seq uint64 `json:"seq"`
	// TimeUnixNano stamps the publish wall-clock time.
	TimeUnixNano int64 `json:"timeUnixNano"`
	// Kind classifies the event: "span", "solver", "stage", "sweep",
	// "point", "incumbent", "request", "job".
	Kind string `json:"kind"`
	// Name is the kind-specific subject: span name, solver name, sweep-point
	// label, solver stage, request path.
	Name string `json:"name,omitempty"`
	// Event subdivides "solver" events with the flight-recorder kind
	// ("incumbent", "bound", "temperature", "restart", "certificate").
	Event string `json:"event,omitempty"`
	// Req is the correlation ID of the request (or sweep point) the event
	// belongs to, when known.
	Req string `json:"req,omitempty"`
	// Job is the async job ID for job-scoped events.
	Job string `json:"job,omitempty"`
	// Iter is the solver's progress coordinate for flight-recorder events.
	Iter int `json:"iter,omitempty"`
	// Value is the kind-specific observation (incumbent makespan, speedup...).
	Value float64 `json:"value,omitempty"`
	// Gap is the certified optimality gap, for point and certificate events.
	Gap float64 `json:"gap,omitempty"`
	// Done and Total carry sweep progress.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// DurSec is the duration of completed spans, stages, and requests.
	DurSec float64 `json:"durSec,omitempty"`
	// Status carries terminal state ("done", "failed", ...) for job events
	// and degradation markers for point events.
	Status string `json:"status,omitempty"`
}

// Subscription is one subscriber's bounded event feed. Receive from C;
// events published while the buffer is full evict the oldest buffered event
// (drop-oldest backpressure), so a slow consumer sees the freshest window of
// the stream rather than stalling publishers.
type Subscription struct {
	// C delivers events in publish order. It is closed by Bus.Close and by
	// Unsubscribe, never by the bus on overflow.
	C chan BusEvent

	bus     *Bus
	id      uint64
	dropped atomic.Uint64
	closed  bool // guarded by bus.mu
}

// Dropped reports how many events this subscription evicted unread.
func (s *Subscription) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Unsubscribe detaches the subscription and closes C. Safe to call more than
// once and on a nil subscription.
func (s *Subscription) Unsubscribe() {
	if s == nil || s.bus == nil {
		return
	}
	s.bus.unsubscribe(s)
}

// Bus is a bounded, drop-oldest fan-out of telemetry events: the push
// counterpart of the pull-based tracer/metrics/recorder sinks. Publishers
// never block — when a subscriber's buffer is full its oldest event is
// evicted and counted — so attaching the bus keeps the solver stack's
// latency profile intact. A nil *Bus is a valid, fully disabled bus; Publish
// on it is a no-op, preserving the <2% disabled-overhead contract.
type Bus struct {
	mu     sync.RWMutex
	subs   map[uint64]*Subscription
	nextID uint64
	closed bool

	seq     atomic.Uint64
	dropped *Counter // hilp_events_dropped_total when metrics are attached
	buffer  int
	now     func() int64 // wall-clock unix nanos; stubbed in tests
}

// NewBus returns a bus whose subscriptions buffer up to buffer events each
// (buffer < 1 selects 256).
func NewBus(buffer int) *Bus {
	if buffer < 1 {
		buffer = 256
	}
	return &Bus{
		subs:   map[uint64]*Subscription{},
		buffer: buffer,
		now:    func() int64 { return time.Now().UnixNano() },
	}
}

// SetDropCounter attaches the counter incremented once per evicted event
// (conventionally MEventsDropped). A nil counter is valid.
func (b *Bus) SetDropCounter(c *Counter) {
	if b != nil {
		b.dropped = c
	}
}

// Subscribe registers a new subscriber. Events published after Subscribe
// returns are delivered; there is no replay. A closed (or nil) bus returns a
// subscription whose channel is already closed, so consumer loops terminate
// immediately instead of hanging.
func (b *Bus) Subscribe() *Subscription {
	if b == nil {
		ch := make(chan BusEvent)
		close(ch)
		return &Subscription{C: ch}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		ch := make(chan BusEvent)
		close(ch)
		return &Subscription{C: ch, closed: true}
	}
	b.nextID++
	s := &Subscription{C: make(chan BusEvent, b.buffer), bus: b, id: b.nextID}
	b.subs[s.id] = s
	return s
}

func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(b.subs, s.id)
	close(s.C)
}

// Publish stamps the event with a sequence number and timestamp and delivers
// it to every subscriber, evicting each full subscriber's oldest buffered
// event. Never blocks; a nil or closed bus — or one nobody subscribed to —
// ignores the event without stamping, keeping the always-attached server bus
// nearly free while no stream is open.
func (b *Bus) Publish(ev BusEvent) {
	if b == nil {
		return
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed || len(b.subs) == 0 {
		return
	}
	ev.Seq = b.seq.Add(1)
	ev.TimeUnixNano = b.now()
	for _, s := range b.subs {
		select {
		case s.C <- ev:
			continue
		default:
		}
		// Buffer full: evict the oldest event, then retry once. The second
		// send can still lose a race against a concurrent publisher filling
		// the freed slot; dropping the new event then is equally valid
		// drop-*an*-oldest behavior under contention.
		select {
		case <-s.C:
			s.dropped.Add(1)
			b.dropped.Inc()
		default:
		}
		select {
		case s.C <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Inc()
		}
	}
}

// SubscriberCount reports the number of attached subscriptions.
func (b *Bus) SubscriberCount() int {
	if b == nil {
		return 0
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

// Close detaches and closes every subscription and rejects future publishes.
// Idempotent.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, s := range b.subs {
		s.closed = true
		delete(b.subs, id)
		close(s.C)
	}
}
