package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. A nil *Counter is a
// valid no-op, so call sites fetch once and Add unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric. A nil *Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the value by delta (negative to decrement), e.g. for
// in-flight request gauges.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram buckets: exponential from 1ms to
// ~16s, suitable for the per-point evaluation times of a sweep.
var DefBuckets = []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384}

// Histogram counts observations into fixed cumulative-export buckets. A nil
// *Histogram is a valid no-op.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64 // len(bounds)+1
	sumB   atomic.Uint64  // float64 bits of the running sum
	count  atomic.Int64
	ex     atomic.Pointer[Exemplar]
}

// Exemplar links one recent observation to the correlation ID of the request
// that produced it, so a latency bucket can be traced back to a concrete
// request in /debug/requests.
type Exemplar struct {
	Value float64 `json:"value"`
	Req   string  `json:"req"`
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumB.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumB.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveEx records one value and, when req is non-empty, stores it as the
// histogram's latest exemplar.
func (h *Histogram) ObserveEx(v float64, req string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if req != "" {
		h.ex.Store(&Exemplar{Value: v, Req: req})
	}
}

// LastExemplar returns the most recent exemplar, or nil when none was
// recorded (or h is nil).
func (h *Histogram) LastExemplar() *Exemplar {
	if h == nil {
		return nil
	}
	return h.ex.Load()
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumB.Load())
}

// Registry holds named metrics. A nil *Registry hands out nil metrics, which
// are themselves valid no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	infos      map[string]map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		infos:      map[string]map[string]string{},
	}
}

// Info records a labeled constant-1 gauge (e.g. hilp_build_info with the
// binary's version and commit). Calling it again replaces the label set.
func (r *Registry) Info(name string, labels map[string]string) {
	if r == nil {
		return
	}
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.mu.Lock()
	r.infos[name] = cp
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (DefBuckets when none) on first use. Buckets passed on later
// calls are ignored.
func (r *Registry) Histogram(name string, buckets ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(buckets)
		r.histograms[name] = h
	}
	return h
}

// sortedKeys returns the map's keys in lexical order for deterministic
// exports.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus dumps every metric in the Prometheus text exposition
// format, names sorted, histograms with cumulative le buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(r.gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.infos) {
		labels := r.infos[name]
		parts := make([]string, 0, len(labels))
		for _, k := range sortedKeys(labels) {
			parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s{%s} 1\n", name, name, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, cum, name, formatFloat(h.Sum()), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// jsonHistogram is the JSON shape of one histogram.
type jsonHistogram struct {
	Buckets []float64 `json:"buckets"`
	Counts  []int64   `json:"counts"` // per-bucket (not cumulative); last is +Inf
	Sum     float64   `json:"sum"`
	Count   int64     `json:"count"`
	// Exemplar is the latest request-correlated observation, when one exists.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// jsonDump is the JSON shape of a registry.
type jsonDump struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]jsonHistogram     `json:"histograms"`
	Infos      map[string]map[string]string `json:"infos,omitempty"`
}

// WriteJSON dumps every metric as one JSON object (keys sorted by the
// encoder, so output is deterministic).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	d := jsonDump{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]jsonHistogram, len(r.histograms)),
	}
	for name, c := range r.counters {
		d.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		d.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		jh := jsonHistogram{
			Buckets:  append([]float64(nil), h.bounds...),
			Counts:   make([]int64, len(h.counts)),
			Sum:      h.Sum(),
			Count:    h.Count(),
			Exemplar: h.LastExemplar(),
		}
		for i := range h.counts {
			jh.Counts[i] = h.counts[i].Load()
		}
		d.Histograms[name] = jh
	}
	if len(r.infos) > 0 {
		d.Infos = make(map[string]map[string]string, len(r.infos))
		for name, labels := range r.infos {
			cp := make(map[string]string, len(labels))
			for k, v := range labels {
				cp[k] = v
			}
			d.Infos[name] = cp
		}
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadJSON reconstructs a registry from a WriteJSON dump, so metric files
// round-trip (load, merge, re-export).
func ReadJSON(rd io.Reader) (*Registry, error) {
	var d jsonDump
	if err := json.NewDecoder(rd).Decode(&d); err != nil {
		return nil, fmt.Errorf("obs: parsing metrics JSON: %w", err)
	}
	r := NewRegistry()
	for name, v := range d.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range d.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, jh := range d.Histograms {
		h := r.Histogram(name, jh.Buckets...)
		if len(jh.Counts) != len(h.counts) {
			return nil, fmt.Errorf("obs: histogram %s has %d counts for %d buckets", name, len(jh.Counts), len(jh.Buckets))
		}
		for i, c := range jh.Counts {
			h.counts[i].Store(c)
		}
		h.count.Store(jh.Count)
		h.sumB.Store(math.Float64bits(jh.Sum))
		if jh.Exemplar != nil {
			h.ex.Store(jh.Exemplar)
		}
	}
	for name, labels := range d.Infos {
		r.Info(name, labels)
	}
	return r, nil
}
