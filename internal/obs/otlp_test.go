package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// decodeExport pulls the flat span list out of one OTLP export request body.
func decodeExport(t *testing.T, body []byte) []otlpSpanJSON {
	t.Helper()
	var req otlpExportRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatalf("bad OTLP body: %v", err)
	}
	var spans []otlpSpanJSON
	for _, rs := range req.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			spans = append(spans, ss.Spans...)
		}
	}
	return spans
}

func TestEncodeOTLPShape(t *testing.T) {
	tc := NewTraceContext()
	body, err := EncodeOTLP("hilp-test", []OTLPSpan{{
		TraceID:       tc.TraceIDString(),
		SpanID:        tc.SpanIDString(),
		Name:          "evaluate",
		StartUnixNano: 1000,
		EndUnixNano:   2000,
		Attrs:         []OTLPAttr{OTLPStr("hilp.request_id", "req-1"), OTLPNum("points", 3)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	rs := raw["resourceSpans"].([]any)[0].(map[string]any)
	attrs := rs["resource"].(map[string]any)["attributes"].([]any)[0].(map[string]any)
	if attrs["key"] != "service.name" {
		t.Errorf("resource attr key = %v", attrs["key"])
	}
	sp := rs["scopeSpans"].([]any)[0].(map[string]any)["spans"].([]any)[0].(map[string]any)
	if sp["traceId"] != tc.TraceIDString() || sp["name"] != "evaluate" {
		t.Errorf("span = %v", sp)
	}
	// Proto3 JSON renders fixed64 nanos as strings.
	if sp["startTimeUnixNano"] != "1000" || sp["endTimeUnixNano"] != "2000" {
		t.Errorf("timestamps = %v, %v", sp["startTimeUnixNano"], sp["endTimeUnixNano"])
	}
	spAttrs := sp["attributes"].([]any)
	if len(spAttrs) != 2 {
		t.Fatalf("span attrs = %v", spAttrs)
	}
}

func TestSpansToOTLPParentReconstruction(t *testing.T) {
	clock := int64(0)
	tr := NewTracerWithClock(func() int64 { clock += 10; return clock })
	root := tr.StartSpan("evaluate")
	child := root.Child("refine-iteration")
	grand := child.Child("solve")
	grand.End()
	child.End()
	sibling := root.Child("encode")
	sibling.End()
	root.End()
	other := tr.StartSpan("other-track")
	other.End()

	tc := NewTraceContext()
	spans := SpansToOTLP(tr.Snapshot(), tc, time.Unix(0, 0))
	if len(spans) != 5 {
		t.Fatalf("got %d spans", len(spans))
	}
	byName := map[string]OTLPSpan{}
	for _, sp := range spans {
		if sp.TraceID != tc.TraceIDString() {
			t.Errorf("span %s trace id = %s", sp.Name, sp.TraceID)
		}
		byName[sp.Name] = sp
	}
	// Containment: evaluate encloses refine-iteration encloses solve;
	// encode is evaluate's second child; the other track roots at tc.
	if got := byName["refine-iteration"].ParentSpanID; got != byName["evaluate"].SpanID {
		t.Errorf("refine-iteration parent = %s, want evaluate", got)
	}
	if got := byName["solve"].ParentSpanID; got != byName["refine-iteration"].SpanID {
		t.Errorf("solve parent = %s, want refine-iteration", got)
	}
	if got := byName["encode"].ParentSpanID; got != byName["evaluate"].SpanID {
		t.Errorf("encode parent = %s, want evaluate", got)
	}
	for _, name := range []string{"evaluate", "other-track"} {
		if got := byName[name].ParentSpanID; got != tc.SpanIDString() {
			t.Errorf("%s parent = %s, want root %s", name, got, tc.SpanIDString())
		}
	}
}

func TestOTLPExporterBatchesAndFlushes(t *testing.T) {
	var mu sync.Mutex
	var got []otlpSpanJSON
	var posts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %s", ct)
		}
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		got = append(got, decodeExport(t, body)...)
		posts++
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	exp := NewOTLPExporter(ts.URL, "hilp-test", WithOTLPBatch(2), WithOTLPFlushEvery(time.Hour))
	tc := NewTraceContext()
	for i := 0; i < 5; i++ {
		exp.Enqueue(OTLPSpan{TraceID: tc.TraceIDString(), SpanID: tc.SpanIDString(), Name: "s"})
	}
	if err := exp.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Errorf("exported %d spans, want 5", len(got))
	}
	if posts < 2 {
		t.Errorf("posts = %d, want batching into >= 2", posts)
	}
	exported, failed, dropped := exp.Stats()
	if exported != 5 || failed != 0 || dropped != 0 {
		t.Errorf("stats = %d/%d/%d", exported, failed, dropped)
	}
}

func TestOTLPExporterRetriesWithBackoff(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		fail := attempts < 3
		mu.Unlock()
		if fail {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	var sleptMu sync.Mutex
	var slept []time.Duration
	exp := NewOTLPExporter(ts.URL, "hilp-test", WithOTLPRetry(3, time.Millisecond),
		WithOTLPSleep(func(d time.Duration) {
			sleptMu.Lock()
			slept = append(slept, d)
			sleptMu.Unlock()
		}))
	exp.Enqueue(OTLPSpan{Name: "s"})
	if err := exp.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after retries: %v", err)
	}
	exp.Close()
	if exported, failed, _ := exp.Stats(); exported != 1 || failed != 0 {
		t.Errorf("stats = %d exported, %d failed", exported, failed)
	}
	// Exponential backoff: second retry waits twice the first.
	sleptMu.Lock()
	defer sleptMu.Unlock()
	if len(slept) != 2 || slept[1] != 2*slept[0] {
		t.Errorf("backoffs = %v", slept)
	}
}

func TestOTLPExporterGivesUpAndCounts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	r := NewRegistry()
	exp := NewOTLPExporter(ts.URL, "hilp-test", WithOTLPRetry(2, time.Microsecond))
	exp.SetCounters(r.Counter(MOTLPSpansExported), r.Counter(MOTLPSpansFailed), r.Counter(MOTLPSpansDropped))
	exp.Enqueue(OTLPSpan{Name: "s"})
	if err := exp.Flush(context.Background()); err == nil {
		t.Error("Flush succeeded against an always-failing endpoint")
	}
	exp.Close()
	if _, failed, _ := exp.Stats(); failed != 1 {
		t.Errorf("failed = %d, want 1", failed)
	}
	if got := r.Counter(MOTLPSpansFailed).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MOTLPSpansFailed, got)
	}
}

func TestOTLPExporterDropsOnFullQueue(t *testing.T) {
	blocked := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-blocked
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	exp := NewOTLPExporter(ts.URL, "hilp-test", WithOTLPQueue(2), WithOTLPBatch(1), WithOTLPFlushEvery(time.Hour))
	// First span occupies the worker (blocked in POST); the queue holds two
	// more; everything beyond that is dropped.
	for i := 0; i < 10; i++ {
		exp.Enqueue(OTLPSpan{Name: "s"})
	}
	if _, _, dropped := exp.Stats(); dropped < 7 {
		t.Errorf("dropped = %d, want >= 7", dropped)
	}
	close(blocked)
	exp.Close()
}

func TestOTLPExporterCloseFlushesAndEnqueueAfterCloseDrops(t *testing.T) {
	var mu sync.Mutex
	var n int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		n += len(decodeExport(t, body))
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	exp := NewOTLPExporter(ts.URL, "hilp-test", WithOTLPFlushEvery(time.Hour))
	exp.Enqueue(OTLPSpan{Name: "a"})
	exp.Enqueue(OTLPSpan{Name: "b"})
	exp.Close()
	mu.Lock()
	got := n
	mu.Unlock()
	if got != 2 {
		t.Errorf("Close flushed %d spans, want 2", got)
	}
	exp.Enqueue(OTLPSpan{Name: "late"})
	if _, _, dropped := exp.Stats(); dropped != 1 {
		t.Errorf("post-Close enqueue dropped = %d, want 1", dropped)
	}
	if err := exp.Flush(context.Background()); err != nil {
		t.Errorf("Flush after Close: %v", err)
	}
}

func TestOTLPExporterNilSafety(t *testing.T) {
	var exp *OTLPExporter
	exp.Enqueue(OTLPSpan{})
	exp.EnqueueAll([]OTLPSpan{{}})
	exp.SetCounters(nil, nil, nil)
	if err := exp.Flush(context.Background()); err != nil {
		t.Error(err)
	}
	if err := exp.Close(); err != nil {
		t.Error(err)
	}
	if a, b, c := exp.Stats(); a != 0 || b != 0 || c != 0 {
		t.Error("nil exporter stats nonzero")
	}
}
