package obs

import (
	"runtime"
	"runtime/debug"
)

// CaptureRuntime snapshots Go runtime telemetry into the registry's gauges:
// goroutine count, heap usage, and GC pause totals. hilp-serve calls it on
// every /metrics scrape so the exported values are fresh; a nil registry is
// a no-op.
func CaptureRuntime(r *Registry) {
	if r == nil {
		return
	}
	r.Gauge(MGoGoroutines).Set(float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge(MGoHeapAllocBytes).Set(float64(ms.HeapAlloc))
	r.Gauge(MGoHeapSysBytes).Set(float64(ms.HeapSys))
	r.Gauge(MGoGCPauseSec).Set(float64(ms.PauseTotalNs) / 1e9)
	r.Gauge(MGoGCCycles).Set(float64(ms.NumGC))
	r.Gauge(MGoNextGCBytes).Set(float64(ms.NextGC))
}

// SetBuildInfo records the binary's build identity as the labeled gauge
// hilp_build_info{goVersion=...,version=...,revision=...} 1, read from the
// embedded module build info (runtime/debug.ReadBuildInfo). Fields that the
// build did not stamp (e.g. VCS revision outside a git checkout) are
// reported as "unknown" so the metric's label set stays stable.
func SetBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	labels := map[string]string{
		"goVersion": runtime.Version(),
		"version":   "unknown",
		"revision":  "unknown",
		"modified":  "unknown",
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			labels["version"] = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				labels["revision"] = s.Value
			case "vcs.modified":
				labels["modified"] = s.Value
			}
		}
	}
	r.Info(MBuildInfo, labels)
}
