package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceContext is a W3C Trace Context (traceparent) span context: the trace
// ID shared by every span of a distributed trace, the ID of the current
// span, and the sampled flag. The zero value is invalid (no trace).
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	// Sampled mirrors the traceparent sampled flag (01).
	Sampled bool
}

// Valid reports whether both IDs are non-zero, as the W3C spec requires.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceIDString returns the 32-hex-digit trace ID.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString returns the 16-hex-digit span ID.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// String renders the version-00 traceparent header value.
func (tc TraceContext) String() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceIDString() + "-" + tc.SpanIDString() + "-" + flags
}

// Child returns a copy with a freshly minted span ID: the context for a new
// span within the same trace.
func (tc TraceContext) Child() TraceContext {
	out := tc
	fillRandom(out.SpanID[:])
	return out
}

// fillRandom fills b with random bytes, guaranteeing a non-zero result (all
// zeros is an invalid W3C ID) even if crypto/rand fails.
func fillRandom(b []byte) {
	if _, err := rand.Read(b); err != nil {
		for i := range b {
			b[i] = 0
		}
	}
	allZero := true
	for _, v := range b {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		// Fall back to the request-ID counter so IDs stay unique in-process.
		n := reqIDCounter.Add(1)
		for i := 0; i < len(b) && i < 8; i++ {
			b[len(b)-1-i] = byte(n >> (8 * i))
		}
		if b[len(b)-1] == 0 {
			b[len(b)-1] = 1
		}
	}
}

// NewSpanID mints a random 16-hex-digit span ID, for spans built outside a
// Tracer (e.g. the server's per-stage OTLP children).
func NewSpanID() string {
	var b [8]byte
	fillRandom(b[:])
	return hex.EncodeToString(b[:])
}

// NewTraceContext mints a root trace context: fresh trace and span IDs,
// sampled.
func NewTraceContext() TraceContext {
	var tc TraceContext
	fillRandom(tc.TraceID[:])
	fillRandom(tc.SpanID[:])
	tc.Sampled = true
	return tc
}

// ParseTraceparent parses a version-00 W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). Unknown future versions are accepted
// with the same layout, per the spec's forward-compatibility rule.
func ParseTraceparent(h string) (TraceContext, error) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: want 4 dash-separated fields", h)
	}
	if len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) < 2 {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: bad field lengths", h)
	}
	if strings.EqualFold(parts[0], "ff") {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: version ff is forbidden", h)
	}
	if _, err := hex.DecodeString(parts[0]); err != nil {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: bad version: %v", h, err)
	}
	var tc TraceContext
	tid, err := hex.DecodeString(parts[1])
	if err != nil {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: bad trace-id: %v", h, err)
	}
	sid, err := hex.DecodeString(parts[2])
	if err != nil {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: bad parent-id: %v", h, err)
	}
	flags, err := hex.DecodeString(parts[3][:2])
	if err != nil {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: bad flags: %v", h, err)
	}
	copy(tc.TraceID[:], tid)
	copy(tc.SpanID[:], sid)
	tc.Sampled = flags[0]&0x01 != 0
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: all-zero trace or span id", h)
	}
	return tc, nil
}

// traceCtxKey keys the TraceContext in a context.Context.
type traceCtxKey struct{}

// WithTraceContext returns a context carrying tc. Invalid contexts are not
// stored.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom returns the trace context carried by ctx; ok is false
// when none is attached.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
