package obs

// Canonical metric names shared by the solver layers, so exports stay
// consistent across binaries and the docs can reference them.
const (
	// MILP layer (internal/milp).
	MSimplexPivots = "hilp_milp_simplex_pivots_total"
	MBBNodes       = "hilp_milp_bb_nodes_total"
	MBBPruned      = "hilp_milp_bb_pruned_total"

	// Scheduler layer (internal/scheduler).
	MExactNodes      = "hilp_sched_exact_nodes_total"
	MAnnealAccepted  = "hilp_sched_anneal_accepted_total"
	MAnnealRejected  = "hilp_sched_anneal_rejected_total"
	MTabuSteps       = "hilp_sched_tabu_steps_total"
	MSGSSchedules    = "hilp_sched_sgs_schedules_total"
	MSolves          = "hilp_sched_solves_total"
	MSolvePanics     = "hilp_sched_solve_panics_total"
	MLowerBoundSteps = "hilp_sched_lower_bound_steps"
	MMakespanSteps   = "hilp_sched_makespan_steps"

	// Background goroutines guarded by Context.Guard (any layer).
	MGoroutinePanics = "hilp_goroutine_panics_total"

	// Fault-tolerance chain (internal/core fallback + internal/faults).
	MSolveRetries   = "hilp_core_solve_retries_total"
	MSolveFallbacks = "hilp_core_solve_fallbacks_total"
	MSolveDegraded  = "hilp_core_solve_degraded_total"

	// Adaptive-resolution loop (internal/core).
	MEvaluations  = "hilp_core_evaluations_total"
	MRefinements  = "hilp_core_refinements_total"
	MCertifiedGap = "hilp_core_certified_gap"
	MMakespanSec  = "hilp_core_makespan_seconds"

	// Design-space sweeps (internal/dse).
	MSweepPoints       = "hilp_dse_points_total"
	MSweepPointsFailed = "hilp_dse_points_failed_total"
	MSweepPanics       = "hilp_dse_point_panics_total"
	MSweepPointSec     = "hilp_dse_point_seconds"

	// Warm-start sweep engine (internal/dse engine + scheduler warm hints).
	MSweepCacheHits    = "hilp_sweep_cache_hits_total"
	MSweepCacheMisses  = "hilp_sweep_cache_misses_total"
	MSweepWarmUsed     = "hilp_sweep_warmstart_used_total"
	MSweepWarmShortcut = "hilp_sweep_warmstart_shortcut_total"
	MSweepWarmImproved = "hilp_sweep_warmstart_improved_total"
	MSweepPruned       = "hilp_sweep_points_pruned_total"

	// Go runtime telemetry (refreshed per /metrics scrape, see CaptureRuntime).
	MGoGoroutines     = "go_goroutines"
	MGoHeapAllocBytes = "go_heap_alloc_bytes"
	MGoHeapSysBytes   = "go_heap_sys_bytes"
	MGoGCPauseSec     = "go_gc_pause_seconds_total"
	MGoGCCycles       = "go_gc_cycles_total"
	MGoNextGCBytes    = "go_next_gc_bytes"

	// Build identity (labeled info gauge, see SetBuildInfo).
	MBuildInfo = "hilp_build_info"

	// Solve service (internal/server).
	MServeRequests    = "hilp_serve_requests_total"
	MServeErrors      = "hilp_serve_errors_total"
	MServeRejected    = "hilp_serve_rejected_total"
	MServeCacheHits   = "hilp_serve_cache_hits_total"
	MServeCacheMisses = "hilp_serve_cache_misses_total"
	MServeDeadlines   = "hilp_serve_deadline_exceeded_total"
	MServePanics      = "hilp_serve_panics_total"
	MServeRetries     = "hilp_serve_job_retries_total"
	MServeRequestSec  = "hilp_serve_request_seconds"
	MServeInFlight    = "hilp_serve_in_flight"
	MServeJobsActive  = "hilp_serve_jobs_active"

	// Worker-pool and cache depth (refreshed per /metrics scrape).
	MServePoolBusy      = "hilp_serve_pool_busy"
	MServeQueueWaiting  = "hilp_serve_queue_waiting"
	MServeCacheEntries  = "hilp_serve_cache_entries"
	MServeCacheHitRatio = "hilp_serve_cache_hit_ratio"

	// Live telemetry bus (obs.Bus) and SSE streaming.
	MEventsDropped    = "hilp_events_dropped_total"
	MServeSubscribers = "hilp_serve_event_subscribers"

	// OTLP span export (obs.OTLPExporter).
	MOTLPSpansExported = "hilp_otlp_spans_exported_total"
	MOTLPSpansFailed   = "hilp_otlp_spans_failed_total"
	MOTLPSpansDropped  = "hilp_otlp_spans_dropped_total"

	// Crash-recovery journal (internal/journal) and resume paths.
	MJournalAppends       = "hilp_journal_appends_total"
	MJournalFsyncs        = "hilp_journal_fsyncs_total"
	MJournalBytes         = "hilp_journal_bytes_total"
	MJournalReplayRecords = "hilp_journal_replay_records_total"
	MJournalTornTails     = "hilp_journal_torn_tails_total"
	MJournalResumedJobs   = "hilp_serve_resumed_jobs_total"
	MSweepPointsResumed   = "hilp_sweep_points_resumed_total"
)

// StageMetricName maps a request-stage name (see Stages) onto its latency
// histogram, e.g. "cache-lookup" → "hilp_serve_stage_cache_lookup_seconds"
// and "journal:append" → "hilp_serve_stage_journal_append_seconds". Dashes
// and colons become underscores: Prometheus metric names allow neither.
func StageMetricName(stage string) string {
	out := make([]byte, 0, len(stage)+24)
	out = append(out, "hilp_serve_stage_"...)
	for i := 0; i < len(stage); i++ {
		if stage[i] == '-' || stage[i] == ':' {
			out = append(out, '_')
		} else {
			out = append(out, stage[i])
		}
	}
	return string(append(out, "_seconds"...))
}
