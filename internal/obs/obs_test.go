package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilContextIsSafe(t *testing.T) {
	var c *Context
	if c.Enabled() || c.Tracing() {
		t.Error("nil context reports enabled")
	}
	s := c.StartSpan("x")
	if s.Active() {
		t.Error("nil context produced an active span")
	}
	s.End()
	if c.WithSpan(s) != nil {
		t.Error("WithSpan on nil context is not nil")
	}
	c.Counter("c").Inc()
	c.Gauge("g").Set(1)
	c.Histogram("h").Observe(1)
	c.Logf(0, "dropped %d", 1)
}

// TestNoOpPathAllocatesNothing is the ≤2%-overhead guarantee in its
// strictest form: with instrumentation disabled, the hot-path calls the
// solver makes per iteration allocate zero bytes.
func TestNoOpPathAllocatesNothing(t *testing.T) {
	var nilCtx *Context
	disabled := &Context{} // non-nil but sink-less
	for _, tc := range []struct {
		name string
		ctx  *Context
	}{
		{"nil", nilCtx},
		{"disabled", disabled},
	} {
		ctx := tc.ctx
		allocs := testing.AllocsPerRun(1000, func() {
			sp := ctx.StartSpan("solve")
			child := sp.Child("bounds")
			child.ArgInt("lb", 3)
			child.End()
			ctx.Counter(MSolves).Inc()
			ctx.Gauge(MCertifiedGap).Set(0.1)
			ctx.Histogram(MSweepPointSec).Observe(0.5)
			ctx.Logf(2, "suppressed")
			sp.End()
		})
		if allocs != 0 {
			t.Errorf("%s context: %v allocs per run, want 0", tc.name, allocs)
		}
	}
}

func TestWithSpanParenting(t *testing.T) {
	ctx := &Context{Tracer: NewTracerWithClock(fakeClock())}
	root := ctx.StartSpan("solve")
	sub := ctx.WithSpan(root)
	child := sub.StartSpan("anneal")
	child.End()
	// The original context is untouched: its StartSpan still creates roots.
	other := ctx.StartSpan("sweep")
	other.End()
	root.End()

	recs := ctx.Tracer.Snapshot()
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["anneal"].TID != byName["solve"].TID {
		t.Error("WithSpan child landed on a different track than its parent")
	}
	if byName["sweep"].TID == byName["solve"].TID {
		t.Error("root span after WithSpan reused the derived track")
	}
	if err := WellNested(recs); err != nil {
		t.Error(err)
	}
}

func TestEnabledAndTracing(t *testing.T) {
	if (&Context{}).Enabled() {
		t.Error("sink-less context reports enabled")
	}
	if !(&Context{Metrics: NewRegistry()}).Enabled() {
		t.Error("metrics-only context reports disabled")
	}
	tctx := &Context{Tracer: NewTracer()}
	if !tctx.Enabled() || !tctx.Tracing() {
		t.Error("tracer-bearing context reports disabled")
	}
	if (&Context{Metrics: NewRegistry()}).Tracing() {
		t.Error("metrics-only context reports tracing")
	}
}

func TestLogfVerbosityGating(t *testing.T) {
	var buf bytes.Buffer
	ctx := &Context{LogWriter: &buf, Verbosity: 1}
	ctx.Logf(1, "shown %s", "line")
	ctx.Logf(2, "hidden")
	got := buf.String()
	if !strings.Contains(got, "shown line\n") {
		t.Errorf("level-1 line missing from %q", got)
	}
	if strings.Contains(got, "hidden") {
		t.Errorf("level-2 line leaked into %q", got)
	}
}
