package core

import (
	"context"
	"strings"
	"testing"

	"hilp/internal/scheduler"
)

func ganttModel(t *testing.T, secs ...float64) (*Instance, scheduler.Schedule) {
	t.Helper()
	m := CustomModel{
		Name:     "g",
		Clusters: []CustomCluster{{Name: "cpu0"}, {Name: "acc0"}},
	}
	prev := ""
	for i, sec := range secs {
		task := CustomTask{
			Name:    string(rune('a' + i)),
			App:     i,
			Options: []CustomOption{{Cluster: "cpu0", Sec: sec}},
		}
		if prev != "" {
			task.Deps = []CustomDep{{Task: prev}}
		}
		prev = task.Name
		m.Tasks = append(m.Tasks, task)
	}
	inst, err := m.Build(1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return inst, res.Schedule
}

func TestGanttScalesToWidth(t *testing.T) {
	// A 1000-step schedule rendered at width 50 must not exceed ~60 columns
	// per row (name + scaled bar).
	inst, sched := ganttModel(t, 400, 300, 300)
	out := inst.Gantt(sched, 50)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if len(line) > 75 {
			t.Errorf("line too long (%d chars): %q", len(line), line)
		}
	}
	if !strings.Contains(out, "1000 steps") {
		t.Errorf("header missing makespan:\n%s", out)
	}
}

func TestGanttDefaultWidth(t *testing.T) {
	inst, sched := ganttModel(t, 3, 2)
	out := inst.Gantt(sched, 0) // 0 selects the default
	if !strings.Contains(out, "cpu0") {
		t.Error("missing row")
	}
}

func TestGanttEmptySchedule(t *testing.T) {
	m := CustomModel{
		Name:     "empty-ish",
		Clusters: []CustomCluster{{Name: "c"}},
		Tasks:    []CustomTask{{Name: "zero", Options: []CustomOption{{Cluster: "c", Sec: 0}}}},
	}
	inst, err := m.Build(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	sched := scheduler.Schedule{Start: []int{0}, Option: []int{0}}
	sched.ComputeMakespan(inst.Problem)
	out := inst.Gantt(sched, 40)
	if !strings.Contains(out, "empty") {
		t.Errorf("zero-makespan schedule should render as empty, got:\n%s", out)
	}
}

func TestGanttIdleColumnsAreDots(t *testing.T) {
	// One task on cpu0 only: the acc0 row must be entirely idle.
	inst, sched := ganttModel(t, 5)
	out := inst.Gantt(sched, 40)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "acc0") {
			bar := strings.TrimSpace(strings.TrimPrefix(line, "acc0"))
			if strings.Trim(bar, ".") != "" {
				t.Errorf("acc0 row not idle: %q", line)
			}
		}
	}
}

func TestGanttByApp(t *testing.T) {
	w := smallWorkload(t)
	inst, err := BuildInstance(w, fastSpec(2, 16), 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	out := inst.GanttByApp(res.Schedule, 80)
	// One row per application, labeled by the benchmark abbreviation.
	for _, app := range w.Apps {
		if !strings.Contains(out, app.Bench.Abbrev) {
			t.Errorf("GanttByApp missing app row %s:\n%s", app.Bench.Abbrev, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+len(w.Apps) {
		t.Errorf("%d lines, want header + %d app rows", len(lines), len(w.Apps))
	}
}

func TestWLPHistogram(t *testing.T) {
	inst, sched := ganttModel(t, 3, 2)
	out := inst.WLPHistogram(sched)
	if !strings.Contains(out, "WLP distribution") {
		t.Errorf("missing header:\n%s", out)
	}
	// Sequential chain on one CPU: 100% of steps at WLP 1.
	if !strings.Contains(out, " 1: 100.0%") {
		t.Errorf("sequential schedule should be all WLP 1:\n%s", out)
	}
}

func TestPeakWLP(t *testing.T) {
	w := smallWorkload(t)
	inst, err := BuildInstance(w, fastSpec(4, 64), 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	peak := res.Schedule.PeakWLP(inst.Problem)
	avg := res.Schedule.WLP(inst.Problem)
	if float64(peak) < avg {
		t.Errorf("peak WLP %d below average %g", peak, avg)
	}
	if peak > len(w.Apps) {
		t.Errorf("peak WLP %d exceeds the number of applications %d", peak, len(w.Apps))
	}
}
