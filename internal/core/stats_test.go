package core

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// statsExample builds a tiny two-cluster model with known power numbers.
func statsExample(t *testing.T) (*Instance, scheduler.Schedule) {
	t.Helper()
	m := CustomModel{
		Name: "stats",
		Clusters: []CustomCluster{
			{Name: "cpu0"}, {Name: "acc0"},
		},
		PowerBudgetW: 10,
		BandwidthGBs: 100,
		Tasks: []CustomTask{
			{Name: "a", App: 0, Options: []CustomOption{{Cluster: "cpu0", Sec: 4, PowerW: 2, BandwidthGBs: 10}}},
			{Name: "b", App: 1, Options: []CustomOption{{Cluster: "acc0", Sec: 2, PowerW: 5, BandwidthGBs: 50}}},
		},
	}
	inst, err := m.Build(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return inst, res.Schedule
}

func TestComputeStats(t *testing.T) {
	inst, sched := statsExample(t)
	st := inst.ComputeStats(sched)

	// a(4s) and b(2s) run on separate clusters concurrently: makespan 4.
	if st.MakespanSec != 4 {
		t.Errorf("makespan = %g, want 4", st.MakespanSec)
	}
	// Energy: 2W*4s + 5W*2s = 18 J.
	if math.Abs(st.EnergyJoules-18) > 1e-9 {
		t.Errorf("energy = %g, want 18", st.EnergyJoules)
	}
	// Peak power: both active in [0,2): 7 W.
	if math.Abs(st.PeakPowerW-7) > 1e-9 {
		t.Errorf("peak power = %g, want 7", st.PeakPowerW)
	}
	if math.Abs(st.PeakBandwidthGBs-60) > 1e-9 {
		t.Errorf("peak bandwidth = %g, want 60", st.PeakBandwidthGBs)
	}
	// Utilization: cpu0 4/4 = 1.0; acc0 2/4 = 0.5.
	if math.Abs(st.GroupUtilization["cpu0"]-1.0) > 1e-9 {
		t.Errorf("cpu0 utilization = %g, want 1", st.GroupUtilization["cpu0"])
	}
	if math.Abs(st.GroupUtilization["acc0"]-0.5) > 1e-9 {
		t.Errorf("acc0 utilization = %g, want 0.5", st.GroupUtilization["acc0"])
	}
	// WLP: 2 tasks in [0,2), 1 in [2,4) -> (2+2+1+1)/4 = 1.5.
	if math.Abs(st.AvgWLP-1.5) > 1e-9 {
		t.Errorf("WLP = %g, want 1.5", st.AvgWLP)
	}
}

func TestExportSchedule(t *testing.T) {
	inst, sched := statsExample(t)
	data, err := inst.ExportSchedule(sched)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		StepSec     float64         `json:"stepSec"`
		MakespanSec float64         `json:"makespanSec"`
		Placements  []TaskPlacement `json:"placements"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if out.StepSec != 1 || out.MakespanSec != 4 {
		t.Errorf("header = %+v", out)
	}
	if len(out.Placements) != 2 {
		t.Fatalf("%d placements, want 2", len(out.Placements))
	}
	// Start-ordered; both start at 0, so alphabetical.
	if out.Placements[0].Task != "a" || out.Placements[1].Task != "b" {
		t.Errorf("placement order: %v, %v", out.Placements[0].Task, out.Placements[1].Task)
	}
	if out.Placements[1].PowerW != 5 || out.Placements[1].BWGBs != 50 {
		t.Errorf("placement b demands: %+v", out.Placements[1])
	}
}

func TestStatsWithoutConstraints(t *testing.T) {
	m := CustomModel{
		Name:     "bare",
		Clusters: []CustomCluster{{Name: "c"}},
		Tasks:    []CustomTask{{Name: "t", Options: []CustomOption{{Cluster: "c", Sec: 3, PowerW: 99}}}},
	}
	inst, err := m.Build(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := inst.ComputeStats(res.Schedule)
	if st.EnergyJoules != 0 || st.PeakPowerW != 0 {
		t.Errorf("unconstrained instance should report zero power stats, got %+v", st)
	}
	if st.GroupUtilization["c"] != 1 {
		t.Errorf("utilization = %g, want 1", st.GroupUtilization["c"])
	}
}

func TestCustomModelExtraResources(t *testing.T) {
	// Two tasks each demanding 2 units of a 3-unit L2 resource: they must
	// serialize even though they target different clusters (the §VII
	// multi-level bandwidth extension).
	m := CustomModel{
		Name:     "l2",
		Clusters: []CustomCluster{{Name: "c0"}, {Name: "c1"}},
		Extra:    []CustomResource{{Name: "l2-bandwidth", Capacity: 3}},
		Tasks: []CustomTask{
			{Name: "x", App: 0, Options: []CustomOption{{Cluster: "c0", Sec: 2, ExtraDemand: map[string]float64{"l2-bandwidth": 2}}}},
			{Name: "y", App: 1, Options: []CustomOption{{Cluster: "c1", Sec: 2, ExtraDemand: map[string]float64{"l2-bandwidth": 2}}}},
		},
	}
	inst, err := m.Build(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan != 4 {
		t.Errorf("makespan = %d, want 4 (L2 constraint serializes)", res.Schedule.Makespan)
	}
}

func TestCustomModelExtraResourceErrors(t *testing.T) {
	base := CustomModel{
		Name:     "m",
		Clusters: []CustomCluster{{Name: "c"}},
		Tasks:    []CustomTask{{Name: "t", Options: []CustomOption{{Cluster: "c", Sec: 1}}}},
	}

	m := base
	m.Extra = []CustomResource{{Name: "", Capacity: 1}}
	if _, err := m.Build(1, 10); err == nil {
		t.Error("accepted unnamed extra resource")
	}

	m = base
	m.Extra = []CustomResource{{Name: "power", Capacity: 1}}
	if _, err := m.Build(1, 10); err == nil {
		t.Error("accepted extra resource colliding with built-in")
	}

	m = base
	m.Extra = []CustomResource{{Name: "x", Capacity: 1}, {Name: "x", Capacity: 2}}
	if _, err := m.Build(1, 10); err == nil {
		t.Error("accepted duplicate extra resources")
	}

	m = base
	m.Tasks = []CustomTask{{Name: "t", Options: []CustomOption{{Cluster: "c", Sec: 1, ExtraDemand: map[string]float64{"ghost": 1}}}}}
	if _, err := m.Build(1, 10); err == nil {
		t.Error("accepted demand on unknown resource")
	}
}

func TestBuildInstanceRejectsUnknownDSATarget(t *testing.T) {
	w := smallWorkload(t)
	spec := fastSpec(1, 0, soc.DSA{PEs: 4, Target: "NOPE"})
	if _, err := BuildInstance(w, spec, 2, 100); err == nil {
		t.Error("accepted a DSA targeting an application outside the workload")
	}
}
