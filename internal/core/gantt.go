package core

import (
	"fmt"
	"strings"

	"hilp/internal/scheduler"
)

// Gantt renders an ASCII Gantt chart of the schedule, one row per cluster
// (GPU DVFS aliases collapse onto one device row), the way the paper plots
// its schedules in Figures 2, 3, and 10. The chart is scaled to at most
// width columns; width <= 0 selects 100.
func (in *Instance) Gantt(s scheduler.Schedule, width int) string {
	if width <= 0 {
		width = 100
	}
	makespan := 0
	for i := range in.Problem.Tasks {
		if f := s.Finish(in.Problem, i); f > makespan {
			makespan = f
		}
	}
	if makespan == 0 {
		return "(empty schedule)\n"
	}
	stepsPerCol := (makespan + width - 1) / width
	cols := (makespan + stepsPerCol - 1) / stepsPerCol

	// One row per device group, labeled by the first cluster of the group.
	numGroups := in.Problem.NumGroups()
	rowName := make([]string, numGroups)
	for _, c := range in.Clusters {
		if rowName[c.Group] == "" {
			name := c.Name
			if c.Kind == GPUCluster {
				name = "gpu"
			}
			rowName[c.Group] = name
		}
	}
	nameWidth := 0
	for _, n := range rowName {
		if len(n) > nameWidth {
			nameWidth = len(n)
		}
	}

	rows := make([][]byte, numGroups)
	for g := range rows {
		rows[g] = []byte(strings.Repeat(".", cols))
	}
	for i := range in.Problem.Tasks {
		t := &in.Problem.Tasks[i]
		o := t.Options[s.Option[i]]
		if o.Duration == 0 {
			continue
		}
		g := in.Problem.ClusterGroup[o.Cluster]
		c0 := s.Start[i] / stepsPerCol
		c1 := (s.Start[i] + o.Duration - 1) / stepsPerCol
		label := t.Name
		for c := c0; c <= c1 && c < cols; c++ {
			k := c - c0
			if k < len(label) {
				rows[g][c] = label[k]
			} else {
				rows[g][c] = '='
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%*s  t=0%s%d steps (%.4g s/step)\n", nameWidth, "", strings.Repeat(" ", max(1, cols-len(fmt.Sprint(makespan))-3)), makespan, in.StepSec)
	for g := 0; g < numGroups; g++ {
		fmt.Fprintf(&b, "%-*s  %s\n", nameWidth, rowName[g], rows[g])
	}
	return b.String()
}

// GanttByApp renders the schedule with one row per application, labeling
// segments by the cluster each phase ran on - the per-application view the
// paper uses in Figure 2. Width semantics match Gantt.
func (in *Instance) GanttByApp(s scheduler.Schedule, width int) string {
	if width <= 0 {
		width = 100
	}
	makespan := 0
	numApps := 0
	for i := range in.Problem.Tasks {
		if f := s.Finish(in.Problem, i); f > makespan {
			makespan = f
		}
		if a := in.Problem.Tasks[i].App; a+1 > numApps {
			numApps = a + 1
		}
	}
	if makespan == 0 || numApps == 0 {
		return "(empty schedule)\n"
	}
	stepsPerCol := (makespan + width - 1) / width
	cols := (makespan + stepsPerCol - 1) / stepsPerCol

	rowName := make([]string, numApps)
	for i := range in.Problem.Tasks {
		t := &in.Problem.Tasks[i]
		if rowName[t.App] == "" {
			name := t.Name
			if dot := strings.IndexByte(name, '.'); dot > 0 {
				name = name[:dot]
			}
			rowName[t.App] = name
		}
	}
	nameWidth := 3
	for _, n := range rowName {
		if len(n) > nameWidth {
			nameWidth = len(n)
		}
	}

	rows := make([][]byte, numApps)
	for a := range rows {
		rows[a] = []byte(strings.Repeat(".", cols))
	}
	for i := range in.Problem.Tasks {
		t := &in.Problem.Tasks[i]
		o := t.Options[s.Option[i]]
		if o.Duration == 0 {
			continue
		}
		label := o.Label
		if label == "" {
			label = in.Clusters[o.Cluster].Name
		}
		c0 := s.Start[i] / stepsPerCol
		c1 := (s.Start[i] + o.Duration - 1) / stepsPerCol
		for c := c0; c <= c1 && c < cols; c++ {
			k := c - c0
			if k < len(label) {
				rows[t.App][c] = label[k]
			} else {
				rows[t.App][c] = '='
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%*s  t=0 .. %d steps (%.4g s/step)\n", nameWidth, "", makespan, in.StepSec)
	for a := 0; a < numApps; a++ {
		fmt.Fprintf(&b, "%-*s  %s\n", nameWidth, rowName[a], rows[a])
	}
	return b.String()
}

// WLPHistogram renders the distribution of per-step WLP values as a small
// text histogram, quantifying how much workload-level parallelism the
// schedule actually exploits.
func (in *Instance) WLPHistogram(s scheduler.Schedule) string {
	profile := s.WLPProfile(in.Problem)
	if len(profile) == 0 {
		return "(empty schedule)\n"
	}
	peak := 0
	for _, a := range profile {
		if a > peak {
			peak = a
		}
	}
	counts := make([]int, peak+1)
	for _, a := range profile {
		counts[a]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "WLP distribution over %d steps (avg %.2f):\n", len(profile), s.WLP(in.Problem))
	for wlp := 0; wlp <= peak; wlp++ {
		if counts[wlp] == 0 {
			continue
		}
		frac := float64(counts[wlp]) / float64(len(profile))
		bar := strings.Repeat("#", int(frac*40+0.5))
		fmt.Fprintf(&b, "  %2d: %5.1f%% %s\n", wlp, 100*frac, bar)
	}
	return b.String()
}

// DescribeSchedule lists every task's placement in start order, with
// human-readable times.
func (in *Instance) DescribeSchedule(s scheduler.Schedule) string {
	type row struct {
		start int
		text  string
	}
	rows := make([]row, 0, len(in.Problem.Tasks))
	for i := range in.Problem.Tasks {
		t := &in.Problem.Tasks[i]
		o := t.Options[s.Option[i]]
		rows = append(rows, row{
			start: s.Start[i],
			text: fmt.Sprintf("%-14s %-12s start %7.4gs  dur %7.4gs",
				t.Name, o.Label, float64(s.Start[i])*in.StepSec, float64(o.Duration)*in.StepSec),
		})
	}
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].start < rows[j-1].start; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r.text)
		b.WriteByte('\n')
	}
	return b.String()
}
