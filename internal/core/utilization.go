package core

import (
	"fmt"

	"hilp/internal/scheduler"
)

// ResourceUsage is the step-by-step accounting of one cumulative resource
// (power, bandwidth, CPU cores) over a schedule.
type ResourceUsage struct {
	Name     string    `json:"name"`
	Capacity float64   `json:"capacity"`
	Series   []float64 `json:"series"` // per-step consumption, len = makespan
	Peak     float64   `json:"peak"`
	Mean     float64   `json:"mean"` // arithmetic mean over the makespan
	// PeakFrac and MeanFrac are Peak and Mean divided by Capacity (0 when
	// the capacity is zero).
	PeakFrac float64 `json:"peakFrac"`
	MeanFrac float64 `json:"meanFrac"`
	// BindingSteps counts the steps in which this resource was the binding
	// constraint: the active resource closest to its capacity.
	BindingSteps int `json:"bindingSteps"`
}

// GroupUsage is the occupancy accounting of one device group (a CPU core,
// the GPU across its DVFS aliases, or a DSA).
type GroupUsage struct {
	Name      string  `json:"name"`
	BusySteps int     `json:"busySteps"`
	BusyFrac  float64 `json:"busyFrac"` // busy steps / makespan
}

// PhaseBinding names the constraint that binds one scheduled phase: the
// resource with the highest mean utilization fraction while the phase runs.
type PhaseBinding struct {
	Task     string  `json:"task"`
	App      int     `json:"app"`
	Start    int     `json:"start"`    // steps
	Duration int     `json:"duration"` // steps
	Binding  string  `json:"binding"`  // resource name, "" when nothing is consumed
	MeanFrac float64 `json:"meanFrac"` // that resource's mean fraction over the phase
}

// UtilizationReport is the result of replaying a schedule step-by-step
// against the instance's resource capacities and device groups: per-resource
// time series with peaks and means, per-group occupancy, and the binding
// constraint per step and per phase.
type UtilizationReport struct {
	Steps     int             `json:"steps"`
	StepSec   float64         `json:"stepSec"`
	Resources []ResourceUsage `json:"resources"`
	Groups    []GroupUsage    `json:"groups"`
	// Binding holds, per step, the index into Resources of the binding
	// constraint (-1 when no resource is consumed at that step).
	Binding []int          `json:"binding"`
	Phases  []PhaseBinding `json:"phases"`
}

// Account replays the schedule step-by-step against the problem's cumulative
// resources and device groups. It is an independent feasibility validator:
// any capacity overshoot or double-booked device group returns an error, so
// solver regressions that emit infeasible schedules fail loudly. groupNames
// labels the device groups (generated names are used when nil or short).
//
// stepSec only scales reporting (it is recorded in the report); accounting
// itself is in integer steps.
func Account(p *scheduler.Problem, s scheduler.Schedule, stepSec float64, groupNames []string) (*UtilizationReport, error) {
	n := len(p.Tasks)
	if len(s.Start) != n || len(s.Option) != n {
		return nil, fmt.Errorf("core: utilization: schedule covers %d/%d tasks, want %d", len(s.Start), len(s.Option), n)
	}
	makespan := 0
	for i := range p.Tasks {
		if s.Option[i] < 0 || s.Option[i] >= len(p.Tasks[i].Options) {
			return nil, fmt.Errorf("core: utilization: task %d (%s) has option %d, want [0,%d)",
				i, p.Tasks[i].Name, s.Option[i], len(p.Tasks[i].Options))
		}
		if s.Start[i] < 0 {
			return nil, fmt.Errorf("core: utilization: task %d (%s) starts at %d, want >= 0", i, p.Tasks[i].Name, s.Start[i])
		}
		if f := s.Finish(p, i); f > makespan {
			makespan = f
		}
	}

	rep := &UtilizationReport{Steps: makespan, StepSec: stepSec}

	// Per-resource series, accumulated task by task, then validated step by
	// step against the capacity.
	series := make([][]float64, len(p.Resources))
	for r := range p.Resources {
		series[r] = make([]float64, makespan)
	}
	numGroups := p.NumGroups()
	occupancy := make([][]int, numGroups) // occupying task index per step, -1 free
	for g := range occupancy {
		occupancy[g] = make([]int, makespan)
		for step := range occupancy[g] {
			occupancy[g][step] = -1
		}
	}
	for i := range p.Tasks {
		o := &p.Tasks[i].Options[s.Option[i]]
		g := p.ClusterGroup[o.Cluster]
		for step := s.Start[i]; step < s.Start[i]+o.Duration; step++ {
			for r := range p.Resources {
				series[r][step] += o.Demand[r]
			}
			if prev := occupancy[g][step]; prev >= 0 {
				return nil, fmt.Errorf("core: utilization: tasks %s and %s double-book device group %d at step %d",
					p.Tasks[prev].Name, p.Tasks[i].Name, g, step)
			}
			occupancy[g][step] = i
		}
	}
	for r, res := range p.Resources {
		for step, u := range series[r] {
			if u > res.Capacity+1e-9 {
				return nil, fmt.Errorf("core: utilization: resource %s over capacity at step %d: %.6g > %.6g (infeasible schedule)",
					res.Name, step, u, res.Capacity)
			}
		}
	}

	// Binding constraint per step: the consumed resource nearest its
	// capacity. Ties break toward the first resource, deterministically.
	rep.Binding = make([]int, makespan)
	for step := 0; step < makespan; step++ {
		bind, bindFrac := -1, 0.0
		for r, res := range p.Resources {
			u := series[r][step]
			if u <= 0 || res.Capacity <= 0 {
				continue
			}
			if frac := u / res.Capacity; frac > bindFrac+1e-12 {
				bind, bindFrac = r, frac
			}
		}
		rep.Binding[step] = bind
	}

	rep.Resources = make([]ResourceUsage, len(p.Resources))
	for r, res := range p.Resources {
		u := ResourceUsage{Name: res.Name, Capacity: res.Capacity, Series: series[r]}
		sum := 0.0
		for _, v := range series[r] {
			if v > u.Peak {
				u.Peak = v
			}
			sum += v
		}
		if makespan > 0 {
			u.Mean = sum / float64(makespan)
		}
		if res.Capacity > 0 {
			u.PeakFrac = u.Peak / res.Capacity
			u.MeanFrac = u.Mean / res.Capacity
		}
		for _, b := range rep.Binding {
			if b == r {
				u.BindingSteps++
			}
		}
		rep.Resources[r] = u
	}

	rep.Groups = make([]GroupUsage, numGroups)
	for g := 0; g < numGroups; g++ {
		name := fmt.Sprintf("group%d", g)
		if g < len(groupNames) && groupNames[g] != "" {
			name = groupNames[g]
		}
		gu := GroupUsage{Name: name}
		for _, occ := range occupancy[g] {
			if occ >= 0 {
				gu.BusySteps++
			}
		}
		if makespan > 0 {
			gu.BusyFrac = float64(gu.BusySteps) / float64(makespan)
		}
		rep.Groups[g] = gu
	}

	rep.Phases = make([]PhaseBinding, n)
	for i := range p.Tasks {
		t := &p.Tasks[i]
		o := &t.Options[s.Option[i]]
		pb := PhaseBinding{Task: t.Name, App: t.App, Start: s.Start[i], Duration: o.Duration}
		for r, res := range p.Resources {
			if res.Capacity <= 0 || o.Duration == 0 {
				continue
			}
			sum := 0.0
			for step := s.Start[i]; step < s.Start[i]+o.Duration; step++ {
				sum += series[r][step]
			}
			if frac := sum / float64(o.Duration) / res.Capacity; frac > pb.MeanFrac+1e-12 {
				pb.Binding = res.Name
				pb.MeanFrac = frac
			}
		}
		rep.Phases[i] = pb
	}
	return rep, nil
}

// groupNames labels the instance's device groups the way the Gantt chart
// labels its rows (GPU DVFS aliases collapse to "gpu").
func (in *Instance) groupNames() []string {
	names := make([]string, in.Problem.NumGroups())
	for _, c := range in.Clusters {
		if names[c.Group] == "" {
			name := c.Name
			if c.Kind == GPUCluster {
				name = "gpu"
			}
			names[c.Group] = name
		}
	}
	return names
}

// AccountUtilization replays the schedule against the instance's power,
// bandwidth, and CPU-count constraints, returning per-resource time series,
// peak/mean utilization, device-group occupancy, and the binding-constraint
// breakdown. It rejects infeasible schedules with a descriptive error and so
// doubles as an independent check on every solution the solvers emit.
func (in *Instance) AccountUtilization(s scheduler.Schedule) (*UtilizationReport, error) {
	return Account(in.Problem, s, in.StepSec, in.groupNames())
}
