package core

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"hilp/internal/rodinia"
	"hilp/internal/soc"
)

// ErrBadModel is the sentinel every input-validation failure wraps. Callers
// match it with errors.Is and recover the individual field problems with
// errors.As on *ValidationError; hilp-serve maps it to HTTP 422.
var ErrBadModel = errors.New("hilp: invalid model")

// Field-error codes. Each FieldError carries exactly one, so clients can
// branch without parsing messages.
const (
	CodeNaN       = "nan"       // value is NaN
	CodeInfinite  = "infinite"  // value is ±Inf where a finite one is required
	CodeNegative  = "negative"  // value is negative where >= 0 is required
	CodeEmpty     = "empty"     // required collection or name is empty
	CodeUnknown   = "unknown"   // reference to an undeclared entity
	CodeDuplicate = "duplicate" // name declared more than once
	CodeCycle     = "cycle"     // dependency cycle
	CodeDimension = "dimension" // collection has the wrong length
	CodeRange     = "range"     // value outside its valid range
)

// FieldError addresses one invalid input field by JSON-style path, e.g.
// "tasks[2].options[1].sec" or "workload.apps[0].bench".
type FieldError struct {
	Path string `json:"path"`
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

func (e FieldError) Error() string { return fmt.Sprintf("%s: %s (%s)", e.Path, e.Msg, e.Code) }

// ValidationError aggregates every field problem found in one pass, so a
// client can fix a payload in one round trip. It wraps ErrBadModel.
type ValidationError struct {
	Fields []FieldError
}

func (e *ValidationError) Error() string {
	if len(e.Fields) == 1 {
		return fmt.Sprintf("invalid model: %s", e.Fields[0].Error())
	}
	paths := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		paths[i] = f.Path
	}
	return fmt.Sprintf("invalid model: %d invalid fields (%s); first: %s",
		len(e.Fields), strings.Join(paths, ", "), e.Fields[0].Error())
}

func (e *ValidationError) Unwrap() error { return ErrBadModel }

// BadField builds a single-field ValidationError; converters (e.g. the wire
// layer) use it to report structured errors without a full validation pass.
func BadField(path, code, format string, args ...any) error {
	return &ValidationError{Fields: []FieldError{{Path: path, Code: code, Msg: fmt.Sprintf(format, args...)}}}
}

// fieldList accumulates FieldErrors during one validation pass.
type fieldList struct {
	fields []FieldError
}

func (v *fieldList) addf(path, code, format string, args ...any) {
	v.fields = append(v.fields, FieldError{Path: path, Code: code, Msg: fmt.Sprintf(format, args...)})
}

// finite checks a scalar for NaN/Inf and (unless allowNeg) negativity,
// reporting problems under path. allowPosInf admits +Inf (used by budgets
// where +Inf means unconstrained).
func (v *fieldList) finite(path string, x float64, allowNeg, allowPosInf bool) {
	switch {
	case math.IsNaN(x):
		v.addf(path, CodeNaN, "is NaN")
	case math.IsInf(x, 1) && !allowPosInf:
		v.addf(path, CodeInfinite, "is +Inf")
	case math.IsInf(x, -1):
		v.addf(path, CodeInfinite, "is -Inf")
	case x < 0 && !allowNeg:
		v.addf(path, CodeNegative, "is %g, want >= 0", x)
	}
}

func (v *fieldList) err() error {
	if len(v.fields) == 0 {
		return nil
	}
	return &ValidationError{Fields: v.fields}
}

// Validate checks the model's every field and reports all problems at once as
// a *ValidationError (wrapping ErrBadModel), or nil. Build runs it first, so
// any entry point that compiles a CustomModel gets structured errors.
func (m CustomModel) Validate() error {
	var v fieldList

	clusterNames := map[string]bool{}
	if len(m.Clusters) == 0 {
		v.addf("clusters", CodeEmpty, "model has no clusters")
	}
	for i, c := range m.Clusters {
		path := fmt.Sprintf("clusters[%d]", i)
		if c.Name == "" {
			v.addf(path+".name", CodeEmpty, "cluster has no name")
			continue
		}
		if clusterNames[c.Name] {
			v.addf(path+".name", CodeDuplicate, "cluster %q declared more than once", c.Name)
		}
		clusterNames[c.Name] = true
	}

	v.finite("powerBudgetW", m.PowerBudgetW, false, true)
	v.finite("bandwidthGBs", m.BandwidthGBs, false, true)

	extraNames := map[string]bool{}
	for i, r := range m.Extra {
		path := fmt.Sprintf("extra[%d]", i)
		switch {
		case r.Name == "":
			v.addf(path+".name", CodeEmpty, "extra resource has no name")
		case r.Name == "power" || r.Name == "bandwidth":
			v.addf(path+".name", CodeDuplicate, "extra resource %q collides with a built-in resource", r.Name)
		case extraNames[r.Name]:
			v.addf(path+".name", CodeDuplicate, "extra resource %q declared more than once", r.Name)
		default:
			extraNames[r.Name] = true
		}
		v.finite(path+".capacity", r.Capacity, false, true)
	}

	taskIdx := map[string]int{}
	if len(m.Tasks) == 0 {
		v.addf("tasks", CodeEmpty, "model has no tasks")
	}
	for i, t := range m.Tasks {
		path := fmt.Sprintf("tasks[%d]", i)
		if t.Name == "" {
			v.addf(path+".name", CodeEmpty, "task has no name")
			continue
		}
		if _, dup := taskIdx[t.Name]; dup {
			v.addf(path+".name", CodeDuplicate, "task %q declared more than once", t.Name)
			continue
		}
		taskIdx[t.Name] = i
	}
	for i, t := range m.Tasks {
		path := fmt.Sprintf("tasks[%d]", i)
		if t.App < 0 {
			v.addf(path+".app", CodeRange, "application index %d, want >= 0", t.App)
		}
		if len(t.Options) == 0 {
			// An empty compatibility row: the task can run nowhere.
			v.addf(path+".options", CodeEmpty, "task %q has no placement options", t.Name)
		}
		for j, o := range t.Options {
			opath := fmt.Sprintf("%s.options[%d]", path, j)
			if o.Cluster == "" || !clusterNames[o.Cluster] {
				v.addf(opath+".cluster", CodeUnknown, "references unknown cluster %q", o.Cluster)
			}
			v.finite(opath+".sec", o.Sec, false, false)
			v.finite(opath+".powerW", o.PowerW, false, false)
			v.finite(opath+".bandwidthGBs", o.BandwidthGBs, false, false)
			for name, d := range o.ExtraDemand {
				dpath := fmt.Sprintf("%s.extraDemand.%s", opath, name)
				if !extraNames[name] {
					v.addf(dpath, CodeUnknown, "demands unknown resource %q", name)
				}
				v.finite(dpath, d, false, false)
			}
		}
		for j, d := range t.Deps {
			dpath := fmt.Sprintf("%s.deps[%d]", path, j)
			if _, ok := taskIdx[d.Task]; !ok {
				v.addf(dpath+".task", CodeUnknown, "depends on unknown task %q", d.Task)
			} else if d.Task == t.Name {
				v.addf(dpath+".task", CodeCycle, "task %q depends on itself", t.Name)
			}
			v.finite(dpath+".lagSec", d.LagSec, true, false)
		}
	}

	// Cycle detection only makes sense once every reference resolves.
	if len(v.fields) == 0 {
		if cyc := findModelCycle(m.Tasks, taskIdx); len(cyc) > 0 {
			v.addf(fmt.Sprintf("tasks[%d].deps", taskIdx[cyc[0]]), CodeCycle,
				"dependency cycle: %s", strings.Join(cyc, " -> "))
		}
	}
	return v.err()
}

// findModelCycle returns one dependency cycle among the tasks as a name list
// (first name repeated at the end), or nil.
func findModelCycle(tasks []CustomTask, idx map[string]int) []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(tasks))
	parent := make([]int, len(tasks))
	for i := range parent {
		parent[i] = -1
	}
	var cycleFrom func(int) []string
	cycleFrom = func(i int) []string {
		color[i] = gray
		for _, d := range tasks[i].Deps {
			j := idx[d.Task]
			switch color[j] {
			case white:
				parent[j] = i
				if c := cycleFrom(j); c != nil {
					return c
				}
			case gray:
				// Walk the parent chain from i back to j to name the cycle.
				names := []string{tasks[j].Name}
				for k := i; k != j && k >= 0; k = parent[k] {
					names = append(names, tasks[k].Name)
				}
				// Reverse into dependency order and close the loop.
				for l, r := 0, len(names)-1; l < r; l, r = l+1, r-1 {
					names[l], names[r] = names[r], names[l]
				}
				return append(names, names[0])
			}
		}
		color[i] = black
		return nil
	}
	for i := range tasks {
		if color[i] == white {
			if c := cycleFrom(i); c != nil {
				return c
			}
		}
	}
	return nil
}

// ValidateWorkload rejects workloads with NaN/Inf/negative phase times or
// invalid setup/teardown divisors, with paths relative to the workload
// ("apps[0].bench.computeCPUSec").
func ValidateWorkload(w rodinia.Workload) error {
	var v fieldList
	if len(w.Apps) == 0 {
		v.addf("apps", CodeEmpty, "workload %q has no applications", w.Name)
	}
	for i, a := range w.Apps {
		path := fmt.Sprintf("apps[%d]", i)
		if a.Bench.Abbrev == "" && a.Bench.Name == "" {
			v.addf(path+".bench", CodeEmpty, "application has no benchmark")
			continue
		}
		v.finite(path+".bench.setupSec", a.Bench.SetupSec, false, false)
		v.finite(path+".bench.computeCPUSec", a.Bench.ComputeCPUSec, false, false)
		v.finite(path+".bench.computeGPUSec", a.Bench.ComputeGPUSec, false, false)
		v.finite(path+".bench.teardownSec", a.Bench.TeardownSec, false, false)
		v.finite(path+".bench.gpuBandwidth", a.Bench.GPUBandwidth, false, false)
		div := a.SetupTeardownDiv
		switch {
		case math.IsNaN(div):
			v.addf(path+".setupTeardownDiv", CodeNaN, "is NaN")
		case math.IsInf(div, 0):
			v.addf(path+".setupTeardownDiv", CodeInfinite, "is infinite")
		case div <= 0:
			v.addf(path+".setupTeardownDiv", CodeRange, "is %g, want > 0", div)
		}
	}
	return v.err()
}

// ValidateSpec rejects SoC specs with NaN/Inf/negative fields or structural
// problems, with field-addressed codes ("dsas[1].pes"). Budgets of +Inf are
// legal (explicitly unconstrained); call it on a normalized spec so zero
// defaults have been filled in.
func ValidateSpec(s soc.Spec) error {
	var v fieldList
	if s.CPUCores < 1 {
		v.addf("cpuCores", CodeRange, "is %d, want >= 1", s.CPUCores)
	}
	if s.GPUSMs < 0 {
		v.addf("gpuSMs", CodeNegative, "is %d, want >= 0", s.GPUSMs)
	}
	targets := map[string]bool{}
	for i, d := range s.DSAs {
		path := fmt.Sprintf("dsas[%d]", i)
		if d.PEs < 1 {
			v.addf(path+".pes", CodeRange, "is %d, want >= 1", d.PEs)
		}
		switch {
		case d.Target == "":
			v.addf(path+".target", CodeEmpty, "DSA has no target application")
		case targets[d.Target]:
			v.addf(path+".target", CodeDuplicate, "multiple DSAs target %q", d.Target)
		default:
			targets[d.Target] = true
		}
	}
	v.finite("dsaAdvantage", s.DSAAdvantage, false, false)
	for i, f := range s.GPUFrequenciesMHz {
		path := fmt.Sprintf("gpuFrequenciesMHz[%d]", i)
		switch {
		case math.IsNaN(f):
			v.addf(path, CodeNaN, "is NaN")
		case math.IsInf(f, 0):
			v.addf(path, CodeInfinite, "is infinite")
		case f <= 0:
			v.addf(path, CodeRange, "is %g, want > 0", f)
		}
	}
	v.finite("memBandwidthGBs", s.MemBandwidthGBs, false, true)
	v.finite("powerBudgetWatts", s.PowerBudgetWatts, false, true)
	return v.err()
}
