package core

import (
	"context"
	"fmt"
	"log/slog"

	"hilp/internal/faults"
	"hilp/internal/obs"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// Profile controls the adaptive time-step resolution loop of §III-D.
type Profile struct {
	// InitialStepSec is the starting time-step size in seconds.
	InitialStepSec float64
	// Horizon is the number of time steps the exact methods may use.
	Horizon int
	// RefineWhileBelow triggers a 5x resolution refinement while the solved
	// makespan is below this many steps.
	RefineWhileBelow int
	// MaxRefinements bounds the number of refinements.
	MaxRefinements int
}

// ValidationProfile matches the paper's validation experiments: 2 s steps,
// 1,000-step horizon, refine 5x while the workload finishes in under 200
// steps.
var ValidationProfile = Profile{InitialStepSec: 2, Horizon: 1000, RefineWhileBelow: 200, MaxRefinements: 6}

// DSEProfile matches the paper's design-space exploration: 10 s steps,
// 200-step horizon, refine 5x while the workload finishes in under 40 steps.
var DSEProfile = Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 40, MaxRefinements: 6}

// Result is a complete HILP evaluation of one (workload, SoC) pair.
type Result struct {
	Instance *Instance
	Sched    scheduler.Result

	StepSec     float64 // final resolution
	MakespanSec float64
	// Speedup is relative to fully sequential execution on a single CPU
	// core (the paper's baseline), computed in seconds.
	Speedup float64
	// WLP is the schedule's average workload-level parallelism.
	WLP float64
	// Gap is the certified relative optimality gap at the final resolution.
	Gap float64
	// Refinements counts how many times the resolution was adapted.
	Refinements int
	// Cancelled is true when the evaluation was cut short by context
	// cancellation or deadline expiry: the result is the best incumbent at
	// the resolution reached so far, with a valid (if loose) gap.
	Cancelled bool
	// Degraded is true when any refinement iteration fell back to the
	// heuristic scheduler after the primary solver failed (see
	// SolveProblem); the schedule is feasible and the bound valid, but the
	// gap is typically looser. The flag is sticky across refinements.
	Degraded bool
	// FallbackReason classifies the first degradation ("panic", "numerics",
	// "injected-fault", ...); empty unless Degraded.
	FallbackReason string
}

// Solve evaluates the workload on the SoC with HILP: it builds the instance,
// solves it, and adapts the time-step resolution until the makespan is well
// resolved (or the refinement budget runs out). Cancelling ctx stops the
// loop at the current resolution and returns the best result so far with
// Result.Cancelled set (see SolveAdaptive).
func Solve(ctx context.Context, w rodinia.Workload, spec soc.Spec, profile Profile, cfg scheduler.Config) (*Result, error) {
	spec = spec.Normalize()
	// Input hardening: reject NaN/Inf/negative fields with field-addressed
	// errors before any of them reach the instance builder or the solver.
	if err := ValidateWorkload(w); err != nil {
		return nil, err
	}
	if err := ValidateSpec(spec); err != nil {
		return nil, err
	}
	res, err := SolveAdaptive(ctx, func(stepSec float64, horizon int) (*Instance, error) {
		return BuildInstance(w, spec, stepSec, horizon)
	}, profile, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: solving %s on %s: %w", w.Name, spec.Label(), err)
	}
	if res.MakespanSec > 0 {
		res.Speedup = w.SequentialSingleCoreSec() / res.MakespanSec
	}
	return res, nil
}

// SolveAdaptive runs the §III-D adaptive-resolution loop over any instance
// builder: solve, refine the time step 5x while the makespan is
// under-resolved, coarsen if the initial resolution overshoots the horizon.
// The baselines package reuses it with dependency-stripped instances.
// Speedup is left at zero; callers define their own baseline.
//
// ctx is threaded into every scheduler.Solve call, so cancellation has
// anytime semantics end to end: the in-flight solve returns its best
// incumbent, the loop stops refining, and the result carries Cancelled=true
// with the resolution and gap certified so far. Errors are reserved for
// genuinely failed solves (invalid instances, infeasibility), never for
// cancellation.
func SolveAdaptive(ctx context.Context, build func(stepSec float64, horizon int) (*Instance, error), profile Profile, cfg scheduler.Config) (*Result, error) {
	step := profile.InitialStepSec
	var last *Result
	// Degradation is sticky across refinements: once any iteration fell back
	// to the heuristic scheduler, the whole evaluation reports Degraded even
	// if a finer (or the kept coarser) iteration solved cleanly, so chaos
	// accounting and callers see every point a fault actually touched.
	var degraded bool
	var fallbackReason string
	// When the caller supplied a warm-start hint, refinements self-warm: each
	// iteration's schedule seeds the next resolution's search (task indexing
	// and option labels are resolution-invariant), so only the first, coarsest
	// solve pays the full search cost. Cold solves stay warm-free end to end.
	warmEnabled := cfg.Warm != nil

	octx := cfg.Obs
	esp := octx.StartSpan("evaluate")
	defer esp.End()
	if esp.Active() {
		if id := obs.RequestID(ctx); id != "" {
			esp.ArgStr("req", id)
		}
	}
	ectx := octx.WithSpan(esp)
	octx.Counter(obs.MEvaluations).Inc()

	// finish records the final outcome of the adaptive loop.
	finish := func(r *Result) *Result {
		if degraded {
			r.Degraded = true
			if r.FallbackReason == "" {
				r.FallbackReason = fallbackReason
			}
		}
		octx.Counter(obs.MRefinements).Add(int64(r.Refinements))
		octx.Gauge(obs.MCertifiedGap).Set(r.Gap)
		octx.Gauge(obs.MMakespanSec).Set(r.MakespanSec)
		esp.Arg("gap", r.Gap).Arg("makespan_sec", r.MakespanSec).ArgInt("refinements", r.Refinements)
		return r
	}

	for refinement := 0; ; refinement++ {
		// Fault-injection site outside the solver's own recover boundary:
		// panics here must be caught by sweep workers, hilp.Solve, or the
		// server pool, exercising the outer isolation layers.
		faults.FromContext(ctx).PanicNow(faults.SiteEvaluate)

		rsp := ectx.StartSpan("refine-iteration").ArgInt("refinement", refinement).Arg("step_sec", step)
		rctx := ectx.WithSpan(rsp)

		bsp := rctx.StartSpan("build-instance")
		inst, err := build(step, profile.Horizon)
		if err != nil {
			bsp.End()
			rsp.End()
			return nil, err
		}
		bsp.ArgInt("tasks", len(inst.Problem.Tasks))
		bsp.End()

		scfg := cfg
		scfg.Obs = rctx
		res, err := SolveProblem(ctx, inst.Problem, scfg)
		if err != nil {
			rsp.End()
			return nil, fmt.Errorf("core: solving at %gs steps: %w", step, err)
		}
		if res.Degraded {
			degraded = true
			if fallbackReason == "" {
				fallbackReason = res.FallbackReason
			}
		}
		if warmEnabled {
			cfg.Warm = scheduler.WarmStartOf(inst.Problem, res.Schedule)
		}
		cur := &Result{
			Instance:    inst,
			Sched:       res,
			StepSec:     step,
			MakespanSec: float64(res.Schedule.Makespan) * step,
			WLP:         res.Schedule.WLP(inst.Problem),
			Gap:         res.Gap(),
			Refinements: refinement,
			Cancelled:   res.Cancelled,
		}
		octx.Log(ctx, slog.LevelDebug, "evaluate: refinement solved",
			"stepSec", step, "makespanSteps", res.Schedule.Makespan, "makespanSec", cur.MakespanSec,
			"gap", cur.Gap, "method", res.Method, "refinement", refinement)
		rsp.ArgInt("makespan_steps", res.Schedule.Makespan).Arg("gap", cur.Gap)
		rsp.End()

		if ctx.Err() != nil {
			// Cancelled: stop refining and return the best-resolved result.
			// A coarser previous result is never better than the current one
			// unless the current solve overshot the horizon.
			if res.Schedule.Makespan > profile.Horizon && last != nil {
				last.Cancelled = true
				return finish(last), nil
			}
			cur.Cancelled = true
			return finish(cur), nil
		}

		switch {
		case res.Schedule.Makespan > profile.Horizon && last != nil:
			// Refinement overshot the horizon; keep the previous result.
			return finish(last), nil
		case res.Schedule.Makespan > profile.Horizon && refinement < profile.MaxRefinements:
			// The initial resolution was too fine for this workload; coarsen.
			step *= 5
			last = nil
			continue
		case res.Schedule.Makespan < profile.RefineWhileBelow && refinement < profile.MaxRefinements:
			// Under-resolved: refine 5x and re-solve (paper §III-D).
			last = cur
			step /= 5
			continue
		default:
			return finish(cur), nil
		}
	}
}
