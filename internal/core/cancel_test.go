package core

import (
	"context"
	"math"
	"testing"
	"time"

	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
)

func TestSolveDeadlineReturnsBestIncumbent(t *testing.T) {
	w := rodinia.DefaultWorkload()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()

	start := time.Now()
	res, err := Solve(ctx, w, fastSpec(4, 64), ValidationProfile, scheduler.Config{Seed: 1, Effort: 100})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline-cut solve errored: %v", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("solve took %v after a 20ms deadline", elapsed)
	}
	if !res.Cancelled {
		t.Fatal("Cancelled not set")
	}
	if res.MakespanSec <= 0 {
		t.Errorf("no incumbent: makespan %g", res.MakespanSec)
	}
	if res.Speedup <= 0 {
		t.Errorf("speedup %g, want > 0", res.Speedup)
	}
	if res.Gap < 0 || res.Gap > 1 || math.IsNaN(res.Gap) {
		t.Errorf("gap %g, want a valid certificate in [0, 1]", res.Gap)
	}
	if res.Sched.Proven {
		t.Error("cancelled result claims proven optimality")
	}
}

func TestSolveAdaptivePreCancelledStopsAfterFirstPass(t *testing.T) {
	w := rodinia.Workload{Name: "mini", Apps: rodinia.DefaultWorkload().Apps[:3]}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A profile that would refine aggressively if not cancelled.
	profile := Profile{InitialStepSec: 10, Horizon: 1000, RefineWhileBelow: 1000, MaxRefinements: 6}
	res, err := Solve(ctx, w, fastSpec(2, 16), profile, scheduler.Config{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Error("Cancelled not set")
	}
	if res.Refinements != 0 {
		t.Errorf("cancelled loop still refined %d times", res.Refinements)
	}
	if res.MakespanSec <= 0 {
		t.Errorf("no incumbent: makespan %g", res.MakespanSec)
	}
}

func TestSolveBackgroundNotCancelled(t *testing.T) {
	w := rodinia.Workload{Name: "mini", Apps: rodinia.DefaultWorkload().Apps[:2]}
	profile := Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 0, MaxRefinements: 0}
	res, err := Solve(context.Background(), w, fastSpec(2, 16), profile, scheduler.Config{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancelled {
		t.Error("Cancelled set on a background-context solve")
	}
}
