package core

import (
	"encoding/json"
	"sort"

	"hilp/internal/scheduler"
)

// Stats summarizes a schedule in physical units: makespan, energy, WLP,
// peaks against the budgets, and per-device utilization. It backs the
// reporting in cmd/hilp and the ablation studies.
type Stats struct {
	MakespanSec float64
	AvgWLP      float64
	// EnergyJoules integrates power over the schedule (0 when the instance
	// was built without a power constraint, since per-option power demands
	// only exist then).
	EnergyJoules float64
	// PeakPowerW and PeakBandwidthGBs are the highest per-step sums (0 when
	// the corresponding constraint is inactive).
	PeakPowerW       float64
	PeakBandwidthGBs float64
	// GroupUtilization maps each device row (as shown in the Gantt chart)
	// to its busy fraction of the makespan.
	GroupUtilization map[string]float64
}

// ComputeStats derives schedule statistics for a solved instance.
func (in *Instance) ComputeStats(s scheduler.Schedule) Stats {
	p := in.Problem
	st := Stats{
		MakespanSec:      float64(s.Makespan) * in.StepSec,
		AvgWLP:           s.WLP(p),
		GroupUtilization: map[string]float64{},
	}
	if in.PowerRes >= 0 {
		st.PeakPowerW = s.PeakResource(p, in.PowerRes)
		for i := range p.Tasks {
			o := p.Tasks[i].Options[s.Option[i]]
			st.EnergyJoules += o.Demand[in.PowerRes] * float64(o.Duration) * in.StepSec
		}
	}
	if in.BWRes >= 0 {
		st.PeakBandwidthGBs = s.PeakResource(p, in.BWRes)
	}

	// Busy steps per device group, labeled like the Gantt rows.
	numGroups := p.NumGroups()
	rowName := make([]string, numGroups)
	for _, c := range in.Clusters {
		if rowName[c.Group] == "" {
			name := c.Name
			if c.Kind == GPUCluster {
				name = "gpu"
			}
			rowName[c.Group] = name
		}
	}
	busy := make([]int, numGroups)
	for i := range p.Tasks {
		o := p.Tasks[i].Options[s.Option[i]]
		busy[p.ClusterGroup[o.Cluster]] += o.Duration
	}
	for g := 0; g < numGroups; g++ {
		if s.Makespan > 0 {
			st.GroupUtilization[rowName[g]] = float64(busy[g]) / float64(s.Makespan)
		} else {
			st.GroupUtilization[rowName[g]] = 0
		}
	}
	return st
}

// TaskPlacement is one scheduled phase in physical units, for machine
// consumption (JSON export, plotting).
type TaskPlacement struct {
	Task        string  `json:"task"`
	App         int     `json:"app"`
	Phase       int     `json:"phase"`
	Cluster     string  `json:"cluster"`
	Option      string  `json:"option"`
	StartSec    float64 `json:"startSec"`
	DurationSec float64 `json:"durationSec"`
	PowerW      float64 `json:"powerW,omitempty"`
	BWGBs       float64 `json:"bandwidthGBs,omitempty"`
}

// ExportSchedule renders the schedule as JSON, one entry per task in start
// order. The format is stable and consumed by external plotting scripts.
func (in *Instance) ExportSchedule(s scheduler.Schedule) ([]byte, error) {
	p := in.Problem
	placements := make([]TaskPlacement, 0, len(p.Tasks))
	for i := range p.Tasks {
		t := &p.Tasks[i]
		o := t.Options[s.Option[i]]
		tp := TaskPlacement{
			Task:        t.Name,
			App:         t.App,
			Phase:       t.Phase,
			Cluster:     in.Clusters[o.Cluster].Name,
			Option:      o.Label,
			StartSec:    float64(s.Start[i]) * in.StepSec,
			DurationSec: float64(o.Duration) * in.StepSec,
		}
		if in.PowerRes >= 0 {
			tp.PowerW = o.Demand[in.PowerRes]
		}
		if in.BWRes >= 0 {
			tp.BWGBs = o.Demand[in.BWRes]
		}
		placements = append(placements, tp)
	}
	sort.Slice(placements, func(a, b int) bool {
		if placements[a].StartSec != placements[b].StartSec {
			return placements[a].StartSec < placements[b].StartSec
		}
		return placements[a].Task < placements[b].Task
	})
	return json.MarshalIndent(struct {
		StepSec     float64         `json:"stepSec"`
		MakespanSec float64         `json:"makespanSec"`
		Placements  []TaskPlacement `json:"placements"`
	}{in.StepSec, float64(s.Makespan) * in.StepSec, placements}, "", "  ")
}
