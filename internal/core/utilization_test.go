package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"hilp/internal/scheduler"
)

// accountProblem builds a tiny two-cluster instance with one cumulative
// resource (capacity 4) for hand-checkable accounting:
//
//	steps:    0   1   2   3
//	a (c0):  [3   3]
//	b (c1):  [1   1   1]
func accountProblem() (*scheduler.Problem, scheduler.Schedule) {
	p := &scheduler.Problem{
		NumClusters:  2,
		ClusterGroup: []int{0, 1},
		Resources:    []scheduler.Resource{{Name: "power", Capacity: 4}},
		Horizon:      10,
		Tasks: []scheduler.Task{
			{Name: "a", App: 0, Options: []scheduler.Option{{Cluster: 0, Duration: 2, Demand: []float64{3}}}},
			{Name: "b", App: 1, Options: []scheduler.Option{{Cluster: 1, Duration: 3, Demand: []float64{1}}}},
		},
	}
	s := scheduler.Schedule{Start: []int{0, 0}, Option: []int{0, 0}, Makespan: 3}
	return p, s
}

func TestAccountSeriesAndStats(t *testing.T) {
	p, s := accountProblem()
	rep, err := Account(p, s, 2.0, []string{"c0", "c1"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 3 || rep.StepSec != 2.0 {
		t.Fatalf("steps=%d stepSec=%g, want 3 and 2", rep.Steps, rep.StepSec)
	}
	if len(rep.Resources) != 1 {
		t.Fatalf("%d resources, want 1", len(rep.Resources))
	}
	r := rep.Resources[0]
	wantSeries := []float64{4, 4, 1}
	for i, v := range wantSeries {
		if math.Abs(r.Series[i]-v) > 1e-12 {
			t.Errorf("series[%d] = %g, want %g", i, r.Series[i], v)
		}
	}
	if r.Peak != 4 || math.Abs(r.Mean-3) > 1e-12 {
		t.Errorf("peak=%g mean=%g, want 4 and 3", r.Peak, r.Mean)
	}
	if r.PeakFrac != 1 || math.Abs(r.MeanFrac-0.75) > 1e-12 {
		t.Errorf("peakFrac=%g meanFrac=%g, want 1 and 0.75", r.PeakFrac, r.MeanFrac)
	}
	// Power is the only consumed resource, so it binds every step.
	if r.BindingSteps != 3 {
		t.Errorf("bindingSteps = %d, want 3", r.BindingSteps)
	}
	for step, b := range rep.Binding {
		if b != 0 {
			t.Errorf("binding[%d] = %d, want 0", step, b)
		}
	}
	// Group occupancy: c0 busy 2/3, c1 busy 3/3.
	if len(rep.Groups) != 2 || rep.Groups[0].Name != "c0" || rep.Groups[1].Name != "c1" {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	if rep.Groups[0].BusySteps != 2 || rep.Groups[1].BusySteps != 3 {
		t.Errorf("busy steps = %d/%d, want 2/3", rep.Groups[0].BusySteps, rep.Groups[1].BusySteps)
	}
	if math.Abs(rep.Groups[1].BusyFrac-1) > 1e-12 {
		t.Errorf("c1 busyFrac = %g, want 1", rep.Groups[1].BusyFrac)
	}
	// Phase bindings: both phases bind on power.
	if len(rep.Phases) != 2 {
		t.Fatalf("%d phases, want 2", len(rep.Phases))
	}
	if rep.Phases[0].Binding != "power" || math.Abs(rep.Phases[0].MeanFrac-1) > 1e-12 {
		t.Errorf("phase a binding = %+v, want power at 1.0", rep.Phases[0])
	}
	// b overlaps a for 2 of its 3 steps: mean usage (4+4+1)/3 over cap 4.
	if rep.Phases[1].Binding != "power" || math.Abs(rep.Phases[1].MeanFrac-0.75) > 1e-12 {
		t.Errorf("phase b binding = %+v, want power at 0.75", rep.Phases[1])
	}
}

func TestAccountRejectsOverCapacity(t *testing.T) {
	p, s := accountProblem()
	p.Resources[0].Capacity = 3.5 // steps 0-1 consume 4
	_, err := Account(p, s, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "over capacity") {
		t.Fatalf("err = %v, want over-capacity rejection", err)
	}
}

func TestAccountRejectsDoubleBooking(t *testing.T) {
	p, s := accountProblem()
	// Put both tasks on the same device group, overlapping in time.
	p.ClusterGroup = []int{0, 0}
	p.Resources[0].Capacity = 100
	_, err := Account(p, s, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "double-book") {
		t.Fatalf("err = %v, want double-booking rejection", err)
	}
}

func TestAccountRejectsMalformedSchedules(t *testing.T) {
	p, s := accountProblem()
	cases := []struct {
		name   string
		mutate func(*scheduler.Schedule)
	}{
		{"short", func(s *scheduler.Schedule) { s.Start = s.Start[:1] }},
		{"negative start", func(s *scheduler.Schedule) { s.Start[0] = -1 }},
		{"bad option", func(s *scheduler.Schedule) { s.Option[1] = 7 }},
	}
	for _, c := range cases {
		bad := scheduler.Schedule{
			Start:    append([]int(nil), s.Start...),
			Option:   append([]int(nil), s.Option...),
			Makespan: s.Makespan,
		}
		c.mutate(&bad)
		if _, err := Account(p, bad, 1, nil); err == nil {
			t.Errorf("%s: accepted malformed schedule", c.name)
		}
	}
}

func TestAccountEmptySchedule(t *testing.T) {
	p := &scheduler.Problem{
		NumClusters:  1,
		ClusterGroup: []int{0},
		Resources:    []scheduler.Resource{{Name: "power", Capacity: 1}},
		Horizon:      1,
	}
	rep, err := Account(p, scheduler.Schedule{Start: []int{}, Option: []int{}}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 0 || len(rep.Phases) != 0 {
		t.Errorf("empty schedule report = %+v", rep)
	}
	if rep.Resources[0].Peak != 0 || rep.Resources[0].Mean != 0 {
		t.Errorf("empty schedule resource usage = %+v", rep.Resources[0])
	}
}

// TestAccountUtilizationCrossChecksSolver replays a real solver result
// through the accounter: it must accept the schedule (independent
// feasibility check) and agree with the instance's capacities.
func TestAccountUtilizationCrossChecksSolver(t *testing.T) {
	w := smallWorkload(t)
	inst, err := BuildInstance(w, fastSpec(2, 16), 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := inst.AccountUtilization(res.Schedule)
	if err != nil {
		t.Fatalf("accounter rejected a solver schedule: %v", err)
	}
	if rep.Steps != res.Schedule.Makespan {
		t.Errorf("accounted steps %d != makespan %d", rep.Steps, res.Schedule.Makespan)
	}
	if rep.StepSec != inst.StepSec {
		t.Errorf("stepSec = %g, want %g", rep.StepSec, inst.StepSec)
	}
	// Peak utilization never exceeds capacity on any active resource.
	for _, r := range rep.Resources {
		if r.Capacity > 0 && r.Peak > r.Capacity+1e-9 {
			t.Errorf("resource %s peak %g exceeds capacity %g", r.Name, r.Peak, r.Capacity)
		}
	}
	// Group names follow the Gantt convention: GPU aliases collapse to "gpu".
	sawGPU := false
	for _, g := range rep.Groups {
		if g.Name == "gpu" {
			sawGPU = true
		}
		if g.BusyFrac < 0 || g.BusyFrac > 1 {
			t.Errorf("group %s busyFrac = %g", g.Name, g.BusyFrac)
		}
	}
	if !sawGPU {
		t.Error("no group named gpu in the utilization report")
	}
	// Every step with work has a binding constraint or no consumption at all.
	for step, b := range rep.Binding {
		if b < -1 || b >= len(rep.Resources) {
			t.Errorf("binding[%d] = %d out of range", step, b)
		}
	}
}
