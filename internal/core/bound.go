package core

import (
	"math"

	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// AnalyticLowerBoundSec returns a continuous-time lower bound, in seconds,
// on the makespan of any schedule of w on spec — at any time-step
// resolution, since discretized durations only round continuous times up.
// Four bounds are combined:
//
//   - critical path: each application must run setup, its fastest compute
//     option, and teardown in a chain;
//   - CPU-core load: setup and teardown run only on CPU cores, so their
//     total core-seconds divided by the core count bounds the makespan;
//   - energy: every phase draws at least its cheapest option's energy
//     (power x time, memory power included), and instantaneous draw is
//     capped by the power budget;
//   - traffic: every phase moves at least its lightest option's bytes, and
//     instantaneous bandwidth is capped by the memory budget.
//
// The sweep engine uses it to certify dominance pruning: a skipped point's
// best possible speedup is seq / AnalyticLowerBoundSec.
func AnalyticLowerBoundSec(w rodinia.Workload, spec soc.Spec) float64 {
	spec = spec.Normalize()
	pathBound := 0.0
	coreSec := 0.0   // CPU-core-seconds pinned to cores (setup + teardown)
	energyJ := 0.0   // joules every schedule must draw
	trafficGB := 0.0 // gigabytes every schedule must move

	for _, app := range w.Apps {
		b := app.Bench
		fixed := app.SetupSec() + app.TeardownSec()
		coreSec += fixed
		// Setup and teardown run on one CPU core with no memory traffic.
		energyJ += fixed * (soc.CPUCoreWatts + soc.MemoryPowerWatts(0))

		minT, minE, minGB := computeOptionMins(b, spec)
		pathBound = math.Max(pathBound, fixed+minT)
		energyJ += minE
		trafficGB += minGB
	}

	lb := math.Max(pathBound, coreSec/float64(spec.CPUCores))
	if spec.PowerBudgetWatts > 0 && !math.IsInf(spec.PowerBudgetWatts, 1) {
		lb = math.Max(lb, energyJ/spec.PowerBudgetWatts)
	}
	if spec.MemBandwidthGBs > 0 && !math.IsInf(spec.MemBandwidthGBs, 1) {
		lb = math.Max(lb, trafficGB/spec.MemBandwidthGBs)
	}
	return lb
}

// computeOptionMins scans a benchmark's compute options on spec and returns
// the minimum time, energy (power x time, memory power included), and
// memory traffic any single option achieves. Minima are taken per metric
// independently, which only loosens (never breaks) the combined bound.
func computeOptionMins(b rodinia.Benchmark, spec soc.Spec) (minT, minE, minGB float64) {
	minT, minE, minGB = math.Inf(1), math.Inf(1), math.Inf(1)
	consider := func(t, powerW, bwGBs float64) {
		minT = math.Min(minT, t)
		minE = math.Min(minE, t*(powerW+soc.MemoryPowerWatts(bwGBs)))
		minGB = math.Min(minGB, t*bwGBs)
	}
	consider(soc.CPUTimeSec(b, 1), soc.CPUCoreWatts, soc.CPUBandwidthGBs(b, 1))
	if spec.CPUCores > 1 {
		consider(soc.CPUTimeSec(b, spec.CPUCores),
			soc.CPUCoreWatts*float64(spec.CPUCores), soc.CPUBandwidthGBs(b, spec.CPUCores))
	}
	if spec.GPUSMs > 0 {
		for _, f := range spec.GPUFrequenciesMHz {
			consider(soc.GPUTimeSec(b, spec.GPUSMs, f),
				soc.GPUPowerWatts(spec.GPUSMs, f), soc.GPUBandwidthGBs(b, spec.GPUSMs, f))
		}
	}
	if d, ok := spec.DSAFor(b.Abbrev); ok {
		consider(soc.DSATimeSec(b, d.PEs, spec.DSAAdvantage),
			soc.DSAPowerWatts(d.PEs, spec.DSAAdvantage), soc.DSABandwidthGBs(b, d.PEs, spec.DSAAdvantage))
	}
	return minT, minE, minGB
}

// WarmHint extracts a warm-start hint from a solved result, for seeding a
// neighboring design point's search (see scheduler.WarmStart). nil when the
// result carries no instance (analytic baselines).
func (r *Result) WarmHint() *scheduler.WarmStart {
	if r == nil || r.Instance == nil || r.Instance.Problem == nil {
		return nil
	}
	return scheduler.WarmStartOf(r.Instance.Problem, r.Sched.Schedule)
}
