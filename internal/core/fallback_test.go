package core

import (
	"context"
	"errors"
	"testing"

	"hilp/internal/faults"
	"hilp/internal/milp"
	"hilp/internal/obs"
	"hilp/internal/scheduler"
)

// fallbackProblem is a small instance every solver layer handles quickly.
func fallbackProblem(t *testing.T) *scheduler.Problem {
	t.Helper()
	inst, err := validModel().Build(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	return inst.Problem
}

func chainCtx(cfg faults.Config) (context.Context, *faults.Injector) {
	in := faults.New(cfg)
	return faults.NewContext(context.Background(), in), in
}

func TestSolveProblemClean(t *testing.T) {
	res, err := SolveProblem(context.Background(), fallbackProblem(t), scheduler.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.FallbackReason != "" {
		t.Errorf("clean solve marked degraded: %+v", res)
	}
}

func TestSolveProblemRetryRecovers(t *testing.T) {
	// Times=1: the first attempt fails with an injected error, the retry's
	// injection budget is exhausted, so the retry succeeds cleanly — the
	// result must NOT be degraded.
	ctx, in := chainCtx(faults.Config{Seed: 1, Rate: 1, Times: 1,
		Kinds: []faults.Kind{faults.KindError}, Sites: []string{faults.SiteSolve}})
	octx := &obs.Context{Metrics: obs.NewRegistry()}
	res, err := SolveProblem(ctx, fallbackProblem(t), scheduler.Config{Seed: 1, Obs: octx})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Errorf("successful retry marked degraded: %+v", res)
	}
	if got := octx.Metrics.Counter(obs.MSolveRetries).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MSolveRetries, got)
	}
	if got := octx.Metrics.Counter(obs.MSolveFallbacks).Value(); got != 0 {
		t.Errorf("%s = %d, want 0", obs.MSolveFallbacks, got)
	}
	if in.FiredCount() != 1 {
		t.Errorf("FiredCount = %d, want 1", in.FiredCount())
	}
}

func TestSolveProblemDegradesToFallback(t *testing.T) {
	kinds := map[string]struct {
		kind   faults.Kind
		reason string
	}{
		"error":   {faults.KindError, ReasonInjected},
		"panic":   {faults.KindPanic, ReasonPanic},
		"corrupt": {faults.KindCorrupt, ReasonBadOut},
	}
	for name, tc := range kinds {
		t.Run(name, func(t *testing.T) {
			// Times=2 exhausts both the primary attempt and the retry, forcing
			// the heuristic fallback.
			ctx, _ := chainCtx(faults.Config{Seed: 1, Rate: 1, Times: 2,
				Kinds: []faults.Kind{tc.kind}, Sites: []string{faults.SiteSolve}})
			octx := &obs.Context{Metrics: obs.NewRegistry()}
			p := fallbackProblem(t)
			res, err := SolveProblem(ctx, p, scheduler.Config{Seed: 1, Obs: octx})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Degraded || res.FallbackReason != tc.reason {
				t.Fatalf("degraded=%v reason=%q, want true/%q", res.Degraded, res.FallbackReason, tc.reason)
			}
			if res.Method != "heuristic-fallback" {
				t.Errorf("method %q", res.Method)
			}
			// The degraded result is still a feasible schedule with a valid bound.
			if verr := res.Schedule.Validate(p); verr != nil {
				t.Errorf("fallback schedule invalid: %v", verr)
			}
			if res.LowerBound < 0 || res.LowerBound > res.Schedule.Makespan {
				t.Errorf("fallback bound %d outside [0, %d]", res.LowerBound, res.Schedule.Makespan)
			}
			if got := octx.Metrics.Counter(obs.MSolveDegraded).Value(); got != 1 {
				t.Errorf("%s = %d, want 1", obs.MSolveDegraded, got)
			}
		})
	}
}

func TestSolveProblemMILPPrimary(t *testing.T) {
	p := fallbackProblem(t)
	res, err := SolveProblem(context.Background(), p, scheduler.Config{Seed: 1, Improver: "milp"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "milp" {
		t.Fatalf("method %q, want milp", res.Method)
	}
	if verr := res.Schedule.Validate(p); verr != nil {
		t.Errorf("milp schedule invalid: %v", verr)
	}
	if res.Degraded {
		t.Errorf("clean milp solve marked degraded")
	}
}

func TestSolveProblemValidationErrorIsFinal(t *testing.T) {
	// An invalid problem is the caller's fault: no retry, no fallback.
	bad := &scheduler.Problem{
		Tasks:        []scheduler.Task{{Name: "x", Options: []scheduler.Option{{Cluster: 5, Duration: 1}}}},
		NumClusters:  1,
		ClusterGroup: []int{0},
		Horizon:      10,
	}
	octx := &obs.Context{Metrics: obs.NewRegistry()}
	if _, err := SolveProblem(context.Background(), bad, scheduler.Config{Seed: 1, Obs: octx}); err == nil {
		t.Fatal("invalid problem accepted")
	}
	if got := octx.Metrics.Counter(obs.MSolveRetries).Value(); got != 0 {
		t.Errorf("validation error was retried (%d retries)", got)
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{scheduler.NewPanicError("t", "boom"), true},
		{milp.ErrNumerics, true},
		{milp.ErrDegenerate, true},
		{faults.ErrInjected, true},
		{faults.ErrTimeout, true},
		{ErrBadResult, true},
		{errMILPIncomplete, true},
		{scheduler.ErrInfeasible, false},
		{context.Canceled, false},
		{BadField("x", CodeNaN, "is NaN"), false},
		{errors.New("mystery"), false},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestSolveAdaptiveDegradedSticky(t *testing.T) {
	// A fault on the solve site inside the adaptive loop must surface on the
	// final Result even though later refinements may succeed.
	ctx, _ := chainCtx(faults.Config{Seed: 3, Rate: 1, Times: 2,
		Kinds: []faults.Kind{faults.KindError}, Sites: []string{faults.SiteSolve}})
	w := smallWorkload(t)
	res, err := Solve(ctx, w, fastSpec(2, 16), Profile{InitialStepSec: 10, Horizon: 200}, scheduler.Config{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.FallbackReason != ReasonInjected {
		t.Errorf("degraded=%v reason=%q, want sticky true/%q", res.Degraded, res.FallbackReason, ReasonInjected)
	}
	if res.Speedup <= 0 {
		t.Errorf("degraded result speedup %g, want > 0", res.Speedup)
	}
}
