package core

import (
	"context"
	"strings"
	"testing"

	"hilp/internal/scheduler"
)

func TestPinPhase(t *testing.T) {
	w := smallWorkload(t)
	target := w.Apps[0].Bench.Abbrev
	inst, err := BuildInstance(w, fastSpec(2, 16), 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	task := target + ".compute"
	if err := inst.PinPhase(task, "cpu0"); err != nil {
		t.Fatal(err)
	}
	ti := inst.FindTask(task)
	if ti < 0 {
		t.Fatal("task vanished")
	}
	for _, o := range inst.Problem.Tasks[ti].Options {
		if inst.Clusters[o.Cluster].Name != "cpu0" {
			t.Errorf("pinned task retains option on %s", inst.Clusters[o.Cluster].Name)
		}
	}
	// The pinned instance still solves and honors the pin.
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	chosen := inst.Problem.Tasks[ti].Options[res.Schedule.Option[ti]]
	if inst.Clusters[chosen.Cluster].Name != "cpu0" {
		t.Errorf("solver ignored the pin: ran on %s", inst.Clusters[chosen.Cluster].Name)
	}
}

func TestPinPhaseErrors(t *testing.T) {
	w := smallWorkload(t)
	inst, err := BuildInstance(w, fastSpec(1, 16), 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.PinPhase("ghost.compute", "cpu0"); err == nil {
		t.Error("accepted unknown task")
	}
	if err := inst.PinPhase(w.Apps[0].Bench.Abbrev+".compute", "nope"); err == nil {
		t.Error("accepted unknown cluster")
	}
	// Setup phases have no GPU option: pinning there must fail cleanly.
	if err := inst.PinPhase(w.Apps[0].Bench.Abbrev+".setup", "gpu@765MHz"); err == nil {
		t.Error("accepted an infeasible pin")
	}
}

func TestPinPhaseToGroup(t *testing.T) {
	w := smallWorkload(t)
	inst, err := BuildInstance(w, fastSpec(2, 16), 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	task := w.Apps[0].Bench.Abbrev + ".compute"
	// Pin to the GPU device: both DVFS aliases stay available.
	if err := inst.PinPhaseToGroup(task, "gpu@765MHz"); err != nil {
		t.Fatal(err)
	}
	ti := inst.FindTask(task)
	if got := len(inst.Problem.Tasks[ti].Options); got != 2 {
		t.Errorf("%d options after group pin, want 2 (both DVFS points)", got)
	}
	for _, o := range inst.Problem.Tasks[ti].Options {
		if inst.Clusters[o.Cluster].Kind != GPUCluster {
			t.Error("non-GPU option survived the group pin")
		}
	}
}

func TestForbidCluster(t *testing.T) {
	w := smallWorkload(t)
	inst, err := BuildInstance(w, fastSpec(2, 16), 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	task := w.Apps[0].Bench.Abbrev + ".compute"
	before := len(inst.Problem.Tasks[inst.FindTask(task)].Options)
	// cpu1 hosts exactly one option (the sequential one); cpu0 also hosts
	// the parallel-width option, so forbidding it would remove two.
	if err := inst.ForbidCluster(task, "cpu1"); err != nil {
		t.Fatal(err)
	}
	after := len(inst.Problem.Tasks[inst.FindTask(task)].Options)
	if after != before-1 {
		t.Errorf("options %d -> %d, want one fewer", before, after)
	}
	// Forbidding the only cluster of a setup phase on a 1-CPU SoC fails.
	inst1, err := BuildInstance(w, fastSpec(1, 0), 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst1.ForbidCluster(w.Apps[0].Bench.Abbrev+".setup", "cpu0"); err == nil {
		t.Error("accepted forbidding the last option")
	}
}

func TestPinningChangesTheSchedule(t *testing.T) {
	// The §III-B what-if: pinning LUD's compute to the CPU versus leaving
	// it free must cost performance on an accelerated SoC.
	w := smallWorkload(t)
	spec := fastSpec(2, 64)
	cfg := scheduler.Config{Seed: 1, Effort: 0.3}

	free, err := BuildInstance(w, spec, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	freeRes, err := scheduler.Solve(context.Background(), free.Problem, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pinned, err := BuildInstance(w, spec, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the largest compute phase to a single CPU core.
	if err := pinned.PinPhase(w.Apps[0].Bench.Abbrev+".compute", "cpu0"); err != nil {
		t.Fatal(err)
	}
	pinRes, err := scheduler.Solve(context.Background(), pinned.Problem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pinRes.Schedule.Makespan < freeRes.Schedule.Makespan {
		t.Errorf("pinning to the CPU improved the makespan: %d < %d", pinRes.Schedule.Makespan, freeRes.Schedule.Makespan)
	}
}

func TestInstanceIntrospection(t *testing.T) {
	w := smallWorkload(t)
	inst, err := BuildInstance(w, fastSpec(2, 16), 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(inst.TaskNames()); got != 9 {
		t.Errorf("%d task names, want 9", got)
	}
	if got := len(inst.ClusterNames()); got != 4 {
		t.Errorf("%d cluster names, want 4 (2 CPU + 2 DVFS)", got)
	}
	if inst.FindTask("ghost") != -1 {
		t.Error("found a ghost task")
	}
	if s := inst.String(); !strings.Contains(s, "9 tasks") {
		t.Errorf("String = %q", s)
	}
}
