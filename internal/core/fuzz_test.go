package core

import (
	"math"
	"testing"
)

// FuzzStepsAt checks the discretization invariants for arbitrary inputs:
// conversion never loses time (steps x stepSec >= sec), never inflates by
// more than one step, and any positive time yields at least one step (the
// paper requires all phase times to be an integer number of steps).
func FuzzStepsAt(f *testing.F) {
	f.Add(10.0, 2.0)
	f.Add(0.0001, 2.0)
	f.Add(95.3, 0.4)
	f.Add(0.0, 1.0)
	f.Add(1e9, 10.0)
	f.Fuzz(func(t *testing.T, sec, step float64) {
		if !(step > 1e-9) || math.IsInf(step, 1) || math.IsNaN(sec) || math.IsInf(sec, 0) {
			t.Skip()
		}
		if math.Abs(sec) > 1e12 || step > 1e12 {
			t.Skip()
		}
		n := StepsAt(sec, step)
		if sec <= 0 {
			if n != 0 {
				t.Fatalf("StepsAt(%g, %g) = %d, want 0 for non-positive time", sec, step, n)
			}
			return
		}
		if n < 1 {
			t.Fatalf("StepsAt(%g, %g) = %d, want >= 1 for positive time", sec, step, n)
		}
		if got := float64(n) * step; got < sec-1e-6*sec-1e-9 {
			t.Fatalf("StepsAt(%g, %g) = %d loses time: %g < %g", sec, step, n, got, sec)
		}
		if n > 1 {
			// n-1 steps must NOT cover sec (no gratuitous inflation),
			// modulo the float fuzz tolerance used by the implementation.
			if got := float64(n-1) * step; got >= sec+1e-6*sec+1e-9 {
				t.Fatalf("StepsAt(%g, %g) = %d inflated: %d-1 steps already cover it", sec, step, n, n)
			}
		}
	})
}
