package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// smallWorkload returns a 3-application slice of the Default workload to
// keep unit tests fast.
func smallWorkload(t *testing.T) rodinia.Workload {
	t.Helper()
	w := rodinia.DefaultWorkload()
	return rodinia.Workload{Name: "small", Apps: w.Apps[:3]}
}

// fastSpec limits DVFS points so instances stay small in unit tests.
func fastSpec(cores, sms int, dsas ...soc.DSA) soc.Spec {
	return soc.Spec{
		CPUCores:          cores,
		GPUSMs:            sms,
		DSAs:              dsas,
		GPUFrequenciesMHz: []float64{300, 765},
	}
}

func TestStepsAt(t *testing.T) {
	cases := []struct {
		sec, step float64
		want      int
	}{
		{0, 2, 0},
		{-1, 2, 0},
		{0.1, 2, 1},  // tiny positive times round up to one step
		{2.0, 2, 1},  // exact multiples don't inflate
		{2.01, 2, 2}, // anything over rounds up
		{10, 2, 5},
		{9.999999999, 2, 5}, // float fuzz doesn't inflate
	}
	for _, c := range cases {
		if got := StepsAt(c.sec, c.step); got != c.want {
			t.Errorf("StepsAt(%g, %g) = %d, want %d", c.sec, c.step, got, c.want)
		}
	}
}

func TestBuildInstanceStructure(t *testing.T) {
	w := smallWorkload(t)
	spec := fastSpec(2, 16, soc.DSA{PEs: 4, Target: w.Apps[0].Bench.Abbrev})
	inst, err := BuildInstance(w, spec, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Clusters: 2 CPU + 2 GPU DVFS + 1 DSA.
	if len(inst.Clusters) != 5 {
		t.Fatalf("%d clusters, want 5", len(inst.Clusters))
	}
	// GPU aliases share a group; everything else is its own group.
	if inst.Clusters[2].Group != inst.Clusters[3].Group {
		t.Error("GPU DVFS aliases must share a device group")
	}
	if inst.Clusters[0].Group == inst.Clusters[1].Group {
		t.Error("CPU cores must be independent clusters")
	}
	// Tasks: 3 per application.
	if len(inst.Problem.Tasks) != 9 {
		t.Fatalf("%d tasks, want 9", len(inst.Problem.Tasks))
	}
	// The first app's compute phase has: 2 seq CPU + 1 parallel CPU + 2 GPU
	// + 1 DSA options.
	compute := inst.Problem.Tasks[1]
	if !strings.HasSuffix(compute.Name, ".compute") {
		t.Fatalf("task 1 = %s, want a compute phase", compute.Name)
	}
	if len(compute.Options) != 6 {
		t.Errorf("compute options = %d, want 6", len(compute.Options))
	}
	// Setup runs only on CPUs.
	setup := inst.Problem.Tasks[0]
	if len(setup.Options) != 2 {
		t.Errorf("setup options = %d, want 2 (one per CPU core)", len(setup.Options))
	}
	// Resources: power, bandwidth, cpu-cores (defaults constrain all).
	if inst.PowerRes < 0 || inst.BWRes < 0 || inst.CPURes < 0 {
		t.Errorf("resource indices = %d/%d/%d, want all active", inst.PowerRes, inst.BWRes, inst.CPURes)
	}
}

func TestBuildInstanceUnconstrained(t *testing.T) {
	w := smallWorkload(t)
	spec := fastSpec(1, 16)
	spec.PowerBudgetWatts = math.Inf(1)
	spec.MemBandwidthGBs = math.Inf(1)
	inst, err := BuildInstance(w, spec, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if inst.PowerRes != -1 || inst.BWRes != -1 {
		t.Errorf("infinite budgets must disable constraints, got power=%d bw=%d", inst.PowerRes, inst.BWRes)
	}
	if inst.CPURes < 0 {
		t.Error("cpu-core resource must always exist")
	}
}

func TestBuildInstanceErrors(t *testing.T) {
	w := smallWorkload(t)
	if _, err := BuildInstance(w, fastSpec(1, 0), 0, 100); err == nil {
		t.Error("accepted zero step size")
	}
	if _, err := BuildInstance(rodinia.Workload{Name: "empty"}, fastSpec(1, 0), 1, 100); err == nil {
		t.Error("accepted empty workload")
	}
	if _, err := BuildInstance(w, soc.Spec{CPUCores: 0}, 1, 100); err == nil {
		t.Error("accepted invalid spec")
	}
}

func TestInstancePowerDemandIncludesMemory(t *testing.T) {
	w := smallWorkload(t)
	inst, err := BuildInstance(w, fastSpec(1, 16), 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Find a GPU option of a compute task; its power demand must exceed the
	// bare GPU power by the HBM share.
	for _, task := range inst.Problem.Tasks {
		for _, o := range task.Options {
			if inst.Clusters[o.Cluster].Kind != GPUCluster {
				continue
			}
			bw := o.Demand[inst.BWRes]
			gpuW := soc.GPUPowerWatts(16, inst.Clusters[o.Cluster].FreqMHz)
			wantW := gpuW + soc.MemoryPowerWatts(bw)
			if math.Abs(o.Demand[inst.PowerRes]-wantW) > 1e-9 {
				t.Fatalf("%s on %s: power %g, want %g (gpu %g + mem)", task.Name, o.Label, o.Demand[inst.PowerRes], wantW, gpuW)
			}
			return
		}
	}
	t.Fatal("no GPU option found")
}

func TestSequentialSteps(t *testing.T) {
	w := smallWorkload(t)
	inst, err := BuildInstance(w, fastSpec(1, 0), 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, app := range w.Apps {
		want += StepsAt(app.SetupSec(), 2) + StepsAt(soc.CPUTimeSec(app.Bench, 1), 2) + StepsAt(app.TeardownSec(), 2)
	}
	if got := inst.SequentialSteps(); got != want {
		t.Errorf("SequentialSteps = %d, want %d", got, want)
	}
}

func TestSolveAcceleratedBeatsCPUOnly(t *testing.T) {
	w := smallWorkload(t)
	cfg := scheduler.Config{Seed: 1, Effort: 0.3}
	profile := Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 10, MaxRefinements: 2}

	cpuOnly, err := Solve(context.Background(), w, fastSpec(1, 0), profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	accel, err := Solve(context.Background(), w, fastSpec(4, 64), profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if accel.Speedup <= cpuOnly.Speedup {
		t.Errorf("accelerated SoC speedup %g <= CPU-only %g", accel.Speedup, cpuOnly.Speedup)
	}
	if accel.WLP < 1 {
		t.Errorf("WLP = %g, want >= 1", accel.WLP)
	}
	if err := accel.Sched.Schedule.Validate(accel.Instance.Problem); err != nil {
		t.Fatal(err)
	}
}

func TestSolveAdaptiveRefinement(t *testing.T) {
	// A fast SoC finishes the small workload in well under RefineWhileBelow
	// steps at 10 s resolution, so the solver must refine.
	w := smallWorkload(t)
	res, err := Solve(context.Background(), w, fastSpec(4, 64), DSEProfile, scheduler.Config{Seed: 1, Effort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Refinements == 0 {
		t.Error("expected at least one resolution refinement")
	}
	if res.StepSec >= DSEProfile.InitialStepSec {
		t.Errorf("final step %g, want finer than %g", res.StepSec, DSEProfile.InitialStepSec)
	}
	if res.Sched.Schedule.Makespan > DSEProfile.Horizon {
		t.Errorf("returned makespan %d exceeds the horizon", res.Sched.Schedule.Makespan)
	}
}

func TestSolveSpeedupNearOneOnSingleCore(t *testing.T) {
	w := smallWorkload(t)
	res, err := Solve(context.Background(), w, fastSpec(1, 0), Profile{InitialStepSec: 2, Horizon: 1000, RefineWhileBelow: 50, MaxRefinements: 1}, scheduler.Config{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// A single CPU core cannot beat the sequential baseline (modulo
	// discretization slack).
	if res.Speedup > 1.05 {
		t.Errorf("single-core speedup = %g, want ~1", res.Speedup)
	}
	if res.Speedup < 0.8 {
		t.Errorf("single-core speedup = %g, suspiciously low", res.Speedup)
	}
}

func TestGanttRendering(t *testing.T) {
	w := smallWorkload(t)
	inst, err := BuildInstance(w, fastSpec(2, 16), 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	g := inst.Gantt(res.Schedule, 80)
	if !strings.Contains(g, "cpu0") || !strings.Contains(g, "gpu") {
		t.Errorf("Gantt missing cluster rows:\n%s", g)
	}
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	// Header + one row per device group (2 CPUs + 1 GPU device).
	if len(lines) != 1+3 {
		t.Errorf("Gantt has %d lines, want 4:\n%s", len(lines), g)
	}
	desc := inst.DescribeSchedule(res.Schedule)
	for _, task := range inst.Problem.Tasks {
		if !strings.Contains(desc, task.Name) {
			t.Errorf("DescribeSchedule missing %s", task.Name)
		}
	}
}

func TestCustomModelFortJoin(t *testing.T) {
	// A miniature fork-join graph: src -> {a, b} -> join.
	m := CustomModel{
		Name: "forkjoin",
		Clusters: []CustomCluster{
			{Name: "cpu0"}, {Name: "gpu0"},
		},
		Tasks: []CustomTask{
			{Name: "src", App: 0, Options: []CustomOption{{Cluster: "cpu0", Sec: 1}}},
			{Name: "a", App: 0, Deps: []CustomDep{{Task: "src"}}, Options: []CustomOption{{Cluster: "cpu0", Sec: 2}, {Cluster: "gpu0", Sec: 1}}},
			{Name: "b", App: 0, Deps: []CustomDep{{Task: "src"}}, Options: []CustomOption{{Cluster: "cpu0", Sec: 2}, {Cluster: "gpu0", Sec: 1}}},
			{Name: "join", App: 0, Deps: []CustomDep{{Task: "a"}, {Task: "b"}}, Options: []CustomOption{{Cluster: "cpu0", Sec: 1}}},
		},
	}
	inst, err := m.Build(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// src(1) + max(a, b overlapped: gpu 1 and cpu 2) + join(1) = 4.
	if res.Schedule.Makespan != 4 {
		t.Errorf("makespan = %d, want 4", res.Schedule.Makespan)
	}
}

func TestCustomModelValidation(t *testing.T) {
	base := CustomModel{
		Name:     "m",
		Clusters: []CustomCluster{{Name: "c"}},
		Tasks:    []CustomTask{{Name: "t", Options: []CustomOption{{Cluster: "c", Sec: 1}}}},
	}
	if _, err := base.Build(1, 10); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}

	m := base
	m.Tasks = []CustomTask{{Name: "t", Options: []CustomOption{{Cluster: "nope", Sec: 1}}}}
	if _, err := m.Build(1, 10); err == nil {
		t.Error("accepted unknown cluster reference")
	}

	m = base
	m.Tasks = []CustomTask{{Name: "t", Deps: []CustomDep{{Task: "ghost"}}, Options: []CustomOption{{Cluster: "c", Sec: 1}}}}
	if _, err := m.Build(1, 10); err == nil {
		t.Error("accepted unknown dependency")
	}

	m = base
	m.Clusters = []CustomCluster{{Name: "c"}, {Name: "c"}}
	if _, err := m.Build(1, 10); err == nil {
		t.Error("accepted duplicate cluster names")
	}

	m = base
	m.Tasks = append([]CustomTask{}, base.Tasks[0], base.Tasks[0])
	if _, err := m.Build(1, 10); err == nil {
		t.Error("accepted duplicate task names")
	}
}

func TestCustomModelGroupAliases(t *testing.T) {
	m := CustomModel{
		Name: "alias",
		Clusters: []CustomCluster{
			{Name: "gpu-fast", Group: "gpu"},
			{Name: "gpu-slow", Group: "gpu"},
			{Name: "cpu0"},
		},
		Tasks: []CustomTask{
			{Name: "x", Options: []CustomOption{{Cluster: "gpu-fast", Sec: 1}}},
			{Name: "y", Options: []CustomOption{{Cluster: "gpu-slow", Sec: 1}}},
		},
	}
	inst, err := m.Build(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheduler.Solve(context.Background(), inst.Problem, scheduler.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// x and y target aliases of the same device: they must serialize.
	if res.Schedule.Makespan != 2 {
		t.Errorf("makespan = %d, want 2 (aliases serialize)", res.Schedule.Makespan)
	}
}

func TestSolveCoarsensWhenHorizonOvershoots(t *testing.T) {
	// An absurdly fine initial resolution makes the first solve exceed the
	// horizon; the adaptive loop must coarsen instead of failing.
	w := smallWorkload(t)
	profile := Profile{InitialStepSec: 0.05, Horizon: 100, RefineWhileBelow: 0, MaxRefinements: 4}
	res, err := Solve(context.Background(), w, fastSpec(4, 64), profile, scheduler.Config{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepSec <= 0.05 {
		t.Errorf("final step %g, want coarser than the initial 0.05", res.StepSec)
	}
	if res.Sched.Schedule.Makespan > profile.Horizon {
		t.Errorf("returned makespan %d exceeds horizon %d", res.Sched.Schedule.Makespan, profile.Horizon)
	}
}

func TestSolveRefineThenOvershootKeepsLastGood(t *testing.T) {
	// Force a refinement that overshoots the horizon: the loop must return
	// the last in-horizon result rather than the overshooting one.
	w := smallWorkload(t)
	profile := Profile{InitialStepSec: 10, Horizon: 60, RefineWhileBelow: 60, MaxRefinements: 4}
	res, err := Solve(context.Background(), w, fastSpec(4, 64), profile, scheduler.Config{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sched.Schedule.Makespan > profile.Horizon {
		t.Errorf("returned makespan %d exceeds horizon %d", res.Sched.Schedule.Makespan, profile.Horizon)
	}
}
