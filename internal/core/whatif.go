package core

import (
	"fmt"
	"strings"
)

// What-if analysis via the compatibility matrix (paper §III-B): "E_cap can
// also be leveraged to perform what-if analysis. For example, it could be
// used to explore the impact of pinning a phase to a specific DSA compared
// to no restrictions." Pinning is expressed by zeroing out all other
// options of the phase.

// PinPhase restricts the named task to options on the named cluster,
// emulating setting E_cap to 1 for that cluster and 0 elsewhere. It returns
// an error when the task or cluster is unknown, or when the task has no
// option on that cluster (the pin would make the instance infeasible).
func (in *Instance) PinPhase(taskName, clusterName string) error {
	ci := -1
	for i, c := range in.Clusters {
		if c.Name == clusterName {
			ci = i
			break
		}
	}
	if ci < 0 {
		return fmt.Errorf("core: unknown cluster %q", clusterName)
	}
	for ti := range in.Problem.Tasks {
		t := &in.Problem.Tasks[ti]
		if t.Name != taskName {
			continue
		}
		kept := t.Options[:0]
		for _, o := range t.Options {
			if o.Cluster == ci {
				kept = append(kept, o)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("core: task %q has no option on cluster %q; pinning would be infeasible", taskName, clusterName)
		}
		t.Options = kept
		return nil
	}
	return fmt.Errorf("core: unknown task %q", taskName)
}

// PinPhaseToGroup restricts the named task to options on any cluster of the
// device group containing the named cluster - useful to pin a phase to "the
// GPU" regardless of which DVFS operating point the solver picks.
func (in *Instance) PinPhaseToGroup(taskName, clusterName string) error {
	group := -1
	for _, c := range in.Clusters {
		if c.Name == clusterName {
			group = c.Group
			break
		}
	}
	if group < 0 {
		return fmt.Errorf("core: unknown cluster %q", clusterName)
	}
	for ti := range in.Problem.Tasks {
		t := &in.Problem.Tasks[ti]
		if t.Name != taskName {
			continue
		}
		kept := t.Options[:0]
		for _, o := range t.Options {
			if in.Problem.ClusterGroup[o.Cluster] == group {
				kept = append(kept, o)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("core: task %q has no option on %q's device group", taskName, clusterName)
		}
		t.Options = kept
		return nil
	}
	return fmt.Errorf("core: unknown task %q", taskName)
}

// ForbidCluster removes the named cluster's options from the named task
// (the complementary what-if: E_cap forced to 0). It returns an error when
// the removal leaves the task without options.
func (in *Instance) ForbidCluster(taskName, clusterName string) error {
	ci := -1
	for i, c := range in.Clusters {
		if c.Name == clusterName {
			ci = i
			break
		}
	}
	if ci < 0 {
		return fmt.Errorf("core: unknown cluster %q", clusterName)
	}
	for ti := range in.Problem.Tasks {
		t := &in.Problem.Tasks[ti]
		if t.Name != taskName {
			continue
		}
		kept := t.Options[:0]
		for _, o := range t.Options {
			if o.Cluster != ci {
				kept = append(kept, o)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("core: forbidding %q on %q leaves no options", clusterName, taskName)
		}
		t.Options = kept
		return nil
	}
	return fmt.Errorf("core: unknown task %q", taskName)
}

// TaskNames lists the instance's task names, in workload order, for
// discovering pinnable phases.
func (in *Instance) TaskNames() []string {
	names := make([]string, len(in.Problem.Tasks))
	for i := range in.Problem.Tasks {
		names[i] = in.Problem.Tasks[i].Name
	}
	return names
}

// ClusterNames lists the instance's cluster names.
func (in *Instance) ClusterNames() []string {
	names := make([]string, len(in.Clusters))
	for i, c := range in.Clusters {
		names[i] = c.Name
	}
	return names
}

// FindTask returns the index of the named task, or -1.
func (in *Instance) FindTask(name string) int {
	for i := range in.Problem.Tasks {
		if in.Problem.Tasks[i].Name == name {
			return i
		}
	}
	return -1
}

// String renders a short instance summary.
func (in *Instance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instance: %d tasks on %d clusters (%d device groups), %.3g s/step",
		len(in.Problem.Tasks), len(in.Clusters), in.Problem.NumGroups(), in.StepSec)
	return b.String()
}
