package core

import (
	"errors"
	"math"
	"testing"

	"hilp/internal/rodinia"
	"hilp/internal/soc"
)

// validModel is a minimal well-formed model for mutation-based tests.
func validModel() CustomModel {
	return CustomModel{
		Name:     "ok",
		Clusters: []CustomCluster{{Name: "cpu"}, {Name: "gpu"}},
		Tasks: []CustomTask{
			{Name: "a", Options: []CustomOption{{Cluster: "cpu", Sec: 2}, {Cluster: "gpu", Sec: 1}}},
			{Name: "b", Deps: []CustomDep{{Task: "a"}}, Options: []CustomOption{{Cluster: "cpu", Sec: 3}}},
		},
	}
}

// fieldAt extracts the (path, code) pairs of a validation error.
func fieldAt(t *testing.T, err error) map[string]string {
	t.Helper()
	if err == nil {
		t.Fatal("expected a validation error")
	}
	if !errors.Is(err, ErrBadModel) {
		t.Fatalf("error %v does not wrap ErrBadModel", err)
	}
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("error %T is not a *ValidationError", err)
	}
	if len(ve.Fields) == 0 {
		t.Fatal("ValidationError with no fields")
	}
	out := map[string]string{}
	for _, f := range ve.Fields {
		out[f.Path] = f.Code
	}
	return out
}

func TestValidateModelOK(t *testing.T) {
	if err := validModel().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	if _, err := validModel().Build(1, 100); err != nil {
		t.Fatalf("valid model failed to build: %v", err)
	}
}

func TestValidateModel(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CustomModel)
		path   string
		code   string
	}{
		{"empty clusters", func(m *CustomModel) { m.Clusters = nil }, "clusters", CodeEmpty},
		{"empty tasks", func(m *CustomModel) { m.Tasks = nil }, "tasks", CodeEmpty},
		{"unnamed cluster", func(m *CustomModel) { m.Clusters[1].Name = "" }, "clusters[1].name", CodeEmpty},
		{"duplicate cluster", func(m *CustomModel) { m.Clusters[1].Name = "cpu" }, "clusters[1].name", CodeDuplicate},
		{"nan power budget", func(m *CustomModel) { m.PowerBudgetW = math.NaN() }, "powerBudgetW", CodeNaN},
		{"negative bandwidth budget", func(m *CustomModel) { m.BandwidthGBs = -3 }, "bandwidthGBs", CodeNegative},
		{"unnamed task", func(m *CustomModel) { m.Tasks[0].Name = "" }, "tasks[0].name", CodeEmpty},
		{"duplicate task", func(m *CustomModel) { m.Tasks[1].Name = "a" }, "tasks[1].name", CodeDuplicate},
		{"negative app", func(m *CustomModel) { m.Tasks[0].App = -1 }, "tasks[0].app", CodeRange},
		{"empty compatibility row", func(m *CustomModel) { m.Tasks[1].Options = nil }, "tasks[1].options", CodeEmpty},
		{"unknown cluster", func(m *CustomModel) { m.Tasks[0].Options[1].Cluster = "tpu" }, "tasks[0].options[1].cluster", CodeUnknown},
		{"nan seconds", func(m *CustomModel) { m.Tasks[0].Options[0].Sec = math.NaN() }, "tasks[0].options[0].sec", CodeNaN},
		{"infinite seconds", func(m *CustomModel) { m.Tasks[0].Options[0].Sec = math.Inf(1) }, "tasks[0].options[0].sec", CodeInfinite},
		{"negative seconds", func(m *CustomModel) { m.Tasks[0].Options[0].Sec = -4 }, "tasks[0].options[0].sec", CodeNegative},
		{"negative power", func(m *CustomModel) { m.Tasks[0].Options[0].PowerW = -1 }, "tasks[0].options[0].powerW", CodeNegative},
		{"unknown dep", func(m *CustomModel) { m.Tasks[1].Deps[0].Task = "ghost" }, "tasks[1].deps[0].task", CodeUnknown},
		{"self dep", func(m *CustomModel) { m.Tasks[1].Deps[0].Task = "b" }, "tasks[1].deps[0].task", CodeCycle},
		{"nan lag", func(m *CustomModel) { m.Tasks[1].Deps[0].LagSec = math.NaN() }, "tasks[1].deps[0].lagSec", CodeNaN},
		{"unnamed extra resource", func(m *CustomModel) { m.Extra = []CustomResource{{Capacity: 1}} }, "extra[0].name", CodeEmpty},
		{"extra collides with builtin", func(m *CustomModel) { m.Extra = []CustomResource{{Name: "power", Capacity: 1}} }, "extra[0].name", CodeDuplicate},
		{"unknown extra demand", func(m *CustomModel) {
			m.Tasks[0].Options[0].ExtraDemand = map[string]float64{"sram": 1}
		}, "tasks[0].options[0].extraDemand.sram", CodeUnknown},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := validModel()
			tc.mutate(&m)
			fields := fieldAt(t, m.Validate())
			if got, ok := fields[tc.path]; !ok || got != tc.code {
				t.Errorf("fields %v, want %s=%s", fields, tc.path, tc.code)
			}
			// Build must reject the same model (validation is its first step).
			if _, err := m.Build(1, 100); err == nil {
				t.Error("Build accepted the invalid model")
			}
		})
	}
}

func TestValidateModelCycle(t *testing.T) {
	m := validModel()
	// a -> b -> a (a already has no deps; give it one on b).
	m.Tasks[0].Deps = []CustomDep{{Task: "b"}}
	fields := fieldAt(t, m.Validate())
	found := false
	for path, code := range fields {
		if code == CodeCycle {
			found = true
			_ = path
		}
	}
	if !found {
		t.Fatalf("cycle not reported: %v", fields)
	}
}

func TestValidateReportsAllFieldsAtOnce(t *testing.T) {
	m := validModel()
	m.Tasks[0].Options[0].Sec = math.NaN()
	m.Tasks[1].Options = nil
	m.PowerBudgetW = -2
	fields := fieldAt(t, m.Validate())
	if len(fields) < 3 {
		t.Errorf("one pass reported %d fields (%v), want all 3", len(fields), fields)
	}
}

func TestBuildRejectsBadStep(t *testing.T) {
	for _, step := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := validModel().Build(step, 100); !errors.Is(err, ErrBadModel) {
			t.Errorf("Build(step=%g) err = %v, want ErrBadModel", step, err)
		}
	}
}

func TestValidateWorkload(t *testing.T) {
	w := rodinia.DefaultWorkload()
	if err := ValidateWorkload(w); err != nil {
		t.Fatalf("built-in workload rejected: %v", err)
	}
	if err := ValidateWorkload(rodinia.Workload{Name: "hollow"}); err == nil {
		t.Error("empty workload accepted")
	}
	bad := rodinia.DefaultWorkload()
	bad.Apps[0].Bench.ComputeCPUSec = math.NaN()
	fields := fieldAt(t, ValidateWorkload(bad))
	if fields["apps[0].bench.computeCPUSec"] != CodeNaN {
		t.Errorf("fields %v", fields)
	}
	bad = rodinia.DefaultWorkload()
	bad.Apps[1].SetupTeardownDiv = -5
	fields = fieldAt(t, ValidateWorkload(bad))
	if fields["apps[1].setupTeardownDiv"] != CodeRange {
		t.Errorf("fields %v", fields)
	}
}

func TestValidateSpec(t *testing.T) {
	ok := soc.Spec{CPUCores: 2, GPUSMs: 16, GPUFrequenciesMHz: []float64{765}}.Normalize()
	if err := ValidateSpec(ok); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec soc.Spec
		path string
		code string
	}{
		{"no cores", soc.Spec{CPUCores: 0}, "cpuCores", CodeRange},
		{"negative SMs", soc.Spec{CPUCores: 1, GPUSMs: -4}, "gpuSMs", CodeNegative},
		{"zero-PE DSA", soc.Spec{CPUCores: 1, DSAs: []soc.DSA{{PEs: 0, Target: "LUD"}}}, "dsas[0].pes", CodeRange},
		{"untargeted DSA", soc.Spec{CPUCores: 1, DSAs: []soc.DSA{{PEs: 4}}}, "dsas[0].target", CodeEmpty},
		{"duplicate DSA target", soc.Spec{CPUCores: 1,
			DSAs: []soc.DSA{{PEs: 4, Target: "LUD"}, {PEs: 8, Target: "LUD"}}}, "dsas[1].target", CodeDuplicate},
		{"nan frequency", soc.Spec{CPUCores: 1, GPUFrequenciesMHz: []float64{math.NaN()}}, "gpuFrequenciesMHz[0]", CodeNaN},
		{"zero frequency", soc.Spec{CPUCores: 1, GPUFrequenciesMHz: []float64{0}}, "gpuFrequenciesMHz[0]", CodeRange},
		{"nan power", soc.Spec{CPUCores: 1, PowerBudgetWatts: math.NaN()}, "powerBudgetWatts", CodeNaN},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fields := fieldAt(t, ValidateSpec(tc.spec))
			if got, ok := fields[tc.path]; !ok || got != tc.code {
				t.Errorf("fields %v, want %s=%s", fields, tc.path, tc.code)
			}
		})
	}
	// +Inf budgets mean explicitly unconstrained and must pass.
	inf := ok
	inf.PowerBudgetWatts = math.Inf(1)
	inf.MemBandwidthGBs = math.Inf(1)
	if err := ValidateSpec(inf); err != nil {
		t.Errorf("+Inf budgets rejected: %v", err)
	}
}
