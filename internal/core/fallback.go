package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"

	"hilp/internal/faults"
	"hilp/internal/milp"
	"hilp/internal/obs"
	"hilp/internal/scheduler"
	"hilp/internal/timeindexed"
)

// ErrBadResult flags a solver return that failed the trust-boundary re-check:
// an infeasible schedule or a lower bound that contradicts the incumbent. The
// fallback chain treats it like a panic — retry, then degrade — so corrupted
// results never propagate as silent garbage.
var ErrBadResult = errors.New("core: solver produced an invalid result")

// Fallback reasons recorded in Result.FallbackReason.
const (
	ReasonPanic    = "panic"
	ReasonNumerics = "numerics"
	ReasonInjected = "injected-fault"
	ReasonBadOut   = "invalid-result"
	ReasonMILPGave = "milp-incomplete"
)

// errMILPIncomplete marks a MILP solve that ended without a usable incumbent
// (node/time limits) even though the instance is heuristically feasible.
var errMILPIncomplete = errors.New("core: milp search ended without an incumbent")

// Transient reports whether err is worth retrying: solver panics, numerical
// failures, injected faults, and corrupted results. Validation errors,
// genuine infeasibility, and context expiry are final.
func Transient(err error) bool {
	var pe *scheduler.PanicError
	return errors.As(err, &pe) ||
		errors.Is(err, milp.ErrNumerics) ||
		errors.Is(err, faults.ErrInjected) ||
		errors.Is(err, ErrBadResult) ||
		errors.Is(err, errMILPIncomplete)
}

// reasonOf classifies a transient error for Result.FallbackReason.
func reasonOf(err error) string {
	var pe *scheduler.PanicError
	switch {
	case errors.As(err, &pe):
		return ReasonPanic
	case errors.Is(err, milp.ErrNumerics):
		return ReasonNumerics
	case errors.Is(err, faults.ErrInjected):
		return ReasonInjected
	case errors.Is(err, ErrBadResult):
		return ReasonBadOut
	case errors.Is(err, errMILPIncomplete):
		return ReasonMILPGave
	}
	return "error"
}

// SolveProblem is the fault-tolerant solve entry: every solver invocation in
// the stack (the adaptive loop, hilp.SolveInstance/SolveModel, hilp-serve)
// goes through it instead of calling scheduler.Solve directly. The chain is
//
//	primary solve -> retry once with perturbed settings -> heuristic fallback
//
// Primary is the layered CP search (scheduler.Solve), or the time-indexed
// MILP when cfg.Improver is "milp". After any successful solve the result is
// re-checked at this trust boundary (schedule feasibility + bound sanity); a
// check failure is treated like a solver error. Transient failures — panics,
// milp.ErrNumerics, injected faults, corrupted results — are retried once
// with a perturbed seed (CP) or loosened tolerances (MILP); if the retry also
// fails, the priority-rule heuristic scheduler produces a feasible schedule
// with the combinatorial lower bound and the result is marked Degraded with
// the fallback reason. Callers therefore always get a feasible schedule with
// a valid bound, or a typed error (validation, genuine infeasibility, context
// expiry) — never silent garbage.
func SolveProblem(ctx context.Context, p *scheduler.Problem, cfg scheduler.Config) (scheduler.Result, error) {
	octx := cfg.Obs
	fp := faults.FromContext(ctx)

	attempt := func(retry bool) (scheduler.Result, error) {
		var res scheduler.Result
		var err error
		if cfg.Improver == "milp" {
			res, err = solveMILP(ctx, p, cfg, retry)
		} else {
			c := cfg
			if retry {
				// A different seed reshuffles every randomized component;
				// ill-conditioned search trajectories rarely repeat.
				c.Seed = cfg.Seed*6364136223846793005 + 1442695040888963407
			}
			res, err = scheduler.Solve(ctx, p, c)
		}
		if err != nil {
			return scheduler.Result{}, err
		}
		if fp.Corrupt(faults.SiteSolve) {
			// Injected result corruption: a bound that contradicts the
			// incumbent, which the trust-boundary check below must catch.
			res.LowerBound = res.Schedule.Makespan + 1
		}
		if verr := checkResult(p, res); verr != nil {
			return scheduler.Result{}, verr
		}
		return res, nil
	}

	res, err := attempt(false)
	if err == nil {
		return res, nil
	}
	if !Transient(err) || ctx.Err() != nil {
		return scheduler.Result{}, err
	}
	firstErr := err

	// Everything past the first failure is degradation work. It is attributed
	// to the "fallback" stage of the request's StageTimer — nested inside the
	// enclosing "solve" stage, so it explains solve time rather than adding to
	// the request total.
	stopFallback := obs.StageTimerFrom(ctx).Start(obs.StageFallback)
	defer stopFallback()

	octx.Counter(obs.MSolveRetries).Inc()
	octx.Log(ctx, slog.LevelWarn, "solve: transient failure, retrying with perturbed settings", "error", err.Error())
	res, err = attempt(true)
	if err == nil {
		return res, nil
	}
	if !Transient(err) || ctx.Err() != nil {
		return scheduler.Result{}, err
	}

	fb, ok := heuristicFallback(p)
	if !ok {
		// Even the heuristics cannot place every task: surface the original
		// failure rather than inventing an infeasibility verdict.
		return scheduler.Result{}, fmt.Errorf("core: solve failed and heuristic fallback found no schedule: %w", firstErr)
	}
	fb.Degraded = true
	fb.FallbackReason = reasonOf(firstErr)
	octx.Counter(obs.MSolveFallbacks).Inc()
	octx.Counter(obs.MSolveDegraded).Inc()
	octx.Log(ctx, slog.LevelWarn, "solve: degraded to heuristic fallback",
		"error", firstErr.Error(), "reason", fb.FallbackReason,
		"makespan", fb.Schedule.Makespan, "bound", fb.LowerBound)
	return fb, nil
}

// checkResult re-validates a solver result at the trust boundary: the
// schedule must be feasible for p and the bound must bracket the makespan.
func checkResult(p *scheduler.Problem, res scheduler.Result) error {
	if len(p.Tasks) == 0 {
		return nil
	}
	if err := res.Schedule.Validate(p); err != nil {
		return fmt.Errorf("%w: %v", ErrBadResult, err)
	}
	if res.LowerBound < 0 || res.LowerBound > res.Schedule.Makespan {
		return fmt.Errorf("%w: lower bound %d outside [0, makespan %d]",
			ErrBadResult, res.LowerBound, res.Schedule.Makespan)
	}
	return nil
}

// heuristicFallback is the chain's last resort: the priority-rule portfolio
// plus double justification, certified by the cheap combinatorial bound.
func heuristicFallback(p *scheduler.Problem) (scheduler.Result, bool) {
	if len(p.Tasks) == 0 {
		return scheduler.Result{Schedule: scheduler.Schedule{Start: []int{}, Option: []int{}}, Method: "trivial", Proven: true}, true
	}
	s, ok := scheduler.HeuristicSchedule(p)
	if !ok {
		return scheduler.Result{}, false
	}
	if j := scheduler.Justify(p, s); j.Makespan < s.Makespan {
		s = j
	}
	if err := s.Validate(p); err != nil {
		return scheduler.Result{}, false
	}
	lb := scheduler.LowerBound(p)
	return scheduler.Result{
		Schedule:   s,
		LowerBound: lb,
		Proven:     s.Makespan == lb,
		Method:     "heuristic-fallback",
	}, true
}

// solveMILP is the chain's MILP primary: the time-indexed 0/1 encoding solved
// with the in-repo branch and bound, warm-started from the heuristic
// portfolio. A retry loosens the integrality tolerance and gap target, the
// standard response to numerics-induced failures. An Infeasible/Unbounded
// verdict on an instance the heuristics can schedule is classified as
// milp.ErrNumerics (infeasible-due-to-numerics), so the chain retries and
// degrades instead of reporting a false infeasibility.
func solveMILP(ctx context.Context, p *scheduler.Problem, cfg scheduler.Config, retry bool) (scheduler.Result, error) {
	opts := milp.Options{
		MaxNodes:     cfg.ExactNodeLimit,
		GapTolerance: cfg.GapTarget,
		Obs:          cfg.Obs,
	}
	if retry {
		opts.IntTol = 1e-5
		opts.GapTolerance = math.Max(1.5*cfg.GapTarget, 0.02)
	}
	warm, warmOK := scheduler.HeuristicSchedule(p)

	var sched scheduler.Schedule
	var sol milp.Solution
	var err error
	if warmOK {
		sched, sol, err = timeindexed.Solve(ctx, p, opts, warm)
	} else {
		sched, sol, err = timeindexed.Solve(ctx, p, opts)
	}
	if err != nil {
		return scheduler.Result{}, err
	}

	switch sol.Status {
	case milp.Optimal, milp.Feasible:
		lb := int(math.Ceil(sol.Bound - 1e-6))
		if comb := scheduler.LowerBound(p); comb > lb {
			lb = comb
		}
		if lb > sched.Makespan {
			lb = sched.Makespan
		}
		if lb < 0 {
			lb = 0
		}
		return scheduler.Result{
			Schedule:   sched,
			LowerBound: lb,
			Proven:     sol.Status == milp.Optimal,
			Method:     "milp",
			Cancelled:  ctx.Err() != nil && sol.Status != milp.Optimal,
		}, nil
	case milp.Infeasible, milp.Unbounded:
		if warmOK {
			return scheduler.Result{}, fmt.Errorf(
				"%w: milp reported %v for an instance the heuristics schedule in %d steps",
				milp.ErrNumerics, sol.Status, warm.Makespan)
		}
		return scheduler.Result{}, scheduler.ErrInfeasible
	default: // LimitReached without incumbent
		return scheduler.Result{}, fmt.Errorf("%w (status %v)", errMILPIncomplete, sol.Status)
	}
}
