// Package core implements HILP itself: it turns a workload and an SoC
// specification into the scheduling instance of the paper's §III (the
// T/B/P/E/U matrices realized as tasks, options, clusters, and cumulative
// resources), solves it to near-optimality with adaptive time-step
// resolution (§III-D), and reports makespan, speedup, WLP, and the schedule.
package core

import (
	"fmt"
	"math"

	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// ClusterKind tells what hardware a cluster models.
type ClusterKind int

// Cluster kinds.
const (
	CPUCluster ClusterKind = iota
	GPUCluster
	DSACluster
)

// String names the kind.
func (k ClusterKind) String() string {
	switch k {
	case CPUCluster:
		return "cpu"
	case GPUCluster:
		return "gpu"
	case DSACluster:
		return "dsa"
	}
	return fmt.Sprintf("ClusterKind(%d)", int(k))
}

// ClusterInfo describes one scheduler cluster of a built instance.
type ClusterInfo struct {
	Name      string
	Kind      ClusterKind
	Group     int     // device group (GPU DVFS aliases share one)
	FreqMHz   float64 // GPU operating point, 0 otherwise
	DSATarget string  // benchmark the DSA accelerates, "" otherwise
}

// Instance is a ready-to-solve scheduling instance plus the metadata needed
// to interpret and render its schedules.
type Instance struct {
	Problem  *scheduler.Problem
	Clusters []ClusterInfo
	StepSec  float64
	Workload rodinia.Workload
	Spec     soc.Spec

	// Resource indices into Problem.Resources; -1 when the constraint is
	// not active.
	PowerRes, BWRes, CPURes int
}

// Steps converts seconds to integer time steps at the instance resolution
// (ceiling, minimum one step for any positive time - the paper requires all
// phase times to be an integer number of steps).
func (in *Instance) Steps(sec float64) int { return StepsAt(sec, in.StepSec) }

// StepsAt converts seconds to steps at an explicit resolution.
func StepsAt(sec, stepSec float64) int {
	if sec <= 0 {
		return 0
	}
	s := int(math.Ceil(sec/stepSec - 1e-9))
	if s < 1 {
		s = 1
	}
	return s
}

// BuildOptions tweaks instance construction for ablation studies.
type BuildOptions struct {
	// DisableParallelCPU removes the option of running a compute phase
	// across all CPU cores (the paper's Eq. 8 machinery), leaving only
	// sequential single-core execution.
	DisableParallelCPU bool
}

// BuildInstance expands (workload, SoC) into a scheduling instance at the
// given time-step resolution. Each application contributes setup, compute,
// and teardown tasks in a dependency chain (Eq. 2). Setup and teardown run
// on any single CPU core; compute runs on a CPU core (sequential), across
// all CPU cores (parallel, consuming u_max cores - Eq. 8), on any GPU DVFS
// operating point, or on the application's DSA if the SoC has one.
func BuildInstance(w rodinia.Workload, spec soc.Spec, stepSec float64, horizon int) (*Instance, error) {
	return BuildInstanceOpts(w, spec, stepSec, horizon, BuildOptions{})
}

// BuildInstanceOpts is BuildInstance with construction tweaks.
func BuildInstanceOpts(w rodinia.Workload, spec soc.Spec, stepSec float64, horizon int, bopts BuildOptions) (*Instance, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if stepSec <= 0 {
		return nil, fmt.Errorf("core: step size %g, want > 0", stepSec)
	}
	if len(w.Apps) == 0 {
		return nil, fmt.Errorf("core: workload %q has no applications", w.Name)
	}
	inWorkload := map[string]bool{}
	for _, app := range w.Apps {
		inWorkload[app.Bench.Abbrev] = true
	}
	for _, d := range spec.DSAs {
		if !inWorkload[d.Target] {
			return nil, fmt.Errorf("core: DSA targets %q, which is not in workload %q", d.Target, w.Name)
		}
	}

	in := &Instance{StepSec: stepSec, Workload: w, Spec: spec, PowerRes: -1, BWRes: -1, CPURes: -1}

	// Clusters: one per CPU core, one per GPU DVFS point (shared group), one
	// per DSA.
	group := 0
	for c := 0; c < spec.CPUCores; c++ {
		in.Clusters = append(in.Clusters, ClusterInfo{Name: fmt.Sprintf("cpu%d", c), Kind: CPUCluster, Group: group})
		group++
	}
	gpuFirst := -1
	if spec.GPUSMs > 0 {
		gpuFirst = len(in.Clusters)
		for _, f := range spec.GPUFrequenciesMHz {
			in.Clusters = append(in.Clusters, ClusterInfo{Name: fmt.Sprintf("gpu@%gMHz", f), Kind: GPUCluster, Group: group, FreqMHz: f})
		}
		group++
	}
	dsaCluster := map[string]int{}
	for _, d := range spec.DSAs {
		dsaCluster[d.Target] = len(in.Clusters)
		in.Clusters = append(in.Clusters, ClusterInfo{Name: fmt.Sprintf("dsa-%s", d.Target), Kind: DSACluster, Group: group, DSATarget: d.Target})
		group++
	}

	// Resources.
	var resources []scheduler.Resource
	if spec.PowerBudgetWatts > 0 && !math.IsInf(spec.PowerBudgetWatts, 1) {
		in.PowerRes = len(resources)
		resources = append(resources, scheduler.Resource{Name: "power", Capacity: spec.PowerBudgetWatts})
	}
	if spec.MemBandwidthGBs > 0 && !math.IsInf(spec.MemBandwidthGBs, 1) {
		in.BWRes = len(resources)
		resources = append(resources, scheduler.Resource{Name: "bandwidth", Capacity: spec.MemBandwidthGBs})
	}
	in.CPURes = len(resources)
	resources = append(resources, scheduler.Resource{Name: "cpu-cores", Capacity: float64(spec.CPUCores)})

	demand := func(powerW, bwGBs, cores float64) []float64 {
		d := make([]float64, len(resources))
		if in.PowerRes >= 0 {
			d[in.PowerRes] = powerW + soc.MemoryPowerWatts(bwGBs)
		}
		if in.BWRes >= 0 {
			d[in.BWRes] = bwGBs
		}
		d[in.CPURes] = cores
		return d
	}

	var tasks []scheduler.Task
	for appIdx, app := range w.Apps {
		b := app.Bench
		// Setup: any single CPU core.
		setup := scheduler.Task{Name: b.Abbrev + ".setup", App: appIdx, Phase: 0}
		setupSteps := in.Steps(app.SetupSec())
		for c := 0; c < spec.CPUCores; c++ {
			setup.Options = append(setup.Options, scheduler.Option{
				Cluster: c, Duration: setupSteps,
				Demand: demand(soc.CPUCoreWatts, 0, 1),
				Label:  fmt.Sprintf("cpu%d", c),
			})
		}
		setupID := len(tasks)
		tasks = append(tasks, setup)

		// Compute: sequential CPU on any core, parallel CPU across all
		// cores, GPU at any operating point, or the dedicated DSA.
		compute := scheduler.Task{
			Name: b.Abbrev + ".compute", App: appIdx, Phase: 1,
			Deps: []scheduler.Dep{{Task: setupID}},
		}
		seqSteps := in.Steps(soc.CPUTimeSec(b, 1))
		seqBW := soc.CPUBandwidthGBs(b, 1)
		for c := 0; c < spec.CPUCores; c++ {
			compute.Options = append(compute.Options, scheduler.Option{
				Cluster: c, Duration: seqSteps,
				Demand: demand(soc.CPUCoreWatts, seqBW, 1),
				Label:  fmt.Sprintf("cpu%d", c),
			})
		}
		if spec.CPUCores > 1 && !bopts.DisableParallelCPU {
			parSteps := in.Steps(soc.CPUTimeSec(b, spec.CPUCores))
			parBW := soc.CPUBandwidthGBs(b, spec.CPUCores)
			compute.Options = append(compute.Options, scheduler.Option{
				Cluster: 0, Duration: parSteps,
				Demand: demand(soc.CPUCoreWatts*float64(spec.CPUCores), parBW, float64(spec.CPUCores)),
				Label:  fmt.Sprintf("cpu-x%d", spec.CPUCores),
			})
		}
		if gpuFirst >= 0 {
			for fi, f := range spec.GPUFrequenciesMHz {
				gpuSteps := in.Steps(soc.GPUTimeSec(b, spec.GPUSMs, f))
				bw := soc.GPUBandwidthGBs(b, spec.GPUSMs, f)
				compute.Options = append(compute.Options, scheduler.Option{
					Cluster: gpuFirst + fi, Duration: gpuSteps,
					Demand: demand(soc.GPUPowerWatts(spec.GPUSMs, f), bw, 0),
					Label:  fmt.Sprintf("gpu@%gMHz", f),
				})
			}
		}
		if d, ok := spec.DSAFor(b.Abbrev); ok {
			dsaSteps := in.Steps(soc.DSATimeSec(b, d.PEs, spec.DSAAdvantage))
			bw := soc.DSABandwidthGBs(b, d.PEs, spec.DSAAdvantage)
			compute.Options = append(compute.Options, scheduler.Option{
				Cluster: dsaCluster[b.Abbrev], Duration: dsaSteps,
				Demand: demand(soc.DSAPowerWatts(d.PEs, spec.DSAAdvantage), bw, 0),
				Label:  fmt.Sprintf("dsa-%s", b.Abbrev),
			})
		}
		computeID := len(tasks)
		tasks = append(tasks, compute)

		// Teardown: any single CPU core.
		teardown := scheduler.Task{
			Name: b.Abbrev + ".teardown", App: appIdx, Phase: 2,
			Deps: []scheduler.Dep{{Task: computeID}},
		}
		tdSteps := in.Steps(app.TeardownSec())
		for c := 0; c < spec.CPUCores; c++ {
			teardown.Options = append(teardown.Options, scheduler.Option{
				Cluster: c, Duration: tdSteps,
				Demand: demand(soc.CPUCoreWatts, 0, 1),
				Label:  fmt.Sprintf("cpu%d", c),
			})
		}
		tasks = append(tasks, teardown)
	}

	groups := make([]int, len(in.Clusters))
	for i, c := range in.Clusters {
		groups[i] = c.Group
	}
	in.Problem = &scheduler.Problem{
		Tasks:        tasks,
		NumClusters:  len(in.Clusters),
		ClusterGroup: groups,
		Resources:    resources,
		Horizon:      horizon,
	}
	if err := in.Problem.Validate(); err != nil {
		return nil, fmt.Errorf("core: built an invalid instance: %w", err)
	}
	return in, nil
}

// SequentialSteps returns the makespan, in steps, of the naive fully
// sequential single-CPU-core schedule at the instance's resolution. It is
// the discretized version of the paper's speedup baseline.
func (in *Instance) SequentialSteps() int {
	total := 0
	for _, app := range in.Workload.Apps {
		total += in.Steps(app.SetupSec())
		total += in.Steps(soc.CPUTimeSec(app.Bench, 1))
		total += in.Steps(app.TeardownSec())
	}
	return total
}
