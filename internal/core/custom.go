package core

import (
	"fmt"
	"math"

	"hilp/internal/scheduler"
)

// CustomModel describes an arbitrary workload and SoC directly, without
// going through the Rodinia/SoC-template machinery. It exists for the
// paper's extensibility case study (§VII: streaming dataflow with fork-join
// dependency graphs) and for the JSON interface of cmd/hilp. Dependencies
// may form any DAG (Eq. 9) and may carry initiation-interval lags.
type CustomModel struct {
	Name string
	// Clusters define the compute units; clusters sharing a Group name are
	// mutually exclusive DVFS-style aliases of one physical device.
	Clusters []CustomCluster
	// Tasks are the application phases.
	Tasks []CustomTask
	// PowerBudgetW caps total power; 0 or +Inf disables the constraint.
	PowerBudgetW float64
	// BandwidthGBs caps memory bandwidth; 0 or +Inf disables the constraint.
	BandwidthGBs float64
	// Extra adds further cumulative resources (the paper's §VII "other
	// extensions": e.g. one bandwidth constraint per cache level). Options
	// declare their consumption via CustomOption.ExtraDemand, keyed by
	// resource name; missing keys mean zero demand.
	Extra []CustomResource
}

// CustomResource is an additional cumulative resource constraint.
type CustomResource struct {
	Name     string
	Capacity float64
}

// CustomCluster is one compute unit (or one operating point of one).
type CustomCluster struct {
	Name  string
	Group string // defaults to Name: its own device
}

// CustomTask is one schedulable phase.
type CustomTask struct {
	Name    string
	App     int // application the phase belongs to (for WLP accounting)
	Phase   int
	Deps    []CustomDep
	Options []CustomOption
}

// CustomDep references a predecessor task by name.
type CustomDep struct {
	Task   string
	Kind   scheduler.DepKind
	LagSec float64
}

// CustomOption is one placement choice: the execution time and resource
// demands of the phase on a named cluster.
type CustomOption struct {
	Cluster      string
	Sec          float64
	PowerW       float64
	BandwidthGBs float64
	// ExtraDemand declares consumption of the model's Extra resources by
	// name; absent names mean zero.
	ExtraDemand map[string]float64
	Label       string
}

// Build compiles the model into a solvable instance at the given resolution.
// Invalid models fail with a *ValidationError wrapping ErrBadModel, each
// problem addressed by field path.
func (m CustomModel) Build(stepSec float64, horizon int) (*Instance, error) {
	if stepSec <= 0 || math.IsNaN(stepSec) || math.IsInf(stepSec, 0) {
		return nil, BadField("stepSec", CodeRange, "step size %g, want finite > 0", stepSec)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}

	in := &Instance{StepSec: stepSec, PowerRes: -1, BWRes: -1, CPURes: -1}

	clusterIdx := map[string]int{}
	groupIdx := map[string]int{}
	groups := make([]int, 0, len(m.Clusters))
	for _, c := range m.Clusters {
		if c.Name == "" {
			return nil, fmt.Errorf("core: model %q has an unnamed cluster", m.Name)
		}
		if _, dup := clusterIdx[c.Name]; dup {
			return nil, fmt.Errorf("core: duplicate cluster name %q", c.Name)
		}
		g := c.Group
		if g == "" {
			g = c.Name
		}
		if _, ok := groupIdx[g]; !ok {
			groupIdx[g] = len(groupIdx)
		}
		clusterIdx[c.Name] = len(in.Clusters)
		groups = append(groups, groupIdx[g])
		in.Clusters = append(in.Clusters, ClusterInfo{Name: c.Name, Kind: kindFromName(c.Name), Group: groupIdx[g]})
	}

	var resources []scheduler.Resource
	if m.PowerBudgetW > 0 && !math.IsInf(m.PowerBudgetW, 1) {
		in.PowerRes = len(resources)
		resources = append(resources, scheduler.Resource{Name: "power", Capacity: m.PowerBudgetW})
	}
	if m.BandwidthGBs > 0 && !math.IsInf(m.BandwidthGBs, 1) {
		in.BWRes = len(resources)
		resources = append(resources, scheduler.Resource{Name: "bandwidth", Capacity: m.BandwidthGBs})
	}
	extraIdx := map[string]int{}
	for _, r := range m.Extra {
		if r.Name == "" {
			return nil, fmt.Errorf("core: model %q has an unnamed extra resource", m.Name)
		}
		if r.Name == "power" || r.Name == "bandwidth" {
			return nil, fmt.Errorf("core: extra resource %q collides with a built-in resource", r.Name)
		}
		if _, dup := extraIdx[r.Name]; dup {
			return nil, fmt.Errorf("core: duplicate extra resource %q", r.Name)
		}
		extraIdx[r.Name] = len(resources)
		resources = append(resources, scheduler.Resource{Name: r.Name, Capacity: r.Capacity})
	}

	taskIdx := map[string]int{}
	for i, t := range m.Tasks {
		if t.Name == "" {
			return nil, fmt.Errorf("core: model %q task %d has no name", m.Name, i)
		}
		if _, dup := taskIdx[t.Name]; dup {
			return nil, fmt.Errorf("core: duplicate task name %q", t.Name)
		}
		taskIdx[t.Name] = i
	}

	tasks := make([]scheduler.Task, len(m.Tasks))
	for i, t := range m.Tasks {
		st := scheduler.Task{Name: t.Name, App: t.App, Phase: t.Phase}
		for _, d := range t.Deps {
			pred, ok := taskIdx[d.Task]
			if !ok {
				return nil, fmt.Errorf("core: task %q depends on unknown task %q", t.Name, d.Task)
			}
			st.Deps = append(st.Deps, scheduler.Dep{Task: pred, Kind: d.Kind, Lag: StepsAt(d.LagSec, stepSec)})
		}
		if len(t.Options) == 0 {
			return nil, fmt.Errorf("core: task %q has no options", t.Name)
		}
		for _, o := range t.Options {
			ci, ok := clusterIdx[o.Cluster]
			if !ok {
				return nil, fmt.Errorf("core: task %q references unknown cluster %q", t.Name, o.Cluster)
			}
			d := make([]float64, len(resources))
			if in.PowerRes >= 0 {
				d[in.PowerRes] = o.PowerW
			}
			if in.BWRes >= 0 {
				d[in.BWRes] = o.BandwidthGBs
			}
			for name, v := range o.ExtraDemand {
				ri, ok := extraIdx[name]
				if !ok {
					return nil, fmt.Errorf("core: task %q demands unknown resource %q", t.Name, name)
				}
				d[ri] = v
			}
			label := o.Label
			if label == "" {
				label = o.Cluster
			}
			st.Options = append(st.Options, scheduler.Option{
				Cluster:  ci,
				Duration: StepsAt(o.Sec, stepSec),
				Demand:   d,
				Label:    label,
			})
		}
		tasks[i] = st
	}

	in.Problem = &scheduler.Problem{
		Tasks:        tasks,
		NumClusters:  len(in.Clusters),
		ClusterGroup: groups,
		Resources:    resources,
		Horizon:      horizon,
	}
	if err := in.Problem.Validate(); err != nil {
		return nil, fmt.Errorf("core: model %q: %w", m.Name, err)
	}
	return in, nil
}

// kindFromName guesses a display kind from conventional cluster names.
func kindFromName(name string) ClusterKind {
	switch {
	case len(name) >= 3 && name[:3] == "gpu":
		return GPUCluster
	case len(name) >= 3 && name[:3] == "dsa":
		return DSACluster
	default:
		return CPUCluster
	}
}
