package core

import (
	"context"
	"testing"

	"hilp/internal/obs"
	"hilp/internal/scheduler"
)

// obsClock returns a deterministic 1µs-per-reading monotonic clock.
func obsClock() func() int64 {
	var t int64
	return func() int64 {
		t += 1000
		return t
	}
}

// TestSolveEmitsSpanTree is the end-to-end tracing check: one observed Solve
// produces a well-nested span tree covering every pipeline stage, and the
// metrics registry fills with solver counters.
func TestSolveEmitsSpanTree(t *testing.T) {
	w := smallWorkload(t)
	profile := Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 10, MaxRefinements: 2}

	run := func() ([]obs.SpanRecord, *obs.Registry) {
		ctx := &obs.Context{Tracer: obs.NewTracerWithClock(obsClock()), Metrics: obs.NewRegistry()}
		cfg := scheduler.Config{Seed: 1, Effort: 0.2, Restarts: 1, Obs: ctx}
		if _, err := Solve(context.Background(), w, fastSpec(2, 16), profile, cfg); err != nil {
			t.Fatal(err)
		}
		return ctx.Tracer.Snapshot(), ctx.Metrics
	}
	recs, reg := run()

	if err := obs.WellNested(recs); err != nil {
		t.Errorf("span tree not well nested: %v", err)
	}
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Name]++
	}
	for _, name := range []string{
		"evaluate", "refine-iteration", "build-instance", "solve",
		"bounds", "heuristics", "anneal", "anneal-restart-0",
	} {
		if counts[name] == 0 {
			t.Errorf("no %q span recorded; got %v", name, counts)
		}
	}
	if counts["refine-iteration"] != counts["solve"] || counts["solve"] != counts["build-instance"] {
		t.Errorf("per-iteration spans disagree: %v", counts)
	}

	for _, name := range []string{obs.MSolves, obs.MEvaluations, obs.MSGSSchedules} {
		if reg.Counter(name).Value() == 0 {
			t.Errorf("counter %s stayed zero", name)
		}
	}
	if reg.Gauge(obs.MMakespanSteps).Value() <= 0 {
		t.Errorf("gauge %s = %g, want > 0", obs.MMakespanSteps, reg.Gauge(obs.MMakespanSteps).Value())
	}

	// Same seed + same fake clock = identical trace, so traces are usable as
	// regression artifacts.
	recs2, _ := run()
	if len(recs2) != len(recs) {
		t.Fatalf("second run recorded %d spans, first %d", len(recs2), len(recs))
	}
	for i := range recs {
		a, b := recs[i], recs2[i]
		if a.Name != b.Name || a.TID != b.TID || a.StartNs != b.StartNs || a.DurNs != b.DurNs {
			t.Errorf("span %d differs across identical runs: %+v vs %+v", i, a, b)
		}
	}
}

// TestSolveUnobservedMatchesObserved guards against instrumentation changing
// results: the solve outcome must be identical with and without sinks.
func TestSolveUnobservedMatchesObserved(t *testing.T) {
	w := smallWorkload(t)
	profile := Profile{InitialStepSec: 10, Horizon: 200, RefineWhileBelow: 10, MaxRefinements: 2}

	plain, err := Solve(context.Background(), w, fastSpec(2, 16), profile, scheduler.Config{Seed: 1, Effort: 0.2, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &obs.Context{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry()}
	observed, err := Solve(context.Background(), w, fastSpec(2, 16), profile, scheduler.Config{Seed: 1, Effort: 0.2, Restarts: 1, Obs: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if plain.MakespanSec != observed.MakespanSec || plain.Speedup != observed.Speedup || plain.Gap != observed.Gap {
		t.Errorf("observability changed the result: %+v vs %+v", plain, observed)
	}
}
