package wire

import (
	"testing"

	"hilp/internal/lint"
)

// TestWireSchemaCompat runs the wire-schema compatibility gate in-process:
// the current package's exported structs must be backward compatible with
// the committed schema.snapshot.json (no removed, renamed, or re-typed
// fields, no changed JSON tags, no version rollback), and the snapshot must
// be regenerated (`go run ./cmd/hilp-lint -schema-snapshot`) whenever the
// schema grows. This is the same check `hilp-lint ./...` applies in CI; it
// lives here too so a plain `go test ./internal/wire` catches a breaking
// edit without the lint step.
func TestWireSchemaCompat(t *testing.T) {
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	diags, err := lint.CheckSchemaSnapshot(l)
	if err != nil {
		t.Fatalf("running schema gate: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
