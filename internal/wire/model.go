package wire

import (
	"encoding/json"
	"fmt"

	"hilp/internal/core"
)

// Model is the wire form of a custom workload-and-SoC model (§VII). Its
// JSON field names are the capitalized Go names of core.CustomModel — the
// format examples/models/fig2.json and existing cmd/hilp users already rely
// on — so the model schema is pinned here by the alias rather than
// re-declared with different tags.
type Model = core.CustomModel

// DecodeModel parses a custom model from JSON and validates that it can be
// built (cluster references resolve, every task has options, the dependency
// graph is well-formed). The validation build uses a nominal resolution; the
// caller chooses its own when solving.
func DecodeModel(data []byte) (Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return Model{}, fmt.Errorf("wire: decoding model: %w", err)
	}
	if _, err := m.Build(1, 1<<20); err != nil {
		return Model{}, fmt.Errorf("wire: invalid model: %w", err)
	}
	return m, nil
}

// ModelSpeedup is the custom-model analogue of the workload speedup: the
// fully serialized single-best-option execution time divided by the solved
// makespan. Each task contributes its fastest option's seconds (running
// phases back-to-back), so a speedup of N means the schedule exploited N-way
// parallelism and placement jointly.
func ModelSpeedup(m Model, makespanSec float64) float64 {
	if makespanSec <= 0 {
		return 0
	}
	total := 0.0
	for _, t := range m.Tasks {
		best := -1.0
		for _, o := range t.Options {
			if best < 0 || o.Sec < best {
				best = o.Sec
			}
		}
		if best > 0 {
			total += best
		}
	}
	return total / makespanSec
}
