// Package wire defines the stable JSON schema shared by hilp-serve, its
// clients, and the cmd/hilp model loaders. Internal structs (rodinia.Workload,
// soc.Spec, scheduler.Config, core.Result) are free to evolve; the wire types
// pin explicit field names and a schema version so serialized payloads stay
// readable across releases. Conversions to and from the internal types live
// here so no other package marshals internals directly.
package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"hilp/internal/core"
	"hilp/internal/rodinia"
	"hilp/internal/scheduler"
	"hilp/internal/soc"
)

// SchemaVersion identifies this wire format. Responses always carry it;
// requests may omit it (0 is treated as the current version).
//
// Version history:
//
//	1 — initial schema: evaluate/sweep requests, Result, Point, Job.
//	2 — additive: batch requests (BatchRequest/BatchResponse/BatchStats),
//	    sweep-engine options (cache, warmStart, pruning) on sweep and batch
//	    requests, and cacheHit/warmStarted/pruned/prunedBy/speedupBound on
//	    Point. Every v1 payload decodes unchanged.
//	3 — additive: crash-recovery journal record types (JournalRecord and
//	    friends, see journal.go), resume metadata (resumed on Point,
//	    resumed/resumedPoints on Job, resumed on BatchStats). Every v1/v2
//	    payload decodes unchanged.
const SchemaVersion = 3

// CheckVersion rejects payloads from a newer schema than this binary speaks.
func CheckVersion(v int) error {
	if v < 0 || v > SchemaVersion {
		return fmt.Errorf("wire: schema version %d not supported (this binary speaks <= %d)", v, SchemaVersion)
	}
	return nil
}

// Workload names a built-in workload or lists applications explicitly.
type Workload struct {
	// Name selects a built-in workload ("rodinia", "default", "optimized")
	// when Apps is empty; otherwise it only labels the workload.
	Name string `json:"name,omitempty"`
	// Apps lists applications by Table II benchmark abbreviation.
	Apps []App `json:"apps,omitempty"`
}

// App is one application of a workload.
type App struct {
	// Bench is the benchmark abbreviation from the paper's Table II
	// (e.g. "LUD", "HS", "SRAD").
	Bench string `json:"bench"`
	// SetupTeardownDiv divides the measured setup/teardown times
	// (1 = Rodinia, 5 = Default, 20 = Optimized). 0 selects 1.
	SetupTeardownDiv float64 `json:"setupTeardownDiv,omitempty"`
}

// ToWorkload resolves the wire workload against the built-in benchmark table.
func (w Workload) ToWorkload() (rodinia.Workload, error) {
	if len(w.Apps) == 0 {
		switch strings.ToLower(w.Name) {
		case "", "default":
			return rodinia.DefaultWorkload(), nil
		case "rodinia":
			return rodinia.RodiniaWorkload(), nil
		case "optimized":
			return rodinia.OptimizedWorkload(), nil
		default:
			return rodinia.Workload{}, core.BadField("workload.name", core.CodeUnknown,
				"unknown built-in workload %q (want rodinia, default, or optimized)", w.Name)
		}
	}
	byAbbrev := map[string]rodinia.Benchmark{}
	for _, b := range rodinia.Benchmarks() {
		byAbbrev[strings.ToUpper(b.Abbrev)] = b
	}
	out := rodinia.Workload{Name: w.Name}
	if out.Name == "" {
		out.Name = "custom"
	}
	for i, a := range w.Apps {
		b, ok := byAbbrev[strings.ToUpper(a.Bench)]
		if !ok {
			return rodinia.Workload{}, core.BadField(
				fmt.Sprintf("workload.apps[%d].bench", i), core.CodeUnknown,
				"unknown benchmark %q", a.Bench)
		}
		div := a.SetupTeardownDiv
		if div == 0 {
			div = 1
		}
		if math.IsNaN(div) || math.IsInf(div, 0) || div < 0 {
			return rodinia.Workload{}, core.BadField(
				fmt.Sprintf("workload.apps[%d].setupTeardownDiv", i), core.CodeRange,
				"setupTeardownDiv %g, want finite > 0", div)
		}
		out.Apps = append(out.Apps, rodinia.Application{Bench: b, SetupTeardownDiv: div})
	}
	return out, nil
}

// FromWorkload converts an internal workload to the wire form, listing every
// application explicitly.
func FromWorkload(w rodinia.Workload) Workload {
	out := Workload{Name: w.Name}
	for _, a := range w.Apps {
		out.Apps = append(out.Apps, App{Bench: a.Bench.Abbrev, SetupTeardownDiv: a.SetupTeardownDiv})
	}
	return out
}

// SoC is the wire form of a paper-template SoC configuration. A negative
// budget means explicitly unconstrained (internal +Inf); 0 selects the
// paper default.
type SoC struct {
	CPUCores          int       `json:"cpuCores"`
	GPUSMs            int       `json:"gpuSMs,omitempty"`
	DSAs              []DSA     `json:"dsas,omitempty"`
	DSAAdvantage      float64   `json:"dsaAdvantage,omitempty"`
	GPUFrequenciesMHz []float64 `json:"gpuFrequenciesMHz,omitempty"`
	MemBandwidthGBs   float64   `json:"memBandwidthGBs,omitempty"`
	PowerBudgetWatts  float64   `json:"powerBudgetWatts,omitempty"`
}

// DSA is one domain-specific accelerator.
type DSA struct {
	PEs    int    `json:"pes"`
	Target string `json:"target"`
}

// ToSpec converts to the internal SoC spec (negative budgets become +Inf).
func (s SoC) ToSpec() soc.Spec {
	out := soc.Spec{
		CPUCores:          s.CPUCores,
		GPUSMs:            s.GPUSMs,
		DSAAdvantage:      s.DSAAdvantage,
		GPUFrequenciesMHz: s.GPUFrequenciesMHz,
		MemBandwidthGBs:   s.MemBandwidthGBs,
		PowerBudgetWatts:  s.PowerBudgetWatts,
	}
	if s.MemBandwidthGBs < 0 {
		out.MemBandwidthGBs = math.Inf(1)
	}
	if s.PowerBudgetWatts < 0 {
		out.PowerBudgetWatts = math.Inf(1)
	}
	for _, d := range s.DSAs {
		out.DSAs = append(out.DSAs, soc.DSA{PEs: d.PEs, Target: d.Target})
	}
	return out
}

// FromSpec converts an internal spec to the wire form (+Inf budgets become
// -1, which is not valid JSON as infinity).
func FromSpec(s soc.Spec) SoC {
	out := SoC{
		CPUCores:          s.CPUCores,
		GPUSMs:            s.GPUSMs,
		DSAAdvantage:      s.DSAAdvantage,
		GPUFrequenciesMHz: s.GPUFrequenciesMHz,
		MemBandwidthGBs:   s.MemBandwidthGBs,
		PowerBudgetWatts:  s.PowerBudgetWatts,
	}
	if math.IsInf(s.MemBandwidthGBs, 1) {
		out.MemBandwidthGBs = -1
	}
	if math.IsInf(s.PowerBudgetWatts, 1) {
		out.PowerBudgetWatts = -1
	}
	for _, d := range s.DSAs {
		out.DSAs = append(out.DSAs, DSA{PEs: d.PEs, Target: d.Target})
	}
	return out
}

// SolverConfig is the wire form of the scheduling-search configuration.
// Observability sinks are intentionally not serializable.
type SolverConfig struct {
	Seed           int64   `json:"seed,omitempty"`
	Effort         float64 `json:"effort,omitempty"`
	GapTarget      float64 `json:"gapTarget,omitempty"`
	ExactTaskLimit int     `json:"exactTaskLimit,omitempty"`
	ExactNodeLimit int     `json:"exactNodeLimit,omitempty"`
	Restarts       int     `json:"restarts,omitempty"`
	Improver       string  `json:"improver,omitempty"`
}

// ToConfig converts to the internal solver configuration.
func (c SolverConfig) ToConfig() scheduler.Config {
	return scheduler.Config{
		Seed:           c.Seed,
		Effort:         c.Effort,
		GapTarget:      c.GapTarget,
		ExactTaskLimit: c.ExactTaskLimit,
		ExactNodeLimit: c.ExactNodeLimit,
		Restarts:       c.Restarts,
		Improver:       c.Improver,
	}
}

// FromConfig converts an internal solver configuration to the wire form.
func FromConfig(c scheduler.Config) SolverConfig {
	return SolverConfig{
		Seed:           c.Seed,
		Effort:         c.Effort,
		GapTarget:      c.GapTarget,
		ExactTaskLimit: c.ExactTaskLimit,
		ExactNodeLimit: c.ExactNodeLimit,
		Restarts:       c.Restarts,
		Improver:       c.Improver,
	}
}

// Profile is the wire form of the adaptive-resolution profile (§III-D).
type Profile struct {
	InitialStepSec   float64 `json:"initialStepSec"`
	Horizon          int     `json:"horizon"`
	RefineWhileBelow int     `json:"refineWhileBelow"`
	MaxRefinements   int     `json:"maxRefinements"`
}

// ToProfile converts to the internal profile.
func (p Profile) ToProfile() core.Profile {
	return core.Profile{
		InitialStepSec:   p.InitialStepSec,
		Horizon:          p.Horizon,
		RefineWhileBelow: p.RefineWhileBelow,
		MaxRefinements:   p.MaxRefinements,
	}
}

// FromProfile converts an internal profile to the wire form.
func FromProfile(p core.Profile) Profile {
	return Profile{
		InitialStepSec:   p.InitialStepSec,
		Horizon:          p.Horizon,
		RefineWhileBelow: p.RefineWhileBelow,
		MaxRefinements:   p.MaxRefinements,
	}
}

// Result is the wire form of one evaluation outcome.
type Result struct {
	SchemaVersion int `json:"schemaVersion"`
	// SpecLabel is the paper's (c_i,g_j,d_k^l) naming of the evaluated SoC,
	// empty for custom-model solves.
	SpecLabel   string  `json:"specLabel,omitempty"`
	StepSec     float64 `json:"stepSec,omitempty"`
	MakespanSec float64 `json:"makespanSec"`
	Speedup     float64 `json:"speedup"`
	WLP         float64 `json:"wlp"`
	Gap         float64 `json:"gap"`
	Refinements int     `json:"refinements,omitempty"`
	// Proven is true when the schedule is provably optimal.
	Proven bool   `json:"proven,omitempty"`
	Method string `json:"method,omitempty"`
	// Cancelled is true when the solve was cut short by a deadline or
	// cancellation: the metrics describe the best incumbent, and Gap is the
	// (valid, possibly loose) certificate at that point.
	Cancelled bool `json:"cancelled,omitempty"`
	// Degraded is true when the primary solver failed and the result came
	// from the heuristic fallback chain; FallbackReason classifies why.
	Degraded       bool   `json:"degraded,omitempty"`
	FallbackReason string `json:"fallbackReason,omitempty"`
}

// FromResult converts an internal evaluation to the wire form.
func FromResult(r *core.Result) Result {
	out := Result{
		SchemaVersion:  SchemaVersion,
		StepSec:        r.StepSec,
		MakespanSec:    r.MakespanSec,
		Speedup:        r.Speedup,
		WLP:            r.WLP,
		Gap:            r.Gap,
		Refinements:    r.Refinements,
		Cancelled:      r.Cancelled,
		Degraded:       r.Degraded,
		FallbackReason: r.FallbackReason,
	}
	out.Proven = r.Sched.Proven
	out.Method = r.Sched.Method
	return out
}

// Point is the wire form of one sweep point.
type Point struct {
	Spec        SoC     `json:"spec"`
	Label       string  `json:"label"`
	AreaMM2     float64 `json:"areaMM2"`
	Speedup     float64 `json:"speedup"`
	WLP         float64 `json:"wlp"`
	Gap         float64 `json:"gap"`
	MakespanSec float64 `json:"makespanSec"`
	Mix         string  `json:"mix"`
	Cancelled   bool    `json:"cancelled,omitempty"`
	// Degraded marks a point whose solve fell back to the heuristic
	// scheduler; FallbackReason classifies why.
	Degraded       bool   `json:"degraded,omitempty"`
	FallbackReason string `json:"fallbackReason,omitempty"`
	Error          string `json:"error,omitempty"`
	// RequestID is the point's correlation ID, linking it to its log lines
	// and latency exemplar; empty when observability is disabled.
	RequestID string `json:"requestId,omitempty"`
	// CacheHit marks a point whose result was replayed from an earlier
	// canonically-equivalent point of the same batch (schema v2).
	CacheHit bool `json:"cacheHit,omitempty"`
	// WarmStarted marks a point whose search was seeded with a solved
	// neighbor's schedule (schema v2).
	WarmStarted bool `json:"warmStarted,omitempty"`
	// Pruned marks a point skipped by dominance pruning: it was never
	// solved; SpeedupBound certifies the best speedup it could possibly
	// achieve and PrunedBy names the solved dominating point (schema v2).
	Pruned       bool    `json:"pruned,omitempty"`
	PrunedBy     string  `json:"prunedBy,omitempty"`
	SpeedupBound float64 `json:"speedupBound,omitempty"`
	// Resumed marks a point replayed from a crash-recovery checkpoint
	// journal instead of re-solved: the metrics are the prior run's, verbatim
	// (schema v3). Resume metadata, not a metric — identical inputs yield
	// identical metrics whether or not a point was resumed.
	Resumed bool `json:"resumed,omitempty"`
}

// Hash is the canonical-content hash shared by the hilp-serve LRU cache and
// the sweep engine's memoizer: hex SHA-256 over a canonical (re-marshaled,
// field-order-stable) encoding, so two JSON bodies that decode to the same
// value share a key regardless of whitespace or key order.
func Hash(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// CanonicalKey marshals v compactly (struct field order is stable in Go's
// encoding/json) and returns its Hash.
func CanonicalKey(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	return Hash(b), nil
}

// Marshal renders any wire value as indented JSON with a trailing newline.
func Marshal(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
