package wire

import (
	"hilp/internal/core"
	"hilp/internal/soc"
)

// EvaluateRequest is the body of POST /v1/evaluate. Exactly one of the two
// input modes applies: template mode (Workload + SoC, like the paper's
// experiments) when Model is nil, or custom-model mode (Model + StepSec +
// Horizon, §VII) when it is set.
type EvaluateRequest struct {
	SchemaVersion int `json:"schemaVersion,omitempty"`

	// Template mode.
	Workload *Workload `json:"workload,omitempty"`
	SoC      *SoC      `json:"soc,omitempty"`
	// Baseline selects the evaluation model: "hilp" (default), "gables", or
	// "multiamdahl". Ignored in model mode.
	Baseline string `json:"baseline,omitempty"`

	// Custom-model mode.
	Model *Model `json:"model,omitempty"`
	// StepSec is the model-mode time-step resolution in seconds (default 1).
	StepSec float64 `json:"stepSec,omitempty"`
	// Horizon is the model-mode scheduling horizon in steps (default 200).
	Horizon int `json:"horizon,omitempty"`

	Profile *Profile      `json:"profile,omitempty"`
	Solver  *SolverConfig `json:"solver,omitempty"`
	// TimeoutSec bounds the solve; 0 selects the server default. On expiry
	// the response still succeeds, carrying the best incumbent with
	// result.cancelled set (anytime semantics).
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
}

// EvaluateResponse is the body of a successful POST /v1/evaluate.
type EvaluateResponse struct {
	SchemaVersion int    `json:"schemaVersion"`
	Result        Result `json:"result"`
}

// Space is the wire form of a design-space enumeration (§VI).
type Space struct {
	CPUCores []int `json:"cpuCores,omitempty"`
	GPUSMs   []int `json:"gpuSMs,omitempty"`
	// MaxDSAs bounds DSA count: 0 selects one per application, negative
	// disables DSAs.
	MaxDSAs   int     `json:"maxDSAs,omitempty"`
	DSAPEs    []int   `json:"dsaPEs,omitempty"`
	Advantage float64 `json:"advantage,omitempty"`
	PowerW    float64 `json:"powerW,omitempty"`
	MemBWGBs  float64 `json:"memBWGBs,omitempty"`
}

// ToSpaceConfig converts to the internal enumeration config.
func (s Space) ToSpaceConfig() soc.SpaceConfig {
	return soc.SpaceConfig{
		CPUCores:  s.CPUCores,
		GPUSMs:    s.GPUSMs,
		MaxDSAs:   s.MaxDSAs,
		DSAPEs:    s.DSAPEs,
		Advantage: s.Advantage,
		PowerW:    s.PowerW,
		MemBWGBs:  s.MemBWGBs,
	}
}

// SweepRequest is the body of POST /v1/sweep. Specs lists explicit SoCs;
// when empty, Space (or its zero value: the paper's 372-point §VI space) is
// enumerated for the workload.
type SweepRequest struct {
	SchemaVersion int           `json:"schemaVersion,omitempty"`
	Workload      *Workload     `json:"workload,omitempty"`
	Specs         []SoC         `json:"specs,omitempty"`
	Space         *Space        `json:"space,omitempty"`
	Baseline      string        `json:"baseline,omitempty"`
	Profile       *Profile      `json:"profile,omitempty"`
	Solver        *SolverConfig `json:"solver,omitempty"`
	// TimeoutSec bounds the whole sweep; points not dispatched before expiry
	// come back with an error string, completed ones are preserved.
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
	// Cache, WarmStart, and Pruning opt into the sweep engine's cross-point
	// reuse (schema v2, HILP baseline only): canonical-model memoization,
	// neighbor warm starts, and certified dominance pruning. All default to
	// off for sweeps, preserving v1 behavior.
	Cache     bool `json:"cache,omitempty"`
	WarmStart bool `json:"warmStart,omitempty"`
	Pruning   bool `json:"pruning,omitempty"`
}

// SweepResponse is the terminal result of a sweep job.
type SweepResponse struct {
	SchemaVersion int     `json:"schemaVersion"`
	Points        []Point `json:"points"`
	// Pareto indexes the (area, speedup) Pareto-optimal subset of Points,
	// ascending by area.
	Pareto []int `json:"pareto,omitempty"`
}

// BatchRequest is the body of POST /v1/batch (schema v2): a synchronous
// batched solve over explicit Specs (or an enumerated Space when Specs is
// empty) that amortizes model construction across points via the sweep
// engine. Unlike /v1/sweep it answers in one round trip and defaults the
// engine's cache and warm starts to on; Pruning stays opt-in because pruned
// points come back with a certified bound instead of solved metrics.
type BatchRequest struct {
	SchemaVersion int           `json:"schemaVersion,omitempty"`
	Workload      *Workload     `json:"workload,omitempty"`
	Specs         []SoC         `json:"specs,omitempty"`
	Space         *Space        `json:"space,omitempty"`
	Profile       *Profile      `json:"profile,omitempty"`
	Solver        *SolverConfig `json:"solver,omitempty"`
	// TimeoutSec bounds the whole batch; 0 selects the server default.
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
	// Cache and WarmStart default to on; send false explicitly to disable.
	Cache     *bool `json:"cache,omitempty"`
	WarmStart *bool `json:"warmStart,omitempty"`
	// Pruning defaults to off.
	Pruning bool `json:"pruning,omitempty"`
}

// BatchStats summarizes what the sweep engine reused across a batch.
type BatchStats struct {
	// Points is the number of requested points; Solved is how many ran a
	// full solve (the rest were cache hits, pruned, or never dispatched).
	Points int `json:"points"`
	Solved int `json:"solved"`
	// CacheHits counts points replayed from a canonically-equivalent
	// earlier point; WarmStarted counts solves seeded with a neighbor's
	// schedule; Pruned counts points skipped with a certified bound;
	// Resumed counts points replayed from a checkpoint journal (schema v3).
	CacheHits   int `json:"cacheHits,omitempty"`
	WarmStarted int `json:"warmStarted,omitempty"`
	Pruned      int `json:"pruned,omitempty"`
	Resumed     int `json:"resumed,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch.
type BatchResponse struct {
	SchemaVersion int        `json:"schemaVersion"`
	Points        []Point    `json:"points"`
	Stats         BatchStats `json:"stats"`
	// Pareto indexes the (area, speedup) Pareto-optimal subset of Points,
	// ascending by area.
	Pareto []int `json:"pareto,omitempty"`
}

// Job describes an asynchronous sweep job.
type Job struct {
	SchemaVersion int    `json:"schemaVersion"`
	ID            string `json:"id"`
	// Status is "running", "done", "cancelled", or "failed".
	Status string `json:"status"`
	// Done and Total count completed and requested points.
	Done  int `json:"done"`
	Total int `json:"total"`
	// URL polls the job.
	URL string `json:"url"`
	// EventsURL streams the job's live telemetry as Server-Sent Events.
	EventsURL string `json:"eventsUrl,omitempty"`
	// Retries counts job-level retry attempts after transient failures.
	Retries int `json:"retries,omitempty"`
	// Error is set when Status is "failed": the job-level failure after the
	// retry budget was exhausted.
	Error string `json:"error,omitempty"`
	// RequestID is the correlation ID of the request that started the job;
	// per-point IDs derive from it ("<requestId>/p<i>").
	RequestID string `json:"requestId,omitempty"`
	// Resumed is true when the job was recovered from the crash-recovery
	// journal after a restart; ResumedPoints counts the points replayed from
	// the journal instead of re-solved (schema v3).
	Resumed       bool `json:"resumed,omitempty"`
	ResumedPoints int  `json:"resumedPoints,omitempty"`
	// Result is set once Status is terminal (for "failed" jobs it may carry
	// the partial points of the last attempt, or be absent).
	Result *SweepResponse `json:"result,omitempty"`
}

// FieldError addresses one invalid request field by JSON-style path with a
// stable machine-readable code (see internal/core validation).
type FieldError = core.FieldError

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	SchemaVersion int `json:"schemaVersion"`
	// Error is the human-readable failure summary.
	Error string `json:"error"`
	// Code classifies the failure for programmatic handling: "bad_model"
	// (422, with Fields), "infeasible" (422), "malformed_json" (400),
	// "bad_request" (400), "version" (400), "too_large" (413), "busy" (429),
	// "internal_panic" (500), "not_found" (404).
	Code string `json:"code,omitempty"`
	// Fields lists the individual invalid fields when Code is "bad_model".
	Fields []FieldError `json:"fields,omitempty"`
}
