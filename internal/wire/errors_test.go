package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestErrorResponseRoundTrip(t *testing.T) {
	in := ErrorResponse{
		SchemaVersion: SchemaVersion,
		Error:         "model validation failed",
		Code:          "bad_model",
		Fields: []FieldError{
			{Path: "tasks[0].options[0].sec", Code: "negative", Msg: "is negative"},
			{Path: "clusters[1].name", Code: "duplicate", Msg: "duplicates clusters[0]"},
		},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"code":"bad_model"`, `"fields":`, `"path":"tasks[0].options[0].sec"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("encoded error lacks %s: %s", key, data)
		}
	}
	var out ErrorResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Code != in.Code || len(out.Fields) != 2 || out.Fields[0].Path != in.Fields[0].Path {
		t.Errorf("round trip %+v", out)
	}
}

func TestDegradedFieldsRoundTrip(t *testing.T) {
	r := Result{Degraded: true, FallbackReason: "numerics", Speedup: 2}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"degraded":true`) ||
		!strings.Contains(string(data), `"fallbackReason":"numerics"`) {
		t.Errorf("result encoding lacks degradation fields: %s", data)
	}
	// omitempty: clean results carry neither key.
	clean, err := json.Marshal(Result{Speedup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(clean), "degraded") || strings.Contains(string(clean), "fallbackReason") {
		t.Errorf("clean result leaks degradation fields: %s", clean)
	}

	p := Point{Degraded: true, FallbackReason: "panic", Error: "boom"}
	data, err = json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Point
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Degraded || back.FallbackReason != "panic" || back.Error != "boom" {
		t.Errorf("point round trip %+v", back)
	}
}
