package wire

// JournalVersion identifies the crash-recovery journal record format carried
// inside internal/journal segment frames. It versions independently of
// SchemaVersion: the journal is a private durability format, not a client
// API, but its records reuse the wire types (SweepRequest, Point) so the
// payloads stay readable across releases under the same compatibility rules.
const JournalVersion = 1

// Journal record kinds.
const (
	// JournalKindJobStart opens a job's journal history: one per submitted
	// sweep/batch job (or one per hilp-dse checkpointed run), carrying
	// everything needed to re-enter the job after a crash.
	JournalKindJobStart = "jobStart"
	// JournalKindPoint records one completed sweep point (exactly-once per
	// (job, index) after replay dedupe; the solve itself is at-least-once).
	JournalKindPoint = "point"
	// JournalKindJobEnd closes a job's history with its terminal status. A
	// job with no end record at replay time was interrupted and is resumed.
	JournalKindJobEnd = "jobEnd"
)

// JournalRecord is one entry of the crash-recovery write-ahead journal.
// Exactly one of Start/Point/End is set, matching Kind.
type JournalRecord struct {
	// Version is the journal record format (JournalVersion).
	Version int `json:"version,omitempty"`
	// Kind is jobStart, point, or jobEnd.
	Kind string `json:"kind"`
	// JobID ties the record to its job; replay groups by it.
	JobID string `json:"jobId"`
	// Seq is the record's monotonically increasing journal sequence number,
	// assigned at append. Replay drops records whose Seq does not advance,
	// which makes a segment listed twice in the manifest harmless.
	Seq uint64 `json:"seq"`
	// UnixNano timestamps the append (diagnostics only; replay ignores it).
	UnixNano int64 `json:"unixNano,omitempty"`

	Start *JournalJobStart `json:"start,omitempty"`
	Point *JournalPoint    `json:"point,omitempty"`
	End   *JournalJobEnd   `json:"end,omitempty"`
}

// JournalJobStart is the payload of a jobStart record: the full original
// request plus the identity needed to resume it safely.
type JournalJobStart struct {
	// RequestID is the correlation ID of the request that started the job.
	RequestID string `json:"requestId,omitempty"`
	// IdempotencyKey is the client's X-Idempotency-Key, restored at recovery
	// so retried submissions keep deduplicating across restarts.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
	// Total is the number of requested points.
	Total int `json:"total"`
	// Request is the original sweep request, replayed verbatim on resume so
	// the recovered job re-enters with identical inputs.
	Request *SweepRequest `json:"request,omitempty"`
	// ModelKey is the canonical hash of the solve inputs (workload, specs,
	// profile, solver). Resume refuses a checkpoint whose ModelKey does not
	// match the current inputs — recorded points would be meaningless.
	ModelKey string `json:"modelKey,omitempty"`
}

// JournalPoint is the payload of a point record: one completed point, in its
// wire form, addressed by input index.
type JournalPoint struct {
	Index int   `json:"index"`
	Point Point `json:"point"`
}

// JournalJobEnd is the payload of a jobEnd record.
type JournalJobEnd struct {
	// Status is the job's terminal status: done, cancelled, or failed.
	Status string `json:"status"`
	// Error carries the failure message when Status is failed.
	Error string `json:"error,omitempty"`
}
